module Real = Arc_mem.Real_mem
module Counting_real = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Sim = Arc_vsched.Sim_mem
module RI = Arc_core.Register_intf

type entry = {
  name : string;
  caps : RI.caps;
  run_real : Config.real -> Config.result;
  run_sim : ?strategy:Arc_vsched.Strategy.t -> Config.sim -> Config.result;
  count :
    readers:int ->
    size_words:int ->
    rounds:int ->
    reads_per_write:int ->
    Count_runner.per_op;
}

module Entry_of (A : Arc_core.Register_intf.ALGORITHM) = struct
  module R_real = A.Make (Real)
  module R_cnt = A.Make (Counting_real)
  module R_sim = A.Make (Sim)
  module Run_real = Real_runner.Make (R_real)
  module Run_sim = Sim_runner.Make (R_sim)
  module Count = Count_runner.Make (Counting_real) (R_cnt)

  let entry =
    {
      name = A.algorithm;
      caps = R_real.caps;
      run_real = Run_real.run;
      run_sim = Run_sim.run;
      count = Count.measure;
    }
end

module Arc_entry = Entry_of (Arc_core.Arc)
module Arc_nohint_entry = Entry_of (Arc_core.Arc_nohint)
module Arc_dynamic_entry = Entry_of (Arc_core.Arc_dynamic)
module Rf_entry = Entry_of (Arc_baselines.Rf)
module Peterson_entry = Entry_of (Arc_baselines.Peterson)
module Rwlock_entry = Entry_of (Arc_baselines.Rwlock_reg)
module Seqlock_entry = Entry_of (Arc_baselines.Seqlock_reg)
module Lamport_entry = Entry_of (Arc_baselines.Lamport_reg)
module Simpson_entry = Entry_of (Arc_baselines.Simpson_reg)

let all =
  [
    Arc_entry.entry;
    Arc_nohint_entry.entry;
    Arc_dynamic_entry.entry;
    Rf_entry.entry;
    Peterson_entry.entry;
    Rwlock_entry.entry;
    Seqlock_entry.entry;
    Lamport_entry.entry;
    Simpson_entry.entry;
  ]

let paper_set =
  [ Arc_entry.entry; Rf_entry.entry; Peterson_entry.entry; Rwlock_entry.entry ]

let find name = List.find (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all

let supports entry ~readers ~capacity_words =
  RI.supports_readers entry.caps ~readers ~capacity_words

let supporting ~readers ~capacity_words entries =
  List.filter (fun e -> supports e ~readers ~capacity_words) entries

type state = I | S | M

type stats = {
  reads : int;
  writes : int;
  hits : int;
  fetches : int;
  rfos : int;
  invalidations : int;
  writebacks : int;
}

let zero_stats =
  { reads = 0; writes = 0; hits = 0; fetches = 0; rfos = 0; invalidations = 0;
    writebacks = 0 }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>reads=%d, writes=%d, hits=%d, fetches=%d, rfos=%d, invalidations=%d, \
     writebacks=%d@]"
    s.reads s.writes s.hits s.fetches s.rfos s.invalidations s.writebacks

type t = {
  nagents : int;
  lines : (int, state array) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable fetches : int;
  mutable rfos : int;
  mutable invalidations : int;
  mutable writebacks : int;
}

let hit_cost = 1
let fetch_cost = 8
let rfo_cost = 12

let create ~agents =
  if agents < 1 then invalid_arg "Cache.create: agents < 1";
  {
    nagents = agents;
    lines = Hashtbl.create 1024;
    reads = 0;
    writes = 0;
    hits = 0;
    fetches = 0;
    rfos = 0;
    invalidations = 0;
    writebacks = 0;
  }

let agents t = t.nagents
let init_agent t = t.nagents - 1

let states_of t line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None ->
    let s = Array.make t.nagents I in
    Hashtbl.replace t.lines line s;
    s

let check_agent t agent =
  if agent < 0 || agent >= t.nagents then invalid_arg "Cache: agent out of range"

let read t ~agent ~line =
  check_agent t agent;
  t.reads <- t.reads + 1;
  let states = states_of t line in
  match states.(agent) with
  | M | S ->
    t.hits <- t.hits + 1;
    hit_cost
  | I ->
    (* GetS: any modified copy elsewhere is written back to shared. *)
    Array.iteri
      (fun a st ->
        if a <> agent && st = M then begin
          states.(a) <- S;
          t.writebacks <- t.writebacks + 1
        end)
      states;
    states.(agent) <- S;
    t.fetches <- t.fetches + 1;
    fetch_cost

let write t ~agent ~line =
  check_agent t agent;
  t.writes <- t.writes + 1;
  let states = states_of t line in
  match states.(agent) with
  | M ->
    t.hits <- t.hits + 1;
    hit_cost
  | S | I ->
    (* GetX: invalidate every other copy (writing back a modified
       one), then take the line exclusively. *)
    Array.iteri
      (fun a st ->
        if a <> agent && st <> I then begin
          if st = M then t.writebacks <- t.writebacks + 1;
          states.(a) <- I;
          t.invalidations <- t.invalidations + 1
        end)
      states;
    states.(agent) <- M;
    t.rfos <- t.rfos + 1;
    rfo_cost

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    hits = t.hits;
    fetches = t.fetches;
    rfos = t.rfos;
    invalidations = t.invalidations;
    writebacks = t.writebacks;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.hits <- 0;
  t.fetches <- 0;
  t.rfos <- 0;
  t.invalidations <- 0;
  t.writebacks <- 0

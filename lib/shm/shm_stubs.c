/* Atomic word operations on an mmap'd Bigarray — the machine-level
 * substrate of Shm_mem.
 *
 * OCaml 5's [Atomic] only covers heap cells, so a register shared
 * between OS processes through a mapped file needs its
 * synchronization words accessed with real hardware atomics on the
 * mapping itself.  These stubs apply the GCC/Clang __atomic builtins
 * to naturally aligned machine words inside a Bigarray of kind
 * [Bigarray.int] (one untagged word per element, so OCaml ints
 * round-trip exactly).
 *
 * Memory orders: RMW operations are SEQ_CST — they are the
 * synchronization instructions of the paper's algorithms (W2
 * exchange, R3/R4 presence counters) and their cost asymmetry versus
 * plain accesses is the point being measured.  Plain load/store are
 * ACQUIRE/RELEASE: on x86-TSO they compile to bare MOVs, which is
 * exactly the "plain load/store" cost model of the paper (§3.3),
 * while still providing the publish/subscribe ordering the
 * correctness argument needs (writer's payload stores happen-before
 * the RELEASE/RMW publish; a reader's ACQUIRE/RMW subscribe
 * happens-before its payload loads).
 *
 * None of these allocate, raise, or call back into the runtime, so
 * they are declared [@@noalloc] on the OCaml side.  The mapping is
 * page-aligned (mmap) and cells are word-indexed, so every access is
 * naturally aligned.
 */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

static inline intnat *cell(value ba, value idx)
{
  return ((intnat *) Caml_ba_data_val(ba)) + Long_val(idx);
}

CAMLprim value arc_shm_load(value ba, value idx)
{
  return Val_long(__atomic_load_n(cell(ba, idx), __ATOMIC_ACQUIRE));
}

CAMLprim value arc_shm_store(value ba, value idx, value v)
{
  __atomic_store_n(cell(ba, idx), Long_val(v), __ATOMIC_RELEASE);
  return Val_unit;
}

CAMLprim value arc_shm_exchange(value ba, value idx, value v)
{
  return Val_long(
      __atomic_exchange_n(cell(ba, idx), Long_val(v), __ATOMIC_SEQ_CST));
}

CAMLprim value arc_shm_fetch_add(value ba, value idx, value v)
{
  return Val_long(
      __atomic_fetch_add(cell(ba, idx), Long_val(v), __ATOMIC_SEQ_CST));
}

CAMLprim value arc_shm_cas(value ba, value idx, value expected, value desired)
{
  intnat exp = Long_val(expected);
  return Val_bool(__atomic_compare_exchange_n(
      cell(ba, idx), &exp, Long_val(desired), 0 /* strong */,
      __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST));
}

CAMLprim value arc_shm_fetch_or(value ba, value idx, value v)
{
  return Val_long(
      __atomic_fetch_or(cell(ba, idx), Long_val(v), __ATOMIC_SEQ_CST));
}

CAMLprim value arc_shm_fetch_and(value ba, value idx, value v)
{
  return Val_long(
      __atomic_fetch_and(cell(ba, idx), Long_val(v), __ATOMIC_SEQ_CST));
}

/* Bulk word copies between OCaml [int array]s (tagged words) and the
 * mapping (untagged words).  A register write's single content copy
 * runs as one C loop — memcpy cannot be used directly because the
 * representations differ by the tag bit, but the loop vectorizes and
 * touches each destination cache line once, preserving Real_mem's
 * bulk-operation cost model.  Plain (non-atomic) accesses: buffer
 * words are the paper's multi-word data, ordered by the RELEASE/RMW
 * publication protocol, not individually synchronized. */

CAMLprim value arc_shm_write_words(value ba, value off, value src, value len)
{
  intnat *dst = cell(ba, off);
  intnat n = Long_val(len);
  for (intnat i = 0; i < n; i++) dst[i] = Long_val(Field(src, i));
  return Val_unit;
}

CAMLprim value arc_shm_read_words(value ba, value off, value dst, value len)
{
  intnat *src = cell(ba, off);
  intnat n = Long_val(len);
  /* dst is an [int array]: immediate fields, no write barrier needed. */
  for (intnat i = 0; i < n; i++) Field(dst, i) = Val_long(src[i]);
  return Val_unit;
}

CAMLprim value arc_shm_blit(value ba, value src_off, value dst_off, value len)
{
  intnat *base = (intnat *) Caml_ba_data_val(ba);
  memmove(base + Long_val(dst_off), base + Long_val(src_off),
          Long_val(len) * sizeof(intnat));
  return Val_unit;
}

let algorithm = "rf"

module Bits = Arc_util.Bits

let max_readers_for_word ~word_bits =
  let fits n = n >= 1 && n + Bits.ceil_log2 (n + 2) <= word_bits in
  let rec grow n = if fits (n + 1) then grow (n + 1) else n in
  if fits 1 then grow 1 else 0

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type slot = { size : M.atomic; content : M.buffer }

  type t = {
    slots : slot array;  (* N + 2 *)
    sync : M.atomic;  (* ⟨pointer ≪ readers⟩ lor ⟨reader trace bits⟩ *)
    readers : int;
    (* Writer-private. *)
    trace : int array;  (* trace.(i): slot reader i may still be using *)
    claimed : int array;  (* stamp per slot, to test membership in O(1) *)
    mutable stamp : int;
    mutable last_slot : int;
  }

  type reader = { reg : t; bit : int }

  let algorithm = algorithm

  let caps =
    {
      Arc_core.Register_intf.wait_free = true;
      zero_copy = true;
      max_readers =
        (fun ~capacity_words:_ -> Some (max_readers_for_word ~word_bits:Sys.int_size));
      snapshot_read = false;
    }

  let pointer_of reg word = word lsr reg.readers
  let trace_bits reg word = word land Bits.mask reg.readers
  let word_of_pointer reg ptr = ptr lsl reg.readers

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Rf.create: need at least one reader";
    let bound = max_readers_for_word ~word_bits:Sys.int_size in
    if readers > bound then
      invalid_arg
        (Printf.sprintf "Rf.create: %d readers exceed the word-size bound %d"
           readers bound);
    if capacity < 1 then invalid_arg "Rf.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Rf.create: init too long";
    let nslots = readers + 2 in
    let slots =
      Array.init nslots (fun _ -> { size = M.atomic 0; content = M.alloc capacity })
    in
    M.write_words slots.(0).content ~src:init ~len:(Array.length init);
    M.store slots.(0).size (Array.length init);
    {
      slots;
      (* The presence word absorbs one RMW per read from every reader
         plus the writer's exchange — isolate it on its own line. *)
      sync = M.atomic_contended 0 (* pointer = 0, no trace bits *);
      readers;
      trace = Array.make readers (-1);
      claimed = Array.make nslots (-1);
      stamp = 0;
      last_slot = 0;
    }

  let reader reg i =
    if i < 0 || i >= reg.readers then invalid_arg "Rf.reader: identity out of range";
    { reg; bit = i }

  (* One RMW per read, unconditionally: set my trace bit and learn the
     published pointer in the same atomic step. *)
  let read_view rd =
    let reg = rd.reg in
    let old = M.fetch_and_or reg.sync (1 lsl rd.bit) in
    let ptr = pointer_of reg old in
    let entry = reg.slots.(ptr) in
    (entry.content, M.load entry.size)

  let read_with rd ~f =
    let buffer, len = read_view rd in
    f buffer len

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then invalid_arg "Rf.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  (* O(N) free-buffer search: a buffer is free iff it is neither the
     published one nor traced for any reader. *)
  let find_free reg =
    reg.stamp <- reg.stamp + 1;
    reg.claimed.(reg.last_slot) <- reg.stamp;
    Array.iter (fun s -> if s >= 0 then reg.claimed.(s) <- reg.stamp) reg.trace;
    let n = Array.length reg.slots in
    let rec scan j =
      if j >= n then failwith "Rf.write: no free buffer (invariant violated)"
      else if reg.claimed.(j) <> reg.stamp then j
      else begin
        M.cede ();
        scan (j + 1)
      end
    in
    scan 0

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Rf.write: bad length";
    let slot = find_free reg in
    let entry = reg.slots.(slot) in
    if len > M.capacity entry.content then invalid_arg "Rf.write: exceeds capacity";
    M.write_words entry.content ~src ~len;
    M.store entry.size len;
    let old = M.exchange reg.sync (word_of_pointer reg slot) in
    let old_ptr = pointer_of reg old in
    (* Readers whose bit was set read their pointer while [old_ptr]
       was published, so that is the buffer they may still be using. *)
    Bits.iter_set (fun i -> reg.trace.(i) <- old_ptr) (trace_bits reg old);
    reg.last_slot <- slot
end

(* arc-perf-gate: per-op regression gate (ISSUE 5, extended by ISSUE 6).

   Reads the telemetry record of a BENCH_arc.json produced by
   `bench/main.exe --throughput-json`, appends a dated entry to the
   perf trajectory (results/BENCH_trajectory.jsonl, one JSON object
   per line), and fails if the per-op read cost — read_hit_ns_off,
   the telemetry-detached fast-path read — regressed more than
   --threshold percent against the last committed trajectory entry.
   When a BENCH_fabric.json (bench/main.exe --fabric-json) is present,
   the fabric's cross-shard snapshot cost per shard collected is
   tracked and gated the same way, as is the reader admission cycle
   p99 (reader_join_p99_ns, ISSUE 8) whenever the bench file carries
   it.

     dune exec bin/perf_gate.exe
     dune exec bin/perf_gate.exe -- --bench /tmp/BENCH_arc.json --threshold 10

   Exit status 0 = within budget (entry appended), 1 = regression,
   2 = malformed inputs.

   The JSON handling is deliberately string-level: both files are
   written by this repository's own emitters with known key spelling,
   and the toolchain has no JSON library to depend on. *)

open Cmdliner

(* Extract the number following ["key": ] — first occurrence. *)
let field_of ~key s =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let slen = String.length s in
  let rec find i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then begin
      let j = ref (i + plen) in
      while !j < slen && s.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < slen
        && (match s.[!k] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr k
      done;
      if !k > !j then float_of_string_opt (String.sub s !j (!k - !j)) else None
    end
    else find (i + 1)
  in
  find 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let last_nonempty_line s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> function
  | [] -> None
  | lines -> Some (List.nth lines (List.length lines - 1))

let iso_date () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let run bench fabric_bench trajectory threshold label =
  let bench_s =
    try read_file bench
    with Sys_error msg ->
      Printf.eprintf "perf-gate: cannot read %s: %s\n" bench msg;
      exit 2
  in
  let need key =
    match field_of ~key bench_s with
    | Some v -> v
    | None ->
      Printf.eprintf
        "perf-gate: %s has no \"%s\" field — was it written by \
         bench/main.exe --throughput-json?\n"
        bench key;
      exit 2
  in
  let off = need "read_hit_ns_off" in
  let on_ = need "read_hit_ns_on" in
  let overhead = need "overhead_pct" in
  (* The fabric metric (ISSUE 6) is optional so older checkouts and
     read-only gates keep working: tracked and gated whenever a
     BENCH_fabric.json is present. *)
  let snap_per_shard =
    if Sys.file_exists fabric_bench then
      match field_of ~key:"snapshot_ns_per_shard" (read_file fabric_bench) with
      | Some v -> Some v
      | None ->
        Printf.eprintf
          "perf-gate: %s has no \"snapshot_ns_per_shard\" field — was it \
           written by bench/main.exe --fabric-json?\n"
          fabric_bench;
        exit 2
    else None
  in
  (* The reader-join metric (ISSUE 8) is optional for the same reason:
     BENCH_arc.json files written before the admission gate existed
     have no such field, and their gates must keep working. *)
  let join_p99 = field_of ~key:"reader_join_p99_ns" bench_s in
  let last_line =
    if Sys.file_exists trajectory then last_nonempty_line (read_file trajectory)
    else None
  in
  let baseline_of key = Option.bind last_line (field_of ~key) in
  let baseline = baseline_of "read_hit_ns_off" in
  let snap_baseline = baseline_of "snapshot_ns_per_shard" in
  let join_baseline = baseline_of "reader_join_p99_ns" in
  let entry =
    Printf.sprintf
      "{\"date\": \"%s\", \"label\": \"%s\", \"read_hit_ns_off\": %.2f, \
       \"read_hit_ns_on\": %.2f, \"overhead_pct\": %.2f%s%s}"
      (iso_date ()) label off on_ overhead
      (match snap_per_shard with
      | Some v -> Printf.sprintf ", \"snapshot_ns_per_shard\": %.2f" v
      | None -> "")
      (match join_p99 with
      | Some v -> Printf.sprintf ", \"reader_join_p99_ns\": %.2f" v
      | None -> "")
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 trajectory
  in
  output_string oc entry;
  output_char oc '\n';
  close_out oc;
  Printf.printf "perf-gate: appended to %s\n  %s\n" trajectory entry;
  let failures = ref 0 in
  let gate ~metric ~current ~baseline =
    match (current, baseline) with
    | None, _ -> ()
    | Some _, None ->
      Printf.printf "perf-gate: no prior %s in trajectory — baseline recorded\n"
        metric
    | Some v, Some base ->
      let limit = base *. (1. +. (threshold /. 100.)) in
      if v > limit then begin
        incr failures;
        Printf.printf
          "perf-gate: REGRESSION — %s %.2f ns exceeds %.2f ns (last committed \
           %.2f + %.0f%%)\n"
          metric v limit base threshold
      end
      else
        Printf.printf
          "perf-gate: ok — %s %.2f ns within %.0f%% of last committed %.2f\n"
          metric v threshold base
  in
  gate ~metric:"read-hit" ~current:(Some off) ~baseline;
  gate ~metric:"snapshot-ns-per-shard" ~current:snap_per_shard
    ~baseline:snap_baseline;
  gate ~metric:"reader-join-p99" ~current:join_p99 ~baseline:join_baseline;
  if !failures > 0 then exit 1

let cmd =
  let bench =
    Arg.(
      value
      & opt string "results/BENCH_arc.json"
      & info [ "bench" ] ~docv:"PATH"
          ~doc:"BENCH_arc.json produced by bench/main.exe --throughput-json.")
  in
  let fabric_bench =
    Arg.(
      value
      & opt string "results/BENCH_fabric.json"
      & info [ "fabric-bench" ] ~docv:"PATH"
          ~doc:
            "BENCH_fabric.json produced by bench/main.exe --fabric-json; when \
             present its snapshot_ns_per_shard is tracked and gated too.")
  in
  let trajectory =
    Arg.(
      value
      & opt string "results/BENCH_trajectory.jsonl"
      & info [ "trajectory" ] ~docv:"PATH"
          ~doc:
            "Perf trajectory file (one JSON object per line); the gate \
             compares against its last line and appends the new entry.")
  in
  let threshold =
    Arg.(
      value & opt float 20.
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Maximum allowed read-cost regression, in percent.")
  in
  let label =
    Arg.(
      value & opt string "local"
      & info [ "label" ] ~docv:"LABEL"
          ~doc:"Free-form provenance tag for the entry (e.g. a commit sha).")
  in
  Cmd.v
    (Cmd.info "arc-perf-gate"
       ~doc:
         "Append the current per-op read cost (and, when measured, the \
          fabric snapshot cost per shard) to the perf trajectory and fail on \
          regression beyond the threshold.")
    Term.(const run $ bench $ fabric_bench $ trajectory $ threshold $ label)

let () = exit (Cmd.eval cmd)

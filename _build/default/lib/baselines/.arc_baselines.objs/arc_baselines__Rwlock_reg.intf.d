lib/baselines/rwlock_reg.mli: Arc_core Arc_mem

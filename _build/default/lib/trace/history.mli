(** Histories of register operations, in the §3.1 sense: each
    operation is an interval [⟨invoked, returned⟩] on a global clock
    (nanoseconds for real runs, simulated steps for scheduler runs)
    carrying the sequence number of the register value it wrote or
    returned.

    Values are identified by the writer's sequence number: write k
    publishes value k (k ≥ 1), and 0 identifies the initial value, so
    checking never depends on payload contents — workloads stamp the
    sequence number into the payload (see {!Arc_workload.Payload}) and
    the read side extracts it. *)

type kind = Read | Write

type event = {
  kind : kind;
  thread : int;  (** writer thread or reader identity *)
  seq : int;  (** value written / value observed *)
  invoked : int;
  returned : int;
}

val event : kind -> thread:int -> seq:int -> invoked:int -> returned:int -> event
(** @raise Invalid_argument if [returned < invoked] or [seq < 0]. *)

val pp_event : Format.formatter -> event -> unit

type t
(** An immutable history. *)

val of_events : event list -> t
(** Builds a history; events need not be sorted. *)

val events : t -> event list
(** All events, sorted by invocation time. *)

val reads : t -> event list
val writes : t -> event list
(** Writes sorted by sequence number. *)

val size : t -> int

(** Mutable per-thread recorder with preallocated storage, so
    recording perturbs measured runs as little as possible.  Each
    thread must only append to its own index; merging happens after
    the threads are joined. *)
module Recorder : sig
  type recorder

  val create : threads:int -> capacity:int -> recorder
  (** [capacity] events per thread; further events are dropped and
      counted. *)

  val record :
    recorder -> thread:int -> kind -> seq:int -> invoked:int -> returned:int -> unit

  val dropped : recorder -> int
  val history : recorder -> t
end

(* Lock-based and seqlock baselines: mutual exclusion, retry
   accounting, and the starvation behaviours that separate them from
   the wait-free algorithms (DESIGN.md §5, ablation 4). *)

module Rw_sim = Arc_baselines.Rwlock_reg.Make (Arc_vsched.Sim_mem)
module Sq_sim = Arc_baselines.Seqlock_reg.Make (Arc_vsched.Sim_mem)
module Arc_sim = Arc_core.Arc.Make (Arc_vsched.Sim_mem)
module Sq = Arc_baselines.Seqlock_reg.Make (Arc_mem.Real_mem)
module P_sim = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let stamped_sim ~seq ~len =
  let a = Array.make len 0 in
  P_sim.stamp a ~seq ~len;
  a

let test_rwlock_never_torn_under_schedules () =
  for seed = 0 to 19 do
    let size = 8 in
    let reg =
      Rw_sim.create ~readers:2 ~capacity:size ~init:(stamped_sim ~seq:0 ~len:size)
    in
    let src = Array.make size 0 in
    let reader i () =
      let rd = Rw_sim.reader reg i in
      for _ = 1 to 8 do
        ignore
          (Rw_sim.read_with rd ~f:(fun buffer len ->
               match P_sim.validate buffer ~len with
               | Ok seq -> seq
               | Error msg -> Alcotest.failf "seed %d: torn under lock: %s" seed msg))
      done
    in
    let writer () =
      for seq = 1 to 12 do
        P_sim.stamp src ~seq ~len:size;
        Rw_sim.write reg ~src ~len:size
      done
    in
    ignore
      (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader 0; reader 1 |])
  done

let test_seqlock_retries_under_contention () =
  (* An adversarial schedule that preempts the reader mid-copy forces
     seqlock retries — the lock-free-but-not-wait-free signature. *)
  let size = 32 in
  let total_retries = ref 0 in
  for seed = 0 to 19 do
    let reg =
      Sq_sim.create ~readers:1 ~capacity:size ~init:(stamped_sim ~seq:0 ~len:size)
    in
    let src = Array.make size 0 in
    let rd = ref None in
    let reader () =
      let handle = Sq_sim.reader reg 0 in
      rd := Some handle;
      for _ = 1 to 5 do
        ignore
          (Sq_sim.read_with handle ~f:(fun buffer len ->
               match P_sim.validate buffer ~len with
               | Ok seq -> seq
               | Error msg -> Alcotest.failf "seqlock returned torn data: %s" msg))
      done
    in
    let writer () =
      for seq = 1 to 30 do
        P_sim.stamp src ~seq ~len:size;
        Sq_sim.write reg ~src ~len:size
      done
    in
    ignore (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader |]);
    total_retries := !total_retries + Sq_sim.retries (Option.get !rd)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "retries observed across seeds (%d)" !total_retries)
    true (!total_retries > 0)

let test_seqlock_sequential_no_retries () =
  let reg = Sq.create ~readers:1 ~capacity:8 ~init:(Array.make 8 0) in
  let rd = Sq.reader reg 0 in
  for _ = 1 to 10 do
    ignore (Sq.read_with rd ~f:(fun _ _ -> ()))
  done;
  check "no retries without contention" 0 (Sq.retries rd)

(* The wait-freedom separation (Fig. 2's mechanism): steal the writer
   while it holds the lock and measure how long a reader op takes.
   ARC readers finish in bounded simulated time; rwlock readers are
   blocked for the whole theft. *)
let max_reader_latency (type t r) ~steal_writer
    (module R : Arc_core.Register_intf.S
      with type t = t
       and type reader = r
       and type Mem.buffer = Arc_vsched.Sim_mem.buffer) =
  (* A paced writer (idle gaps between writes) and one reader; only
     the writer can be stolen, so the reader's worst-case read latency
     is purely a property of the algorithm's coordination: wait-free
     reads stay bounded, lock-based reads inherit the theft whenever
     it lands inside the writer's critical section. *)
  let size = 64 in
  let init = Array.make size 0 in
  P_sim.stamp init ~seq:0 ~len:size;
  let reg = R.create ~readers:1 ~capacity:size ~init in
  let src = Array.make size 0 in
  let worst = ref 0 in
  let writer () =
    for seq = 1 to 50 do
      P_sim.stamp src ~seq ~len:size;
      R.write reg ~src ~len:size;
      for _ = 1 to 10 do
        Sched.cede ()
      done
    done
  in
  let reader () =
    (* Keep reading until the final write is observed, so the reads
       overlap the writer's whole (possibly stolen) lifetime. *)
    let rd = R.reader reg 0 in
    let seen = ref 0 in
    while !seen < 50 do
      let t0 = Sched.now () in
      seen := R.read_with rd ~f:(fun buffer _len -> P_sim.decode_seq buffer);
      let dt = Sched.now () - t0 in
      if dt > !worst then worst := dt
    done
  in
  let base = Strategy.round_robin () in
  let strategy =
    if steal_writer then
      Strategy.steal_fibers ~seed:3 ~victims:[ 0 ] ~base ~probability:0.3
        ~min_pause:500 ~max_pause:900
    else base
  in
  ignore (Sched.run ~strategy [| writer; reader |]);
  !worst

let test_wait_freedom_separation () =
  let arc_stolen = max_reader_latency ~steal_writer:true (module Arc_sim) in
  let lock_quiet = max_reader_latency ~steal_writer:false (module Rw_sim) in
  let lock_stolen = max_reader_latency ~steal_writer:true (module Rw_sim) in
  Alcotest.(check bool)
    (Printf.sprintf "ARC worst read latency bounded under writer theft (%d)"
       arc_stolen)
    true (arc_stolen < 200);
  Alcotest.(check bool)
    (Printf.sprintf
       "rwlock worst read latency inherits the theft (quiet %d, stolen %d)"
       lock_quiet lock_stolen)
    true
    (lock_stolen > 400 && lock_stolen > 2 * lock_quiet)

let suite =
  [
    Alcotest.test_case "rwlock never torn" `Quick test_rwlock_never_torn_under_schedules;
    Alcotest.test_case "seqlock retries under contention" `Quick
      test_seqlock_retries_under_contention;
    Alcotest.test_case "seqlock sequential no retries" `Quick
      test_seqlock_sequential_no_retries;
    Alcotest.test_case "wait-freedom separation" `Quick test_wait_freedom_separation;
  ]

lib/report/series.mli: Table

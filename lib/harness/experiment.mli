(** Drivers regenerating every figure and table of the paper's
    evaluation (§5), per the experiment index in DESIGN.md §4.

    This module is a stable façade: the shared grid/runner core lives
    in {!Grid} and the figure logic in {!Fig_throughput}, {!Fig_rmw},
    {!Fig_ablation} and {!Fig_latency}.  Every driver returns report
    structures; the [bin/experiments] CLI renders and optionally dumps
    them as CSV.  Absolute numbers are machine-dependent —
    EXPERIMENTS.md records the shape comparisons (orderings, ratios,
    crossovers) against the paper. *)

type opts = Grid.opts = {
  reps : int;  (** repetitions per real-mode point (paper: 10) *)
  duration_s : float;  (** measured window per real-mode point *)
  sim_steps : int;  (** simulated-step budget per sim-mode point *)
  quick : bool;  (** shrink grids for smoke runs *)
  seed : int;
}

val default : opts
val quick : opts

(** {1 E1 — Fig. 1: throughput vs thread count, three sizes} *)

val fig1_real : opts -> Arc_report.Series.t list
(** Real domains (time-shared on small hosts); one series figure per
    register size, thread counts 2..32, algorithms arc/rf/peterson/
    rwlock.  Throughput in ops/s. *)

val fig1_sim : opts -> Arc_report.Series.t list
(** Virtual scheduler, throughput in ops per 1000 simulated steps —
    the concurrency-scaling shape carrier. *)

(** {1 E2 — Fig. 2: the virtualized (CPU-steal) platform} *)

val fig2_real : opts -> Arc_report.Series.t list
val fig2_sim : opts -> Arc_report.Series.t list

(** {1 E3 — Fig. 3: largely-increased thread counts} *)

val fig3_sim : opts -> Arc_report.Series.t list
(** Up to 4096 fibers; RF excluded (reader bound), as in the paper. *)

val fig3_real_threads : opts -> Arc_report.Series.t list
(** Oversubscribed systhreads on one domain — real time-sharing. *)

(** {1 E4 — RMW instructions per operation} *)

val rmw_table : opts -> Arc_report.Table.t

(** {1 E5 — §3.4 free-slot hint ablation} *)

val ablation_hint : opts -> Arc_report.Table.t

(** {1 E6 — processing workload} *)

val processing_real : opts -> Arc_report.Series.t list

(** {1 E7 — read-latency distributions (extension)} *)

val latency_table : opts -> Arc_report.Table.t

(** {1 E8 — dynamic-allocation footprint (§3.3 note, extension)} *)

val ablation_dynamic : opts -> Arc_report.Table.t

(** {1 Measurement-noise quantification} *)

val variability_table : opts -> Arc_report.Table.t

(** {1 Utilities} *)

val run_all : opts -> out_dir:string option -> unit
(** Run everything, print tables and charts, optionally dump CSVs. *)

val dump_csv : out_dir:string option -> name:string -> string -> unit
(** Write [contents] to [out_dir/name.csv] if a directory was given. *)

test/test_explore.ml: Alcotest Arc_baselines Arc_core Arc_vsched Arc_workload Array Broken_regs Hashtbl List Printf

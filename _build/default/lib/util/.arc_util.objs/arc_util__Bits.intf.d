lib/util/bits.mli:

let escape_cell cell =
  String.concat "\\|" (String.split_on_char '|' cell)
  |> String.split_on_char '\n'
  |> String.concat " "

let render ~title ~header ~body =
  let line cells = "| " ^ String.concat " | " (List.map escape_cell cells) ^ " |" in
  let rule = "|" ^ String.concat "|" (List.map (fun _ -> " --- ") header) ^ "|" in
  String.concat "\n"
    ((Printf.sprintf "**%s**" (escape_cell title) :: "" :: line header :: rule
     :: List.map line body)
    @ [ "" ])

let of_table t =
  render ~title:(Table.title t) ~header:(Table.columns t) ~body:(Table.body t)

let of_series s =
  let t = Series.to_table s in
  of_table t

lib/baselines/simpson_reg.mli: Arc_core Arc_mem

examples/schedule_explorer.ml: Arc_core Arc_trace Arc_vsched Arc_workload Array Format Printf

(* Simulated shared memory: atomicity of RMWs between fibers and
   word-granular interleaving of buffers. *)

module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module Sim = Arc_vsched.Sim_mem

let check = Alcotest.(check int)

let run_fibers ?(seed = 1) fibers =
  ignore (Sched.run ~strategy:(Strategy.random ~seed) fibers)

let test_standalone_use () =
  (* Outside a scheduler, Sim_mem degrades to plain operations. *)
  let a = Sim.atomic 1 in
  Sim.store a 2;
  check "store/load" 2 (Sim.load a);
  check "faa" 2 (Sim.fetch_and_add a 3);
  check "exchange" 5 (Sim.exchange a 0)

let test_rmw_atomic_across_fibers () =
  (* Two fibers incrementing concurrently must never lose updates:
     the whole point of modelling RMW as a single scheduling step. *)
  let a = Sim.atomic 0 in
  let fiber () =
    for _ = 1 to 1000 do
      Sim.incr a
    done
  in
  run_fibers [| fiber; fiber |];
  check "no lost increments" 2000 (Sim.load a)

let test_plain_rmw_weights () =
  let a = Sim.atomic 0 in
  let plain_steps =
    let outcome =
      Sched.run ~strategy:(Strategy.round_robin ())
        [| (fun () -> for _ = 1 to 100 do ignore (Sim.load a) done) |]
    in
    outcome.Sched.steps
  in
  let rmw_steps =
    let outcome =
      Sched.run ~strategy:(Strategy.round_robin ())
        [| (fun () -> for _ = 1 to 100 do Sim.incr a done) |]
    in
    outcome.Sched.steps
  in
  (* Both runs make the same number of scheduling decisions; the step
     difference is exactly the extra RMW weight: 100 × (w − 1). *)
  check "RMW surcharge" (100 * (!Sim.rmw_weight - 1)) (rmw_steps - plain_steps)

let test_cas_semantics () =
  let a = Sim.atomic 5 in
  let ok = ref false and ko = ref true in
  run_fibers
    [|
      (fun () ->
        ok := Sim.compare_and_set a 5 6;
        ko := Sim.compare_and_set a 5 7);
    |];
  Alcotest.(check bool) "first cas wins" true !ok;
  Alcotest.(check bool) "second cas fails" false !ko;
  check "value" 6 (Sim.load a)

let test_fetch_or () =
  let a = Sim.atomic 0 in
  let olds = Array.make 4 (-1) in
  let fiber i () = olds.(i) <- Sim.fetch_and_or a (1 lsl i) in
  run_fibers (Array.init 4 (fun i -> fiber i));
  check "all bits set" 0b1111 (Sim.load a);
  (* each old value must miss the caller's own bit *)
  Array.iteri
    (fun i old ->
      Alcotest.(check bool) "own bit not yet set" false (old land (1 lsl i) <> 0))
    olds

let test_buffer_tearing_is_representable () =
  (* A racy word-by-word copy must be interruptible mid-buffer: the
     simulator's ability to produce the very anomaly the register
     algorithms exist to prevent. *)
  let buf = Sim.alloc 16 in
  let torn = ref false in
  let writer () =
    Sim.write_words buf ~src:(Array.make 16 1) ~len:16;
    Sim.write_words buf ~src:(Array.make 16 2) ~len:16
  in
  let reader () =
    for _ = 1 to 20 do
      let dst = Array.make 16 0 in
      Sim.read_words buf ~dst ~len:16;
      let first = dst.(0) in
      if Array.exists (fun w -> w <> first) dst then torn := true
    done
  in
  (* Hunt across seeds; at least one schedule must interleave the copy. *)
  let seed = ref 0 in
  while (not !torn) && !seed < 50 do
    ignore
      (Sched.run ~strategy:(Strategy.random ~seed:!seed) [| writer; reader |]);
    incr seed
  done;
  Alcotest.(check bool) "some schedule exposes a torn copy" true !torn

let test_blit_and_capacity () =
  let a = Sim.alloc 4 and b = Sim.alloc 4 in
  run_fibers
    [|
      (fun () ->
        Sim.write_words a ~src:[| 9; 8; 7; 6 |] ~len:4;
        Sim.blit a b ~len:4);
    |];
  check "blit in sim" 7 (Sim.read_word b 2);
  check "capacity" 4 (Sim.capacity a)

let test_determinism_of_interleaving () =
  let observe seed =
    let a = Sim.atomic 0 in
    let log = ref [] in
    let fiber i () =
      for _ = 1 to 5 do
        log := (i, Sim.add_and_fetch a 1) :: !log
      done
    in
    ignore (Sched.run ~strategy:(Strategy.random ~seed) (Array.init 3 fiber));
    List.rev !log
  in
  Alcotest.(check bool) "replayable" true (observe 42 = observe 42)

let suite =
  [
    Alcotest.test_case "standalone use" `Quick test_standalone_use;
    Alcotest.test_case "rmw atomic across fibers" `Quick test_rmw_atomic_across_fibers;
    Alcotest.test_case "plain vs rmw weights" `Quick test_plain_rmw_weights;
    Alcotest.test_case "cas semantics" `Quick test_cas_semantics;
    Alcotest.test_case "fetch_or" `Quick test_fetch_or;
    Alcotest.test_case "tearing representable" `Quick test_buffer_tearing_is_representable;
    Alcotest.test_case "blit and capacity" `Quick test_blit_and_capacity;
    Alcotest.test_case "interleaving deterministic" `Quick test_determinism_of_interleaving;
  ]

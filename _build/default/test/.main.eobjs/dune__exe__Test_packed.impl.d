test/test_packed.ml: Alcotest Arc_util QCheck QCheck_alcotest String Sys

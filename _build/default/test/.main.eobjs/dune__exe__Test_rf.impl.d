test/test_rf.ml: Alcotest Arc_baselines Arc_mem Arc_util Arc_workload Array List Option Printf Sys

(** ARC with the §3.4 free-slot hint disabled — the ablation arm of
    experiment E5.  Reads never post proposals and every write
    free-slot search is a linear scan (O(N) worst case, as the paper
    notes writes would be without the optimization). *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Register_intf.ZERO_COPY with module Mem = M

  val write_guarded : t -> guard:(unit -> unit) -> src:int array -> len:int -> unit
  (** {!Register_intf.FENCEABLE}: see {!Arc.Make}. *)

  val recover_crash : t -> int
  val quarantine : t -> int -> unit
  (** {!Register_intf.FENCEABLE}: see {!Arc.Make}. *)

  val write_probes : t -> int
  val writes : t -> int

  val read_stamped : reader -> f:(Mem.buffer -> int -> 'a) -> int * 'a
  val probe_stamp : t -> int
  (** {!Register_intf.STAMPED}: see {!Arc.Make}. *)
end

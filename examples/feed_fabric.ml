(* Multi-topic feed over the sharded register fabric (ISSUE 6).

   One shard per topic (quotes, trades, risk limits, system status),
   one producer domain per topic writer, and consumer domains that
   need a {e consistent cross-topic view}: a trade count that matches
   the quote sequence it was risk-checked against.  Reading the four
   topics one by one can pair a new trade tape with an old risk
   limit; [Fabric.snapshot] returns a vector of topic values that
   were all simultaneously published at one instant — wait-free, so
   neither producers nor other consumers are ever blocked.

     dune exec examples/feed_fabric.exe *)

module F = Arc_fabric.Fabric.Make (Arc_core.Arc.Make (Arc_mem.Real_mem))

(* Topics, one shard each.  With 2 writers, writer 0 owns the even
   shards (quotes, risk) and writer 1 the odd ones (trades, status). *)
let t_quotes = 0
let t_trades = 1
let t_risk = 2
let t_status = 3
let topics = 4
let words = 8

(* Every topic payload carries its own update sequence in word 0 and
   a derived field in word 1; producers keep topic pairs in lockstep
   (trades at most one update behind quotes), so any consistent
   cross-topic vector must satisfy the same invariant. *)
let encode src ~seq ~value =
  Array.fill src 0 words 0;
  src.(0) <- seq;
  src.(1) <- value

let () =
  let consumers = 2 in
  let updates = 5_000 in
  let fab =
    F.create ~shards:topics ~writers:2 ~readers:consumers ~capacity:words
      ~init:(Array.make words 0)
  in

  (* Producer 0: quotes then risk, risk derived from the quote seq it
     covers.  Producer 1: trades then status, likewise. *)
  let producer wid () =
    let w = F.writer fab wid in
    let src = Array.make words 0 in
    let a, b = if wid = 0 then (t_quotes, t_risk) else (t_trades, t_status) in
    for seq = 1 to updates do
      encode src ~seq ~value:(seq * 10);
      F.write w ~shard:a ~src ~len:words;
      encode src ~seq ~value:(seq * 10);
      F.write w ~shard:b ~src ~len:words
    done
  in

  let consumer id () =
    let sc = F.scanner fab id in
    let snaps = ref 0 and borrowed = ref 0 and skew = ref 0 in
    for _ = 1 to updates do
      let snap = F.snapshot sc in
      incr snaps;
      if F.borrowed snap then incr borrowed;
      (* The cross-topic invariant: each producer writes its pair
         back-to-back, so in any simultaneously-published vector the
         derived topic lags its source by at most one update. *)
      let lag src drv =
        F.shard_word snap src 0 - F.shard_word snap drv 0
      in
      let q = lag t_quotes t_risk and t = lag t_trades t_status in
      if q < 0 || q > 1 || t < 0 || t > 1 then incr skew
    done;
    (!snaps, !borrowed, !skew)
  in

  let producers = List.init 2 (fun w -> Domain.spawn (producer w)) in
  let consumer_domains = List.init consumers (fun i -> Domain.spawn (consumer i)) in
  List.iter Domain.join producers;
  let results = List.map Domain.join consumer_domains in

  List.iteri
    (fun i (snaps, borrowed, skew) ->
      Printf.printf
        "consumer %d: %d snapshots (%d borrowed from helping writers), %d \
         cross-topic invariant violations\n"
        i snaps borrowed skew;
      assert (skew = 0))
    results;
  Printf.printf
    "fabric: %d direct, %d borrowed, %d probe retries, %d helping deposits\n"
    (F.snapshots_direct fab)
    (F.snapshots_borrowed fab)
    (F.snapshot_retries fab) (F.deposits_made fab);
  print_endline "every cross-topic view was simultaneously published — OK"

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  failure_threshold : int;
  cooldown : int;
  now : unit -> int;
  mutable st : state;
  mutable failures : int;  (* consecutive failures while Closed *)
  mutable opened_at : int;
  mutable trips : int;
}

let create ?(failure_threshold = 3) ?(cooldown = 256) ~now () =
  if failure_threshold < 1 then
    invalid_arg
      (Printf.sprintf "Breaker.create: failure_threshold = %d" failure_threshold);
  if cooldown < 1 then
    invalid_arg (Printf.sprintf "Breaker.create: cooldown = %d" cooldown);
  { failure_threshold; cooldown; now; st = Closed; failures = 0; opened_at = 0;
    trips = 0 }

(* Cooldown expiry is folded in lazily: nobody drives the breaker
   between calls, so Open -> Half_open happens on the first
   observation after the deadline. *)
let refresh t =
  match t.st with
  | Open when t.now () - t.opened_at >= t.cooldown -> t.st <- Half_open
  | _ -> ()

let state t =
  refresh t;
  t.st

let open_now t =
  t.st <- Open;
  t.opened_at <- t.now ();
  t.failures <- 0;
  t.trips <- t.trips + 1

let allow t =
  refresh t;
  match t.st with Closed | Half_open -> true | Open -> false

let record_success t =
  refresh t;
  t.failures <- 0;
  match t.st with
  | Half_open | Open -> t.st <- Closed
  | Closed -> ()

let record_failure t =
  refresh t;
  match t.st with
  | Half_open -> open_now t
  | Closed ->
    t.failures <- t.failures + 1;
    if t.failures >= t.failure_threshold then open_now t
  | Open -> ()

let trip t = open_now t
let trips t = t.trips

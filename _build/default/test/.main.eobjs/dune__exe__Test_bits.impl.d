test/test_bits.ml: Alcotest Arc_util List QCheck QCheck_alcotest Sys

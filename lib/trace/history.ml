type kind = Read | Write

type event = {
  kind : kind;
  thread : int;
  seq : int;
  invoked : int;
  returned : int;
}

let event kind ~thread ~seq ~invoked ~returned =
  if returned < invoked then invalid_arg "History.event: returned before invoked";
  if seq < 0 then invalid_arg "History.event: negative sequence";
  { kind; thread; seq; invoked; returned }

let pp_event ppf e =
  Format.fprintf ppf "@[<h>%s(thread=%d, seq=%d, [%d,%d])@]"
    (match e.kind with Read -> "read" | Write -> "write")
    e.thread e.seq e.invoked e.returned

type t = { all : event list; rds : event list; wrs : event list }

let by_invocation a b =
  match compare a.invoked b.invoked with 0 -> compare a.returned b.returned | c -> c

let by_seq a b = compare a.seq b.seq

let of_events evs =
  let all = List.sort by_invocation evs in
  let rds = List.filter (fun e -> e.kind = Read) all in
  let wrs = List.sort by_seq (List.filter (fun e -> e.kind = Write) all) in
  { all; rds; wrs }

let events t = t.all
let reads t = t.rds
let writes t = t.wrs
let size t = List.length t.all

(* {1 Persistence}

   A line-oriented text format so a history survives the process that
   recorded it — the cross-process crash harness dumps the surviving
   history next to the register mapping, and arc-check re-judges it
   offline.  Header, then [meta key value] context lines (the crash
   fence, the pending write), then one event per line. *)

let format_name = "arc-history"
let format_version = 1

let dump ?(meta = []) t path =
  List.iter
    (fun (k, _) ->
      if k = "" || String.exists (fun c -> c = ' ' || c = '\n') k then
        invalid_arg "History.dump: meta keys must be non-empty and space-free")
    meta;
  let oc = open_out path in
  Printf.fprintf oc "%s %d\n" format_name format_version;
  List.iter (fun (k, v) -> Printf.fprintf oc "meta %s %d\n" k v) meta;
  List.iter
    (fun e ->
      Printf.fprintf oc "%c %d %d %d %d\n"
        (match e.kind with Read -> 'r' | Write -> 'w')
        e.thread e.seq e.invoked e.returned)
    t.all;
  close_out oc

let load path =
  let ic = open_in path in
  let fail line fmt =
    Printf.ksprintf
      (fun msg ->
        close_in_noerr ic;
        failwith (Printf.sprintf "History.load: %s:%d: %s" path line msg))
      fmt
  in
  (match input_line ic with
  | header when header = Printf.sprintf "%s %d" format_name format_version -> ()
  | header -> fail 1 "bad header %S" header
  | exception End_of_file -> fail 1 "empty file");
  let meta = ref [] and evs = ref [] and line = ref 1 in
  (try
     while true do
       let l = input_line ic in
       incr line;
       if l <> "" then
         match String.split_on_char ' ' l with
         | [ "meta"; k; v ] -> (
           match int_of_string_opt v with
           | Some v -> meta := (k, v) :: !meta
           | None -> fail !line "bad meta value %S" v)
         | [ k; thread; seq; invoked; returned ] -> (
           let kind =
             match k with
             | "r" -> Read
             | "w" -> Write
             | _ -> fail !line "bad event kind %S" k
           in
           match
             ( int_of_string_opt thread,
               int_of_string_opt seq,
               int_of_string_opt invoked,
               int_of_string_opt returned )
           with
           | Some thread, Some seq, Some invoked, Some returned ->
             evs := event kind ~thread ~seq ~invoked ~returned :: !evs
           | _ -> fail !line "bad event line %S" l)
         | _ -> fail !line "unparseable line %S" l
     done
   with End_of_file -> ());
  close_in ic;
  (of_events !evs, List.rev !meta)

module Recorder = struct
  type cell = {
    kinds : kind array;
    seqs : int array;
    invokes : int array;
    returns : int array;
    mutable len : int;
    mutable dropped : int;
  }

  type recorder = { cells : cell array; capacity : int }

  let create ~threads ~capacity =
    if threads < 1 then invalid_arg "Recorder.create: no threads";
    if capacity < 1 then invalid_arg "Recorder.create: no capacity";
    let fresh () =
      {
        kinds = Array.make capacity Read;
        seqs = Array.make capacity 0;
        invokes = Array.make capacity 0;
        returns = Array.make capacity 0;
        len = 0;
        dropped = 0;
      }
    in
    { cells = Array.init threads (fun _ -> fresh ()); capacity }

  let record r ~thread kind ~seq ~invoked ~returned =
    let c = r.cells.(thread) in
    if c.len >= r.capacity then c.dropped <- c.dropped + 1
    else begin
      let i = c.len in
      c.kinds.(i) <- kind;
      c.seqs.(i) <- seq;
      c.invokes.(i) <- invoked;
      c.returns.(i) <- returned;
      c.len <- i + 1
    end

  let dropped r = Array.fold_left (fun acc c -> acc + c.dropped) 0 r.cells

  let history r =
    let evs = ref [] in
    Array.iteri
      (fun thread c ->
        for i = c.len - 1 downto 0 do
          evs :=
            event c.kinds.(i) ~thread ~seq:c.seqs.(i) ~invoked:c.invokes.(i)
              ~returned:c.returns.(i)
            :: !evs
        done)
      r.cells;
    of_events !evs
end

(* The latency audit, plus the wait-freedom separation measured
   through recorded histories (the checkable face of Fig. 2/3). *)

module History = Arc_trace.History
module Audit = Arc_trace.Audit
module Config = Arc_harness.Config
module Registry = Arc_harness.Registry
module Strategy = Arc_vsched.Strategy

let ev kind ~seq ~i ~r = History.event kind ~thread:0 ~seq ~invoked:i ~returned:r

let test_stats_basic () =
  let h =
    History.of_events
      [
        ev History.Read ~seq:0 ~i:0 ~r:10;
        ev History.Read ~seq:0 ~i:20 ~r:22;
        ev History.Write ~seq:1 ~i:30 ~r:90;
      ]
  in
  let a = Audit.of_history h in
  Alcotest.(check int) "read count" 2 a.Audit.reads.Audit.count;
  Alcotest.(check int) "read max" 10 a.Audit.reads.Audit.max_duration;
  Alcotest.(check (float 1e-9)) "read mean" 6. a.Audit.reads.Audit.mean_duration;
  Alcotest.(check int) "write max" 60 a.Audit.writes.Audit.max_duration

let test_stats_empty () =
  let a = Audit.of_history (History.of_events []) in
  Alcotest.(check int) "zeroed" 0 a.Audit.reads.Audit.count

let test_bounded () =
  let h =
    History.of_events
      [ ev History.Read ~seq:0 ~i:0 ~r:5; ev History.Read ~seq:0 ~i:10 ~r:100 ]
  in
  (match Audit.bounded h ~kind:History.Read ~bound:200 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "bound 200 holds");
  match Audit.bounded h ~kind:History.Read ~bound:50 with
  | Ok () -> Alcotest.fail "bound 50 must fail"
  | Error worst ->
    Alcotest.(check int) "worst offender reported" 90
      (worst.History.returned - worst.History.invoked)

let audited_read_tail name ~steal_writer =
  let entry = Registry.find name in
  let strategy =
    let base = Strategy.round_robin () in
    if steal_writer then
      Strategy.steal_fibers ~seed:4 ~victims:[ 0 ] ~base ~probability:0.2
        ~min_pause:800 ~max_pause:1500
    else base
  in
  let cfg =
    {
      Config.sim_readers = 2;
      sim_size_words = 48;
      max_steps = 40_000;
      sim_workload = Config.Verify;
      sim_record = 6_000;
      sim_seed = 3;
    }
  in
  let result = entry.Registry.run_sim ~strategy cfg in
  let h = Option.get result.Config.history in
  (Audit.of_history h).Audit.reads.Audit.max_duration

let test_wait_free_read_tail_separation () =
  (* Stealing only the writer: ARC read response time stays near its
     fair-scheduler bound; rwlock reads inherit the multi-hundred-step
     thefts whenever one lands inside the writer's critical section. *)
  let arc = audited_read_tail "arc" ~steal_writer:true in
  let arc_quiet = audited_read_tail "arc" ~steal_writer:false in
  let lock = audited_read_tail "rwlock" ~steal_writer:true in
  Alcotest.(check bool)
    (Printf.sprintf "arc tail stable under theft (%d vs quiet %d)" arc arc_quiet)
    true
    (arc < (4 * arc_quiet) + 200);
  Alcotest.(check bool)
    (Printf.sprintf "rwlock tail (%d) inherits thefts; arc tail (%d) does not" lock
       arc)
    true (lock > 2 * arc)

let suite =
  [
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "bounded" `Quick test_bounded;
    Alcotest.test_case "wait-free read-tail separation" `Quick
      test_wait_free_read_tail_separation;
  ]

let rmw_weight = ref 4
let name = "sim"

let plain () = Sched.cede ~weight:1 ()
let rmw () = Sched.cede ~weight:!rmw_weight ()

type atomic = int ref

let atomic v = ref v

(* The simulator models interleavings, not layout: a contended cell is
   an ordinary cell (and, like [atomic], allocation is not a
   scheduling point), so schedule exploration is unchanged. *)
let atomic_contended = atomic
let atomic_contended_pair v1 v2 = (atomic v1, atomic v2)

let load a =
  plain ();
  !a

let store a v =
  plain ();
  a := v

(* The scheduler only preempts at [cede], so the read-modify-write
   below really is atomic with respect to every other fiber. *)
let exchange a v =
  rmw ();
  let old = !a in
  a := v;
  old

let fetch_and_add a k =
  rmw ();
  let old = !a in
  a := old + k;
  old

let add_and_fetch a k =
  rmw ();
  let v = !a + k in
  a := v;
  v

let incr a = ignore (add_and_fetch a 1)

let compare_and_set a expected v =
  rmw ();
  if !a = expected then begin
    a := v;
    true
  end
  else false

let fetch_and_or a mask =
  rmw ();
  let old = !a in
  a := old lor mask;
  old

let fetch_and_and a mask =
  rmw ();
  let old = !a in
  a := old land mask;
  old

type buffer = int array

let alloc words =
  if words < 0 then invalid_arg "Sim_mem.alloc: negative size";
  Array.make words 0

let capacity = Array.length

let write_words buf ~src ~len =
  if len < 0 || len > Array.length src || len > Array.length buf then
    invalid_arg "Sim_mem.write_words: bad length";
  for i = 0 to len - 1 do
    plain ();
    buf.(i) <- src.(i)
  done

let read_word buf i =
  plain ();
  buf.(i)

let read_words buf ~dst ~len =
  if len < 0 || len > Array.length dst || len > Array.length buf then
    invalid_arg "Sim_mem.read_words: bad length";
  for i = 0 to len - 1 do
    plain ();
    dst.(i) <- buf.(i)
  done

let blit src dst ~len =
  if len < 0 || len > Array.length src || len > Array.length dst then
    invalid_arg "Sim_mem.blit: bad length";
  for i = 0 to len - 1 do
    plain ();
    dst.(i) <- src.(i)
  done

let cede () = Sched.cede ~weight:1 ()

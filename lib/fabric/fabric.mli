(** Sharded register fabric with wait-free atomic cross-shard
    snapshots (ISSUE 6).

    A keyed array of (1,N) registers — one shard per key, any
    algorithm with the {!Arc_core.Register_intf.STAMPED} capability
    ([caps.snapshot_read = true]) slots in — plus an atomic
    multi-shard [snapshot]: a vector of shard values that were all
    simultaneously published at one instant inside the snapshot's
    interval.

    The snapshot is Afek et al.'s double collect with modified-twice
    helping, driven by publish stamps instead of payload comparison:
    collect every shard once ([read_stamped]), then certify the vector
    with a probe pass of stamp-only re-reads ([probe_stamp], two plain
    loads per shard).  A shard whose stamp moved is re-collected and
    the pass retried; a shard that moves {e twice} identifies a writer
    whose second write began inside this scan — that writer, having
    seen the scan announced, deposited a complete snapshot of its own
    before publishing, and the scanner adopts it.  Helping is lazy: a
    substrate counter announces active scans, and writers only pay the
    embedded collect while one is in flight (one extra load
    otherwise).  Total cost is bounded by fabric shape — at most
    [2·shards + 3] probe passes — regardless of scheduling, so
    [snapshot] is wait-free whenever the underlying registers are.
    See DESIGN.md §8 for the linearization and helping-validity
    arguments.

    Threading model: [writers] writer threads, writer [w] owning
    shards [s] with [s mod writers = w] (enforced); [readers] scanner
    threads, each with its own {!Make.scanner} context.  Deposits
    travel through host-heap pointers, so all participants must share
    one OCaml heap (the shard registers themselves may live on any
    substrate, including shared memory). *)

module Make (R : Arc_core.Register_intf.STAMPED) : sig
  type t
  (** A fabric of [shards] registers over [R]. *)

  type scanner
  (** A reader's context: per-shard register handles plus collect
      scratch.  One per reader thread; never shared. *)

  type writer
  (** A writer thread's context (shard ownership + helping state).
      One per writer identity; never shared. *)

  type snap
  (** A snapshot vector.  {b Stability}: a direct snapshot aliases its
      scanner's scratch and stays valid until that scanner's next
      {!snapshot}; a {!borrowed} one is immutable. *)

  val algorithm : string
  (** ["fabric(<R.algorithm>)"]. *)

  val create :
    shards:int -> writers:int -> readers:int -> capacity:int -> init:int array -> t
  (** [create ~shards ~writers ~readers ~capacity ~init] builds
      [shards] registers of [capacity] words initialized to [init],
      provisioned for [readers] scanner threads and [writers] writer
      threads.  Register identities scale with [readers + writers]
      (thread counts), never with [shards].
      @raise Invalid_argument unless [1 <= writers <= shards] and
      [readers >= 1] (plus the register's own constraints). *)

  val shards : t -> int
  val writers : t -> int
  val readers : t -> int
  val capacity : t -> int

  val owner_of : t -> int -> int
  (** [owner_of t s = s mod writers t] — the writer identity that owns
      shard [s]. *)

  val scanner : t -> int -> scanner
  (** Context for reader identity [i] in [0, readers).
      @raise Invalid_argument if out of range. *)

  val writer : t -> int -> writer
  (** Context for writer identity [w] in [0, writers).
      @raise Invalid_argument if out of range. *)

  val write : writer -> shard:int -> src:int array -> len:int -> unit
  (** Publish [src.(0..len-1)] to [shard].  While a snapshot is
      announced, first takes and deposits a helping snapshot (the
      wait-free helping protocol); otherwise adds a single load to the
      plain register write.
      @raise Invalid_argument if [shard] is out of range or not owned
      by this writer. *)

  val read : scanner -> shard:int -> dst:int array -> int
  (** Plain single-shard read (no cross-shard guarantee): the
      register's own [read_into] through this scanner's handle. *)

  val read_with : scanner -> shard:int -> f:(R.Mem.buffer -> int -> 'a) -> 'a
  (** Zero-copy single-shard read, as the register's [read_with]. *)

  val snapshot : scanner -> snap
  (** The wait-free atomic cross-shard snapshot.  Linearizes at an
      instant within its own interval: either the start of the final
      (clean) probe pass, or inside the interval of the helping
      deposit it adopted — which itself nests in this call's
      interval. *)

  val snapshot_unvalidated : scanner -> snap
  (** {b Negative control} — one collect pass with no announcement and
      no probe, deliberately non-atomic: concurrent writes leave torn
      vectors.  Exists so tests and campaigns can demonstrate the
      fabric checker convicts what {!snapshot} prevents.  Never a real
      read path. *)

  val shard_len : snap -> int -> int
  val shard_stamp : snap -> int -> int
  val shard_word : snap -> int -> int -> int
  (** [shard_word snap s i] — word [i] of shard [s]'s value. *)

  val shard_copy : snap -> int -> dst:int array -> int
  (** Copy shard [s]'s value into [dst], returning its length.
      @raise Invalid_argument if [dst] is too short. *)

  val borrowed : snap -> bool
  (** [true] iff the snapshot was served from a helping deposit. *)

  (** {2 Telemetry}

      Same wait-free discipline as the registers': host-heap
      single-writer cells, no substrate operations, no RMW. *)

  val snapshots_direct : t -> int
  val snapshots_borrowed : t -> int

  val snapshot_retries : t -> int
  (** Failed probe passes — bounded by [2·shards + 3] per snapshot;
      soaks watch this to falsify the wait-freedom bound. *)

  val deposits_made : t -> int
  val shard_writes : t -> int -> int

  val metrics : t -> Arc_obs.Obs.metric list
  (** Fabric counters (snapshot outcomes, retries, deposits, per-shard
      writes) for {!Arc_obs.Obs.prometheus}/{!Arc_obs.Obs.json}. *)
end

test/test_coherence.ml: Alcotest Arc_coherence Arc_core Arc_harness Arc_vsched Array List Printf

(** Exhaustive bounded schedule exploration — a small model checker.

    Random and PCT strategies sample the interleaving space;
    {!exhaustive} instead enumerates {e every} schedule of a (small)
    scenario by depth-first search over the scheduler's decision tree:
    run a schedule to completion following a decision prefix, then
    backtrack to the deepest decision with an untried alternative.

    The scenario must be reproducible: [scenario ()] must build fresh
    state and fibers whose behaviour depends only on scheduling (no
    ambient randomness or real time).  The number of schedules is
    exponential in the interleaving points, so this is for
    micro-scenarios — e.g. one ARC write racing one read interleaves
    in a few thousand ways, all of which are checked, turning the
    paper's §4 case analyses into exhaustively verified facts.

    [check] runs after every completed schedule (with the scenario's
    state captured in its closure); raise to fail, e.g. via Alcotest.
    Exploration stops early after [max_schedules] paths. *)

type outcome = {
  schedules : int;  (** complete schedules executed *)
  exhausted : bool;  (** false iff stopped by [max_schedules] *)
  max_decision_depth : int;
}

val exhaustive :
  ?max_schedules:int ->
  scenario:(unit -> (unit -> unit) array * (unit -> unit)) ->
  unit ->
  outcome
(** [exhaustive ~scenario ()] — [scenario ()] returns the fibers to
    run and the post-schedule check.  Default [max_schedules] is
    [1_000_000]. *)

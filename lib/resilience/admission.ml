(* Wait-free reader admission (ISSUE 8).

   The registers pre-declare a static reader population: [create
   ~readers] sizes the presence ledger, each identity pins one unit of
   presence on its handle's last-read slot forever, and the packed
   count guard raises [Saturated] if the population is exceeded.  That
   model is exactly the paper's, and exactly wrong for churn: short-
   lived readers arriving and leaving at Fig-3 scale would either
   exhaust identities or — worse — be tempted to mint a fresh handle
   per arrival, which corrupts the presence ledger (a fresh handle
   releases a presence unit on slot 0 it never acquired, and leaks the
   unit its predecessor pinned elsewhere; the soak's gate-bypass
   control convicts precisely this).

   The admission gate closes the gap without touching the register's
   algorithms or its wait-freedom:

   - {b Identities are a leased pool.}  The gate owns [capacity]
     reader identities and their {e pre-built, persistent} handles.
     Admission hands out a {e ticket} — a claim on one identity — and
     the same handle serves every tenant of that identity in turn, so
     the ledger sees one immortal reader per identity, as the paper
     assumes.

   - {b Refusal is a value, not an exception.}  When no identity is
     free (and the bounded waiting room is exhausted), the caller gets
     [Backpressured {retry_after; live; high_water}] — full-jitter
     delay suggestion, current load, historical peak — instead of a
     [Saturated] raise escaping from deep inside a read.

   - {b Crash without depart is survivable.}  Tickets are leases: a
     holder renews while it reads, and a sweep (explicit, or fired by
     admission pressure) reclaims identities whose lease expired, so a
     kill-9'd reader costs one identity for one lease, not forever.

   Wait-freedom: [Pool.admit], [depart], [renew] and [sweep] are
   bounded — at most two scans over [capacity] slots, each slot one
   CAS that is never retried (a lost race just moves on).  Only
   [admit_wait]'s waiting room blocks, by design and by deadline,
   mirroring [Session.read_with].

   Slot protocol.  Each identity is one [Atomic.t] word: {e even} =
   free, {e odd} = held; every transition is a [compare_and_set] to
   [w + 1], so the word doubles as a generation counter.  A depart (or
   evict) racing a completed evict-and-readmit fails its CAS — the
   word has advanced past the remembered token — which is the whole
   reclaim-then-late-release story: a zombie holder coming back after
   its lease was swept cannot free the identity out from under the new
   tenant. *)

module RI = Arc_core.Register_intf
module Splitmix = Arc_util.Splitmix
module Obs = Arc_obs.Obs

module Pool = struct
  type ticket = { slot : int; token : int  (** the odd word we hold *) }

  type t = {
    capacity : int;
    lease : int;  (** ticket lease in clock units; [<= 0] disables eviction *)
    words : int Atomic.t array;  (** even = free, odd = held; CAS +1 only *)
    renewed : int Atomic.t array;  (** last renewal time, valid while held *)
    cursor : int Atomic.t;  (** rotating scan start — spreads admit CAS traffic *)
    salt : int Atomic.t;  (** uniquifies jitter seeds for same-instant refusals *)
    live : int Atomic.t;
    high_water : int Atomic.t;
    waiters : int Atomic.t;  (** current waiting-room occupancy *)
    events : Obs.Admission.t;
  }

  let create ?(lease = 0) ~capacity () =
    if capacity < 1 then
      invalid_arg (Printf.sprintf "Admission.Pool.create: capacity = %d" capacity);
    {
      capacity;
      lease;
      words = Array.init capacity (fun _ -> Atomic.make 0);
      renewed = Array.init capacity (fun _ -> Atomic.make 0);
      cursor = Atomic.make 0;
      salt = Atomic.make 0;
      live = Atomic.make 0;
      high_water = Atomic.make 0;
      waiters = Atomic.make 0;
      events = Obs.Admission.create ();
    }

  let capacity t = t.capacity
  let lease t = t.lease
  let live t = Atomic.get t.live
  let high_water t = Atomic.get t.high_water
  let events t = t.events
  let holds t ticket = Atomic.get t.words.(ticket.slot) = ticket.token

  (* CAS-max; bounded in practice (one retry per concurrent admit). *)
  let rec note_high_water t l =
    let h = Atomic.get t.high_water in
    if l > h && not (Atomic.compare_and_set t.high_water h l) then
      note_high_water t l

  let sweep t ~now =
    if t.lease <= 0 then 0
    else begin
      let evicted = ref 0 in
      for i = 0 to t.capacity - 1 do
        let w = Atomic.get t.words.(i) in
        if
          w land 1 = 1
          && now - Atomic.get t.renewed.(i) > t.lease
          && Atomic.compare_and_set t.words.(i) w (w + 1)
        then begin
          Atomic.decr t.live;
          Obs.Admission.evicted t.events;
          incr evicted
        end
      done;
      !evicted
    end

  (* One bounded scan from a rotating start; the CAS either claims the
     slot or someone else just did — never retried on the same slot. *)
  let scan t ~now =
    let start = Atomic.fetch_and_add t.cursor 1 in
    let found = ref None in
    let k = ref 0 in
    while !found = None && !k < t.capacity do
      let i = (start + !k) mod t.capacity in
      let w = Atomic.get t.words.(i) in
      if w land 1 = 0 && Atomic.compare_and_set t.words.(i) w (w + 1) then begin
        Atomic.set t.renewed.(i) now;
        let l = 1 + Atomic.fetch_and_add t.live 1 in
        note_high_water t l;
        found := Some { slot = i; token = w + 1 }
      end;
      incr k
    done;
    !found

  (* The verdict payload, without counting a refusal — [guard] probes
     this after eviction without inflating arc_admission_backpressured. *)
  let pressure t ~now =
    let rng = Splitmix.of_int ((now * 0x2545F) lxor Atomic.fetch_and_add t.salt 1) in
    let ceiling = max 4 (2 * t.capacity) in
    {
      RI.retry_after = 1 + Splitmix.int rng ceiling;
      live = Atomic.get t.live;
      high_water = Atomic.get t.high_water;
    }

  let admit t ~now =
    match scan t ~now with
    | Some tk ->
      Obs.Admission.admitted t.events;
      RI.Admitted tk
    | None -> (
      (* Sweep-on-pressure: a full pool may be full of corpses. *)
      let resweep = sweep t ~now > 0 in
      match if resweep then scan t ~now else None with
      | Some tk ->
        Obs.Admission.admitted t.events;
        RI.Admitted tk
      | None ->
        Obs.Admission.backpressured t.events;
        RI.Backpressured (pressure t ~now))

  let depart t ticket =
    if Atomic.compare_and_set t.words.(ticket.slot) ticket.token (ticket.token + 1)
    then begin
      Atomic.decr t.live;
      Obs.Admission.departed t.events;
      true
    end
    else false (* already evicted (and possibly re-admitted): leave it be *)

  (* CAS-max on the timestamp so a zombie's stale renewal can never
     {e shorten} the current tenant's lease; with monotone clocks the
     worst a zombie can do is extend it by one lease — benign, the
     sweep gets it next round.  Renew at cadence < lease/2: the
     read-renewed / CAS-word pair in [sweep] is the classic lease race
     and needs the standard slack. *)
  let renew t ticket ~now =
    if Atomic.get t.words.(ticket.slot) <> ticket.token then false
    else begin
      let r = Atomic.get t.renewed.(ticket.slot) in
      if now > r then ignore (Atomic.compare_and_set t.renewed.(ticket.slot) r now);
      true
    end

  let enter_room t ~room =
    if room <= 0 then false
    else if Atomic.fetch_and_add t.waiters 1 < room then true
    else begin
      Atomic.decr t.waiters;
      false
    end

  let leave_room t = Atomic.decr t.waiters
  let waiting t = Atomic.get t.waiters

  let metrics ?labels t =
    Obs.Admission.metrics ?labels t.events
    @ [
        Obs.gauge ?labels "arc_admission_live"
          ~help:"Tickets currently held against the gate"
          (float_of_int (live t));
        Obs.gauge ?labels "arc_admission_high_water"
          ~help:"Maximum simultaneous tickets ever held"
          (float_of_int (high_water t));
        Obs.gauge ?labels "arc_admission_waiting"
          ~help:"Arrivals currently parked in the bounded waiting room"
          (float_of_int (waiting t));
      ]
end

(* The gate over a concrete register: a [Pool] plus the persistent
   handles that make leased identities safe against the presence
   ledger.  [base] is the first reader identity the gate owns —
   identities [base, base + capacity) must be reserved for it at
   [R.create ~readers] time and never claimed directly. *)
module Make (R : RI.S) = struct
  type ticket = Pool.ticket

  type t = {
    pool : Pool.t;
    handles : R.reader array;
    base : int;
    room : int;
    now : unit -> int;
    sleep : int -> unit;
    on_release : (unit -> unit) option;
  }

  let create ?(room = 0) ?(lease = 0) ?on_release ~now ~sleep ~base ~capacity reg =
    if base < 0 then invalid_arg (Printf.sprintf "Admission.create: base = %d" base);
    if room < 0 then invalid_arg (Printf.sprintf "Admission.create: room = %d" room);
    {
      pool = Pool.create ~lease ~capacity ();
      (* Built once, never rebuilt: handle [k] is the one immortal
         reader the presence ledger sees for identity [base + k],
         whatever succession of tenants holds its ticket. *)
      handles = Array.init capacity (fun k -> R.reader reg (base + k));
      base;
      room;
      now;
      sleep;
      on_release;
    }

  let pool t = t.pool
  let capacity t = Pool.capacity t.pool
  let live t = Pool.live t.pool
  let high_water t = Pool.high_water t.pool
  let metrics ?labels t = Pool.metrics ?labels t.pool
  let admit t = Pool.admit t.pool ~now:(t.now ())

  (* Bounded waiting room: park, sleep the suggested (jittered) delay,
     re-try, give up at the deadline.  Blocking is opt-in here exactly
     as in [Session.read_with] — the gate's own verdicts stay
     wait-free. *)
  let admit_wait ?deadline ?backoff t =
    match admit t with
    | RI.Admitted _ as a -> a
    | RI.Backpressured bp0 as refused ->
      if not (Pool.enter_room t.pool ~room:t.room) then refused
      else begin
        let bo =
          match backoff with
          | Some b -> b
          | None -> Backoff.create ~seed:(t.now () + 1) ()
        in
        let expired () =
          match deadline with Some d -> t.now () >= d | None -> false
        in
        let rec wait bp =
          t.sleep (max bp.RI.retry_after (Backoff.next bo));
          match Pool.admit t.pool ~now:(t.now ()) with
          | RI.Admitted _ as a ->
            Pool.leave_room t.pool;
            a
          | RI.Backpressured bp' ->
            if expired () then begin
              Pool.leave_room t.pool;
              RI.Backpressured bp'
            end
            else wait bp'
        in
        wait bp0
      end

  let reader t (ticket : ticket) = t.handles.(ticket.Pool.slot)
  let identity t (ticket : ticket) = t.base + ticket.Pool.slot
  let renew t ticket = Pool.renew t.pool ticket ~now:(t.now ())

  let released t n =
    if n && t.on_release <> None then (Option.get t.on_release) ();
    n

  let depart t ticket = released t (Pool.depart t.pool ticket)

  let sweep t =
    let n = Pool.sweep t.pool ~now:(t.now ()) in
    ignore (released t (n > 0));
    n

  (* Per-read admission guard for [Session.create ?admission]: [None]
     while the ticket is live, the current pressure once the lease
     sweep has revoked it — the session then degrades instead of
     reading through an identity someone else now owns. *)
  let guard t ticket () =
    if Pool.holds t.pool ticket then None else Some (Pool.pressure t.pool ~now:(t.now ()))
end

(* Per-shard gates for the register fabric: one [Pool] per shard,
   admission is all-or-rollback so a scanner never holds a partial set
   of shard identities (which would deadlock-by-leak the shards it did
   get under sustained churn). *)
module Shards = struct
  type t = { pools : Pool.t array }

  let create pools =
    if Array.length pools = 0 then invalid_arg "Admission.Shards.create: no pools";
    { pools }

  let pools t = t.pools
  let shards t = Array.length t.pools

  let admit_all t ~now =
    let n = Array.length t.pools in
    let tickets = Array.make n None in
    let rec go i =
      if i = n then
        RI.Admitted (Array.map (fun o -> Option.get o) tickets)
      else
        match Pool.admit t.pools.(i) ~now with
        | RI.Admitted tk ->
          tickets.(i) <- Some tk;
          go (i + 1)
        | RI.Backpressured bp ->
          for j = i - 1 downto 0 do
            ignore (Pool.depart t.pools.(j) (Option.get tickets.(j)))
          done;
          RI.Backpressured bp
    in
    go 0

  let depart_all t tks =
    if Array.length tks <> Array.length t.pools then
      invalid_arg "Admission.Shards.depart_all: ticket count <> shard count";
    let freed = ref 0 in
    Array.iteri (fun i tk -> if Pool.depart t.pools.(i) tk then incr freed) tks;
    !freed
end

lib/harness/sim_runner.mli: Arc_core Arc_vsched Config

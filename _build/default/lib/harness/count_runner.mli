(** Deterministic per-operation instruction accounting — experiment
    E4.  Runs a single-threaded, perfectly interleaved schedule of
    writes and reads over a register instantiated on a
    {!Arc_mem.Counting} memory instance and reports RMW / plain-load
    averages per operation.

    The schedule parameter [reads_per_write] controls the fast-path
    frequency: with [r] reads by each reader between consecutive
    writes, an ARC reader pays RMWs only on the first of the [r]
    (the snapshot is stale exactly once), while RF pays one RMW on
    every read — the measured version of the paper's central
    argument. *)

(** The counter side of an {!Arc_mem.Counting} instance.  The caller
    must pass the counters of the very memory instance the register
    [R] was built over, or the measurements count someone else's
    operations. *)
module type COUNTERS = sig
  val counts : unit -> Arc_mem.Mem_intf.counts
  val reset : unit -> unit
end

type per_op = {
  rmw_per_read : float;
  rmw_per_write : float;
  atomic_loads_per_read : float;
  word_writes_per_write : float;
  reads : int;
  writes : int;
}

val pp_per_op : Format.formatter -> per_op -> unit

module Make (_ : COUNTERS) (_ : Arc_core.Register_intf.S) : sig
  val measure :
    readers:int -> size_words:int -> rounds:int -> reads_per_write:int -> per_op
  (** [rounds] write rounds; in each, one write is followed by
      [reads_per_write] reads from every reader. *)
end

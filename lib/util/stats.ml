type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p999 : float;
  ci95 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let m = mean xs in
  let sd = stddev xs in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  {
    n;
    mean = m;
    stddev = sd;
    min = mn;
    max = mx;
    median = percentile xs 50.;
    p95 = percentile xs 95.;
    p999 = percentile xs 99.9;
    ci95 = 1.96 *. sd /. sqrt (float_of_int n);
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<h>mean=%.4g ±%.2g (sd=%.3g, n=%d, min=%.4g, max=%.4g)@]"
    s.mean s.ci95 s.stddev s.n s.min s.max

module Outcomes = struct
  type t = {
    mutable ok : int;
    mutable stale : int;
    mutable exhausted : int;
    mutable errors : int;
    mutable retries : int;
  }

  let create () = { ok = 0; stale = 0; exhausted = 0; errors = 0; retries = 0 }

  let of_counts ~ok ~stale ~exhausted ~errors ~retries =
    { ok; stale; exhausted; errors; retries }
  let ok t = t.ok <- t.ok + 1
  let stale t = t.stale <- t.stale + 1
  let exhausted t = t.exhausted <- t.exhausted + 1
  let error t = t.errors <- t.errors + 1
  let retry t = t.retries <- t.retries + 1
  let ok_count t = t.ok
  let stale_count t = t.stale
  let exhausted_count t = t.exhausted
  let error_count t = t.errors
  let retry_count t = t.retries
  let total t = t.ok + t.stale + t.exhausted
  let degraded t = t.stale + t.exhausted

  let degraded_rate t =
    let n = total t in
    if n = 0 then 0. else float_of_int (degraded t) /. float_of_int n

  let merge_into ~src ~dst =
    dst.ok <- dst.ok + src.ok;
    dst.stale <- dst.stale + src.stale;
    dst.exhausted <- dst.exhausted + src.exhausted;
    dst.errors <- dst.errors + src.errors;
    dst.retries <- dst.retries + src.retries

  let pp ppf t =
    Format.fprintf ppf
      "@[<h>ok=%d, stale=%d, exhausted=%d (degraded %.2f%%), errors=%d, retries=%d@]"
      t.ok t.stale t.exhausted
      (100. *. degraded_rate t)
      t.errors t.retries
end

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
end

(* Power-of-two histogram used for latency tails. *)

module H = Arc_util.Histogram

let check = Alcotest.(check int)

let test_basic () =
  let h = H.create () in
  List.iter (H.record h) [ 1; 2; 3; 100; 1000 ];
  check "count" 5 (H.count h);
  check "max exact" 1000 (H.max_value h)

let test_percentiles_bounded () =
  let h = H.create () in
  for v = 1 to 1000 do
    H.record h v
  done;
  let p50 = H.percentile h 50. in
  (* Upper bound within a factor of two of the true percentile. *)
  Alcotest.(check bool) (Printf.sprintf "p50=%d in [500, 1023]" p50) true
    (p50 >= 500 && p50 <= 1023);
  check "p100 is the max" 1000 (H.percentile h 100.)

let test_zero_and_negative () =
  let h = H.create () in
  H.record h 0;
  H.record h (-5);
  check "bucketed at zero" 0 (H.percentile h 100.);
  check "count" 2 (H.count h)

let test_empty_percentile () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (H.percentile (H.create ()) 50.))

let test_merge () =
  let a = H.create () and b = H.create () in
  H.record a 10;
  H.record b 10_000;
  H.merge_into ~src:a ~dst:b;
  check "merged count" 2 (H.count b);
  check "merged max" 10_000 (H.max_value b)

let test_buckets_ascending () =
  let h = H.create () in
  List.iter (H.record h) [ 1; 1; 5; 5; 5; 300 ];
  let bs = H.buckets h in
  check "three buckets" 3 (List.length bs);
  let counts = List.map (fun (_, _, c) -> c) bs in
  Alcotest.(check (list int)) "counts" [ 2; 3; 1 ] counts;
  List.iter
    (fun (lo, hi, _) -> Alcotest.(check bool) "lo<=hi" true (lo <= hi))
    bs

let prop_percentile_upper_bound =
  QCheck.Test.make ~name:"percentile dominates at least p% of samples" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 1_000_000))
    (fun samples ->
      let h = H.create () in
      List.iter (H.record h) samples;
      let p = 90. in
      let bound = H.percentile h p in
      let below = List.length (List.filter (fun v -> max v 0 <= bound) samples) in
      float_of_int below >= p /. 100. *. float_of_int (List.length samples))

let prop_max_exact =
  QCheck.Test.make ~name:"max_value is exact" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 1_000_000))
    (fun samples ->
      let h = H.create () in
      List.iter (H.record h) samples;
      H.max_value h = List.fold_left max 0 samples)

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "percentiles bounded" `Quick test_percentiles_bounded;
    Alcotest.test_case "zero and negative" `Quick test_zero_and_negative;
    Alcotest.test_case "empty percentile" `Quick test_empty_percentile;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "buckets ascending" `Quick test_buckets_ascending;
    QCheck_alcotest.to_alcotest prop_percentile_upper_bound;
    QCheck_alcotest.to_alcotest prop_max_exact;
  ]

(* Fabric snapshot campaign under the virtual scheduler (ISSUE 6).

   Writer fibers round-robin over their owned shards, stamping each
   shard's payload with a per-shard sequence number; scanner fibers
   take cross-shard snapshots, validate every shard word-by-word, and
   record one {!Arc_trace.Checker.snapshot_obs} per snapshot.  The
   run's per-shard write histories plus the recorded snapshots feed
   {!Arc_trace.Checker.check_fabric} ([check]).

   Recording uses plain per-shard list refs rather than
   {!Arc_trace.History.Recorder}: the scheduler is cooperative
   (exactly one fiber runs at a time), so there is no contention to
   engineer around and no drop budget to size.

   Word-level validation and cross-shard checking test different
   claims: each shard value arrives through the underlying register's
   atomic read, so [fr_torn] (payload corruption within one shard)
   must be zero even for the collect-only negative control — the
   negative control's defect is that its {e vector} never coexisted,
   which only the checker's window intersection can convict. *)

module History = Arc_trace.History
module Checker = Arc_trace.Checker
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

type result = {
  fr_snapshots : int;  (* snapshots completed (direct + borrowed) *)
  fr_borrowed : int;  (* served from a writer's helping deposit *)
  fr_retries : int;  (* failed probe passes across all snapshots *)
  fr_deposits : int;  (* helping snapshots deposited by writers *)
  fr_writes : int;  (* shard writes published *)
  fr_torn : int;  (* per-shard payload validation failures (expect 0) *)
  fr_steps : int;  (* simulated steps consumed *)
  fr_shard_writes : History.t array;  (* per shard, seqs 1..k *)
  fr_snapshot_obs : Checker.snapshot_obs list;
}

let check (r : result) =
  Checker.check_fabric ~writes:r.fr_shard_writes ~snapshots:r.fr_snapshot_obs ()

module Make (R : Arc_core.Register_intf.STAMPED) = struct
  module P = Arc_workload.Payload.Make (R.Mem)
  module F = Arc_fabric.Fabric.Make (R)

  type out = { mutable ops : int; mutable torn : int }

  (* Writer [wid] cycles through its owned shards, one write per
     iteration.  [seqs] is shared across fibers but each cell has
     exactly one writer (shard ownership is static), matching the
     single-writer regime everywhere else in the repo. *)
  let writer_fiber ~fw ~wid ~(cfg : Config.fabric_sim) ~seqs ~events ~out () =
    let size = cfg.fab_size_words in
    let src = Array.make size 0 in
    let owned =
      List.filter
        (fun s -> s mod cfg.fab_writers = wid)
        (List.init cfg.fab_shards Fun.id)
    in
    let cursor = ref owned in
    while Sched.now () < cfg.fab_steps do
      let s, rest =
        match !cursor with [] -> assert false | s :: rest -> (s, rest)
      in
      cursor := (if rest = [] then owned else rest);
      let seq = seqs.(s) + 1 in
      P.stamp src ~seq ~len:size;
      let invoked = Sched.now () in
      F.write fw ~shard:s ~src ~len:size;
      let returned = Sched.now () in
      seqs.(s) <- seq;
      events.(s) :=
        History.event History.Write ~thread:wid ~seq ~invoked ~returned
        :: !(events.(s));
      out.ops <- out.ops + 1;
      Sched.cede ()
    done

  let scanner_fiber ~ctx ~sid ~(cfg : Config.fabric_sim) ~obs ~out () =
    let scratch = Array.make cfg.fab_size_words 0 in
    while Sched.now () < cfg.fab_steps do
      let invoked = Sched.now () in
      let snap =
        if cfg.fab_atomic then F.snapshot ctx else F.snapshot_unvalidated ctx
      in
      let returned = Sched.now () in
      let observed =
        Array.init cfg.fab_shards (fun s ->
            let len = F.shard_copy snap s ~dst:scratch in
            match P.validate_words scratch ~len with
            | Ok seq -> seq
            | Error _ ->
              out.torn <- out.torn + 1;
              P.decode_words scratch)
      in
      (* Snapshot threads live above the writer range so projected
         reads never collide with writer thread ids. *)
      obs :=
        {
          Checker.sthread = cfg.fab_writers + sid;
          invoked;
          returned;
          observed;
          sepoch = 0 (* simulated fabric has no elections *);
        }
        :: !obs;
      out.ops <- out.ops + 1;
      Sched.cede ()
    done

  let run ?strategy (cfg : Config.fabric_sim) : result =
    if cfg.fab_shards < 1 then invalid_arg "Fabric_runner.run: need shards";
    if cfg.fab_writers < 1 || cfg.fab_writers > cfg.fab_shards then
      invalid_arg "Fabric_runner.run: need 1 <= writers <= shards";
    if cfg.fab_scanners < 1 then invalid_arg "Fabric_runner.run: need a scanner";
    if cfg.fab_size_words < 1 then invalid_arg "Fabric_runner.run: empty shards";
    if cfg.fab_steps < 1 then invalid_arg "Fabric_runner.run: no step budget";
    let strategy =
      match strategy with
      | Some s -> s
      | None -> Strategy.random ~seed:cfg.fab_seed
    in
    let init = Array.make cfg.fab_size_words 0 in
    P.stamp init ~seq:0 ~len:cfg.fab_size_words;
    let fab =
      F.create ~shards:cfg.fab_shards ~writers:cfg.fab_writers
        ~readers:cfg.fab_scanners ~capacity:cfg.fab_size_words ~init
    in
    let seqs = Array.make cfg.fab_shards 0 in
    let events = Array.init cfg.fab_shards (fun _ -> ref []) in
    let obs = ref [] in
    let nfibers = cfg.fab_writers + cfg.fab_scanners in
    let outs = Array.init nfibers (fun _ -> { ops = 0; torn = 0 }) in
    let fibers =
      Array.init nfibers (fun i ->
          if i < cfg.fab_writers then
            writer_fiber ~fw:(F.writer fab i) ~wid:i ~cfg ~seqs ~events
              ~out:outs.(i)
          else
            scanner_fiber
              ~ctx:(F.scanner fab (i - cfg.fab_writers))
              ~sid:(i - cfg.fab_writers) ~cfg ~obs ~out:outs.(i))
    in
    (* Same backstop rationale as {!Sim_runner}: fibers self-terminate
       at loop tops, the hard cap only bounds a wait-freedom bug. *)
    let backstop = (cfg.fab_steps * 3) + 100_000 in
    let outcome = Sched.run ~max_steps:backstop ~strategy fibers in
    let writes = ref 0 and snapshots = ref 0 and torn = ref 0 in
    Array.iteri
      (fun i o ->
        if i < cfg.fab_writers then writes := !writes + o.ops
        else snapshots := !snapshots + o.ops;
        torn := !torn + o.torn)
      outs;
    {
      fr_snapshots = !snapshots;
      fr_borrowed = F.snapshots_borrowed fab;
      fr_retries = F.snapshot_retries fab;
      fr_deposits = F.deposits_made fab;
      fr_writes = !writes;
      fr_torn = !torn;
      fr_steps = outcome.Sched.steps;
      fr_shard_writes = Array.map (fun l -> History.of_events !l) events;
      fr_snapshot_obs = List.rev !obs;
    }
end

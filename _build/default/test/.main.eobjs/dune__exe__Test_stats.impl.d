test/test_stats.ml: Alcotest Arc_util Array Float Gen QCheck QCheck_alcotest

(** Run configurations and results shared by the runners.

    [workload] mirrors the paper's two experimental modes plus a
    checking mode:
    - [Hold]: the hold-model of §5 — operations do nothing but run
      the register algorithm (writes copy a fixed buffer, reads touch
      only the snapshot pointer), maximizing contention;
    - [Processing]: writes generate fresh data, reads scan the whole
      snapshot (§5's second experiment set);
    - [Verify]: like [Processing] but every snapshot is validated
      word-by-word and operations can be recorded into a history for
      the atomicity checker — the correctness-stress mode. *)

type workload = Hold | Processing | Verify

let workload_name = function
  | Hold -> "hold"
  | Processing -> "processing"
  | Verify -> "verify"

(** Hypervisor CPU-steal injection for real runs (DESIGN.md §2): with
    [probability], an operation is followed — or, on the reader side,
    interrupted mid-snapshot-access — by a [pause_us] sleep that
    yields the core, modelling the vCPU being scheduled out.  The
    simulator's {!Arc_vsched.Strategy.steal} provides the
    anywhere-preemption version. *)
type steal = { probability : float; pause_us : float }

(** Watchdog for real runs: after the stop flag is raised, the
    coordinator polls per-thread completion flags every [poll_s]
    seconds; threads that have not finished within [grace_s] make the
    run fail with a per-thread progress diagnostic
    ({!Real_runner.Hung}) instead of blocking the join forever — a
    hung register operation turns into an explained test failure, not
    a CI timeout. *)
type watchdog = { poll_s : float; grace_s : float }

let default_watchdog = { poll_s = 0.05; grace_s = 10. }

type real = {
  readers : int;
  size_words : int;
  duration_s : float;
  workload : workload;
  steal : steal option;
  record : int;  (** events recorded per thread; 0 disables recording *)
  seed : int;
  parallelism : [ `Domains | `Threads ];
      (** [`Domains]: one domain per thread (true parallelism, bounded
          by the runtime's domain limit).  [`Threads]: systhreads on
          one domain — pure time-sharing, the Fig. 3 regime, feasible
          for thousands of threads. *)
  watchdog : watchdog option;
      (** [None] restores the unguarded blocking join. *)
}

let default_real =
  {
    readers = 3;
    size_words = 512;
    duration_s = 0.2;
    workload = Hold;
    steal = None;
    record = 0;
    seed = 42;
    parallelism = `Domains;
    watchdog = Some default_watchdog;
  }

type sim = {
  sim_readers : int;
  sim_size_words : int;
  max_steps : int;
  sim_workload : workload;
  sim_record : int;
  sim_seed : int;
}

let default_sim =
  {
    sim_readers = 3;
    sim_size_words = 64;
    max_steps = 200_000;
    sim_workload = Hold;
    sim_record = 0;
    sim_seed = 42;
  }

(** Fabric snapshot campaign under the simulator (ISSUE 6): a sharded
    register fabric with [fab_writers] writer fibers round-robining
    over their owned shards and [fab_scanners] fibers taking
    cross-shard snapshots, every snapshot validated word-by-word per
    shard and recorded for {!Arc_trace.Checker.check_fabric}.
    [fab_atomic = false] selects the fabric's collect-only negative
    control, whose torn vectors the checker must convict. *)
type fabric_sim = {
  fab_shards : int;
  fab_writers : int;
  fab_scanners : int;
  fab_size_words : int;
  fab_steps : int;
  fab_seed : int;
  fab_atomic : bool;
}

let default_fabric_sim =
  {
    fab_shards = 4;
    fab_writers = 2;
    fab_scanners = 2;
    fab_size_words = 32;
    fab_steps = 60_000;
    fab_seed = 42;
    fab_atomic = true;
  }

type result = {
  reads : int;
  writes : int;
  duration : float;  (** seconds (real) or simulated steps (sim) *)
  total_throughput : float;
  read_throughput : float;
  write_throughput : float;
  torn : int;  (** payload validation failures observed (Verify mode) *)
  history : Arc_trace.History.t option;
  dropped_events : int;
}

let mk_result ~reads ~writes ~duration ~torn ~history ~dropped_events =
  let per x = if duration > 0. then float_of_int x /. duration else 0. in
  {
    reads;
    writes;
    duration;
    total_throughput = per (reads + writes);
    read_throughput = per reads;
    write_throughput = per writes;
    torn;
    history;
    dropped_events;
  }

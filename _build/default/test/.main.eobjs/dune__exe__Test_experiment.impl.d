test/test_experiment.ml: Alcotest Arc_harness Arc_report List

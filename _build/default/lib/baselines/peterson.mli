(** Peterson's wait-free (1,N) atomic register ("Concurrent Reading
    While Writing", TOPLAS 1983) — the classical construction the
    paper compares against, built from plain single-word reads and
    writes only (no RMW instructions; the original requires sequential
    consistency, which OCaml atomics provide).

    Structure: two shared data buffers [buff1]/[buff2] the writer
    always refreshes, one private [copybuff] per reader the writer
    refreshes only for readers it catches mid-read, a dirtiness
    protocol ([wflag], [switch]) letting a reader detect that a write
    overlapped its buffer copies, and a per-reader handshake
    ([reading.(i)] toggled by the reader, acknowledged into
    [writing.(i)] by the writer).

    - {b read} by reader [i]: announce by making
      [reading.(i) ≠ writing.(i)]; sample [wflag]/[switch]; copy
      [buff1]; resample; copy [buff2]; then return the first of —
      [copybuff.(i)] if the writer acknowledged the handshake (two
      complete writes overlapped, so both buffer copies are suspect
      but the acknowledged copy is stable), the [buff2] copy if the
      samples flagged dirtiness, else the [buff1] copy.
    - {b write}: raise [wflag]; write [buff1]; toggle [switch]; drop
      [wflag]; for every reader with a pending announce, refresh its
      [copybuff] {e then} acknowledge; finally write [buff2].

    Every read thus performs one or two full-buffer copies (plus the
    writer's extra per-reader copies) — the multiple-copy cost the
    paper's §1/§5 attributes to classical register constructions, and
    the reason Peterson's throughput collapses as the register size
    grows (Fig. 1–3). *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Arc_core.Register_intf.S with module Mem = M
end

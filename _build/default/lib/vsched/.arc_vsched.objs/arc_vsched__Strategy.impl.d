lib/vsched/strategy.ml: Arc_util Array List Printf String

test/test_report.ml: Alcotest Arc_report List Option Printf String

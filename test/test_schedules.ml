(* Schedule exploration (experiment E7): every algorithm, instantiated
   over simulated shared memory, is driven through hundreds of seeded
   random / bursty / steal schedules in Verify mode.  Every snapshot
   is validated word-by-word (no torn reads) and the full history is
   fed to the atomicity checker (Criterion 1).

   The broken registers of [Broken_regs] run through the identical
   pipeline as negative controls: the pipeline must convict them. *)

module Config = Arc_harness.Config
module Registry = Arc_harness.Registry
module Checker = Arc_trace.Checker
module Strategy = Arc_vsched.Strategy
module Sim_runner = Arc_harness.Sim_runner

let base_cfg =
  {
    Config.sim_readers = 3;
    sim_size_words = 16;
    max_steps = 25_000;
    sim_workload = Config.Verify;
    (* Generous: an unfair strategy can let one fast-path reader
       monopolize the whole budget (~3 steps per read). *)
    sim_record = 12_000;
    sim_seed = 0;
  }

let strategies ~fibers seed =
  [
    ("random", Strategy.random ~seed);
    ("burst", Strategy.random_burst ~seed ~max_burst:40);
    ( "steal",
      Strategy.steal ~seed
        ~base:(Strategy.random ~seed:(seed + 1))
        ~probability:0.01 ~min_pause:50 ~max_pause:400 );
    ("pct", Strategy.pct ~seed ~fibers ~depth:4 ~expected_steps:20_000);
  ]

let assert_clean ~who ~strategy_name ~seed (result : Config.result) =
  if result.Config.torn > 0 then
    Alcotest.failf "%s under %s(seed=%d): %d torn snapshots" who strategy_name seed
      result.Config.torn;
  if result.Config.dropped_events > 0 then
    Alcotest.failf "%s under %s(seed=%d): recorder overflow" who strategy_name seed;
  match result.Config.history with
  | None -> Alcotest.failf "%s: no history recorded" who
  | Some h ->
    (match Checker.check h with
    | Ok _ -> ()
    | Error v ->
      Alcotest.failf "%s under %s(seed=%d): %a" who strategy_name seed
        Checker.pp_violation v)

let explore (entry : Registry.entry) =
  let readers =
    match
      entry.Registry.caps.Arc_core.Register_intf.max_readers
        ~capacity_words:base_cfg.Config.sim_size_words
    with
    | Some bound -> min bound base_cfg.Config.sim_readers
    | None -> base_cfg.Config.sim_readers
  in
  let total = ref 0 in
  for seed = 1 to 12 do
    List.iter
      (fun (strategy_name, strategy) ->
        let cfg = { base_cfg with Config.sim_readers = readers; sim_seed = seed } in
        let result = entry.Registry.run_sim ~strategy cfg in
        incr total;
        (* PCT is unfair by design (strict priorities): a low-priority
           fiber may legitimately never run, so require progress only
           under the fair-ish strategies. *)
        if
          strategy_name <> "pct"
          && (result.Config.reads = 0 || result.Config.writes = 0)
        then
          Alcotest.failf "%s under %s(seed=%d): no progress (r=%d w=%d)"
            entry.Registry.name strategy_name seed result.Config.reads
            result.Config.writes;
        assert_clean ~who:entry.Registry.name ~strategy_name ~seed result)
      (strategies ~fibers:(readers + 1) seed)
  done;
  Alcotest.(check bool) "explored schedules" true (!total = 48)

let algorithm_case (entry : Registry.entry) =
  Alcotest.test_case
    (Printf.sprintf "%s: atomic under explored schedules" entry.Registry.name)
    `Quick
    (fun () -> explore entry)

(* Negative controls, driven through the very same runner. *)
module Broken_torn_runner = Sim_runner.Make (Broken_regs.Torn (Arc_vsched.Sim_mem))
module Broken_stale_runner = Sim_runner.Make (Broken_regs.Stale (Arc_vsched.Sim_mem))

let hunt ~run ~condition ~max_seed =
  let rec go seed =
    if seed > max_seed then false
    else begin
      let cfg = { base_cfg with Config.sim_seed = seed } in
      let result = run (Strategy.random ~seed) cfg in
      if condition result then true else go (seed + 1)
    end
  in
  go 1

let test_torn_register_convicted () =
  let found =
    hunt
      ~run:(fun strategy cfg -> Broken_torn_runner.run ~strategy cfg)
      ~max_seed:30
      ~condition:(fun r -> r.Config.torn > 0)
  in
  Alcotest.(check bool) "pipeline detects torn snapshots" true found

let test_stale_register_convicted () =
  let found =
    hunt
      ~run:(fun strategy cfg -> Broken_stale_runner.run ~strategy cfg)
      ~max_seed:30
      ~condition:(fun r ->
        match r.Config.history with
        | None -> false
        | Some h ->
          (match Checker.check h with
          | Error (Checker.Stale_read _) -> true
          | Error _ -> true
          | Ok _ -> false))
  in
  Alcotest.(check bool) "checker convicts the stale register" true found

(* Wait-freedom (E7): under an adversary that steals everything it
   can, wait-free algorithms still complete a bounded workload; the
   run must terminate with every fiber finished. *)
let test_wait_free_progress_under_adversary () =
  List.iter
    (fun (entry : Registry.entry) ->
      if entry.Registry.caps.Arc_core.Register_intf.wait_free then begin
        let strategy =
          Strategy.steal ~seed:11
            ~base:(Strategy.random ~seed:12)
            ~probability:0.05 ~min_pause:100 ~max_pause:1_000
        in
        let readers =
          match
            entry.Registry.caps.Arc_core.Register_intf.max_readers
              ~capacity_words:base_cfg.Config.sim_size_words
          with
          | Some bound -> min bound base_cfg.Config.sim_readers
          | None -> base_cfg.Config.sim_readers
        in
        let cfg =
          {
            base_cfg with
            Config.sim_readers = readers;
            sim_workload = Config.Hold;
            sim_record = 0;
            max_steps = 15_000;
          }
        in
        let result = entry.Registry.run_sim ~strategy cfg in
        if result.Config.reads = 0 then
          Alcotest.failf "%s made no reads under the thief" entry.Registry.name
      end)
    Registry.all

let suite =
  List.map algorithm_case Registry.all
  @ [
      Alcotest.test_case "negative control: torn register convicted" `Quick
        test_torn_register_convicted;
      Alcotest.test_case "negative control: stale register convicted" `Quick
        test_stale_register_convicted;
      Alcotest.test_case "wait-free progress under adversary" `Quick
        test_wait_free_progress_under_adversary;
    ]

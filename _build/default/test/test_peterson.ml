(* Peterson-specific behaviour: no RMW instructions at all, the
   copy-based read cost, and the writer-side acknowledge protocol
   exercised under adversarial simulated schedules. *)

module Counting = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Intf = Arc_mem.Mem_intf
module Pt_cnt = Arc_baselines.Peterson.Make (Counting)
module Pt_sim = Arc_baselines.Peterson.Make (Arc_vsched.Sim_mem)
module P_cnt = Arc_workload.Payload.Make (Counting)
module P_sim = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let test_no_rmw_at_all () =
  (* Peterson's construction predates RMW reliance: plain reads and
     writes only (it needs sequential consistency instead). *)
  let init = Array.make 4 0 in
  P_cnt.stamp init ~seq:0 ~len:4;
  let reg = Pt_cnt.create ~readers:3 ~capacity:4 ~init in
  let rd = Pt_cnt.reader reg 0 in
  let src = Array.make 4 0 in
  P_cnt.stamp src ~seq:1 ~len:4;
  Counting.reset ();
  Pt_cnt.write reg ~src ~len:4;
  for _ = 1 to 5 do
    ignore (Pt_cnt.read_with rd ~f:(fun _ _ -> ()))
  done;
  check "zero RMW instructions" 0 (Counting.counts ()).Intf.rmw

let test_read_copies_whole_buffer () =
  (* Every read copies at least one full buffer — the multi-copy cost
     the paper's §5 blames for Peterson's collapse at large sizes. *)
  let size = 64 in
  let init = Array.make size 0 in
  P_cnt.stamp init ~seq:0 ~len:size;
  let reg = Pt_cnt.create ~readers:1 ~capacity:size ~init in
  let rd = Pt_cnt.reader reg 0 in
  Counting.reset ();
  ignore (Pt_cnt.read_with rd ~f:(fun _ _ -> ()));
  let c = Counting.counts () in
  Alcotest.(check bool)
    (Printf.sprintf "read moved %d words (≥ 2 buffers of %d)" c.Intf.word_read size)
    true
    (c.Intf.word_read >= 2 * size)

let test_write_refreshes_pending_reader () =
  (* A writer overlapping an announced read must refresh that reader's
     copy buffer: forced deterministically with the round-robin
     scheduler by pausing a reader mid-read. *)
  let size = 16 in
  let exercised = ref false in
  for seed = 0 to 39 do
    let init = Array.make size 0 in
    P_sim.stamp init ~seq:0 ~len:size;
    let reg = Pt_sim.create ~readers:1 ~capacity:size ~init in
    let rd = Pt_sim.reader reg 0 in
    let src = Array.make size 0 in
    let reader () =
      for _ = 1 to 5 do
        let seq =
          Pt_sim.read_with rd ~f:(fun buffer len ->
              match P_sim.validate buffer ~len with
              | Ok seq -> seq
              | Error msg -> Alcotest.failf "torn read (seed %d): %s" seed msg)
        in
        if seq < 0 || seq > 10 then Alcotest.failf "impossible seq %d" seq
      done
    in
    let writer () =
      for seq = 1 to 10 do
        P_sim.stamp src ~seq ~len:size;
        Pt_sim.write reg ~src ~len:size
      done
    in
    ignore (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader |]);
    exercised := true
  done;
  Alcotest.(check bool) "ran" true !exercised

let test_reads_monotone_under_schedules () =
  (* Per-reader monotonicity (no new-old inversion for a single
     reader) across many random schedules. *)
  for seed = 0 to 19 do
    let size = 8 in
    let init = Array.make size 0 in
    P_sim.stamp init ~seq:0 ~len:size;
    let reg = Pt_sim.create ~readers:2 ~capacity:size ~init in
    let src = Array.make size 0 in
    let reader i () =
      let rd = Pt_sim.reader reg i in
      let last = ref 0 in
      for _ = 1 to 10 do
        let seq =
          Pt_sim.read_with rd ~f:(fun buffer len ->
              match P_sim.validate buffer ~len with
              | Ok seq -> seq
              | Error msg -> Alcotest.failf "torn (seed %d): %s" seed msg)
        in
        if seq < !last then
          Alcotest.failf "seed %d: reader %d went backwards %d -> %d" seed i !last
            seq;
        last := seq
      done
    in
    let writer () =
      for seq = 1 to 15 do
        P_sim.stamp src ~seq ~len:size;
        Pt_sim.write reg ~src ~len:size
      done
    in
    ignore
      (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader 0; reader 1 |])
  done

let suite =
  [
    Alcotest.test_case "no RMW at all" `Quick test_no_rmw_at_all;
    Alcotest.test_case "read copies whole buffer" `Quick test_read_copies_whole_buffer;
    Alcotest.test_case "pending reader refreshed" `Quick
      test_write_refreshes_pending_reader;
    Alcotest.test_case "reads monotone under schedules" `Quick
      test_reads_monotone_under_schedules;
  ]

(* One producer process, one consumer process, one mmap'd file — the
   paper's single-writer fan-out crossing a real OS process boundary
   (DESIGN.md §6d).

   The register's words live in a file-backed shared mapping
   ({!Arc_shm.Shm_mem}), so "reader and writer run concurrently" no
   longer means "on sibling domains": here the producer is a forked
   child and the consumer is the parent, with nothing shared but the
   page cache.  The ARC code is {e unchanged} — the same functor body
   that runs over heap arrays runs over the mapping.

   Sharing discipline: build the register first, then fork.  Both
   sides inherit heap handles that point into the same file; a fresh
   process can [attach] the file afterwards for inspection, which the
   parent demonstrates at the end.

     dune exec examples/two_process_feed.exe *)

module Shm_mem = Arc_shm.Shm_mem
module Shm_arc = Arc_shm.Shm_arc
module P0 = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let updates = 5_000
let len = 512 (* 4 KiB snapshots — the paper's smallest register *)

let () =
  let path = Filename.temp_file "arc_two_process_feed" ".reg" in
  let m = Shm_mem.create ~path ~words:(1 lsl 16) in
  let init = Array.make len 0 in
  P0.stamp init ~seq:0 ~len;
  let inst = Shm_arc.create m ~readers:1 ~capacity:len ~init in
  let module I = (val inst : Shm_arc.INSTANCE) in
  let module P = Arc_workload.Payload.Make (I.M) in
  match Unix.fork () with
  | 0 ->
      (* Producer: stamp-and-publish, paced to ~1 µs per snapshot so
         the consumer observes a live feed rather than only the end
         state. *)
      let src = Array.make len 0 in
      for seq = 1 to updates do
        P0.stamp src ~seq ~len;
        I.R.write I.reg ~src ~len;
        for _ = 1 to 400 do
          Domain.cpu_relax ()
        done
      done;
      Unix._exit 0
  | producer ->
      (* Consumer: read the freshest snapshot in place, validating
         every word.  A single torn or mixed-generation snapshot
         fails [P.validate] with overwhelming probability. *)
      let rd = I.R.reader I.reg 0 in
      let reads = ref 0 and last = ref 0 and distinct = ref 0 in
      while !last < updates do
        incr reads;
        let seq =
          I.R.read_with rd ~f:(fun buf l ->
              match P.validate buf ~len:l with
              | Ok seq -> seq
              | Error e ->
                  failwith ("torn snapshot crossed the process boundary: " ^ e))
        in
        if seq < !last then failwith "feed went backwards";
        if seq <> !last then incr distinct;
        last := seq
      done;
      ignore (Unix.waitpid [] producer);
      Printf.printf
        "two_process_feed: consumer pid %d made %d reads of producer pid %d's \
         %d snapshots (%d distinct), all validated\n"
        (Unix.getpid ()) !reads producer updates !distinct;
      (* Post-mortem: a third, fresh view of the same file — what a
         process that was never forked from the creator can see.  The
         latest verified snapshot is recoverable from the bytes
         alone. *)
      let m' = Shm_mem.attach ~path in
      (match Shm_mem.read_latest m' with
      | None -> failwith "published register reads back empty from the file"
      | Some (_publish_seq, payload) -> (
          match P0.validate_words payload ~len:(Array.length payload) with
          | Ok seq ->
              Printf.printf
                "two_process_feed: fresh attach recovered snapshot %d/%d from \
                 the file alone\n"
                seq updates
          | Error e -> failwith ("recovered snapshot failed validation: " ^ e)));
      Shm_mem.close m';
      Shm_mem.close m;
      Sys.remove path

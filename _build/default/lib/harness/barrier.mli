(** Sense-reversing spin barrier for aligning the start of measured
    loops across domains/threads, so no participant gets a head start
    on the throughput window. *)

type t
type handle

val create : parties:int -> t
(** @raise Invalid_argument if [parties < 1]. *)

val join : t -> handle
(** Claim one party's handle (each party calls [join] once, from any
    thread, before the first [wait]).
    @raise Failure if more than [parties] handles are claimed. *)

val wait : handle -> unit
(** Block (spinning, with [Domain.cpu_relax]) until all parties have
    arrived; reusable for successive rounds. *)

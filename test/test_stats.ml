(* Summary statistics used by the experiment reports. *)

module Stats = Arc_util.Stats

let feq msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let test_mean () =
  feq "mean of 1..5" 3. (Stats.mean [| 1.; 2.; 3.; 4.; 5. |]);
  feq "single" 7. (Stats.mean [| 7. |])

let test_stddev () =
  feq "known sample stddev" 2. (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] *. sqrt (7. /. 8.));
  feq "constant data" 0. (Stats.stddev [| 3.; 3.; 3. |]);
  feq "singleton" 0. (Stats.stddev [| 42. |])

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  feq "p0 = min" 10. (Stats.percentile xs 0.);
  feq "p100 = max" 40. (Stats.percentile xs 100.);
  feq "median interpolates" 25. (Stats.percentile xs 50.);
  (* input must not be mutated *)
  let ys = [| 3.; 1.; 2. |] in
  ignore (Stats.percentile ys 50.);
  Alcotest.(check bool) "input untouched" true (ys = [| 3.; 1.; 2. |])

let test_percentile_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Stats.percentile [||] 50.);
  raises (fun () -> Stats.percentile [| 1. |] (-1.));
  raises (fun () -> Stats.percentile [| 1. |] 101.)

let test_summarize () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  feq "mean" 3. s.Stats.mean;
  feq "min" 1. s.Stats.min;
  feq "max" 5. s.Stats.max;
  feq "median" 3. s.Stats.median;
  Alcotest.(check bool) "ci positive" true (s.Stats.ci95 > 0.)

let test_summarize_empty () =
  Alcotest.check_raises "empty rejected" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize [||]))

let test_online_matches_batch () =
  let xs = Array.init 1000 (fun i -> sin (float_of_int i) *. 100.) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 1000 (Stats.Online.count o);
  Alcotest.(check (float 1e-6)) "mean matches" (Stats.mean xs) (Stats.Online.mean o);
  Alcotest.(check (float 1e-6)) "stddev matches" (Stats.stddev xs)
    (Stats.Online.stddev o)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean between min and max" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 50) (float_bound_inclusive 1000.))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_online_mean =
  QCheck.Test.make ~name:"online mean = batch mean" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 100) (float_bound_inclusive 100.))
    (fun xs ->
      let o = Stats.Online.create () in
      Array.iter (Stats.Online.add o) xs;
      Float.abs (Stats.Online.mean o -. Stats.mean xs) < 1e-6)

let test_p999 () =
  (* 1000 samples 1..1000: the 99.9th percentile sits at the tail and
     must dominate the p99 column it rides next to. *)
  let xs = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summarize xs in
  feq "p999 of 1..1000" 999.001 s.Stats.p999;
  Alcotest.(check bool) "p999 >= p95" true (s.Stats.p999 >= s.Stats.p95);
  Alcotest.(check bool) "p999 <= max" true (s.Stats.p999 <= s.Stats.max)

let test_outcomes_counters () =
  let o = Stats.Outcomes.create () in
  Stats.Outcomes.ok o;
  Stats.Outcomes.ok o;
  Stats.Outcomes.stale o;
  Stats.Outcomes.exhausted o;
  Stats.Outcomes.error o;
  Stats.Outcomes.error o;
  Stats.Outcomes.error o;
  Stats.Outcomes.retry o;
  Alcotest.(check int) "ok" 2 (Stats.Outcomes.ok_count o);
  Alcotest.(check int) "stale" 1 (Stats.Outcomes.stale_count o);
  Alcotest.(check int) "exhausted" 1 (Stats.Outcomes.exhausted_count o);
  Alcotest.(check int) "errors" 3 (Stats.Outcomes.error_count o);
  Alcotest.(check int) "retries" 1 (Stats.Outcomes.retry_count o);
  Alcotest.(check int) "total = ok+stale+exhausted" 4 (Stats.Outcomes.total o);
  Alcotest.(check int) "degraded = stale+exhausted" 2 (Stats.Outcomes.degraded o);
  feq "degraded rate" 0.5 (Stats.Outcomes.degraded_rate o)

let test_outcomes_merge () =
  let a = Stats.Outcomes.create () and b = Stats.Outcomes.create () in
  Stats.Outcomes.ok a;
  Stats.Outcomes.retry a;
  Stats.Outcomes.stale b;
  Stats.Outcomes.exhausted b;
  Stats.Outcomes.error b;
  Stats.Outcomes.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "ok" 1 (Stats.Outcomes.ok_count a);
  Alcotest.(check int) "stale" 1 (Stats.Outcomes.stale_count a);
  Alcotest.(check int) "exhausted" 1 (Stats.Outcomes.exhausted_count a);
  Alcotest.(check int) "errors" 1 (Stats.Outcomes.error_count a);
  Alcotest.(check int) "retries" 1 (Stats.Outcomes.retry_count a);
  (* src is left untouched. *)
  Alcotest.(check int) "src stale intact" 1 (Stats.Outcomes.stale_count b);
  Alcotest.(check int) "src ok intact" 0 (Stats.Outcomes.ok_count b);
  (* empty-counter rate is defined as 0, not NaN *)
  feq "empty rate" 0. (Stats.Outcomes.degraded_rate (Stats.Outcomes.create ()))

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile validation" `Quick test_percentile_validation;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "online matches batch" `Quick test_online_matches_batch;
    Alcotest.test_case "p999 tail percentile" `Quick test_p999;
    Alcotest.test_case "outcomes counters" `Quick test_outcomes_counters;
    Alcotest.test_case "outcomes merge" `Quick test_outcomes_merge;
    QCheck_alcotest.to_alcotest prop_mean_bounded;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_online_mean;
  ]

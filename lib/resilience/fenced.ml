(* Epoch-fenced writer handles (ISSUE 3).

   A register's writer role is represented by a revocable handle
   carrying the generation ([gen]) it was issued under.  Issuing a new
   handle bumps the shared epoch word, which fences every older
   handle: their subsequent writes raise {!Fenced_out} instead of
   publishing.  The epoch is re-validated twice per write —

   - at entry, which catches a deposed writer cheaply before it does
     any work (the common zombie case: a writer that was paused past
     its lease and resumed {e between} writes);
   - inside {!Register_intf.FENCEABLE.write_guarded}'s guard, i.e.
     after the content copy and immediately before the publish
     exchange, which catches a writer deposed {e mid-write} and aborts
     with nothing published.

   The residual window is the single publish instruction after the
   guard's load: a writer descheduled exactly there for an entire
   promotion could still publish one stale write.  That window is
   closed by the supervision layer's lease discipline ({!Supervisor}):
   a standby is only promoted once the incumbent has missed heartbeats
   for a full lease, and the lease is chosen larger than any
   mid-operation pause the deployment can suffer — the classic
   lease-fencing argument.  DESIGN.md §6c states the assumption; the
   soak's fault plans draw mid-write stalls strictly below the lease,
   and the negative-control test shows what an {e unfenced} handoff
   does to the history. *)

exception
  Fenced_out of {
    writer_epoch : int;
    current_epoch : int;
  }

let () =
  Printexc.register_printer (function
    | Fenced_out { writer_epoch; current_epoch } ->
      Some
        (Printf.sprintf "Fenced_out (writer epoch %d, current epoch %d)"
           writer_epoch current_epoch)
    | _ -> None)

(* Process-wide count of writes aborted by the fence, across every
   [Make] instantiation: the election exposes it as
   [arc_election_zombie_fences_total] ({!Election.metrics}) — each one
   is a deposed leader whose late publish the fence convicted.
   Single-writer cell discipline holds: fenced writers execute on the
   (one) thread that held the handle. *)
let zombie_fences = Arc_obs.Obs.Cell.create ()

module Make (R : Arc_core.Register_intf.FENCEABLE) = struct
  module M = R.Mem

  type t = {
    reg : R.t;
    epoch : M.atomic;
    mutable fenced_writes : int;  (* writes aborted by the fence *)
  }

  let create ~readers ~capacity ~init =
    {
      reg = R.create ~readers ~capacity ~init;
      epoch = M.atomic_contended 0;
      fenced_writes = 0;
    }

  (* Wrap an existing register, with the epoch cell supplied by the
     caller instead of freshly allocated.  This is how the fence
     survives a real process crash: a shared-memory harness backs
     [epoch] with the mapping's superblock epoch word
     ({!Arc_shm.Shm_mem.epoch_cell}), so handles issued before a
     SIGKILL are already fenced when the survivor re-issues —
     [Shm_mem.recover] bumps the same cell.  The caller owns epoch
     semantics: issue after any out-of-band bump, never reuse the cell
     across registers.  [fenced_writes] is process-local either way. *)
  let of_register reg ~epoch = { reg; epoch; fenced_writes = 0 }

  let inner t = t.reg
  let reader t i = R.reader t.reg i
  let epoch t = M.load t.epoch
  let fenced_writes t = t.fenced_writes
  let recover_crash t = R.recover_crash t.reg

  (** A revocable writer handle: valid while its generation matches
      the register's epoch. *)
  type writer = { t : t; gen : int }

  let issue t = { t; gen = M.add_and_fetch t.epoch 1 }

  (* Bump the epoch WITHOUT issuing a handle: every outstanding handle
     is fenced, and nobody holds the new generation.  This is the
     election's fence-after-vote step ({!Election.campaign}): the
     moment a candidate wins the vote it prefences, so the deposed
     leader is already convictable while the winner is still
     inspecting the wreckage (recovery, quarantine) — the winner only
     [issue]s once takeover is complete. *)
  let prefence t = ignore (M.add_and_fetch t.epoch 1)

  let writer_epoch w = w.gen
  let current w = M.load w.t.epoch = w.gen

  let reject w current_epoch =
    w.t.fenced_writes <- w.t.fenced_writes + 1;
    Arc_obs.Obs.Cell.incr zombie_fences;
    raise (Fenced_out { writer_epoch = w.gen; current_epoch })

  let write w ~src ~len =
    let e = M.load w.t.epoch in
    if e <> w.gen then reject w e;
    R.write_guarded w.t.reg ~src ~len ~guard:(fun () ->
        let e = M.load w.t.epoch in
        if e <> w.gen then reject w e)
end

(* Bechamel micro-benchmarks, one group per paper artifact (DESIGN.md
   §4).  These are the per-operation latency counterparts of the
   throughput experiments in bin/experiments.ml:

   - fig1.*      — the per-op costs behind Fig. 1's hold model:
                   steady-state read (ARC's RMW-free fast path),
                   write, and a write+read pair (a guaranteed
                   read-miss), per algorithm and register size;
   - fig2.*      — the §1/§3.2 motivation behind Fig. 2: RMW
                   instructions cost more than plain atomic loads;
   - fig3.*      — fixed-work virtual-scheduler slices (every fiber
                   completes a quota of operations): wall time is
                   proportional to the algorithm's total
                   shared-memory traffic, the Fig. 3 cost model;
   - rmw.*       — Table E4's statement as latencies: ARC read-hit
                   (0 RMW) vs RF read (1 RMW) vs ARC write+read-miss
                   (3 RMW);
   - ablation.*  — E5: write latency with parked readers, §3.4 hint
                   on vs off;
   - mrmw.*      — the (M,N) extension's operation costs. *)

open Bechamel
open Toolkit
module Real = Arc_mem.Real_mem
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

(* --- fig1: read-hit / write / write+read per algorithm and size ----- *)

module Ops_of (R : Arc_core.Register_intf.S with module Mem = Arc_mem.Real_mem) =
struct
  let make ~size =
    let reg = R.create ~readers:2 ~capacity:size ~init:(stamped ~seq:0 ~len:size) in
    let rd = R.reader reg 0 in
    let src = stamped ~seq:1 ~len:size in
    R.write reg ~src ~len:size;
    ignore (R.read_with rd ~f:(fun _ _ -> ()));
    let read_hit () = R.read_with rd ~f:(fun _buffer _len -> ()) in
    let write () = R.write reg ~src ~len:size in
    let write_read () =
      R.write reg ~src ~len:size;
      R.read_with rd ~f:(fun _buffer _len -> ())
    in
    (read_hit, write, write_read)
end

module Arc_ops = Ops_of (Arc_core.Arc.Make (Arc_mem.Real_mem))
module Arc_dyn_ops = Ops_of (Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem))
module Rf_ops = Ops_of (Arc_baselines.Rf.Make (Arc_mem.Real_mem))
module Peterson_ops = Ops_of (Arc_baselines.Peterson.Make (Arc_mem.Real_mem))
module Rwlock_ops = Ops_of (Arc_baselines.Rwlock_reg.Make (Arc_mem.Real_mem))
module Seqlock_ops = Ops_of (Arc_baselines.Seqlock_reg.Make (Arc_mem.Real_mem))
module Lamport_ops = Ops_of (Arc_baselines.Lamport_reg.Make (Arc_mem.Real_mem))

let fig1_tests =
  let sizes = [ ("4KB", 512); ("128KB", 16384) ] in
  let algos =
    [
      ("arc", Arc_ops.make);
      ("arc-dynamic", Arc_dyn_ops.make);
      ("rf", Rf_ops.make);
      ("peterson", Peterson_ops.make);
      ("rwlock", Rwlock_ops.make);
      ("seqlock", Seqlock_ops.make);
      ("lamport77", Lamport_ops.make);
    ]
  in
  List.concat_map
    (fun (size_name, size) ->
      List.concat_map
        (fun (algo, make) ->
          let read_hit, write, write_read = make ~size in
          [
            Test.make
              ~name:(Printf.sprintf "fig1/read-hit/%s/%s" algo size_name)
              (Staged.stage read_hit);
            Test.make
              ~name:(Printf.sprintf "fig1/write/%s/%s" algo size_name)
              (Staged.stage write);
            Test.make
              ~name:(Printf.sprintf "fig1/write+read/%s/%s" algo size_name)
              (Staged.stage write_read);
          ])
        algos)
    sizes

(* --- fig2: RMW vs plain-load primitive costs ------------------------ *)

let fig2_tests =
  let a = Atomic.make 0 in
  [
    Test.make ~name:"fig2/primitive/plain-load"
      (Staged.stage (fun () -> ignore (Atomic.get a)));
    Test.make ~name:"fig2/primitive/plain-store"
      (Staged.stage (fun () -> Atomic.set a 1));
    Test.make ~name:"fig2/primitive/fetch-and-add"
      (Staged.stage (fun () -> ignore (Atomic.fetch_and_add a 1)));
    Test.make ~name:"fig2/primitive/exchange"
      (Staged.stage (fun () -> ignore (Atomic.exchange a 2)));
    Test.make ~name:"fig2/primitive/compare-and-set"
      (Staged.stage (fun () -> ignore (Atomic.compare_and_set a 2 2)));
    Test.make ~name:"fig2/primitive/fetch-or-via-cas"
      (Staged.stage (fun () -> ignore (Real.fetch_and_or a 0)));
  ]

(* --- fig3: fixed-work simulated slices ------------------------------ *)

let sim_slice (type t r)
    (module R : Arc_core.Register_intf.S
      with type t = t
       and type reader = r
       and type Mem.buffer = Arc_vsched.Sim_mem.buffer) ~fibers () =
  let size = 64 in
  let init = Array.make size 0 in
  let reg = R.create ~readers:fibers ~capacity:size ~init in
  let src = Array.make size 0 in
  let ops = 20 in
  let writer () =
    for _ = 1 to ops do
      R.write reg ~src ~len:size
    done
  in
  let reader i () =
    let rd = R.reader reg i in
    for _ = 1 to ops do
      ignore (R.read_with rd ~f:(fun _ _ -> ()))
    done
  in
  let all =
    Array.init (fibers + 1) (fun i -> if i = 0 then writer else reader (i - 1))
  in
  ignore (Sched.run ~strategy:(Strategy.random ~seed:7) all)

module Arc_sim = Arc_core.Arc.Make (Arc_vsched.Sim_mem)
module Peterson_sim = Arc_baselines.Peterson.Make (Arc_vsched.Sim_mem)
module Rwlock_sim = Arc_baselines.Rwlock_reg.Make (Arc_vsched.Sim_mem)

let fig3_tests =
  List.concat_map
    (fun fibers ->
      [
        Test.make
          ~name:(Printf.sprintf "fig3/sim-fixed-work/arc/%dfibers" fibers)
          (Staged.stage (sim_slice (module Arc_sim) ~fibers));
        Test.make
          ~name:(Printf.sprintf "fig3/sim-fixed-work/peterson/%dfibers" fibers)
          (Staged.stage (sim_slice (module Peterson_sim) ~fibers));
        Test.make
          ~name:(Printf.sprintf "fig3/sim-fixed-work/rwlock/%dfibers" fibers)
          (Staged.stage (sim_slice (module Rwlock_sim) ~fibers));
      ])
    [ 16; 128 ]

(* --- rmw: the E4 statement as latencies ----------------------------- *)

module Arc_real = Arc_core.Arc.Make (Arc_mem.Real_mem)
module Rf_real = Arc_baselines.Rf.Make (Arc_mem.Real_mem)

let rmw_tests =
  let size = 512 in
  let arc = Arc_real.create ~readers:2 ~capacity:size ~init:(stamped ~seq:0 ~len:size) in
  let arc_rd = Arc_real.reader arc 0 in
  let rf = Rf_real.create ~readers:2 ~capacity:size ~init:(stamped ~seq:0 ~len:size) in
  let rf_rd = Rf_real.reader rf 0 in
  let src = stamped ~seq:1 ~len:size in
  Arc_real.write arc ~src ~len:size;
  ignore (Arc_real.read_with arc_rd ~f:(fun _ _ -> ()));
  Rf_real.write rf ~src ~len:size;
  let arc2 = Arc_real.create ~readers:2 ~capacity:size ~init:(stamped ~seq:0 ~len:size) in
  let miss_rd = Arc_real.reader arc2 0 in
  let miss_write_then_read () =
    Arc_real.write arc2 ~src ~len:size;
    Arc_real.read_with miss_rd ~f:(fun _ _ -> ())
  in
  [
    Test.make ~name:"rmw/arc-read-hit-0rmw"
      (Staged.stage (fun () -> Arc_real.read_with arc_rd ~f:(fun _ _ -> ())));
    Test.make ~name:"rmw/rf-read-1rmw"
      (Staged.stage (fun () -> Rf_real.read_with rf_rd ~f:(fun _ _ -> ())));
    Test.make ~name:"rmw/arc-write+read-miss-3rmw"
      (Staged.stage miss_write_then_read);
  ]

(* --- ablation: §3.4 hint under parked readers ----------------------- *)

let parked_writer ~use_hint =
  let readers = 64 in
  let capacity = 16 in
  let reg =
    Arc_real.create_with ~use_hint ~readers ~capacity
      ~init:(stamped ~seq:0 ~len:capacity)
  in
  let handles = Array.init readers (Arc_real.reader reg) in
  let src = stamped ~seq:1 ~len:capacity in
  for seq = 1 to readers do
    Arc_real.write reg ~src ~len:capacity;
    ignore (Arc_real.read_with handles.(seq - 1) ~f:(fun _ _ -> ()))
  done;
  let active = handles.(0) in
  fun () ->
    ignore (Arc_real.read_with active ~f:(fun _ _ -> ()));
    Arc_real.write reg ~src ~len:capacity

let ablation_tests =
  [
    Test.make ~name:"ablation/write-parked64/arc-hint"
      (Staged.stage (parked_writer ~use_hint:true));
    Test.make ~name:"ablation/write-parked64/arc-nohint"
      (Staged.stage (parked_writer ~use_hint:false));
  ]

(* --- mrmw: the (M,N) extension -------------------------------------- *)

module Mn = Arc_mrmw.Mn_register.Make (Arc_core.Arc) (Arc_mem.Real_mem)

let mrmw_tests =
  let reg = Mn.create ~writers:4 ~readers:4 ~capacity:64 ~init:(Array.make 64 1) in
  let w = Mn.writer reg 0 in
  let rd = Mn.reader reg 0 in
  let src = Array.make 64 2 in
  let dst = Array.make 64 0 in
  Mn.write w ~src ~len:64;
  [
    Test.make ~name:"mrmw/write-4writers"
      (Staged.stage (fun () -> Mn.write w ~src ~len:64));
    Test.make ~name:"mrmw/read-4writers"
      (Staged.stage (fun () -> ignore (Mn.read_into rd ~dst)));
  ]

(* --- shm: the file-backed substrate's per-op overhead ---------------- *)

(* ARC over an mmap'd file ({!Arc_shm.Shm_mem}) against ARC over the
   heap, same geometry: the delta is the durability tax — C-stub
   atomics instead of [Atomic], plus the publish trailer (sequence
   bracket + checksum over the payload) on every write.  Reads carry
   no trailer work, so read-hit should be near-identical; write pays
   roughly one extra payload scan. *)

let shm_ops ~size =
  let path = Filename.temp_file "arc_bench_shm" ".reg" in
  let m = Arc_shm.Shm_mem.create ~path ~words:(8 * (size + 64)) in
  let module M = (val Arc_shm.Shm_mem.mem m) in
  let module R = Arc_core.Arc.Make (M) in
  let reg = R.create ~readers:2 ~capacity:size ~init:(stamped ~seq:0 ~len:size) in
  let rd = R.reader reg 0 in
  let src = stamped ~seq:1 ~len:size in
  R.write reg ~src ~len:size;
  ignore (R.read_with rd ~f:(fun _ _ -> ()));
  let read_hit () = R.read_with rd ~f:(fun _ _ -> ()) in
  let write () = R.write reg ~src ~len:size in
  let write_read () =
    R.write reg ~src ~len:size;
    R.read_with rd ~f:(fun _ _ -> ())
  in
  at_exit (fun () ->
      Arc_shm.Shm_mem.close m;
      try Sys.remove path with Sys_error _ -> ());
  (read_hit, write, write_read)

let shm_sizes = [ ("4KB", 512); ("32KB", 4096) ]

let shm_tests =
  List.concat_map
    (fun (size_name, size) ->
      let read_hit, write, write_read = shm_ops ~size in
      [
        Test.make
          ~name:(Printf.sprintf "shm/read-hit/arc/%s" size_name)
          (Staged.stage read_hit);
        Test.make
          ~name:(Printf.sprintf "shm/write/arc/%s" size_name)
          (Staged.stage write);
        Test.make
          ~name:(Printf.sprintf "shm/write+read/arc/%s" size_name)
          (Staged.stage write_read);
      ])
    shm_sizes

(* --- obs: telemetry overhead on the hot paths ------------------------ *)

(* ISSUE 5's acceptance bar: attaching the wait-free telemetry layer
   must cost the read fast path at most a few percent.  Same register
   geometry with and without a telemetry handle; the delta is one
   per-reader cell increment — a plain store into a cache-line-isolated
   record, no RMW, no allocation. *)

let obs_ops ~telemetry ~size =
  let reg =
    Arc_real.create ~readers:2 ~capacity:size ~init:(stamped ~seq:0 ~len:size)
  in
  if telemetry then
    Arc_real.set_telemetry reg (Some (Arc_real.make_telemetry ~readers:2 ()));
  let rd = Arc_real.reader reg 0 in
  let src = stamped ~seq:1 ~len:size in
  Arc_real.write reg ~src ~len:size;
  ignore (Arc_real.read_with rd ~f:(fun _ _ -> ()));
  let read_hit () = Arc_real.read_with rd ~f:(fun _ _ -> ()) in
  let write () = Arc_real.write reg ~src ~len:size in
  (read_hit, write)

let obs_tests =
  List.concat_map
    (fun (label, telemetry) ->
      let read_hit, write = obs_ops ~telemetry ~size:512 in
      [
        Test.make
          ~name:(Printf.sprintf "obs/read-hit/%s/4KB" label)
          (Staged.stage read_hit);
        Test.make
          ~name:(Printf.sprintf "obs/write/%s/4KB" label)
          (Staged.stage write);
      ])
    [ ("telemetry-off", false); ("telemetry-on", true) ]

(* --- machine-readable throughput snapshot (BENCH_arc.json) ----------- *)

(* Hold-model throughput at the canonical contention point (32KB
   register, 8 threads) plus the 4KB point, per paper-set algorithm.
   Written as JSON so the perf trajectory is diffable across PRs:
   each record carries algorithm, size, threads and the mean of
   [reps] runs, and the top level embeds the telemetry-overhead
   record the perf gate reads.  Emission is opt-in:
   `dune exec bench/main.exe -- --throughput-json[=PATH]` emits only
   this file; the default bechamel run writes nothing (the silent
   default write was the ISSUE 5 CLI bug). *)

module Registry = Arc_harness.Registry
module Config = Arc_harness.Config

let throughput_grid = [ (4096, "32KB", 8); (512, "4KB", 8) ]
let throughput_reps = 3
let throughput_duration_s = 0.2

let throughput_point (entry : Registry.entry) ~size_words ~threads =
  let cfg =
    {
      Config.default_real with
      Config.readers = threads - 1;
      size_words;
      duration_s = throughput_duration_s;
      workload = Config.Hold;
      seed = 7;
    }
  in
  let samples =
    Array.init throughput_reps (fun _ ->
        (entry.Registry.run_real cfg).Config.total_throughput)
  in
  Arc_util.Stats.mean samples

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Fixed-iteration median sampler shared by the JSON emitters: these
   ops are far above clock resolution, and the simple harness keeps
   the JSON modes fast enough for CI. *)

let shm_json_reps = 5
let shm_json_iters = 20_000

let measure_ns f =
  let sample () =
    let t0 = Arc_util.Cpu.now_ns () in
    for _ = 1 to shm_json_iters do
      f ()
    done;
    Int64.to_float (Int64.sub (Arc_util.Cpu.now_ns ()) t0)
    /. float_of_int shm_json_iters
  in
  ignore (sample ());
  let samples = Array.init shm_json_reps (fun _ -> sample ()) in
  Array.sort compare samples;
  samples.(shm_json_reps / 2)

(* Reader join/leave cost (ISSUE 8): one full tenancy — admit through
   the gate, one read through the leased handle, depart — over the
   real register on the real clock.  The p99 is what an arriving
   reader actually waits before its first value, and the perf gate
   tracks it alongside the read-hit cost. *)
let reader_join_p99_ns () =
  let module Gate = Arc_resilience.Admission.Make (Arc_real) in
  let words = 64 in
  let capacity = 4 in
  let reg =
    Arc_real.create ~readers:capacity ~capacity:words
      ~init:(stamped ~seq:1 ~len:words)
  in
  let tick = ref 0 in
  let gate =
    Gate.create
      ~now:(fun () ->
        incr tick;
        !tick)
      ~sleep:(fun _ -> ())
      ~base:0 ~capacity reg
  in
  let cycle () =
    match Gate.admit gate with
    | Arc_core.Register_intf.Admitted tk ->
      ignore (Arc_real.read_with (Gate.reader gate tk) ~f:(fun _ _ -> ()));
      ignore (Gate.depart gate tk)
    | Arc_core.Register_intf.Backpressured _ -> ()
  in
  for _ = 1 to 1_000 do
    cycle ()
  done;
  let cycles = 20_000 in
  let samples = Array.make cycles 0. in
  for i = 0 to cycles - 1 do
    let t0 = Arc_util.Cpu.now_ns () in
    cycle ();
    samples.(i) <- Int64.to_float (Int64.sub (Arc_util.Cpu.now_ns ()) t0)
  done;
  Array.sort compare samples;
  samples.(cycles * 99 / 100)

(* The telemetry-overhead record embedded in BENCH_arc.json: per-op
   read-hit cost with the obs layer detached vs attached (the ISSUE 5
   acceptance number — [read_hit_ns_off] doubles as the perf gate's
   per-op read cost), plus the reader join p99 above and a live
   metrics snapshot from a short telemetry-enabled run so the
   exposition output itself is archived with the trajectory. *)
let telemetry_overhead_json () =
  let read_off, _ = obs_ops ~telemetry:false ~size:512 in
  let read_on, _ = obs_ops ~telemetry:true ~size:512 in
  (* The effect being measured (~1 plain store on an ~11ns op) is
     smaller than run-to-run frequency drift, so sequential medians of
     the two closures are too noisy: interleave the samples and take
     each closure's minimum, the noise-robust estimator for a
     fixed-work loop (all noise sources are additive). *)
  let sample f =
    let t0 = Arc_util.Cpu.now_ns () in
    for _ = 1 to shm_json_iters do
      f ()
    done;
    Int64.to_float (Int64.sub (Arc_util.Cpu.now_ns ()) t0)
    /. float_of_int shm_json_iters
  in
  ignore (sample read_off);
  ignore (sample read_on);
  let off_min = ref infinity and on_min = ref infinity in
  for _ = 1 to 9 do
    off_min := Float.min !off_min (sample read_off);
    on_min := Float.min !on_min (sample read_on)
  done;
  let off_ns = !off_min and on_ns = !on_min in
  let overhead_pct =
    if off_ns > 0. then 100. *. (on_ns -. off_ns) /. off_ns else 0.
  in
  (* The R2' validated plain-load read (ISSUE 10) on the same geometry,
     telemetry detached — the perf gate holds this under an absolute
     ceiling (the pre-R2' classic-path cost) as well as gating drift. *)
  let plain_ns =
    let reg =
      Arc_real.create ~readers:2 ~capacity:512 ~init:(stamped ~seq:0 ~len:512)
    in
    let rd = Arc_real.reader reg 0 in
    Arc_real.write reg ~src:(stamped ~seq:1 ~len:512) ~len:512;
    (* One classic read subscribes (pins the slot and caches the packed
       word), so the loop measures R2's steady state in the mixed hold
       loop: hot plain hits until the next write. *)
    ignore (Arc_real.read_with rd ~f:(fun _ _ -> ()));
    let read_plain () = Arc_real.read_plain rd ~f:(fun _ _ -> ()) in
    ignore (sample read_plain);
    let m = ref infinity in
    for _ = 1 to 9 do
      m := Float.min !m (sample read_plain)
    done;
    !m
  in
  let reg =
    Arc_real.create ~readers:1 ~capacity:64 ~init:(stamped ~seq:0 ~len:64)
  in
  Arc_real.set_telemetry reg (Some (Arc_real.make_telemetry ~readers:1 ()));
  let rd = Arc_real.reader reg 0 in
  let src = stamped ~seq:1 ~len:64 in
  for _ = 1 to 100 do
    Arc_real.write reg ~src ~len:64;
    (* First read misses (fresh write), second hits the cached index. *)
    ignore (Arc_real.read_with rd ~f:(fun _ _ -> ()));
    ignore (Arc_real.read_with rd ~f:(fun _ _ -> ()))
  done;
  Printf.sprintf
    "{\n\
    \    \"read_hit_ns_off\": %.2f,\n\
    \    \"read_hit_ns_on\": %.2f,\n\
    \    \"overhead_pct\": %.2f,\n\
    \    \"read_plain_ns\": %.2f,\n\
    \    \"reader_join_p99_ns\": %.2f,\n\
    \    \"metrics\": %s\n\
    \  }"
    off_ns on_ns overhead_pct plain_ns (reader_join_p99_ns ())
    (Arc_obs.Obs.json (Arc_real.metrics reg))

let emit_throughput_json path =
  (* Warm-up: the first measured point of a fresh process absorbs
     cold-start costs (domain spawning, code paths, page faults) worth
     several percent — run one unrecorded point first so the grid
     measures steady state. *)
  ignore
    (throughput_point (Registry.find "arc") ~size_words:512 ~threads:8);
  let records =
    List.concat_map
      (fun (size_words, size_name, threads) ->
        List.map
          (fun (entry : Registry.entry) ->
            let mean = throughput_point entry ~size_words ~threads in
            Printf.sprintf
              "    {\"algorithm\": %S, \"size\": %S, \"size_words\": %d, \
               \"threads\": %d, \"workload\": \"hold\", \
               \"mean_throughput_ops_s\": %.1f}"
              entry.Registry.name size_name size_words threads mean)
          Registry.paper_set)
      throughput_grid
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"platform\": \"%s\",\n\
    \  \"reps\": %d,\n\
    \  \"duration_s\": %.2f,\n\
    \  \"telemetry\": %s,\n\
    \  \"results\": [\n%s\n  ]\n}\n"
    (json_escape (Arc_util.Cpu.describe ()))
    throughput_reps throughput_duration_s
    (telemetry_overhead_json ())
    (String.concat ",\n" records);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- machine-readable substrate snapshot (BENCH_shm.json) ------------ *)

(* Per-op latencies of the same register over both substrates, so the
   durability tax is a number the perf trajectory tracks across PRs. *)

let emit_shm_json path =
  let records =
    List.concat_map
      (fun (size_name, size) ->
        let substrates = [ ("heap", Arc_ops.make ~size); ("shm", shm_ops ~size) ] in
        List.concat_map
          (fun (substrate, (read_hit, write, write_read)) ->
            List.map
              (fun (op, f) ->
                Printf.sprintf
                  "    {\"substrate\": %S, \"op\": %S, \"size\": %S, \
                   \"size_words\": %d, \"median_ns_per_op\": %.1f}"
                  substrate op size_name size (measure_ns f))
              [ ("read-hit", read_hit); ("write", write); ("write+read", write_read) ])
          substrates)
      shm_sizes
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"platform\": \"%s\",\n\
    \  \"reps\": %d,\n\
    \  \"iters_per_sample\": %d,\n\
    \  \"results\": [\n%s\n  ]\n}\n"
    (json_escape (Arc_util.Cpu.describe ()))
    shm_json_reps shm_json_iters
    (String.concat ",\n" records);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- machine-readable fabric snapshot (BENCH_fabric.json) ------------ *)

(* The ISSUE 6 fan-out campaign: cross-shard snapshot cost as the
   fabric grows.  The real-memory grid measures steady-state snapshot
   latency (collect + clean probe pass) per shard count — its 64-shard
   point, normalized to ns per shard collected, is the perf gate's
   tracked metric [snapshot_ns_per_shard].  The simulated grid runs
   the Fig. 3 regime the container cannot host natively (thousands of
   shards with contending writers under the virtual scheduler) and
   reports the cost-model counterpart, steps per snapshot. *)

module Fabric_runner = Arc_harness.Fabric_runner
module Fab = Arc_fabric.Fabric.Make (Arc_core.Arc.Make (Arc_mem.Real_mem))

let fabric_size_words = 64
let fabric_shard_grid = [ 4; 16; 64; 256; 1024 ]
let fabric_gate_shards = 64

(* measure_ns's fixed 20k iterations would make the 1024-shard point
   pay ~7s of sampling for no precision; scale iterations down with
   the per-op cost instead. *)
let fabric_measure ~shards f =
  let iters = max 100 (20_000 / shards) in
  let sample () =
    let t0 = Arc_util.Cpu.now_ns () in
    for _ = 1 to iters do
      f ()
    done;
    Int64.to_float (Int64.sub (Arc_util.Cpu.now_ns ()) t0) /. float_of_int iters
  in
  ignore (sample ());
  let samples = Array.init shm_json_reps (fun _ -> sample ()) in
  Array.sort compare samples;
  samples.(shm_json_reps / 2)

(* Measures the CERTIFIED path (ISSUE 9): a reign cell is attached and
   never bumped, so every snapshot takes the no-election fast path —
   the two extra configuration-epoch loads ride inside the tracked
   metric and the ±20% gate on [snapshot_ns_per_shard] enforces that
   certification stays that cheap. *)
let fabric_real_point ~shards =
  let init = stamped ~seq:0 ~len:fabric_size_words in
  let fab =
    Fab.create ~shards ~writers:1 ~readers:1 ~capacity:fabric_size_words ~init
  in
  Fab.attach_reign fab ~config:(Arc_mem.Real_mem.atomic_contended 1);
  let w = Fab.writer fab 0 in
  let src = stamped ~seq:1 ~len:fabric_size_words in
  for s = 0 to shards - 1 do
    Fab.write w ~shard:s ~src ~len:fabric_size_words
  done;
  let sc = Fab.scanner fab 0 in
  let snap () =
    match Fab.snapshot_certified sc with
    | Ok s -> ignore (Fab.snap_epoch s)
    | Error _ -> failwith "certified snapshot failed with no elections running"
  in
  snap ();
  fabric_measure ~shards snap

let fabric_sim_grid = [ (64, 8, 2); (256, 8, 2); (1024, 8, 2) ]

let fabric_sim_point ~shards ~writers ~scanners =
  (* The algorithm is discovered by capability, not named. *)
  let entry = List.hd (Registry.fabric_capable Registry.all) in
  let run = Option.get entry.Registry.run_fabric_sim in
  let cfg =
    {
      Config.fab_shards = shards;
      fab_writers = writers;
      fab_scanners = scanners;
      fab_size_words = 8;
      fab_steps = 150_000;
      fab_seed = 7;
      fab_atomic = true;
    }
  in
  run cfg

let emit_fabric_json path =
  let real =
    List.map
      (fun shards ->
        let ns = fabric_real_point ~shards in
        (shards, ns, ns /. float_of_int shards))
      fabric_shard_grid
  in
  let gate_ns_per_shard =
    match List.find_opt (fun (s, _, _) -> s = fabric_gate_shards) real with
    | Some (_, _, per_shard) -> per_shard
    | None -> 0.
  in
  let real_records =
    List.map
      (fun (shards, ns, per_shard) ->
        Printf.sprintf
          "    {\"shards\": %d, \"median_ns_per_snapshot\": %.1f, \
           \"ns_per_shard\": %.2f}"
          shards ns per_shard)
      real
  in
  let sim_records =
    List.map
      (fun (shards, writers, scanners) ->
        let r = fabric_sim_point ~shards ~writers ~scanners in
        let per_snap =
          if r.Fabric_runner.fr_snapshots > 0 then
            float_of_int r.Fabric_runner.fr_steps
            /. float_of_int r.Fabric_runner.fr_snapshots
          else 0.
        in
        Printf.sprintf
          "    {\"shards\": %d, \"writers\": %d, \"scanners\": %d, \
           \"snapshots\": %d, \"borrowed\": %d, \"retries\": %d, \
           \"steps\": %d, \"steps_per_snapshot\": %.1f}"
          shards writers scanners r.Fabric_runner.fr_snapshots
          r.Fabric_runner.fr_borrowed r.Fabric_runner.fr_retries
          r.Fabric_runner.fr_steps per_snap)
      fabric_sim_grid
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"platform\": \"%s\",\n\
    \  \"size_words\": %d,\n\
    \  \"gate_shards\": %d,\n\
    \  \"snapshot_ns_per_shard\": %.2f,\n\
    \  \"real\": [\n%s\n  ],\n\
    \  \"sim\": [\n%s\n  ]\n}\n"
    (json_escape (Arc_util.Cpu.describe ()))
    fabric_size_words fabric_gate_shards gate_ns_per_shard
    (String.concat ",\n" real_records)
    (String.concat ",\n" sim_records);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- machine-readable scaling snapshot (BENCH_scaling.json) ---------- *)

(* The ISSUE 10 multi-core matrix: per-op read cost at real reader
   Domain counts, under a live writer — the Fig. 1/2 claim ("the ARC
   read hit beats the alternatives under contention at real core
   counts") measured rather than asserted.  Each core count spawns
   that many reader Domains plus one churn writer; every reader times
   the classic read hit and the R2' validated plain load over its own
   handle, and the point reports the median across readers.  OCaml
   exposes no portable thread-affinity API, so domains are not pinned;
   [hw_cores] records what the host actually had (an oversubscribed
   run is still a real contention measurement, just a noisier one —
   per-reader minima over several samples absorb descheduling spikes).

   The perf gate tracks each emitted [read_hit_ns@N] /
   [read_plain_ns@N] key per core count, so a scaling regression at 4
   readers fails CI even when the single-core cost is unchanged. *)

let scaling_size = 512
let scaling_iters = 50_000
let scaling_warmup = 5_000
let scaling_reps = 3

let scaling_point ~cores =
  let reg =
    Arc_real.create ~readers:cores ~capacity:scaling_size
      ~init:(stamped ~seq:0 ~len:scaling_size)
  in
  let src = stamped ~seq:1 ~len:scaling_size in
  Arc_real.write reg ~src ~len:scaling_size;
  let stop = Atomic.make false in
  let writer () =
    (* Hold-model churn: occasional writes, so readers mostly hit but
       every write forces the subscribe path (classic) or a stamp
       revalidation (plain) on each reader's next read. *)
    while not (Atomic.get stop) do
      Arc_real.write reg ~src ~len:scaling_size;
      for _ = 1 to 5_000 do
        Domain.cpu_relax ()
      done
    done
  in
  let measure_reader i () =
    let rd = Arc_real.reader reg i in
    let time_one f =
      for _ = 1 to scaling_warmup do
        f ()
      done;
      let best = ref infinity in
      for _ = 1 to scaling_reps do
        let t0 = Arc_util.Cpu.now_ns () in
        for _ = 1 to scaling_iters do
          f ()
        done;
        let ns =
          Int64.to_float (Int64.sub (Arc_util.Cpu.now_ns ()) t0)
          /. float_of_int scaling_iters
        in
        if ns < !best then best := ns
      done;
      !best
    in
    let hit = time_one (fun () -> Arc_real.read_with rd ~f:(fun _ _ -> ())) in
    let plain = time_one (fun () -> Arc_real.read_plain rd ~f:(fun _ _ -> ())) in
    (hit, plain)
  in
  let wdom = Domain.spawn writer in
  let doms = Array.init cores (fun i -> Domain.spawn (measure_reader i)) in
  let results = Array.map Domain.join doms in
  Atomic.set stop true;
  Domain.join wdom;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (median (Array.map fst results), median (Array.map snd results))

let emit_scaling_json ~cores path =
  let points = List.map (fun c -> (c, scaling_point ~cores:c)) cores in
  let top_keys =
    List.concat_map
      (fun (c, (hit, plain)) ->
        [
          Printf.sprintf "  \"read_hit_ns@%d\": %.2f" c hit;
          Printf.sprintf "  \"read_plain_ns@%d\": %.2f" c plain;
        ])
      points
  in
  let records =
    List.map
      (fun (c, (hit, plain)) ->
        Printf.sprintf
          "    {\"cores\": %d, \"read_hit_ns\": %.2f, \"read_plain_ns\": %.2f}"
          c hit plain)
      points
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"platform\": \"%s\",\n\
    \  \"hw_cores\": %d,\n\
    \  \"size_words\": %d,\n\
    \  \"iters_per_sample\": %d,\n%s,\n\
    \  \"results\": [\n%s\n  ]\n}\n"
    (json_escape (Arc_util.Cpu.describe ()))
    (Domain.recommended_domain_count ())
    scaling_size scaling_iters
    (String.concat ",\n" top_keys)
    (String.concat ",\n" records);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- runner ---------------------------------------------------------- *)

let benchmark tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:false ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"arc" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  Analyze.all ols instance raw

let run_bechamel () =
  Printf.printf "arc_register benchmarks — %s\n" (Arc_util.Cpu.describe ());
  Printf.printf "%-50s %14s %8s\n" "benchmark" "ns/op" "r^2";
  print_endline (String.make 74 '-');
  let tests =
    fig1_tests @ fig2_tests @ fig3_tests @ rmw_tests @ ablation_tests @ mrmw_tests
    @ shm_tests @ obs_tests
  in
  let results = benchmark tests in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
        in
        let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
        (name, ns, r2) :: acc)
      results []
  in
  List.iter
    (fun (name, ns, r2) -> Printf.printf "%-50s %14.1f %8.4f\n" name ns r2)
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) rows)

(* CLI parity with arc-check/arc-soak/arc-crash (cmdliner): unknown
   flags are rejected with a usage message, and the JSON emitters are
   strictly opt-in.  The previous hand-rolled parser silently wrote
   BENCH_arc.json after every default run and ignored unrecognized
   arguments. *)

open Cmdliner

let throughput_json_arg =
  let doc =
    "Write the hold-model throughput grid and the telemetry-overhead \
     snapshot as JSON to $(docv), skipping the bechamel suite.  A bare \
     $(opt) writes BENCH_arc.json.  Without this flag no file is written."
  in
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_arc.json") (some string) None
    & info [ "throughput-json" ] ~docv:"PATH" ~doc)

let shm_json_arg =
  let doc =
    "Write the heap-vs-shm per-op latency snapshot as JSON to $(docv), \
     skipping the bechamel suite.  A bare $(opt) writes BENCH_shm.json."
  in
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_shm.json") (some string) None
    & info [ "shm-json" ] ~docv:"PATH" ~doc)

let fabric_json_arg =
  let doc =
    "Write the fabric fan-out campaign (cross-shard snapshot cost per shard \
     count, real and simulated) as JSON to $(docv), skipping the bechamel \
     suite.  A bare $(opt) writes BENCH_fabric.json."
  in
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_fabric.json") (some string) None
    & info [ "fabric-json" ] ~docv:"PATH" ~doc)

let scaling_json_arg =
  let doc =
    "Write the multi-core read-scaling matrix (per-op read cost at each \
     $(b,--cores) reader Domain count, under a live writer) as JSON to \
     $(docv), skipping the bechamel suite.  A bare $(opt) writes \
     BENCH_scaling.json."
  in
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_scaling.json") (some string) None
    & info [ "scaling-json" ] ~docv:"PATH" ~doc)

let cores_arg =
  let doc =
    "Comma-separated reader Domain counts for the scaling matrix, e.g. \
     2,4,8.  Each count spawns that many reader Domains plus one writer."
  in
  Arg.(value & opt string "2,3,4" & info [ "cores" ] ~docv:"LIST" ~doc)

let parse_cores s =
  let parts = String.split_on_char ',' s in
  let cores =
    List.filter_map
      (fun p ->
        let p = String.trim p in
        if p = "" then None else Some (int_of_string_opt p))
      parts
  in
  match
    List.fold_left
      (fun acc c -> match (acc, c) with Some l, Some c when c >= 1 -> Some (c :: l) | _ -> None)
      (Some []) cores
  with
  | Some (_ :: _ as l) -> List.rev l
  | _ -> raise (Invalid_argument (Printf.sprintf "bad --cores list %S" s))

let main throughput shm fabric scaling cores =
  match (throughput, shm, fabric, scaling) with
  | None, None, None, None -> run_bechamel ()
  | _ ->
    Option.iter emit_shm_json shm;
    Option.iter emit_throughput_json throughput;
    Option.iter emit_fabric_json fabric;
    Option.iter (emit_scaling_json ~cores:(parse_cores cores)) scaling

let cmd =
  Cmd.v
    (Cmd.info "arc-bench"
       ~doc:
         "Per-operation microbenchmarks for the ARC register (bechamel \
          suite by default; machine-readable JSON snapshots by opt-in \
          flag)")
    Term.(
      const main $ throughput_json_arg $ shm_json_arg $ fabric_json_arg
      $ scaling_json_arg $ cores_arg)

let () = exit (Cmd.eval cmd)

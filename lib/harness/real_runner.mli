(** Duration-bounded throughput runner on real parallelism: one writer
    thread plus N reader threads hammer a register for a fixed wall
    -clock window behind a start barrier, reproducing the measurement
    protocol of the paper's §5 (continuous operations, one writer,
    all other threads readers).

    Two spawning modes (see {!Config.real}): [`Domains] for true
    parallelism up to the runtime's domain limit, [`Threads]
    (systhreads, one domain) for the heavily time-shared Fig. 3
    regime with thousands of threads. *)

exception Hung of string
(** Raised by a watchdog-guarded run whose worker threads did not all
    finish within the grace period after the stop flag was raised (see
    {!Config.watchdog}).  The payload is a per-thread progress report
    (role, finished/stuck, operation counts at stop and at the
    deadline).  The stuck workers cannot be killed and are leaked;
    treat the process as tainted and exit after reporting. *)

module Make (_ : Arc_core.Register_intf.S) : sig
  val run : Config.real -> Config.result
  (** @raise Invalid_argument on nonsensical configurations (no
      readers, readers above the algorithm's bound, bad sizes); the
      message names the offending field and its value.
      @raise Hung when the watchdog grace period expires with a worker
      still running. *)
end

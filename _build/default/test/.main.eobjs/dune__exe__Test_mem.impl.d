test/test_mem.ml: Alcotest Arc_mem Array Domain QCheck QCheck_alcotest

lib/trace/history.mli: Format

test/test_stress.ml: Alcotest Arc_harness Arc_trace Float List Printf

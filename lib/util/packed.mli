(** Packing of the ARC synchronization word [current].

    The paper (§3.3) uses a 64-bit word split into a 32-bit slot
    [index] (high half) and a 32-bit readers-presence [count] (low
    half).  OCaml's native [int] is 63-bit on 64-bit platforms, so the
    index field here is [Sys.int_size - 32] = 31 bits wide; the count
    field keeps the paper's full 32 bits, preserving the 2^32 - 2
    concurrent-readers capacity claim.

    All register algorithms manipulate packed words only through this
    module, so the packing discipline is tested in one place. *)

val count_bits : int
(** Width of the count field (32, as in the paper). *)

val index_bits : int
(** Width of the index field ([Sys.int_size - count_bits]). *)

val max_index : int
(** Largest representable slot index. *)

val max_count : int
(** Largest representable readers count, [2^32 - 1].  The paper admits
    up to [2^32 - 2] concurrent readers so that the count can never
    saturate between two writes. *)

val max_readers : int
(** The paper's concurrent-readers capacity bound, [2^32 - 2]
    ([max_count - 1]).  Keeping the count at or below this value
    guarantees one increment of head-room, so a saturated count is
    always distinguishable from a wrapped one. *)

val make : index:int -> count:int -> int
(** [make ~index ~count] packs the two fields.
    @raise Invalid_argument if either field is out of range. *)

val index : int -> int
(** [index w] extracts the slot index (the [w >> 32] of the paper,
    statements R1/R5/W3). *)

val count : int -> int
(** [count w] extracts the readers-presence count
    (the [w land (2^32 - 1)] of statement W3). *)

val of_index : int -> int
(** [of_index i] is [make ~index:i ~count:0] — the value the writer
    installs with [AtomicExchange] at statement W2. *)

val succ_count : int -> int
(** [succ_count w] is the packed word with the count field incremented
    — what [AtomicAddAndFetch (current, 1)] (statement R4) produces.
    @raise Saturation.Saturated when [count w >= max_readers] — the
    saturation bound of the paper, raised as the same typed error the
    registers' own post-increment guards use ({!Saturation}, ISSUE 8).
    Incrementing past {!max_count} would silently carry into the index
    bits; the guard fires one increment early ({!max_readers} =
    [2^32 - 2]) so the error is raised exactly at the documented
    capacity, never after a wrap.  Cannot occur when the number of
    readers respects {!max_readers}. *)

val pp : Format.formatter -> int -> unit
(** Prints as [⟨index=i, count=c⟩] for debugging and test failures. *)

val equal : int -> int -> bool
val to_string : int -> string

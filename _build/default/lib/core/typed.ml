module type CODEC = sig
  type t

  val max_words : int
  val encode : t -> int array
  val decode : int array -> len:int -> t
end

module Make
    (A : Register_intf.ALGORITHM)
    (M : Arc_mem.Mem_intf.S)
    (C : CODEC) =
struct
  module R = A.Make (M)

  type t = R.t
  type reader = { handle : R.reader; scratch : int array; mutable reads : int }

  let create ~readers ~init =
    let words = C.encode init in
    if Array.length words < 1 || Array.length words > C.max_words then
      invalid_arg "Typed.create: init encoding out of bounds";
    R.create ~readers ~capacity:C.max_words ~init:words

  let publish t value =
    let words = C.encode value in
    let len = Array.length words in
    if len < 1 || len > C.max_words then
      invalid_arg "Typed.publish: encoding out of bounds";
    R.write t ~src:words ~len

  let reader t i = { handle = R.reader t i; scratch = Array.make C.max_words 0; reads = 0 }

  let get rd =
    rd.reads <- rd.reads + 1;
    let len = R.read_into rd.handle ~dst:rd.scratch in
    C.decode rd.scratch ~len

  let reads rd = rd.reads
end

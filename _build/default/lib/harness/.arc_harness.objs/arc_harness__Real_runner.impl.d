lib/harness/real_runner.ml: Arc_core Arc_trace Arc_util Arc_workload Array Atomic Barrier Config Domain Int64 Option Printf Thread Unix

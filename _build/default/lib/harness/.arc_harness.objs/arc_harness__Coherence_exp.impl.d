lib/harness/coherence_exp.ml: Arc_baselines Arc_coherence Arc_core Arc_report Arc_vsched Arc_workload Array Experiment List Printf

(* The file-backed shared-memory substrate and its durability layer
   (lib/shm, DESIGN.md §6d).

   The negative controls here mirror the arc-crash harness's built-in
   conviction controls: each plants one precise kind of damage in an
   otherwise healthy mapping and demands that {!Shm_mem.recover}
   convicts it — and, symmetrically, that a clean mapping is NOT
   convicted.  A recovery scan that never convicts is vacuous; one
   that convicts healthy slots burns the spare-identity budget.  Both
   failure modes are silent in the happy-path tests, so they get
   explicit controls.

   Cross-process behaviour proper (fork + SIGKILL) lives in the
   arc-crash binary — OCaml 5 forbids [Unix.fork] once any domain has
   ever been spawned in the process, and the alcotest binary spawns
   domains freely.  What this suite can and does cover in-process is
   cross-{e mapping} durability: two independent mmap views of the
   same file, writes through one visible and verifiable through the
   other, which is the same page-cache path a second process reads. *)

module L = Arc_shm.Shm_layout
module S = Arc_shm.Shm_mem
module Payload = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let with_mapping ?(words = 1 lsl 14) f =
  let path = Filename.temp_file "arc_shm_test" ".reg" in
  let m = S.create ~path ~words in
  Fun.protect
    ~finally:(fun () ->
      S.close m;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path m)

(* A small published register: 2 readers, 8-word payloads, five writes
   beyond the init.  Returns whatever [f] makes of the mapping. *)
let with_register f =
  with_mapping (fun path m ->
      let init = Array.make 8 0 in
      Payload.stamp init ~seq:0 ~len:8;
      let inst = Arc_shm.Shm_arc.create m ~readers:2 ~capacity:8 ~init in
      let module I = (val inst : Arc_shm.Shm_arc.INSTANCE) in
      let src = Array.make 8 0 in
      for k = 1 to 5 do
        Payload.stamp src ~seq:k ~len:8;
        I.R.write I.reg ~src ~len:8
      done;
      f path m inst)

let newest_buffer m =
  let best = ref None in
  S.iter_buffers m (fun (info : S.buffer_info) ->
      match !best with
      | Some (b : S.buffer_info) when b.end_seq >= info.end_seq -> ()
      | _ -> if info.end_seq > 0 then best := Some info);
  match !best with
  | Some b -> b
  | None -> Alcotest.fail "nothing published in control mapping"

(* {1 Mapping lifecycle} *)

let test_create_attach () =
  with_mapping (fun path m ->
      S.set_geometry m ~readers:3 ~capacity:16;
      Alcotest.(check (option (triple int int int)))
        "geometry survives the file round-trip"
        (Some (3, 16, 3 + 2))
        (let m' = S.attach ~path in
         let g = S.geometry m' in
         S.close m';
         g);
      Alcotest.(check bool) "clock ticks are strictly increasing" true
        (let a = S.tick m and b = S.tick m in
         a < b && b < S.clock m + 1);
      Alcotest.(check int) "fresh mapping starts at epoch 1" 1 (S.epoch m);
      Alcotest.(check int) "never recovered: fence_at = 0" 0 (S.fence_at m))

let test_attach_rejects_garbage () =
  let path = Filename.temp_file "arc_shm_test" ".reg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (String.make 4096 '\xAB');
      close_out oc;
      Alcotest.check_raises "wrong magic is refused"
        (Failure
           (Printf.sprintf
              "Shm_mem.attach: %s: bad magic (not a register mapping, or \
               creation crashed)"
              path))
        (fun () -> ignore (S.attach ~path)))

(* {1 Cross-mapping durability}

   Publish through the creator's mapping; verify through a second,
   independent mmap of the same file — the in-process stand-in for a
   second OS process. *)

let test_cross_mapping_read_latest () =
  with_register (fun path _m _inst ->
      let m' = S.attach ~path in
      Fun.protect
        ~finally:(fun () -> S.close m')
        (fun () ->
          match S.read_latest m' with
          | None -> Alcotest.fail "published register reads back empty"
          | Some (_seq, payload) ->
              (match Payload.validate_words payload ~len:(Array.length payload) with
              | Ok seq ->
                  Alcotest.(check int)
                    "latest snapshot through the second mapping is write 5" 5 seq
              | Error e -> Alcotest.fail ("snapshot failed validation: " ^ e))))

(* {1 Conviction controls} *)

let recovery_exn = function
  | Ok (r : S.recovery) -> r
  | Error msg -> Alcotest.fail ("unexpected whole-mapping conviction: " ^ msg)

let test_convicts_flipped_payload () =
  with_register (fun _path m _inst ->
      let b = newest_buffer m in
      let at = b.base + L.buf_header + 1 in
      S.unsafe_set m at (S.unsafe_get m at lxor 1);
      let r = recovery_exn (S.recover m) in
      Alcotest.(check bool) "flipped payload byte is convicted as Checksum" true
        (List.exists
           (fun (c : S.conviction) ->
             c.why = S.Checksum && c.ordinal = b.ordinal)
           r.convicted);
      (* The damaged slot must never be returned again. *)
      match S.read_latest m with
      | None -> Alcotest.fail "conviction wiped out the intact snapshots too"
      | Some (seq, _) ->
          Alcotest.(check bool) "read_latest skips the convicted slot" true
            (seq <> b.end_seq))

let test_convicts_torn_trailer () =
  with_register (fun _path m _inst ->
      let b = newest_buffer m in
      S.unsafe_set m (b.base + L.buf_end) 0;
      let r = recovery_exn (S.recover m) in
      Alcotest.(check bool) "begin/end mismatch is convicted as Torn" true
        (List.exists
           (fun (c : S.conviction) -> c.why = S.Torn && c.ordinal = b.ordinal)
           r.convicted);
      Alcotest.(check bool) "epoch opens past the damage" true
        (r.new_epoch > b.bepoch))

let test_convicts_stale_superblock () =
  with_register (fun _path m _inst ->
      S.unsafe_set m L.sb_epoch 0;
      match S.recover m with
      | Error msg ->
          Alcotest.(check bool)
            "whole-mapping conviction names the stale superblock" true
            (let needle = "stale superblock" in
             let n = String.length needle in
             String.length msg >= n && String.sub msg 0 n = needle)
      | Ok _ ->
          Alcotest.fail
            "trailer epoch ahead of the superblock must convict the mapping")

(* Satellite (ISSUE 7): a mapping written by a pre-election build
   (layout version 1 — no [sb_election] word) must be convicted as
   stale by [recover], never misread: interpreting its superblock
   would fabricate election state out of whatever the old layout kept
   in that word. *)
let test_convicts_stale_layout_version () =
  with_register (fun path m _inst ->
      S.unsafe_set m L.sb_version (L.version - 1);
      (match S.recover m with
      | Error msg ->
          Alcotest.(check bool)
            "whole-mapping conviction names the stale layout" true
            (let needle = "stale layout" in
             let n = String.length needle in
             String.length msg >= n && String.sub msg 0 n = needle)
      | Ok _ ->
          Alcotest.fail "pre-bump layout version must convict the mapping");
      (* The front door agrees: a fresh process cannot even map it. *)
      match S.attach ~path with
      | exception Failure _ -> ()
      | m' ->
          S.close m';
          Alcotest.fail "attach must reject a version-skewed mapping")

let test_election_word_durable () =
  (* The election word lives in the superblock: a CAS through one
     mapping is visible through a second, independent mapping of the
     file — the same page-cache path a standby process reads. *)
  let module TV = Arc_util.Term_vote in
  with_register (fun path m inst ->
      let module I = (val inst : Arc_shm.Shm_arc.INSTANCE) in
      Alcotest.(check int) "fresh mapping: no election ever held" TV.none
        (S.election m);
      let cell = S.election_cell I.mapping in
      let won =
        I.M.compare_and_set cell TV.none
          (TV.succ_term TV.none ~candidate:2)
      in
      Alcotest.(check bool) "CAS through the substrate lands" true won;
      let m' = S.attach ~path in
      Fun.protect
        ~finally:(fun () -> S.close m')
        (fun () ->
          let w = S.election m' in
          Alcotest.(check int) "term visible through a second mapping" 1
            (TV.term w);
          Alcotest.(check (option int)) "vote visible through a second mapping"
            (Some 2) (TV.vote w)))

let test_clean_mapping_not_convicted () =
  with_register (fun _path m _inst ->
      let r = recovery_exn (S.recover m) in
      Alcotest.(check (list int)) "no healthy slot is convicted" []
        (List.map (fun (c : S.conviction) -> c.ordinal) r.convicted);
      Alcotest.(check bool) "scan sees the published snapshots" true
        (r.intact > 0);
      Alcotest.(check int) "recovery stamps the shared fence"
        (S.fence_at m) r.recovery_fence)

(* {1 Quarantine persistence}

   A conviction is recorded in the file, not in the process: a later
   scan — and a later process — must see the slot as already
   quarantined, not re-convict it. *)

let test_quarantine_persists () =
  with_register (fun path m _inst ->
      let b = newest_buffer m in
      S.unsafe_set m (b.base + L.buf_end) 0;
      let r1 = recovery_exn (S.recover m) in
      Alcotest.(check int) "first scan convicts" 1 (List.length r1.convicted);
      let m' = S.attach ~path in
      Fun.protect
        ~finally:(fun () -> S.close m')
        (fun () ->
          let r2 = recovery_exn (S.recover m') in
          Alcotest.(check int) "second scan re-convicts nothing" 0
            (List.length r2.convicted);
          Alcotest.(check int) "second scan sees the prior quarantine" 1
            r2.quarantined_before))

(* {1 The bundled register recovery} *)

let test_shm_arc_recover_clean () =
  with_register (fun _path _m inst ->
      match Arc_shm.Shm_arc.recover inst with
      | Error msg -> Alcotest.fail ("clean recover failed: " ^ msg)
      | Ok ((r : S.recovery), journaled) ->
          Alcotest.(check int) "no slot convicted" 0 (List.length r.convicted);
          Alcotest.(check int) "no prefreeze journal entry" 0 journaled;
          (* The epoch bump fences any pre-recovery writer handle
             backed by the superblock cell. *)
          let module I = (val inst : Arc_shm.Shm_arc.INSTANCE) in
          Alcotest.(check int) "epoch advanced in the file" r.new_epoch
            (I.M.load (S.epoch_cell I.mapping)))

let test_refuses_used_mapping () =
  with_register (fun _path m _inst ->
      Alcotest.check_raises "a second register in one mapping is refused"
        (Invalid_argument
           "Shm_arc.create: mapping already holds a register (attach-and-\
            recreate is not supported; fork instead)")
        (fun () ->
          ignore (Arc_shm.Shm_arc.create m ~readers:2 ~capacity:8 ~init:[| 0 |])))

(* {1 Fabric mappings and the reign table (ISSUE 9)}

   Layout version 3 adds the reign table: per-shard election words
   plus the fabric-wide configuration epoch.  The migration discipline
   of ISSUE 7 extends to it — a version-2 mapping carries no table, so
   a v3 build must convict it on the version word alone, BEFORE any
   reign-table byte is interpreted — and the shard-scoped recovery
   must treat other shards' live state as traffic, never evidence. *)

let with_fabric ?(shards = 2) f =
  with_mapping (fun path m ->
      let init = Array.make 8 0 in
      Payload.stamp init ~seq:0 ~len:8;
      let finst =
        Arc_shm.Shm_arc.create_fabric m ~shards ~readers:2 ~capacity:8 ~init
      in
      let module I = (val finst : Arc_shm.Shm_arc.FABRIC_INSTANCE) in
      let src = Array.make 8 0 in
      for s = 0 to shards - 1 do
        for k = 1 to 3 do
          Payload.stamp src ~seq:k ~len:8;
          I.R.write I.regs.(s) ~src ~len:8
        done
      done;
      f path m finst)

let newest_in m ~lo ~hi =
  let best = ref None in
  S.iter_buffers m (fun (info : S.buffer_info) ->
      if info.ordinal >= lo && info.ordinal < hi && info.end_seq > 0 then
        match !best with
        | Some (b : S.buffer_info) when b.end_seq >= info.end_seq -> ()
        | _ -> best := Some info);
  match !best with
  | Some b -> b
  | None -> Alcotest.fail "shard published nothing"

let test_fabric_reign_accessors () =
  let module TV = Arc_util.Term_vote in
  with_fabric (fun path m _finst ->
      Alcotest.(check int) "table records the shard count" 2 (S.reign_shards m);
      Alcotest.(check int) "configuration epoch starts at 1" 1 (S.config_epoch m);
      for s = 0 to 1 do
        Alcotest.(check int) "shard writer-fence epoch starts at 1" 1
          (S.shard_epoch m ~shard:s);
        Alcotest.(check int) "no election ever held on the shard" TV.none
          (S.shard_election m ~shard:s);
        Alcotest.(check int) "never recovered: shard fence = 0" 0
          (S.shard_fence_at m ~shard:s)
      done;
      (* Durability: a configuration bump through the creator's mapping
         is visible through a second, independent mapping — the same
         page-cache path a certified snapshot in another process loads. *)
      S.atomic_set m (S.config_epoch_cell m) 5;
      let m' = S.attach ~path in
      Fun.protect
        ~finally:(fun () -> S.close m')
        (fun () ->
          Alcotest.(check int) "config epoch visible through a second mapping" 5
            (S.config_epoch m')))

let test_fabric_stale_layout () =
  with_fabric (fun path m _finst ->
      (* Poison the reign table FIRST: if the version gate did not fire
         before table interpretation, attach/recover would trip over
         this garbage (a different failure) instead of the version
         conviction the test demands. *)
      let reign_base = S.unsafe_get m L.sb_reign in
      S.unsafe_set m (reign_base + L.rec_tag) 0xBAD;
      S.unsafe_set m L.sb_version (L.version - 1);
      (match S.attach ~path with
      | exception Failure msg ->
          Alcotest.(check bool)
            "attach convicts the version word, not the poisoned table" true
            (let has needle =
               let n = String.length needle and l = String.length msg in
               let rec go i =
                 i + n <= l && (String.sub msg i n = needle || go (i + 1))
               in
               go 0
             in
             has "layout version" && not (has "reign"))
      | m' ->
          S.close m';
          Alcotest.fail "attach must reject a version-2 fabric mapping");
      match Arc_shm.Shm_arc.recover_shard _finst ~shard:0 with
      | Error msg ->
          Alcotest.(check bool)
            "shard recovery convicts the stale layout before reading the table"
            true
            (String.length msg >= 12 && String.sub msg 0 12 = "stale layout")
      | Ok _ -> Alcotest.fail "recover_shard must refuse a version-2 mapping")

let test_fabric_truncated_table () =
  with_fabric (fun path m _finst ->
      let reign_base = S.unsafe_get m L.sb_reign in
      (* Claim one more shard than the record was sized for. *)
      S.unsafe_set m (reign_base + L.reign_nshards) 3;
      match S.attach ~path with
      | exception Failure msg ->
          Alcotest.(check bool) "attach names the truncated table" true
            (let needle = "truncated reign table" in
             let n = String.length needle and l = String.length msg in
             let rec go i =
               i + n <= l && (String.sub msg i n = needle || go (i + 1))
             in
             go 0)
      | m' ->
          S.close m';
          Alcotest.fail "attach must reject a truncated reign table")

let test_recover_shard_scoped () =
  with_fabric (fun _path m finst ->
      let nslots =
        match S.geometry m with
        | Some (_, _, n) -> n
        | None -> Alcotest.fail "fabric mapping records no geometry"
      in
      (* Tear shard 1's newest copy; shard 0 stays pristine. *)
      let b = newest_in m ~lo:nslots ~hi:(2 * nslots) in
      S.unsafe_set m (b.base + L.buf_end) 0;
      (match Arc_shm.Shm_arc.recover_shard finst ~shard:0 with
      | Error msg -> Alcotest.fail ("clean shard convicted: " ^ msg)
      | Ok (r, journaled) ->
          Alcotest.(check (list int))
            "shard 0's scan never classifies shard 1's torn buffer" []
            (List.map (fun (c : S.conviction) -> c.ordinal) r.convicted);
          Alcotest.(check int) "no journal quarantine on the clean shard" 0
            journaled;
          Alcotest.(check int) "shard 0's reign epoch bumped by its recovery" 2
            (S.shard_epoch m ~shard:0);
          Alcotest.(check int) "shard 1's reign epoch untouched" 1
            (S.shard_epoch m ~shard:1);
          Alcotest.(check int) "the superblock fence is not the fabric's" 0
            (S.fence_at m));
      match Arc_shm.Shm_arc.recover_shard finst ~shard:1 with
      | Error msg -> Alcotest.fail ("torn shard conviction failed: " ^ msg)
      | Ok (r, _) ->
          Alcotest.(check (list int)) "exactly the torn ordinal is convicted"
            [ b.ordinal ]
            (List.map (fun (c : S.conviction) -> c.ordinal) r.convicted);
          Alcotest.(check bool) "the conviction is Torn" true
            (List.for_all
               (fun (c : S.conviction) -> c.why = S.Torn)
               r.convicted);
          Alcotest.(check int) "shard 1's reign epoch bumped" 2
            (S.shard_epoch m ~shard:1);
          Alcotest.(check bool) "shard 1's fence stamped from the shared clock"
            true
            (S.shard_fence_at m ~shard:1 > 0))

let test_recover_shard_errors () =
  with_fabric (fun _path _m finst ->
      match Arc_shm.Shm_arc.recover_shard finst ~shard:2 with
      | Error msg ->
          Alcotest.(check bool) "out-of-range shard is refused" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "shard 2 of a 2-shard fabric must be refused");
  with_register (fun _path m _inst ->
      match S.recover_shard m ~shard:0 with
      | Error msg ->
          Alcotest.(check bool) "non-fabric mapping is refused" true
            (let needle = "no reign table" in
             let n = String.length needle and l = String.length msg in
             let rec go i =
               i + n <= l && (String.sub msg i n = needle || go (i + 1))
             in
             go 0)
      | Ok _ -> Alcotest.fail "recover_shard needs a reign table")

let suite =
  [
    Alcotest.test_case "create/attach round-trip" `Quick test_create_attach;
    Alcotest.test_case "attach rejects garbage" `Quick test_attach_rejects_garbage;
    Alcotest.test_case "cross-mapping read_latest" `Quick
      test_cross_mapping_read_latest;
    Alcotest.test_case "control: flipped payload convicted" `Quick
      test_convicts_flipped_payload;
    Alcotest.test_case "control: torn trailer convicted" `Quick
      test_convicts_torn_trailer;
    Alcotest.test_case "control: stale superblock convicted" `Quick
      test_convicts_stale_superblock;
    Alcotest.test_case "control: stale layout version convicted" `Quick
      test_convicts_stale_layout_version;
    Alcotest.test_case "election word durable across mappings" `Quick
      test_election_word_durable;
    Alcotest.test_case "control: clean mapping not convicted" `Quick
      test_clean_mapping_not_convicted;
    Alcotest.test_case "quarantine persists across attach" `Quick
      test_quarantine_persists;
    Alcotest.test_case "Shm_arc.recover on a clean instance" `Quick
      test_shm_arc_recover_clean;
    Alcotest.test_case "create refuses a used mapping" `Quick
      test_refuses_used_mapping;
    Alcotest.test_case "fabric: reign-table accessors and durability" `Quick
      test_fabric_reign_accessors;
    Alcotest.test_case "fabric control: stale layout convicted before the table"
      `Quick test_fabric_stale_layout;
    Alcotest.test_case "fabric control: truncated reign table rejected" `Quick
      test_fabric_truncated_table;
    Alcotest.test_case "fabric: shard-scoped recovery" `Quick
      test_recover_shard_scoped;
    Alcotest.test_case "fabric: recover_shard refusals" `Quick
      test_recover_shard_errors;
  ]

lib/report/markdown.mli: Series Table

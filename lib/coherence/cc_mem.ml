module Sched = Arc_vsched.Sched

let name = "coherence-sim"
let words_per_line = 8

let cache : Cache.t option ref = ref None
let next_line = ref 0

let install c =
  cache := Some c;
  next_line := 0

let uninstall () = cache := None
let installed () = !cache

let fresh_lines n =
  let base = !next_line in
  next_line := base + n;
  base

let current_agent c =
  match Sched.current_fiber () with
  | Some id when id < Cache.agents c - 1 -> id
  | Some _ | None -> Cache.init_agent c

let touch ~is_write line =
  match !cache with
  | None -> Sched.cede ~weight:1 ()
  | Some c ->
    let agent = current_agent c in
    let cost =
      if is_write then Cache.write c ~agent ~line else Cache.read c ~agent ~line
    in
    Sched.cede ~weight:cost ()

type atomic = { line : int; mutable v : int }

let atomic v = { line = fresh_lines 1; v }

(* Every synchronization variable already owns a private cache line in
   this model (the layout a careful implementation pads out to), so a
   contended cell needs nothing extra. *)
let atomic_contended = atomic
let atomic_contended_pair v1 v2 = (atomic v1, atomic v2)

let load a =
  touch ~is_write:false a.line;
  a.v

let store a v =
  touch ~is_write:true a.line;
  a.v <- v

(* RMWs hold the line exclusively: one write-intent access. *)
let exchange a v =
  touch ~is_write:true a.line;
  let old = a.v in
  a.v <- v;
  old

let fetch_and_add a k =
  touch ~is_write:true a.line;
  let old = a.v in
  a.v <- old + k;
  old

let add_and_fetch a k =
  touch ~is_write:true a.line;
  let v = a.v + k in
  a.v <- v;
  v

let incr a = ignore (add_and_fetch a 1)

let compare_and_set a expected v =
  touch ~is_write:true a.line;
  if a.v = expected then begin
    a.v <- v;
    true
  end
  else false

let fetch_and_or a mask =
  touch ~is_write:true a.line;
  let old = a.v in
  a.v <- old lor mask;
  old

let fetch_and_and a mask =
  touch ~is_write:true a.line;
  let old = a.v in
  a.v <- old land mask;
  old

type buffer = { base_line : int; data : int array }

let alloc words =
  if words < 0 then invalid_arg "Cc_mem.alloc: negative size";
  let lines = (words + words_per_line - 1) / words_per_line in
  { base_line = fresh_lines (max lines 1); data = Array.make words 0 }

let capacity b = Array.length b.data
let line_of b i = b.base_line + (i / words_per_line)

let write_words b ~src ~len =
  if len < 0 || len > Array.length src || len > Array.length b.data then
    invalid_arg "Cc_mem.write_words: bad length";
  for i = 0 to len - 1 do
    touch ~is_write:true (line_of b i);
    b.data.(i) <- src.(i)
  done

let read_word b i =
  touch ~is_write:false (line_of b i);
  b.data.(i)

let read_words b ~dst ~len =
  if len < 0 || len > Array.length dst || len > Array.length b.data then
    invalid_arg "Cc_mem.read_words: bad length";
  for i = 0 to len - 1 do
    touch ~is_write:false (line_of b i);
    dst.(i) <- b.data.(i)
  done

let blit src dst ~len =
  if len < 0 || len > Array.length src.data || len > Array.length dst.data then
    invalid_arg "Cc_mem.blit: bad length";
  for i = 0 to len - 1 do
    touch ~is_write:false (line_of src i);
    touch ~is_write:true (line_of dst i);
    dst.data.(i) <- src.data.(i)
  done

let cede () = Sched.cede ~weight:1 ()

(* Bucket b holds samples v with 2^(b-1) <= v < 2^b (bucket 0: v <= 0,
   bucket 1: v = 1, ...). *)

let nbuckets = Sys.int_size + 1

type t = {
  counts : int array;
  mutable total : int;
  mutable max_value : int;
}

let create () = { counts = Array.make nbuckets 0; total = 0; max_value = 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go b x = if x = 0 then b else go (b + 1) (x lsr 1) in
    go 0 v
  end

let record t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  if v > t.max_value then t.max_value <- v

let count t = t.total
let max_value t = t.max_value

let bucket_hi b = if b = 0 then 0 else (1 lsl b) - 1
let bucket_lo b = if b <= 1 then b else (1 lsl (b - 1))

(* The rank-th smallest sample lies in the first bucket whose
   cumulative count reaches the rank; the estimate interpolates
   linearly within that bucket by the rank's position among the
   bucket's own samples (position c of c lands on the bucket's upper
   bound, clamped to the recorded maximum).  The previous
   implementation returned the raw bucket upper bound, overstating
   mid-bucket percentiles by up to 2x — the power-of-two bucket
   width.  Interpolation keeps the estimate inside the same bucket
   (its error stays bucket-bounded) but centred on the requested rank;
   the property test in test_histogram.ml cross-checks it against the
   exact [Stats.percentile] on random samples. *)
let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of [0,100]";
  let rank =
    int_of_float (ceil (p /. 100. *. float_of_int t.total)) |> max 1
  in
  let rec go b seen_before =
    if b >= nbuckets then t.max_value
    else begin
      let c = t.counts.(b) in
      if seen_before + c >= rank then begin
        let lo = bucket_lo b and hi = min (bucket_hi b) t.max_value in
        if hi <= lo then hi
        else begin
          let frac = float_of_int (rank - seen_before) /. float_of_int c in
          lo + int_of_float (Float.round (frac *. float_of_int (hi - lo)))
        end
      end
      else go (b + 1) (seen_before + c)
    end
  in
  go 0 0

let merge_into ~src ~dst =
  Array.iteri (fun b c -> dst.counts.(b) <- dst.counts.(b) + c) src.counts;
  dst.total <- dst.total + src.total;
  if src.max_value > dst.max_value then dst.max_value <- src.max_value

let buckets t =
  let acc = ref [] in
  for b = nbuckets - 1 downto 0 do
    if t.counts.(b) > 0 then acc := (bucket_lo b, bucket_hi b, t.counts.(b)) :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (lo, hi, c) -> Format.fprintf ppf "[%d..%d]: %d@ " lo hi c)
    (buckets t);
  Format.fprintf ppf "total=%d, max=%d@]" t.total t.max_value

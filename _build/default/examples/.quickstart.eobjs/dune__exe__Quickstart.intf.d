examples/quickstart.mli:

lib/mem/mem_intf.ml: Format

(* The dynamic-allocation ARC variant (§3.3 implementation note). *)

module Ad = Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let check = Alcotest.(check int)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

let read_seq rd =
  Ad.read_with rd ~f:(fun buffer len ->
      match P.validate buffer ~len with
      | Ok seq -> seq
      | Error msg -> Alcotest.fail msg)

let test_footprint_tracks_content () =
  (* Static ARC would allocate (N+2) × capacity up front; the dynamic
     variant starts with just the initial value. *)
  let reg = Ad.create ~readers:4 ~capacity:100_000 ~init:(stamped ~seq:0 ~len:10) in
  check "initial footprint = init only" 10 (Ad.footprint_words reg);
  Ad.write reg ~src:(stamped ~seq:1 ~len:50) ~len:50;
  check "one 50-word buffer added" 60 (Ad.footprint_words reg)

let test_small_snapshots_stay_small () =
  let readers = 3 in
  let reg = Ad.create ~readers ~capacity:100_000 ~init:(stamped ~seq:0 ~len:8) in
  for seq = 1 to 100 do
    Ad.write reg ~src:(stamped ~seq ~len:8) ~len:8
  done;
  (* N+2 buffers of ≤ 8 words each, never 100k. *)
  Alcotest.(check bool)
    (Printf.sprintf "footprint %d ≤ (N+2)×8" (Ad.footprint_words reg))
    true
    (Ad.footprint_words reg <= (readers + 2) * 8)

let test_realloc_policy () =
  let reg = Ad.create ~readers:1 ~capacity:4096 ~init:(stamped ~seq:0 ~len:64) in
  let base = Ad.reallocations reg in
  (* Stable size across many writes: at most one realloc per slot as
     the 0-word empties grow, then none. *)
  for seq = 1 to 50 do
    Ad.write reg ~src:(stamped ~seq ~len:64) ~len:64
  done;
  let grown = Ad.reallocations reg - base in
  Alcotest.(check bool)
    (Printf.sprintf "steady size reallocates once per slot (%d ≤ 3)" grown)
    true (grown <= 3);
  (* Small oscillation within the hysteresis band: no reallocation. *)
  let before = Ad.reallocations reg in
  for seq = 51 to 80 do
    Ad.write reg ~src:(stamped ~seq ~len:(if seq mod 2 = 0 then 64 else 40)) ~len:(if seq mod 2 = 0 then 64 else 40)
  done;
  check "no realloc inside the band" before (Ad.reallocations reg);
  (* Big shrink triggers it. *)
  Ad.write reg ~src:(stamped ~seq:81 ~len:4) ~len:4;
  Alcotest.(check bool) "shrink reallocates" true (Ad.reallocations reg > before)

let test_views_survive_recycling () =
  (* A parked reader's view must stay intact even when its slot's
     buffer has since been replaced by a smaller one (the GC keeps the
     old array alive — the OCaml counterpart of the paper's
     reclamation discussion). *)
  let reg = Ad.create ~readers:2 ~capacity:1024 ~init:(stamped ~seq:0 ~len:8) in
  let rd = Ad.reader reg 0 in
  let other = Ad.reader reg 1 in
  Ad.write reg ~src:(stamped ~seq:1 ~len:512) ~len:512;
  let view, len = Ad.read_view rd in
  (* Force the slots through recycling with very different sizes. *)
  for seq = 2 to 60 do
    let size = if seq mod 2 = 0 then 4 else 900 in
    ignore (Ad.read_with other ~f:(fun _ _ -> ()));
    Ad.write reg ~src:(stamped ~seq ~len:size) ~len:size
  done;
  (match P.validate view ~len with
  | Ok seq -> check "old view intact" 1 seq
  | Error msg -> Alcotest.failf "view corrupted: %s" msg);
  check "len preserved" 512 len;
  Alcotest.(check bool) "next read is fresh" true (read_seq rd = 60)

module A = Arc_core.Arc.Make (Arc_mem.Real_mem)

let test_sequential_equivalence_with_static () =
  (* Same op string, same observable results as static ARC. *)
  let rng = Arc_util.Splitmix.of_int 31 in
  let cap = 64 in
  let d = Ad.create ~readers:2 ~capacity:cap ~init:(stamped ~seq:0 ~len:8) in
  let s = A.create ~readers:2 ~capacity:cap ~init:(stamped ~seq:0 ~len:8) in
  let drd = Array.init 2 (Ad.reader d) and srd = Array.init 2 (A.reader s) in
  let seq = ref 0 in
  for _ = 1 to 1000 do
    if Arc_util.Splitmix.bool rng then begin
      incr seq;
      let len = 1 + Arc_util.Splitmix.int rng cap in
      let src = stamped ~seq:!seq ~len in
      Ad.write d ~src ~len;
      A.write s ~src ~len
    end
    else begin
      let i = Arc_util.Splitmix.int rng 2 in
      let a = Ad.read_into drd.(i) ~dst:(Array.make cap 0) in
      let b = A.read_into srd.(i) ~dst:(Array.make cap 0) in
      check "same snapshot length" b a
    end
  done

let suite =
  [
    Alcotest.test_case "footprint tracks content" `Quick test_footprint_tracks_content;
    Alcotest.test_case "small snapshots stay small" `Quick
      test_small_snapshots_stay_small;
    Alcotest.test_case "realloc policy" `Quick test_realloc_policy;
    Alcotest.test_case "views survive recycling" `Quick test_views_survive_recycling;
    Alcotest.test_case "sequential equivalence with static" `Quick
      test_sequential_equivalence_with_static;
  ]

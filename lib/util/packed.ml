let count_bits = 32
let index_bits = Sys.int_size - count_bits
let max_index = (1 lsl index_bits) - 1
let max_count = (1 lsl count_bits) - 1
let count_mask = max_count
let max_readers = max_count - 1

let make ~index ~count =
  if index < 0 || index > max_index then
    invalid_arg (Printf.sprintf "Packed.make: index %d out of range" index);
  if count < 0 || count > max_count then
    invalid_arg (Printf.sprintf "Packed.make: count %d out of range" count);
  (index lsl count_bits) lor count

let index w = (w lsr count_bits) land max_index
let count w = w land count_mask
let of_index i = make ~index:i ~count:0

let succ_count w =
  (* Defer to the repository-wide typed saturation error (ISSUE 8):
     one exception, one message shape, whether the overflow is caught
     here (pre-increment) or by the registers' post-increment guard. *)
  if count w >= max_readers then
    Saturation.raise_saturated ~who:"Packed.succ_count" ~count:(count w)
      ~bound:max_readers;
  w + 1

let pp ppf w = Format.fprintf ppf "@[<h>⟨index=%d,@ count=%d⟩@]" (index w) (count w)
let equal = Int.equal
let to_string w = Format.asprintf "%a" pp w

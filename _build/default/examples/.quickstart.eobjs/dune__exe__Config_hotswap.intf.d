examples/config_hotswap.mli:

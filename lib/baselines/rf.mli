(** RF — the Readers-Field wait-free (1,N) register of Larsson,
    Gidenstam, Ha, Papatriantafilou and Tsigas ("Multiword atomic
    read/write registers on multiprocessor systems", JEA 2009): the
    paper's closest competitor (its reference [2]).

    A single synchronization word packs a buffer pointer (high bits)
    with one {e trace bit per reader} (low bits):

    - {b read} by reader [i]: one [FetchAndOr] setting bit [i] and
      returning the pointer atomically — an RMW on {e every} read,
      which is precisely the cost ARC's fast path avoids;
    - {b write}: pick a buffer not equal to the published one and not
      traced for any reader, copy the value, [AtomicExchange] the sync
      word to the new pointer with all trace bits cleared, then for
      every bit set in the old word record "reader [i] may still be
      using the old buffer" in a writer-private trace table — the
      O(N) write-time component the paper attributes to RF.

    Reader capacity is bounded by the word: [readers + ceil_log2
    (readers + 2) <= word bits].  On the paper's 64-bit C platform
    that is 58 readers; with OCaml's 63-bit int it is 57 (DESIGN.md
    §2).  N+2 buffers, wait-free, zero-copy reads like ARC. *)

val algorithm : string

val max_readers_for_word : word_bits:int -> int
(** Largest [n] with [n + ceil_log2 (n + 2) <= word_bits]. *)

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Arc_core.Register_intf.ZERO_COPY with module Mem = M
  (** [read_view]: zero-copy read; stable until this reader's next
      read, as the writer-private trace table protects the slot. *)
end

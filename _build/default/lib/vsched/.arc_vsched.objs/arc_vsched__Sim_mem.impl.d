lib/vsched/sim_mem.ml: Array Sched

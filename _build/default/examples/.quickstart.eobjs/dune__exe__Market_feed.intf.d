examples/market_feed.mli:

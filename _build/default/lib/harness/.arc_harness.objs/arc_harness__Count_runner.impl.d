lib/harness/count_runner.ml: Arc_core Arc_mem Arc_workload Array Format

(* Deliberately incorrect registers, used as negative controls: the
   schedule-exploration pipeline must catch each one.  If these ever
   pass, the test apparatus — not the algorithms — is broken. *)

(* No coordination at all: one shared buffer written in place.  Under
   word-granular simulated schedules, readers observe torn snapshots. *)
module Torn (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type t = { size : M.atomic; content : M.buffer }
  type reader = t

  let algorithm = "broken-torn"

  let caps =
    {
      Arc_core.Register_intf.wait_free = true;
      zero_copy = true;
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let create ~readers:_ ~capacity ~init =
    let t = { size = M.atomic 0; content = M.alloc capacity } in
    M.write_words t.content ~src:init ~len:(Array.length init);
    M.store t.size (Array.length init);
    t

  let reader t _ = t
  let read_with t ~f = f t.content (M.load t.size)

  let read_into t ~dst =
    read_with t ~f:(fun buffer len ->
        M.read_words buffer ~dst ~len;
        len)

  let write t ~src ~len =
    M.write_words t.content ~src ~len;
    M.store t.size len
end

(* Properly double-buffered (never torn), but each reader caches its
   first snapshot forever: blatant regularity (staleness) violation
   that only the history checker can see. *)
module Stale (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type t = {
    index : M.atomic;
    sizes : M.atomic array;
    buffers : M.buffer array;
    capacity : int;
  }

  type reader = {
    reg : t;
    cache : M.buffer;
    mutable cached_len : int;
    mutable primed : bool;
  }

  let algorithm = "broken-stale"

  let caps =
    {
      Arc_core.Register_intf.wait_free = true;
      zero_copy = false;
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let create ~readers:_ ~capacity ~init =
    let t =
      {
        index = M.atomic 0;
        sizes = [| M.atomic 0; M.atomic 0 |];
        buffers = [| M.alloc capacity; M.alloc capacity |];
        capacity;
      }
    in
    M.write_words t.buffers.(0) ~src:init ~len:(Array.length init);
    M.store t.sizes.(0) (Array.length init);
    t

  let reader reg _ = { reg; cache = M.alloc reg.capacity; cached_len = 0; primed = false }

  let read_with rd ~f =
    if not rd.primed then begin
      let i = M.load rd.reg.index in
      rd.cached_len <- M.load rd.reg.sizes.(i);
      M.blit rd.reg.buffers.(i) rd.cache ~len:rd.cached_len;
      rd.primed <- true
    end;
    f rd.cache rd.cached_len

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        M.read_words buffer ~dst ~len;
        len)

  (* Ping-pong between two buffers with no reader tracking: the write
     itself can also race a first read, but the headline defect is
     staleness. *)
  let write t ~src ~len =
    let next = 1 - M.load t.index in
    M.write_words t.buffers.(next) ~src ~len;
    M.store t.sizes.(next) len;
    M.store t.index next
end

(* Fault-layer-driven breakage: the {e correct} ARC turned broken by
   an unsound fault plan, for the crash-aware checking pipeline to
   convict.  Unlike [Torn]/[Stale] these need no bespoke bad
   algorithm — the defect is injected by Arc_fault.Fault_mem, which is
   exactly what makes them good controls for the fault campaign: if
   the crash-aware checker and the invariant auditor accept runs with
   these plans installed, the fault layer or the checks are broken. *)
module Faulty_plans = struct
  module Fault_plan = Arc_fault.Fault_plan

  (* Torn write: the writer's [at_copy]-th bulk copy stops after
     [at_word] words but {e reports success}, so a half-new half-old
     snapshot gets published.  Readers must observe payload
     validation failures (torn > 0). *)
  let silent_tear ~at_copy ~at_word =
    Fault_plan.tear ~fiber:0 ~at_copy ~at_word ~silent:true Fault_plan.empty

  (* Lost release: the given reader's first RMW — its R3 release
     increment of [r_end] — is dropped, so its presence stays
     double-counted.  The history stays atomic; only the
     presence-ledger audit (negative slack) can convict this. *)
  let lost_release ~reader_fiber =
    Fault_plan.drop ~fiber:reader_fiber ~kind:`Rmw ~nth:1 Fault_plan.empty
end

(* Escape hatch for the watchdog test: [Hang]'s writer spins until
   [release] is set.  Lives outside the functor so the test can free
   the leaked worker after the watchdog has fired. *)
module Hang_control = struct
  let release : bool Atomic.t = Atomic.make false
  let arm () = Atomic.set release false
  let free () = Atomic.set release true
end

(* A register whose write hangs (a model of a lost unlock / livelocked
   retry loop): reads are fine, but the writer spins on an external
   flag and never observes the harness stop signal.  The real runner's
   watchdog must convert this into a diagnostic failure instead of
   blocking the join forever. *)
module Hang (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type t = { size : M.atomic; content : M.buffer }
  type reader = t

  let algorithm = "broken-hang"

  let caps =
    {
      Arc_core.Register_intf.wait_free = false;
      zero_copy = true;
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let create ~readers:_ ~capacity ~init =
    let t = { size = M.atomic 0; content = M.alloc capacity } in
    M.write_words t.content ~src:init ~len:(Array.length init);
    M.store t.size (Array.length init);
    t

  let reader t _ = t
  let read_with t ~f = f t.content (M.load t.size)

  let read_into t ~dst =
    read_with t ~f:(fun buffer len ->
        M.read_words buffer ~dst ~len;
        len)

  let write _t ~src:_ ~len:_ =
    while not (Atomic.get Hang_control.release) do
      Domain.cpu_relax ()
    done
end

(* The memory substrate: real atomics instance and the counting
   instrumentation. *)

module Real = Arc_mem.Real_mem
module Intf = Arc_mem.Mem_intf
module Counting = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Sim = Arc_vsched.Sim_mem

let check = Alcotest.(check int)

let test_atomic_basics () =
  let a = Real.atomic 10 in
  check "load" 10 (Real.load a);
  Real.store a 20;
  check "store" 20 (Real.load a);
  check "exchange returns old" 20 (Real.exchange a 30);
  check "exchange stored" 30 (Real.load a)

let test_add_semantics () =
  let a = Real.atomic 100 in
  check "fetch_and_add returns old" 100 (Real.fetch_and_add a 5);
  check "after faa" 105 (Real.load a);
  check "add_and_fetch returns new" 112 (Real.add_and_fetch a 7);
  Real.incr a;
  check "incr" 113 (Real.load a)

let test_cas () =
  let a = Real.atomic 1 in
  Alcotest.(check bool) "cas succeeds" true (Real.compare_and_set a 1 2);
  Alcotest.(check bool) "cas fails on mismatch" false (Real.compare_and_set a 1 3);
  check "value from successful cas" 2 (Real.load a)

let test_fetch_or_and () =
  let a = Real.atomic 0b1010 in
  check "fetch_and_or returns old" 0b1010 (Real.fetch_and_or a 0b0101);
  check "or applied" 0b1111 (Real.load a);
  check "fetch_and_and returns old" 0b1111 (Real.fetch_and_and a 0b0110);
  check "and applied" 0b0110 (Real.load a)

let test_buffers () =
  let b = Real.alloc 8 in
  check "capacity" 8 (Real.capacity b);
  check "zero initialized" 0 (Real.read_word b 3);
  Real.write_words b ~src:[| 1; 2; 3; 4 |] ~len:4;
  check "word 0" 1 (Real.read_word b 0);
  check "word 3" 4 (Real.read_word b 3);
  let dst = Array.make 4 0 in
  Real.read_words b ~dst ~len:4;
  Alcotest.(check (array int)) "read_words" [| 1; 2; 3; 4 |] dst;
  let b2 = Real.alloc 8 in
  Real.blit b b2 ~len:4;
  check "blit copied" 3 (Real.read_word b2 2)

let test_buffer_validation () =
  let b = Real.alloc 4 in
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Real.write_words b ~src:[| 1 |] ~len:2);
  raises (fun () -> Real.write_words b ~src:(Array.make 10 0) ~len:5);
  raises (fun () -> Real.read_words b ~dst:(Array.make 1 0) ~len:2);
  raises (fun () -> Real.alloc (-1));
  raises (fun () -> Real.blit b (Real.alloc 2) ~len:3)

let test_counting_classifies () =
  Counting.reset ();
  let a = Counting.atomic 0 in
  ignore (Counting.load a);
  ignore (Counting.load a);
  Counting.store a 5;
  ignore (Counting.exchange a 6);
  ignore (Counting.add_and_fetch a 1);
  ignore (Counting.fetch_and_add a 1);
  Counting.incr a;
  ignore (Counting.compare_and_set a 9 10);
  let c = Counting.counts () in
  check "plain loads" 2 c.Intf.atomic_load;
  check "plain stores" 1 c.Intf.atomic_store;
  check "five RMWs" 5 c.Intf.rmw

let test_counting_fetch_or_charges_retries () =
  Counting.reset ();
  let a = Counting.atomic 0 in
  ignore (Counting.fetch_and_or a 1);
  let c = Counting.counts () in
  (* emulated with one CAS (uncontended): exactly one RMW *)
  check "one RMW for uncontended fetch_or" 1 c.Intf.rmw

let test_counting_buffers () =
  Counting.reset ();
  let b = Counting.alloc 16 in
  Counting.write_words b ~src:(Array.make 16 7) ~len:16;
  ignore (Counting.read_word b 0);
  let dst = Array.make 8 0 in
  Counting.read_words b ~dst ~len:8;
  let c = Counting.counts () in
  check "word writes" 16 c.Intf.word_write;
  check "word reads" 9 c.Intf.word_read

let test_counting_reset () =
  Counting.reset ();
  let a = Counting.atomic 0 in
  Counting.incr a;
  Counting.reset ();
  check "counts cleared" 0 (Counting.counts ()).Intf.rmw

let test_counts_across_domains () =
  Counting.reset ();
  let a = Counting.atomic 0 in
  let work () =
    for _ = 1 to 1000 do
      Counting.incr a
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  Domain.join d1;
  Domain.join d2;
  check "per-domain counters aggregate" 2000 (Counting.counts ()).Intf.rmw;
  check "the atomic itself is consistent" 2000 (Counting.load a)

let test_real_atomics_parallel () =
  (* The substrate's RMWs must be atomic under parallel domains. *)
  let a = Real.atomic 0 in
  let n = 50_000 in
  let work () =
    for _ = 1 to n do
      Real.incr a
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  Domain.join d1;
  Domain.join d2;
  check "no lost increments" (2 * n) (Real.load a)

(* Bulk-operation edge cases, uniform across every instance of the
   signature: length 0 is a valid no-op, full capacity is legal, and
   any length exceeding a buffer (or negative) raises. *)
module Bulk_edges (M : Intf.S) = struct
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"

  let run () =
    let b = M.alloc 4 in
    (* len = 0: valid no-op, even with empty sources *)
    M.write_words b ~src:[||] ~len:0;
    M.read_words b ~dst:[||] ~len:0;
    M.blit b b ~len:0;
    check (M.name ^ ": untouched by len-0 ops") 0 (M.read_word b 0);
    (* full capacity *)
    M.write_words b ~src:[| 1; 2; 3; 4 |] ~len:4;
    let dst = Array.make 4 0 in
    M.read_words b ~dst ~len:4;
    Alcotest.(check (array int))
      (M.name ^ ": full-capacity roundtrip")
      [| 1; 2; 3; 4 |] dst;
    let b2 = M.alloc 4 in
    M.blit b b2 ~len:4;
    check (M.name ^ ": full-capacity blit") 4 (M.read_word b2 3);
    (* a zero-capacity buffer is legal and only hosts len-0 ops *)
    let z = M.alloc 0 in
    check (M.name ^ ": zero capacity") 0 (M.capacity z);
    M.write_words z ~src:[||] ~len:0;
    raises (fun () -> M.write_words z ~src:[| 1 |] ~len:1);
    (* overflow: len past the buffer, past the source, past the dst *)
    raises (fun () -> M.write_words b ~src:(Array.make 8 0) ~len:5);
    raises (fun () -> M.write_words b ~src:[| 1; 2 |] ~len:3);
    raises (fun () -> M.read_words b ~dst:(Array.make 2 0) ~len:3);
    raises (fun () -> M.read_words b ~dst:(Array.make 8 0) ~len:5);
    raises (fun () -> M.blit b b2 ~len:5);
    (* negative lengths *)
    raises (fun () -> M.write_words b ~src:[||] ~len:(-1));
    raises (fun () -> M.read_words b ~dst:[||] ~len:(-1));
    raises (fun () -> M.blit b b2 ~len:(-1))
end

module Real_edges = Bulk_edges (Real)
module Counting_edges = Bulk_edges (Counting)
module Sim_edges = Bulk_edges (Sim)

let test_atomic_contended_semantics () =
  (* A contended cell is an ordinary atomic apart from its placement. *)
  let a = Real.atomic_contended 7 in
  check "initial" 7 (Real.load a);
  Real.store a 9;
  check "store" 9 (Real.load a);
  check "faa returns old" 9 (Real.fetch_and_add a 3);
  Alcotest.(check bool) "cas" true (Real.compare_and_set a 12 13);
  check "after cas" 13 (Real.load a);
  let s = Sim.atomic_contended 5 in
  check "sim contended aliases atomic" 5 (Sim.load s)

let test_counting_contended_alloc_free () =
  (* Allocation placement is a layout concern, not an operation: a
     contended cell must count exactly like a plain one. *)
  Counting.reset ();
  let a = Counting.atomic_contended 0 in
  check "allocation charges nothing" 0 (Counting.counts ()).Intf.rmw;
  Counting.incr a;
  ignore (Counting.load a);
  let c = Counting.counts () in
  check "one RMW" 1 c.Intf.rmw;
  check "one load" 1 c.Intf.atomic_load

module Arc_cnt = Arc_core.Arc.Make (Counting)
module P_cnt = Arc_workload.Payload.Make (Counting)

let test_arc_fast_path_rmw_free () =
  (* The paper's fast path (§3.2): re-reading an unchanged register
     performs zero RMW instructions — only plain atomic loads. *)
  Counting.reset ();
  let capacity = 8 in
  let init = Array.make capacity 0 in
  P_cnt.stamp init ~seq:0 ~len:capacity;
  let reg = Arc_cnt.create ~readers:1 ~capacity ~init in
  let rd = Arc_cnt.reader reg 0 in
  (* First read claims the slot (pays the RMWs once). *)
  ignore (Arc_cnt.read_with rd ~f:(fun _ _ -> ()));
  let before = (Counting.counts ()).Intf.rmw in
  for _ = 1 to 10 do
    ignore (Arc_cnt.read_with rd ~f:(fun _ _ -> ()))
  done;
  let after = (Counting.counts ()).Intf.rmw in
  check "10 fast-path reads, 0 RMWs" 0 (after - before)

let prop_exchange_sequence =
  QCheck.Test.make ~name:"exchange chains return previous values" ~count:200
    QCheck.(small_list int)
    (fun xs ->
      let a = Real.atomic 0 in
      let rec go prev = function
        | [] -> true
        | x :: rest -> Real.exchange a x = prev && go x rest
      in
      go 0 xs)

let suite =
  [
    Alcotest.test_case "atomic basics" `Quick test_atomic_basics;
    Alcotest.test_case "add semantics" `Quick test_add_semantics;
    Alcotest.test_case "cas" `Quick test_cas;
    Alcotest.test_case "fetch or/and" `Quick test_fetch_or_and;
    Alcotest.test_case "buffers" `Quick test_buffers;
    Alcotest.test_case "buffer validation" `Quick test_buffer_validation;
    Alcotest.test_case "counting classifies ops" `Quick test_counting_classifies;
    Alcotest.test_case "counting fetch_or" `Quick test_counting_fetch_or_charges_retries;
    Alcotest.test_case "counting buffers" `Quick test_counting_buffers;
    Alcotest.test_case "counting reset" `Quick test_counting_reset;
    Alcotest.test_case "counts across domains" `Quick test_counts_across_domains;
    Alcotest.test_case "real atomics parallel" `Quick test_real_atomics_parallel;
    Alcotest.test_case "bulk edges (real)" `Quick Real_edges.run;
    Alcotest.test_case "bulk edges (counting)" `Quick Counting_edges.run;
    Alcotest.test_case "bulk edges (sim)" `Quick Sim_edges.run;
    Alcotest.test_case "atomic_contended semantics" `Quick
      test_atomic_contended_semantics;
    Alcotest.test_case "atomic_contended counting" `Quick
      test_counting_contended_alloc_free;
    Alcotest.test_case "arc fast-path read is RMW-free" `Quick
      test_arc_fast_path_rmw_free;
    QCheck_alcotest.to_alcotest prop_exchange_sequence;
  ]

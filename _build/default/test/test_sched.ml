(* The virtual scheduler: determinism, fairness, budgets, adversaries. *)

module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let test_runs_to_completion () =
  let hits = Array.make 3 0 in
  let fiber i () =
    for _ = 1 to 5 do
      hits.(i) <- hits.(i) + 1;
      Sched.cede ()
    done
  in
  let outcome =
    Sched.run ~strategy:(Strategy.round_robin ()) (Array.init 3 fiber)
  in
  check "all completed" 3 outcome.Sched.completed;
  check "none unfinished" 0 outcome.Sched.unfinished;
  Alcotest.(check (array int)) "every fiber did its work" [| 5; 5; 5 |] hits

let test_round_robin_interleaves () =
  let order = ref [] in
  let fiber i () =
    for _ = 1 to 3 do
      order := i :: !order;
      Sched.cede ()
    done
  in
  let _ = Sched.run ~strategy:(Strategy.round_robin ()) (Array.init 3 fiber) in
  Alcotest.(check (list int)) "strict rotation" [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ]
    (List.rev !order)

let test_no_cede_runs_atomically () =
  (* A fiber that never cedes is never preempted. *)
  let log = ref [] in
  let a () =
    log := "a1" :: !log;
    log := "a2" :: !log
  in
  let b () =
    Sched.cede ();
    log := "b" :: !log
  in
  let _ = Sched.run ~strategy:(Strategy.round_robin ()) [| a; b |] in
  Alcotest.(check bool) "a's two entries adjacent" true
    (match List.rev !log with
    | "a1" :: "a2" :: _ -> true
    | l -> List.exists (( = ) "b") l && false)

let test_step_budget () =
  let spins = ref 0 in
  let fiber () =
    while true do
      incr spins;
      Sched.cede ()
    done
  in
  let outcome =
    Sched.run ~max_steps:100 ~strategy:(Strategy.round_robin ()) [| fiber |]
  in
  check "unfinished fiber counted" 1 outcome.Sched.unfinished;
  Alcotest.(check bool) "budget respected" true (outcome.Sched.steps >= 100)

let test_weighted_cede () =
  let fiber () =
    Sched.cede ~weight:10 ();
    Sched.cede ~weight:10 ()
  in
  let outcome = Sched.run ~strategy:(Strategy.round_robin ()) [| fiber |] in
  Alcotest.(check bool)
    (Printf.sprintf "steps %d reflect weights" outcome.Sched.steps)
    true
    (outcome.Sched.steps >= 20)

let test_self_and_count () =
  let seen = Array.make 4 (-1) in
  let counts = Array.make 4 0 in
  let fiber i () =
    seen.(i) <- Sched.self ();
    counts.(i) <- Sched.fiber_count ()
  in
  let _ = Sched.run ~strategy:(Strategy.round_robin ()) (Array.init 4 fiber) in
  Alcotest.(check (array int)) "self is the spawn index" [| 0; 1; 2; 3 |] seen;
  Alcotest.(check (array int)) "fiber_count" [| 4; 4; 4; 4 |] counts

let test_outside_scheduler () =
  Sched.cede ();
  (* no-op *)
  check "now is 0 outside" 0 (Sched.now ());
  check "fiber_count 0 outside" 0 (Sched.fiber_count ());
  Alcotest.check_raises "self outside fails"
    (Failure "Sched.self: not inside a fiber") (fun () -> ignore (Sched.self ()))

let test_random_deterministic () =
  let trace seed =
    let order = ref [] in
    let fiber i () =
      for _ = 1 to 10 do
        order := i :: !order;
        Sched.cede ()
      done
    in
    let _ = Sched.run ~strategy:(Strategy.random ~seed) (Array.init 4 fiber) in
    List.rev !order
  in
  Alcotest.(check (list int)) "same seed, same schedule" (trace 7) (trace 7);
  Alcotest.(check bool) "different seed, different schedule" true
    (trace 7 <> trace 8)

let test_random_burst_valid () =
  let hits = Array.make 3 0 in
  let fiber i () =
    for _ = 1 to 20 do
      hits.(i) <- hits.(i) + 1;
      Sched.cede ()
    done
  in
  let outcome =
    Sched.run
      ~strategy:(Strategy.random_burst ~seed:3 ~max_burst:5)
      (Array.init 3 fiber)
  in
  check "all complete under bursts" 3 outcome.Sched.completed

let test_starve_delays_victim () =
  let finished_at = Array.make 2 0 in
  let fiber i () =
    for _ = 1 to 5 do
      Sched.cede ()
    done;
    finished_at.(i) <- Sched.now ()
  in
  let strategy =
    Strategy.starve ~victims:[ 0 ] ~until_step:200
      ~base:(Strategy.round_robin ())
  in
  let outcome = Sched.run ~strategy (Array.init 2 fiber) in
  check "both eventually finish" 2 outcome.Sched.completed;
  Alcotest.(check bool)
    (Printf.sprintf "victim (%d) finished after peer (%d)" finished_at.(0)
       finished_at.(1))
    true
    (finished_at.(0) > finished_at.(1))

let test_steal_still_completes () =
  let fiber _ () =
    for _ = 1 to 50 do
      Sched.cede ()
    done
  in
  let strategy =
    Strategy.steal ~seed:5
      ~base:(Strategy.random ~seed:6)
      ~probability:0.2 ~min_pause:5 ~max_pause:50
  in
  let outcome = Sched.run ~strategy (Array.init 4 (fun i -> fiber i)) in
  check "steal never blocks completion" 4 outcome.Sched.completed

let test_all_stolen_fast_forwards () =
  (* With one fiber and an aggressive thief, time must skip to wake-ups
     instead of deadlocking. *)
  let fiber () =
    for _ = 1 to 10 do
      Sched.cede ()
    done
  in
  let strategy =
    Strategy.steal ~seed:1
      ~base:(Strategy.round_robin ())
      ~probability:0.9 ~min_pause:10 ~max_pause:20
  in
  let outcome = Sched.run ~strategy [| fiber |] in
  check "completed despite constant theft" 1 outcome.Sched.completed

let test_nested_run_rejected () =
  let attempted = ref false in
  let fiber () =
    attempted := true;
    match Sched.run ~strategy:(Strategy.round_robin ()) [| (fun () -> ()) |] with
    | _ -> Alcotest.fail "nested run should fail"
    | exception Failure _ -> ()
  in
  let _ = Sched.run ~strategy:(Strategy.round_robin ()) [| fiber |] in
  Alcotest.(check bool) "inner run attempted" true !attempted

let test_exception_propagates () =
  Alcotest.check_raises "fiber exception surfaces" (Failure "boom") (fun () ->
      ignore
        (Sched.run ~strategy:(Strategy.round_robin ())
           [| (fun () -> failwith "boom") |]));
  (* ... and the scheduler slot is released for subsequent runs. *)
  let outcome = Sched.run ~strategy:(Strategy.round_robin ()) [| (fun () -> ()) |] in
  check "scheduler usable after exception" 1 outcome.Sched.completed

let test_empty_run () =
  let outcome = Sched.run ~strategy:(Strategy.round_robin ()) [||] in
  check "empty run trivially done" 0 outcome.Sched.completed

let test_many_fibers () =
  (* The Fig. 3 regime needs thousands of cheap fibers. *)
  let n = 4000 in
  let done_count = Atomic.make 0 in
  let fiber _ () =
    for _ = 1 to 3 do
      Sched.cede ()
    done;
    Atomic.incr done_count
  in
  let outcome =
    Sched.run ~strategy:(Strategy.random ~seed:9) (Array.init n (fun i -> fiber i))
  in
  check "4000 fibers complete" n outcome.Sched.completed;
  check "all bodies ran" n (Atomic.get done_count)

let suite =
  [
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "round robin interleaves" `Quick test_round_robin_interleaves;
    Alcotest.test_case "no cede = atomic" `Quick test_no_cede_runs_atomically;
    Alcotest.test_case "step budget" `Quick test_step_budget;
    Alcotest.test_case "weighted cede" `Quick test_weighted_cede;
    Alcotest.test_case "self and fiber_count" `Quick test_self_and_count;
    Alcotest.test_case "outside scheduler" `Quick test_outside_scheduler;
    Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "random burst valid" `Quick test_random_burst_valid;
    Alcotest.test_case "starve delays victim" `Quick test_starve_delays_victim;
    Alcotest.test_case "steal still completes" `Quick test_steal_still_completes;
    Alcotest.test_case "all stolen fast-forwards" `Quick test_all_stolen_fast_forwards;
    Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "empty run" `Quick test_empty_run;
    Alcotest.test_case "many fibers" `Quick test_many_fibers;
  ]

let test_pct_completes_and_is_deterministic () =
  let trace seed =
    let order = ref [] in
    let fiber i () =
      for _ = 1 to 8 do
        order := i :: !order;
        Sched.cede ()
      done
    in
    let strategy = Strategy.pct ~seed ~fibers:4 ~depth:3 ~expected_steps:100 in
    let outcome = Sched.run ~strategy (Array.init 4 fiber) in
    Alcotest.(check int) "all complete" 4 outcome.Sched.completed;
    List.rev !order
  in
  Alcotest.(check (list int)) "same seed same schedule" (trace 11) (trace 11);
  Alcotest.(check bool) "seeds differ" true (trace 11 <> trace 12)

let test_pct_priority_scheduling () =
  (* With depth 1 there are no change points: PCT runs the
     highest-priority fiber to completion before the next. *)
  let order = ref [] in
  let fiber i () =
    for _ = 1 to 3 do
      order := i :: !order;
      Sched.cede ()
    done
  in
  let strategy = Strategy.pct ~seed:3 ~fibers:3 ~depth:1 ~expected_steps:50 in
  let _ = Sched.run ~strategy (Array.init 3 fiber) in
  (* each fiber's entries must be contiguous *)
  let runs = List.rev !order in
  let rec contiguous seen = function
    | [] -> true
    | x :: rest ->
      if List.mem x seen then false
      else begin
        let rec eat = function y :: r when y = x -> eat r | r -> r in
        contiguous (x :: seen) (eat rest)
      end
  in
  Alcotest.(check bool) "no interleaving without change points" true
    (contiguous [] runs)

let test_pct_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Strategy.pct ~seed:1 ~fibers:0 ~depth:1 ~expected_steps:10);
  raises (fun () -> Strategy.pct ~seed:1 ~fibers:1 ~depth:0 ~expected_steps:10);
  raises (fun () -> Strategy.pct ~seed:1 ~fibers:1 ~depth:1 ~expected_steps:0)

let suite =
  suite
  @ [
      Alcotest.test_case "pct completes deterministically" `Quick
        test_pct_completes_and_is_deterministic;
      Alcotest.test_case "pct priority scheduling" `Quick test_pct_priority_scheduling;
      Alcotest.test_case "pct validation" `Quick test_pct_validation;
    ]

lib/core/arc_dynamic.mli: Arc_mem Register_intf

lib/core/arc.mli: Arc_mem Register_intf

(** Histories of register operations, in the §3.1 sense: each
    operation is an interval [⟨invoked, returned⟩] on a global clock
    (nanoseconds for real runs, simulated steps for scheduler runs)
    carrying the sequence number of the register value it wrote or
    returned.

    Values are identified by the writer's sequence number: write k
    publishes value k (k ≥ 1), and 0 identifies the initial value, so
    checking never depends on payload contents — workloads stamp the
    sequence number into the payload (see {!Arc_workload.Payload}) and
    the read side extracts it. *)

type kind = Read | Write

type event = {
  kind : kind;
  thread : int;  (** writer thread or reader identity *)
  seq : int;  (** value written / value observed *)
  invoked : int;
  returned : int;
}

val event : kind -> thread:int -> seq:int -> invoked:int -> returned:int -> event
(** @raise Invalid_argument if [returned < invoked] or [seq < 0]. *)

val pp_event : Format.formatter -> event -> unit

type t
(** An immutable history. *)

val of_events : event list -> t
(** Builds a history; events need not be sorted. *)

val events : t -> event list
(** All events, sorted by invocation time. *)

val reads : t -> event list
val writes : t -> event list
(** Writes sorted by sequence number. *)

val size : t -> int

val dump : ?meta:(string * int) list -> t -> string -> unit
(** Write the history to a line-oriented text file, prefixed by
    [meta] key/value context lines — crash harnesses persist the
    recovery fence and the pending write here, so a history can be
    re-judged by a process that saw none of the run ([arc-check
    --history]).
    @raise Invalid_argument on a meta key containing whitespace.
    @raise Sys_error on filesystem failure. *)

val load : string -> t * (string * int) list
(** Read back a {!dump}ed history and its meta entries (in file
    order).
    @raise Failure with file/line diagnostics on malformed input.
    @raise Sys_error on filesystem failure. *)

(** Mutable per-thread recorder with preallocated storage, so
    recording perturbs measured runs as little as possible.  Each
    thread must only append to its own index; merging happens after
    the threads are joined. *)
module Recorder : sig
  type recorder

  val create : threads:int -> capacity:int -> recorder
  (** [capacity] events per thread; further events are dropped and
      counted. *)

  val record :
    recorder -> thread:int -> kind -> seq:int -> invoked:int -> returned:int -> unit

  val dropped : recorder -> int
  val history : recorder -> t
end

lib/baselines/seqlock_reg.mli: Arc_core Arc_mem

(* Sharded register fabric (ISSUE 6): single-threaded semantics,
   capability discovery, adversarial vsched campaigns judged by the
   cross-shard checker, the wait-freedom retry bound, and the
   collect-only negative control the checker must convict. *)

module Config = Arc_harness.Config
module Registry = Arc_harness.Registry
module Fabric_runner = Arc_harness.Fabric_runner
module Checker = Arc_trace.Checker
module History = Arc_trace.History
module Strategy = Arc_vsched.Strategy
module F = Arc_fabric.Fabric.Make (Arc_core.Arc.Make (Arc_mem.Real_mem))

(* {2 Single-threaded fabric semantics (Real_mem)} *)

let mk ?(shards = 4) ?(writers = 2) ?(readers = 2) ?(capacity = 8) () =
  F.create ~shards ~writers ~readers ~capacity ~init:(Array.make capacity 0)

let test_create_validation () =
  let raises f = Alcotest.check_raises "invalid_arg" (Invalid_argument "") f in
  let check_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  ignore raises;
  check_invalid (fun () -> mk ~shards:0 ());
  check_invalid (fun () -> mk ~writers:0 ());
  check_invalid (fun () -> mk ~writers:5 ~shards:4 ());
  check_invalid (fun () -> mk ~readers:0 ());
  let fab = mk () in
  Alcotest.(check int) "shards" 4 (F.shards fab);
  Alcotest.(check int) "writers" 2 (F.writers fab);
  Alcotest.(check int) "readers" 2 (F.readers fab);
  Alcotest.(check int) "capacity" 8 (F.capacity fab);
  check_invalid (fun () -> F.scanner fab 2);
  check_invalid (fun () -> F.writer fab 2)

let test_ownership () =
  let fab = mk () in
  Alcotest.(check int) "shard 0" 0 (F.owner_of fab 0);
  Alcotest.(check int) "shard 1" 1 (F.owner_of fab 1);
  Alcotest.(check int) "shard 2" 0 (F.owner_of fab 2);
  let w1 = F.writer fab 1 in
  let src = Array.make 8 7 in
  (match F.write w1 ~shard:0 ~src ~len:8 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "foreign-shard write must be rejected");
  F.write w1 ~shard:1 ~src ~len:8

let test_snapshot_contents () =
  let fab = mk () in
  let w0 = F.writer fab 0 and w1 = F.writer fab 1 in
  let sc = F.scanner fab 0 in
  let buf = Array.make 8 0 in
  (* Initial snapshot: all shards hold the init value, stamp 1. *)
  let snap = F.snapshot sc in
  Alcotest.(check bool) "direct" false (F.borrowed snap);
  for s = 0 to 3 do
    Alcotest.(check int) "init len" 8 (F.shard_len snap s);
    Alcotest.(check int) "init stamp" 1 (F.shard_stamp snap s);
    Alcotest.(check int) "init word" 0 (F.shard_word snap s 0)
  done;
  (* Distinct payloads per shard, then snapshot again. *)
  for s = 0 to 3 do
    Array.fill buf 0 8 (100 + s);
    let w = if s mod 2 = 0 then w0 else w1 in
    F.write w ~shard:s ~src:buf ~len:6
  done;
  let snap = F.snapshot sc in
  for s = 0 to 3 do
    Alcotest.(check int) "len" 6 (F.shard_len snap s);
    Alcotest.(check int) "stamp" 2 (F.shard_stamp snap s);
    Alcotest.(check int) "word" (100 + s) (F.shard_word snap s 5);
    let dst = Array.make 8 0 in
    Alcotest.(check int) "copy len" 6 (F.shard_copy snap s ~dst);
    Alcotest.(check int) "copy word" (100 + s) dst.(0)
  done;
  (* Point reads agree with the snapshot. *)
  let dst = Array.make 8 0 in
  Alcotest.(check int) "read len" 6 (F.read sc ~shard:2 ~dst);
  Alcotest.(check int) "read word" 102 dst.(0);
  Alcotest.(check int) "read_with" 103 (F.read_with sc ~shard:3 ~f:(fun b _ ->
      Arc_mem.Real_mem.read_word b 0));
  (* Telemetry: two direct snapshots, no helping traffic. *)
  Alcotest.(check int) "direct total" 2 (F.snapshots_direct fab);
  Alcotest.(check int) "borrowed total" 0 (F.snapshots_borrowed fab);
  Alcotest.(check int) "retries" 0 (F.snapshot_retries fab);
  Alcotest.(check int) "deposits" 0 (F.deposits_made fab);
  Alcotest.(check int) "shard writes" 1 (F.shard_writes fab 2);
  Alcotest.(check bool) "metrics nonempty" true (F.metrics fab <> [])

let test_unvalidated_single_threaded () =
  (* Without concurrency the negative control is indistinguishable
     from the real snapshot — its defect exists only under races. *)
  let fab = mk () in
  let w0 = F.writer fab 0 in
  let src = Array.make 8 42 in
  F.write w0 ~shard:0 ~src ~len:8;
  let snap = F.snapshot_unvalidated (F.scanner fab 0) in
  Alcotest.(check int) "word" 42 (F.shard_word snap 0 0);
  Alcotest.(check int) "stamp" 2 (F.shard_stamp snap 0)

(* {2 Capability discovery (satellite: no hard-coded name lists)} *)

let test_discovery () =
  let eligible = Registry.fabric_capable Registry.all in
  let names = List.map (fun e -> e.Registry.name) eligible in
  Alcotest.(check (list string))
    "exactly the stamped family" [ "arc"; "arc-nohint"; "arc-dynamic" ] names;
  List.iter
    (fun (e : Registry.entry) ->
      Alcotest.(check bool)
        (e.Registry.name ^ " caps bit")
        true e.Registry.caps.Arc_core.Register_intf.snapshot_read;
      Alcotest.(check bool)
        (e.Registry.name ^ " has runner")
        true
        (Option.is_some e.Registry.run_fabric_sim))
    eligible;
  List.iter
    (fun (e : Registry.entry) ->
      if not (List.mem e.Registry.name names) then
        Alcotest.(check bool)
          (e.Registry.name ^ " not eligible")
          false e.Registry.caps.Arc_core.Register_intf.snapshot_read)
    Registry.all

(* {2 Adversarial campaigns under the virtual scheduler} *)

let base_cfg =
  {
    Config.fab_shards = 4;
    fab_writers = 2;
    fab_scanners = 2;
    fab_size_words = 16;
    fab_steps = 20_000;
    fab_seed = 0;
    fab_atomic = true;
  }

let strategies ~fibers seed =
  [
    ("random", Strategy.random ~seed);
    ("burst", Strategy.random_burst ~seed ~max_burst:60);
    ( "steal",
      Strategy.steal ~seed
        ~base:(Strategy.random ~seed:(seed + 1))
        ~probability:0.01 ~min_pause:50 ~max_pause:400 );
    ("pct", Strategy.pct ~seed ~fibers ~depth:4 ~expected_steps:20_000);
  ]

let run_campaign ~(cfg : Config.fabric_sim) ~seeds (entry : Registry.entry) =
  let run = Option.get entry.Registry.run_fabric_sim in
  let fibers = cfg.Config.fab_writers + cfg.Config.fab_scanners in
  let acc = ref [] in
  for seed = 1 to seeds do
    List.iter
      (fun (strategy_name, strategy) ->
        let r = run ~strategy { cfg with Config.fab_seed = seed } in
        acc := (strategy_name, seed, r) :: !acc)
      (strategies ~fibers seed)
  done;
  List.rev !acc

let test_atomic_campaign () =
  let bound_passes (cfg : Config.fabric_sim) (r : Fabric_runner.result) =
    (* Every scan — public or a writer's helping scan (one per
       deposit) — retries at most 2·shards + 3 times. *)
    let scans = r.Fabric_runner.fr_snapshots + r.Fabric_runner.fr_deposits in
    r.Fabric_runner.fr_retries <= scans * ((2 * cfg.Config.fab_shards) + 3)
  in
  let direct = ref 0 and borrowed = ref 0 and retries = ref 0 in
  List.iter
    (fun (entry : Registry.entry) ->
      List.iter
        (fun (strategy_name, seed, (r : Fabric_runner.result)) ->
          let fail fmt =
            Alcotest.failf
              ("%s under %s(seed=%d): " ^^ fmt)
              entry.Registry.name strategy_name seed
          in
          if r.Fabric_runner.fr_torn > 0 then
            fail "%d within-shard torn values" r.Fabric_runner.fr_torn;
          if strategy_name <> "pct" then begin
            (* PCT's strict priorities may legitimately starve a fiber
               class; the fair-ish strategies must make progress. *)
            if r.Fabric_runner.fr_writes = 0 then fail "no writes";
            if r.Fabric_runner.fr_snapshots = 0 then fail "no snapshots"
          end;
          if not (bound_passes base_cfg r) then
            fail "retry bound violated: %d retries over %d scans"
              r.Fabric_runner.fr_retries
              (r.Fabric_runner.fr_snapshots + r.Fabric_runner.fr_deposits);
          (match Fabric_runner.check r with
          | Ok report ->
            Alcotest.(check int)
              "all snapshots judged" (List.length r.Fabric_runner.fr_snapshot_obs)
              report.Checker.snapshots_checked
          | Error v -> fail "%a" Checker.pp_fabric_violation v);
          direct := !direct + (r.Fabric_runner.fr_snapshots - r.Fabric_runner.fr_borrowed);
          borrowed := !borrowed + r.Fabric_runner.fr_borrowed;
          retries := !retries + r.Fabric_runner.fr_retries)
        (run_campaign ~cfg:base_cfg ~seeds:6 entry))
    (Registry.fabric_capable Registry.all);
  (* Both snapshot regimes must actually occur across the campaign:
     clean/once-modified collects certified directly, and
     twice-modified shards served from a helping deposit. *)
  Alcotest.(check bool) "direct regime exercised" true (!direct > 0);
  Alcotest.(check bool) "borrowed regime exercised" true (!borrowed > 0);
  Alcotest.(check bool) "retry (modified-once) regime exercised" true (!retries > 0)

let test_starved_writers_all_direct () =
  (* The unbounded-delay adversary on every writer: scanners must
     still complete (wait-freedom), and with no writes moving, every
     snapshot is certified on its first probe pass. *)
  let entry = List.hd (Registry.fabric_capable Registry.all) in
  let run = Option.get entry.Registry.run_fabric_sim in
  let cfg = { base_cfg with Config.fab_steps = 5_000 } in
  let strategy =
    Strategy.starve
      ~victims:[ 0; 1 ] (* writer fibers come first *)
      ~until_step:1_000_000
      ~base:(Strategy.random ~seed:7)
  in
  let r = run ~strategy cfg in
  Alcotest.(check int) "no writes" 0 r.Fabric_runner.fr_writes;
  Alcotest.(check bool) "snapshots complete" true (r.Fabric_runner.fr_snapshots > 0);
  Alcotest.(check int) "no retries" 0 r.Fabric_runner.fr_retries;
  Alcotest.(check int) "no borrows" 0 r.Fabric_runner.fr_borrowed;
  match Fabric_runner.check r with
  | Ok _ -> ()
  | Error v -> Alcotest.failf "starved run: %a" Checker.pp_fabric_violation v

(* {2 Negative control: the collect-only fabric must be convicted} *)

let test_torn_control_convicted () =
  let entry = List.hd (Registry.fabric_capable Registry.all) in
  let run = Option.get entry.Registry.run_fabric_sim in
  let cfg = { base_cfg with Config.fab_atomic = false } in
  let convicted = ref 0 and runs = ref 0 in
  for seed = 1 to 8 do
    let r = run ~strategy:(Strategy.random ~seed) { cfg with Config.fab_seed = seed } in
    incr runs;
    (* Shard values still arrive through atomic register reads, so
       within-shard validation cannot fail even here. *)
    Alcotest.(check int) "no within-shard tearing" 0 r.Fabric_runner.fr_torn;
    match Fabric_runner.check r with
    | Ok _ -> ()
    | Error (Checker.Torn_snapshot _) -> incr convicted
    | Error ((Checker.Shard_violation _ | Checker.Cross_reign _) as v) ->
      Alcotest.failf "collect-only fabric produced a per-shard violation: %a"
        Checker.pp_fabric_violation v
  done;
  if !convicted = 0 then
    Alcotest.failf "collect-only negative control never convicted in %d runs" !runs

(* {2 Handcrafted histories for the cross-shard checker} *)

let w ~thread ~seq ~invoked ~returned =
  History.event History.Write ~thread ~seq ~invoked ~returned

let test_checker_handcrafted () =
  (* Shard 0: v1 over [10,20], v2 over [30,40]; shard 1: v1 over
     [50,60].  A snapshot over [25,70] observing (v2, v1) is fine —
     both values coexist from 50 (shard 1's v1 born) while shard 0's
     v2 is still current.  Observing (v1, v1) over the same interval
     is {e per-shard} regular for both shards (v1 of shard 0 is the
     last completed write at invocation; v1 of shard 1 is concurrent)
     yet torn: shard 0's v1 died at 40 (v2's return), before shard
     1's v1 was born at 50 — exactly the tear only the window
     intersection can see. *)
  let writes =
    [|
      History.of_events
        [
          w ~thread:0 ~seq:1 ~invoked:10 ~returned:20;
          w ~thread:0 ~seq:2 ~invoked:30 ~returned:40;
        ];
      History.of_events [ w ~thread:1 ~seq:1 ~invoked:50 ~returned:60 ];
    |]
  in
  let ok_snap =
    { Checker.sthread = 2; invoked = 25; returned = 70; observed = [| 2; 1 |]; sepoch = 0 }
  in
  (match Checker.check_fabric ~writes ~snapshots:[ ok_snap ] () with
  | Ok r ->
    Alcotest.(check int) "shards" 2 r.Checker.fshards;
    Alcotest.(check int) "snapshots" 1 r.Checker.snapshots_checked
  | Error v ->
    Alcotest.failf "coexisting vector rejected: %a" Checker.pp_fabric_violation v);
  let torn_snap =
    { Checker.sthread = 2; invoked = 25; returned = 70; observed = [| 1; 1 |]; sepoch = 0 }
  in
  match Checker.check_fabric ~writes ~snapshots:[ torn_snap ] () with
  | Ok _ -> Alcotest.fail "torn vector accepted"
  | Error (Checker.Torn_snapshot { fresh_shard; stale_shard; earliest; latest; _ })
    ->
    Alcotest.(check int) "stale shard" 0 stale_shard;
    Alcotest.(check int) "fresh shard" 1 fresh_shard;
    Alcotest.(check bool) "empty window" true (earliest > latest)
  | Error v ->
    Alcotest.failf "wrong conviction: %a" Checker.pp_fabric_violation v

(* {2 Reign-certified snapshots (ISSUE 9)} *)

let test_certified_epochs () =
  let fab = mk () in
  let sc = F.scanner fab 0 in
  Alcotest.(check bool) "no reign attached on a fresh fabric" false
    (F.reign_attached fab);
  (match F.snapshot_certified sc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "certification without a config epoch must refuse");
  Alcotest.(check int) "plain snapshots carry epoch 0" 0
    (F.snap_epoch (F.snapshot sc));
  let config = Arc_mem.Real_mem.atomic_contended 1 in
  F.attach_reign fab ~config;
  Alcotest.(check bool) "attached" true (F.reign_attached fab);
  let w0 = F.writer fab 0 in
  let src = Array.make 8 11 in
  F.write w0 ~shard:0 ~src ~len:8;
  (match F.snapshot_certified sc with
  | Ok snap ->
      Alcotest.(check int) "certified under the opening epoch" 1
        (F.snap_epoch snap);
      Alcotest.(check int) "contents are the fabric's" 11 (F.shard_word snap 0 0)
  | Error _ -> Alcotest.fail "no election is running — certification must hold");
  (* A completed handoff moves the epoch; the next certification opens
     under the new reign. *)
  Arc_mem.Real_mem.store config 7;
  match F.snapshot_certified sc with
  | Ok snap ->
      Alcotest.(check int) "re-certified under the moved epoch" 7
        (F.snap_epoch snap)
  | Error _ -> Alcotest.fail "a quiescent epoch must certify"

(* Certification under real interleavings, deterministically: the same
   fabric on the simulated substrate, driven by seeded vsched
   schedules.  A bumper fiber plays the role of completing handoffs. *)
module Rs = Arc_core.Arc.Make (Arc_vsched.Sim_mem)
module Fs = Arc_fabric.Fabric.Make (Rs)
module Ps = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched

let certified_sim ?strategy ~seed ~bumping ~max_retries ~steps () =
  let shards = 4 and size = 16 and writers = 2 and scanners = 2 in
  let init = Array.make size 0 in
  Ps.stamp init ~seq:0 ~len:size;
  let fab = Fs.create ~shards ~writers ~readers:scanners ~capacity:size ~init in
  let config = Arc_vsched.Sim_mem.atomic_contended 1 in
  Fs.attach_reign ?max_retries fab ~config;
  let oks = ref [] and errs = ref [] in
  let writer wid () =
    let w = Fs.writer fab wid in
    let src = Array.make size 0 in
    let seqs = Array.make shards 0 in
    while Sched.now () < steps do
      for s = 0 to shards - 1 do
        if s mod writers = wid then begin
          seqs.(s) <- seqs.(s) + 1;
          Ps.stamp src ~seq:seqs.(s) ~len:size;
          Fs.write w ~shard:s ~src ~len:size
        end
      done;
      Sched.cede ()
    done
  in
  let scanner sid () =
    let sc = Fs.scanner fab sid in
    while Sched.now () < steps do
      (match Fs.snapshot_certified sc with
      | Ok snap -> oks := Fs.snap_epoch snap :: !oks
      | Error rc -> errs := rc :: !errs);
      Sched.cede ()
    done
  in
  (* [bumping] plays the elected successors: a handoff completing every
     few scheduler quanta for the whole run. *)
  let bumper () =
    while bumping && Sched.now () < steps do
      ignore (Arc_vsched.Sim_mem.fetch_and_add config 1);
      Sched.cede ()
    done
  in
  let strategy =
    match strategy with Some s -> s | None -> Strategy.random ~seed
  in
  ignore
    (Sched.run ~strategy
       [| writer 0; writer 1; scanner 0; scanner 1; bumper |]);
  (List.rev !oks, List.rev !errs, Fs.snapshots_borrowed fab)

let test_certified_sim_static_config () =
  (* No handoffs: every snapshot must certify under epoch 1 — including
     the ones served from a writer's helping deposit, which is exactly
     the epoch-matched borrowing claim (a deposit is only borrowed when
     it was taken under the scan's opening epoch). *)
  let borrowed = ref 0 in
  for seed = 1 to 6 do
    List.iter
      (fun (strategy_name, strategy) ->
        let oks, errs, b =
          certified_sim ~strategy ~seed ~bumping:false ~max_retries:None
            ~steps:20_000 ()
        in
        Alcotest.(check int)
          (Printf.sprintf "%s(seed=%d): no typed verdicts with a quiescent epoch"
             strategy_name seed)
          0 (List.length errs);
        Alcotest.(check bool)
          (Printf.sprintf "%s(seed=%d): snapshots completed" strategy_name seed)
          true (oks <> []);
        List.iter
          (fun e ->
            if e <> 1 then
              Alcotest.failf "%s(seed=%d): snapshot certified under epoch %d, not 1"
                strategy_name seed e)
          oks;
        borrowed := !borrowed + b)
      [
        ("random", Strategy.random ~seed);
        ("burst", Strategy.random_burst ~seed ~max_burst:60);
        ( "steal",
          Strategy.steal ~seed
            ~base:(Strategy.random ~seed:(seed + 1))
            ~probability:0.01 ~min_pause:50 ~max_pause:400 );
      ]
  done;
  Alcotest.(check bool) "borrowed regime exercised under certification" true
    (!borrowed > 0)

let test_certified_sim_reign_changed () =
  (* With handoffs completing mid-scan and a zero retry budget, the
     typed verdict must actually be reachable.  A verdict names either
     a genuinely moved epoch ([r_now > r_opened]) or a starved final
     round ([r_now = r_opened]: the dirty-pass cap hit while
     epoch-matched borrowing rejected every deposit); the epoch word is
     monotone, so [r_now < r_opened] is always a bug. *)
  let changed = ref 0 and moved = ref 0 in
  for seed = 1 to 20 do
    let oks, errs, _ =
      certified_sim ~seed ~bumping:true ~max_retries:(Some 0) ~steps:6_000 ()
    in
    List.iter
      (fun (rc : Arc_fabric.Fabric.reign_change) ->
        incr changed;
        if rc.r_now > rc.r_opened then incr moved;
        if rc.r_now < rc.r_opened then
          Alcotest.failf
            "seed %d: verdict names epochs %d -> %d (epoch moved backwards)"
            seed rc.r_opened rc.r_now)
      errs;
    (* A certified epoch is the opening load's value: ≥ the initial 1,
       and — since the certifying re-load matched — the snapshot's
       whole collect ran inside that reign. *)
    List.iter
      (fun e ->
        if e < 1 then
          Alcotest.failf "seed %d: certified epoch %d below initial" seed e)
      oks
  done;
  Alcotest.(check bool) "Reign_changed reachable across the seed sweep" true
    (!changed > 0);
  Alcotest.(check bool) "moved-epoch verdicts witnessed" true (!moved > 0)

let test_plain_snapshots_linearizable_under_churn () =
  (* Regression: a writer whose certified helping scan hits
     Reign_changed must still overwrite its deposit cell before
     publishing (it falls back to an uncertified helping snapshot).
     If it published without depositing, a plain scanner counting its
     shard modified-twice could adopt a deposit frozen {e before} the
     scan's window — a non-linearizable vector the checker's per-shard
     projection convicts.  Zero retry budget plus a bumper fiber keeps
     elections churning so helping certification fails often. *)
  (* One shard per writer: consecutive writes land on the same shard,
     so scans observe modified-twice (and borrow) often. *)
  let shards = 2 and size = 8 and writers = 2 and scanners = 2 in
  let steps = 20_000 in
  let borrowed = ref 0 in
  let churn_one ~name ~strategy ~seed =
    let init = Array.make size 0 in
    Ps.stamp init ~seq:0 ~len:size;
    let fab = Fs.create ~shards ~writers ~readers:scanners ~capacity:size ~init in
    let config = Arc_vsched.Sim_mem.atomic_contended 1 in
    Fs.attach_reign ~max_retries:0 fab ~config;
    let events = Array.init shards (fun _ -> ref []) in
    let obs = ref [] in
    let writer wid () =
      let w = Fs.writer fab wid in
      let src = Array.make size 0 in
      let seqs = Array.make shards 0 in
      while Sched.now () < steps do
        for s = 0 to shards - 1 do
          if s mod writers = wid then begin
            seqs.(s) <- seqs.(s) + 1;
            Ps.stamp src ~seq:seqs.(s) ~len:size;
            (* Churning half: a handoff on some other shard completes
               alongside every write, so the peer writer's helping
               certification window almost always sees the epoch
               move. *)
            if Sched.now () > steps / 2 then
              ignore (Arc_vsched.Sim_mem.fetch_and_add config 1);
            let invoked = Sched.now () in
            Fs.write w ~shard:s ~src ~len:size;
            let returned = Sched.now () in
            events.(s) :=
              History.event History.Write ~thread:wid ~seq:seqs.(s) ~invoked
                ~returned
              :: !(events.(s))
          end
        done;
        Sched.cede ()
      done
    in
    let scanner sid () =
      let sc = Fs.scanner fab sid in
      let scratch = Array.make size 0 in
      while Sched.now () < steps do
        let invoked = Sched.now () in
        let snap = Fs.snapshot sc in
        let returned = Sched.now () in
        let observed =
          Array.init shards (fun s ->
              let len = Fs.shard_copy snap s ~dst:scratch in
              match Ps.validate_words scratch ~len with
              | Ok seq -> seq
              | Error e -> Alcotest.failf "seed %d: torn shard %d: %s" seed s e)
        in
        obs :=
          {
            Checker.sthread = writers + sid;
            invoked;
            returned;
            observed;
            sepoch = 0 (* plain snapshots carry no reign claim *);
          }
          :: !obs;
        Sched.cede ()
      done
    in
    (* Quiescent first half (helping certifies, deposit cells fill),
       churning second half (zero budget makes helping certification
       fail, so only the fallback deposit keeps the cells fresh). *)
    let bumper () =
      while Sched.now () < steps do
        if Sched.now () > steps / 2 then
          (* Every access is a scheduling point, so back-to-back adds
             land inside nearly every certification window: helping
             scans fail their (zero) budget for the whole half. *)
          ignore (Arc_vsched.Sim_mem.fetch_and_add config 1)
        else Sched.cede ()
      done
    in
    ignore
      (Sched.run ~strategy
         [| writer 0; writer 1; scanner 0; scanner 1; bumper |]);
    let writes = Array.map (fun l -> History.of_events !l) events in
    (match Checker.check_fabric ~writes ~snapshots:(List.rev !obs) () with
    | Ok _ -> ()
    | Error v ->
        Alcotest.failf "%s(seed=%d): plain snapshot under reign churn: %a" name
          seed Checker.pp_fabric_violation v);
    borrowed := !borrowed + Fs.snapshots_borrowed fab
  in
  for seed = 1 to 8 do
    churn_one ~name:"random" ~strategy:(Strategy.random ~seed) ~seed;
    churn_one ~name:"burst"
      ~strategy:(Strategy.random_burst ~seed ~max_burst:60)
      ~seed
  done;
  Alcotest.(check bool) "borrowed regime exercised under churn" true
    (!borrowed > 0)

let test_checker_cross_reign () =
  (* Shard 1's seq 2 was published by reign 3.  A snapshot observing it
     certified under epoch 2 is per-shard regular AND window-consistent
     — only the reign pass can convict it; the same vector certified
     under epoch 3 must be accepted, and a plain (epoch-0) snapshot
     skips the pass entirely. *)
  let writes =
    [|
      History.of_events [ w ~thread:0 ~seq:1 ~invoked:10 ~returned:20 ];
      History.of_events
        [
          w ~thread:1 ~seq:1 ~invoked:10 ~returned:20;
          w ~thread:1 ~seq:2 ~invoked:30 ~returned:40;
        ];
    |]
  in
  let reigns =
    [
      { Checker.rshard = 0; first_seq = 1; config = 2 };
      { Checker.rshard = 1; first_seq = 1; config = 2 };
      { Checker.rshard = 1; first_seq = 2; config = 3 };
    ]
  in
  let snap sepoch =
    { Checker.sthread = 9; invoked = 35; returned = 50; observed = [| 1; 2 |]; sepoch }
  in
  (match Checker.check_fabric ~reigns ~writes ~snapshots:[ snap 2 ] () with
  | Error (Checker.Cross_reign { shard; config; _ }) ->
      Alcotest.(check int) "convicted shard" 1 shard;
      Alcotest.(check int) "the value's reign" 3 config
  | Error v -> Alcotest.failf "wrong conviction: %a" Checker.pp_fabric_violation v
  | Ok _ -> Alcotest.fail "cross-reign splice accepted");
  (match Checker.check_fabric ~reigns ~writes ~snapshots:[ snap 3 ] () with
  | Ok _ -> ()
  | Error v ->
      Alcotest.failf "epoch-3 certification wrongly convicted: %a"
        Checker.pp_fabric_violation v);
  (match Checker.check_fabric ~reigns ~writes ~snapshots:[ snap 0 ] () with
  | Ok _ -> ()
  | Error v ->
      Alcotest.failf "plain snapshot must skip the reign pass: %a"
        Checker.pp_fabric_violation v);
  (* Unclaimed values default to reign 0 and can never convict — the
     dimension is opt-in per shard value, not a new obligation on every
     existing harness. *)
  match Checker.check_fabric ~writes ~snapshots:[ snap 2 ] () with
  | Ok _ -> ()
  | Error v ->
      Alcotest.failf "unclaimed values wrongly convicted: %a"
        Checker.pp_fabric_violation v

let test_checker_shard_projection () =
  (* A snapshot observing a seq that was never written on that shard
     must fall out of the per-shard projection as a violation. *)
  let writes =
    [| History.of_events [ w ~thread:0 ~seq:1 ~invoked:10 ~returned:20 ] |]
  in
  let ghost =
    { Checker.sthread = 1; invoked = 30; returned = 40; observed = [| 5 |]; sepoch = 0 }
  in
  match Checker.check_fabric ~writes ~snapshots:[ ghost ] () with
  | Ok _ -> Alcotest.fail "ghost value accepted"
  | Error (Checker.Shard_violation { shard; _ }) ->
    Alcotest.(check int) "shard" 0 shard
  | Error v -> Alcotest.failf "wrong conviction: %a" Checker.pp_fabric_violation v

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "shard ownership" `Quick test_ownership;
    Alcotest.test_case "snapshot contents" `Quick test_snapshot_contents;
    Alcotest.test_case "unvalidated single-threaded" `Quick
      test_unvalidated_single_threaded;
    Alcotest.test_case "capability discovery" `Quick test_discovery;
    Alcotest.test_case "adversarial campaign" `Slow test_atomic_campaign;
    Alcotest.test_case "starved writers stay wait-free" `Quick
      test_starved_writers_all_direct;
    Alcotest.test_case "torn negative control convicted" `Slow
      test_torn_control_convicted;
    Alcotest.test_case "checker: handcrafted windows" `Quick
      test_checker_handcrafted;
    Alcotest.test_case "checker: shard projection" `Quick
      test_checker_shard_projection;
    Alcotest.test_case "certified epochs (heap)" `Quick test_certified_epochs;
    Alcotest.test_case "certified under static config (vsched)" `Slow
      test_certified_sim_static_config;
    Alcotest.test_case "Reign_changed reachable (vsched)" `Slow
      test_certified_sim_reign_changed;
    Alcotest.test_case "plain snapshots linearizable under churn (vsched)" `Slow
      test_plain_snapshots_linearizable_under_churn;
    Alcotest.test_case "checker: cross-reign conviction" `Quick
      test_checker_cross_reign;
  ]

(* Chaos soak for the supervised register service (ISSUE 3).

   Composes the whole resilience stack — {!Fenced} epoch fencing,
   {!Supervisor} heartbeat failover, {!Session} deadline/backoff/
   breaker reads — over a fault-injecting simulated register
   ([Arc] over {!Arc_fault.Campaign.Mem}) and soaks it through many
   seeded randomized scenarios:

   - fiber 0 is the incumbent writer: it may crash at a random access,
     crash mid-copy (torn slot), or turn {e zombie} — pause between
     writes for several leases (a GC/OS pause), get deposed, and have
     its post-fence write rejected by [Fenced_out];
   - fiber 1 is the standby: it polls the supervisor, promotes itself
     once the lease expires, learns the last published value through a
     spare reader handle, and continues the write sequence (it can be
     stalled to model a supervisor outage);
   - fibers 2.. are deadline-aware reader sessions; the read path
     additionally suffers {e injected transient saturation} (a seeded
     probability of {!Register_intf.Saturated} per live read, standing
     in for the capacity/revocation guards that are — by design —
     nearly unreachable in healthy runs), which drives the retry,
     breaker and stale-serve machinery at scale.

   Every run is judged: no torn snapshots, crash-aware atomicity with
   the promotion time as the fence ({!Checker.check_crash} [?fence]),
   every degraded serve within the declared staleness bound
   ({!Checker.check_bounded_staleness}), liveness (no fiber left
   unfinished, no surviving reader starved) and the ARC presence-ledger
   audit on the quiescent final state.  A failing run prints nothing
   by itself but carries its seed; {!replay_command} renders the exact
   command line that reproduces it.

   Fault soundness.  Mid-write writer stalls are drawn strictly below
   half the lease, so a live writer is never deposed while it sits
   between the epoch-guard load and the publish exchange — the
   residual window of {!Fenced} — matching the lease discipline
   documented in DESIGN.md §6c.  Zombie pauses, which do exceed the
   lease, are taken {e between} writes, where the entry epoch check
   fences the returnee before it touches the register.  The
   {!unfenced_control} shows the same handoff without fencing is
   convicted by the checker — the negative control that proves the
   fence is load-bearing. *)

module Splitmix = Arc_util.Splitmix
module Outcomes = Arc_util.Stats.Outcomes
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module History = Arc_trace.History
module Checker = Arc_trace.Checker
module Fault_plan = Arc_fault.Fault_plan
module Mem = Arc_fault.Campaign.Mem
module R = Arc_core.Arc.Make (Mem)
module Sup = Supervisor.Make (R)
module F = Sup.Fenced_reg
module P = Arc_workload.Payload.Make (Mem)

(* Injected transient read failures: each live read fails with the
   run's probability, drawn from one seeded stream (deterministic
   because the schedule itself is).  Wrapping the register — rather
   than patching the session — keeps the session code honest: it
   retries exactly what a real register would throw at it. *)
module Flaky = struct
  include R

  let rate = ref 0.
  let rng = ref (Splitmix.of_int 0)

  let set ~seed ~rate:r =
    rate := r;
    rng := Splitmix.of_int seed

  let read_with rd ~f =
    if !rate > 0. && Splitmix.bernoulli !rng !rate then
      raise
        (Arc_core.Register_intf.Saturated "injected transient saturation");
    R.read_with rd ~f
end

module S = Session.Make (Flaky)

type cfg = {
  runs : int;
  seed : int;
  readers : int;
  size_words : int;
  max_steps : int;  (** per run; fibers self-terminate past this *)
  lease : int;  (** writer lease, in simulated steps *)
  deadline : int;  (** per-read budget, in simulated steps *)
  max_stale : int;  (** oldest snapshot a session may serve, in steps *)
  max_crash_readers : int;
}

let default =
  {
    runs = 50;
    seed = 2025;
    readers = 3;
    size_words = 16;
    max_steps = 30_000;
    lease = 2_000;
    deadline = 1_500;
    max_stale = 6_000;
    max_crash_readers = 2;
  }

(* The declared bounded-staleness contract, in writes.  A serve at time
   [t] returns a snapshot captured by a live read invoked at
   [t - max_stale - D] at the earliest, where [D] bounds that read's
   own duration (~3 passes over the snapshot).  Every write costs at
   least [size_words] simulated steps (its content copy alone), so the
   writes that completed in the window number at most
   [(max_stale + D) / size_words] plus small slack for the in-flight
   write at each end — rounded up into a margin of 10. *)
let staleness_bound cfg = (cfg.max_stale / cfg.size_words) + 10

(* {1 Scenarios} *)

type fate =
  | Healthy
  | Crash  (** writer crashes at a random access *)
  | Tear  (** writer crashes mid-copy, tearing the slot *)
  | Zombie of { after : int; pause : int }
      (** writer pauses [pause] steps after its [after]-th write *)

let fate_name = function
  | Healthy -> "healthy"
  | Crash -> "crash"
  | Tear -> "tear"
  | Zombie _ -> "zombie"

type scenario = {
  fate : fate;
  plan : Fault_plan.t;
  flaky_rate : float;
}

let scenario_of rng cfg =
  let plan = ref Fault_plan.empty in
  let fate =
    let u = Splitmix.float rng in
    if u < 0.20 then Healthy
    else if u < 0.40 then begin
      plan := Fault_plan.crash ~fiber:0 ~at_access:(1 + Splitmix.int rng 600) !plan;
      Crash
    end
    else if u < 0.55 then begin
      plan :=
        Fault_plan.tear ~fiber:0
          ~at_copy:(1 + Splitmix.int rng 8)
          ~at_word:(Splitmix.int rng cfg.size_words)
          ~silent:false !plan;
      Tear
    end
    else
      Zombie
        {
          after = 1 + Splitmix.int rng 6;
          pause = (2 * cfg.lease) + Splitmix.int rng cfg.lease;
        }
  in
  (* At most one mid-write writer stall, strictly below lease/2: a
     stalled-but-live writer must never be deposed mid-write (see the
     module comment on fault soundness). *)
  if Splitmix.bernoulli rng 0.4 then
    plan :=
      Fault_plan.stall ~fiber:0
        ~at_access:(1 + Splitmix.int rng 400)
        ~steps:(100 + Splitmix.int rng ((cfg.lease / 2) - 150))
        !plan;
  (* Standby stalls model a supervisor outage: failover is delayed and
     readers ride through on degraded serves. *)
  if Splitmix.bernoulli rng 0.3 then
    plan :=
      Fault_plan.stall ~fiber:1
        ~at_access:(1 + Splitmix.int rng 50)
        ~steps:(cfg.lease + Splitmix.int rng (2 * cfg.lease))
        !plan;
  (* Crash-stop readers (crash mid-read, holding their slot pins). *)
  let ncrash =
    if cfg.max_crash_readers = 0 then 0
    else Splitmix.int rng (min cfg.max_crash_readers cfg.readers + 1)
  in
  let victims = Array.init cfg.readers (fun i -> i + 2) in
  Splitmix.shuffle rng victims;
  for v = 0 to ncrash - 1 do
    plan :=
      Fault_plan.crash ~fiber:victims.(v)
        ~at_access:(1 + Splitmix.int rng 300)
        !plan
  done;
  if cfg.readers > 0 && Splitmix.bernoulli rng 0.5 then
    plan :=
      Fault_plan.stall
        ~fiber:(2 + Splitmix.int rng cfg.readers)
        ~at_access:(1 + Splitmix.int rng 200)
        ~steps:(100 + Splitmix.int rng (2 * cfg.lease))
        !plan;
  let flaky_rate =
    (* A heavy-saturation tail (rates ~0.5-0.7) makes sessions trip
       their breaker before any snapshot exists, exercising the
       [Exhausted] outcome; the common tail drives retries and stale
       serves. *)
    if Splitmix.bernoulli rng 0.15 then 0.5 +. (0.2 *. Splitmix.float rng)
    else if Splitmix.bernoulli rng 0.6 then 0.05 +. (0.25 *. Splitmix.float rng)
    else 0.
  in
  { fate; plan = !plan; flaky_rate }

(* {1 One run} *)

type run_report = {
  seed : int;
  fate : string;
  flaky_rate : float;
  plan : Fault_plan.t;
  writes : int;  (** incumbent + standby, as recorded *)
  standby_writes : int;
  outcomes : Outcomes.t;  (** merged across sessions *)
  serves_checked : int;  (** degraded serves checked against the bound *)
  torn : int;
  failovers : int;
  quarantined : int;  (** slots retired by crash recovery at promote *)
  fenced_writes : int;
  writer_crashed : bool;
  reader_crashes : int;
  stalls : int;
  tears : int;
  crash_outcome : Checker.crash_outcome option;
  violations : string list;
}

let check_cfg cfg =
  if cfg.readers < 1 then
    invalid_arg (Printf.sprintf "Soak: readers = %d (need >= 1)" cfg.readers);
  if cfg.size_words < 1 then
    invalid_arg (Printf.sprintf "Soak: size_words = %d (need >= 1)" cfg.size_words);
  if cfg.lease < 400 then
    invalid_arg (Printf.sprintf "Soak: lease = %d (need >= 400)" cfg.lease);
  if cfg.deadline < 1 then
    invalid_arg (Printf.sprintf "Soak: deadline = %d (need >= 1)" cfg.deadline);
  if cfg.max_stale < 0 then
    invalid_arg (Printf.sprintf "Soak: max_stale = %d (need >= 0)" cfg.max_stale)

let run_one ~seed (cfg : cfg) : run_report =
  check_cfg cfg;
  let rng = Splitmix.of_int seed in
  let scen = scenario_of rng cfg in
  let strategy = Strategy.random ~seed:(seed + 1) in
  Flaky.set ~seed:(seed + 2) ~rate:scen.flaky_rate;
  let size = cfg.size_words in
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  (* Identities: [0, readers) for the sessions, [readers] the standby's
     spare; two more stay unclaimed as over-provisioned slots — a
     writer crash between its publish (W2) and freeze (W3) leaks the
     superseded slot's accounting, and the spares keep Lemma 4.1's
     free-slot guarantee strict even then (both unclaimed units pin
     the initial slot together, so each spare is a net extra slot). *)
  let freg = F.create ~readers:(cfg.readers + 3) ~capacity:size ~init in
  let sup = Sup.create ~now:Sched.now ~lease:cfg.lease freg in
  let threads = cfg.readers + 2 in
  let recorder = History.Recorder.create ~threads ~capacity:20_000 in
  let crashed = Array.make threads false in
  let ops = Array.make threads 0 in
  let torn = ref 0 in
  let pending = ref None in
  let stale_serves = ref [] in
  let sessions = Array.make cfg.readers None in

  let writer_a () =
    try
      let w = Sup.acquire sup in
      let src = Array.make size 0 in
      let seq = ref 0 in
      try
        while Sched.now () < cfg.max_steps do
          (match scen.fate with
          | Zombie { after; pause } when !seq = after -> Sched.sleep pause
          | _ -> ());
          incr seq;
          P.stamp src ~seq:!seq ~len:size;
          let invoked = Sched.now () in
          pending := Some (!seq, invoked);
          F.write w ~src ~len:size;
          History.Recorder.record recorder ~thread:0 History.Write ~seq:!seq
            ~invoked ~returned:(Sched.now ());
          pending := None;
          ops.(0) <- ops.(0) + 1;
          Sup.heartbeat sup w;
          Sched.cede ()
        done
      with Fenced.Fenced_out _ ->
        (* Deposed: the aborted attempt published nothing. *)
        pending := None
    with Fault_plan.Crashed -> crashed.(0) <- true
  in

  let standby_b () =
    let continue_writing w start_seq =
      let src = Array.make size 0 in
      let seq = ref start_seq in
      try
        while Sched.now () < cfg.max_steps do
          incr seq;
          P.stamp src ~seq:!seq ~len:size;
          let invoked = Sched.now () in
          F.write w ~src ~len:size;
          History.Recorder.record recorder ~thread:1 History.Write ~seq:!seq
            ~invoked ~returned:(Sched.now ());
          ops.(1) <- ops.(1) + 1;
          Sup.heartbeat sup w;
          Sched.cede ()
        done
      with Fenced.Fenced_out _ -> ()
    in
    let rec monitor () =
      if Sched.now () >= cfg.max_steps then ()
      else if Sup.expired sup then begin
        match Sup.promote sup with
        | Sup.Election.Won { writer = w; _ } ->
          (* Learn where the write sequence stands through the spare
             reader handle; a pending write that published before the
             fence is picked up here and continued from. *)
          let rd = F.reader freg cfg.readers in
          let last = R.read_with rd ~f:(fun buf _len -> P.decode_seq buf) in
          continue_writing w last
        | Sup.Election.Lost _ ->
          (* Another candidate won this suspicion; keep monitoring. *)
          Sched.cede ();
          monitor ()
      end
      else begin
        Sched.cede ();
        monitor ()
      end
    in
    monitor ()
  in

  let reader_body id () =
    try
      let rd = F.reader freg id in
      let session =
        S.create
          ~backoff:
            (Backoff.create ~base:8
               ~cap:(max 8 (cfg.deadline / 2))
               ~seed:(seed + 100 + id) ())
          ~breaker:
            (Breaker.create ~failure_threshold:3
               ~cooldown:(max 16 (cfg.lease / 2))
               ~now:Sched.now ())
          ~max_stale:cfg.max_stale ~now:Sched.now ~sleep:Sched.sleep
          ~capacity:size rd
      in
      sessions.(id) <- Some session;
      let f buf len =
        match P.validate buf ~len with
        | Ok s -> s
        | Error _ ->
          incr torn;
          P.decode_seq buf
      in
      while Sched.now () < cfg.max_steps do
        let invoked = Sched.now () in
        let deadline = invoked + cfg.deadline in
        (match S.read_with ~deadline session ~f with
        | S.Fresh s ->
          History.Recorder.record recorder ~thread:(id + 2) History.Read ~seq:s
            ~invoked ~returned:(Sched.now ())
        | S.Stale { value = s; age = _ } ->
          stale_serves :=
            { Checker.thread = id + 2; seq = s; at = Sched.now () }
            :: !stale_serves
        | S.Exhausted _ -> ());
        ops.(id + 2) <- ops.(id + 2) + 1;
        Sched.cede ()
      done
    with Fault_plan.Crashed -> crashed.(id + 2) <- true
  in

  let fibers =
    Array.init threads (fun i ->
        if i = 0 then writer_a
        else if i = 1 then standby_b
        else reader_body (i - 2))
  in
  Mem.install scen.plan;
  let backstop = (cfg.max_steps * 3) + 100_000 in
  let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
  let fstats = Mem.drain () in
  Flaky.set ~seed:0 ~rate:0.;

  (* Judge. *)
  let outcomes = Outcomes.create () in
  Array.iter
    (function
      | Some s ->
        (* Sessions count in per-domain Obs cells; after the vsched run
           every fiber is quiescent, so the snapshot is exact. *)
        Outcomes.merge_into ~src:(S.Outcomes.snapshot (S.outcomes s)) ~dst:outcomes
      | None -> ())
    sessions;
  let history = History.Recorder.history recorder in
  let pending_write = if crashed.(0) then !pending else None in
  let fence = Sup.last_fence sup in
  let check = Checker.check_crash ?pending_write ?fence history in
  let serves = List.rev !stale_serves in
  let stale_check =
    Checker.check_bounded_staleness history ~bound:(staleness_bound cfg) serves
  in
  let reader_crashes =
    let n = ref 0 in
    Array.iteri (fun i c -> if i >= 2 && c then incr n) crashed;
    !n
  in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if !torn > 0 then fail "%d torn snapshots" !torn;
  if History.Recorder.dropped recorder > 0 then
    fail "recorder overflow (%d events dropped)"
      (History.Recorder.dropped recorder);
  if sched_outcome.Sched.unfinished > 0 then
    fail "%d fibers never finished (hang/livelock inside the backstop)"
      sched_outcome.Sched.unfinished;
  Array.iteri
    (fun i o ->
      if i >= 2 && (not crashed.(i)) && o = 0 then
        fail "surviving reader %d completed no operation" (i - 2))
    ops;
  (match check with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_violation v));
  (match stale_check with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_staleness_violation v));
  if not crashed.(0) then begin
    (* Quiescent ARC ledger audit (skipped when the incumbent crashed
       mid-operation: its half-done slot legitimately unbalances the
       ledger; a fence-aborted write does not). *)
    let reg = F.inner freg in
    let slack = R.Debug.presence_slack reg in
    if slack < 0 || slack > reader_crashes then
      fail "presence-ledger slack %d outside [0, %d crashed readers]" slack
        reader_crashes;
    if not (R.Debug.free_slot_exists reg) then
      fail "no free slot among the N+2 (Lemma 4.1 violated)"
  end;
  {
    seed;
    fate = fate_name scen.fate;
    flaky_rate = scen.flaky_rate;
    plan = scen.plan;
    writes = ops.(0) + ops.(1);
    standby_writes = ops.(1);
    outcomes;
    serves_checked = (match stale_check with Ok n -> n | Error _ -> 0);
    torn = !torn;
    failovers = Sup.failovers sup;
    quarantined = Sup.quarantined sup;
    fenced_writes = F.fenced_writes freg;
    writer_crashed = crashed.(0);
    reader_crashes;
    stalls = fstats.Arc_fault.Fault_mem.stalls;
    tears = List.length fstats.Arc_fault.Fault_mem.tears;
    crash_outcome = (match check with Ok (_, o) -> Some o | Error _ -> None);
    violations = List.rev !violations;
  }

(* {1 The soak loop} *)

type outcome = {
  runs : int;
  writes : int;
  reads_fresh : int;
  stale_serves : int;
  exhausted : int;
  retries : int;
  injected_errors : int;
  failovers : int;
  handoffs : int;  (** runs where a promoted standby went on to write *)
  quarantined : int;  (** slots retired by successor crash recovery *)
  fenced_writes : int;
  writer_crashes : int;
  reader_crashes : int;
  zombies : int;
  stalls : int;
  tears : int;
  vanished : int;
  took_effect : int;
  violations : (int * string) list;  (** (run seed, description) *)
}

let clean o = o.violations = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%d runs: %d writes, %d fresh reads, %d stale serves, %d exhausted, \
     %d retries (%d injected errors)@,\
     %d failovers (%d completed handoffs, %d slots quarantined), %d fenced \
     writes; %d writer crashes, %d zombies, %d reader crashes, %d stalls, \
     %d tears@,\
     pending writes: %d vanished, %d took effect — %s@]"
    o.runs o.writes o.reads_fresh o.stale_serves o.exhausted o.retries
    o.injected_errors o.failovers o.handoffs o.quarantined o.fenced_writes
    o.writer_crashes o.zombies o.reader_crashes o.stalls o.tears o.vanished
    o.took_effect
    (if o.violations = [] then "CLEAN"
     else Printf.sprintf "%d VIOLATIONS" (List.length o.violations))

(* Aggregate counters as exposition metrics for the --metrics flag of
   the soak binary. *)
let metrics (o : outcome) =
  let open Arc_obs.Obs in
  [
    counter "soak_runs_total" ~help:"Completed soak runs" o.runs;
    counter "soak_writes_total" ~help:"Writes across all runs" o.writes;
    counter "soak_reads_fresh_total" ~help:"Fresh session reads" o.reads_fresh;
    counter "soak_stale_serves_total" ~help:"Degraded stale serves"
      o.stale_serves;
    counter "soak_exhausted_total" ~help:"Exhausted session reads" o.exhausted;
    counter "soak_retries_total" ~help:"Session retry attempts" o.retries;
    counter "soak_injected_errors_total" ~help:"Injected transient errors"
      o.injected_errors;
    counter "soak_failovers_total" ~help:"Supervisor promotions" o.failovers;
    counter "soak_handoffs_total" ~help:"Promotions followed by standby writes"
      o.handoffs;
    counter "soak_quarantined_slots_total"
      ~help:"Slots retired by successor crash recovery" o.quarantined;
    counter "soak_fenced_writes_total" ~help:"Writes through the epoch fence"
      o.fenced_writes;
    counter "soak_writer_crashes_total" ~help:"Injected writer crashes"
      o.writer_crashes;
    counter "soak_reader_crashes_total" ~help:"Injected reader crashes"
      o.reader_crashes;
    counter "soak_zombie_runs_total" ~help:"Runs with a zombie incumbent"
      o.zombies;
    counter "soak_tears_total"
      ~help:
        "Torn snapshots observed in fault windows (injected tears the \
         session layer must surface as errors, never serve)"
      o.tears;
    counter "soak_violations_total" ~help:"Checker violations (must stay 0)"
      (List.length o.violations);
  ]

let derive_seed (cfg : cfg) k = (cfg.seed * 1_000_003) + k

let replay_command ~seed cfg =
  Printf.sprintf
    "dune exec bin/soak.exe -- --replay %d --readers %d --size %d --steps %d \
     --lease %d --deadline %d --max-stale %d"
    seed cfg.readers cfg.size_words cfg.max_steps cfg.lease cfg.deadline
    cfg.max_stale

let run ?(on_run = fun (_ : run_report) -> ()) (cfg : cfg) : outcome =
  check_cfg cfg;
  let o =
    ref
      {
        runs = 0;
        writes = 0;
        reads_fresh = 0;
        stale_serves = 0;
        exhausted = 0;
        retries = 0;
        injected_errors = 0;
        failovers = 0;
        handoffs = 0;
        quarantined = 0;
        fenced_writes = 0;
        writer_crashes = 0;
        reader_crashes = 0;
        zombies = 0;
        stalls = 0;
        tears = 0;
        vanished = 0;
        took_effect = 0;
        violations = [];
      }
  in
  for k = 1 to cfg.runs do
    let seed = derive_seed cfg k in
    match run_one ~seed cfg with
    | exception e ->
      o :=
        {
          !o with
          runs = !o.runs + 1;
          violations =
            (seed, Printf.sprintf "run raised: %s" (Printexc.to_string e))
            :: !o.violations;
        }
    | r ->
      on_run r;
      let a = !o in
      o :=
        {
          runs = a.runs + 1;
          writes = a.writes + r.writes;
          reads_fresh = a.reads_fresh + Outcomes.ok_count r.outcomes;
          stale_serves = a.stale_serves + Outcomes.stale_count r.outcomes;
          exhausted = a.exhausted + Outcomes.exhausted_count r.outcomes;
          retries = a.retries + Outcomes.retry_count r.outcomes;
          injected_errors = a.injected_errors + Outcomes.error_count r.outcomes;
          failovers = a.failovers + r.failovers;
          handoffs =
            (a.handoffs + if r.failovers > 0 && r.standby_writes > 0 then 1 else 0);
          quarantined = a.quarantined + r.quarantined;
          fenced_writes = a.fenced_writes + r.fenced_writes;
          writer_crashes = (a.writer_crashes + if r.writer_crashed then 1 else 0);
          reader_crashes = a.reader_crashes + r.reader_crashes;
          zombies = (a.zombies + if r.fate = "zombie" then 1 else 0);
          stalls = a.stalls + r.stalls;
          tears = a.tears + r.tears;
          vanished =
            (a.vanished
            + match r.crash_outcome with Some Checker.Vanished -> 1 | _ -> 0);
          took_effect =
            (a.took_effect
            + match r.crash_outcome with Some Checker.Took_effect -> 1 | _ -> 0);
          violations =
            List.map (fun m -> (seed, m)) r.violations @ a.violations;
        }
  done;
  !o

(* {1 Negative control: the same handoff, unfenced}

   Both the deposed incumbent and the promoted standby write through
   the raw register — no epoch, no guard.  After the incumbent's pause
   the two writers overlap: duplicate sequence numbers (both continue
   from the same history), torn slots (both preparing the same "free"
   slot), or a broken free-slot invariant.  The run is {e convicted}
   if the checker or the integrity probes catch any of it — showing
   the fence, not luck, is what keeps the fenced soak clean. *)

let unfenced_control ~seed (cfg : cfg) : bool * string list =
  check_cfg cfg;
  Flaky.set ~seed ~rate:0.;
  let strategy = Strategy.random ~seed:(seed + 1) in
  let size = cfg.size_words in
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  let reg = R.create ~readers:(cfg.readers + 3) ~capacity:size ~init in
  let threads = cfg.readers + 2 in
  let recorder = History.Recorder.create ~threads ~capacity:20_000 in
  let torn = ref 0 in
  let anomalies = ref [] in
  let hb = ref 0 in
  let pause_after = 3 in
  let writer thread start_delay () =
    try
      (* The "failure detector" of this control is deliberately naive:
         wall-clock heartbeat age, no fencing on promotion. *)
      let rec wait () =
        if Sched.now () >= cfg.max_steps then None
        else if thread = 0 then Some 0
        else if Sched.now () - !hb > cfg.lease then begin
          let rd = R.reader reg cfg.readers in
          Some (R.read_with rd ~f:(fun buf _len -> P.decode_seq buf))
        end
        else begin
          Sched.cede ();
          wait ()
        end
      in
      match wait () with
      | None -> ()
      | Some start_seq ->
        let src = Array.make size 0 in
        let seq = ref start_seq in
        while Sched.now () < cfg.max_steps do
          if thread = 0 && !seq = start_delay then Sched.sleep (3 * cfg.lease);
          incr seq;
          P.stamp src ~seq:!seq ~len:size;
          let invoked = Sched.now () in
          R.write reg ~src ~len:size;
          History.Recorder.record recorder ~thread History.Write ~seq:!seq
            ~invoked ~returned:(Sched.now ());
          hb := Sched.now ();
          Sched.cede ()
        done
    with Failure msg -> anomalies := msg :: !anomalies
  in
  let reader_body id () =
    let rd = R.reader reg id in
    while Sched.now () < cfg.max_steps do
      let invoked = Sched.now () in
      let seq =
        R.read_with rd ~f:(fun buf len ->
            match P.validate buf ~len with
            | Ok s -> s
            | Error _ ->
              incr torn;
              P.decode_seq buf)
      in
      History.Recorder.record recorder ~thread:(id + 2) History.Read ~seq
        ~invoked ~returned:(Sched.now ());
      Sched.cede ()
    done
  in
  let fibers =
    Array.init threads (fun i ->
        if i = 0 then writer 0 pause_after
        else if i = 1 then writer 1 (-1)
        else reader_body (i - 2))
  in
  Mem.install Fault_plan.empty;
  let backstop = (cfg.max_steps * 3) + 100_000 in
  let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
  ignore (Mem.drain ());
  let reasons = ref !anomalies in
  if !torn > 0 then reasons := Printf.sprintf "%d torn snapshots" !torn :: !reasons;
  if sched_outcome.Sched.unfinished > 0 then
    reasons :=
      Printf.sprintf "%d fibers never finished" sched_outcome.Sched.unfinished
      :: !reasons;
  (match Checker.check (History.Recorder.history recorder) with
  | Ok _ -> ()
  | Error v -> reasons := Format.asprintf "%a" Checker.pp_violation v :: !reasons);
  (!reasons <> [], !reasons)

test/test_histogram.ml: Alcotest Arc_util Gen List Printf QCheck QCheck_alcotest

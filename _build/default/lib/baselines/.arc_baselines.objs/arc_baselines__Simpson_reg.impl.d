lib/baselines/simpson_reg.ml: Arc_mem Array

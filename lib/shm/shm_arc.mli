(** ARC instantiated over a {!Shm_mem} mapping, packaged as a
    first-class module, plus the bundled crash-recovery step.

    The functor application [Arc.Make ((val Shm_mem.mem m))] happens
    inside {!create}, so its result types are local to that call; the
    {!INSTANCE} packaging is what lets harness code (the kill-9
    harness, the two-process example, the benchmark) carry the
    register around as an ordinary value. *)

module type INSTANCE = sig
  module M : Arc_mem.Mem_intf.S with type atomic = int
  module R : Arc_core.Arc.S with module Mem = M

  val mapping : Shm_mem.mapping
  val reg : R.t
end

type instance = (module INSTANCE)

val create :
  ?use_hint:bool ->
  Shm_mem.mapping ->
  readers:int ->
  capacity:int ->
  init:int array ->
  instance
(** Build an ARC register inside a {b fresh} mapping and record its
    geometry in the superblock.  Creator-only (see {!Shm_mem}'s
    sharing discipline): create the instance, then fork; both
    processes use the inherited handles against the shared file.
    @raise Invalid_argument if the mapping already holds a register,
    or if the mapping cannot fit the register's footprint. *)

val recover : instance -> (Shm_mem.recovery * int, string) result
(** The full post-crash recovery bundle, run by the surviving process
    on its live instance after the writer died:

    + {!Shm_mem.recover}: checksum-scan the mapping, quarantining
      torn/corrupt buffers in the file and opening a new epoch;
    + mirror each convicted buffer into the register's free-slot
      search ([R.quarantine] — buffer ordinal = slot index);
    + [R.recover_crash]: quarantine the prefreeze-journaled slot and
      re-establish the last-slot invariant from the synchronization
      word (both live in the mapping, so the journal survives the
      crash).

    Returns the scan report and the number of slots the register
    journal quarantined (0 or 1), or [Error] if the scan convicts the
    whole mapping.  Each crash retires at most one slot — the torn
    copy and the journaled slot are the same write's target and its
    predecessor — so provision one spare reader identity per crash to
    be tolerated. *)

(** {1 Fabric packaging}

    A multi-process fabric: [shards] identical ARC registers in {b one}
    mapping, plus the reign table ({!Shm_mem.alloc_reign_table}) that
    gives each shard its own election word and writer-fence epoch and
    the whole fabric its configuration epoch.  Wrap the registers with
    {!Arc_fabric.Fabric.Make}[.of_registers] and attach the
    configuration-epoch cell for reign-certified snapshots. *)

module type FABRIC_INSTANCE = sig
  module M : Arc_mem.Mem_intf.S with type atomic = int
  module R : Arc_core.Arc.S with module Mem = M

  val mapping : Shm_mem.mapping
  val shards : int
  val regs : R.t array
end

type fabric_instance = (module FABRIC_INSTANCE)

val create_fabric :
  ?use_hint:bool ->
  Shm_mem.mapping ->
  shards:int ->
  readers:int ->
  capacity:int ->
  init:int array ->
  fabric_instance
(** Build [shards] identical registers inside a fresh mapping —
    sequentially, so shard [s]'s buffers are mapping ordinals
    [s·nslots .. (s+1)·nslots − 1] — allocate the reign table, and
    record the (per-shard) geometry.  Creator-only; create, then fork.
    @raise Invalid_argument if the mapping already holds a register or
    cannot fit the footprint. *)

val recover_shard :
  fabric_instance -> shard:int -> (Shm_mem.recovery * int, string) result
(** The {!recover} bundle scoped to one shard: {!Shm_mem.recover_shard}
    (scan only that shard's ordinals; bump the shard's reign-table
    epoch and fence), mirror its convictions into the shard's register
    (translating mapping ordinals to register slots), then that
    register's [recover_crash].  Run by the shard's elected successor
    as its campaign takeover while other shards' writers stay live. *)

(* Bounded post-mortem trace of slot-state transitions.

   Transitions are slow-path events — a slot being claimed, frozen,
   reclaimed, recovered — so the recording budget is one RMW (the
   cursor claim) plus one atomic store, nothing the §3.3 fast path
   ever executes.  Each entry is an immutable record published with a
   single [Atomic.set], so a concurrent [dump] can never observe a
   half-written entry: it sees the old record or the new one.  The
   ring keeps the most recent [capacity] events and silently overwrites
   older ones, exactly what a crash post-mortem wants. *)

type entry = { seq : int; at : int; code : int; a : int; b : int; c : int }

type t = {
  mask : int;
  cursor : int Atomic.t;
  slots : entry option Atomic.t array;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  let cap = next_pow2 capacity in
  {
    mask = cap - 1;
    cursor = Atomic.make 0;
    slots = Array.init cap (fun _ -> Atomic.make None);
  }

let capacity t = Array.length t.slots
let recorded t = Atomic.get t.cursor

let record t ?(at = 0) ~code a b c =
  let seq = Atomic.fetch_and_add t.cursor 1 in
  Atomic.set t.slots.(seq land t.mask) (Some { seq; at; code; a; b; c })

(* Oldest-first view of the surviving entries.  Taken concurrently
   with writers the dump is a best-effort sample: entries race with
   overwrites, but every record returned is internally consistent. *)
let dump t =
  let collected =
    Array.fold_left
      (fun acc slot ->
        match Atomic.get slot with None -> acc | Some e -> e :: acc)
      [] t.slots
  in
  List.sort (fun x y -> compare x.seq y.seq) collected

let clear t =
  Array.iter (fun slot -> Atomic.set slot None) t.slots;
  Atomic.set t.cursor 0

(* {1 Transition codes}

   Shared vocabulary for [Arc], [Arc_dynamic], and the resilience
   layer, so one dump interleaves events from every subsystem. *)

let code_slot_claim = 1 (* W1: find_free picked slot [a] (hint hit iff b=1) *)
let code_publish = 2 (* W2: slot [a] published over displaced slot [b] *)
let code_freeze = 3 (* W3: presence of displaced slot [a] frozen *)
let code_reclaim = 4 (* reclaim_stale evicted slot [a] (lease age [b]) *)
let code_realloc = 5 (* slot [a] buffer reallocated: [b] -> [c] words *)
let code_recover = 6 (* recover_crash: current [a], freed slots [b] *)
let code_quarantine = 7 (* slot [a] quarantined *)
let code_breaker_trip = 8 (* breaker opened after [a] failures *)
let code_promote = 9 (* supervisor promoted standby, fence at [a] *)
let code_conviction = 10 (* shm recovery convicted slot [a], reason [b] *)

let code_name = function
  | 1 -> "slot_claim"
  | 2 -> "publish"
  | 3 -> "freeze"
  | 4 -> "reclaim"
  | 5 -> "realloc"
  | 6 -> "recover"
  | 7 -> "quarantine"
  | 8 -> "breaker_trip"
  | 9 -> "promote"
  | 10 -> "conviction"
  | _ -> "unknown"

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>#%d t=%d %s a=%d b=%d c=%d@]" e.seq e.at
    (code_name e.code) e.a e.b e.c

let pp ppf t =
  let entries = dump t in
  Format.fprintf ppf "@[<v>trace ring: %d/%d entries@," (List.length entries)
    (capacity t);
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) entries;
  Format.fprintf ppf "@]"

lib/coherence/cc_mem.mli: Arc_mem Cache

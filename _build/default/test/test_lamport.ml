(* Lamport's 1977 register: correctness plus the documented weakness —
   wait-free writes, merely lock-free reads (§2 of the paper). *)

module Counting = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Intf = Arc_mem.Mem_intf
module Lp = Arc_baselines.Lamport_reg.Make (Arc_mem.Real_mem)
module Lp_cnt = Arc_baselines.Lamport_reg.Make (Counting)
module Lp_sim = Arc_baselines.Lamport_reg.Make (Arc_vsched.Sim_mem)
module P_sim = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let test_no_rmw () =
  (* Historical construction from plain reads/writes only. *)
  Counting.reset ();
  let reg = Lp_cnt.create ~readers:2 ~capacity:8 ~init:(Array.make 8 1) in
  let rd = Lp_cnt.reader reg 0 in
  Lp_cnt.write reg ~src:(Array.make 8 2) ~len:8;
  ignore (Lp_cnt.read_with rd ~f:(fun _ _ -> ()));
  check "zero RMW" 0 (Counting.counts ()).Intf.rmw

let test_sequential_no_retries () =
  let reg = Lp.create ~readers:1 ~capacity:8 ~init:(Array.make 8 0) in
  let rd = Lp.reader reg 0 in
  for _ = 1 to 20 do
    ignore (Lp.read_with rd ~f:(fun _ _ -> ()))
  done;
  check "no retries uncontended" 0 (Lp.retries rd)

let test_never_torn_under_schedules () =
  for seed = 0 to 19 do
    let size = 16 in
    let init = Array.make size 0 in
    P_sim.stamp init ~seq:0 ~len:size;
    let reg = Lp_sim.create ~readers:2 ~capacity:size ~init in
    let src = Array.make size 0 in
    let reader i () =
      let rd = Lp_sim.reader reg i in
      for _ = 1 to 8 do
        ignore
          (Lp_sim.read_with rd ~f:(fun buffer len ->
               match P_sim.validate buffer ~len with
               | Ok seq -> seq
               | Error msg -> Alcotest.failf "seed %d: torn: %s" seed msg))
      done
    in
    let writer () =
      for seq = 1 to 12 do
        P_sim.stamp src ~seq ~len:size;
        Lp_sim.write reg ~src ~len:size
      done
    in
    ignore
      (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader 0; reader 1 |])
  done

let test_reader_starvation_is_real () =
  (* The §2 critique, demonstrated: a writer favored by the scheduler
     keeps a reader retrying indefinitely — the read only completes
     once the writer stops.  Wait-free ARC under the same schedule
     finishes immediately. *)
  let size = 32 in
  let reg = Lp_sim.create ~readers:1 ~capacity:size ~init:(Array.make size 0) in
  let src = Array.make size 0 in
  let read_latency = ref 0 in
  let writer () =
    for _ = 1 to 30 do
      Lp_sim.write reg ~src ~len:size
    done
  in
  let reader () =
    let rd = Lp_sim.reader reg 0 in
    let t0 = Sched.now () in
    ignore (Lp_sim.read_with rd ~f:(fun _ _ -> ()));
    read_latency := Sched.now () - t0
  in
  (* Plain fair round-robin suffices: every read attempt overlaps a
     write (the 32-word copy is slower than the version bump), so the
     reader retries until the writer has completely stopped. *)
  ignore (Sched.run ~strategy:(Strategy.round_robin ()) [| writer; reader |]);
  Alcotest.(check bool)
    (Printf.sprintf "read could only complete after all 30 writes (latency %d)"
       !read_latency)
    true
    (!read_latency > 500)

let suite =
  [
    Alcotest.test_case "no RMW" `Quick test_no_rmw;
    Alcotest.test_case "sequential no retries" `Quick test_sequential_no_retries;
    Alcotest.test_case "never torn under schedules" `Quick
      test_never_torn_under_schedules;
    Alcotest.test_case "reader starvation (§2 critique)" `Quick
      test_reader_starvation_is_real;
  ]

lib/mem/real_mem.ml: Array Atomic Domain

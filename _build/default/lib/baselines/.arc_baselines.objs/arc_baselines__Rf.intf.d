lib/baselines/rf.mli: Arc_core Arc_mem

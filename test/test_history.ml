(* History construction and the per-thread recorder. *)

module History = Arc_trace.History

let ev kind ~thread ~seq ~i ~r = History.event kind ~thread ~seq ~invoked:i ~returned:r

let test_event_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> ev History.Read ~thread:0 ~seq:1 ~i:10 ~r:5);
  raises (fun () -> ev History.Write ~thread:0 ~seq:(-1) ~i:0 ~r:1)

let test_sorting () =
  let h =
    History.of_events
      [
        ev History.Read ~thread:1 ~seq:2 ~i:30 ~r:40;
        ev History.Write ~thread:0 ~seq:1 ~i:0 ~r:5;
        ev History.Write ~thread:0 ~seq:2 ~i:10 ~r:15;
        ev History.Read ~thread:2 ~seq:1 ~i:6 ~r:9;
      ]
  in
  Alcotest.(check int) "size" 4 (History.size h);
  let invokes = List.map (fun (e : History.event) -> e.invoked) (History.events h) in
  Alcotest.(check (list int)) "sorted by invocation" [ 0; 6; 10; 30 ] invokes;
  let wseqs = List.map (fun (e : History.event) -> e.seq) (History.writes h) in
  Alcotest.(check (list int)) "writes by seq" [ 1; 2 ] wseqs;
  Alcotest.(check int) "reads split out" 2 (List.length (History.reads h))

let test_recorder_roundtrip () =
  let r = History.Recorder.create ~threads:3 ~capacity:10 in
  History.Recorder.record r ~thread:0 History.Write ~seq:1 ~invoked:0 ~returned:2;
  History.Recorder.record r ~thread:1 History.Read ~seq:1 ~invoked:3 ~returned:4;
  History.Recorder.record r ~thread:2 History.Read ~seq:0 ~invoked:1 ~returned:2;
  let h = History.Recorder.history r in
  Alcotest.(check int) "all events merged" 3 (History.size h);
  Alcotest.(check int) "no drops" 0 (History.Recorder.dropped r)

let test_recorder_capacity () =
  let r = History.Recorder.create ~threads:1 ~capacity:2 in
  for i = 1 to 5 do
    History.Recorder.record r ~thread:0 History.Read ~seq:0 ~invoked:i ~returned:i
  done;
  Alcotest.(check int) "kept capacity" 2 (History.size (History.Recorder.history r));
  Alcotest.(check int) "dropped the rest" 3 (History.Recorder.dropped r)

let test_recorder_parallel_threads () =
  (* Each domain appends only to its own cell: merging after join must
     lose nothing. *)
  let r = History.Recorder.create ~threads:4 ~capacity:1000 in
  let work t () =
    for i = 0 to 999 do
      History.Recorder.record r ~thread:t History.Read ~seq:0 ~invoked:i ~returned:i
    done
  in
  let domains = List.init 4 (fun t -> Domain.spawn (work t)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "4000 events" 4000 (History.size (History.Recorder.history r))

let prop_of_events_preserves =
  QCheck.Test.make ~name:"of_events preserves every event" ~count:200
    QCheck.(small_list (pair (pair small_nat small_nat) small_nat))
    (fun triples ->
      let evs =
        List.map
          (fun ((a, b), seq) ->
            let i = min a b and r = max a b in
            ev History.Read ~thread:0 ~seq ~i ~r)
          triples
      in
      History.size (History.of_events evs) = List.length evs)

(* dump/load: the persisted form must reproduce events and meta
   exactly — the crash harness's offline re-judgement depends on it. *)
let test_dump_load_roundtrip () =
  let evs =
    [
      ev History.Write ~thread:0 ~seq:1 ~i:10 ~r:20;
      ev History.Write ~thread:0 ~seq:2 ~i:30 ~r:40;
      ev History.Read ~thread:1 ~seq:1 ~i:15 ~r:25;
      ev History.Read ~thread:2 ~seq:2 ~i:35 ~r:45;
    ]
  in
  let meta = [ ("fence", 99); ("pending_seq", 3); ("pending_invoked", 50) ] in
  let path = Filename.temp_file "arc_history_test" ".history" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      History.dump ~meta (History.of_events evs) path;
      let h, meta' = History.load path in
      Alcotest.(check (list (pair string int))) "meta round-trips" meta meta';
      Alcotest.(check int) "all events survive" (List.length evs) (History.size h);
      Alcotest.(check bool) "events round-trip exactly" true
        (History.events (History.of_events evs) = History.events h))

let test_load_rejects_garbage () =
  let path = Filename.temp_file "arc_history_test" ".history" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "not a history\n";
      close_out oc;
      Alcotest.check_raises "bad header is refused"
        (Failure
           (Printf.sprintf "History.load: %s:1: bad header %S" path
              "not a history"))
        (fun () -> ignore (History.load path)))

let suite =
  [
    Alcotest.test_case "event validation" `Quick test_event_validation;
    Alcotest.test_case "dump/load roundtrip" `Quick test_dump_load_roundtrip;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "sorting" `Quick test_sorting;
    Alcotest.test_case "recorder roundtrip" `Quick test_recorder_roundtrip;
    Alcotest.test_case "recorder capacity" `Quick test_recorder_capacity;
    Alcotest.test_case "recorder parallel" `Quick test_recorder_parallel_threads;
    QCheck_alcotest.to_alcotest prop_of_events_preserves;
  ]

test/test_simpson.ml: Alcotest Arc_baselines Arc_mem Arc_vsched Arc_workload Array List Option Printf

(** (M,N) multi-writer register built from (1,N) registers — the
    paper's §1 motivation for optimizing (1,N) registers ("they
    constitute building blocks to realize more general (M,N)
    registers", citing Li–Tromp–Vitányi).

    Classic unbounded-timestamp construction: each writer owns one
    (1, M−1+N) sub-register (readable by every other writer and every
    reader) holding ⟨timestamp, writer-id, value⟩.

    - {b write} by writer [w]: collect the timestamps of all other
      sub-registers, pick [1 + max] (including [w]'s own last, kept
      locally), and publish ⟨ts, w, value⟩ in [w]'s sub-register —
      one collect plus one (1,N) write.
    - {b read}: collect all sub-registers, keeping the snapshot with
      the lexicographically largest ⟨timestamp, writer-id⟩.

    Wait-freedom is inherited from the underlying register (ARC), at
    O(M) operations per access.  Each snapshot carries a 2-word
    header, so capacity costs 2 extra words per sub-register. *)

module Make (_ : Arc_core.Register_intf.ALGORITHM) (_ : Arc_mem.Mem_intf.S) : sig
  type t
  type writer
  type reader

  val create : writers:int -> readers:int -> capacity:int -> init:int array -> t
  (** @raise Invalid_argument on non-positive counts/sizes or when the
      underlying algorithm cannot host [writers - 1 + readers]
      subscribers. *)

  val writer : t -> int -> writer
  (** Writer identity [i] in [0, writers); one thread per identity. *)

  val reader : t -> int -> reader
  (** Reader identity [i] in [0, readers); one thread per identity. *)

  val write : writer -> src:int array -> len:int -> unit

  val read_into : reader -> dst:int array -> int
  (** Copies the winning snapshot's value into [dst], returns its
      length.  The winner is the lexicographically largest
      ⟨timestamp, writer-id⟩: concurrent writers can publish {e equal}
      timestamps (both collect before either publishes), and the
      writer-id tie-break is what keeps the winner
      schedule-independent. *)

  val read_into_ts_only : reader -> dst:int array -> int
  (** Negative control ({e broken by design} — test use only): the
      collect with the writer-id tie-break removed, keeping the first
      maximal timestamp scanned.  Equal-ts writes are left unordered,
      so readers can disagree on the winner and a reader's
      ⟨ts, writer-id⟩ sequence can go backwards — the vsched
      regression convicts exactly this. *)

  val last_timestamp : reader -> int
  (** Timestamp of the last snapshot returned by {!read_into} on this
      handle (0 before any read) — lets tests check timestamp
      monotonicity per reader. *)

  val last_writer : reader -> int
  (** Writer id of that same snapshot (0 before any read).  Together
      with {!last_timestamp} this exposes the full logical clock
      ⟨ts, writer-id⟩, the quantity that must be non-decreasing per
      reader — timestamp alone cannot detect an equal-ts
      inversion. *)
end

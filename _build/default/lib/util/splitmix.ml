type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: non-positive bound";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (next64 t) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.(to_int (shift_right_logical (next64 t) 11)) in
  float_of_int bits *. 0x1p-53

let bernoulli t p = float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

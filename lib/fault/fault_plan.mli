(** Deterministic fault plans — the failure-side counterpart of
    {!Arc_vsched.Strategy}.

    A plan is a finite set of fault events, each addressed at a
    {e protocol step} of one fiber: "the [nth] shared-memory access
    (of a given class) this fiber performs".  Because fibers over
    {!Arc_vsched.Sim_mem} touch shared memory deterministically for a
    fixed schedule, a (plan, strategy-seed) pair identifies one faulty
    execution exactly — fault schedules are explorable with
    {!Arc_vsched.Explore} and replayable from a seed, like ordinary
    schedules.

    Plans are injected by wrapping any memory substrate with
    {!Fault_mem.Make}, so every register algorithm can run under
    faults without modification.

    Two of the actions are {e sound} process/platform faults that a
    crash-tolerant register must survive:
    - {!crash} — crash-stop: the fiber stops executing forever
      (raises {!Crashed}, which the harness catches at the fiber's
      top level).  A reader crashed between its R3/R4 protocol steps
      leaves [r_start <> r_end] frozen on its slot — the scenario
      ISSUE 2 hardens against.
    - {!stall} — the fiber goes quiet for a number of simulated steps
      (hypervisor steal, page fault, long de-schedule) and resumes.

    The other two are {e unsound} faults that corrupt the algorithm's
    own behaviour; they exist to build negative controls proving the
    crash-aware checker is not vacuous:
    - {!tear} with [silent:true] — a bulk copy writes only its first
      [at_word] words and {e reports success}; a register publishing
      such a slot serves torn snapshots and must be convicted.
      ([silent:false] crashes mid-copy instead — a sound fault: the
      torn slot is never published by a correct algorithm.)
    - {!drop} — a unit-returning operation (an [incr] or [store]) is
      silently skipped: a lost release, breaking slot accounting in a
      way the presence-ledger auditor must catch.
    - {!cas_lie} — a compare-and-set {e reports success without
      applying}: the shared word is untouched but the caller proceeds
      as a winner.  This is the split-vote forcer for the writer
      election's negative control ({!Arc_resilience.Election}): a
      candidate whose vote CAS lies believes it won a term someone
      else actually holds, and a history written under that belief
      must be convicted by the atomicity checker. *)

exception Crashed
(** Raised by {!Fault_mem} at a [Crash] (or non-silent [Tear]) point.
    Harness fiber bodies catch it at top level: the fiber simply stops
    (crash-stop semantics); it must never escape to the scheduler. *)

type op_class = [ `Load | `Store | `Rmw | `Bulk ]
(** Classes of shared-memory access: plain atomic loads, plain atomic
    stores, read-modify-writes, and bulk buffer copies
    ([write_words] / [read_words] / [blit]).  Single-word buffer reads
    count as [`Load]. *)

type kind = [ `Any | op_class ]

type action =
  | Crash
  | Stall of int  (** steps to stay off the runnable set *)
  | Tear of { at_word : int; silent : bool }
  | Drop
  | Cas_lie  (** CAS reports success without applying (unsound) *)

type point = { fiber : int; kind : kind; nth : int }
(** Fires at the fiber's [nth] access of class [kind] (1-based;
    [`Any] counts every class). *)

type event = { point : point; action : action }
type t

val empty : t

val crash : fiber:int -> at_access:int -> t -> t
val stall : fiber:int -> at_access:int -> steps:int -> t -> t

val tear : fiber:int -> at_copy:int -> at_word:int -> silent:bool -> t -> t
(** [at_copy] is the fiber's nth {e bulk} operation; [at_word] how
    many words of it complete. *)

val drop : fiber:int -> kind:[ `Store | `Rmw ] -> nth:int -> t -> t

val cas_lie : fiber:int -> nth:int -> t -> t
(** [nth] is the fiber's nth {e rmw} access; if it is a
    [compare_and_set], it reports success without storing.  (Any other
    rmw proceeds normally — the event is still consumed.) *)

val events : t -> event list
val size : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** The shared core of every figure driver: run options, the
    thread/size grids, single-point runners on the real and simulated
    substrates, the capability filter, and the series/CSV plumbing.
    Per-figure modules ({!Fig_throughput}, {!Fig_rmw}, {!Fig_ablation},
    {!Fig_latency}) build on this; {!Experiment} re-exports the lot as
    the stable façade. *)

module Series = Arc_report.Series
module Table = Arc_report.Table
module Strategy = Arc_vsched.Strategy

type opts = {
  reps : int;  (** repetitions per real-mode point (paper: 10) *)
  duration_s : float;  (** measured window per real-mode point *)
  sim_steps : int;  (** simulated-step budget per sim-mode point *)
  quick : bool;  (** shrink grids for smoke runs *)
  seed : int;
}

let default = { reps = 3; duration_s = 0.2; sim_steps = 300_000; quick = false; seed = 1 }
let quick = { reps = 1; duration_s = 0.05; sim_steps = 40_000; quick = true; seed = 1 }

(* Grids ------------------------------------------------------------- *)

let real_threads opts = if opts.quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16; 32 ]

let real_sizes opts =
  if opts.quick then [ ("4KB", Arc_workload.Payload.size_4kb) ]
  else Arc_workload.Payload.paper_sizes

(* Simulated sizes are scaled down (per-word scheduling points make a
   128KB copy 16384 steps); the copy-cost *ratios* between sizes are
   preserved, which is what the shape comparison needs. *)
let sim_sizes opts =
  if opts.quick then [ ("64w", 64) ] else [ ("64w", 64); ("512w", 512); ("2048w", 2048) ]

let sim_threads opts = if opts.quick then [ 2; 4 ] else [ 2; 4; 8; 16; 32 ]
let fig3_threads opts = if opts.quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096 ]

(* Systhread time-sharing rotates 50ms quanta: joining k spinning
   threads costs up to k × 50ms, so the real-threads grid stays small
   (the 4096-thread regime lives in the simulator, fig3_sim). *)
let fig3_real_thread_counts opts = if opts.quick then [ 8; 32 ] else [ 8; 32; 128 ]

(* Fabric fan-out shapes (ISSUE 6): (shards, writers, scanners) for
   the cross-shard snapshot campaign.  Covers both directions of the
   Fig. 3 regime — shard fan-out with few scanners (probe-pass cost
   scales with shards) and scanner fan-out over few shards (helping
   pressure scales with concurrent scans). *)
let fabric_shapes opts =
  if opts.quick then [ (4, 2, 2) ]
  else [ (2, 1, 2); (4, 2, 2); (8, 4, 4); (16, 4, 2); (4, 2, 8) ]

(* Runners ------------------------------------------------------------ *)

let mean_of f ~reps =
  let samples = Array.init (max reps 1) (fun _ -> f ()) in
  Arc_util.Stats.mean samples

let real_point (entry : Registry.entry) ~opts ~threads ~size ~workload ~steal =
  let cfg =
    {
      Config.default_real with
      Config.readers = threads - 1;
      size_words = size;
      duration_s = opts.duration_s;
      workload;
      steal;
      seed = opts.seed;
    }
  in
  mean_of ~reps:opts.reps (fun () ->
      (entry.Registry.run_real cfg).Config.total_throughput)

let sim_point (entry : Registry.entry) ~opts ~threads ~size ~steal =
  let cfg =
    {
      Config.default_sim with
      Config.sim_readers = threads - 1;
      sim_size_words = size;
      max_steps = opts.sim_steps;
      sim_workload = Config.Hold;
      sim_seed = opts.seed;
    }
  in
  let strategy =
    if steal then
      Strategy.steal ~seed:opts.seed
        ~base:(Strategy.random ~seed:(opts.seed + 1))
        ~probability:0.002 ~min_pause:200 ~max_pause:2_000
    else Strategy.random ~seed:opts.seed
  in
  let r = entry.Registry.run_sim ~strategy cfg in
  (* ops per 1000 simulated steps *)
  r.Config.total_throughput *. 1000.

let supports (entry : Registry.entry) ~readers ~size =
  Registry.supports entry ~readers ~capacity_words:size

(* Figure builders ---------------------------------------------------- *)

let build_series ~title_of ~x_label ~sizes ~threads ~algos ~point =
  List.map
    (fun (size_name, size) ->
      let s = Series.create ~title:(title_of size_name) ~x_label in
      List.iter
        (fun t ->
          List.iter
            (fun (entry : Registry.entry) ->
              if supports entry ~readers:(t - 1) ~size then
                Series.add s ~series:entry.Registry.name ~x:(float_of_int t)
                  ~y:(point entry ~threads:t ~size))
            algos)
        threads;
      s)
    sizes

(* Output ------------------------------------------------------------- *)

let dump_csv ~out_dir ~name contents =
  match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc contents;
    close_out oc

let print_series ~out_dir ~stem series_list =
  List.iteri
    (fun i s ->
      Table.print (Series.to_table s);
      print_newline ();
      print_string (Series.render_chart s);
      print_newline ();
      dump_csv ~out_dir ~name:(Printf.sprintf "%s_%d" stem i) (Series.to_csv s))
    series_list

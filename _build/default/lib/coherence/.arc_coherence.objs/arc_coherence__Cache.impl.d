lib/coherence/cache.ml: Array Format Hashtbl

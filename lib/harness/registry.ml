module Real = Arc_mem.Real_mem
module Counting_real = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Sim = Arc_vsched.Sim_mem
module RI = Arc_core.Register_intf

type entry = {
  name : string;
  caps : RI.caps;
  run_real : Config.real -> Config.result;
  run_sim : ?strategy:Arc_vsched.Strategy.t -> Config.sim -> Config.result;
  run_sim_telemetry :
    (?strategy:Arc_vsched.Strategy.t ->
    Config.sim ->
    Config.result * Arc_obs.Obs.metric list)
    option;
  run_fabric_sim :
    (?strategy:Arc_vsched.Strategy.t -> Config.fabric_sim -> Fabric_runner.result)
    option;
  count :
    readers:int ->
    size_words:int ->
    rounds:int ->
    reads_per_write:int ->
    Count_runner.per_op;
}

module Entry_of (A : Arc_core.Register_intf.ALGORITHM) = struct
  module R_real = A.Make (Real)
  module R_cnt = A.Make (Counting_real)
  module R_sim = A.Make (Sim)
  module Run_real = Real_runner.Make (R_real)
  module Run_sim = Sim_runner.Make (R_sim)
  module Count = Count_runner.Make (Counting_real) (R_cnt)

  let entry =
    {
      name = A.algorithm;
      caps = R_real.caps;
      run_real = Run_real.run;
      run_sim = (fun ?strategy cfg -> Run_sim.run ?strategy cfg);
      run_sim_telemetry = None;
      run_fabric_sim = None;
      count = Count.measure;
    }
end

(* Telemetry-capable sim runners for the ARC family.  [Entry_of] sees
   registers only through {!Arc_core.Register_intf.S}, which has no
   observability surface; these concrete instantiations expose the
   full [Arc.Make]/[Arc_dynamic.Make] signature, attach a telemetry
   handle before the fibers start (clocked by the virtual scheduler,
   so trace timestamps are simulated time), and return the run's
   metric snapshot alongside the result. *)
module Arc_tel = struct
  module R = Arc_core.Arc.Make (Sim)
  module Run = Sim_runner.Make (R)

  let run ?strategy (cfg : Config.sim) =
    let attached = ref None in
    let prepare reg =
      R.set_telemetry reg
        (Some
           (R.make_telemetry ~clock:Arc_vsched.Sched.now
              ~readers:cfg.Config.sim_readers ()));
      attached := Some reg
    in
    let r = Run.run ~prepare ?strategy cfg in
    let metrics =
      match !attached with Some reg -> R.metrics reg | None -> []
    in
    (r, metrics)
end

module Arc_dynamic_tel = struct
  module R = Arc_core.Arc_dynamic.Make (Sim)
  module Run = Sim_runner.Make (R)

  let run ?strategy (cfg : Config.sim) =
    let attached = ref None in
    let prepare reg =
      R.set_telemetry reg
        (Some
           (R.make_telemetry ~clock:Arc_vsched.Sched.now
              ~readers:cfg.Config.sim_readers ()));
      attached := Some reg
    in
    let r = Run.run ~prepare ?strategy cfg in
    let metrics =
      match !attached with Some reg -> R.metrics reg | None -> []
    in
    (r, metrics)
end

(* Fabric runners for the stamped family (ISSUE 6).  Like telemetry,
   the versioned-read surface ([read_stamped]/[probe_stamp]) is wider
   than {!Arc_core.Register_intf.S}, so [Entry_of] cannot build these;
   they are instantiated per stamped algorithm and advertised through
   the [snapshot_read] capability bit — consumers discover them with
   {!fabric_capable}, never by name. *)
module Arc_nohint_sim = Arc_core.Arc_nohint.Make (Sim)
module Arc_fab = Fabric_runner.Make (Arc_tel.R)
module Arc_nohint_fab = Fabric_runner.Make (Arc_nohint_sim)
module Arc_dynamic_fab = Fabric_runner.Make (Arc_dynamic_tel.R)

module Arc_entry = Entry_of (Arc_core.Arc)
module Arc_nohint_entry = Entry_of (Arc_core.Arc_nohint)
module Arc_dynamic_entry = Entry_of (Arc_core.Arc_dynamic)
module Rf_entry = Entry_of (Arc_baselines.Rf)
module Peterson_entry = Entry_of (Arc_baselines.Peterson)
module Rwlock_entry = Entry_of (Arc_baselines.Rwlock_reg)
module Seqlock_entry = Entry_of (Arc_baselines.Seqlock_reg)
module Lamport_entry = Entry_of (Arc_baselines.Lamport_reg)
module Simpson_entry = Entry_of (Arc_baselines.Simpson_reg)

let arc_entry =
  {
    Arc_entry.entry with
    run_sim_telemetry = Some Arc_tel.run;
    run_fabric_sim = Some (fun ?strategy cfg -> Arc_fab.run ?strategy cfg);
  }

let arc_nohint_entry =
  {
    Arc_nohint_entry.entry with
    run_fabric_sim = Some (fun ?strategy cfg -> Arc_nohint_fab.run ?strategy cfg);
  }

let arc_dynamic_entry =
  {
    Arc_dynamic_entry.entry with
    run_sim_telemetry = Some Arc_dynamic_tel.run;
    run_fabric_sim = Some (fun ?strategy cfg -> Arc_dynamic_fab.run ?strategy cfg);
  }

let all =
  [
    arc_entry;
    arc_nohint_entry;
    arc_dynamic_entry;
    Rf_entry.entry;
    Peterson_entry.entry;
    Rwlock_entry.entry;
    Seqlock_entry.entry;
    Lamport_entry.entry;
    Simpson_entry.entry;
  ]

let paper_set =
  [ arc_entry; Rf_entry.entry; Peterson_entry.entry; Rwlock_entry.entry ]

let find name = List.find (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all

let supports entry ~readers ~capacity_words =
  RI.supports_readers entry.caps ~readers ~capacity_words

let supporting ~readers ~capacity_words entries =
  List.filter (fun e -> supports e ~readers ~capacity_words) entries

let fabric_capable entries =
  List.filter (fun e -> e.caps.RI.snapshot_read) entries

(* The invariant behind capability discovery: every entry advertising
   [snapshot_read] carries a fabric runner.  Checked eagerly so a new
   stamped algorithm registered without its fabric instantiation fails
   at module load, not at first use. *)
let () =
  List.iter
    (fun e ->
      if e.caps.RI.snapshot_read && Option.is_none e.run_fabric_sim then
        invalid_arg
          (Printf.sprintf
             "Registry: %s advertises snapshot_read but has no fabric runner"
             e.name))
    all

(* Cache-line isolation for hot heap words, shared by the substrate's
   contended atomics ({!Real_mem.atomic_contended}) and the telemetry
   counter cells above the substrate ({!Arc_obs.Obs.Cell}).

   OCaml 5.1 has no [Atomic.make_contended] (it arrives in 5.2), so
   hot cells are spacer-boxed instead: the minor heap allocates
   sequentially, so bracketing a small block between two line-sized
   dummy blocks keeps any other hot object off its cache line, and
   promotion preserves the neighbourhood (the 5.1 major heap never
   compacts).  The spacers must stay reachable — a freed spacer is a
   hole the allocator could refill with someone else's hot word — so
   they are retained in a global list.  128 bytes of padding per side
   covers the common 64-byte line plus the adjacent-line prefetcher
   pair.  When the toolchain moves to >= 5.2 this becomes
   [Atomic.make_contended].

   The whole treatment is conditional on the machine actually having
   more than one core: false sharing is cross-core line ping-pong, so
   on a uniprocessor isolation can buy nothing and measurably loses
   (the extra lines enlarge the hot working set — about 5% of ARC
   32KB hold-model throughput on the 1-core reference container).  A
   single topology probe at module load picks the layout. *)

let isolate_hot_words = Domain.recommended_domain_count () > 1
let spacer_words = (128 / (Sys.word_size / 8)) - 1 (* block + header = 128B *)

let retained_spacers : int array list Atomic.t = Atomic.make []

let retain spacer =
  let rec go () =
    let old = Atomic.get retained_spacers in
    if not (Atomic.compare_and_set retained_spacers old (spacer :: old)) then
      go ()
  in
  go ()

let alloc f =
  if not isolate_hot_words then f ()
  else begin
    let lead = Array.make spacer_words 0 in
    let v = f () in
    let trail = Array.make spacer_words 0 in
    retain lead;
    retain trail;
    v
  end

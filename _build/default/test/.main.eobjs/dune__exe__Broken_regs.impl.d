test/broken_regs.ml: Arc_mem Array

test/test_harness.ml: Alcotest Arc_harness Array Atomic Domain List Printf

(* CLI reproducing each figure/table of the paper (see DESIGN.md §4
   for the experiment index and EXPERIMENTS.md for recorded results).

     dune exec bin/experiments.exe -- fig1 [--sim] [--quick] [--out DIR]
     dune exec bin/experiments.exe -- all --quick
*)

module Experiment = Arc_harness.Experiment
module Series = Arc_report.Series
module Table = Arc_report.Table
open Cmdliner

let opts_term =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shrink grids for a fast smoke run.")
  in
  let reps =
    Arg.(
      value
      & opt (some int) None
      & info [ "reps" ] ~docv:"N" ~doc:"Repetitions per real-mode point.")
  in
  let duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Measured window per point.")
  in
  let steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "steps" ] ~docv:"N" ~doc:"Simulated-step budget per sim point.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")
  in
  let build quick reps duration steps seed =
    let base = if quick then Experiment.quick else Experiment.default in
    {
      base with
      Experiment.reps = Option.value reps ~default:base.Experiment.reps;
      duration_s = Option.value duration ~default:base.Experiment.duration_s;
      sim_steps = Option.value steps ~default:base.Experiment.sim_steps;
      seed;
    }
  in
  Term.(const build $ quick $ reps $ duration $ steps $ seed)

let out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Also dump CSV files into $(docv).")

let sim_term =
  Arg.(
    value & flag
    & info [ "sim" ]
        ~doc:
          "Run on the deterministic virtual scheduler instead of real \
           domains/threads.")

let print_series ~out_dir ~stem series_list =
  List.iteri
    (fun i s ->
      Table.print (Series.to_table s);
      print_newline ();
      print_string (Series.render_chart s);
      print_newline ();
      Experiment.dump_csv ~out_dir ~name:(Printf.sprintf "%s_%d" stem i)
        (Series.to_csv s))
    series_list

let series_cmd name doc ~real ~sim =
  let run opts out sim_mode =
    let data = if sim_mode then sim opts else real opts in
    let stem = name ^ if sim_mode then "_sim" else "_real" in
    print_series ~out_dir:out ~stem data
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(const run $ opts_term $ out_term $ sim_term)

let table_cmd name doc ~(table : Experiment.opts -> Table.t) =
  let run opts out =
    let t = table opts in
    Table.print t;
    Experiment.dump_csv ~out_dir:out ~name (Table.to_csv t)
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ opts_term $ out_term)

let fig1 =
  series_cmd "fig1"
    "Fig. 1 — hold-model throughput vs thread count for 4KB/32KB/128KB registers."
    ~real:Experiment.fig1_real ~sim:Experiment.fig1_sim

let fig2 =
  series_cmd "fig2"
    "Fig. 2 — the virtualized platform: throughput under CPU-steal injection."
    ~real:Experiment.fig2_real ~sim:Experiment.fig2_sim

let fig3 =
  series_cmd "fig3"
    "Fig. 3 — largely-increased thread counts (time-shared); RF excluded."
    ~real:Experiment.fig3_real_threads ~sim:Experiment.fig3_sim

let rmw =
  table_cmd "rmw-table"
    "E4 — measured RMW instructions per operation (the paper's §5 explanation)."
    ~table:Experiment.rmw_table

let ablation =
  table_cmd "ablation-hint"
    "E5 — §3.4 free-slot hint ablation (probes per write, throughput)."
    ~table:Experiment.ablation_hint

let processing =
  let run opts out =
    print_series ~out_dir:out ~stem:"processing"
      (Experiment.processing_real opts)
  in
  Cmd.v
    (Cmd.info "processing"
       ~doc:"E6 — processing workload (writes generate data, reads scan).")
    Term.(const run $ opts_term $ out_term)

let latency =
  table_cmd "latency"
    "E7 — per-operation read-latency distributions on real domains."
    ~table:Experiment.latency_table

let ablation_dynamic =
  table_cmd "ablation-dynamic"
    "E8 — memory footprint of the dynamic-allocation ARC variant (§3.3 note)."
    ~table:Experiment.ablation_dynamic

let coherence =
  table_cmd "coherence-table"
    "E9 — MESI coherence traffic per operation (the paper's interconnect \
     argument, measured)."
    ~table:Arc_harness.Coherence_exp.default_table

let variability =
  table_cmd "variability"
    "Quantify real-mode measurement noise (repeated canonical point)."
    ~table:Experiment.variability_table

let all =
  let run opts out = Experiment.run_all opts ~out_dir:out in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence.")
    Term.(const run $ opts_term $ out_term)

let platform =
  let run () = print_endline (Arc_util.Cpu.describe ()) in
  Cmd.v
    (Cmd.info "platform" ~doc:"Print the platform description used in reports.")
    Term.(const run $ const ())

let () =
  let doc =
    "Reproduce the evaluation of 'A Wait-free Multi-word Atomic (1,N) Register \
     for Large-scale Data Sharing on Multi-core Machines' (CLUSTER 2017)."
  in
  let info = Cmd.info "arc-experiments" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig1; fig2; fig3; rmw; ablation; ablation_dynamic; latency; processing;
            coherence; variability; all; platform;
          ]))

(* Harness machinery: the barrier, the deterministic RMW-count runner
   (with the paper's E4 comparisons as assertions), and the registry. *)

module Barrier = Arc_harness.Barrier
module Registry = Arc_harness.Registry
module Config = Arc_harness.Config
module Count_runner = Arc_harness.Count_runner

let check = Alcotest.(check int)

let test_barrier_aligns_domains () =
  let parties = 4 in
  let b = Barrier.create ~parties in
  let handles = Array.init parties (fun _ -> Barrier.join b) in
  let phase = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let worker i () =
    for round = 1 to 50 do
      Barrier.wait handles.(i);
      (* Everyone must observe the same round number between waits. *)
      if i = 0 then Atomic.set phase round
      else begin
        Barrier.wait handles.(i);
        if Atomic.get phase <> round then Atomic.incr errors
      end;
      if i = 0 then Barrier.wait handles.(0)
    done
  in
  let domains = Array.init parties (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join domains;
  check "no phase skew" 0 (Atomic.get errors)

let test_barrier_too_many_joins () =
  let b = Barrier.create ~parties:1 in
  let _ = Barrier.join b in
  match Barrier.join b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "over-subscription accepted"

let test_registry_contents () =
  Alcotest.(check (list string))
    "registry names"
    [
      "arc"; "arc-nohint"; "arc-dynamic"; "rf"; "peterson"; "rwlock"; "seqlock";
      "lamport77"; "simpson";
    ]
    Registry.names;
  check "paper set is the four compared algorithms" 4 (List.length Registry.paper_set);
  let caps name = (Registry.find name).Registry.caps in
  Alcotest.(check bool) "arc is wait-free" true
    (caps "arc").Arc_core.Register_intf.wait_free;
  Alcotest.(check bool) "rwlock is not" false
    (caps "rwlock").Arc_core.Register_intf.wait_free;
  Alcotest.(check bool) "arc reads are zero-copy" true
    (caps "arc").Arc_core.Register_intf.zero_copy;
  Alcotest.(check bool) "peterson reads are not" false
    (caps "peterson").Arc_core.Register_intf.zero_copy;
  (match Registry.find "no-such" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown name found")

let counts name ~reads_per_write =
  let entry = Registry.find name in
  entry.Registry.count ~readers:4 ~size_words:32 ~rounds:50 ~reads_per_write

let test_arc_rmw_per_read_shrinks_with_rpw () =
  (* With r reads between writes, only the first read misses: RMW/read
     = 2/r for ARC. *)
  let one = counts "arc" ~reads_per_write:1 in
  let four = counts "arc" ~reads_per_write:4 in
  let sixteen = counts "arc" ~reads_per_write:16 in
  Alcotest.(check (float 1e-9)) "rpw=1: 2 RMW per read" 2. one.Count_runner.rmw_per_read;
  Alcotest.(check (float 1e-9)) "rpw=4: 0.5 RMW per read" 0.5 four.Count_runner.rmw_per_read;
  Alcotest.(check (float 1e-9)) "rpw=16: 0.125 RMW per read" 0.125
    sixteen.Count_runner.rmw_per_read

let test_rf_rmw_per_read_constant () =
  let one = counts "rf" ~reads_per_write:1 in
  let sixteen = counts "rf" ~reads_per_write:16 in
  Alcotest.(check (float 1e-9)) "always 1 RMW per read" 1. one.Count_runner.rmw_per_read;
  Alcotest.(check (float 1e-9)) "independent of staleness" 1.
    sixteen.Count_runner.rmw_per_read

let test_e4_ordering () =
  (* The paper's explanation of Fig. 1: for read-dominated windows,
     ARC executes strictly fewer RMWs per read than RF, which executes
     fewer than the lock (two per uncontended read: lock + unlock). *)
  let arc = counts "arc" ~reads_per_write:8 in
  let rf = counts "rf" ~reads_per_write:8 in
  let lock = counts "rwlock" ~reads_per_write:8 in
  Alcotest.(check bool)
    (Printf.sprintf "arc (%.3f) < rf (%.3f)" arc.Count_runner.rmw_per_read
       rf.Count_runner.rmw_per_read)
    true
    (arc.Count_runner.rmw_per_read < rf.Count_runner.rmw_per_read);
  Alcotest.(check bool)
    (Printf.sprintf "rf (%.3f) < rwlock (%.3f)" rf.Count_runner.rmw_per_read
       lock.Count_runner.rmw_per_read)
    true
    (rf.Count_runner.rmw_per_read < lock.Count_runner.rmw_per_read)

let test_write_side_counts () =
  let arc = counts "arc" ~reads_per_write:2 in
  let peterson = counts "peterson" ~reads_per_write:2 in
  Alcotest.(check (float 1e-9)) "arc writes 1 RMW" 1. arc.Count_runner.rmw_per_write;
  Alcotest.(check (float 1e-9)) "peterson writes 0 RMW" 0.
    peterson.Count_runner.rmw_per_write;
  (* one content copy per ARC write, ≥ 2 copies per Peterson write *)
  Alcotest.(check (float 1e-9)) "arc copies size words" 32.
    arc.Count_runner.word_writes_per_write;
  Alcotest.(check bool)
    (Printf.sprintf "peterson copies ≥ 2 buffers (%.0f words)"
       peterson.Count_runner.word_writes_per_write)
    true
    (peterson.Count_runner.word_writes_per_write >= 64.)

let test_count_runner_validation () =
  let entry = Registry.find "arc" in
  match entry.Registry.count ~readers:0 ~size_words:8 ~rounds:1 ~reads_per_write:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad parameters accepted"

let test_sim_runner_validation () =
  let entry = Registry.find "arc" in
  let bad cfg =
    match entry.Registry.run_sim cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "bad sim config accepted"
  in
  bad { Config.default_sim with Config.sim_readers = 0 };
  bad { Config.default_sim with Config.sim_size_words = 0 };
  bad { Config.default_sim with Config.max_steps = 0 }

let test_real_runner_validation () =
  let entry = Registry.find "rf" in
  match
    entry.Registry.run_real { Config.default_real with Config.readers = 1000 }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "RF must reject 1000 readers"

let test_sim_runner_deterministic () =
  let entry = Registry.find "arc" in
  let run () =
    let r =
      entry.Registry.run_sim
        { Config.default_sim with Config.max_steps = 20_000; sim_seed = 5 }
    in
    (r.Config.reads, r.Config.writes, r.Config.duration)
  in
  Alcotest.(check bool) "same seed, same result" true (run () = run ())

let suite =
  [
    Alcotest.test_case "barrier aligns domains" `Quick test_barrier_aligns_domains;
    Alcotest.test_case "barrier over-subscription" `Quick test_barrier_too_many_joins;
    Alcotest.test_case "registry contents" `Quick test_registry_contents;
    Alcotest.test_case "arc RMW/read shrinks with rpw" `Quick
      test_arc_rmw_per_read_shrinks_with_rpw;
    Alcotest.test_case "rf RMW/read constant" `Quick test_rf_rmw_per_read_constant;
    Alcotest.test_case "E4 ordering arc < rf < lock" `Quick test_e4_ordering;
    Alcotest.test_case "write-side counts" `Quick test_write_side_counts;
    Alcotest.test_case "count runner validation" `Quick test_count_runner_validation;
    Alcotest.test_case "sim runner validation" `Quick test_sim_runner_validation;
    Alcotest.test_case "real runner validation" `Quick test_real_runner_validation;
    Alcotest.test_case "sim runner deterministic" `Quick test_sim_runner_deterministic;
  ]

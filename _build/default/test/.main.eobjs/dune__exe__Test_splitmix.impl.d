test/test_splitmix.ml: Alcotest Arc_util Array Fun Printf QCheck QCheck_alcotest

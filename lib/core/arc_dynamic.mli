(** ARC with dynamic per-write buffer sizing — the §3.3 implementation
    note made concrete: "in any real implementation of our register
    algorithm, dynamic buffer allocation/release, with each buffer
    made up by the amount of bytes fitting the size of the register
    value to be stored upon write operations could be employed."

    Identical synchronization to {!Arc}; the only difference is buffer
    management: a write replaces the target slot's buffer with an
    exactly-sized fresh one when the new length exceeds the buffer or
    is under half of it (grow always, shrink with hysteresis).  This
    is safe precisely because the slot is free — no standing readers —
    when rewritten, and, an OCaml dividend, a reader still holding a
    view of the slot's {e previous} buffer keeps that buffer alive
    through the GC: the explicit reclamation a C implementation would
    need here comes for free.

    Worth its footprint when snapshot sizes vary wildly: N+2 buffers
    of the {e maximum} size become N+2 buffers near their actual
    sizes.  {!footprint_words} exposes the current total for the
    memory experiments.

    {b Crash-tolerant storage reclaim (ISSUE 2).}  A crashed (or
    indefinitely paused) reader pins its subscribed slot forever; the
    algorithm tolerates that — Lemma 4.1's free-slot guarantee only
    needs 2 spare slots — but in the dynamic variant the pinned slot
    may hold an arbitrarily large buffer.  {!reclaim_stale} lets the
    writer revoke the {e storage} (never the presence accounting) of
    slots superseded more than a lease of writes ago yet still
    pinned: the slot's [size] is marked [-1] and its buffer replaced
    by an empty one, making the old buffer reclaimable by the GC as
    soon as no live reader view references it.  Readers validate
    [size] on both sides of reading [content] when they subscribe, so
    a reader racing a revocation releases and re-subscribes instead
    of returning reclaimed storage; readers already holding a
    validated cached view are unaffected (their buffer stays
    GC-alive).  The recovery retry is the one documented departure
    from strict per-operation wait-freedom, and it can only trigger
    when a reader rests between subscription and validation for an
    entire lease of writes. *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Register_intf.ZERO_COPY with module Mem = M
  (** [read_view]: zero-copy view, stable until this reader's next
      read, exactly as in {!Arc}. *)

  val write_guarded : t -> guard:(unit -> unit) -> src:int array -> len:int -> unit
  (** {!Register_intf.FENCEABLE}: [write] with [guard ()] run between
      slot preparation and the publish exchange; a raising guard
      aborts the write with nothing published.  See {!Arc.Make}. *)

  val recover_crash : t -> int
  (** {!Register_intf.FENCEABLE}: successor-writer recovery after a
      failover — quarantine the slot whose supersede-freeze the
      crashed predecessor left in flight.  See {!Arc.Make}. *)

  val quarantine : t -> int -> unit
  (** {!Register_intf.FENCEABLE}: retire a slot convicted by evidence
      outside the register's own journal (e.g. an integrity layer's
      checksum scan).  Idempotent; writer-role only.  See
      {!Arc.Make}. *)

  val read_stamped : reader -> f:(Mem.buffer -> int -> 'a) -> int * 'a
  val probe_stamp : t -> int
  (** {!Register_intf.STAMPED}: see {!Arc.Make}.  Storage revocation
      ({!reclaim_stale}) never touches a slot's stamp word, so a
      pinned reader's cached view and its stamp always describe the
      same write. *)

  val read_plain : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
  (** R2' validated plain-load read — see {!Arc.Make.S.read_plain}.
      The scan captures the slot's buffer once and bounds-checks the
      size against that capture, so a buffer swap (realloc or
      revocation) racing the scan fails validation instead of faulting;
      [f] must be pure and total on arbitrary word contents. *)

  val write_coalesced :
    t -> max_pending:int -> max_staleness:int -> src:int array -> len:int -> unit

  val flush_coalesced : t -> unit
  val pending_writes : t -> int
  val coalesced_batches : t -> int
  val coalesced_absorbed : t -> int
  val max_coalesced_batch : t -> int
  (** Write coalescing — see {!Arc.Make.S.write_coalesced}: absorb up
      to [max_pending] writes and publish the batch with one exchange
      and one slot copy, under the declared [max_staleness] bound. *)

  val footprint_words : t -> int
  (** Total words currently allocated across all slot buffers. *)

  val reallocations : t -> int
  (** Number of buffer replacements performed by writes so far. *)

  val reclaim_stale : t -> lease:int -> int
  (** [reclaim_stale t ~lease] revokes the storage of every slot that
      was superseded more than [lease] writes ago and is still pinned
      by reader presence — the signature of a crashed or stalled
      reader.  Returns the number of slots revoked by this call.
      Writer-thread only (it is part of the writer's side of the
      protocol).
      @raise Invalid_argument if [lease < 0]. *)

  val set_lease : t -> int option -> unit
  (** [set_lease t (Some l)] makes every [l]-th write run
      [reclaim_stale ~lease:l] automatically; [None] (the default)
      disables auto-reclaim.  Writer-thread only.
      @raise Invalid_argument if [l < 1]. *)

  val reclaimed : t -> int
  (** Total slots whose storage has been revoked so far. *)

  val live_buffers : t -> int
  (** Slots currently holding non-empty storage — the dynamic
      variant's footprint in {e slots} rather than words.  With
      reclaim active this must stay within N + 2 for the {e admitted}
      reader population N, however many readers have come and gone;
      the churn soak (ISSUE 8) tracks it against the admission gate's
      capacity. *)

  (** White-box invariant surface, identical to {!Arc.Make.Debug} —
      the soak's presence audit and the gate-bypass control are
      written against it.  Test/audit use only. *)
  module Debug : sig
    val slots : t -> int
    val current : t -> int
    val r_start : t -> int -> int
    val r_end : t -> int -> int
    val slot_size : t -> int -> int

    val slot_seq : t -> int -> int
    val slot_seq_end : t -> int -> int
    (** The R2' begin/end publish stamps — see {!Arc.Make.S.Debug}. *)

    val unvalidated_plain : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
    (** Negative control: the R2' scan without stamp validation — see
        {!Arc.Make.S.Debug}.  Never use outside tests. *)

    val presence_slack : t -> int
    (** readers − (frozen presence + live count); 0 in any quiescent
        uncorrupted state, in [0, crashed readers] under crash-stop
        faults, negative only if presence was double-released — the
        gate-bypass control's conviction signal. *)

    val presence_bound_holds : t -> bool

    val force_current : t -> int -> unit
    (** Test-only: overwrite the synchronization word (e.g. to plant
        the count at the saturation boundary). *)

    val free_slot_exists : t -> bool
  end

  (** {2 Telemetry} — same wait-free host-heap design as
      {!Arc.Make}: plain per-identity counter cells (no substrate
      operations, no vsched scheduling points, no RMW on the fast
      path) plus a bounded transition trace that additionally records
      reallocations and stale-slot reclaims. *)

  type telemetry

  val make_telemetry :
    ?ring:int -> ?clock:(unit -> int) -> readers:int -> unit -> telemetry

  val set_telemetry : t -> telemetry option -> unit
  (** Attach {e before} creating reader handles (handles resolve their
      cells at creation). *)

  val telemetry : t -> telemetry option
  val fast_reads : telemetry -> int
  val slow_reads : telemetry -> int
  val hint_hits : telemetry -> int
  val plain_reads : telemetry -> int
  val plain_fallbacks : telemetry -> int
  val metrics : t -> Arc_obs.Obs.metric list
  val trace : t -> Arc_obs.Ring.entry list
end

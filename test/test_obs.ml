(* lib/obs tests (ISSUE 5): counter cells, read-outcome accounting,
   the trace ring, metric exposition — and the two observability
   theorems the design leans on, proved under the virtual scheduler:

   - the fast-path-hit counter equals exactly (reads - RMW reads)
     under an adversarial schedule, with the RMW side of the equation
     measured independently by the [Arc_mem.Counting] ledger
     (rmw = writes + 2 * slow reads, since ARC's only RMWs are the
     writer's W2 exchange and a slow read's R3 + R4 pair);

   - attaching telemetry changes no checker-visible history: the same
     seeded schedule with and without telemetry produces structurally
     identical operation histories. *)

module Obs = Arc_obs.Obs
module Ring = Arc_obs.Ring
module Stats = Arc_util.Stats
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module History = Arc_trace.History
module Registry = Arc_harness.Registry
module Config = Arc_harness.Config

(* --- cells and groups --- *)

let test_cell () =
  let c = Obs.Cell.create () in
  Alcotest.(check int) "fresh cell is zero" 0 (Obs.Cell.get c);
  Obs.Cell.incr c;
  Obs.Cell.incr c;
  Obs.Cell.add c 5;
  Alcotest.(check int) "incr/add accumulate" 7 (Obs.Cell.get c);
  (* The exposed representation is the API contract the register hot
     paths compile against — a direct field store must be equivalent
     to [incr]. *)
  c.Obs.Cell.v <- c.Obs.Cell.v + 1;
  Alcotest.(check int) "direct field store counts" 8 (Obs.Cell.get c);
  Obs.Cell.reset c;
  Alcotest.(check int) "reset zeroes" 0 (Obs.Cell.get c)

let test_group () =
  let g = Obs.Group.create ~name:"t_total" ~help:"h" 3 in
  Alcotest.(check int) "domains" 3 (Obs.Group.domains g);
  Alcotest.(check string) "name" "t_total" (Obs.Group.name g);
  Alcotest.(check string) "help" "h" (Obs.Group.help g);
  Obs.Cell.add (Obs.Group.cell g 0) 10;
  Obs.Cell.add (Obs.Group.cell g 2) 32;
  Alcotest.(check int) "value sums cells" 42 (Obs.Group.value g);
  Alcotest.(check (array int)) "per_domain" [| 10; 0; 32 |]
    (Obs.Group.per_domain g);
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Obs.Group.create: 0 cells (need >= 1)") (fun () ->
      ignore (Obs.Group.create ~name:"x" ~help:"" 0))

let test_outcomes () =
  let o = Obs.Outcomes.create () in
  Obs.Outcomes.ok o;
  Obs.Outcomes.ok o;
  Obs.Outcomes.ok o;
  Obs.Outcomes.stale o;
  Obs.Outcomes.exhausted o;
  Obs.Outcomes.error o;
  Obs.Outcomes.retry o;
  Obs.Outcomes.retry o;
  Alcotest.(check int) "ok" 3 (Obs.Outcomes.ok_count o);
  Alcotest.(check int) "stale" 1 (Obs.Outcomes.stale_count o);
  Alcotest.(check int) "exhausted" 1 (Obs.Outcomes.exhausted_count o);
  Alcotest.(check int) "error" 1 (Obs.Outcomes.error_count o);
  Alcotest.(check int) "retry" 2 (Obs.Outcomes.retry_count o);
  Alcotest.(check int) "total = ok + stale + exhausted" 5
    (Obs.Outcomes.total o);
  Alcotest.(check int) "degraded = stale + exhausted" 2
    (Obs.Outcomes.degraded o);
  Alcotest.(check (float 1e-9)) "degraded_rate" 0.4
    (Obs.Outcomes.degraded_rate o);
  (* The snapshot bridge must agree count-for-count with the
     merge-after-join Stats.Outcomes world. *)
  let s = Obs.Outcomes.snapshot o in
  Alcotest.(check int) "snapshot ok" 3 (Stats.Outcomes.ok_count s);
  Alcotest.(check int) "snapshot stale" 1 (Stats.Outcomes.stale_count s);
  Alcotest.(check int) "snapshot exhausted" 1
    (Stats.Outcomes.exhausted_count s);
  Alcotest.(check int) "snapshot error" 1 (Stats.Outcomes.error_count s);
  Alcotest.(check int) "snapshot retry" 2 (Stats.Outcomes.retry_count s);
  Alcotest.(check (float 1e-9)) "snapshot degraded_rate" 0.4
    (Stats.Outcomes.degraded_rate s)

(* --- trace ring --- *)

let test_ring_basic () =
  let r = Ring.create 5 in
  Alcotest.(check int) "capacity rounds up to a power of two" 8
    (Ring.capacity r);
  Alcotest.(check int) "fresh ring empty" 0 (Ring.recorded r);
  Alcotest.(check (list reject)) "fresh dump empty" [] (Ring.dump r);
  Ring.record r ~at:1 ~code:Ring.code_slot_claim 7 0 0;
  Ring.record r ~at:2 ~code:Ring.code_publish 7 1 0;
  let entries = Ring.dump r in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let e0 = List.nth entries 0 and e1 = List.nth entries 1 in
  Alcotest.(check int) "oldest first" 1 e0.Ring.at;
  Alcotest.(check int) "seq monotone" (e0.Ring.seq + 1) e1.Ring.seq;
  Alcotest.(check int) "operands kept" 7 e1.Ring.a;
  Alcotest.(check int) "code kept" Ring.code_publish e1.Ring.code;
  Ring.clear r;
  Alcotest.(check (list reject)) "clear empties" [] (Ring.dump r)

let test_ring_wrap () =
  let r = Ring.create 4 in
  for i = 1 to 11 do
    Ring.record r ~at:i ~code:Ring.code_reclaim i 0 0
  done;
  Alcotest.(check int) "recorded counts all" 11 (Ring.recorded r);
  let entries = Ring.dump r in
  Alcotest.(check int) "dump bounded by capacity" 4 (List.length entries);
  Alcotest.(check (list int)) "survivors are the most recent, oldest first"
    [ 8; 9; 10; 11 ]
    (List.map (fun e -> e.Ring.at) entries)

let test_ring_codes () =
  Alcotest.(check string) "known code" "slot_claim"
    (Ring.code_name Ring.code_slot_claim);
  Alcotest.(check string) "conviction code" "conviction"
    (Ring.code_name Ring.code_conviction);
  Alcotest.(check bool) "codes distinct" true
    (let codes =
       [
         Ring.code_slot_claim; Ring.code_publish; Ring.code_freeze;
         Ring.code_reclaim; Ring.code_realloc; Ring.code_recover;
         Ring.code_quarantine; Ring.code_breaker_trip; Ring.code_promote;
         Ring.code_conviction;
       ]
     in
     List.length (List.sort_uniq compare codes) = List.length codes)

(* --- exposition --- *)

let contains ~needle s =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  go 0

let count_occurrences ~needle s =
  let nl = String.length needle and sl = String.length s in
  let rec go i acc =
    if i + nl > sl then acc
    else if String.sub s i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_prometheus () =
  let ms =
    [
      Obs.counter ~labels:[ ("reader", "0") ] ~help:"Fast hits"
        "arc_reads_fast_total" 10;
      Obs.counter ~labels:[ ("reader", "1") ] ~help:"Fast hits"
        "arc_reads_fast_total" 20;
      Obs.gauge ~help:"Degradation" "arc_degraded_rate" 0.25;
    ]
  in
  let text = Obs.prometheus ms in
  Alcotest.(check int) "HELP once per family" 1
    (count_occurrences ~needle:"# HELP arc_reads_fast_total" text);
  Alcotest.(check int) "TYPE once per family" 1
    (count_occurrences ~needle:"# TYPE arc_reads_fast_total counter" text);
  Alcotest.(check int) "one sample per labeled series" 1
    (count_occurrences ~needle:"arc_reads_fast_total{reader=\"0\"} 10" text);
  Alcotest.(check bool) "gauge typed" true
    (contains ~needle:"# TYPE arc_degraded_rate gauge" text);
  Alcotest.(check bool) "trailing newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n')

let test_label_escaping () =
  let ms =
    [
      Obs.counter
        ~labels:[ ("path", "a\\b\"c\nd") ]
        ~help:"backslash \\ and\nnewline in help" "escape_total" 1;
    ]
  in
  let text = Obs.prometheus ms in
  Alcotest.(check bool) "label value escaped" true
    (contains ~needle:"path=\"a\\\\b\\\"c\\nd\"" text);
  Alcotest.(check bool) "help newline escaped" true
    (contains ~needle:"and\\nnewline" text);
  let j = Obs.json ms in
  (* JSON escapes the control character numerically. *)
  Alcotest.(check bool) "json string escaped" true
    (contains ~needle:"a\\\\b\\\"c\\u000ad" j)

let test_json () =
  let ms = [ Obs.counter ~labels:[ ("k", "v") ] "m_total" 3 ] in
  let j = Obs.json ms in
  Alcotest.(check bool) "array brackets" true
    (String.length j >= 2 && j.[0] = '[' && j.[String.length j - 1] = ']');
  Alcotest.(check bool) "name field" true
    (contains ~needle:"\"name\": \"m_total\"" j);
  Alcotest.(check bool) "value field" true (contains ~needle:"\"value\": 3" j);
  Alcotest.(check bool) "labels kept" true
    (contains ~needle:"\"k\": \"v\"" j)

(* --- the reign epoch gauge against the superblock word (ISSUE 9):
   the process-wide [arc_reign_epoch] gauge is fed by {!Reign.Config}'s
   bump, the durable truth lives in the mapping's config-epoch word —
   after any number of handoffs the two must agree exactly --- *)

module Shm = Arc_shm.Shm_mem

let test_reign_gauge_crosscheck () =
  Arc_fabric.Fabric.reset_reign_metrics ();
  let path = Filename.temp_file "arc_obs_reign" ".reg" in
  let m = Shm.create ~path ~words:(1 lsl 12) in
  Fun.protect
    ~finally:(fun () ->
      Shm.close m;
      (try Sys.remove path with Sys_error _ -> ());
      Arc_fabric.Fabric.reset_reign_metrics ())
    (fun () ->
      ignore (Shm.alloc_reign_table m ~shards:2);
      let module SM = (val Shm.mem m) in
      let module C = Arc_resilience.Reign.Config (SM) in
      let c = C.of_cell (Shm.config_epoch_cell m) in
      Alcotest.(check int) "first handoff's epoch" 2 (C.bump c);
      Alcotest.(check int) "second handoff's epoch" 3 (C.bump c);
      Alcotest.(check int) "superblock word through the mapping" 3
        (Shm.config_epoch m);
      let find name =
        List.find_opt
          (fun (mt : Obs.metric) -> mt.Obs.mname = name)
          (Arc_fabric.Fabric.reign_metrics ())
      in
      (match find "arc_reign_epoch" with
      | Some g ->
        Alcotest.(check bool) "gauge kind" true (g.Obs.mkind = Obs.Gauge);
        Alcotest.(check (float 0.0)) "gauge = superblock word" 3.0 g.Obs.value
      | None -> Alcotest.fail "arc_reign_epoch not exported");
      match find "arc_reign_handoffs_total" with
      | Some h ->
        Alcotest.(check (float 0.0)) "one handoff counted per bump" 2.0
          h.Obs.value
      | None -> Alcotest.fail "arc_reign_handoffs_total not exported")

(* --- the fast-path-hit accounting theorem, under the virtual
   scheduler with an independently counted substrate --- *)

module CM = Arc_mem.Counting.Make (Arc_vsched.Sim_mem)
module R = Arc_core.Arc.Make (CM)

let test_vsched_fast_path_accounting () =
  let readers = 3 in
  let reg = R.create ~readers ~capacity:8 ~init:[| 0; 0; 0; 0 |] in
  let tel = R.make_telemetry ~clock:Sched.now ~readers () in
  R.set_telemetry reg (Some tel);
  let total_writes = 150 and reads_per_reader = 300 in
  let reads_done = Array.make readers 0 in
  let writer () =
    let src = Array.make 4 0 in
    for k = 1 to total_writes do
      src.(0) <- k;
      R.write reg ~src ~len:4
    done
  in
  let reader i () =
    (* Handles are created inside the fiber, after telemetry attach,
       so the per-identity cells are resolved. *)
    let rd = R.reader reg i in
    for _ = 1 to reads_per_reader do
      R.read_with rd ~f:(fun _ _ -> ());
      reads_done.(i) <- reads_done.(i) + 1
    done
  in
  let fibers =
    Array.init (readers + 1) (fun i ->
        if i = 0 then writer else reader (i - 1))
  in
  (* Reset the substrate ledger after creation so the delta covers
     exactly the scheduled operations. *)
  CM.reset ();
  let strategy =
    Strategy.steal ~seed:7
      ~base:(Strategy.random ~seed:11)
      ~probability:0.2 ~min_pause:1 ~max_pause:40
  in
  let outcome = Sched.run ~strategy fibers in
  Alcotest.(check int) "all fibers completed" 0 outcome.Sched.unfinished;
  let total_reads = Array.fold_left ( + ) 0 reads_done in
  Alcotest.(check int) "all reads performed" (readers * reads_per_reader)
    total_reads;
  let fast = R.fast_reads tel and slow = R.slow_reads tel in
  (* The telemetry identity: every read is either an R2 fast hit or a
     slow R3+R4 subscription — so fast = reads - slow exactly. *)
  Alcotest.(check int) "fast-path hits = reads - slow reads"
    (total_reads - slow) fast;
  (* Cross-checked against the substrate's own RMW ledger: ARC's only
     RMWs are W2 (one per write) and R3+R4 (two per slow read). *)
  let counts = CM.counts () in
  Alcotest.(check int) "substrate rmw = writes + 2 * slow reads"
    (total_writes + (2 * slow))
    counts.Arc_mem.Mem_intf.rmw;
  (* The schedule was adversarial enough to exercise both paths. *)
  Alcotest.(check bool) "some fast hits" true (fast > 0);
  Alcotest.(check bool) "some slow reads" true (slow > 0)

(* --- telemetry is history-invariant --- *)

let event_to_tuple (e : History.event) =
  ( (match e.History.kind with History.Read -> 0 | History.Write -> 1),
    e.History.thread,
    e.History.seq,
    e.History.invoked,
    e.History.returned )

let run_pair name =
  let entry = Registry.find name in
  let cfg =
    {
      Config.default_sim with
      Config.sim_readers = 2;
      sim_size_words = 16;
      max_steps = 40_000;
      sim_workload = Config.Verify;
      sim_record = 8192;
    }
  in
  let plain = entry.Registry.run_sim ~strategy:(Strategy.random ~seed:5) cfg in
  let run_tel =
    match entry.Registry.run_sim_telemetry with
    | Some f -> f
    | None -> Alcotest.failf "%s has no telemetry runner" name
  in
  let with_tel, metrics = run_tel ~strategy:(Strategy.random ~seed:5) cfg in
  (plain, with_tel, metrics)

let check_same_history name =
  let plain, with_tel, metrics = run_pair name in
  Alcotest.(check int) "same reads" plain.Config.reads with_tel.Config.reads;
  Alcotest.(check int) "same writes" plain.Config.writes with_tel.Config.writes;
  Alcotest.(check int) "same torn" plain.Config.torn with_tel.Config.torn;
  Alcotest.(check (float 1e-9)) "same simulated duration"
    plain.Config.duration with_tel.Config.duration;
  let events r =
    match r.Config.history with
    | None -> Alcotest.failf "%s: no history recorded" name
    | Some h -> List.map event_to_tuple (History.events h)
  in
  Alcotest.(check (list (triple int int (triple int int int))))
    "identical operation history"
    (List.map (fun (a, b, c, d, e) -> (a, b, (c, d, e))) (events plain))
    (List.map (fun (a, b, c, d, e) -> (a, b, (c, d, e))) (events with_tel));
  (* ... while the instrumented run did observe something. *)
  Alcotest.(check bool) "telemetry metrics non-empty" true (metrics <> []);
  let total_of n =
    List.fold_left
      (fun acc (m : Obs.metric) ->
        if m.Obs.mname = n then acc +. m.Obs.value else acc)
      0. metrics
  in
  Alcotest.(check (float 1e-9)) "telemetry read accounting matches history"
    (float_of_int with_tel.Config.reads)
    (total_of "arc_reads_fast_total" +. total_of "arc_reads_slow_total")

let test_history_invariance_arc () = check_same_history "arc"
let test_history_invariance_dynamic () = check_same_history "arc-dynamic"

let suite =
  [
    Alcotest.test_case "cell: incr/add/reset and exposed word" `Quick test_cell;
    Alcotest.test_case "group: per-domain cells, sum, bounds" `Quick test_group;
    Alcotest.test_case "outcomes: counts and Stats bridge" `Quick test_outcomes;
    Alcotest.test_case "ring: record/dump/clear" `Quick test_ring_basic;
    Alcotest.test_case "ring: wrap keeps most recent" `Quick test_ring_wrap;
    Alcotest.test_case "ring: code vocabulary" `Quick test_ring_codes;
    Alcotest.test_case "prometheus: family grouping" `Quick test_prometheus;
    Alcotest.test_case "prometheus/json: escaping" `Quick test_label_escaping;
    Alcotest.test_case "json: shape" `Quick test_json;
    Alcotest.test_case "reign epoch gauge = superblock word" `Quick
      test_reign_gauge_crosscheck;
    Alcotest.test_case "vsched: fast hits = reads - RMW reads" `Quick
      test_vsched_fast_path_accounting;
    Alcotest.test_case "telemetry changes no history (arc)" `Quick
      test_history_invariance_arc;
    Alcotest.test_case "telemetry changes no history (arc-dynamic)" `Quick
      test_history_invariance_dynamic;
  ]

lib/vsched/replay.mli: Strategy

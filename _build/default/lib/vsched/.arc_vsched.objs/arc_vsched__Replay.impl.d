lib/vsched/replay.ml: Array Fun List Printf Strategy

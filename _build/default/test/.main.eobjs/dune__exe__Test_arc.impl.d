test/test_arc.ml: Alcotest Arc_core Arc_mem Arc_util Arc_workload Array Gen Hashtbl List Printf QCheck QCheck_alcotest

(* Payload stamping and validation: the torn-read detector must
   actually detect. *)

module Real = Arc_mem.Real_mem
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)
module Payload = Arc_workload.Payload

let check = Alcotest.(check int)

let buffer_of words =
  let b = Real.alloc (Array.length words) in
  Real.write_words b ~src:words ~len:(Array.length words);
  b

let test_stamp_roundtrip () =
  let src = Array.make 32 0 in
  P.stamp src ~seq:17 ~len:32;
  let b = buffer_of src in
  check "decode" 17 (P.decode_seq b);
  match P.validate b ~len:32 with
  | Ok seq -> check "validate" 17 seq
  | Error msg -> Alcotest.fail msg

let test_words_differ () =
  (* Every word must differ from every other, or cross-offset tears
     would go unnoticed. *)
  let src = Array.make 64 0 in
  P.stamp src ~seq:3 ~len:64;
  let tbl = Hashtbl.create 64 in
  Array.iter (fun w -> Hashtbl.replace tbl w ()) src;
  check "all words distinct" 64 (Hashtbl.length tbl)

let test_detects_mixed_writes () =
  let a = Array.make 16 0 and b = Array.make 16 0 in
  P.stamp a ~seq:1 ~len:16;
  P.stamp b ~seq:2 ~len:16;
  (* splice: words 0-7 from write 1, 8-15 from write 2 *)
  Array.blit b 8 a 8 8;
  (match P.validate (buffer_of a) ~len:16 with
  | Ok _ -> Alcotest.fail "torn snapshot accepted"
  | Error _ -> ());
  match P.validate_words a ~len:16 with
  | Ok _ -> Alcotest.fail "torn snapshot accepted (array)"
  | Error _ -> ()

let test_detects_single_word_corruption () =
  let a = Array.make 16 0 in
  P.stamp a ~seq:5 ~len:16;
  a.(11) <- a.(11) + 1;
  match P.validate (buffer_of a) ~len:16 with
  | Ok _ -> Alcotest.fail "corrupted word accepted"
  | Error msg ->
    Alcotest.(check bool) "message names the word" true
      (String.length msg > 0)

let test_detects_offset_shift () =
  (* The same write's words at the wrong offsets must fail. *)
  let a = Array.make 16 0 in
  P.stamp a ~seq:5 ~len:16;
  let shifted = Array.make 16 0 in
  Array.blit a 1 shifted 0 15;
  shifted.(15) <- a.(0);
  match P.validate_words shifted ~len:16 with
  | Ok _ -> Alcotest.fail "shifted snapshot accepted"
  | Error _ -> ()

let test_scan_touches_everything () =
  let src = Array.init 32 (fun i -> i) in
  let b = buffer_of src in
  check "sum" (31 * 32 / 2) (P.scan b ~len:32)

let test_validation_edges () =
  (match P.validate (Real.alloc 4) ~len:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty snapshot accepted");
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> P.stamp (Array.make 4 0) ~seq:(-1) ~len:4);
  raises (fun () -> P.stamp (Array.make 4 0) ~seq:1 ~len:5);
  raises (fun () -> P.stamp (Array.make 4 0) ~seq:1 ~len:0)

let test_paper_sizes () =
  check "4KB in words" 512 Payload.size_4kb;
  check "32KB in words" 4096 Payload.size_32kb;
  check "128KB in words" 16384 Payload.size_128kb;
  check "three paper sizes" 3 (List.length Payload.paper_sizes)

let prop_stamp_validate =
  QCheck.Test.make ~name:"stamp/validate roundtrip for all seqs and lengths"
    ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 128))
    (fun (seq, len) ->
      let src = Array.make len 0 in
      P.stamp src ~seq ~len;
      match P.validate_words src ~len with Ok s -> s = seq | Error _ -> false)

let prop_mixed_rejected =
  QCheck.Test.make ~name:"any two-write splice is rejected" ~count:300
    QCheck.(triple (int_bound 10_000) (int_bound 10_000) (int_range 1 31))
    (fun (s1, s2, cut) ->
      QCheck.assume (s1 <> s2);
      let a = Array.make 32 0 and b = Array.make 32 0 in
      P.stamp a ~seq:s1 ~len:32;
      P.stamp b ~seq:s2 ~len:32;
      Array.blit b cut a cut (32 - cut);
      match P.validate_words a ~len:32 with Ok _ -> false | Error _ -> true)

let suite =
  [
    Alcotest.test_case "stamp roundtrip" `Quick test_stamp_roundtrip;
    Alcotest.test_case "all words distinct" `Quick test_words_differ;
    Alcotest.test_case "detects mixed writes" `Quick test_detects_mixed_writes;
    Alcotest.test_case "detects word corruption" `Quick
      test_detects_single_word_corruption;
    Alcotest.test_case "detects offset shift" `Quick test_detects_offset_shift;
    Alcotest.test_case "scan" `Quick test_scan_touches_everything;
    Alcotest.test_case "validation edges" `Quick test_validation_edges;
    Alcotest.test_case "paper sizes" `Quick test_paper_sizes;
    QCheck_alcotest.to_alcotest prop_stamp_validate;
    QCheck_alcotest.to_alcotest prop_mixed_rejected;
  ]

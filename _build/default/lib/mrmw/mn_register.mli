(** (M,N) multi-writer register built from (1,N) registers — the
    paper's §1 motivation for optimizing (1,N) registers ("they
    constitute building blocks to realize more general (M,N)
    registers", citing Li–Tromp–Vitányi).

    Classic unbounded-timestamp construction: each writer owns one
    (1, M−1+N) sub-register (readable by every other writer and every
    reader) holding ⟨timestamp, writer-id, value⟩.

    - {b write} by writer [w]: collect the timestamps of all other
      sub-registers, pick [1 + max] (including [w]'s own last, kept
      locally), and publish ⟨ts, w, value⟩ in [w]'s sub-register —
      one collect plus one (1,N) write.
    - {b read}: collect all sub-registers, keeping the snapshot with
      the lexicographically largest ⟨timestamp, writer-id⟩.

    Wait-freedom is inherited from the underlying register (ARC), at
    O(M) operations per access.  Each snapshot carries a 2-word
    header, so capacity costs 2 extra words per sub-register. *)

module Make (_ : Arc_core.Register_intf.ALGORITHM) (_ : Arc_mem.Mem_intf.S) : sig
  type t
  type writer
  type reader

  val create : writers:int -> readers:int -> capacity:int -> init:int array -> t
  (** @raise Invalid_argument on non-positive counts/sizes or when the
      underlying algorithm cannot host [writers - 1 + readers]
      subscribers. *)

  val writer : t -> int -> writer
  (** Writer identity [i] in [0, writers); one thread per identity. *)

  val reader : t -> int -> reader
  (** Reader identity [i] in [0, readers); one thread per identity. *)

  val write : writer -> src:int array -> len:int -> unit

  val read_into : reader -> dst:int array -> int
  (** Copies the winning snapshot's value into [dst], returns its
      length. *)

  val last_timestamp : reader -> int
  (** Timestamp of the last snapshot returned by {!read_into} on this
      handle (0 before any read) — lets tests check timestamp
      monotonicity per reader. *)
end

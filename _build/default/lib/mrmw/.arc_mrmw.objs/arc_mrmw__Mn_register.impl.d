lib/mrmw/mn_register.ml: Arc_core Arc_mem Array Fun List Printf

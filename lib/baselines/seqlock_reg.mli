(** Sequence-lock register — an additional baseline beyond the paper's
    set, included as the canonical {e lock-free but not wait-free}
    point in the design space (DESIGN.md §5, ablation 4): writes are
    wait-free and cheap (no reader coordination at all), but a reader
    must retry whenever a write overlaps its copy, so a fast writer
    can starve readers indefinitely — the property separating
    lock-freedom from the wait-freedom ARC provides.

    Protocol: a version word is odd while the writer is copying;
    readers copy the buffer into a private scratch and accept the copy
    only if the version was even and unchanged around the copy. *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Arc_core.Register_intf.S with module Mem = M

  val retries : reader -> int
  (** Total failed validation attempts by this reader so far.  An
      out-of-range [size] word observed inside the validation window
      (torn or corrupted store) counts as a failed validation and is
      re-attempted — never silently clamped. *)

  (** Test-only white-box access, same discipline as
      {!Arc.Make.S.Debug}. *)
  module Debug : sig
    val force_size : t -> int -> unit
    (** Plant a raw size word (without touching the version), as a
        torn or corrupted store would leave it. *)

    val capacity : t -> int
  end
end

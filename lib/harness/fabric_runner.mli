(** Fabric snapshot campaign on the virtual scheduler (ISSUE 6).

    Writer fibers round-robin over their statically owned shards
    stamping per-shard sequence numbers; scanner fibers take
    cross-shard snapshots ({!Arc_fabric.Fabric.Make.snapshot}, or the
    collect-only negative control when [fab_atomic = false]), validate
    every shard word-by-word, and record one
    {!Arc_trace.Checker.snapshot_obs} per snapshot.  The returned
    per-shard write histories plus snapshot observations are exactly
    the input of {!Arc_trace.Checker.check_fabric} — apply it with
    {!check}. *)

type result = {
  fr_snapshots : int;  (** snapshots completed (direct + borrowed) *)
  fr_borrowed : int;  (** served from a writer's helping deposit *)
  fr_retries : int;  (** failed probe passes across all snapshots *)
  fr_deposits : int;  (** helping snapshots deposited by writers *)
  fr_writes : int;  (** shard writes published *)
  fr_torn : int;
      (** within-shard payload validation failures — zero even for the
          negative control (each shard value arrives through an atomic
          register read; the negative control's tear is cross-shard,
          visible only to the checker's window intersection) *)
  fr_steps : int;  (** simulated steps consumed *)
  fr_shard_writes : Arc_trace.History.t array;  (** per shard, seqs 1..k *)
  fr_snapshot_obs : Arc_trace.Checker.snapshot_obs list;
}

val check :
  result ->
  (Arc_trace.Checker.fabric_report, Arc_trace.Checker.fabric_violation) Stdlib.result
(** Judge the run: per-shard atomicity of every projected read plus
    cross-shard simultaneity of every snapshot vector. *)

module Make (_ : Arc_core.Register_intf.STAMPED) : sig
  val run : ?strategy:Arc_vsched.Strategy.t -> Config.fabric_sim -> result
  (** Default strategy: [Strategy.random ~seed:cfg.fab_seed].
      @raise Invalid_argument on nonsensical configurations. *)
end

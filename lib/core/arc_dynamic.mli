(** ARC with dynamic per-write buffer sizing — the §3.3 implementation
    note made concrete: "in any real implementation of our register
    algorithm, dynamic buffer allocation/release, with each buffer
    made up by the amount of bytes fitting the size of the register
    value to be stored upon write operations could be employed."

    Identical synchronization to {!Arc}; the only difference is buffer
    management: a write replaces the target slot's buffer with an
    exactly-sized fresh one when the new length exceeds the buffer or
    is under half of it (grow always, shrink with hysteresis).  This
    is safe precisely because the slot is free — no standing readers —
    when rewritten, and, an OCaml dividend, a reader still holding a
    view of the slot's {e previous} buffer keeps that buffer alive
    through the GC: the explicit reclamation a C implementation would
    need here comes for free.

    Worth its footprint when snapshot sizes vary wildly: N+2 buffers
    of the {e maximum} size become N+2 buffers near their actual
    sizes.  {!footprint_words} exposes the current total for the
    memory experiments. *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Register_intf.ZERO_COPY with module Mem = M
  (** [read_view]: zero-copy view, stable until this reader's next
      read, exactly as in {!Arc}. *)

  val footprint_words : t -> int
  (** Total words currently allocated across all slot buffers. *)

  val reallocations : t -> int
  (** Number of buffer replacements performed by writes so far. *)
end

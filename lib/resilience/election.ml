(* Term-voted writer election (ISSUE 7).

   The supervision layer's lease ({!Supervisor}) answers "has the
   leader failed?" — failure {e detection}.  It cannot answer "who
   takes over?": with several hot standbys, every one of them observes
   the same missed heartbeats and every one of them believes it should
   promote.  Failure {e arbitration} needs a shared, crash-surviving
   decision point.

   That decision point is one word: [term ∥ vote], packed by
   {!Arc_util.Term_vote} under the same discipline as the register's
   [current] word ({!Arc_util.Packed}), and manipulated {e only} by a
   seq-cst compare-and-set through the memory substrate.  A candidate
   reads the word, computes [succ_term ~candidate], and CASes.  CAS
   atomicity is the whole protocol: for any given observed state there
   is exactly one winning transition, so two candidates racing from a
   common snapshot cannot both win — this is Raft's "at most one
   leader per term" collapsed to a single instruction, which is all a
   single-machine, shared-memory deployment needs (no log comparison,
   no quorum: the word {e is} the quorum of one).

   Backed by a heap cell ([atomic_contended]) the election arbitrates
   between domains of one process; backed by the shm superblock's
   election word ({!Arc_shm.Shm_mem.election_cell}) it arbitrates
   between OS processes and survives kill-9 — exactly as the epoch
   fence does with [epoch_cell].

   Winning the vote does not make it safe to write; it makes it safe
   to {e fence}.  [campaign] orders the takeover as

     vote CAS  →  prefence  →  takeover (recovery)  →  issue

   Fence-after-vote is safe because epoch bumps are serialized by the
   vote: only the unique winner of a term prefences, so the epoch
   advances in term order and a prefence can never revoke a {e newer}
   winner's handle.  Prefencing {e before} takeover closes the zombie
   window: the deposed leader is convictable from the instant the
   successor exists in any capacity, while the wreckage is still being
   inspected.  [issue] comes last because recovery paths of shared
   mappings ({!Arc_shm.Shm_mem.recover}) bump the same epoch cell —
   issuing earlier would fence the winner's own fresh handle. *)

module Term_vote = Arc_util.Term_vote
module Obs = Arc_obs.Obs

(* Process-cumulative election telemetry, across every [Make]
   instantiation (same pattern as {!Arc_shm.Shm_mem}'s recovery
   counters).  Election steps run on whichever thread campaigns;
   campaigns are serialized per process by construction (a process
   fields one candidate), keeping the single-writer cell discipline. *)
module Tel = struct
  let terms_started = Obs.Cell.create ()
  let votes_granted = Obs.Cell.create ()
  let elections_won = Obs.Cell.create ()
end

let metrics () =
  [
    Obs.counter "arc_election_terms_started_total"
      ~help:"Vote attempts: terms a local candidate tried to open"
      (Obs.Cell.get Tel.terms_started);
    Obs.counter "arc_election_votes_granted_total"
      ~help:"Vote CASes that succeeded (terms won locally)"
      (Obs.Cell.get Tel.votes_granted);
    Obs.counter "arc_election_elections_won_total"
      ~help:"Elections completed through takeover to an issued writer"
      (Obs.Cell.get Tel.elections_won);
    Obs.counter "arc_election_zombie_fences_total"
      ~help:"Writes by deposed leaders aborted by the epoch fence"
      (Obs.Cell.get Fenced.zombie_fences);
  ]

let reset_metrics () =
  List.iter Obs.Cell.reset
    [ Tel.terms_started; Tel.votes_granted; Tel.elections_won; Fenced.zombie_fences ]

module Make (R : Arc_core.Register_intf.FENCEABLE) = struct
  module M = R.Mem
  module Fenced_reg = Fenced.Make (R)

  type t = {
    word : M.atomic;  (* [term ∥ vote]; CAS-only *)
    candidate : int;
    freg : Fenced_reg.t;
  }

  let create ?word ~candidate freg =
    if candidate < 0 || candidate > Term_vote.max_candidate then
      invalid_arg
        (Printf.sprintf "Election.create: candidate %d out of range [0, %d]"
           candidate Term_vote.max_candidate);
    let word =
      match word with Some w -> w | None -> M.atomic_contended Term_vote.none
    in
    { word; candidate; freg }

  let fenced t = t.freg
  let candidate t = t.candidate

  let observe t = M.load t.word
  let term t = Term_vote.term (observe t)
  let leader t = Term_vote.vote (observe t)

  (* The bare arbitration step: try to open the term after [from] with
     this candidate's name on it.  Returns the term now held on
     success.  [?from] lets a harness make several candidates race
     from a {e common} snapshot — the exactly-one-winner guarantee is
     per observed state, so candidates that each re-read the word
     could win consecutive terms instead of racing for one. *)
  let request_vote ?from t =
    let from = match from with Some w -> w | None -> M.load t.word in
    let next = Term_vote.succ_term from ~candidate:t.candidate in
    Obs.Cell.incr Tel.terms_started;
    if M.compare_and_set t.word from next then begin
      Obs.Cell.incr Tel.votes_granted;
      Some (Term_vote.term next)
    end
    else None

  type outcome =
    | Won of {
        writer : Fenced_reg.writer;  (* issued after fence + takeover *)
        term : int;  (* the term this writer reigns under *)
        recovered : int;  (* whatever [takeover] reported (e.g. convictions) *)
      }
    | Lost of {
        term : int;  (* term observed after losing *)
        winner : int option;  (* who holds it, if anyone *)
      }

  (* vote → prefence → takeover → issue; see the header for why this
     order is the safe one.  [takeover] runs with every pre-election
     handle already fenced and no handle of its own extant — the one
     moment inspection of the dead leader's state cannot race a
     publish from either side. *)
  let campaign ?from ?(takeover = fun () -> 0) t =
    match request_vote ?from t with
    | Some term ->
      Fenced_reg.prefence t.freg;
      let recovered = takeover () in
      let writer = Fenced_reg.issue t.freg in
      Obs.Cell.incr Tel.elections_won;
      Won { writer; term; recovered }
    | None ->
      let now = M.load t.word in
      Lost { term = Term_vote.term now; winner = Term_vote.vote now }
end

(* The perf-gate decision logic (ISSUE 10 satellite): the gate against
   an empty or missing trajectory used to pass silently — these are
   the regressions that keep it honest.  The logic is pure
   (lib/gate), so the tests feed it bench-file strings directly. *)

module G = Arc_gate.Gate

let bench ?(plain = 6.5) ?(join = 120.) () =
  Printf.sprintf
    "{\n\
    \  \"telemetry\": {\n\
    \    \"read_hit_ns_off\": 9.10,\n\
    \    \"read_hit_ns_on\": 9.30,\n\
    \    \"overhead_pct\": 2.20,\n\
    \    \"read_plain_ns\": %.2f,\n\
    \    \"reader_join_p99_ns\": %.2f\n\
    \  }\n\
     }"
    plain join

let scaling =
  "{ \"hw_cores\": 4, \"read_hit_ns@2\": 10.0, \"read_plain_ns@2\": 6.0,\n\
  \  \"read_hit_ns@4\": 11.0, \"read_plain_ns@4\": 7.0,\n\
  \  \"results\": [{\"cores\": 2, \"read_hit_ns\": 10.0}] }"

let evaluate ?fabric ?scaling ?prior ?(ceiling = 9.8) b =
  match
    G.evaluate ~bench:b ?fabric ?scaling ?prior ~threshold:20. ~ceiling
      ~label:"test" ~date:"2026-01-01T00:00:00Z" ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "evaluate failed: %s" e

let count p r = List.length (List.filter p r.G.verdicts)
let is_regression = function G.Regression _ -> true | _ -> false
let is_within = function G.Within _ -> true | _ -> false
let is_seed = function G.Baseline_recorded _ -> true | _ -> false

let test_empty_trajectory_is_not_green () =
  (* No prior entry: every metric seeds, nothing is compared, and the
     report says so — the caller must exit non-zero on [seeded]. *)
  let r = evaluate (bench ()) in
  Alcotest.(check bool) "seeded" true r.G.seeded;
  Alcotest.(check int) "nothing compared" 0 r.G.compared;
  Alcotest.(check int) "no failures either" 0 r.G.failures;
  Alcotest.(check bool) "all metrics recorded as baselines" true
    (count is_seed r >= 3);
  Alcotest.(check bool) "entry carries the label" true
    (G.field_of ~key:"read_hit_ns_off" r.G.entry = Some 9.1)

let test_prior_entry_arms_the_gate () =
  let prior =
    "{\"date\": \"x\", \"label\": \"prev\", \"read_hit_ns_off\": 9.00, \
     \"read_plain_ns\": 6.40, \"reader_join_p99_ns\": 118.00}"
  in
  let r = evaluate ~prior (bench ()) in
  Alcotest.(check bool) "not seeded" false r.G.seeded;
  Alcotest.(check int) "three trajectory comparisons" 3 r.G.compared;
  Alcotest.(check int) "all within threshold" 0 r.G.failures;
  Alcotest.(check bool) "within verdicts" true (count is_within r = 3)

let test_regression_detected () =
  let prior = "{\"read_hit_ns_off\": 6.00}" in
  let r = evaluate ~prior (bench ()) in
  (* 9.10 against 6.00 + 20% = 7.20: regression. *)
  Alcotest.(check int) "one failure" 1 r.G.failures;
  Alcotest.(check bool) "a regression verdict" true (count is_regression r = 1)

let test_plain_ceiling_enforced () =
  (* The R2' plain read must stay under the absolute ceiling even when
     the trajectory agrees with it (drift-only gates would let the
     fast path erode one threshold at a time). *)
  let prior = "{\"read_plain_ns\": 11.90}" in
  let r = evaluate ~prior (bench ~plain:12.0 ()) in
  Alcotest.(check int) "ceiling violation" 1 r.G.failures;
  Alcotest.(check bool) "ceiling verdict" true
    (count (function G.Ceiling_exceeded _ -> true | _ -> false) r = 1);
  let ok = evaluate ~prior:"{\"read_plain_ns\": 6.40}" (bench ()) in
  Alcotest.(check bool) "under ceiling passes" true
    (count (function G.Ceiling_ok _ -> true | _ -> false) ok = 1)

let test_scaling_keys_discovered_and_gated () =
  let r = evaluate ~scaling (bench ()) in
  (* Discovery: every read_hit_ns@N / read_plain_ns@N key is tracked
     (and lands in the entry); the nested results array must not
     contribute keys. *)
  Alcotest.(check (list string)) "hit keys" [ "read_hit_ns@2"; "read_hit_ns@4" ]
    (G.keys_with_prefix ~prefix:"read_hit_ns@" scaling);
  Alcotest.(check (option (float 0.001))) "scaling key in entry" (Some 10.0)
    (G.field_of ~key:"read_hit_ns@2" r.G.entry);
  let prior = "{\"read_hit_ns@2\": 5.0, \"read_plain_ns@2\": 6.1}" in
  let armed = evaluate ~scaling ~prior (bench ()) in
  (* @2 hit regressed (10.0 vs 5.0+20%); @2 plain within; @4 seeds. *)
  Alcotest.(check bool) "per-core regression caught" true
    (armed.G.failures >= 1 && count is_regression armed >= 1);
  Alcotest.(check bool) "per-core within counted" true (armed.G.compared >= 2)

let test_malformed_inputs_rejected () =
  (match
     G.evaluate ~bench:"{}" ~threshold:20. ~label:"x" ~date:"d" ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bench without required fields must be rejected");
  match
    G.evaluate ~bench:(bench ()) ~fabric:"{}" ~threshold:20. ~label:"x" ~date:"d" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fabric file without snapshot_ns_per_shard must be rejected"

let suite =
  [
    Alcotest.test_case "empty trajectory is not green" `Quick
      test_empty_trajectory_is_not_green;
    Alcotest.test_case "prior entry arms the gate" `Quick
      test_prior_entry_arms_the_gate;
    Alcotest.test_case "regression detected" `Quick test_regression_detected;
    Alcotest.test_case "plain-read ceiling" `Quick test_plain_ceiling_enforced;
    Alcotest.test_case "scaling keys discovered" `Quick
      test_scaling_keys_discovered_and_gated;
    Alcotest.test_case "malformed inputs rejected" `Quick
      test_malformed_inputs_rejected;
  ]

let algorithm = "simpson"

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type slot = { size : M.atomic; content : M.buffer }

  type t = {
    data : slot array array;  (* 2 pairs × 2 slots *)
    slot_of : M.atomic array;  (* per pair: which slot holds its freshest value *)
    latest : M.atomic;  (* pair holding the most recent write *)
    reading : M.atomic;  (* pair the reader announced *)
  }

  type reader = t

  let algorithm = algorithm

  let caps =
    {
      Arc_core.Register_intf.wait_free = true;
      zero_copy = true (* the callback runs on the claimed slot *);
      max_readers = (fun ~capacity_words:_ -> Some 1);
      snapshot_read = false;
    }

  let create ~readers ~capacity ~init =
    if readers <> 1 then
      invalid_arg "Simpson_reg.create: a four-slot register has exactly one reader";
    if capacity < 1 then invalid_arg "Simpson_reg.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Simpson_reg.create: init too long";
    let fresh () = { size = M.atomic 0; content = M.alloc capacity } in
    let reg =
      {
        data = Array.init 2 (fun _ -> Array.init 2 (fun _ -> fresh ()));
        (* The four control words mediate the entire reader/writer
           handshake; keep each off the others' cache lines. *)
        slot_of = [| M.atomic_contended 0; M.atomic_contended 0 |];
        latest = M.atomic_contended 0;
        reading = M.atomic_contended 0;
      }
    in
    (* Every slot starts with the initial value, so any interleaving
       of the very first operations reads something well-formed. *)
    Array.iter
      (fun pair ->
        Array.iter
          (fun s ->
            M.write_words s.content ~src:init ~len:(Array.length init);
            M.store s.size (Array.length init))
          pair)
      reg.data;
    reg

  let reader reg i =
    if i <> 0 then invalid_arg "Simpson_reg.reader: identity out of range";
    reg

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Simpson_reg.write: bad length";
    let pair = 1 - M.load reg.reading in
    let index = 1 - M.load reg.slot_of.(pair) in
    let s = reg.data.(pair).(index) in
    if len > M.capacity s.content then invalid_arg "Simpson_reg.write: exceeds capacity";
    M.write_words s.content ~src ~len;
    M.store s.size len;
    M.store reg.slot_of.(pair) index;
    M.store reg.latest pair

  let read_with reg ~f =
    let pair = M.load reg.latest in
    M.store reg.reading pair;
    let index = M.load reg.slot_of.(pair) in
    let s = reg.data.(pair).(index) in
    f s.content (M.load s.size)

  let read_into reg ~dst =
    read_with reg ~f:(fun buffer len ->
        if Array.length dst < len then
          invalid_arg "Simpson_reg.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)
end

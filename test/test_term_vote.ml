(* The [term ∥ vote] packing the writer election CASes on
   (Arc_util.Term_vote) — field roundtrips, the boundaries at maximum
   term / maximum candidate, overflow refusal, and a real seq-cst CAS
   roundtrip through a memory substrate (the word is only ever
   manipulated that way in production). *)

module TV = Arc_util.Term_vote
module M = Arc_mem.Real_mem

let check = Alcotest.(check int)

let test_layout () =
  check "vote field is 31 bits" 31 TV.vote_bits;
  check "term takes the rest of the native int" (Sys.int_size - 31) TV.term_bits;
  check "max_candidate leaves room for the none encoding"
    ((1 lsl 31) - 2) TV.max_candidate;
  check "fresh word is all-zero" 0 TV.none

let test_roundtrip_simple () =
  let w = TV.make ~term:5 ~vote:(Some 17) in
  check "term" 5 (TV.term w);
  Alcotest.(check (option int)) "vote" (Some 17) (TV.vote w);
  let v = TV.make ~term:5 ~vote:None in
  Alcotest.(check (option int)) "open term has no vote" None (TV.vote v)

let test_boundaries () =
  (* Max term, max candidate: the word must still roundtrip exactly —
     a carry out of the vote field would silently change the term. *)
  let w = TV.make ~term:TV.max_term ~vote:(Some TV.max_candidate) in
  check "max term" TV.max_term (TV.term w);
  Alcotest.(check (option int)) "max candidate" (Some TV.max_candidate) (TV.vote w);
  let z = TV.make ~term:0 ~vote:None in
  check "zero word is none" TV.none z

let test_succ_term () =
  let w = TV.make ~term:3 ~vote:(Some 9) in
  let w' = TV.succ_term w ~candidate:1 in
  check "term advanced" 4 (TV.term w');
  Alcotest.(check (option int)) "vote renamed to the candidate" (Some 1)
    (TV.vote w');
  (* From a fresh word, the first election opens term 1. *)
  let first = TV.succ_term TV.none ~candidate:0 in
  check "first term" 1 (TV.term first);
  Alcotest.(check (option int)) "first winner" (Some 0) (TV.vote first)

let test_succ_term_overflow_guard () =
  let last = TV.make ~term:TV.max_term ~vote:(Some 2) in
  match TV.succ_term last ~candidate:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "term past max_term must refuse"

let test_field_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> TV.make ~term:(-1) ~vote:None);
  raises (fun () -> TV.make ~term:(TV.max_term + 1) ~vote:None);
  raises (fun () -> TV.make ~term:0 ~vote:(Some (-1)));
  raises (fun () -> TV.make ~term:0 ~vote:(Some (TV.max_candidate + 1)))

(* The word in production: a shared atomic manipulated only by CAS.
   Check the exactly-one-winner argument at the substrate level, at the
   extreme encodings too — the CAS compares raw words, so the packing
   must be injective there. *)
let cas_roundtrip ~term ~candidate =
  let a = M.atomic_contended (TV.make ~term ~vote:None) in
  let from = M.load a in
  let next = TV.succ_term from ~candidate in
  Alcotest.(check bool) "first CAS wins" true (M.compare_and_set a from next);
  Alcotest.(check bool) "second CAS from the same snapshot loses" false
    (M.compare_and_set a from (TV.succ_term from ~candidate:0));
  let now = M.load a in
  check "term readback" (term + 1) (TV.term now);
  Alcotest.(check (option int)) "vote readback" (Some candidate) (TV.vote now)

let test_cas_roundtrip () = cas_roundtrip ~term:7 ~candidate:3

let test_cas_roundtrip_boundary () =
  cas_roundtrip ~term:(TV.max_term - 1) ~candidate:TV.max_candidate

let test_to_string () =
  let s = TV.to_string (TV.make ~term:12 ~vote:(Some 4)) in
  Alcotest.(check bool) "mentions the term" true
    (String.length s > 0
    && String.length (String.concat "" (String.split_on_char '1' s))
       < String.length s)

let prop_roundtrip =
  QCheck.Test.make ~name:"term_vote roundtrip for arbitrary fields" ~count:1000
    QCheck.(pair (int_bound TV.max_term) (int_bound (TV.max_candidate + 1)))
    (fun (term, v) ->
      let vote = if v > TV.max_candidate then None else Some v in
      let w = TV.make ~term ~vote in
      TV.term w = term && TV.vote w = vote)

(* {1 Through the shm substrate (ISSUE 9)}

   In a fabric the word no longer lives at a fixed superblock index but
   at computed reign-table offsets — one election word per shard.  The
   packing must survive THAT path too: stored through the mapping's
   atomic substrate at [shard_election_cell], read back field-exact,
   and a CAS on shard [s] must leave shard [s±1]'s word untouched. *)

module Shm = Arc_shm.Shm_mem

let with_reign_table ~shards f =
  let path = Filename.temp_file "arc_tv_shm" ".reg" in
  let m = Shm.create ~path ~words:(1 lsl 12) in
  Fun.protect
    ~finally:(fun () ->
      Shm.close m;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (Shm.alloc_reign_table m ~shards);
      f m)

let test_shm_indexed_cas () =
  with_reign_table ~shards:3 (fun m ->
      let module SM = (val Shm.mem m) in
      for shard = 0 to 2 do
        let cell = Shm.shard_election_cell m ~shard in
        let from = SM.load cell in
        check "every shard's word starts at none" TV.none from;
        let next = TV.succ_term from ~candidate:shard in
        Alcotest.(check bool) "CAS at the computed offset lands" true
          (SM.compare_and_set cell from next)
      done;
      for shard = 0 to 2 do
        let w = Shm.shard_election m ~shard in
        check "term readback through the accessor" 1 (TV.term w);
        Alcotest.(check (option int)) "each shard kept its own winner"
          (Some shard) (TV.vote w)
      done)

let test_shm_indexed_boundary () =
  with_reign_table ~shards:2 (fun m ->
      let module SM = (val Shm.mem m) in
      let cell = Shm.shard_election_cell m ~shard:1 in
      let w = TV.make ~term:TV.max_term ~vote:(Some TV.max_candidate) in
      SM.store cell w;
      let back = Shm.shard_election m ~shard:1 in
      check "max term survives the mapping roundtrip" TV.max_term (TV.term back);
      Alcotest.(check (option int)) "max candidate survives"
        (Some TV.max_candidate) (TV.vote back);
      check "shard 0's word is untouched" TV.none (Shm.shard_election m ~shard:0))

(* A fresh 3-shard table per case — small enough (a few pages) that
   the isolation is worth the mmap churn. *)
let prop_shm_roundtrip =
  QCheck.Test.make ~name:"term_vote roundtrip through reign-table offsets"
    ~count:300
    QCheck.(
      triple (int_bound 2) (int_bound TV.max_term) (int_bound (TV.max_candidate + 1)))
    (fun (shard, term, v) ->
      with_reign_table ~shards:3 (fun m ->
          let module SM = (val Shm.mem m) in
          let vote = if v > TV.max_candidate then None else Some v in
          SM.store (Shm.shard_election_cell m ~shard) (TV.make ~term ~vote);
          let back = Shm.shard_election m ~shard in
          TV.term back = term
          && TV.vote back = vote
          && List.for_all
               (fun s -> s = shard || Shm.shard_election m ~shard:s = TV.none)
               [ 0; 1; 2 ]))

let suite =
  [
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "boundaries" `Quick test_boundaries;
    Alcotest.test_case "succ_term" `Quick test_succ_term;
    Alcotest.test_case "succ_term overflow guard" `Quick
      test_succ_term_overflow_guard;
    Alcotest.test_case "field validation" `Quick test_field_validation;
    Alcotest.test_case "CAS roundtrip" `Quick test_cas_roundtrip;
    Alcotest.test_case "CAS roundtrip at the boundary" `Quick
      test_cas_roundtrip_boundary;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "CAS at reign-table offsets" `Quick test_shm_indexed_cas;
    Alcotest.test_case "boundary word through the mapping" `Quick
      test_shm_indexed_boundary;
    QCheck_alcotest.to_alcotest prop_shm_roundtrip;
  ]

(** Fault-injecting memory substrate: wraps any {!Arc_mem.Mem_intf.S}
    instance and applies a {!Fault_plan.t} to the shared-memory
    accesses flowing through it, addressed by (fiber, per-class access
    index).  Register algorithms run under faults {e unmodified} —
    they are functors over the memory signature, and this is just one
    more instance.

    Intended use (see {!Campaign}): instantiate over
    {!Arc_vsched.Sim_mem}, [install] a plan, run a scenario on the
    virtual scheduler, then [drain] the injection statistics.  Faults
    only fire for accesses made from inside scheduler fibers; setup
    code (register creation) runs fault-free.

    Crash-stop is delivered by raising {!Fault_plan.Crashed} out of
    the faulted access; the harness must catch it at the fiber's top
    level.  Stalls call {!Arc_vsched.Sched.sleep}.  [Drop] skips only
    unit-returning accesses (stores, [incr]); value-returning accesses
    proceed normally under [Drop].  [Tear] applies to bulk copies:
    the first [at_word] words are copied, then the fiber either
    crashes ([silent:false]) or the operation silently reports
    success ([silent:true] — the unsound negative-control variant). *)

type stats = {
  crashes : (int * int) list;  (** (fiber, total-access index at crash) *)
  tears : (int * int) list;  (** (fiber, words completed before the tear) *)
  stalls : int;
  drops : int;
  cas_lies : int;  (** compare-and-sets that reported success untruthfully *)
}

val zero_stats : stats

module Make (M : Arc_mem.Mem_intf.S) : sig
  include
    Arc_mem.Mem_intf.S with type atomic = M.atomic and type buffer = M.buffer

  val install : Fault_plan.t -> unit
  (** Arm the injector: resets all per-fiber counters and statistics.
      Call before each scenario run. *)

  val drain : unit -> stats
  (** Disarm and return what fired.  Also clears state, so a
      forgotten [install] leaves the instance fault-free. *)

  val set_ambient_fiber : int option -> unit
  (** Fault identity for accesses made {e outside} any vsched fiber
      (a real OS process): [Some f] makes such accesses count — and
      fire plan events — as fiber [f]; [None] (the default) restores
      the original behaviour of leaving them fault-free.  For
      real-process negative controls (the crash campaign's split-vote
      arm); plans used under an ambient fiber must not contain
      [Stall] events, which need a scheduler to sleep on. *)
end

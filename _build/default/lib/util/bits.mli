(** Bit-manipulation helpers used by the RF (Readers-Field) baseline,
    which keeps a per-reader trace bit inside a single machine word
    (Larsson et al., JEA 2009). *)

val popcount : int -> int
(** Number of set bits (treating the int as [Sys.int_size] bits). *)

val lowest_set : int -> int
(** Index of the least-significant set bit.
    @raise Invalid_argument on 0. *)

val iter_set : (int -> unit) -> int -> unit
(** [iter_set f w] applies [f] to the index of every set bit of [w],
    in increasing order. *)

val fold_set : ('a -> int -> 'a) -> 'a -> int -> 'a
(** Left fold over set-bit indices in increasing order. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [2^k >= n].
    @raise Invalid_argument if [n <= 0]. *)

val mask : int -> int
(** [mask k] is [2^k - 1]; [mask 0 = 0].
    @raise Invalid_argument if [k] is negative or [>= Sys.int_size]. *)

val test : int -> int -> bool
(** [test w i] is whether bit [i] of [w] is set. *)

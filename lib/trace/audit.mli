(** Operation-latency audit over recorded histories.

    An operation's recorded duration is its {e response time} on the
    history's clock (simulated steps, or nanoseconds for real runs) —
    own work plus time spent descheduled.  Under a fair scheduler
    with [n] fibers a wait-free operation's response time is bounded
    by (own steps) × n plus injected pauses, so it separates cleanly
    from blocking algorithms, whose readers inherit the writer's
    delays unboundedly (the Fig. 2/3 mechanism).  Tests assert such
    bounds; experiments report the tails. *)

type op_stats = {
  count : int;
  max_duration : int;
  mean_duration : float;
  p99_duration : float;
  p999_duration : float;
      (** the soak-triage tail: one stuck retry in 10^3 reads shows
          here long before it moves p99 *)
}

val pp_op_stats : Format.formatter -> op_stats -> unit

type t = { reads : op_stats; writes : op_stats }

val of_history : History.t -> t
(** Empty classes yield zeroed stats. *)

val bounded : History.t -> kind:History.kind -> bound:int -> (unit, History.event) result
(** [Ok] if every operation of [kind] lasted at most [bound] clock
    units; otherwise the worst offender. *)

type t = {
  title : string;
  x_label : string;
  mutable names : string list;  (* insertion order *)
  points : (string * float, float) Hashtbl.t;
  mutable xs : float list;
}

let create ~title ~x_label =
  { title; x_label; names = []; points = Hashtbl.create 64; xs = [] }

let add t ~series ~x ~y =
  if not (List.mem series t.names) then t.names <- t.names @ [ series ];
  if not (List.mem x t.xs) then t.xs <- t.xs @ [ x ];
  Hashtbl.replace t.points (series, x) y

let series_names t = t.names

let sorted_xs t = List.sort compare t.xs

let format_x x =
  if Float.is_integer x then string_of_int (int_of_float x)
  else Printf.sprintf "%.3g" x

let to_table t =
  let table = Table.create ~title:t.title ~columns:(t.x_label :: t.names) in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun name ->
            match Hashtbl.find_opt t.points (name, x) with
            | Some y -> Printf.sprintf "%.4g" y
            | None -> "-")
          t.names
      in
      Table.add_row table (format_x x :: cells))
    (sorted_xs t);
  table

let render_chart ?(width = 50) ?(log_y = true) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (t.title ^ "\n");
  let values = Hashtbl.fold (fun _ y acc -> y :: acc) t.points [] in
  match values with
  | [] -> Buffer.contents buf
  | _ ->
    let transform y = if log_y then log (max y 1e-12) else y in
    let lo = List.fold_left min infinity (List.map transform values) in
    let hi = List.fold_left max neg_infinity (List.map transform values) in
    let span = if hi -. lo < 1e-9 then 1. else hi -. lo in
    let label_width =
      List.fold_left (fun acc n -> max acc (String.length n)) 0 t.names
    in
    List.iter
      (fun x ->
        Buffer.add_string buf (Printf.sprintf "%s = %s\n" t.x_label (format_x x));
        List.iter
          (fun name ->
            match Hashtbl.find_opt t.points (name, x) with
            | None -> ()
            | Some y ->
              let frac = (transform y -. lo) /. span in
              let bar = int_of_float (frac *. float_of_int width) in
              Buffer.add_string buf
                (Printf.sprintf "  %-*s |%s %.4g\n" label_width name
                   (String.make (max bar 0) '#')
                   y))
          t.names)
      (sorted_xs t);
    Buffer.contents buf

let to_csv t = Table.to_csv (to_table t)

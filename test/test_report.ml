(* Table / series rendering used by the experiment CLI. *)

module Table = Arc_report.Table
module Series = Arc_report.Series

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "x"; "y" ] in
  Table.add_row t [ "1"; "alpha" ];
  Table.add_row t [ "22"; "b" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "title + header + rule + 2 rows + trailing" 6
    (List.length lines);
  (* Rows render in insertion order. *)
  let row1 = List.nth lines 3 and row2 = List.nth lines 4 in
  Alcotest.(check bool) "order kept" true
    (String.starts_with ~prefix:"1 " row1 && String.starts_with ~prefix:"22" row2)

let test_table_width_check () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  match Table.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch accepted"

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "x,y" ];
  Table.add_row t [ "2"; "say \"hi\"" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv quoting"
    "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n" csv

let test_float_rows () =
  let t = Table.create ~title:"t" ~columns:[ "algo"; "v1"; "v2" ] in
  Table.add_float_row t ~label:"arc" [ 1.5; 2.25e6 ];
  Alcotest.(check int) "row added" 1 (Table.rows t)

let test_series_table () =
  let s = Series.create ~title:"fig" ~x_label:"threads" in
  Series.add s ~series:"arc" ~x:2. ~y:100.;
  Series.add s ~series:"rf" ~x:2. ~y:50.;
  Series.add s ~series:"arc" ~x:4. ~y:200.;
  Alcotest.(check (list string)) "series names in insertion order" [ "arc"; "rf" ]
    (Series.series_names s);
  let table = Series.to_table s in
  Alcotest.(check int) "one row per x" 2 (Table.rows table);
  let csv = Series.to_csv s in
  Alcotest.(check bool) "missing point dashed" true
    (String.length csv > 0
    && List.exists
         (fun line -> String.ends_with ~suffix:",-" line)
         (String.split_on_char '\n' csv))

let test_series_chart () =
  let s = Series.create ~title:"fig" ~x_label:"threads" in
  Series.add s ~series:"arc" ~x:2. ~y:1000.;
  Series.add s ~series:"lock" ~x:2. ~y:10.;
  let chart = Series.render_chart ~width:20 s in
  Alcotest.(check bool) "both series plotted" true
    (String.length chart > 0
    && String.split_on_char '\n' chart |> List.length > 3);
  (* larger value gets the longer bar *)
  let bar name =
    String.split_on_char '\n' chart
    |> List.find_opt (fun l ->
           String.length l > 2
           && String.trim l <> ""
           && String.starts_with ~prefix:("  " ^ name) l)
    |> Option.map (fun l ->
           String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l)
  in
  match (bar "arc", bar "lock") with
  | Some a, Some l ->
    Alcotest.(check bool) (Printf.sprintf "arc bar %d > lock bar %d" a l) true (a > l)
  | _ -> Alcotest.fail "bars not found"

let test_chart_empty () =
  let s = Series.create ~title:"empty" ~x_label:"x" in
  Alcotest.(check bool) "no crash on empty" true
    (String.length (Series.render_chart s) > 0)

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table width check" `Quick test_table_width_check;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "float rows" `Quick test_float_rows;
    Alcotest.test_case "series table" `Quick test_series_table;
    Alcotest.test_case "series chart" `Quick test_series_chart;
    Alcotest.test_case "chart empty" `Quick test_chart_empty;
  ]

(* --- markdown rendering ---------------------------------------------- *)

let test_markdown_table () =
  let t = Table.create ~title:"m" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "x|y" ];
  let md = Arc_report.Markdown.of_table t in
  let lines = String.split_on_char '\n' md in
  Alcotest.(check bool) "title bold" true (List.exists (( = ) "**m**") lines);
  Alcotest.(check bool) "header row" true (List.exists (( = ) "| a | b |") lines);
  Alcotest.(check bool) "rule row" true (List.exists (( = ) "| --- | --- |") lines);
  Alcotest.(check bool) "pipe escaped" true
    (List.exists (( = ) "| 1 | x\\|y |") lines)

let test_markdown_series () =
  let s = Series.create ~title:"fig" ~x_label:"threads" in
  Series.add s ~series:"arc" ~x:2. ~y:10.;
  let md = Arc_report.Markdown.of_series s in
  Alcotest.(check bool) "contains data row" true
    (List.exists (( = ) "| 2 | 10 |") (String.split_on_char '\n' md))

let test_table_accessors () =
  let t = Table.create ~title:"acc" ~columns:[ "x" ] in
  Table.add_row t [ "r1" ];
  Table.add_row t [ "r2" ];
  Alcotest.(check string) "title" "acc" (Table.title t);
  Alcotest.(check (list (list string))) "body in order" [ [ "r1" ]; [ "r2" ] ]
    (Table.body t)

(* --- replay-command rendering (ISSUE 9) ------------------------------ *)

let test_replay_render () =
  let open Arc_report.Replay in
  Alcotest.(check string) "flags and typed values render in order"
    "arc-crash --fabric --shards 2 --replay-seed 2049006148 --churn 0.25 \
     --algo arc"
    (render ~exe:"arc-crash"
       [
         flag "--fabric";
         int "--shards" 2;
         int "--replay-seed" 2049006148;
         float "--churn" 0.25;
         str "--algo" "arc";
       ]);
  (* %g keeps whole-valued floats shell-short, the way the campaign
     flag parsers print them back. *)
  Alcotest.(check string) "whole float renders bare" "x --f 2"
    (render ~exe:"x" [ float "--f" 2.0 ]);
  Alcotest.(check string) "exe alone" "dune exec bin/soak.exe --"
    (render ~exe:"dune exec bin/soak.exe --" [])

let suite =
  suite
  @ [
      Alcotest.test_case "markdown table" `Quick test_markdown_table;
      Alcotest.test_case "markdown series" `Quick test_markdown_series;
      Alcotest.test_case "table accessors" `Quick test_table_accessors;
      Alcotest.test_case "replay-command rendering" `Quick test_replay_render;
    ]

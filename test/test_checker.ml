(* The atomicity checker itself: it must accept exactly the histories
   the paper's Criterion 1 accepts, and reject the anomalies with a
   useful verdict.  These are hand-built histories with known
   verdicts — the checker's own unit tests, before it is trusted to
   judge the register algorithms. *)

module History = Arc_trace.History
module Checker = Arc_trace.Checker

let ev kind ~thread ~seq ~i ~r = History.event kind ~thread ~seq ~invoked:i ~returned:r
let w ~seq ~i ~r = ev History.Write ~thread:0 ~seq ~i ~r
let rd ~thread ~seq ~i ~r = ev History.Read ~thread ~seq ~i ~r

let ok_report = function
  | Ok (r : Checker.report) -> r
  | Error v -> Alcotest.failf "unexpected violation: %a" Checker.pp_violation v

let expect_violation name result pred =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected a violation" name
  | Error v ->
    if not (pred v) then
      Alcotest.failf "%s: wrong violation: %a" name Checker.pp_violation v

let test_empty_history () =
  let r = ok_report (Checker.check (History.of_events [])) in
  Alcotest.(check int) "nothing checked" 0 r.Checker.reads_checked

let test_reads_of_initial_value () =
  (* No writes at all: every read must return seq 0. *)
  let h =
    History.of_events
      [ rd ~thread:1 ~seq:0 ~i:0 ~r:1; rd ~thread:2 ~seq:0 ~i:2 ~r:3 ]
  in
  ignore (ok_report (Checker.check h))

let test_sequential_alternation () =
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:10;
        rd ~thread:1 ~seq:1 ~i:20 ~r:30;
        w ~seq:2 ~i:40 ~r:50;
        rd ~thread:1 ~seq:2 ~i:60 ~r:70;
      ]
  in
  let r = ok_report (Checker.check h) in
  Alcotest.(check int) "reads" 2 r.Checker.reads_checked;
  Alcotest.(check int) "writes" 2 r.Checker.writes_checked

let test_concurrent_read_may_return_either () =
  (* A read overlapping write 2 may return 1 or 2: both accepted. *)
  let with_seq seq =
    History.of_events
      [ w ~seq:1 ~i:0 ~r:10; w ~seq:2 ~i:20 ~r:40; rd ~thread:1 ~seq ~i:25 ~r:35 ]
  in
  ignore (ok_report (Checker.check (with_seq 1)));
  ignore (ok_report (Checker.check (with_seq 2)))

let test_stale_read_rejected () =
  (* Write 2 completed strictly before the read began: returning 1
     violates regularity (the "no-past" property). *)
  let h =
    History.of_events
      [ w ~seq:1 ~i:0 ~r:10; w ~seq:2 ~i:20 ~r:30; rd ~thread:1 ~seq:1 ~i:40 ~r:50 ]
  in
  expect_violation "stale read" (Checker.check h) (function
    | Checker.Stale_read { low; _ } -> low = 2
    | _ -> false)

let test_future_read_rejected () =
  (* Read returned before write 2 was even invoked, yet claims seq 2. *)
  let h =
    History.of_events
      [ w ~seq:1 ~i:0 ~r:10; rd ~thread:1 ~seq:2 ~i:12 ~r:14; w ~seq:2 ~i:20 ~r:30 ]
  in
  expect_violation "future read" (Checker.check h) (function
    | Checker.Future_read { high; _ } -> high = 1
    | _ -> false)

let test_new_old_inversion_rejected () =
  (* Both reads overlap write 2, r1 → r2 in real time, r1 returns the
     new value but r2 the old one: regular, yet not atomic —
     exactly Criterion 1's forbidden pattern. *)
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:10;
        w ~seq:2 ~i:20 ~r:60;
        rd ~thread:1 ~seq:2 ~i:25 ~r:30;
        rd ~thread:2 ~seq:1 ~i:35 ~r:40;
      ]
  in
  expect_violation "new-old inversion" (Checker.check h) (function
    | Checker.New_old_inversion { earlier; later } ->
      earlier.History.seq = 2 && later.History.seq = 1
    | _ -> false);
  (* The same history passes the regularity-only check: the checker
     distinguishes the two register classes. *)
  ignore (ok_report (Checker.check_regular_only h))

let test_inversion_across_readers () =
  (* The no-inversion rule is global across reader threads, not
     per-thread. *)
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:5;
        w ~seq:2 ~i:10 ~r:100;
        rd ~thread:1 ~seq:2 ~i:20 ~r:25;
        rd ~thread:2 ~seq:1 ~i:30 ~r:35;
      ]
  in
  expect_violation "cross-reader inversion" (Checker.check h) (function
    | Checker.New_old_inversion _ -> true
    | _ -> false)

let test_concurrent_reads_may_disagree () =
  (* Overlapping reads (neither precedes the other) may split old/new
     freely — this is allowed even for atomic registers. *)
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:5;
        w ~seq:2 ~i:10 ~r:100;
        rd ~thread:1 ~seq:2 ~i:20 ~r:50;
        rd ~thread:2 ~seq:1 ~i:30 ~r:60;
      ]
  in
  ignore (ok_report (Checker.check h))

let test_malformed_gap () =
  let h = History.of_events [ w ~seq:2 ~i:0 ~r:10 ] in
  expect_violation "sequence gap" (Checker.check h) (function
    | Checker.Malformed _ -> true
    | _ -> false)

let test_malformed_overlapping_writes () =
  let h = History.of_events [ w ~seq:1 ~i:0 ~r:10; w ~seq:2 ~i:5 ~r:15 ] in
  expect_violation "overlapping writes" (Checker.check h) (function
    | Checker.Malformed _ -> true
    | _ -> false)

let test_malformed_unknown_seq () =
  let h = History.of_events [ w ~seq:1 ~i:0 ~r:10; rd ~thread:1 ~seq:5 ~i:20 ~r:30 ] in
  expect_violation "read of never-written seq" (Checker.check h) (function
    | Checker.Malformed _ -> true
    | _ -> false)

let test_fast_path_counter () =
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:10;
        rd ~thread:1 ~seq:1 ~i:20 ~r:21;
        rd ~thread:1 ~seq:1 ~i:22 ~r:23;
        rd ~thread:1 ~seq:1 ~i:24 ~r:25;
        rd ~thread:2 ~seq:1 ~i:26 ~r:27;
      ]
  in
  let r = ok_report (Checker.check h) in
  Alcotest.(check int) "two repeat reads on thread 1" 2 r.Checker.fast_path_candidates

(* A reference random generator of *valid atomic* histories: simulate
   an atomic register sequentially with randomized interleaving
   points, then check that the checker accepts.  This is the
   property-based contract: no false positives on atomic histories. *)
let prop_no_false_positives =
  QCheck.Test.make ~name:"checker accepts generated atomic histories" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Arc_util.Splitmix.of_int seed in
      let time = ref 0 in
      let tick () =
        time := !time + 1 + Arc_util.Splitmix.int rng 3;
        !time
      in
      let current = ref 0 in
      let events = ref [] in
      let nwrites = ref 0 in
      (* Sequential, instantaneous ops at distinct times are trivially
         atomic; we then stretch intervals backwards/forwards without
         crossing the linearization points' order. *)
      for _ = 1 to 30 do
        if Arc_util.Splitmix.bool rng then begin
          incr nwrites;
          current := !nwrites;
          let t = tick () in
          events := w ~seq:!nwrites ~i:t ~r:(tick ()) :: !events
        end
        else begin
          let t = tick () in
          let thread = 1 + Arc_util.Splitmix.int rng 3 in
          events := rd ~thread ~seq:!current ~i:t ~r:(tick ()) :: !events
        end
      done;
      match Checker.check (History.of_events !events) with
      | Ok _ -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "empty history" `Quick test_empty_history;
    Alcotest.test_case "reads of initial value" `Quick test_reads_of_initial_value;
    Alcotest.test_case "sequential alternation" `Quick test_sequential_alternation;
    Alcotest.test_case "concurrent read either value" `Quick
      test_concurrent_read_may_return_either;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
    Alcotest.test_case "future read rejected" `Quick test_future_read_rejected;
    Alcotest.test_case "new-old inversion rejected" `Quick
      test_new_old_inversion_rejected;
    Alcotest.test_case "inversion across readers" `Quick test_inversion_across_readers;
    Alcotest.test_case "concurrent reads may disagree" `Quick
      test_concurrent_reads_may_disagree;
    Alcotest.test_case "malformed: gap" `Quick test_malformed_gap;
    Alcotest.test_case "malformed: overlapping writes" `Quick
      test_malformed_overlapping_writes;
    Alcotest.test_case "malformed: unknown seq" `Quick test_malformed_unknown_seq;
    Alcotest.test_case "fast path counter" `Quick test_fast_path_counter;
    QCheck_alcotest.to_alcotest prop_no_false_positives;
  ]

(* --- crash completions under an epoch fence (ISSUE 3) ----------------
   [check_crash ?fence] bounds the took-effect completion of the
   pending write at the supervisor's fence time: a post-fence history
   that only works if the zombie's publish landed AFTER the fence must
   be convicted, while the same publish landing before the fence is
   accepted. *)

let crash_outcome = function
  | Ok ((_ : Checker.report), o) -> o
  | Error v -> Alcotest.failf "unexpected violation: %a" Checker.pp_violation v

let test_crash_vanished () =
  (* Pending write 2 never observed; surviving reads see only 1. *)
  let h =
    History.of_events [ w ~seq:1 ~i:0 ~r:10; rd ~thread:1 ~seq:1 ~i:25 ~r:30 ]
  in
  match crash_outcome (Checker.check_crash ~pending_write:(2, 20) h) with
  | Checker.Vanished -> ()
  | o -> Alcotest.failf "expected Vanished, got %s" (Checker.crash_outcome_name o)

let test_crash_took_effect_before_fence () =
  (* Pending write 2 (invoked 20) observed after the fence at 30: fine,
     the fenced candidate completes at 30 and the read at 32 follows
     it with nothing newer in between. *)
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:10;
        rd ~thread:1 ~seq:2 ~i:32 ~r:35;
        w ~seq:3 ~i:40 ~r:50;
        rd ~thread:1 ~seq:3 ~i:60 ~r:70;
      ]
  in
  (match
     crash_outcome (Checker.check_crash ~pending_write:(2, 20) ~fence:30 h)
   with
  | Checker.Took_effect -> ()
  | o ->
    Alcotest.failf "expected Took_effect, got %s" (Checker.crash_outcome_name o));
  (* Without the fence the took-effect candidate is open-ended and
     overlaps the successor's write 3 — the history is unjudgeable.
     The fence is what makes successor-continued histories checkable. *)
  expect_violation "unfenced successor history"
    (Checker.check_crash ~pending_write:(2, 20) h)
    (fun _ -> true)

let test_crash_fence_convicts_late_publish () =
  (* A read of the pending seq AFTER the successor's write 3 completed:
     under the fence the pending candidate completed at 30, so the read
     at 60 is stale — a zombie publish that somehow landed post-fence
     is convicted, not forgiven. *)
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:10;
        w ~seq:3 ~i:40 ~r:50;
        rd ~thread:1 ~seq:2 ~i:60 ~r:70;
      ]
  in
  expect_violation "fenced late publish"
    (Checker.check_crash ~pending_write:(2, 20) ~fence:30 h)
    (fun _ -> true)

let test_bounded_staleness_ok () =
  let h =
    History.of_events
      [ w ~seq:1 ~i:0 ~r:10; w ~seq:2 ~i:20 ~r:30; w ~seq:3 ~i:40 ~r:50 ]
  in
  (* Serve at t=55: all 3 writes completed; seq 2 lags by 1 ≤ 2. *)
  match
    Checker.check_bounded_staleness h ~bound:2
      [ { Checker.thread = 1; seq = 2; at = 55 } ]
  with
  | Ok n -> Alcotest.(check int) "serves checked" 1 n
  | Error v ->
    Alcotest.failf "unexpected staleness violation: %a"
      Checker.pp_staleness_violation v

let test_bounded_staleness_violation () =
  let h =
    History.of_events
      [
        w ~seq:1 ~i:0 ~r:10;
        w ~seq:2 ~i:20 ~r:30;
        w ~seq:3 ~i:40 ~r:50;
        w ~seq:4 ~i:60 ~r:70;
      ]
  in
  (* Serve at t=75 returning seq 1: 4 completed writes, lag 3 > 2. *)
  match
    Checker.check_bounded_staleness h ~bound:2
      [ { Checker.thread = 1; seq = 1; at = 75 } ]
  with
  | Ok _ -> Alcotest.fail "expected a staleness violation"
  | Error v ->
    Alcotest.(check int) "completed" 4 v.Checker.completed;
    Alcotest.(check int) "bound" 2 v.Checker.bound;
    Alcotest.(check int) "served seq" 1 v.Checker.serve.Checker.seq

(* --- mutation properties ---------------------------------------------
   Generate a valid atomic history, apply a targeted corruption, and
   require the checker to convict — the complement of
   [prop_no_false_positives]. *)

let generate_valid seed =
  let rng = Arc_util.Splitmix.of_int seed in
  let time = ref 0 in
  let tick () =
    time := !time + 1 + Arc_util.Splitmix.int rng 3;
    !time
  in
  let current = ref 0 in
  let events = ref [] in
  let nwrites = ref 0 in
  for _ = 1 to 40 do
    if Arc_util.Splitmix.bool rng then begin
      incr nwrites;
      current := !nwrites;
      let t = tick () in
      events := w ~seq:!nwrites ~i:t ~r:(tick ()) :: !events
    end
    else begin
      let t = tick () in
      let thread = 1 + Arc_util.Splitmix.int rng 3 in
      events := rd ~thread ~seq:!current ~i:t ~r:(tick ()) :: !events
    end
  done;
  (List.rev !events, !nwrites)

let mutate_read events ~pred ~f =
  (* Replace the first read satisfying pred with (f read). *)
  let rec go acc = function
    | [] -> None
    | (e : History.event) :: rest when e.kind = History.Read && pred e ->
      Some (List.rev_append acc (f e :: rest))
    | e :: rest -> go (e :: acc) rest
  in
  go [] events

let convicts events =
  match Checker.check (History.of_events events) with Ok _ -> false | Error _ -> true

let prop_stale_mutation_caught =
  QCheck.Test.make ~name:"decreasing a read's seq below a completed write is caught"
    ~count:200 QCheck.small_int
    (fun seed ->
      let events, _ = generate_valid seed in
      match
        mutate_read events
          ~pred:(fun e -> e.History.seq >= 1)
          ~f:(fun e ->
            rd ~thread:e.History.thread ~seq:(e.History.seq - 1)
              ~i:e.History.invoked ~r:e.History.returned)
      with
      | None -> QCheck.assume_fail ()
      | Some mutated -> convicts mutated)

let prop_future_mutation_caught =
  QCheck.Test.make ~name:"inflating a read's seq beyond the clock is caught"
    ~count:200 QCheck.small_int
    (fun seed ->
      let events, nwrites = generate_valid seed in
      match
        mutate_read events
          ~pred:(fun e -> e.History.seq < nwrites)
          ~f:(fun e ->
            rd ~thread:e.History.thread ~seq:(e.History.seq + 1)
              ~i:e.History.invoked ~r:e.History.returned)
      with
      | None -> QCheck.assume_fail ()
      | Some mutated -> convicts mutated)

let prop_swap_mutation_caught =
  QCheck.Test.make
    ~name:"swapping the values of two ordered reads of distinct writes is caught"
    ~count:200 QCheck.small_int
    (fun seed ->
      let events, _ = generate_valid seed in
      let reads =
        List.filter (fun (e : History.event) -> e.kind = History.Read) events
      in
      (* first pair of reads with strictly increasing seqs *)
      let rec find_pair = function
        | (a : History.event) :: rest ->
          (match
             List.find_opt (fun (b : History.event) -> b.History.seq > a.History.seq) rest
           with
          | Some b -> Some (a, b)
          | None -> find_pair rest)
        | [] -> None
      in
      match find_pair reads with
      | None -> QCheck.assume_fail ()
      | Some (a, b) ->
        let swapped =
          List.map
            (fun (e : History.event) ->
              if e == a then { e with History.seq = b.History.seq }
              else if e == b then { e with History.seq = a.History.seq }
              else e)
            events
        in
        convicts swapped)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_stale_mutation_caught;
      QCheck_alcotest.to_alcotest prop_future_mutation_caught;
      QCheck_alcotest.to_alcotest prop_swap_mutation_caught;
      Alcotest.test_case "crash: vanished" `Quick test_crash_vanished;
      Alcotest.test_case "crash: took effect before fence" `Quick
        test_crash_took_effect_before_fence;
      Alcotest.test_case "crash: fence convicts late publish" `Quick
        test_crash_fence_convicts_late_publish;
      Alcotest.test_case "bounded staleness ok" `Quick test_bounded_staleness_ok;
      Alcotest.test_case "bounded staleness violation" `Quick
        test_bounded_staleness_violation;
    ]

(* --- coalesced-publish checking (ISSUE 10) --------------------------- *)

let coalesce_ok ~enqueued ~bound published expected =
  match Checker.check_coalesced ~enqueued ~bound published with
  | Ok n -> Alcotest.(check int) "publishes checked" expected n
  | Error v ->
    Alcotest.failf "unexpected conviction: %a" Checker.pp_coalesce_violation v

let coalesce_convicts ~enqueued ~bound published pred =
  match Checker.check_coalesced ~enqueued ~bound published with
  | Ok _ -> Alcotest.fail "violation not convicted"
  | Error v ->
    if not (pred v) then
      Alcotest.failf "wrong conviction: %a" Checker.pp_coalesce_violation v

let test_coalesce_ok () =
  coalesce_ok ~enqueued:0 ~bound:3 [] 0;
  coalesce_ok ~enqueued:10 ~bound:3 [ 2; 5; 8; 10 ] 4;
  (* bound exactly met *)
  coalesce_ok ~enqueued:6 ~bound:3 [ 3; 6 ] 2;
  (* every write published: coalescing degenerates to classic writes *)
  coalesce_ok ~enqueued:3 ~bound:1 [ 1; 2; 3 ] 3

let test_coalesce_lost_final_write () =
  coalesce_convicts ~enqueued:10 ~bound:5 [ 4; 8 ] (function
    | Checker.Lost_final_write { last_enqueued = 10; last_published = 8 } -> true
    | _ -> false);
  (* a burst that never published at all is the degenerate case *)
  coalesce_convicts ~enqueued:2 ~bound:5 [] (function
    | Checker.Lost_final_write { last_published = 0; _ } -> true
    | _ -> false)

let test_coalesce_oversized_batch () =
  coalesce_convicts ~enqueued:10 ~bound:3 [ 2; 6; 10 ] (function
    | Checker.Oversized_batch { published = 6; previous = 2; bound = 3 } -> true
    | _ -> false)

let test_coalesce_malformed () =
  coalesce_convicts ~enqueued:5 ~bound:3 [ 2; 2; 5 ] (function
    | Checker.Coalesce_malformed _ -> true
    | _ -> false);
  coalesce_convicts ~enqueued:5 ~bound:3 [ 7 ] (function
    | Checker.Coalesce_malformed _ -> true
    | _ -> false);
  (match Checker.check_coalesced ~enqueued:(-1) ~bound:3 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative enqueued must raise");
  match Checker.check_coalesced ~enqueued:3 ~bound:0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 must raise"

let suite =
  suite
  @ [
      Alcotest.test_case "coalesce: ok" `Quick test_coalesce_ok;
      Alcotest.test_case "coalesce: lost final write" `Quick
        test_coalesce_lost_final_write;
      Alcotest.test_case "coalesce: oversized batch" `Quick
        test_coalesce_oversized_batch;
      Alcotest.test_case "coalesce: malformed" `Quick test_coalesce_malformed;
    ]

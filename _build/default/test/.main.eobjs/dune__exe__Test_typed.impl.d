test/test_typed.ml: Alcotest Arc_core Arc_mem Array Atomic Domain Fun List Unix

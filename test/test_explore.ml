(* Exhaustive bounded exploration: sanity of the enumerator itself,
   then tiny register scenarios verified over ALL interleavings —
   the paper's §4 case analyses as exhaustively checked facts. *)

module Explore = Arc_vsched.Explore
module Sched = Arc_vsched.Sched
module Sim = Arc_vsched.Sim_mem
module P = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)

let check = Alcotest.(check int)

(* Two fibers, each a single cede: schedules = choices at the points
   where both are runnable.  Counting them validates the DFS. *)
let test_enumerates_all_interleavings () =
  let seen = Hashtbl.create 16 in
  let outcome =
    Explore.exhaustive
      ~scenario:(fun () ->
        let log = ref [] in
        let fiber i () =
          log := (2 * i) :: !log;
          Sched.cede ();
          log := (2 * i) + 1 :: !log
        in
        let checkf () = Hashtbl.replace seen (List.rev !log) () in
        ([| fiber 0; fiber 1 |], checkf))
      ()
  in
  Alcotest.(check bool) "exhausted" true outcome.Explore.exhausted;
  (* Interleavings of two 2-event sequences preserving order: C(4,2) = 6. *)
  check "all 6 distinct interleavings observed" 6 (Hashtbl.length seen);
  Alcotest.(check bool) "at least 6 schedules run" true (outcome.Explore.schedules >= 6)

let test_max_schedules_cap () =
  let outcome =
    Explore.exhaustive ~max_schedules:3
      ~scenario:(fun () ->
        let fiber () =
          for _ = 1 to 4 do
            Sched.cede ()
          done
        in
        ([| fiber; fiber; fiber |], fun () -> ()))
      ()
  in
  check "stopped at cap" 3 outcome.Explore.schedules;
  Alcotest.(check bool) "not exhausted" false outcome.Explore.exhausted

(* ARC micro-scenario, exhaustively: one write of a 3-word snapshot
   racing one read.  Every schedule must yield an untorn snapshot of
   either the initial value or the written one, and leave the register
   in a state satisfying Lemma 4.1. *)
module Arc = Arc_core.Arc.Make (Arc_vsched.Sim_mem)

let test_arc_write_read_race_exhaustive () =
  let words = 3 in
  let outcome =
    Explore.exhaustive
      ~scenario:(fun () ->
        let init = Array.make words 0 in
        P.stamp init ~seq:0 ~len:words;
        let reg = Arc.create ~readers:1 ~capacity:words ~init in
        let observed = ref (-1) in
        let writer () =
          let src = Array.make words 0 in
          P.stamp src ~seq:1 ~len:words;
          Arc.write reg ~src ~len:words
        in
        let reader () =
          let rd = Arc.reader reg 0 in
          observed :=
            Arc.read_with rd ~f:(fun buffer len ->
                match P.validate buffer ~len with
                | Ok seq -> seq
                | Error msg -> Alcotest.failf "torn snapshot: %s" msg)
        in
        let checkf () =
          if not (!observed = 0 || !observed = 1) then
            Alcotest.failf "impossible value %d" !observed;
          if not (Arc.Debug.presence_bound_holds reg) then
            Alcotest.fail "presence ledger broken";
          if not (Arc.Debug.free_slot_exists reg) then
            Alcotest.fail "Lemma 4.1 violated"
        in
        ([| writer; reader |], checkf))
      ()
  in
  Alcotest.(check bool) "space exhausted" true outcome.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "non-trivial space (%d schedules)" outcome.Explore.schedules)
    true
    (outcome.Explore.schedules > 50)

(* Two sequential reads racing one write: the read pair must never
   observe new-then-old (Criterion 1's forbidden pattern), in ANY
   schedule. *)
let test_arc_no_inversion_exhaustive () =
  let words = 2 in
  let outcome =
    (* The crash-recovery journal (ISSUE 3) adds two writer-side
       accesses per write, pushing this space just past the 1M
       default; it exhausts at ~1.04M schedules. *)
    Explore.exhaustive ~max_schedules:2_000_000
      ~scenario:(fun () ->
        let init = Array.make words 0 in
        P.stamp init ~seq:0 ~len:words;
        let reg = Arc.create ~readers:1 ~capacity:words ~init in
        let first = ref (-1) and second = ref (-1) in
        let writer () =
          let src = Array.make words 0 in
          P.stamp src ~seq:1 ~len:words;
          Arc.write reg ~src ~len:words
        in
        let reader () =
          let rd = Arc.reader reg 0 in
          let get () =
            Arc.read_with rd ~f:(fun buffer len ->
                match P.validate buffer ~len with
                | Ok seq -> seq
                | Error msg -> Alcotest.failf "torn: %s" msg)
          in
          first := get ();
          second := get ()
        in
        let checkf () =
          if !second < !first then
            Alcotest.failf "new-old inversion: %d then %d" !first !second
        in
        ([| writer; reader |], checkf))
      ()
  in
  Alcotest.(check bool) "space exhausted" true outcome.Explore.exhausted

(* Dynamic-ARC storage reclaim racing a reader (satellite of ISSUE 3):
   the writer supersedes the initial slot and immediately revokes its
   storage with [reclaim_stale ~lease:0] while a reader may still be
   pinning it.  The reader's size-validation handshake must detect the
   revocation and release-and-resubscribe rather than return reclaimed
   storage.  Exhaustive over ALL interleavings, and the space must
   actually contain both branches: schedules where the revocation hit
   a pinned slot and schedules where it found nothing to reclaim. *)
module Ad = Arc_core.Arc_dynamic.Make (Arc_vsched.Sim_mem)

let test_dynamic_reclaim_race_exhaustive () =
  let words = 2 in
  let reclaim_hit = ref 0 and reclaim_miss = ref 0 in
  let outcome =
    (* ~1.13M schedules — just past the 1M default (see the journal
       note on the arc test above). *)
    Explore.exhaustive ~max_schedules:2_000_000
      ~scenario:(fun () ->
        let init = Array.make words 0 in
        P.stamp init ~seq:0 ~len:words;
        let reg = Ad.create ~readers:1 ~capacity:words ~init in
        let observed = ref (-1) in
        let writer () =
          let src = Array.make words 0 in
          P.stamp src ~seq:1 ~len:words;
          Ad.write reg ~src ~len:words;
          (* lease 0: anything superseded and still pinned is revoked
             right away — the harshest setting for the handshake. *)
          if Ad.reclaim_stale reg ~lease:0 > 0 then incr reclaim_hit
          else incr reclaim_miss
        in
        let reader () =
          let rd = Ad.reader reg 0 in
          observed :=
            Ad.read_with rd ~f:(fun buffer len ->
                match P.validate buffer ~len with
                | Ok seq -> seq
                | Error msg ->
                  Alcotest.failf "reclaimed storage served torn: %s" msg)
        in
        let checkf () =
          if not (!observed = 0 || !observed = 1) then
            Alcotest.failf "impossible value %d" !observed
        in
        ([| writer; reader |], checkf))
      ()
  in
  Alcotest.(check bool) "space exhausted" true outcome.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "revocation branch reached (%d schedules)" !reclaim_hit)
    true (!reclaim_hit > 0);
  Alcotest.(check bool)
    (Printf.sprintf "no-revocation branch reached (%d schedules)" !reclaim_miss)
    true (!reclaim_miss > 0)

(* Same race, but the reader takes TWO reads bracketing the
   revocation: the re-subscription forced by a revoked slot must not
   let the pair regress (Criterion 1 still holds through recovery).
   The doubled read makes the full space exceed the 1M-schedule
   budget, so — as with Peterson above — check a DFS prefix. *)
let test_dynamic_reclaim_no_inversion () =
  let words = 2 in
  let outcome =
    Explore.exhaustive ~max_schedules:200_000
      ~scenario:(fun () ->
        let init = Array.make words 0 in
        P.stamp init ~seq:0 ~len:words;
        let reg = Ad.create ~readers:1 ~capacity:words ~init in
        let first = ref (-1) and second = ref (-1) in
        let writer () =
          let src = Array.make words 0 in
          P.stamp src ~seq:1 ~len:words;
          Ad.write reg ~src ~len:words;
          ignore (Ad.reclaim_stale reg ~lease:0)
        in
        let reader () =
          let rd = Ad.reader reg 0 in
          let get () =
            Ad.read_with rd ~f:(fun buffer len ->
                match P.validate buffer ~len with
                | Ok seq -> seq
                | Error msg -> Alcotest.failf "torn: %s" msg)
          in
          first := get ();
          second := get ()
        in
        let checkf () =
          if !second < !first then
            Alcotest.failf "new-old inversion across recovery: %d then %d"
              !first !second
        in
        ([| writer; reader |], checkf))
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "non-trivial prefix (%d schedules)" outcome.Explore.schedules)
    true
    (outcome.Explore.schedules > 50)

(* The unsound single-buffer register from the negative controls must
   be convicted by SOME schedule in the exhaustive space — showing the
   enumerator actually reaches the bad interleavings. *)
let test_unsound_convicted_exhaustively () =
  let words = 3 in
  let torn_schedules = ref 0 in
  let outcome =
    Explore.exhaustive
      ~scenario:(fun () ->
        let module B = Broken_regs.Torn (Arc_vsched.Sim_mem) in
        let init = Array.make words 0 in
        P.stamp init ~seq:0 ~len:words;
        let reg = B.create ~readers:1 ~capacity:words ~init in
        let writer () =
          let src = Array.make words 0 in
          P.stamp src ~seq:1 ~len:words;
          B.write reg ~src ~len:words
        in
        let reader () =
          let rd = B.reader reg 0 in
          B.read_with rd ~f:(fun buffer len ->
              match P.validate buffer ~len with
              | Ok _ -> ()
              | Error _ -> incr torn_schedules)
        in
        ([| writer; reader |], fun () -> ()))
      ()
  in
  Alcotest.(check bool) "exhausted" true outcome.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "torn in %d schedules" !torn_schedules)
    true (!torn_schedules > 0)

let suite =
  [
    Alcotest.test_case "enumerates all interleavings" `Quick
      test_enumerates_all_interleavings;
    Alcotest.test_case "max_schedules cap" `Quick test_max_schedules_cap;
    Alcotest.test_case "arc write/read race exhaustive" `Quick
      test_arc_write_read_race_exhaustive;
    Alcotest.test_case "arc no inversion exhaustive" `Quick
      test_arc_no_inversion_exhaustive;
    Alcotest.test_case "dynamic reclaim race exhaustive" `Quick
      test_dynamic_reclaim_race_exhaustive;
    Alcotest.test_case "dynamic reclaim no inversion" `Quick
      test_dynamic_reclaim_no_inversion;
    Alcotest.test_case "unsound register convicted exhaustively" `Quick
      test_unsound_convicted_exhaustively;
  ]

(* Same exhaustive write/read race for the other wait-free
   algorithms.  (Lock-based registers are excluded by construction:
   a spin loop makes the decision tree infinite.) *)
module Rf = Arc_baselines.Rf.Make (Arc_vsched.Sim_mem)
module Pt = Arc_baselines.Peterson.Make (Arc_vsched.Sim_mem)
module Sp = Arc_baselines.Simpson_reg.Make (Arc_vsched.Sim_mem)

let race_scenario (type t r)
    (module R : Arc_core.Register_intf.S
      with type t = t
       and type reader = r
       and type Mem.buffer = Arc_vsched.Sim_mem.buffer) () =
  let words = 2 in
  let init = Array.make words 0 in
  P.stamp init ~seq:0 ~len:words;
  let reg = R.create ~readers:1 ~capacity:words ~init in
  let observed = ref (-1) in
  let writer () =
    let src = Array.make words 0 in
    P.stamp src ~seq:1 ~len:words;
    R.write reg ~src ~len:words
  in
  let reader () =
    let rd = R.reader reg 0 in
    observed :=
      R.read_with rd ~f:(fun buffer len ->
          match P.validate buffer ~len with
          | Ok seq -> seq
          | Error msg -> Alcotest.failf "%s: torn snapshot: %s" R.algorithm msg)
  in
  let checkf () =
    if not (!observed = 0 || !observed = 1) then
      Alcotest.failf "%s: impossible value %d" R.algorithm !observed
  in
  ([| writer; reader |], checkf)

let exhaustive_race ?(require_exhausted = true) ?(max_schedules = 400_000) name
    scenario =
  Alcotest.test_case
    (name
    ^
    if require_exhausted then " write/read race exhaustive"
    else " write/read race (bounded DFS)")
    `Quick
    (fun () ->
      let outcome = Explore.exhaustive ~max_schedules ~scenario () in
      if require_exhausted then
        Alcotest.(check bool) "space exhausted" true outcome.Explore.exhausted;
      Alcotest.(check bool)
        (Printf.sprintf "non-trivial space (%d schedules)"
           outcome.Explore.schedules)
        true
        (outcome.Explore.schedules > 20))

let suite =
  suite
  @ [
      exhaustive_race "rf" (race_scenario (module Rf));
      (* Peterson's two-buffer copies make the full space ≈10^8
         schedules; check a 150k-schedule DFS prefix instead. *)
      exhaustive_race ~require_exhausted:false ~max_schedules:150_000 "peterson"
        (race_scenario (module Pt));
      exhaustive_race "simpson" (race_scenario (module Sp));
    ]

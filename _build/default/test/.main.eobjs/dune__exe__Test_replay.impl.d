test/test_replay.ml: Alcotest Arc_harness Arc_vsched Array List

test/test_history.ml: Alcotest Arc_trace Domain List QCheck QCheck_alcotest

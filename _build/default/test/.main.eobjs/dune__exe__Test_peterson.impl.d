test/test_peterson.ml: Alcotest Arc_baselines Arc_mem Arc_vsched Arc_workload Array Printf

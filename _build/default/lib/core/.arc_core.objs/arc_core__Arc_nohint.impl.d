lib/core/arc_nohint.ml: Arc Arc_mem

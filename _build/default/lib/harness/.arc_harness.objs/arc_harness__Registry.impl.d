lib/harness/registry.ml: Arc_baselines Arc_core Arc_mem Arc_vsched Config Count_runner List Real_runner Sim_runner

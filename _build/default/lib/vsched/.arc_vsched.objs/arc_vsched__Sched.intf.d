lib/vsched/sched.mli: Strategy

test/test_mrmw.ml: Alcotest Arc_core Arc_mem Arc_mrmw Arc_vsched Array Atomic Domain Fun Printf Unix

lib/baselines/seqlock_reg.ml: Arc_mem Array

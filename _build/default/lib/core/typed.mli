(** Typed convenience layer: publish and read OCaml values through any
    register algorithm, given a codec to/from machine words.

    This is API sugar for adopters — encoding and decoding
    necessarily copy, so the zero-copy property of {!Arc.Make.read_view}
    is traded for type safety.  The register's guarantees
    (atomicity, wait-freedom, snapshot consistency) carry over
    unchanged: a reader always decodes a complete snapshot from a
    single write. *)

(** How to lay a value out in register words. *)
module type CODEC = sig
  type t

  val max_words : int
  (** Upper bound on the encoding length; the register's capacity. *)

  val encode : t -> int array
  (** Must return at most {!max_words} words, at least one. *)

  val decode : int array -> len:int -> t
  (** Inverse of {!encode} on its image; [len] is the snapshot
      length.  May raise on corrupt input (which the register
      guarantees never to produce). *)
end

module Make
    (_ : Register_intf.ALGORITHM)
    (_ : Arc_mem.Mem_intf.S)
    (C : CODEC) : sig
  type t
  type reader

  val create : readers:int -> init:C.t -> t
  (** @raise Invalid_argument if the encoding of [init] is empty or
      oversized, or the algorithm cannot host [readers]. *)

  val publish : t -> C.t -> unit
  (** Single-writer, like the underlying register. *)

  val get : reader -> C.t
  (** Decode the freshest snapshot. *)

  val reader : t -> int -> reader
  val reads : reader -> int
  (** Operations performed through this handle (for tests/metrics). *)
end

(* Smoke tests for the experiment drivers: with quick options, every
   figure/table builder must return the advertised structure with
   plausible contents, so `bin/experiments.exe` cannot rot silently. *)

module Experiment = Arc_harness.Experiment
module Series = Arc_report.Series
module Table = Arc_report.Table

let opts = { Experiment.quick with Experiment.duration_s = 0.02; sim_steps = 8_000 }

let expect_series name series_list ~figures ~series_each =
  Alcotest.(check int) (name ^ ": figure count") figures (List.length series_list);
  List.iter
    (fun s ->
      let names = Series.series_names s in
      Alcotest.(check int) (name ^ ": algorithms per figure") series_each
        (List.length names);
      Alcotest.(check bool)
        (name ^ ": arc present")
        true (List.mem "arc" names);
      let table = Series.to_table s in
      Alcotest.(check bool) (name ^ ": has rows") true (Table.rows table > 0))
    series_list

let test_fig1_sim () =
  expect_series "fig1-sim" (Experiment.fig1_sim opts) ~figures:1 ~series_each:4

let test_fig1_real () =
  expect_series "fig1-real" (Experiment.fig1_real opts) ~figures:1 ~series_each:4

let test_fig2_sim () =
  expect_series "fig2-sim" (Experiment.fig2_sim opts) ~figures:1 ~series_each:4

let test_fig3_sim () =
  expect_series "fig3-sim" (Experiment.fig3_sim opts) ~figures:1 ~series_each:4

let test_rmw_table () =
  let t = Experiment.rmw_table opts in
  (* 9 algorithms, but simpson only supports 1 reader (skipped at 4)
     and everyone else contributes one row per (readers, rpw). *)
  Alcotest.(check bool) "has rows" true (Table.rows t >= 16);
  Alcotest.(check int) "columns" 7 (List.length (Table.columns t));
  (* ARC's r=8 row must show the amortized fast path. *)
  let arc_r8 =
    List.find_opt
      (fun row -> match row with "arc" :: _ :: "8" :: _ -> true | _ -> false)
      (Table.body t)
  in
  match arc_r8 with
  | Some (_ :: _ :: _ :: rmw_per_read :: _) ->
    Alcotest.(check string) "2 RMW / 8 reads" "0.250" rmw_per_read
  | _ -> Alcotest.fail "arc r=8 row missing"

let test_ablation_hint () =
  let t = Experiment.ablation_hint opts in
  Alcotest.(check bool) "two variants per reader count" true (Table.rows t >= 2)

let test_ablation_dynamic () =
  let t = Experiment.ablation_dynamic opts in
  Alcotest.(check int) "three distributions" 3 (Table.rows t);
  (* dynamic footprint must undercut static for every distribution *)
  List.iter
    (fun row ->
      match row with
      | [ _; static_w; dynamic_w; _ ] ->
        Alcotest.(check bool) "dynamic < static" true
          (int_of_string dynamic_w < int_of_string static_w)
      | _ -> Alcotest.fail "unexpected row shape")
    (Table.body t)

let test_latency_table () =
  let t = Experiment.latency_table opts in
  Alcotest.(check bool) "one row per algorithm (with history)" true
    (Table.rows t >= 6);
  List.iter
    (fun row ->
      match row with
      | [ _algo; reads; mean_us; _p99; _p999; _max ] ->
        Alcotest.(check bool) "reads recorded" true (int_of_string reads > 0);
        Alcotest.(check bool) "positive latency" true (float_of_string mean_us > 0.)
      | _ -> Alcotest.fail "unexpected row shape")
    (Table.body t)

let suite =
  [
    Alcotest.test_case "fig1 sim" `Quick test_fig1_sim;
    Alcotest.test_case "fig1 real" `Quick test_fig1_real;
    Alcotest.test_case "fig2 sim" `Quick test_fig2_sim;
    Alcotest.test_case "fig3 sim" `Quick test_fig3_sim;
    Alcotest.test_case "rmw table" `Quick test_rmw_table;
    Alcotest.test_case "ablation hint" `Quick test_ablation_hint;
    Alcotest.test_case "ablation dynamic" `Quick test_ablation_dynamic;
    Alcotest.test_case "latency table" `Quick test_latency_table;
  ]

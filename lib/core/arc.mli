(** Anonymous Readers Counting — the paper's contribution (§3).

    A wait-free multi-word atomic (1,N) register using N+2 slots and a
    single packed synchronization word
    [current = ⟨index, count⟩] (see {!Arc_util.Packed}):

    - {b read} (Algorithm 2): load [current] (R1); if the slot index
      equals the reader's private [last_index], return the already
      subscribed slot with {e no RMW at all} (R2) — the fast path that
      differentiates ARC from RF.  Otherwise release the old slot with
      an atomic increment of its [r_end] (R3), subscribe to the
      current slot with [AtomicAddAndFetch (current, 1)] (R4), and
      remember it (R5).
    - {b write} (Algorithm 3): find a free slot — one that is not
      [last_slot] and has [r_start = r_end] (W1) — copy the new value
      into it, reset its counters, publish it with
      [AtomicExchange (current, ⟨slot, 0⟩)] (W2), and freeze the old
      slot's readers-presence count into its [r_start] (W3).
    - {b free-slot hint} (§3.4): a reader that observes
      [r_start = r_end] right after its R3 release posts the slot
      index as a proposal; the writer validates and consumes it,
      making the free-slot search O(1) amortized instead of O(N).

    Reads are O(1); a read performs 0 RMW on the fast path and 2 RMW
    (R3 + R4) otherwise.  Writes perform exactly 1 RMW (W2).

    Capacity: up to [2^32 - 2] concurrent readers (the packed count
    field keeps the paper's full 32 bits) and [2^31 - 1] slots. *)

val algorithm : string

(** The full ARC register module — {!Register_intf.ZERO_COPY} and
    {!Register_intf.FENCEABLE} plus the white-box surface.  Named so
    that consumers holding a register built over a {e runtime}-chosen
    substrate (e.g. a first-class [Mem_intf.S] over an mmap'd file,
    {!Arc_shm.Shm_mem.mem}) can still package the functor result:
    [(module Arc.S with type Mem.atomic = ...)]. *)
module type S = sig
  include Register_intf.ZERO_COPY
  (** [read_view] is the pinned zero-copy read: the view stays stable
      until this same reader's {e next} read (the slot cannot be
      recycled while this reader's presence is accounted on it). *)

  val read_stamped : reader -> f:(Mem.buffer -> int -> 'a) -> int * 'a
  (** {!Register_intf.STAMPED}: [read_with] returning additionally the
      publish stamp of the snapshot — one extra plain load of the
      pinned slot's stamp word. *)

  val probe_stamp : t -> int
  (** {!Register_intf.STAMPED}: the stamp of the currently published
      value in two plain loads (synchronization word, then that slot's
      stamp), no RMW, callable from any thread.  Stamps are strictly
      increasing over the writer role (resynced across failover by
      {!recover_crash}), so equality with a previously collected stamp
      certifies the register still publishes the collected value; a
      probe racing a recycle can read a {e newer} stamp — a spurious
      mismatch — but never an older one. *)

  val read_plain : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
  (** R2' (ROADMAP item 2a): the validated copy-free plain-load read.
      Runs [f] directly on the {e currently published} slot bracketed
      by the slot's begin/end publish stamps (stored by the writer
      around the content copy, seqlock-style), skipping even the
      [last_index] comparison and the presence machinery.  On a stamp
      mismatch — a write overlapped the scan — it falls back to
      {!S.read_with} exactly once (never a retry loop), so
      wait-freedom is preserved: worst case one wasted scan plus one
      classic read.

      When the packed synchronization word still equals the one this
      handle cached at its last subscription, the scan and validation
      are skipped entirely and the pinned cached view is returned (the
      subscribed slot is presence-pinned, hence immutable) — one load
      per read at steady state in a mixed hold loop.

      The subscription pin of [rd] is untouched by a validated R2'
      read; mixing {!read_plain} and {!S.read_with} on one handle
      stays atomic (a validated plain value is always at least as new
      as the pinned one, and a later classic read resubscribes past
      it).

      [f] may run on a torn view whose result is then discarded: it
      must be pure and total on arbitrary word contents, exactly like
      a seqlock read section, and must not retain the buffer. *)

  val create_with : use_hint:bool -> readers:int -> capacity:int -> init:int array -> t
  (** Like {!create} but choosing whether the §3.4 free-slot hint is
      used ({!create} enables it).  [use_hint:false] is the ablation
      arm of experiment E5. *)

  val write_guarded : t -> guard:(unit -> unit) -> src:int array -> len:int -> unit
  (** {!Register_intf.FENCEABLE}: [write] with [guard ()] run between
      the content copy and the W2 publish exchange.  A raising guard
      aborts the write with nothing published (the prepared slot stays
      free with counters 0/0) — the epoch-fence hook of
      [Arc_resilience.Fenced]. *)

  val recover_crash : t -> int
  (** {!Register_intf.FENCEABLE}: successor-writer recovery after a
      failover.  A writer that crashed between its W2 publish and the
      W3 supersede-freeze leaves the superseded slot's subscriber
      count recorded nowhere (it lived in the synchronization word the
      exchange replaced), so the slot can look free while readers are
      still on it.  Every write journals that slot index before
      publishing; [recover_crash] quarantines the journaled slot
      (returning 1) or is a no-op on a clean journal (returning 0),
      and re-establishes the writer-local [last_slot] invariant.  A
      quarantined slot is a permanent but bounded leak — at most one
      per writer crash — paid for by over-provisioning reader
      identities (each unused identity is a net spare slot, keeping
      Lemma 4.1 strict).  Writer-role only, to be called once when
      taking over the role. *)

  val quarantine : t -> int -> unit
  (** {!Register_intf.FENCEABLE}: retire a slot convicted by evidence
      {e outside} the register's own journal — an integrity layer
      (checksum scan of a crash-recovered mapping) finding a torn
      content copy.  Idempotent; writer-role only; same bounded-leak
      accounting as {!recover_crash}.
      @raise Invalid_argument if the slot index is out of range. *)

  val write_probes : t -> int
  (** Total slots examined by all {!write} free-slot searches so far
      (writer-thread view).  With the hint enabled this grows as
      O(1) per write; without it as O(N) in adverse cases — the
      measured quantity of experiment E5. *)

  val writes : t -> int
  (** Number of completed writes (writer-thread view). *)

  val write_coalesced :
    t -> max_pending:int -> max_staleness:int -> src:int array -> len:int -> unit
  (** Write coalescing (ROADMAP item 2b): absorb the write into a
      writer-private staging buffer (latest value wins) and publish
      the batch with {e one} W2 exchange and one slot copy once
      [max_pending] writes are pending.  Readers observe the
      bounded-staleness contract ({!Arc_trace.Checker}'s
      [check_bounded_staleness] / [check_coalesced]): a published
      value lags the newest absorbed write by fewer than [max_pending]
      writes, and [max_pending <= max_staleness] is enforced here so
      every batch respects the declared staleness bound.  The final
      write of a burst is pending until {!flush_coalesced} (or a
      direct {!S.write}, which absorbs and supersedes the staged
      batch) — callers must flush at burst end or the tail write is
      never published.  Writer-thread only.
      @raise Invalid_argument if [max_pending < 1],
      [max_staleness < max_pending], or the length is invalid. *)

  val flush_coalesced : t -> unit
  (** Publish the staged batch now, if any — one classic write.
      Writer-thread only; a no-op with nothing pending. *)

  val pending_writes : t -> int
  (** Writes currently absorbed but not yet published. *)

  val coalesced_batches : t -> int
  (** Batches published so far (by flush, threshold, or a superseding
      direct write). *)

  val coalesced_absorbed : t -> int
  (** Total writes absorbed by {!write_coalesced} so far. *)

  val max_coalesced_batch : t -> int
  (** Largest batch published so far — the property-test bound:
      must never exceed the [max_staleness] passed to the absorbing
      writes. *)

  (** {2 Telemetry (ISSUE 5)}

      Always-on wait-free observability.  All counters are host-heap
      {!Arc_obs.Obs.Cell}s — plain single-writer words outside the
      memory substrate — so recording adds {e no} substrate
      operations: nothing for {!Arc_mem.Counting} to charge to the
      algorithm, no scheduling points under the virtual scheduler
      (attaching telemetry changes no checker-visible history), and no
      RMW or fence on the R2 read fast path (the fast-path hit marker
      is a plain increment of the reader's private cache-line-isolated
      cell).  With no telemetry attached, every hook is a single
      [None] branch. *)

  type telemetry

  val make_telemetry :
    ?ring:int -> ?clock:(unit -> int) -> readers:int -> unit -> telemetry
  (** [ring] bounds the slot-transition trace (default 256 entries,
      rounded up to a power of two); [clock] supplies ring timestamps
      (default constant 0 — pass the substrate clock or a wall-time
      reader as appropriate; it must itself be observation-free). *)

  val set_telemetry : t -> telemetry option -> unit
  (** Attach {e before} creating reader handles: a handle resolves its
      per-identity counter cells once, at {!reader} time; handles
      created earlier never record. *)

  val telemetry : t -> telemetry option

  val fast_reads : telemetry -> int
  (** Total reads served on the RMW-free R2 fast path (racy sum over
      per-reader cells; exact once readers are joined). *)

  val slow_reads : telemetry -> int
  (** Total reads that paid the R3+R4 RMW pair.  [fast_reads +
      slow_reads] = total reads by telemetry-carrying handles. *)

  val hint_hits : telemetry -> int
  (** §3.4 free-slot proposals accepted by W1 searches. *)

  val plain_reads : telemetry -> int
  (** Reads served by a validated R2' plain load ({!read_plain}). *)

  val plain_fallbacks : telemetry -> int
  (** R2' attempts that failed validation and fell back to the classic
      path (those reads are additionally counted fast or slow by the
      fallback itself). *)

  val metrics : t -> Arc_obs.Obs.metric list
  (** Register counters (writes, probes, quarantined) plus — when
      telemetry is attached — per-reader fast/slow read counters, hint
      hits and trace-ring depth, ready for
      {!Arc_obs.Obs.prometheus}/{!Arc_obs.Obs.json}. *)

  val trace : t -> Arc_obs.Ring.entry list
  (** Surviving slot-state transitions, oldest first ([] when no
      telemetry is attached). *)

  (** White-box access for tests: the §4 lemmas as executable
      checks. *)
  module Debug : sig
    val slots : t -> int
    val current : t -> int
    (** Packed ⟨index, count⟩ word; decode with {!Arc_util.Packed}. *)

    val r_start : t -> int -> int
    val r_end : t -> int -> int
    val slot_size : t -> int -> int

    val slot_seq : t -> int -> int
    val slot_seq_end : t -> int -> int
    (** The R2' begin/end publish stamps of a slot; equal exactly when
        the slot's content is a complete write. *)

    val presence_slack : t -> int
    (** [readers - (Σ_j (r_start(j) - r_end(j)) + count(current))] —
        the presence units missing from Lemma 4.1's ledger.  0 in any
        quiescent live state.  Under crash-stop readers, each crash
        can leak at most one unit (a reader that died between its R3
        release and R4 subscribe), so a valid quiescent state has
        slack in [0, crashed readers]; negative slack means presence
        was double-counted (e.g. a lost release increment).
        Quiescent-state check (call while no operation is in
        flight). *)

    val presence_bound_holds : t -> bool
    (** [presence_slack t = 0] — Lemma 4.1's ledger balanced exactly,
        the crash-free quiescent invariant. *)

    val free_slot_exists : t -> bool
    (** Lemma 4.1: at least one slot other than the published one has
        [r_start = r_end].  Quiescent-state check; must keep holding
        under any number of crash-stop readers (N readers pin at most
        N of the N+2 slots). *)

    val force_current : t -> int -> unit
    (** Test-only: overwrite the packed synchronization word, e.g. to
        place the count at the saturation boundary and exercise the
        {!Register_intf.Saturated} guard. *)

    val unvalidated_plain : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
    (** Negative control for the R2' tests: the plain scan with the
        stamp validation deliberately skipped.  Under a schedule that
        overlaps a write it returns torn views — the payload checker
        must convict it, proving the validation in {!read_plain} is
        load-bearing.  Never use outside tests. *)
  end
end

module Make (M : Arc_mem.Mem_intf.S) : S with module Mem = M

lib/core/arc_nohint.mli: Arc_mem Register_intf

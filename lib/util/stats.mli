(** Summary statistics for experiment samples.

    The paper reports each sample as "the average over 10 runs"; we
    additionally keep dispersion so EXPERIMENTS.md can state how noisy
    the shared-container measurements are. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  p999 : float;  (** 99.9th percentile — the soak/bench tail column *)
  ci95 : float;  (** half-width of a normal-approximation 95% CI on the mean *)
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val mean : float array -> float
val stddev : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], linear interpolation;
    does not mutate the input.
    @raise Invalid_argument on empty input or [p] outside [0, 100]. *)

val pp_summary : Format.formatter -> summary -> unit

(** Error/degraded-outcome counters for harness and soak summaries:
    reads resolve as fresh ([ok]), served from a stale snapshot by a
    tripped circuit breaker ([stale]), or abandoned at their deadline
    ([exhausted]); [errors] counts raw register errors absorbed by the
    retry loop and [retries] the backoff retries taken.  Mutations are
    plain (single-thread or post-join accumulation); merge per-thread
    instances with {!Outcomes.merge_into} after workers are joined. *)
module Outcomes : sig
  type t

  val create : unit -> t

  val of_counts :
    ok:int -> stale:int -> exhausted:int -> errors:int -> retries:int -> t
  (** A counter pre-loaded with the given counts — the bridge for
      snapshot copies taken from concurrent-safe per-domain cells
      ({!Arc_obs.Obs.Outcomes}). *)

  val ok : t -> unit
  val stale : t -> unit
  val exhausted : t -> unit
  val error : t -> unit
  val retry : t -> unit
  val ok_count : t -> int
  val stale_count : t -> int
  val exhausted_count : t -> int
  val error_count : t -> int
  val retry_count : t -> int

  val total : t -> int
  (** [ok + stale + exhausted] — completed read outcomes. *)

  val degraded : t -> int
  (** [stale + exhausted]. *)

  val degraded_rate : t -> float
  (** [degraded / total]; 0 on an empty counter. *)

  val merge_into : src:t -> dst:t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Online mean/variance accumulator (Welford), usable when samples
    are too many to buffer. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end

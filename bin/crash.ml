(* arc-crash: real-crash durability + writer-election harness for the
   shared-memory register substrate (ISSUE 4, reworked by ISSUE 7).

   Each run builds an ARC register inside an mmap'd file
   (Arc_shm.Shm_mem), forks a LEADER writer (candidate 0, which wins
   term 1 of the superblock election) and k hot-standby candidates,
   then SIGKILLs the leader at a seeded write count while reader
   domains in the parent keep reading.  The standbys detect the
   failure through a shared-clock heartbeat lease and arbitrate the
   succession through the superblock's [term ∥ vote] word: each
   campaigns from a common snapshot of term 1, CAS atomicity elects
   exactly one of them into term 2, and only the winner — after the
   election's vote → prefence → recovery → issue sequence — continues
   the write sequence.  The parent then asserts exactly one successor
   won, reconstructs every process's testimony from shared write-logs
   stamped against the mapping's shared clock, and feeds the merged
   cross-process history through the crash-aware atomicity checker.

     dune exec bin/crash.exe -- --runs 200 --candidates 3
     dune exec bin/crash.exe -- --replay-seed 2049052026 -v

   Exit status 0 = clean (and all negative controls behaved);
   1 = violations (each with the exact replay command, also written
   to --fail-log if given); 2 = a negative control went unconvicted
   (corruption controls: the integrity layer is vacuous; election
   controls: the split-vote / dueling-epoch safety argument is).

   The kill itself is real and therefore not schedulable: a seed
   reproduces the configuration and the kill-point draw, not the exact
   interrupted instruction.  What IS deterministic is the judgement —
   every surviving byte is either verified or convicted, and every
   claimed reign is either voted or fenced, whichever point the kill
   landed on. *)

module Shm_mem = Arc_shm.Shm_mem
module Shm_arc = Arc_shm.Shm_arc
module Layout = Arc_shm.Shm_layout
module History = Arc_trace.History
module Checker = Arc_trace.Checker
module Splitmix = Arc_util.Splitmix
module Term_vote = Arc_util.Term_vote
module P0 = Arc_workload.Payload.Make (Arc_mem.Real_mem)
open Cmdliner

type cfg = {
  runs : int;
  seed : int;
  readers : int;
  candidates : int;  (* hot standbys forked beside the leader *)
  capacity : int;
  writes_max : int;
  kill_at : int;  (* 0 = draw the kill write count from the seed *)
  successor_writes : int;
  dir : string;
  verbose : bool;
}

let derive_seed cfg run = (cfg.seed * 1_000_003) + run

let replay_command cfg seed =
  Arc_report.Replay.(
    render ~exe:"arc-crash"
      [
        int "--replay-seed" seed;
        int "--readers" cfg.readers;
        int "--candidates" cfg.candidates;
        int "--kill-at" cfg.kill_at;
        int "--capacity" cfg.capacity;
        int "--writes" cfg.writes_max;
        int "--successor-writes" cfg.successor_writes;
      ])

(* Reader identities: [0, readers) are the reading domains,
   [readers] is the elected successor's post-crash probe read, and
   [readers + 1] is never used — the spare covering the one slot a
   crash may quarantine (Shm_arc.recover's bounded-leak accounting). *)
let identities cfg = cfg.readers + 2

(* Heartbeat lease, in shared-clock ticks.  Readers and standbys keep
   the clock moving (a few ticks per µs between them), the leader
   re-stamps the heartbeat word every ~µs write cycle, so the live age
   stays a few dozen ticks; the lease must dominate an OS-level
   preemption of the leader (tens of ms), not a write cycle.  A
   spurious failover under extreme load is SAFE — the fence converts
   it into an early, orderly succession — it just moves the kill test
   off the intended write. *)
let lease_ticks = 50_000

let mapping_words cfg =
  let nslots = identities cfg + 2 in
  (2 * (cfg.writes_max + 1))
  + (3 * (cfg.successor_writes + 1))
  + (8 * (cfg.candidates + 1))
  + (nslots * (cfg.capacity + (4 * Layout.line_words) + Layout.buf_header + 8))
  + (8 * Layout.line_words) + 1024

(* {1 The shared logs}

   Raw regions of the mapping (skipped by the integrity scan), the
   dead and surviving processes' only way to testify.

   Leader write-log: two words per write — invocation and return
   stamps from the shared clock, written around each fenced write.
   After the kill, entry k with a return stamp is a completed write;
   the single entry with an invocation stamp but no return stamp is
   the write in flight when the kill landed.

   Successor write-log: three words per write — seq, invocation and
   return stamps — because unlike the leader's (whose seqs are its
   entry ordinals) the successor's first seq depends on how the
   interrupted write resolved.

   Status blocks: 8 words per candidate, the standby's verdict on its
   own campaign (won/lost/error, term, takeover accounting, probe). *)

let log_invoked log k = log + (2 * (k - 1))
let log_returned log k = log + (2 * (k - 1)) + 1

let slog_seq slog j = slog + (3 * j)
let slog_invoked slog j = slog + (3 * j) + 1
let slog_returned slog j = slog + (3 * j) + 2

let st_status = 0
and st_term = 1
and st_winner = 2 (* observed winner + 1; 0 = none *)
and st_convictions = 3
and st_torn = 4
and st_journaled = 5
and st_probe = 6 (* observed probe seq + 2; 0 = unset, 1 = torn *)
and st_swrites = 7

let status_won = 1
and status_lost = 2
and status_error = 3

(* {1 The leader (candidate 0)}

   Wins term 1 of a fresh election word — uncontested, but going
   through the campaign keeps the invariant that every writer handle
   in the system was voted for — then writes until killed, bracketing
   each write in the log and re-stamping the heartbeat after it. *)

let leader_writer (module I : Shm_arc.INSTANCE) ~log ~hb ~cfg ~seed =
  let module E = Arc_resilience.Election.Make (I.R) in
  let module F = E.Fenced_reg in
  let freg = F.of_register I.reg ~epoch:(Shm_mem.epoch_cell I.mapping) in
  let el = E.create ~word:(Shm_mem.election_cell I.mapping) ~candidate:0 freg in
  (match E.campaign el with
  | E.Lost _ -> () (* impossible on a fresh word; die silent, run fails *)
  | E.Won { writer = w; _ } -> (
      Shm_mem.atomic_set I.mapping hb (Shm_mem.tick I.mapping);
      let rng = Splitmix.of_int seed in
      let src = Array.make cfg.capacity 0 in
      try
        for k = 1 to cfg.writes_max do
          (* Pace the writer to ~1 µs per cycle.  The parent's
             kill-at-write-K trigger has scheduler-latency slop between
             observing the log and the SIGKILL landing; pacing keeps
             that slop to a few hundred writes instead of tens of
             thousands, so the drawn kill point governs where the crash
             lands.  The pause sits OUTSIDE the invoked/returned
             bracket, so it widens no window the checker reasons
             about. *)
          for _ = 1 to 600 do
            Domain.cpu_relax ()
          done;
          let len = 1 + Splitmix.int rng cfg.capacity in
          P0.stamp src ~seq:k ~len;
          Shm_mem.atomic_set I.mapping (log_invoked log k) (Shm_mem.tick I.mapping);
          F.write w ~src ~len;
          Shm_mem.atomic_set I.mapping (log_returned log k) (Shm_mem.tick I.mapping);
          Shm_mem.atomic_set I.mapping hb (Shm_mem.tick I.mapping)
        done
      with _ -> () (* incl. Fenced_out after a spurious failover *)));
  Unix._exit 0

(* {1 The hot standbys (candidates 1..k)}

   Snapshot the election word while the leader reigns, monitor the
   heartbeat lease (failure DETECTION), and on expiry campaign from
   that common snapshot (failure ARBITRATION): every standby aims at
   the same succession term, so the CAS admits exactly one.  The
   winner's takeover is the full recovery pipeline — integrity scan,
   quarantine, prefreeze journal — run between the prefence and its
   own issue; then it resolves the interrupted write with a probe read
   and continues the sequence.  Losers record who beat them and
   exit. *)

let standby_candidate (module I : Shm_arc.INSTANCE) inst ~hb ~status ~slog ~cfg
    ~candidate =
  let module E = Arc_resilience.Election.Make (I.R) in
  let module F = E.Fenced_reg in
  let freg = F.of_register I.reg ~epoch:(Shm_mem.epoch_cell I.mapping) in
  let el = E.create ~word:(Shm_mem.election_cell I.mapping) ~candidate freg in
  let base = status + (8 * candidate) in
  let put f v = Shm_mem.atomic_set I.mapping (base + f) v in
  (* The common snapshot: the parent forked us only after observing
     the leader's term, so every standby sees the same reign here. *)
  let snap = E.observe el in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec monitor n =
    let age = Shm_mem.clock I.mapping - Shm_mem.atomic_get I.mapping hb in
    if age > lease_ticks then `Expired
    else if n land 1023 = 0 && Unix.gettimeofday () > deadline then `Gave_up
    else begin
      for _ = 1 to 256 do
        Domain.cpu_relax ()
      done;
      (* Keep the shared clock moving even before the readers spin up:
         lease age is measured in ticks, and a frozen clock would mask
         a dead leader. *)
      ignore (Shm_mem.tick I.mapping);
      monitor (n + 1)
    end
  in
  (match monitor 1 with
  | `Gave_up -> put st_status status_error
  | `Expired -> (
      let takeover () =
        match Shm_arc.recover inst with
        | Ok ((rcv : Shm_mem.recovery), journaled) ->
            put st_convictions (List.length rcv.convicted);
            put st_torn
              (List.length
                 (List.filter
                    (fun (c : Shm_mem.conviction) -> c.why = Shm_mem.Torn)
                    rcv.convicted));
            put st_journaled journaled;
            List.length rcv.convicted
        | Error _ ->
            put st_status status_error;
            0
      in
      match E.campaign ~from:snap ~takeover el with
      | E.Lost { term; winner } ->
          put st_term term;
          put st_winner (match winner with Some c -> c + 1 | None -> 0);
          put st_status status_lost
      | E.Won { writer = w; term; _ } -> (
          put st_term term;
          put st_winner (candidate + 1);
          (* Resolve the interrupted write: the register's published
             state is frozen (the leader is dead and fenced), so one
             probe read settles whether its pending W2 exchange
             happened. *)
          let module P = Arc_workload.Payload.Make (I.M) in
          let probe = I.R.reader I.reg cfg.readers in
          let observed =
            I.R.read_with probe ~f:(fun buf len ->
                match P.validate buf ~len with Ok seq -> seq | Error _ -> -1)
          in
          put st_probe (observed + 2);
          if observed < 0 then put st_status status_error
          else begin
            let rng = Splitmix.of_int (Shm_mem.publish_seq I.mapping) in
            let src = Array.make cfg.capacity 0 in
            let written = ref 0 in
            (try
               for j = 0 to cfg.successor_writes - 1 do
                 let seq = observed + 1 + j in
                 let len = 1 + Splitmix.int rng cfg.capacity in
                 P0.stamp src ~seq ~len;
                 let invoked = Shm_mem.tick I.mapping in
                 F.write w ~src ~len;
                 let returned = Shm_mem.tick I.mapping in
                 Shm_mem.atomic_set I.mapping (slog_invoked slog j) invoked;
                 Shm_mem.atomic_set I.mapping (slog_returned slog j) returned;
                 Shm_mem.atomic_set I.mapping (slog_seq slog j) seq;
                 incr written
               done
             with _ -> ());
            put st_swrites !written;
            put st_status status_won
          end)));
  Unix._exit 0

(* {1 Reader domains} *)

let reader_loop (module I : Shm_arc.INSTANCE) recorder stop id =
  let module P = Arc_workload.Payload.Make (I.M) in
  let rd = I.R.reader I.reg id in
  let errors = ref [] in
  while not (Atomic.get stop) do
    (* Pace reads so a run's history stays within the recorder's
       preallocated capacity; the interleaving stress lives in the
       concurrency, not the raw poll rate. *)
    for _ = 1 to 512 do
      Domain.cpu_relax ()
    done;
    let invoked = Shm_mem.tick I.mapping in
    match I.R.read_with rd ~f:(fun buf len -> P.validate buf ~len) with
    | Ok seq ->
        let returned = Shm_mem.tick I.mapping in
        History.Recorder.record recorder ~thread:(1 + id) History.Read ~seq
          ~invoked ~returned
    | Error msg ->
        errors := Printf.sprintf "reader %d: torn snapshot: %s" id msg :: !errors
  done;
  List.rev !errors

(* {1 One run} *)

type pending = No_pending | Published of int * int | Vanished of int

type run_result = {
  seed : int;
  child_writes : int;
  pending : pending;
  convictions : int;
  torn_convictions : int;
  journaled : int;
  winner : int;  (* elected successor's candidate id; -1 = none *)
  term : int;  (* the term the successor reigns under *)
  losers : int;  (* candidates that campaigned and lost *)
  successor_writes_done : int;
  reads : int;
  dropped : int;
  outcome : string;
  violations : string list;
  path : string;
}

let pp_pending = function
  | No_pending -> "none"
  | Published (k, _) -> Printf.sprintf "published@%d" k
  | Vanished k -> Printf.sprintf "vanished@%d" k

let pp_convicted cs =
  if cs = [] then "0"
  else
    Printf.sprintf "%d(%s)" (List.length cs)
      (String.concat ","
         (List.map
            (fun (c : Shm_mem.conviction) ->
              Printf.sprintf "slot%d:%s@%d" c.ordinal
                (Shm_mem.reason_to_string c.why)
                c.seq)
            cs))

let run_one cfg ~seed =
  let rng = Splitmix.of_int seed in
  let path =
    Filename.concat cfg.dir
      (Printf.sprintf "arc-crash-%d-%d.shm" (Unix.getpid ()) seed)
  in
  let m = Shm_mem.create ~path ~words:(mapping_words cfg) in
  let init = Array.make cfg.capacity 0 in
  P0.stamp init ~seq:0 ~len:cfg.capacity;
  let inst =
    Shm_arc.create m ~readers:(identities cfg) ~capacity:cfg.capacity ~init
  in
  let module I = (val inst : Shm_arc.INSTANCE) in
  let log = Shm_mem.alloc_raw m (2 * (cfg.writes_max + 1)) in
  Shm_mem.set_harness_region m log;
  let hb = Shm_mem.alloc_raw m 1 in
  let status = Shm_mem.alloc_raw m (8 * (cfg.candidates + 1)) in
  let slog = Shm_mem.alloc_raw m (3 * (cfg.successor_writes + 1)) in
  (* The kill point is a seeded write NUMBER, not a wall-clock delay:
     the parent watches the shared write-log until the leader reaches
     it, then kills.  Wall clocks drift with machine load — a loaded
     box would land every kill after the leader had already finished —
     while a count always lands the signal inside the writing phase
     (give or take the signal-delivery handful of writes, which is
     exactly the randomness a real crash has anyway).  --kill-at pins
     it instead of drawing it (the draw still runs, keeping later
     draws aligned between pinned and drawn runs of one seed). *)
  let drawn = 1 + Splitmix.int rng cfg.writes_max in
  let kill_at = if cfg.kill_at > 0 then cfg.kill_at else drawn in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> leader_writer inst ~log ~hb ~cfg ~seed:(seed lxor 0x5DEECE66)
  | leader ->
      (* Wait for the leader's term before forking standbys, so every
         standby snapshots the same reign to campaign from — the
         exactly-one-successor argument starts at this common
         snapshot. *)
      let lead_deadline = Unix.gettimeofday () +. 10.0 in
      let rec await_leader () =
        if Term_vote.term (Shm_mem.election m) >= 1 then true
        else if Unix.gettimeofday () > lead_deadline then false
        else begin
          Domain.cpu_relax ();
          await_leader ()
        end
      in
      if not (await_leader ()) then fail "leader never opened term 1";
      (* Arm the lease before any standby can look at it. *)
      if Shm_mem.atomic_get m hb = 0 then
        Shm_mem.atomic_set m hb (Shm_mem.tick m);
      let standbys =
        List.init cfg.candidates (fun i ->
            let candidate = i + 1 in
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 -> standby_candidate inst inst ~hb ~status ~slog ~cfg ~candidate
            | pid -> pid)
      in
      let stop = Atomic.make false in
      let recorder =
        History.Recorder.create ~threads:(cfg.readers + 1) ~capacity:(1 lsl 18)
      in
      let domains =
        List.init cfg.readers (fun id ->
            Domain.spawn (fun () -> reader_loop inst recorder stop id))
      in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let reaped = ref None in
      let rec await n =
        if Shm_mem.atomic_get m (log_invoked log kill_at) <> 0 then ()
        else if n land 4095 = 0 && Unix.gettimeofday () > deadline then ()
        else begin
          (if n land 4095 = 0 then
             match Unix.waitpid [ Unix.WNOHANG ] leader with
             | 0, _ -> ()
             | _, s -> reaped := Some s);
          if !reaped = None then begin
            Domain.cpu_relax ();
            await (n + 1)
          end
        end
      in
      await 1;
      let leader_status =
        match !reaped with
        | Some s -> s
        | None ->
            Unix.kill leader Sys.sigkill;
            snd (Unix.waitpid [] leader)
      in
      (match leader_status with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | Unix.WEXITED 0 -> () (* leader drained writes_max before the kill *)
      | _ -> fail "leader exited abnormally");
      (* The election now runs among the standbys; wait them all out
         (losers exit as soon as they lose; the winner after its
         successor writes). *)
      List.iter (fun pid -> ignore (Unix.waitpid [] pid)) standbys;
      Unix.sleepf 0.002;
      Atomic.set stop true;
      List.iter
        (fun d -> List.iter (fun e -> violations := e :: !violations) (Domain.join d))
        domains;
      (* Reconstruct the leader's testimony from its write-log. *)
      let n_last = ref 0 in
      let completed = ref [] in
      let pending_entry = ref None in
      (try
         for k = 1 to cfg.writes_max do
           let invoked = Shm_mem.atomic_get m (log_invoked log k) in
           if invoked = 0 then raise Exit;
           n_last := k;
           let returned = Shm_mem.atomic_get m (log_returned log k) in
           if returned > 0 then
             completed :=
               History.event History.Write ~thread:0 ~seq:k ~invoked ~returned
               :: !completed
           else begin
             if !pending_entry <> None then
               fail "write-log: two entries without return stamps";
             pending_entry := Some (k, invoked)
           end
         done
       with Exit -> ());
      (match !pending_entry with
      | Some (k, _) when k <> !n_last ->
          fail "write-log: unreturned entry %d is not the last (%d)" k !n_last
      | _ -> ());
      (* Collect the candidates' verdicts: EXACTLY one elected
         successor, everyone else an explicit loser — the property the
         whole term-vote word exists to provide. *)
      let verdict i =
        let base = status + (8 * i) in
        let g f = Shm_mem.atomic_get m (base + f) in
        ( g st_status,
          g st_term,
          g st_winner - 1,
          g st_convictions,
          g st_torn,
          g st_journaled,
          g st_probe - 2,
          g st_swrites )
      in
      let winners = ref [] and losers = ref 0 in
      for i = 1 to cfg.candidates do
        let st, term, win, _, _, _, _, _ = verdict i in
        if st = status_won then winners := i :: !winners
        else if st = status_lost then begin
          incr losers;
          if win >= 0 && not (List.mem win (List.init (cfg.candidates + 1) Fun.id))
          then fail "candidate %d lost to unknown candidate %d (term %d)" i win term
        end
        else fail "candidate %d ended in status %d (neither won nor lost)" i st
      done;
      (match !winners with
      | [ _ ] -> ()
      | [] -> fail "no candidate won the succession"
      | ws ->
          fail "split election: candidates %s all believe they won"
            (String.concat "," (List.map string_of_int ws)));
      let winner, term, convictions, torn_convictions, journaled, probe, swrites =
        match !winners with
        | w :: _ ->
            let _, term, _, conv, torn, jr, probe, sw = verdict w in
            (w, term, conv, torn, jr, probe, sw)
        | [] -> (-1, 0, 0, 0, 0, -2, 0)
      in
      if winner >= 0 && term < 2 then
        fail "successor reigns under term %d (the leader held term 1)" term;
      if convictions > 1 then
        fail "recovery convicted %d slots from one crash" convictions;
      (* Resolve the interrupted write from the winner's probe. *)
      let pending =
        if winner < 0 then No_pending
        else
          match !pending_entry with
          | None ->
              if probe <> !n_last then
                fail "probe observed seq %d, expected %d (no pending write)"
                  probe !n_last;
              No_pending
          | Some (k, invoked) ->
              if probe = k then Published (k, invoked)
              else if probe = k - 1 then Vanished k
              else begin
                fail "probe observed seq %d, expected %d or %d" probe (k - 1) k;
                No_pending
              end
      in
      (* A torn content copy can only be the interrupted write's: ARC
         completes every copy before that write's W2 exchange, so all
         earlier writes left complete trailers — and the interrupted
         write cannot have published (the exchange comes after the
         copy), so a torn conviction must coincide with a vanished
         pending write.  Readers never see the torn bytes; this checks
         the bookkeeping agrees. *)
      if torn_convictions > 0 && (match pending with Vanished _ -> false | _ -> true)
      then
        fail
          "torn slot convicted but the interrupted write is %s — a published \
           write left a torn copy"
          (pp_pending pending);
      (* Reconstruct the successor's writes from its log. *)
      let successor = ref [] in
      if winner >= 0 then begin
        (try
           for j = 0 to swrites - 1 do
             let seq = Shm_mem.atomic_get m (slog_seq slog j) in
             if seq = 0 then raise Exit;
             successor :=
               History.event History.Write
                 ~thread:(cfg.readers + 1)
                 ~seq
                 ~invoked:(Shm_mem.atomic_get m (slog_invoked slog j))
                 ~returned:(Shm_mem.atomic_get m (slog_returned slog j))
             :: !successor
           done
         with Exit -> ());
        match List.rev !successor with
        | (first : History.event) :: _ ->
            let expect = probe + 1 in
            if first.seq <> expect then
              fail "successor started at seq %d, probe says %d" first.seq expect
        | [] -> fail "elected successor published nothing"
      end;
      (* Judgement: the merged cross-process history — leader writes,
         successor writes, every recorded read — through the
         crash-aware checker, fenced at the recovery stamp. *)
      let history =
        History.of_events
          (!completed @ !successor
          @ History.events (History.Recorder.history recorder))
      in
      let reads = List.length (History.reads history) in
      let pending_write =
        match pending with Published (k, inv) -> Some (k, inv) | _ -> None
      in
      let outcome =
        match
          Checker.check_crash ?pending_write ~fence:(Shm_mem.fence_at m) history
        with
        | Ok (_, o) -> Checker.crash_outcome_name o
        | Error v ->
            fail "%s" (Format.asprintf "%a" Checker.pp_violation v);
            "violation"
      in
      let result =
        {
          seed;
          child_writes = !n_last;
          pending;
          convictions;
          torn_convictions;
          journaled;
          winner;
          term;
          losers = !losers;
          successor_writes_done = swrites;
          reads;
          dropped = History.Recorder.dropped recorder;
          outcome;
          violations = List.rev !violations;
          path;
        }
      in
      (* A failing history is kept next to the mapping with its crash
         context, so arc-check --history can re-judge it offline. *)
      if result.violations <> [] then begin
        let meta =
          ("fence", Shm_mem.fence_at m)
          :: ("epoch", Shm_mem.epoch m)
          :: ("term", term)
          :: ("winner", winner)
          ::
          (match pending_write with
          | Some (k, inv) -> [ ("pending_seq", k); ("pending_invoked", inv) ]
          | None -> [])
        in
        History.dump ~meta history (path ^ ".history")
      end;
      Shm_mem.close m;
      if result.violations = [] then Sys.remove path;
      result

let print_result ~verbose r =
  if verbose || r.violations <> [] then begin
    Printf.printf
      "run [seed %d]: writes=%d pending=%s winner=c%d term=%d losers=%d \
       convicted=%d torn=%d journaled=%d swrites=%d reads=%d%s outcome=%s — %s\n"
      r.seed r.child_writes (pp_pending r.pending) r.winner r.term r.losers
      r.convictions r.torn_convictions r.journaled r.successor_writes_done r.reads
      (if r.dropped > 0 then Printf.sprintf " (dropped %d)" r.dropped else "")
      r.outcome
      (if r.violations = [] then "ok" else String.concat "; " r.violations);
    if r.violations <> [] then
      Printf.printf
        "  mapping kept at %s\n\
        \  re-judge: dune exec bin/check.exe -- --history %s.history --shm %s\n"
        r.path r.path r.path
  end

(* A forked process may not fork again once it has spawned domains
   (OCaml 5's Unix.fork refuses), and each run needs both — fork the
   leader and every standby first, then spawn reader domains.  So the
   campaign driver runs every run in its own forked subprocess, which
   performs its forks while still single-domain.  The subprocess
   prints its own per-run line and ships the result record back
   through a temp file. *)
let run_one_isolated cfg ~seed =
  let stub outcome msg =
    {
      seed;
      child_writes = 0;
      pending = No_pending;
      convictions = 0;
      torn_convictions = 0;
      journaled = 0;
      winner = -1;
      term = 0;
      losers = 0;
      successor_writes_done = 0;
      reads = 0;
      dropped = 0;
      outcome;
      violations = [ msg ];
      path = "";
    }
  in
  let tmp = Filename.temp_file "arc-crash-res" ".bin" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let r =
        try run_one cfg ~seed
        with e -> stub "exception" (Printexc.to_string e)
      in
      print_result ~verbose:cfg.verbose r;
      flush stdout;
      let oc = open_out_bin tmp in
      Marshal.to_channel oc r [];
      close_out oc;
      Unix._exit 0
  | pid -> (
      let _, _ = Unix.waitpid [] pid in
      let r =
        try
          let ic = open_in_bin tmp in
          let r : run_result = Marshal.from_channel ic in
          close_in ic;
          r
        with _ -> stub "lost" "run subprocess died without reporting"
      in
      (try Sys.remove tmp with Sys_error _ -> ());
      match r.outcome with
      | "lost" ->
          print_result ~verbose:cfg.verbose r;
          r
      | _ -> r)

(* {1 Conviction controls}

   The integrity layer must convict known-bad mappings, or the clean
   soak above proves nothing.  Three corruptions — a flipped payload
   word, a torn trailer, a stale superblock — plus the clean mapping
   that must NOT be convicted. *)

let with_control_mapping cfg name f =
  let path =
    Filename.concat cfg.dir
      (Printf.sprintf "arc-crash-ctl-%d-%s.shm" (Unix.getpid ()) name)
  in
  let m = Shm_mem.create ~path ~words:(1 lsl 14) in
  let init = Array.make 8 0 in
  P0.stamp init ~seq:0 ~len:8;
  let inst = Shm_arc.create m ~readers:2 ~capacity:8 ~init in
  let module I = (val inst : Shm_arc.INSTANCE) in
  let src = Array.make 8 0 in
  for k = 1 to 5 do
    P0.stamp src ~seq:k ~len:8;
    I.R.write I.reg ~src ~len:8
  done;
  let verdict = f m in
  Shm_mem.close m;
  Sys.remove path;
  verdict

let newest_buffer m =
  let best = ref None in
  Shm_mem.iter_buffers m (fun (info : Shm_mem.buffer_info) ->
      match !best with
      | Some (b : Shm_mem.buffer_info) when b.end_seq >= info.end_seq -> ()
      | _ -> if info.end_seq > 0 then best := Some info);
  match !best with Some b -> b | None -> failwith "control: nothing published"

let conviction_controls cfg =
  let check name expect verdict =
    let ok = expect verdict in
    Printf.printf "conviction-control %s %s\n" name
      (match (ok, verdict) with
      | true, Ok (r : Shm_mem.recovery) when r.convicted = [] ->
          Printf.sprintf "INTACT (expected): %d intact, 0 convictions" r.intact
      | true, Ok r -> Printf.sprintf "CONVICTED (expected): %s" (pp_convicted r.convicted)
      | true, Error msg -> Printf.sprintf "CONVICTED (expected): %s" msg
      | false, Ok r ->
          Printf.sprintf "UNCONVICTED — integrity layer is vacuous (%s)"
            (pp_convicted r.convicted)
      | false, Error msg -> Printf.sprintf "unexpected whole-mapping conviction: %s" msg);
    ok
  in
  let flipped =
    with_control_mapping cfg "flip" (fun m ->
        let b = newest_buffer m in
        let at = b.base + Layout.buf_header + 1 in
        Shm_mem.unsafe_set m at (Shm_mem.unsafe_get m at lxor 1);
        Shm_mem.recover m)
    |> check "flipped-payload" (function
         | Ok (r : Shm_mem.recovery) ->
             List.exists
               (fun (c : Shm_mem.conviction) -> c.why = Shm_mem.Checksum)
               r.convicted
         | Error _ -> false)
  in
  let torn =
    with_control_mapping cfg "torn" (fun m ->
        let b = newest_buffer m in
        Shm_mem.unsafe_set m (b.base + Layout.buf_end) 0;
        Shm_mem.recover m)
    |> check "torn-trailer" (function
         | Ok (r : Shm_mem.recovery) ->
             List.exists
               (fun (c : Shm_mem.conviction) -> c.why = Shm_mem.Torn)
               r.convicted
         | Error _ -> false)
  in
  let stale =
    with_control_mapping cfg "stale" (fun m ->
        Shm_mem.unsafe_set m Layout.sb_epoch 0;
        Shm_mem.recover m)
    |> check "stale-superblock" (function Error _ -> true | Ok _ -> false)
  in
  let skewed =
    with_control_mapping cfg "version" (fun m ->
        Shm_mem.unsafe_set m Layout.sb_version (Layout.version - 1);
        Shm_mem.recover m)
    |> check "stale-layout-version" (function Error _ -> true | Ok _ -> false)
  in
  let clean =
    with_control_mapping cfg "clean" Shm_mem.recover
    |> check "clean-mapping" (function
         | Ok (r : Shm_mem.recovery) -> r.convicted = [] && r.intact > 0
         | Error _ -> false)
  in
  flipped && torn && stale && skewed && clean

(* {1 Election negative controls}

   The election's safety argument (one writer per term, zombies
   fenced) must be FALSIFIABLE, or the clean campaign above proves
   nothing about it.  Two arms, each simulating one way the argument
   could break and demanding the checker convicts the result.  Both
   run in-process over heap substrates: what is under test is the
   judgement, not the kill. *)

(* Split vote: candidate B's vote CAS LIES (reports success without
   storing — Fault_plan.Cas_lie through the fault-injecting memory),
   so A and B both believe they won term 1.  Under vote-only authority
   — writing without the epoch fence, which is exactly what the fence
   exists to forbid — their write sequences collide, and the merged
   history must be convicted. *)
let split_vote_control () =
  let module Mem = Arc_fault.Campaign.Mem in
  let module R = Arc_core.Arc.Make (Mem) in
  let module E = Arc_resilience.Election.Make (R) in
  let module P = Arc_workload.Payload.Make (Mem) in
  let capacity = 8 in
  let init = Array.make capacity 0 in
  P.stamp init ~seq:0 ~len:capacity;
  let freg = E.Fenced_reg.create ~readers:1 ~capacity ~init in
  let reg = E.Fenced_reg.inner freg in
  let word = Mem.atomic_contended Term_vote.none in
  let a = E.create ~word ~candidate:0 freg in
  let b = E.create ~word ~candidate:1 freg in
  let snap = E.observe a in
  let won_a = E.request_vote ~from:snap a <> None in
  (* Arm the lie AFTER A's honest vote: B's CAS is the ambient
     context's first rmw from here on. *)
  Mem.install
    (Arc_fault.Fault_plan.cas_lie ~fiber:0 ~nth:1 Arc_fault.Fault_plan.empty);
  Mem.set_ambient_fiber (Some 0);
  let won_b = E.request_vote ~from:snap b <> None in
  Mem.set_ambient_fiber None;
  let stats = Mem.drain () in
  if not (won_a && won_b) || stats.Arc_fault.Fault_mem.cas_lies <> 1 then
    (false, "the lie did not produce a split vote (control is vacuous)")
  else begin
    let clock = ref 0 in
    let tick () =
      incr clock;
      !clock
    in
    let src = Array.make capacity 0 in
    let ev = ref [] in
    let write ~thread ~seq =
      P.stamp src ~seq ~len:capacity;
      let invoked = tick () in
      R.write reg ~src ~len:capacity;
      ev :=
        History.event History.Write ~thread ~seq ~invoked ~returned:(tick ())
        :: !ev
    in
    (* Both reigns write "their" term-1 sequence. *)
    write ~thread:0 ~seq:1;
    write ~thread:1 ~seq:1;
    write ~thread:0 ~seq:2;
    write ~thread:1 ~seq:2;
    match Checker.check (History.of_events !ev) with
    | Error v -> (true, Format.asprintf "%a" Checker.pp_violation v)
    | Ok _ -> (false, "merged split-vote history accepted")
  end

(* Dueling epochs: the deposed leader keeps trying to publish after
   losing its term.  The healthy path — its fenced write raising
   Fenced_out — is asserted as the non-vacuity guard; then the control
   BREAKS the rule by writing through the raw register underneath the
   fence, and a reader observing that late publish after the
   successor's writes must be convicted as a new/old inversion. *)
let dueling_epoch_control () =
  let module Mem = Arc_mem.Real_mem in
  let module R = Arc_core.Arc.Make (Mem) in
  let module E = Arc_resilience.Election.Make (R) in
  let module F = E.Fenced_reg in
  let module P = Arc_workload.Payload.Make (Mem) in
  let capacity = 8 in
  let init = Array.make capacity 0 in
  P.stamp init ~seq:0 ~len:capacity;
  let freg = F.create ~readers:1 ~capacity ~init in
  let word = Mem.atomic_contended Term_vote.none in
  let el0 = E.create ~word ~candidate:0 freg in
  let el1 = E.create ~word ~candidate:1 freg in
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let ev = ref [] in
  let src = Array.make capacity 0 in
  let fwrite w ~thread ~seq =
    P.stamp src ~seq ~len:capacity;
    let invoked = tick () in
    F.write w ~src ~len:capacity;
    ev :=
      History.event History.Write ~thread ~seq ~invoked ~returned:(tick ()) :: !ev
  in
  let rd = F.reader freg 0 in
  let read ~thread =
    let invoked = tick () in
    let seq =
      R.read_with rd ~f:(fun buf len ->
          match P.validate buf ~len with Ok s -> s | Error _ -> -1)
    in
    ev := History.event History.Read ~thread ~seq ~invoked ~returned:(tick ()) :: !ev;
    seq
  in
  match E.campaign el0 with
  | E.Lost _ -> (false, "leader's uncontested campaign lost (control is vacuous)")
  | E.Won { writer = w0; _ } -> (
      (* The leader's completed reign: writes 1..5 under term 1. *)
      for seq = 1 to 5 do
        fwrite w0 ~thread:0 ~seq
      done;
      match E.campaign el1 with
      | E.Lost _ ->
          (false, "successor's campaign lost (control is vacuous)")
      | E.Won { writer = w1; _ } -> (
      (* el1's campaign deposed w0 the moment it won term 2. *)
      let zombified =
        (* The healthy path: the zombie's fenced write must abort. *)
        match fwrite w0 ~thread:0 ~seq:99 with
        | () -> false
        | exception Arc_resilience.Fenced.Fenced_out _ -> true
      in
      if not zombified then
        (false, "deposed leader's write was not fenced (control is vacuous)")
      else begin
        for seq = 6 to 10 do
          fwrite w1 ~thread:1 ~seq
        done;
        let before = read ~thread:2 in
        (* The broken zombie: publish its stale pending write (seq 6)
           THROUGH the raw register, underneath the fence.  Not
           recorded as a history event — the zombie is dead as far as
           the model knows; the damage must surface through what
           readers then observe. *)
        P.stamp src ~seq:6 ~len:capacity;
        R.write (F.inner freg) ~src ~len:capacity;
        let after = read ~thread:2 in
        if before <> 10 || after <> 6 then
          ( false,
            Printf.sprintf
              "zombie publish not reader-visible (read %d then %d; control is \
               vacuous)"
              before after )
        else
          match Checker.check (History.of_events !ev) with
          | Error v -> (true, Format.asprintf "%a" Checker.pp_violation v)
          | Ok _ -> (false, "zombie's late publish accepted by the checker")
      end))

let election_controls () =
  let report name (convicted, detail) =
    Printf.printf "election-control %s %s\n" name
      (if convicted then "CONVICTED (expected): " ^ detail
       else "UNCONVICTED — election safety is unfalsified: " ^ detail);
    convicted
  in
  let sv = report "split-vote" (split_vote_control ()) in
  let de = report "dueling-epoch" (dueling_epoch_control ()) in
  sv && de

(* {1 Fabric reign campaign (ISSUE 9)}

   The sharded version of the harness above: one mapping holds
   [shards] registers (Shm_arc.create_fabric), each with its own
   leader process elected through its reign-table election word and k
   hot standbys, while reader domains in the parent take
   reign-CERTIFIED cross-shard snapshots.  A seeded subset of shard
   leaders is SIGKILLed mid-run; each killed shard's standbys
   arbitrate exactly one successor whose campaign (vote → prefence →
   shard-scoped recovery → config bump → issue) advances the
   fabric-wide configuration epoch.  The parent then asserts
   exactly-one-successor PER SHARD, reconstructs the merged per-shard
   histories from the shared logs, and judges them together with every
   certified snapshot through the checker's reign dimension: a
   snapshot certified under epoch e must draw every shard value from a
   reign <= e. *)

let fab_identities cfg ~shards = cfg.readers + shards + 2

(* Fabric status blocks: the single-register layout plus the winner's
   config-bump value (the epoch its reign begins at — reign claims key
   on it). *)
let fst_config = 8
let fab_status_words = 10

let fab_mapping_words cfg ~shards =
  let nslots = fab_identities cfg ~shards + 2 in
  let per_shard =
    (2 * (cfg.writes_max + 1))
    + (3 * (cfg.successor_writes + 1))
    + (fab_status_words * (cfg.candidates + 1))
    + (nslots * (cfg.capacity + (4 * Layout.line_words) + Layout.buf_header + 8))
    + (8 * Layout.line_words)
  in
  (shards * per_shard) + ((shards + 3) * Layout.line_words) + 2048

let fab_replay_command cfg ~shards seed =
  Arc_report.Replay.(
    render ~exe:"arc-crash"
      [
        flag "--fabric";
        int "--shards" shards;
        int "--replay-seed" seed;
        int "--readers" cfg.readers;
        int "--candidates" cfg.candidates;
        int "--kill-at" cfg.kill_at;
        int "--capacity" cfg.capacity;
        int "--writes" cfg.writes_max;
        int "--successor-writes" cfg.successor_writes;
      ])

(* Shard leader: candidate 0 of its shard's election word.  Identical
   in shape to {!leader_writer}, except the election is reign-fenced —
   the campaign bumps the fabric's configuration epoch — and the fence
   epoch is the shard's own reign-table slot, so deposing THIS leader
   cannot fence any other shard's. *)
let fab_leader (module I : Shm_arc.FABRIC_INSTANCE) ~shard ~log ~hb ~rlog ~cfg
    ~seed =
  let module RG = Arc_resilience.Reign.Make (I.R) in
  let module F = RG.E.Fenced_reg in
  let reg = I.regs.(shard) in
  let freg =
    F.of_register reg ~epoch:(Shm_mem.shard_epoch_cell I.mapping ~shard)
  in
  let el =
    RG.create
      ~word:(Shm_mem.shard_election_cell I.mapping ~shard)
      ~candidate:0
      ~config:(Shm_mem.config_epoch_cell I.mapping)
      freg
  in
  (match RG.campaign el with
  | RG.Lost _ -> () (* impossible on a fresh word; die silent, run fails *)
  | RG.Won { writer = w; config; _ } -> (
      (* The claim every value this reign publishes is judged under. *)
      Shm_mem.atomic_set I.mapping (rlog + shard) config;
      Shm_mem.atomic_set I.mapping hb (Shm_mem.tick I.mapping);
      let rng = Splitmix.of_int seed in
      let src = Array.make cfg.capacity 0 in
      try
        for k = 1 to cfg.writes_max do
          for _ = 1 to 600 do
            Domain.cpu_relax ()
          done;
          let len = 1 + Splitmix.int rng cfg.capacity in
          P0.stamp src ~seq:k ~len;
          Shm_mem.atomic_set I.mapping (log_invoked log k) (Shm_mem.tick I.mapping);
          F.write w ~src ~len;
          Shm_mem.atomic_set I.mapping (log_returned log k) (Shm_mem.tick I.mapping);
          Shm_mem.atomic_set I.mapping hb (Shm_mem.tick I.mapping)
        done
      with _ -> ()));
  Unix._exit 0

(* Shard hot standby: {!standby_candidate} with the shard-scoped
   recovery as its takeover — other shards' leaders may be alive and
   mid-copy, so the scan must not classify their buffers — and the
   reign campaign's config bump recorded for the judgement's claims. *)
let fab_standby (module I : Shm_arc.FABRIC_INSTANCE) finst ~shard ~hb ~status
    ~slog ~cfg ~candidate =
  let module RG = Arc_resilience.Reign.Make (I.R) in
  let module F = RG.E.Fenced_reg in
  let reg = I.regs.(shard) in
  let freg =
    F.of_register reg ~epoch:(Shm_mem.shard_epoch_cell I.mapping ~shard)
  in
  let el =
    RG.create
      ~word:(Shm_mem.shard_election_cell I.mapping ~shard)
      ~candidate
      ~config:(Shm_mem.config_epoch_cell I.mapping)
      freg
  in
  let put f v = Shm_mem.atomic_set I.mapping (status + f) v in
  let snap = RG.observe el in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec monitor n =
    let age = Shm_mem.clock I.mapping - Shm_mem.atomic_get I.mapping hb in
    if age > lease_ticks then `Expired
    else if n land 1023 = 0 && Unix.gettimeofday () > deadline then `Gave_up
    else begin
      for _ = 1 to 256 do
        Domain.cpu_relax ()
      done;
      ignore (Shm_mem.tick I.mapping);
      monitor (n + 1)
    end
  in
  (match monitor 1 with
  | `Gave_up -> put st_status status_error
  | `Expired -> (
      let takeover () =
        match Shm_arc.recover_shard finst ~shard with
        | Ok ((rcv : Shm_mem.recovery), journaled) ->
            put st_convictions (List.length rcv.convicted);
            put st_torn
              (List.length
                 (List.filter
                    (fun (c : Shm_mem.conviction) -> c.why = Shm_mem.Torn)
                    rcv.convicted));
            put st_journaled journaled;
            List.length rcv.convicted
        | Error _ ->
            put st_status status_error;
            0
      in
      match RG.campaign ~from:snap ~takeover el with
      | RG.Lost { term; winner } ->
          put st_term term;
          put st_winner (match winner with Some c -> c + 1 | None -> 0);
          put st_status status_lost
      | RG.Won { writer = w; term; config; _ } -> (
          put st_term term;
          put st_winner (candidate + 1);
          put fst_config config;
          let module P = Arc_workload.Payload.Make (I.M) in
          let probe = I.R.reader reg (cfg.readers + I.shards) in
          let observed =
            I.R.read_with probe ~f:(fun buf len ->
                match P.validate buf ~len with Ok seq -> seq | Error _ -> -1)
          in
          put st_probe (observed + 2);
          if observed < 0 then put st_status status_error
          else begin
            let rng = Splitmix.of_int (Shm_mem.publish_seq I.mapping + shard) in
            let src = Array.make cfg.capacity 0 in
            let written = ref 0 in
            (try
               for j = 0 to cfg.successor_writes - 1 do
                 let seq = observed + 1 + j in
                 let len = 1 + Splitmix.int rng cfg.capacity in
                 P0.stamp src ~seq ~len;
                 let invoked = Shm_mem.tick I.mapping in
                 F.write w ~src ~len;
                 let returned = Shm_mem.tick I.mapping in
                 Shm_mem.atomic_set I.mapping (slog_invoked slog j) invoked;
                 Shm_mem.atomic_set I.mapping (slog_returned slog j) returned;
                 Shm_mem.atomic_set I.mapping (slog_seq slog j) seq;
                 incr written
               done
             with _ -> ());
            put st_swrites !written;
            put st_status status_won
          end)));
  Unix._exit 0

type fab_result = {
  fseed : int;
  fshards : int;
  fkilled : int;  (* shard leaders SIGKILLed by the seeded draw *)
  felected : int;  (* shards that ended with exactly one successor *)
  flosers : int;
  fpendings : int;  (* killed shards with a write in flight *)
  fconvictions : int;
  fjournaled : int;
  fsnapshots : int;  (* certified snapshots served to reader domains *)
  freign_changed : int;  (* snapshots that returned the typed verdict *)
  fconfig : int;  (* final configuration epoch *)
  fviolations : string list;
  fpath : string;
}

let fab_run_one cfg ~shards ~seed =
  let rng = Splitmix.of_int seed in
  let path =
    Filename.concat cfg.dir
      (Printf.sprintf "arc-crash-fab-%d-%d.shm" (Unix.getpid ()) seed)
  in
  let m = Shm_mem.create ~path ~words:(fab_mapping_words cfg ~shards) in
  let init = Array.make cfg.capacity 0 in
  P0.stamp init ~seq:0 ~len:cfg.capacity;
  let finst =
    Shm_arc.create_fabric m ~shards
      ~readers:(fab_identities cfg ~shards)
      ~capacity:cfg.capacity ~init
  in
  let module I = (val finst : Shm_arc.FABRIC_INSTANCE) in
  (* Every shared record is allocated before the first fork: children
     walk the mapping during recovery, and the creator-only bump
     allocator must be quiescent by then. *)
  let log_words = 2 * (cfg.writes_max + 1) in
  let slog_words = 3 * (cfg.successor_writes + 1) in
  let logs = Shm_mem.alloc_raw m (shards * log_words) in
  Shm_mem.set_harness_region m logs;
  let hbs = Shm_mem.alloc_raw m shards in
  let statuses =
    Shm_mem.alloc_raw m (fab_status_words * shards * (cfg.candidates + 1))
  in
  let slogs = Shm_mem.alloc_raw m (shards * slog_words) in
  let rlog = Shm_mem.alloc_raw m shards in
  let log_of s = logs + (s * log_words) in
  let slog_of s = slogs + (s * slog_words) in
  let status_of s c = statuses + (fab_status_words * ((s * (cfg.candidates + 1)) + c)) in
  (* The parent's fabric view: certified snapshots over the shared
     registers.  Helping deposits are heap-local, so cross-process
     scans certify by clean probe passes alone — bounded here by the
     certified scan's round budget, with the typed verdict as the
     escape during elections. *)
  let module FB = Arc_fabric.Fabric.Make (I.R) in
  let fab =
    FB.of_registers I.regs ~writers:shards ~readers:cfg.readers
      ~capacity:cfg.capacity
  in
  FB.attach_reign fab ~config:(Shm_mem.config_epoch_cell m);
  (* The kill plan: at least one shard leader dies; each killed shard
     draws its own kill write-count (--kill-at pins them all).  Draws
     happen unconditionally so pinned and drawn runs of one seed stay
     aligned. *)
  let kill_count = 1 + Splitmix.int rng shards in
  let kill_order = Array.init shards Fun.id in
  for i = shards - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let t = kill_order.(i) in
    kill_order.(i) <- kill_order.(j);
    kill_order.(j) <- t
  done;
  let killed = Array.sub kill_order 0 kill_count in
  let kill_at =
    Array.map
      (fun _ ->
        let drawn = 1 + Splitmix.int rng cfg.writes_max in
        if cfg.kill_at > 0 then cfg.kill_at else drawn)
      killed
  in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Fork the leaders shard by shard, awaiting each term-1 election
     before forking that shard's standbys so they snapshot a common
     reign; all forks complete before any reader domain spawns. *)
  let leaders = Array.make shards (-1) in
  let standbys = ref [] in
  for s = 0 to shards - 1 do
    flush stdout;
    flush stderr;
    (match Unix.fork () with
    | 0 ->
        fab_leader finst ~shard:s ~log:(log_of s) ~hb:(hbs + s) ~rlog ~cfg
          ~seed:(seed lxor (0x5DEECE66 + s))
    | pid -> leaders.(s) <- pid);
    let lead_deadline = Unix.gettimeofday () +. 10.0 in
    let rec await_leader () =
      if Term_vote.term (Shm_mem.shard_election m ~shard:s) >= 1 then true
      else if Unix.gettimeofday () > lead_deadline then false
      else begin
        Domain.cpu_relax ();
        await_leader ()
      end
    in
    if not (await_leader ()) then fail "shard %d: leader never opened term 1" s;
    if Shm_mem.atomic_get m (hbs + s) = 0 then
      Shm_mem.atomic_set m (hbs + s) (Shm_mem.tick m);
    for c = 1 to cfg.candidates do
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
          fab_standby finst finst ~shard:s ~hb:(hbs + s)
            ~status:(status_of s c) ~slog:(slog_of s) ~cfg ~candidate:c
      | pid -> standbys := pid :: !standbys
    done
  done;
  (* Reader domains: certified snapshots, decoded per shard, one
     snapshot_obs per certified vector.  The typed Reign_changed
     verdict is counted, never a violation — it is the designed
     behavior while a handoff is in flight. *)
  let stop = Atomic.make false in
  let domains =
    List.init cfg.readers (fun id ->
        Domain.spawn (fun () ->
            let ctx = FB.scanner fab id in
            let scratch = Array.make cfg.capacity 0 in
            let obs = ref [] and changed = ref 0 and errors = ref [] in
            while not (Atomic.get stop) do
              for _ = 1 to 512 do
                Domain.cpu_relax ()
              done;
              let invoked = Shm_mem.tick m in
              match FB.snapshot_certified ctx with
              | Error (_ : Arc_fabric.Fabric.reign_change) -> incr changed
              | Ok snap ->
                  let returned = Shm_mem.tick m in
                  let observed =
                    Array.init shards (fun s ->
                        let len = FB.shard_copy snap s ~dst:scratch in
                        match P0.validate_words scratch ~len with
                        | Ok seq -> seq
                        | Error msg ->
                            errors :=
                              Printf.sprintf
                                "reader %d: shard %d torn in snapshot: %s" id s
                                msg
                              :: !errors;
                            P0.decode_words scratch)
                  in
                  obs :=
                    {
                      Checker.sthread = 1000 + id;
                      invoked;
                      returned;
                      observed;
                      sepoch = FB.snap_epoch snap;
                    }
                    :: !obs
            done;
            (List.rev !obs, !changed, List.rev !errors)))
  in
  (* Kill each condemned leader when its shard's log reaches the drawn
     write count (or the leader drains first — then the "kill" lands
     on an exited process and that shard fails over on lease expiry
     like any other). *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  Array.iteri
    (fun i s ->
      let log = log_of s in
      let reaped = ref false in
      let rec await n =
        if Shm_mem.atomic_get m (log_invoked log kill_at.(i)) <> 0 then ()
        else if n land 4095 = 0 && Unix.gettimeofday () > deadline then ()
        else begin
          (if n land 4095 = 0 then
             match Unix.waitpid [ Unix.WNOHANG ] leaders.(s) with
             | 0, _ -> ()
             | _, _ -> reaped := true);
          if not !reaped then begin
            Domain.cpu_relax ();
            await (n + 1)
          end
        end
      in
      await 1;
      if not !reaped then begin
        Unix.kill leaders.(s) Sys.sigkill;
        ignore (Unix.waitpid [] leaders.(s))
      end;
      leaders.(s) <- -1)
    killed;
  (* Unkilled leaders drain their writes and exit on their own; their
     shards fail over on lease expiry exactly like the killed ones. *)
  Array.iteri
    (fun _s pid -> if pid > 0 then ignore (Unix.waitpid [] pid))
    leaders;
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) !standbys;
  Unix.sleepf 0.002;
  Atomic.set stop true;
  let reader_out = List.map Domain.join domains in
  List.iter
    (fun (_, _, errs) ->
      List.iter (fun e -> violations := e :: !violations) errs)
    reader_out;
  let snapshots = List.concat_map (fun (obs, _, _) -> obs) reader_out in
  let reign_changed =
    List.fold_left (fun acc (_, c, _) -> acc + c) 0 reader_out
  in
  (* Per-shard judgement: testimony reconstruction, exactly one
     successor, pending-write resolution — then the cross-shard reign
     judgement over the merged histories and certified snapshots. *)
  let histories = Array.make shards (History.of_events []) in
  let reigns = ref [] in
  let elected = ref 0
  and losers = ref 0
  and pendings = ref 0
  and convictions = ref 0
  and journaled = ref 0 in
  for s = 0 to shards - 1 do
    let log = log_of s in
    let n_last = ref 0 in
    let completed = ref [] in
    let pending_entry = ref None in
    (try
       for k = 1 to cfg.writes_max do
         let invoked = Shm_mem.atomic_get m (log_invoked log k) in
         if invoked = 0 then raise Exit;
         n_last := k;
         let returned = Shm_mem.atomic_get m (log_returned log k) in
         if returned > 0 then
           completed :=
             History.event History.Write ~thread:0 ~seq:k ~invoked ~returned
             :: !completed
         else begin
           if !pending_entry <> None then
             fail "shard %d: write-log has two entries without return stamps" s;
           pending_entry := Some (k, invoked)
         end
       done
     with Exit -> ());
    (match !pending_entry with
    | Some (k, _) when k <> !n_last ->
        fail "shard %d: unreturned entry %d is not the last (%d)" s k !n_last
    | _ -> ());
    (match Shm_mem.atomic_get m (rlog + s) with
    | 0 -> fail "shard %d: leader never recorded its reign" s
    | config -> reigns := { Checker.rshard = s; first_seq = 1; config } :: !reigns);
    let verdict c =
      let base = status_of s c in
      let g f = Shm_mem.atomic_get m (base + f) in
      ( g st_status,
        g st_term,
        g st_winner - 1,
        g st_convictions,
        g st_torn,
        g st_journaled,
        g st_probe - 2,
        g st_swrites,
        g fst_config )
    in
    let winners = ref [] in
    for c = 1 to cfg.candidates do
      let st, term, win, _, _, _, _, _, _ = verdict c in
      if st = status_won then winners := c :: !winners
      else if st = status_lost then begin
        incr losers;
        if win >= 0 && win > cfg.candidates then
          fail "shard %d: candidate %d lost to unknown candidate %d (term %d)" s
            c win term
      end
      else
        fail "shard %d: candidate %d ended in status %d (neither won nor lost)"
          s c st
    done;
    (match !winners with
    | [ _ ] -> incr elected
    | [] -> fail "shard %d: no candidate won the succession" s
    | ws ->
        fail "shard %d: split election — candidates %s all believe they won" s
          (String.concat "," (List.map string_of_int ws)));
    let sw_events = ref [] in
    (match !winners with
    | w :: _ ->
        let _, term, _, conv, torn, jr, probe, swrites, sconfig = verdict w in
        if term < 2 then
          fail "shard %d: successor reigns under term %d (leader held term 1)" s
            term;
        if conv > 1 then
          fail "shard %d: recovery convicted %d slots from one crash" s conv;
        convictions := !convictions + conv;
        journaled := !journaled + jr;
        let pending =
          match !pending_entry with
          | None ->
              if probe <> !n_last then
                fail "shard %d: probe observed seq %d, expected %d (no pending)"
                  s probe !n_last;
              No_pending
          | Some (k, invoked) ->
              if probe = k then Published (k, invoked)
              else if probe = k - 1 then Vanished k
              else begin
                fail "shard %d: probe observed seq %d, expected %d or %d" s
                  probe (k - 1) k;
                No_pending
              end
        in
        if pending <> No_pending then incr pendings;
        if torn > 0 && (match pending with Vanished _ -> false | _ -> true) then
          fail
            "shard %d: torn slot convicted but the interrupted write is %s — a \
             published write left a torn copy"
            s (pp_pending pending);
        (* A published pending write joins the history with the
           shard's fence as its completion bound: the probe already
           settled THAT it published, the fence bounds WHEN it still
           could have. *)
        (match pending with
        | Published (k, invoked) ->
            let fence = Shm_mem.shard_fence_at m ~shard:s in
            completed :=
              History.event History.Write ~thread:0 ~seq:k ~invoked
                ~returned:(max fence invoked)
              :: !completed
        | _ -> ());
        if sconfig <= 0 then
          fail "shard %d: successor never recorded its reign" s
        else
          reigns :=
            { Checker.rshard = s; first_seq = probe + 1; config = sconfig }
            :: !reigns;
        (try
           let slog = slog_of s in
           for j = 0 to swrites - 1 do
             let seq = Shm_mem.atomic_get m (slog_seq slog j) in
             if seq = 0 then raise Exit;
             sw_events :=
               History.event History.Write ~thread:1 ~seq
                 ~invoked:(Shm_mem.atomic_get m (slog_invoked slog j))
                 ~returned:(Shm_mem.atomic_get m (slog_returned slog j))
               :: !sw_events
           done
         with Exit -> ());
        (match List.rev !sw_events with
        | (first : History.event) :: _ ->
            if first.seq <> probe + 1 then
              fail "shard %d: successor started at seq %d, probe says %d" s
                first.seq (probe + 1)
        | [] -> fail "shard %d: elected successor published nothing" s)
    | [] -> ());
    histories.(s) <- History.of_events (!completed @ !sw_events)
  done;
  (match
     Checker.check_fabric ~reigns:!reigns ~writes:histories ~snapshots ()
   with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_fabric_violation v));
  let result =
    {
      fseed = seed;
      fshards = shards;
      fkilled = kill_count;
      felected = !elected;
      flosers = !losers;
      fpendings = !pendings;
      fconvictions = !convictions;
      fjournaled = !journaled;
      fsnapshots = List.length snapshots;
      freign_changed = reign_changed;
      fconfig = Shm_mem.config_epoch m;
      fviolations = List.rev !violations;
      fpath = path;
    }
  in
  Shm_mem.close m;
  if result.fviolations = [] then Sys.remove path;
  result

let fab_print_result ~verbose r =
  if verbose || r.fviolations <> [] then
    Printf.printf
      "fabric run [seed %d]: shards=%d killed=%d elected=%d losers=%d \
       pending=%d convicted=%d journaled=%d snapshots=%d reign-changed=%d \
       config=%d — %s\n"
      r.fseed r.fshards r.fkilled r.felected r.flosers r.fpendings
      r.fconvictions r.fjournaled r.fsnapshots r.freign_changed r.fconfig
      (if r.fviolations = [] then "ok"
       else String.concat "; " r.fviolations
            ^ Printf.sprintf " (mapping kept at %s)" r.fpath)

(* Same fork-isolation dance as {!run_one_isolated}: each run forks
   leaders and standbys and then spawns domains, so the campaign
   driver gives it a fresh single-domain subprocess to do both in. *)
let fab_run_one_isolated cfg ~shards ~seed =
  let stub msg =
    {
      fseed = seed;
      fshards = shards;
      fkilled = 0;
      felected = 0;
      flosers = 0;
      fpendings = 0;
      fconvictions = 0;
      fjournaled = 0;
      fsnapshots = 0;
      freign_changed = 0;
      fconfig = 0;
      fviolations = [ msg ];
      fpath = "";
    }
  in
  let tmp = Filename.temp_file "arc-crash-fab-res" ".bin" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let r =
        try fab_run_one cfg ~shards ~seed
        with e -> stub (Printexc.to_string e)
      in
      fab_print_result ~verbose:cfg.verbose r;
      flush stdout;
      let oc = open_out_bin tmp in
      Marshal.to_channel oc r [];
      close_out oc;
      Unix._exit 0
  | pid -> (
      let _, _ = Unix.waitpid [] pid in
      let r =
        try
          let ic = open_in_bin tmp in
          let r : fab_result = Marshal.from_channel ic in
          close_in ic;
          r
        with _ -> stub "fabric run subprocess died without reporting"
      in
      (try Sys.remove tmp with Sys_error _ -> ());
      if r.fviolations = [ "fabric run subprocess died without reporting" ] then
        fab_print_result ~verbose:cfg.verbose r;
      r)

(* {2 Cross-reign negative control}

   The reign dimension must be FALSIFIABLE: construct a snapshot that
   is per-shard regular AND window-consistent — it would pass every
   pre-reign check — but splices a value published by reign 3 into a
   vector certified under epoch 2.  The checker must convict it as
   [Cross_reign], and must ACCEPT the same vector when certified under
   epoch 3 (the conviction is epoch-driven, not a formatting
   accident). *)
let cross_reign_control () =
  let w ~thread ~seq ~invoked ~returned =
    History.event History.Write ~thread ~seq ~invoked ~returned
  in
  let writes =
    [|
      History.of_events [ w ~thread:0 ~seq:1 ~invoked:10 ~returned:20 ];
      History.of_events
        [
          w ~thread:1 ~seq:1 ~invoked:10 ~returned:20;
          w ~thread:1 ~seq:2 ~invoked:30 ~returned:40;
        ];
    |]
  in
  let reigns =
    [
      { Checker.rshard = 0; first_seq = 1; config = 2 };
      { Checker.rshard = 1; first_seq = 1; config = 2 };
      { Checker.rshard = 1; first_seq = 2; config = 3 };
    ]
  in
  let snap sepoch =
    { Checker.sthread = 9; invoked = 35; returned = 50; observed = [| 1; 2 |]; sepoch }
  in
  match Checker.check_fabric ~reigns ~writes ~snapshots:[ snap 2 ] () with
  | Error (Checker.Cross_reign { shard = 1; config = 3; _ }) -> (
      match Checker.check_fabric ~reigns ~writes ~snapshots:[ snap 3 ] () with
      | Ok _ ->
          ( true,
            "reign-3 value in an epoch-2 snapshot convicted; same vector under \
             epoch 3 accepted" )
      | Error v ->
          ( false,
            Format.asprintf "epoch-3 certification wrongly convicted: %a"
              Checker.pp_fabric_violation v ))
  | Error v ->
      (false, Format.asprintf "wrong conviction: %a" Checker.pp_fabric_violation v)
  | Ok _ -> (false, "cross-reign torn snapshot accepted")

let fab_controls () =
  let convicted, detail = cross_reign_control () in
  Printf.printf "fabric-control cross-reign %s\n"
    (if convicted then "CONVICTED (expected): " ^ detail
     else "UNCONVICTED — the reign dimension is unfalsified: " ^ detail);
  convicted

let fab_print_metrics ~runs ~failing (acc : fab_result list) =
  let open Arc_obs.Obs in
  let sum f = List.fold_left (fun a r -> a + f r) 0 acc in
  print_string
    (prometheus
       ([
          counter "crash_fabric_runs_total" ~help:"Fabric kill-9 runs executed"
            runs;
          counter "crash_fabric_failing_runs_total" ~help:"Runs with violations"
            failing;
          counter "crash_fabric_killed_leaders_total"
            ~help:"Shard leaders SIGKILLed" (sum (fun r -> r.fkilled));
          counter "crash_fabric_elected_successors_total"
            ~help:"Shards that elected exactly one successor"
            (sum (fun r -> r.felected));
          counter "crash_fabric_snapshots_total"
            ~help:"Certified cross-shard snapshots served"
            (sum (fun r -> r.fsnapshots));
          counter "crash_fabric_reign_changed_total"
            ~help:"Snapshots that returned the typed Reign_changed verdict"
            (sum (fun r -> r.freign_changed));
        ]
       @ Arc_resilience.Election.metrics ()
       @ Arc_fabric.Fabric.reign_metrics ()
       @ Shm_mem.metrics ()))

let fab_run_campaign cfg ~shards fail_log skip_controls metrics =
  let failing = ref [] in
  let acc = ref [] in
  for run = 1 to cfg.runs do
    let seed = derive_seed cfg run in
    let r = fab_run_one_isolated cfg ~shards ~seed in
    acc := r :: !acc;
    if r.fviolations <> [] then failing := seed :: !failing
  done;
  let acc = List.rev !acc in
  let total_failing = List.length !failing in
  let sum f = List.fold_left (fun a r -> a + f r) 0 acc in
  Printf.printf
    "arc-crash --fabric: %d runs (%d shards each), %d failing; leaders killed \
     %d, successors elected %d, pending-at-kill %d, slots convicted %d, \
     snapshots certified %d, reign-changed verdicts %d\n"
    cfg.runs shards total_failing
    (sum (fun r -> r.fkilled))
    (sum (fun r -> r.felected))
    (sum (fun r -> r.fpendings))
    (sum (fun r -> r.fconvictions))
    (sum (fun r -> r.fsnapshots))
    (sum (fun r -> r.freign_changed));
  List.iter
    (fun seed ->
      Printf.printf "violation [seed %d]\n  replay: %s\n" seed
        (fab_replay_command cfg ~shards seed))
    (List.rev !failing);
  (match fail_log with
  | Some path when !failing <> [] ->
      let oc = open_out path in
      List.iter
        (fun seed ->
          output_string oc (fab_replay_command cfg ~shards seed);
          output_char oc '\n')
        (List.sort_uniq compare !failing);
      close_out oc;
      Printf.printf "replay commands written to %s\n" path
  | _ -> ());
  let controls_ok = skip_controls || fab_controls () in
  if metrics then fab_print_metrics ~runs:cfg.runs ~failing:total_failing acc;
  if total_failing > 0 then exit 1;
  if not controls_ok then exit 2

(* {1 Campaign driver} *)

(* Campaign counters as an exposition dump.  The per-run elections and
   recoveries happen in forked subprocesses, so their process-local
   Obs cells die with them — the campaign aggregates come from the
   marshalled run results instead, while the Election/Shm_mem sections
   reflect only what this process did itself (the negative controls,
   or a --replay-seed run). *)
let print_metrics ~runs ~failing ~pendings ~convictions ~journaled ~elected
    ~losers =
  let open Arc_obs.Obs in
  print_string
    (prometheus
       ([
          counter "crash_runs_total" ~help:"Kill-9 runs executed" runs;
          counter "crash_failing_runs_total" ~help:"Runs with violations"
            failing;
          counter "crash_pending_at_kill_total"
            ~help:"Runs where the leader died with a write in flight" pendings;
          counter "crash_slots_convicted_total"
            ~help:"Register slots convicted by post-crash recovery" convictions;
          counter "crash_journal_quarantines_total"
            ~help:"Slots quarantined via the prefreeze journal" journaled;
          counter "crash_elected_successors_total"
            ~help:"Runs where exactly one standby won the succession" elected;
          counter "crash_losing_candidates_total"
            ~help:"Standby campaigns that lost their election" losers;
        ]
       @ Arc_resilience.Election.metrics ()
       @ Arc_fabric.Fabric.reign_metrics ()
       @ Shm_mem.metrics ()))

let run_campaign cfg fail_log skip_controls metrics =
  let failing = ref [] in
  let outcomes = Hashtbl.create 8 in
  let convictions = ref 0
  and journaled = ref 0
  and pendings = ref 0
  and elected = ref 0
  and losers = ref 0 in
  for run = 1 to cfg.runs do
    let seed = derive_seed cfg run in
    let r = run_one_isolated cfg ~seed in
    Hashtbl.replace outcomes r.outcome
      (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes r.outcome));
    convictions := !convictions + r.convictions;
    journaled := !journaled + r.journaled;
    if r.winner >= 0 then incr elected;
    losers := !losers + r.losers;
    if r.pending <> No_pending then incr pendings;
    if r.violations <> [] then failing := seed :: !failing
  done;
  let total_failing = List.length !failing in
  Printf.printf
    "arc-crash: %d runs, %d failing; pending-at-kill %d, slots convicted %d, \
     journal quarantines %d, elected successors %d, losing candidates %d; \
     outcomes: %s\n"
    cfg.runs total_failing !pendings !convictions !journaled !elected !losers
    (String.concat ", "
       (Hashtbl.fold
          (fun k v acc -> Printf.sprintf "%s=%d" k v :: acc)
          outcomes []));
  List.iter
    (fun seed ->
      Printf.printf "violation [seed %d]\n  replay: %s\n" seed
        (replay_command cfg seed))
    (List.rev !failing);
  (match fail_log with
  | Some path when !failing <> [] ->
      let oc = open_out path in
      List.iter
        (fun seed ->
          output_string oc (replay_command cfg seed);
          output_char oc '\n')
        (List.sort_uniq compare !failing);
      close_out oc;
      Printf.printf "replay commands written to %s\n" path
  | _ -> ());
  let controls_ok =
    skip_controls || (conviction_controls cfg && election_controls ())
  in
  if metrics then
    print_metrics ~runs:cfg.runs ~failing:total_failing ~pendings:!pendings
      ~convictions:!convictions ~journaled:!journaled ~elected:!elected
      ~losers:!losers;
  if total_failing > 0 then exit 1;
  if not controls_ok then exit 2

let run runs seed readers candidates capacity writes kill_at successor_writes
    dir replay_seed verbose fail_log skip_controls metrics fabric shards =
  let dir = match dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  let cfg =
    {
      runs;
      seed;
      readers;
      candidates;
      capacity;
      writes_max = writes;
      kill_at;
      successor_writes;
      dir;
      verbose;
    }
  in
  if candidates < 1 then begin
    prerr_endline "arc-crash: --candidates must be >= 1";
    exit 124
  end;
  if fabric && shards < 1 then begin
    prerr_endline "arc-crash: --shards must be >= 1";
    exit 124
  end;
  match (fabric, replay_seed) with
  | true, Some s ->
      Printf.printf "replaying fabric seed %d (%d shards)\n" s shards;
      let r = fab_run_one_isolated cfg ~shards ~seed:s in
      fab_print_result ~verbose:true r;
      if metrics then
        fab_print_metrics ~runs:1
          ~failing:(if r.fviolations <> [] then 1 else 0)
          [ r ];
      if r.fviolations <> [] then exit 1
  | true, None -> fab_run_campaign cfg ~shards fail_log skip_controls metrics
  | false, Some s ->
      Printf.printf "replaying seed %d\n" s;
      let r = run_one cfg ~seed:s in
      print_result ~verbose:true r;
      if metrics then
        print_metrics ~runs:1
          ~failing:(if r.violations <> [] then 1 else 0)
          ~pendings:(if r.pending <> No_pending then 1 else 0)
          ~convictions:r.convictions ~journaled:r.journaled
          ~elected:(if r.winner >= 0 then 1 else 0)
          ~losers:r.losers;
      if r.violations <> [] then exit 1
  | false, None -> run_campaign cfg fail_log skip_controls metrics

let cmd =
  let runs =
    Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N" ~doc:"Kill-9 runs.")
  in
  let seed =
    Arg.(value & opt int 2049 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
  in
  let readers =
    Arg.(
      value & opt int 3
      & info [ "readers" ] ~docv:"N" ~doc:"Reader domains in the parent.")
  in
  let candidates =
    Arg.(
      value & opt int 2
      & info [ "candidates" ] ~docv:"K"
          ~doc:
            "Hot-standby candidate processes forked beside the leader; after \
             the kill they campaign for the succession and exactly one must \
             win.")
  in
  let capacity =
    Arg.(
      value & opt int 32 & info [ "capacity" ] ~docv:"WORDS" ~doc:"Snapshot words.")
  in
  let writes =
    Arg.(
      value & opt int 30_000
      & info [ "writes" ] ~docv:"N" ~doc:"Leader writes before it stops on its own.")
  in
  let kill_at =
    Arg.(
      value & opt int 0
      & info [ "kill-at" ] ~docv:"K"
          ~doc:
            "Kill the leader at its K-th write instead of drawing K from the \
             seed (0 = draw).  Printed in every replay command so a replay is \
             bit-identical in configuration.")
  in
  let successor_writes =
    Arg.(
      value & opt int 100
      & info [ "successor-writes" ] ~docv:"N"
          ~doc:"Writes by the elected successor after failover.")
  in
  let dir =
    Arg.(
      value & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory for mapping files (default: system temp dir).")
  in
  let replay_seed =
    Arg.(
      value & opt (some int) None
      & info [ "replay-seed" ] ~docv:"SEED"
          ~doc:"Replay one derived seed (as printed by a failing campaign) and \
                exit.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run lines.") in
  let fail_log =
    Arg.(
      value & opt (some string) None
      & info [ "fail-log" ] ~docv:"PATH"
          ~doc:"Write failing-seed replay commands to this file (CI artifact).")
  in
  let skip_controls =
    Arg.(
      value & flag
      & info [ "skip-controls" ]
          ~doc:"Skip the corruption and election negative controls.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After the campaign (or replay), print the crash/recovery/election \
             counters — runs, pending-at-kill, convictions, journal \
             quarantines, elections — as a Prometheus-style text dump.")
  in
  let fabric =
    Arg.(
      value & flag
      & info [ "fabric" ]
          ~doc:
            "Run the sharded-fabric campaign instead: one leader and \
             $(b,--candidates) hot standbys per shard, reign-certified \
             cross-shard snapshots in the parent, a seeded subset of shard \
             leaders SIGKILLed mid-run, exactly-one-successor asserted per \
             shard, and every certified snapshot judged against the reign \
             claims.")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"S"
          ~doc:"Registers in the fabric (with --fabric).")
  in
  Cmd.v
    (Cmd.info "arc-crash"
       ~doc:
         "Kill-9 the leading writer of a shared-memory ARC register at random \
          points while hot-standby candidates race to succeed it through the \
          superblock's term-vote election; verify that recovery convicts \
          exactly the torn state, that exactly one successor is elected, and \
          that the merged cross-process history stays atomic.  With --fabric, \
          the sharded version: per-shard elections under a fabric-wide \
          configuration epoch, proven against reign-certified cross-shard \
          snapshots.")
    Term.(
      const run $ runs $ seed $ readers $ candidates $ capacity $ writes
      $ kill_at $ successor_writes $ dir $ replay_seed $ verbose $ fail_log
      $ skip_controls $ metrics $ fabric $ shards)

let () = exit (Cmd.eval cmd)

lib/baselines/peterson.mli: Arc_core Arc_mem

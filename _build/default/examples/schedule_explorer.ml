(* Schedule explorer — the verification substrate as a user-facing
   feature.

   Runs ARC and a deliberately broken register through the same
   battery of seeded schedules on the virtual scheduler, validating
   snapshots and checking histories against the paper's atomicity
   criterion, then prints the verdicts side by side.  The broken
   register is convicted with a replayable seed.

     dune exec examples/schedule_explorer.exe *)

module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module Sim = Arc_vsched.Sim_mem
module History = Arc_trace.History
module Checker = Arc_trace.Checker
module P = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)

(* A "register" with no synchronization at all: one buffer, written in
   place.  Looks fine sequentially; the explorer must catch it. *)
module Unsound = struct
  type t = { size : Sim.atomic; content : Sim.buffer }

  let create ~capacity ~init =
    let t = { size = Sim.atomic (Array.length init); content = Sim.alloc capacity } in
    Sim.write_words t.content ~src:init ~len:(Array.length init);
    t

  let write t ~src ~len =
    Sim.write_words t.content ~src ~len;
    Sim.store t.size len

  let read t ~f = f t.content (Sim.load t.size)
end

module Arc = Arc_core.Arc.Make (Arc_vsched.Sim_mem)

let size = 24
let writes_per_run = 15
let reads_per_run = 20

type verdict = Clean | Torn of int | Violation of string

let explore_arc ~seed =
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  let reg = Arc.create ~readers:2 ~capacity:size ~init in
  let recorder = History.Recorder.create ~threads:3 ~capacity:1000 in
  let torn = ref 0 in
  let writer () =
    let src = Array.make size 0 in
    for seq = 1 to writes_per_run do
      P.stamp src ~seq ~len:size;
      let t0 = Sched.now () in
      Arc.write reg ~src ~len:size;
      History.Recorder.record recorder ~thread:0 History.Write ~seq ~invoked:t0
        ~returned:(Sched.now ())
    done
  in
  let reader i () =
    let rd = Arc.reader reg i in
    for _ = 1 to reads_per_run do
      let t0 = Sched.now () in
      let seq =
        Arc.read_with rd ~f:(fun buffer len ->
            match P.validate buffer ~len with
            | Ok seq -> seq
            | Error _ ->
              incr torn;
              P.decode_seq buffer)
      in
      History.Recorder.record recorder ~thread:(i + 1) History.Read ~seq ~invoked:t0
        ~returned:(Sched.now ())
    done
  in
  ignore
    (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader 0; reader 1 |]);
  if !torn > 0 then Torn !torn
  else
    match Checker.check (History.Recorder.history recorder) with
    | Ok _ -> Clean
    | Error v -> Violation (Format.asprintf "%a" Checker.pp_violation v)

let explore_unsound ~seed =
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  let reg = Unsound.create ~capacity:size ~init in
  let torn = ref 0 in
  let writer () =
    let src = Array.make size 0 in
    for seq = 1 to writes_per_run do
      P.stamp src ~seq ~len:size;
      Unsound.write reg ~src ~len:size
    done
  in
  let reader () =
    for _ = 1 to reads_per_run do
      Unsound.read reg ~f:(fun buffer len ->
          match P.validate buffer ~len with
          | Ok _ -> ()
          | Error _ -> incr torn)
    done
  in
  ignore (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader; reader |]);
  if !torn > 0 then Torn !torn else Clean

let () =
  let seeds = 40 in
  let arc_clean = ref 0 in
  let unsound_caught = ref None in
  for seed = 1 to seeds do
    (match explore_arc ~seed with
    | Clean -> incr arc_clean
    | Torn n -> Printf.printf "ARC seed %d: %d torn snapshots (BUG!)\n" seed n
    | Violation v -> Printf.printf "ARC seed %d: %s (BUG!)\n" seed v);
    match (explore_unsound ~seed, !unsound_caught) with
    | Torn n, None -> unsound_caught := Some (seed, n)
    | _ -> ()
  done;
  Printf.printf "ARC: %d/%d schedules clean (atomicity checker + word-level \
                 snapshot validation)\n"
    !arc_clean seeds;
  (match !unsound_caught with
  | Some (seed, n) ->
    Printf.printf
      "unsynchronized register: first convicted at seed %d (%d torn snapshots) — \
       replay with that seed to debug\n"
      seed n
  | None -> print_endline "unsynchronized register: escaped?! (increase seeds)");
  assert (!arc_clean = seeds);
  assert (!unsound_caught <> None)

lib/harness/experiment.mli: Arc_report

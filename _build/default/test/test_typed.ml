(* The typed-snapshot convenience layer. *)

(* A small record codec: a fake service configuration. *)
module Service_codec = struct
  type t = { generation : int; replicas : int; endpoints : int list }

  let max_words = 16

  let encode { generation; replicas; endpoints } =
    Array.of_list
      ((generation :: replicas :: List.length endpoints :: endpoints)
      @ [ generation + replicas ] (* trailing checksum-ish word *))

  let decode words ~len =
    if len < 4 then failwith "Service_codec.decode: short snapshot";
    let generation = words.(0) and replicas = words.(1) and n = words.(2) in
    let endpoints = List.init n (fun i -> words.(3 + i)) in
    if words.(len - 1) <> generation + replicas then
      failwith "Service_codec.decode: checksum mismatch";
    { generation; replicas; endpoints }
end

module Typed =
  Arc_core.Typed.Make (Arc_core.Arc) (Arc_mem.Real_mem) (Service_codec)

let cfg0 = { Service_codec.generation = 0; replicas = 1; endpoints = [ 80 ] }

let test_roundtrip () =
  let t = Typed.create ~readers:2 ~init:cfg0 in
  let rd = Typed.reader t 0 in
  Alcotest.(check int) "initial generation" 0 (Typed.get rd).Service_codec.generation;
  let cfg1 = { Service_codec.generation = 1; replicas = 3; endpoints = [ 80; 443 ] } in
  Typed.publish t cfg1;
  let seen = Typed.get rd in
  Alcotest.(check int) "generation" 1 seen.Service_codec.generation;
  Alcotest.(check (list int)) "endpoints" [ 80; 443 ] seen.Service_codec.endpoints;
  Alcotest.(check int) "reads counted" 2 (Typed.reads rd)

let test_variable_width_values () =
  let t = Typed.create ~readers:1 ~init:cfg0 in
  let rd = Typed.reader t 0 in
  for g = 1 to 12 do
    let cfg =
      { Service_codec.generation = g; replicas = g mod 4; endpoints = List.init g Fun.id }
    in
    Typed.publish t cfg;
    let seen = Typed.get rd in
    Alcotest.(check int) "generation" g seen.Service_codec.generation;
    Alcotest.(check int) "endpoint count" g (List.length seen.Service_codec.endpoints)
  done

let test_oversized_rejected () =
  let t = Typed.create ~readers:1 ~init:cfg0 in
  let big =
    { Service_codec.generation = 1; replicas = 1; endpoints = List.init 20 Fun.id }
  in
  match Typed.publish t big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized encoding accepted"

let test_concurrent_consistency () =
  (* The codec's checksum word makes torn decodes raise: run it hot
     across domains. *)
  let t = Typed.create ~readers:2 ~init:cfg0 in
  let stop = Atomic.make false in
  let writer () =
    let g = ref 0 in
    while not (Atomic.get stop) do
      incr g;
      Typed.publish t
        { Service_codec.generation = !g; replicas = !g mod 7;
          endpoints = List.init (!g mod 10) Fun.id }
    done
  in
  let reader i () =
    let rd = Typed.reader t i in
    let last = ref (-1) in
    while not (Atomic.get stop) do
      let seen = Typed.get rd in
      if seen.Service_codec.generation < !last then
        Alcotest.fail "generation went backwards";
      last := seen.Service_codec.generation
    done
  in
  let ds = [ Domain.spawn writer; Domain.spawn (reader 0); Domain.spawn (reader 1) ] in
  Unix.sleepf 0.1;
  Atomic.set stop true;
  List.iter Domain.join ds

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "variable width" `Quick test_variable_width_values;
    Alcotest.test_case "oversized rejected" `Quick test_oversized_rejected;
    Alcotest.test_case "concurrent consistency" `Quick test_concurrent_consistency;
  ]

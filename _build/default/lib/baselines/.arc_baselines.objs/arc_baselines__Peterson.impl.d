lib/baselines/peterson.ml: Arc_mem Array

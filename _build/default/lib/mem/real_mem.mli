(** Hardware instance of {!Mem_intf.S}: OCaml 5 atomics (sequentially
    consistent, strictly stronger than the TSO fragments the paper's
    §4 proofs need) and native [int array] buffers.

    [fetch_and_or]/[fetch_and_and] are CAS-retry emulations — OCaml
    has no native fetch-or — as recorded in DESIGN.md §2; each retry
    costs one real RMW and is charged as such by {!Counting}. *)

include
  Mem_intf.S with type atomic = int Atomic.t and type buffer = int array

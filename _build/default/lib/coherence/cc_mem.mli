(** Coherence-modelled simulated memory: an {!Arc_mem.Mem_intf.S}
    instance whose every access consults an installed {!Cache},
    charging the returned cost as the scheduler-step weight and
    attributing the access to the running fiber's cache.

    Layout: every synchronization variable gets a private cache line
    (as a careful implementation would pad it); buffers span
    [words_per_line]-word lines.  With no cache installed, operations
    degrade to {!Arc_vsched.Sim_mem}-like unit costs, so registers
    built over this instance still work in plain unit tests.

    Usage (see {!Arc_harness.Coherence_exp}): [install] a fresh cache
    sized to the fiber count + 1 (the extra agent owns setup-time
    accesses), build registers, run fibers under {!Arc_vsched.Sched},
    then read {!Cache.stats}.  Not reentrant across overlapping runs
    — one installed cache per domain at a time. *)

val words_per_line : int

val install : Cache.t -> unit
(** Also resets the line allocator so consecutive experiments are
    independent. *)

val uninstall : unit -> unit
val installed : unit -> Cache.t option

include Arc_mem.Mem_intf.S

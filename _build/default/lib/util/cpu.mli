(** Platform facts the harness needs to interpret its own results. *)

val hardware_domains : unit -> int
(** Best available estimate of hardware parallelism
    ([Domain.recommended_domain_count]). *)

val word_bits : int
(** [Sys.int_size]: width in bits of a native OCaml int (63 on 64-bit
    platforms), which bounds the synchronization-word packing. *)

val describe : unit -> string
(** One-line platform description for experiment reports. *)

val now_ns : unit -> int64
(** Monotonic wall-clock in nanoseconds, comparable across domains.
    Backed by the OS monotonic clock. *)

val seconds_of_ns : int64 -> float

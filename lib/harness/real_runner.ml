module Splitmix = Arc_util.Splitmix
module Cpu = Arc_util.Cpu
module History = Arc_trace.History

exception Hung of string

module Make (R : Arc_core.Register_intf.S) = struct
  module P = Arc_workload.Payload.Make (R.Mem)

  type out = { mutable ops : int; mutable torn : int }

  let now_ns () = Int64.to_int (Cpu.now_ns ())

  let make_steal cfg ~salt =
    match cfg.Config.steal with
    | None -> fun () -> ()
    | Some s ->
      let rng = Splitmix.of_int (cfg.Config.seed + salt) in
      fun () ->
        if Splitmix.bernoulli rng s.Config.probability then
          Unix.sleepf (s.Config.pause_us *. 1e-6)

  let reader_body ~reg ~id ~(cfg : Config.real) ~stop ~handle ~recorder ~out () =
    let rd = R.reader reg id in
    let maybe_steal = make_steal cfg ~salt:((id * 7919) + 1) in
    let record kind seq invoked returned =
      match recorder with
      | None -> ()
      | Some r ->
        History.Recorder.record r ~thread:(id + 1) kind ~seq ~invoked ~returned
    in
    Barrier.wait handle;
    (match cfg.workload with
    | Config.Hold ->
      while not (Atomic.get stop) do
        R.read_with rd ~f:(fun _buffer _len -> maybe_steal ());
        out.ops <- out.ops + 1
      done
    | Config.Processing ->
      while not (Atomic.get stop) do
        let (_ : int) =
          R.read_with rd ~f:(fun buffer len ->
              maybe_steal ();
              P.scan buffer ~len)
        in
        out.ops <- out.ops + 1
      done
    | Config.Verify ->
      while not (Atomic.get stop) do
        let invoked = now_ns () in
        let seq =
          R.read_with rd ~f:(fun buffer len ->
              maybe_steal ();
              match P.validate buffer ~len with
              | Ok seq -> seq
              | Error _ ->
                out.torn <- out.torn + 1;
                P.decode_seq buffer)
        in
        record History.Read seq invoked (now_ns ());
        out.ops <- out.ops + 1
      done);
    ()

  let writer_body ~reg ~(cfg : Config.real) ~stop ~handle ~recorder ~out () =
    let size = cfg.size_words in
    let src = Array.make size 0 in
    let maybe_steal = make_steal cfg ~salt:7 in
    let record seq invoked returned =
      match recorder with
      | None -> ()
      | Some r -> History.Recorder.record r ~thread:0 History.Write ~seq ~invoked ~returned
    in
    P.stamp src ~seq:0 ~len:size;
    Barrier.wait handle;
    let seq = ref 0 in
    (match cfg.workload with
    | Config.Hold ->
      (* Hold model: every write copies the same content (§5). *)
      while not (Atomic.get stop) do
        R.write reg ~src ~len:size;
        maybe_steal ();
        out.ops <- out.ops + 1
      done
    | Config.Processing ->
      while not (Atomic.get stop) do
        incr seq;
        P.stamp src ~seq:!seq ~len:size;
        R.write reg ~src ~len:size;
        maybe_steal ();
        out.ops <- out.ops + 1
      done
    | Config.Verify ->
      while not (Atomic.get stop) do
        incr seq;
        P.stamp src ~seq:!seq ~len:size;
        let invoked = now_ns () in
        R.write reg ~src ~len:size;
        record !seq invoked (now_ns ());
        maybe_steal ();
        out.ops <- out.ops + 1
      done);
    ()

  let run (cfg : Config.real) : Config.result =
    if cfg.readers < 1 then
      invalid_arg
        (Printf.sprintf "Real_runner.run: readers = %d (need at least one reader)"
           cfg.readers);
    if cfg.size_words < 1 then
      invalid_arg
        (Printf.sprintf "Real_runner.run: size_words = %d (need a positive size)"
           cfg.size_words);
    if cfg.duration_s <= 0. then
      invalid_arg
        (Printf.sprintf "Real_runner.run: duration_s = %g (need a positive duration)"
           cfg.duration_s);
    if cfg.record < 0 then
      invalid_arg
        (Printf.sprintf "Real_runner.run: record = %d (need >= 0)" cfg.record);
    (match cfg.watchdog with
    | Some w when w.Config.poll_s <= 0. || w.Config.grace_s <= 0. ->
      invalid_arg
        (Printf.sprintf
           "Real_runner.run: watchdog poll_s = %g, grace_s = %g (both must be positive)"
           w.Config.poll_s w.Config.grace_s)
    | _ -> ());
    (match R.caps.Arc_core.Register_intf.max_readers ~capacity_words:cfg.size_words with
    | Some bound when cfg.readers > bound ->
      invalid_arg
        (Printf.sprintf
           "Real_runner.run: readers = %d but %s supports at most %d readers"
           cfg.readers R.algorithm bound)
    | _ -> ());
    let init = Array.make cfg.size_words 0 in
    P.stamp init ~seq:0 ~len:cfg.size_words;
    let reg = R.create ~readers:cfg.readers ~capacity:cfg.size_words ~init in
    let stop = Atomic.make false in
    let parties = cfg.readers + 2 (* readers, writer, coordinator *) in
    let barrier = Barrier.create ~parties in
    let recorder =
      if cfg.record > 0 then
        Some (History.Recorder.create ~threads:(cfg.readers + 1) ~capacity:cfg.record)
      else None
    in
    let outs = Array.init (cfg.readers + 1) (fun _ -> { ops = 0; torn = 0 }) in
    let finished = Array.init (cfg.readers + 1) (fun _ -> Atomic.make false) in
    let bodies =
      Array.init (cfg.readers + 1) (fun i ->
          let handle = Barrier.join barrier in
          let body =
            if i = 0 then writer_body ~reg ~cfg ~stop ~handle ~recorder ~out:outs.(0)
            else
              reader_body ~reg ~id:(i - 1) ~cfg ~stop ~handle ~recorder ~out:outs.(i)
          in
          fun () ->
            body ();
            Atomic.set finished.(i) true)
    in
    let coordinator_handle = Barrier.join barrier in
    let joiners =
      match cfg.parallelism with
      | `Domains ->
        let domains = Array.map Domain.spawn bodies in
        fun () -> Array.iter Domain.join domains
      | `Threads ->
        let threads = Array.map (fun b -> Thread.create b ()) bodies in
        fun () -> Array.iter Thread.join threads
    in
    Barrier.wait coordinator_handle;
    let t0 = Cpu.now_ns () in
    Unix.sleepf cfg.duration_s;
    Atomic.set stop true;
    let t1 = Cpu.now_ns () in
    (* Watchdog: a register bug that hangs an operation (a lock never
       released, a validation loop that never settles) would turn
       [joiners] into an infinite wait.  Workers cannot be killed, so
       the guarded join polls completion flags and, past the grace
       period, raises a diagnostic instead of blocking — the stuck
       workers leak, but CI gets a per-thread progress report rather
       than a timeout.  The ops counters are sampled racily
       (plain mutable fields across threads), which is fine for a
       diagnostic: "ops then vs ops now" distinguishes a stuck thread
       from a slowly draining one. *)
    (match cfg.watchdog with
    | None -> ()
    | Some wd ->
      let ops_at_stop = Array.map (fun o -> o.ops) outs in
      (* Per-thread progress tracking across the poll loop: the op
         count last seen and the wall-clock instant it last moved, so
         a Hung report can tell a thread that froze at stop time from
         one that kept making progress until seconds ago (a livelock or
         a very slow drain rather than a deadlock). *)
      let stop_walltime = Unix.gettimeofday () in
      let last_ops = Array.copy ops_at_stop in
      let last_progress = Array.map (fun _ -> stop_walltime) last_ops in
      let sample () =
        let t = Unix.gettimeofday () in
        Array.iteri
          (fun i o ->
            if o.ops <> last_ops.(i) then begin
              last_ops.(i) <- o.ops;
              last_progress.(i) <- t
            end)
          outs
      in
      let all_finished () = Array.for_all Atomic.get finished in
      let deadline = stop_walltime +. wd.Config.grace_s in
      while (not (all_finished ())) && Unix.gettimeofday () < deadline do
        Unix.sleepf wd.Config.poll_s;
        sample ()
      done;
      if not (all_finished ()) then begin
        sample ();
        let now = Unix.gettimeofday () in
        let b = Buffer.create 256 in
        Buffer.add_string b
          (Printf.sprintf
             "Real_runner.run (%s): %g s grace expired after stop; thread status:"
             R.algorithm wd.Config.grace_s);
        Array.iteri
          (fun i o ->
            let role = if i = 0 then "writer" else Printf.sprintf "reader %d" (i - 1) in
            if Atomic.get finished.(i) then
              Buffer.add_string b
                (Printf.sprintf "\n  %-9s finished  ops at stop: %d, ops now: %d"
                   role ops_at_stop.(i) o.ops)
            else
              Buffer.add_string b
                (Printf.sprintf
                   "\n  %-9s STUCK  ops at stop: %d, ops now: %d, last progress \
                    %.2f s ago%s"
                   role ops_at_stop.(i) o.ops
                   (now -. last_progress.(i))
                   (if last_progress.(i) = stop_walltime then
                      " (none since stop)"
                    else "")))
          outs;
        raise (Hung (Buffer.contents b))
      end);
    joiners ();
    let elapsed = Cpu.seconds_of_ns (Int64.sub t1 t0) in
    let reads = ref 0 and torn = ref 0 in
    Array.iteri (fun i o -> if i > 0 then reads := !reads + o.ops) outs;
    Array.iter (fun o -> torn := !torn + o.torn) outs;
    let history = Option.map History.Recorder.history recorder in
    let dropped =
      match recorder with None -> 0 | Some r -> History.Recorder.dropped r
    in
    Config.mk_result ~reads:!reads ~writes:outs.(0).ops ~duration:elapsed ~torn:!torn
      ~history ~dropped_events:dropped
end

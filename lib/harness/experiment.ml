(** Stable façade over the per-figure drivers.

    The actual logic lives in {!Grid} (options, grids, point runners,
    series plumbing) and the figure modules {!Fig_throughput},
    {!Fig_rmw}, {!Fig_ablation}, {!Fig_latency}; this module re-exports
    everything under the historical flat names so the CLI and tests
    keep one entry point. *)

module Table = Arc_report.Table

type opts = Grid.opts = {
  reps : int;
  duration_s : float;
  sim_steps : int;
  quick : bool;
  seed : int;
}

let default = Grid.default
let quick = Grid.quick

let fig1_real = Fig_throughput.fig1_real
let fig1_sim = Fig_throughput.fig1_sim
let fig2_real = Fig_throughput.fig2_real
let fig2_sim = Fig_throughput.fig2_sim
let fig3_sim = Fig_throughput.fig3_sim
let fig3_real_threads = Fig_throughput.fig3_real_threads
let processing_real = Fig_throughput.processing_real
let rmw_table = Fig_rmw.rmw_table
let ablation_hint = Fig_ablation.ablation_hint
let ablation_dynamic = Fig_ablation.ablation_dynamic
let latency_table = Fig_latency.latency_table
let variability_table = Fig_latency.variability_table

let dump_csv = Grid.dump_csv
let print_series = Grid.print_series

let run_all opts ~out_dir =
  Printf.printf "platform: %s\n\n" (Arc_util.Cpu.describe ());
  let section name = Printf.printf "==== %s ====\n%!" name in
  section "E1 Fig.1 (real)";
  print_series ~out_dir ~stem:"fig1_real" (fig1_real opts);
  section "E1 Fig.1 (sim)";
  print_series ~out_dir ~stem:"fig1_sim" (fig1_sim opts);
  section "E2 Fig.2 (real + steal)";
  print_series ~out_dir ~stem:"fig2_real" (fig2_real opts);
  section "E2 Fig.2 (sim + steal)";
  print_series ~out_dir ~stem:"fig2_sim" (fig2_sim opts);
  section "E3 Fig.3 (sim, huge thread counts)";
  print_series ~out_dir ~stem:"fig3_sim" (fig3_sim opts);
  section "E3 Fig.3 (real systhreads)";
  print_series ~out_dir ~stem:"fig3_real" (fig3_real_threads opts);
  section "E4 RMW table";
  let t = rmw_table opts in
  Table.print t;
  dump_csv ~out_dir ~name:"rmw_table" (Table.to_csv t);
  section "E5 hint ablation";
  let t = ablation_hint opts in
  Table.print t;
  dump_csv ~out_dir ~name:"ablation_hint" (Table.to_csv t);
  section "E6 processing workload";
  print_series ~out_dir ~stem:"processing" (processing_real opts);
  section "E7 read-latency distributions";
  let t = latency_table opts in
  Table.print t;
  dump_csv ~out_dir ~name:"latency" (Table.to_csv t);
  section "E8 dynamic-allocation footprint";
  let t = ablation_dynamic opts in
  Table.print t;
  dump_csv ~out_dir ~name:"ablation_dynamic" (Table.to_csv t)

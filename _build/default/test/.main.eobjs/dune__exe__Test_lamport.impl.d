test/test_lamport.ml: Alcotest Arc_baselines Arc_mem Arc_vsched Arc_workload Array Printf

type trace = Strategy.decision array

let length = Array.length
let decisions = Fun.id

type recorder = Strategy.decision list ref

(* Strategy.t is abstract with a [decide] entry point; build wrappers
   through a custom pick function by re-entering via Strategy.decide. *)

let recording base =
  let log : recorder = ref [] in
  let strategy =
    Strategy.custom
      ~name:(Printf.sprintf "recording(%s)" (Strategy.name base))
      (fun ~step ~runnable ->
        let d = Strategy.decide base ~step ~runnable in
        log := d :: !log;
        d)
  in
  (log, strategy)

let captured log = Array.of_list (List.rev !log)

type replayer = { mutable cursor : int; mutable diverged : bool }

let replaying trace ~fallback =
  let state = { cursor = 0; diverged = false } in
  let runnable_has runnable id =
    let ids, count = runnable () in
    let rec go i = i < count && (ids.(i) = id || go (i + 1)) in
    go 0
  in
  let strategy =
    Strategy.custom
      ~name:(Printf.sprintf "replay(%d decisions)" (Array.length trace))
      (fun ~step ~runnable ->
        if state.diverged || state.cursor >= Array.length trace then begin
          if state.cursor >= Array.length trace then state.diverged <- true;
          Strategy.decide fallback ~step ~runnable
        end
        else begin
          let d = trace.(state.cursor) in
          let ok =
            match d with
            | Strategy.Run id | Strategy.Postpone (id, _) -> runnable_has runnable id
          in
          if ok then begin
            state.cursor <- state.cursor + 1;
            d
          end
          else begin
            state.diverged <- true;
            Strategy.decide fallback ~step ~runnable
          end
        end)
  in
  (state, strategy)

let diverged state = state.diverged

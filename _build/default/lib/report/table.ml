type t = { title : string; columns : string list; mutable body : string list list }

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; body = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: width mismatch";
  t.body <- row :: t.body

let add_float_row t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.4g") values)

let rows t = List.length t.body
let title t = t.title
let columns t = t.columns
let body t = List.rev t.body

let render t =
  let body = List.rev t.body in
  let all = t.columns :: body in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  Buffer.add_string buf
    (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter render_row body;
  Buffer.contents buf

let print t = print_string (render t)

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line t.columns :: List.rev_map line t.body) ^ "\n"

lib/core/typed.mli: Arc_mem Register_intf

lib/vsched/sched.ml: Array Domain Effect List Strategy

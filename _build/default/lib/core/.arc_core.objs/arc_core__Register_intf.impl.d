lib/core/register_intf.ml: Arc_mem

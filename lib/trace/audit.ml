type op_stats = {
  count : int;
  max_duration : int;
  mean_duration : float;
  p99_duration : float;
  p999_duration : float;
}

let pp_op_stats ppf s =
  Format.fprintf ppf "@[<h>n=%d, max=%d, mean=%.1f, p99=%.1f, p99.9=%.1f@]" s.count
    s.max_duration s.mean_duration s.p99_duration s.p999_duration

type t = { reads : op_stats; writes : op_stats }

let zero =
  {
    count = 0;
    max_duration = 0;
    mean_duration = 0.;
    p99_duration = 0.;
    p999_duration = 0.;
  }

let stats_of events =
  match events with
  | [] -> zero
  | _ ->
    let durations =
      Array.of_list
        (List.map
           (fun (e : History.event) -> float_of_int (e.returned - e.invoked))
           events)
    in
    {
      count = Array.length durations;
      max_duration = int_of_float (Array.fold_left max durations.(0) durations);
      mean_duration = Arc_util.Stats.mean durations;
      p99_duration = Arc_util.Stats.percentile durations 99.;
      p999_duration = Arc_util.Stats.percentile durations 99.9;
    }

let of_history h =
  { reads = stats_of (History.reads h); writes = stats_of (History.writes h) }

let bounded h ~kind ~bound =
  let events =
    match kind with History.Read -> History.reads h | History.Write -> History.writes h
  in
  match
    List.find_opt (fun (e : History.event) -> e.returned - e.invoked > bound) events
  with
  | None -> Ok ()
  | Some worst ->
    (* Report the single worst offender, not just the first over. *)
    let worst =
      List.fold_left
        (fun (acc : History.event) (e : History.event) ->
          if e.returned - e.invoked > acc.returned - acc.invoked then e else acc)
        worst events
    in
    Error worst

lib/baselines/lamport_reg.ml: Arc_mem Array

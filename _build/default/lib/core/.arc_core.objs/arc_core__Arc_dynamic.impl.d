lib/core/arc_dynamic.ml: Arc_mem Arc_util Array

(** Schedule recording and exact replay.

    Wrap any strategy in {!recording} to capture the decision
    sequence of a run; {!replaying} feeds a captured trace back,
    reproducing the identical interleaving — including on a build with
    extra logging, under a debugger, or after a code change that does
    not alter the shared-access structure.  If the program under
    replay diverges from the trace (different runnable sets), the
    replay falls back to the supplied strategy and flags it, so stale
    traces degrade loudly rather than silently. *)

type trace

val length : trace -> int
val decisions : trace -> Strategy.decision array

(** {2 Capture} *)

type recorder

val recording : Strategy.t -> recorder * Strategy.t
(** [recording base] returns a recorder and a strategy that behaves
    exactly like [base] while logging every decision. *)

val captured : recorder -> trace

(** {2 Replay} *)

type replayer

val replaying : trace -> fallback:Strategy.t -> replayer * Strategy.t
(** Strategy that re-issues the trace decision by decision; once the
    trace is exhausted, or if a recorded fiber is no longer runnable,
    it switches permanently to [fallback]. *)

val diverged : replayer -> bool
(** Whether replay ever had to fall back. *)

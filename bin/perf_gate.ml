(* arc-perf-gate: per-op regression gate (ISSUE 5, extended by ISSUEs
   6, 8 and 10).

   Reads the telemetry record of a BENCH_arc.json produced by
   `bench/main.exe --throughput-json`, appends a dated entry to the
   perf trajectory (results/BENCH_trajectory.jsonl, one JSON object
   per line), and fails if any tracked per-op cost regressed more than
   --threshold percent against the last committed trajectory entry:

   - read_hit_ns_off — the telemetry-detached classic read hit;
   - read_plain_ns   — the R2' validated plain-load read (ISSUE 10),
                       additionally held under an absolute --ceiling
                       (default 9.8 ns, the pre-R2' classic-path cost
                       the fast path exists to beat);
   - snapshot_ns_per_shard and reader_join_p99_ns when their bench
     files / fields are present (ISSUEs 6 and 8);
   - read_hit_ns@N / read_plain_ns@N for every core count N found in
     a BENCH_scaling.json (bench/main.exe --scaling-json --cores ...),
     so CI enforces scaling, not just single-core cost (ISSUE 10).

     dune exec bin/perf_gate.exe
     dune exec bin/perf_gate.exe -- --bench /tmp/BENCH_arc.json --threshold 10

   Exit status 0 = within budget (entry appended), 1 = regression or
   ceiling violation, 2 = malformed inputs, 3 = nothing compared (the
   appended entry seeds the baseline — deliberately non-green so an
   empty or missing trajectory can never pass silently in CI; commit
   the seeded trajectory to turn the gate on).

   The decision logic lives in lib/gate (Arc_gate.Gate) so the
   empty-trajectory behaviour is covered by the tier-1 suite; this
   file is only IO and exit codes. *)

open Cmdliner
module Gate = Arc_gate.Gate

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_opt path = if Sys.file_exists path then Some (read_file path) else None

let last_nonempty_line s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> function
  | [] -> None
  | lines -> Some (List.nth lines (List.length lines - 1))

let iso_date () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let run bench fabric_bench scaling_bench trajectory threshold ceiling label =
  let bench_s =
    try read_file bench
    with Sys_error msg ->
      Printf.eprintf "perf-gate: cannot read %s: %s\n" bench msg;
      exit 2
  in
  let prior = Option.bind (read_opt trajectory) last_nonempty_line in
  let result =
    Gate.evaluate ~bench:bench_s ?fabric:(read_opt fabric_bench)
      ?scaling:(read_opt scaling_bench) ?prior ~threshold ~ceiling ~label
      ~date:(iso_date ()) ()
  in
  match result with
  | Error msg ->
    Printf.eprintf "perf-gate: %s\n" msg;
    exit 2
  | Ok report ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 trajectory in
    output_string oc report.Gate.entry;
    output_char oc '\n';
    close_out oc;
    Printf.printf "perf-gate: appended to %s\n  %s\n" trajectory report.Gate.entry;
    List.iter
      (fun v -> Format.printf "perf-gate: %a@." Gate.pp_verdict v)
      report.Gate.verdicts;
    if report.Gate.failures > 0 then exit 1;
    if report.Gate.seeded then begin
      Printf.printf
        "perf-gate: SEEDED baseline \"%s\" — no prior trajectory entry to \
         compare against; commit %s to arm the gate (exit 3, not green)\n"
        label trajectory;
      exit 3
    end

let cmd =
  let bench =
    Arg.(
      value
      & opt string "results/BENCH_arc.json"
      & info [ "bench" ] ~docv:"PATH"
          ~doc:"BENCH_arc.json produced by bench/main.exe --throughput-json.")
  in
  let fabric_bench =
    Arg.(
      value
      & opt string "results/BENCH_fabric.json"
      & info [ "fabric-bench" ] ~docv:"PATH"
          ~doc:
            "BENCH_fabric.json produced by bench/main.exe --fabric-json; when \
             present its snapshot_ns_per_shard is tracked and gated too.")
  in
  let scaling_bench =
    Arg.(
      value
      & opt string "results/BENCH_scaling.json"
      & info [ "scaling-bench" ] ~docv:"PATH"
          ~doc:
            "BENCH_scaling.json produced by bench/main.exe --scaling-json; \
             when present every read_hit_ns@N / read_plain_ns@N key it \
             carries is tracked and gated per core count.")
  in
  let trajectory =
    Arg.(
      value
      & opt string "results/BENCH_trajectory.jsonl"
      & info [ "trajectory" ] ~docv:"PATH"
          ~doc:
            "Perf trajectory file (one JSON object per line); the gate \
             compares against its last line and appends the new entry.")
  in
  let threshold =
    Arg.(
      value & opt float 20.
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Maximum allowed read-cost regression, in percent.")
  in
  let ceiling =
    Arg.(
      value & opt float 9.8
      & info [ "ceiling" ] ~docv:"NS"
          ~doc:
            "Absolute bound the R2' plain-load read (read_plain_ns) must stay \
             below — the pre-R2' classic-path cost it exists to beat.")
  in
  let label =
    Arg.(
      value & opt string "local"
      & info [ "label" ] ~docv:"LABEL"
          ~doc:"Free-form provenance tag for the entry (e.g. a commit sha).")
  in
  Cmd.v
    (Cmd.info "arc-perf-gate"
       ~doc:
         "Append the current per-op read costs (classic hit, R2' plain load, \
          per-core-count scaling points, and the fabric/admission metrics \
          when measured) to the perf trajectory and fail on regression \
          beyond the threshold; a run that compared nothing exits 3.")
    Term.(
      const run $ bench $ fabric_bench $ scaling_bench $ trajectory $ threshold
      $ ceiling $ label)

let () = exit (Cmd.eval cmd)

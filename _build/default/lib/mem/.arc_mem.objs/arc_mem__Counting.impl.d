lib/mem/counting.ml: Domain List Mem_intf Mutex

(** Bounded trace ring of slot-state transitions, for post-mortem
    dumps.

    Recording costs one RMW (cursor claim) plus one atomic store of an
    immutable entry record — transitions are slow-path events (slot
    claims, freezes, reclaims, recoveries), never the §3.3 read fast
    path.  The ring retains the most recent [capacity] entries,
    overwriting older ones; a concurrent {!dump} returns only
    internally consistent entries (an entry is published with a single
    atomic store, so it can never be observed half-written). *)

type entry = { seq : int; at : int; code : int; a : int; b : int; c : int }

type t

val create : int -> t
(** [create capacity] — capacity is rounded up to a power of two. *)

val capacity : t -> int

val recorded : t -> int
(** Total entries ever recorded (may exceed capacity). *)

val record : t -> ?at:int -> code:int -> int -> int -> int -> unit
(** [record t ~at ~code a b c] claims the next ring slot and publishes
    the entry.  [at] is a caller-supplied timestamp (substrate clock,
    vsched step, or wall nanoseconds — the ring does not read clocks
    itself, so recording is deterministic under the virtual
    scheduler). *)

val dump : t -> entry list
(** Surviving entries, oldest first. *)

val clear : t -> unit

(** {1 Transition codes} — shared vocabulary across [Arc],
    [Arc_dynamic], and the resilience layer.  The [a]/[b]/[c] operands
    per code are documented in [ring.ml]. *)

val code_slot_claim : int
val code_publish : int
val code_freeze : int
val code_reclaim : int
val code_realloc : int
val code_recover : int
val code_quarantine : int
val code_breaker_trip : int
val code_promote : int
val code_conviction : int

val code_name : int -> string
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

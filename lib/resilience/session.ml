(* Deadline-aware reader sessions (ISSUE 3).

   A session wraps one reader handle with the full degradation stack:
   bounded retry with jittered exponential backoff on
   {!Arc_core.Register_intf.Saturated} (the typed error both [Arc] and
   [Arc_dynamic] raise from a read path that trips a capacity or
   revocation defense guard), a per-register circuit breaker, and a
   last-known-good snapshot served — with its age — when live reads
   are unavailable.  The caller gets a typed {!outcome} instead of an
   exception through the hot path, and a degraded serve always
   discloses itself ([Stale]/[Exhausted]).

   Every successful live read refreshes the snapshot via a
   buffer-to-buffer blit inside the read callback; that copy is the
   price of the degradation contract (the session deliberately trades
   ARC's zero-copy read for the ability to answer when the register
   cannot).  The staleness the snapshot can accrue before the session
   refuses to serve it is bounded by [max_stale] (in the session's
   clock units); the translation of that clock bound into a
   writes-behind bound is the checker's job
   ({!Arc_trace.Checker.check_bounded_staleness}). *)

module Make (R : Arc_core.Register_intf.S) = struct
  module M = R.Mem
  module Outcomes = Arc_util.Stats.Outcomes

  type 'a outcome =
    | Fresh of 'a
    | Stale of { value : 'a; age : int }
        (** Served from the snapshot captured [age] clock units ago
            (within the session's [max_stale] bound). *)
    | Exhausted of { attempts : int; last_error : string }
        (** No live read before the deadline and no admissible
            snapshot.  [attempts] counts live attempts made. *)

  type t = {
    rd : R.reader;
    now : unit -> int;
    sleep : int -> unit;
    backoff : Backoff.t;
    breaker : Breaker.t;
    max_stale : int;
    snap : M.buffer;
    mutable snap_len : int;  (* -1 until the first successful read *)
    mutable snap_at : int;
    outcomes : Outcomes.t;
  }

  let create ?backoff ?breaker ?(max_stale = max_int) ~now ~sleep ~capacity rd =
    if capacity < 1 then
      invalid_arg (Printf.sprintf "Session.create: capacity = %d" capacity);
    if max_stale < 0 then
      invalid_arg (Printf.sprintf "Session.create: max_stale = %d" max_stale);
    let backoff =
      match backoff with Some b -> b | None -> Backoff.create ~seed:0 ()
    in
    let breaker =
      match breaker with Some b -> b | None -> Breaker.create ~now ()
    in
    {
      rd;
      now;
      sleep;
      backoff;
      breaker;
      max_stale;
      snap = M.alloc capacity;
      snap_len = -1;
      snap_at = 0;
      outcomes = Outcomes.create ();
    }

  let outcomes t = t.outcomes
  let breaker t = t.breaker

  let snapshot_age t =
    if t.snap_len < 0 then None else Some (t.now () - t.snap_at)

  let serve_degraded t ~attempts ~last_error ~f =
    let age = t.now () - t.snap_at in
    if t.snap_len >= 0 && age <= t.max_stale then begin
      Outcomes.stale t.outcomes;
      Stale { value = f t.snap t.snap_len; age }
    end
    else begin
      Outcomes.exhausted t.outcomes;
      Exhausted { attempts; last_error }
    end

  let live_read t ~f =
    R.read_with t.rd ~f:(fun buf len ->
        M.blit buf t.snap ~len;
        t.snap_len <- len;
        t.snap_at <- t.now ();
        f buf len)

  (* [deadline] is absolute, on the session's clock.  The retry loop is
     bounded three ways: the deadline, the breaker (a trip mid-retry
     short-circuits the next attempt), and backoff growth. *)
  let read_with ?(deadline = max_int) t ~f =
    let rec attempt n last_error =
      if not (Breaker.allow t.breaker) then
        serve_degraded t ~attempts:(n - 1) ~last_error ~f
      else
        match live_read t ~f with
        | v ->
          Breaker.record_success t.breaker;
          Backoff.reset t.backoff;
          Outcomes.ok t.outcomes;
          Fresh v
        | exception Arc_core.Register_intf.Saturated msg ->
          Outcomes.error t.outcomes;
          Breaker.record_failure t.breaker;
          let delay = Backoff.next t.backoff in
          if t.now () + delay > deadline then
            serve_degraded t ~attempts:n ~last_error:msg ~f
          else begin
            Outcomes.retry t.outcomes;
            t.sleep delay;
            attempt (n + 1) msg
          end
    in
    attempt 1 "circuit breaker open"
end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  ci95 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let m = mean xs in
  let sd = stddev xs in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  {
    n;
    mean = m;
    stddev = sd;
    min = mn;
    max = mx;
    median = percentile xs 50.;
    p95 = percentile xs 95.;
    ci95 = 1.96 *. sd /. sqrt (float_of_int n);
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<h>mean=%.4g ±%.2g (sd=%.3g, n=%d, min=%.4g, max=%.4g)@]"
    s.mean s.ci95 s.stddev s.n s.min s.max

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
end

(** Cache-line isolation for hot heap words: the spacer-boxing scheme
    behind {!Real_mem.atomic_contended}, exported as a reusable
    allocator so layers above the substrate (the telemetry counter
    cells of [Arc_obs]) get the same treatment without duplicating the
    topology probe or the spacer-retention discipline. *)

val alloc : (unit -> 'a) -> 'a
(** [alloc f] allocates whatever [f] builds with cache-line isolation:
    on a multi-core machine the fresh block is bracketed by retained
    line-sized spacers so no other hot heap word shares its line; on a
    uniprocessor it is a plain [f ()].  [f] must allocate a small
    block (at most a few words) and nothing else, or the bracketing is
    void. *)

val isolate_hot_words : bool
(** Whether the topology probe chose the isolated layout
    ([Domain.recommended_domain_count () > 1]). *)

lib/trace/history.ml: Array Format List

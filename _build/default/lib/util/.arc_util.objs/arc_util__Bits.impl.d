lib/util/bits.ml: Sys

(** Jittered exponential backoff for retry loops (ISSUE 3).

    Deterministic given its seed (SplitMix-driven jitter), so retry
    schedules replay exactly in the simulator and failing soak seeds
    stay reproducible.  Delays follow the "full jitter" scheme: the
    [n]-th delay is drawn uniformly from [[1, min (base·2ⁿ⁻¹) cap]],
    which decorrelates competing retriers while keeping the expected
    delay exponential — the standard cure for retry stampedes on a
    saturated register. *)

type t

val create : ?base:int -> ?cap:int -> seed:int -> unit -> t
(** [base] is the first attempt's maximum delay (default 4 clock
    units); [cap] bounds every delay (default 1024).
    @raise Invalid_argument if [base < 1] or [cap < base]. *)

val next : t -> int
(** Draw the next delay (in the caller's clock units — simulated steps
    or microseconds) and advance the attempt counter. *)

val attempts : t -> int
(** Delays drawn since creation or the last {!reset}. *)

val reset : t -> unit
(** Back to the first-attempt delay range (call after a success). *)

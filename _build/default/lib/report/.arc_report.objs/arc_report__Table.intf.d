lib/report/table.mli:

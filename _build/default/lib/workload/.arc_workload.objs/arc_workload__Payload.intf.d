lib/workload/payload.mli: Arc_mem

(* Hot-swappable configuration — the read-mostly extreme.

   Worker threads consult a shared configuration on every request;
   an operator thread occasionally publishes a new configuration of a
   *different size* (ARC supports variable-length snapshots, §3.3).
   Because readers of an unchanged register take ARC's RMW-free fast
   path, consulting the config costs two plain atomic loads — no
   coordination traffic at all between reloads.

     dune exec examples/config_hotswap.exe *)

module Arc = Arc_core.Arc.Make (Arc_mem.Real_mem)
module Mem = Arc_mem.Real_mem

(* A config is ⟨version; n; n key-value pairs⟩. *)
let encode ~version pairs =
  let n = List.length pairs in
  let src = Array.make (2 + (2 * n)) 0 in
  src.(0) <- version;
  src.(1) <- n;
  List.iteri
    (fun i (k, v) ->
      src.(2 + (2 * i)) <- k;
      src.(3 + (2 * i)) <- v)
    pairs;
  src

let lookup buffer key =
  let n = Mem.read_word buffer 1 in
  let rec go i =
    if i >= n then None
    else if Mem.read_word buffer (2 + (2 * i)) = key then
      Some (Mem.read_word buffer (3 + (2 * i)))
    else go (i + 1)
  in
  go 0

let key_timeout = 1
let key_limit = 2
let key_burst = 3

let () =
  let workers = 3 in
  let reloads = 50 in
  let capacity = 64 in
  let init = encode ~version:0 [ (key_timeout, 30); (key_limit, 100) ] in
  let cfg = Arc.create ~readers:workers ~capacity ~init in

  let operator () =
    for version = 1 to reloads do
      (* Every other reload also adds a key: sizes differ across
         writes. *)
      let pairs =
        (key_timeout, 30 + version)
        :: (key_limit, 100 + version)
        :: (if version mod 2 = 0 then [ (key_burst, version) ] else [])
      in
      let src = encode ~version pairs in
      Arc.write cfg ~src ~len:(Array.length src);
      Unix.sleepf 0.001
    done
  in

  let worker id () =
    let rd = Arc.reader cfg id in
    let requests = ref 0 in
    let version_changes = ref 0 in
    let last_version = ref 0 in
    let missing = ref 0 in
    while !last_version < reloads do
      incr requests;
      Arc.read_with rd ~f:(fun buffer _len ->
          let version = Mem.read_word buffer 0 in
          if version <> !last_version then incr version_changes;
          last_version := version;
          (* Consistency: timeout and limit always belong to the same
             config generation. *)
          match (lookup buffer key_timeout, lookup buffer key_limit) with
          | Some t, Some l ->
            if l - t <> 70 then
              failwith "torn configuration: keys from different generations"
          | _ -> incr missing)
    done;
    Printf.printf
      "worker %d: %d config consultations, %d reload observations, %d lookup misses\n"
      id !requests !version_changes !missing;
    assert (!missing = 0)
  in

  let domains =
    Domain.spawn operator :: List.init workers (fun i -> Domain.spawn (worker i))
  in
  List.iter Domain.join domains;
  print_endline "config_hotswap: all workers saw only complete configurations"

(* Sharded register fabric with wait-free atomic cross-shard
   snapshots (ISSUE 6).

   One (1,N) register per shard — any algorithm exposing the
   {!Arc_core.Register_intf.STAMPED} capability slots in — aggregated
   into a single keyed store whose [snapshot] returns a vector of
   shard values that were all simultaneously published at some instant
   within the snapshot's interval.  The construction is the classic
   double collect with modified-twice helping (Afek et al.), adapted
   to the repository's stamped registers:

   - {b Collect} reads every shard once with [read_stamped], recording
     value and publish stamp.
   - {b Probe pass} re-reads only the stamps ([probe_stamp] — two
     plain loads per shard, no RMW, no payload copy).  If every stamp
     still matches its collected value, all collected values were
     simultaneously published at the pass start: stamps are strictly
     monotone per register, so a matching probe certifies the shard
     publishes the collected value at probe time, and all probes of
     the pass happen after all (re)collects — the vector was intact
     throughout [last re-collect, first probe].
   - {b Modified twice ⇒ borrow.}  A shard whose observed stamp grew
     twice during the scan identifies a writer whose second write was
     {e invoked after the scan began}.  That writer observed the
     scanner's announcement and deposited a full snapshot of its own
     (taken entirely within this scan's interval) before publishing —
     the scanner adopts the deposit instead of collecting further.

   {b Lazy helping.}  Textbook helping embeds a snapshot in every
   update; here writers consult a substrate counter [active_scans] and
   only produce deposits while a scan is announced, so the write fast
   path (no scanner active) costs one extra load.  Deposits are
   immutable host-heap records published through an [Atomic.t] pointer
   per writer — payload vectors cannot live in substrate words, which
   confines the fabric to a single process (shards themselves may use
   any substrate, including shared memory; only the helping channel is
   heap-local).

   {b Wait-freedom bound.}  Each failed probe pass either increments
   some shard's observed-change count or catches a previously counted
   in-preparation stamp up to its publication (at most one such pass
   per counted change — see [attempt]).  Change counts reach 2 on some
   shard after at most [shards + 1] counted changes, and a shard
   counted twice always has a qualifying deposit (proved in
   DESIGN.md §8), so a snapshot runs at most [2·shards + 3] passes of
   O(shards) plain loads each — bounded by fabric size, independent of
   scheduling. *)

module Register_intf = Arc_core.Register_intf
module Obs = Arc_obs.Obs

(* A certified snapshot's typed failure: the retry budget was spent
   without certifying a round — because the fabric's configuration
   epoch moved inside the probe window (some shard changed leaders
   mid-snapshot; [r_now > r_opened]), or because epoch-matched
   borrowing starved the final round's dirty-pass cap without an
   observed epoch move ([r_now = r_opened]; elections elsewhere kept
   rejecting the deposits the counting bound would otherwise adopt).
   Either way the vector might span two reigns; the caller decides
   whether to re-issue the snapshot or surface the verdict, and
   nothing is silently served. *)
type reign_change = { r_opened : int; r_now : int }

(* Process-wide reign telemetry.  Unlike the per-fabric scan cells
   these are [Atomic.t]s: the epoch gauge and handoff counter are
   written by whichever thread completes a takeover
   ({!Arc_resilience.Reign} bumps them through this module), and the
   retry/changed counters by any scanner domain — multi-writer, off
   every fast path (a handoff or a certification failure, never a
   clean snapshot), so the RMW cost is irrelevant.  Same precedent as
   the admission gate's counters. *)
module Reign_tel = struct
  let epoch = Atomic.make 0
  let handoffs = Atomic.make 0
  let retries = Atomic.make 0
  let starved = Atomic.make 0
  let changed = Atomic.make 0
end

let reign_metrics () =
  let open Obs in
  [
    gauge "arc_reign_epoch"
      ~help:
        "Fabric configuration epoch as last observed by this process (bumped \
         once per completed leader handoff)"
      (float_of_int (Atomic.get Reign_tel.epoch));
    counter "arc_reign_handoffs_total"
      ~help:"Shard leader handoffs completed by this process"
      (Atomic.get Reign_tel.handoffs);
    counter "arc_reign_snapshot_reign_retries_total"
      ~help:
        "Certified snapshot rounds re-opened because the configuration epoch \
         was observed to move inside the probe window"
      (Atomic.get Reign_tel.retries);
    counter "arc_reign_snapshot_starved_reopens_total"
      ~help:
        "Certified snapshot rounds re-opened at the dirty-pass cap with the \
         configuration epoch unmoved (epoch-matched borrowing starved the \
         counting bound)"
      (Atomic.get Reign_tel.starved);
    counter "arc_reign_changed_total"
      ~help:
        "Certified snapshots that exhausted their retry budget and returned \
         the typed Reign_changed verdict"
      (Atomic.get Reign_tel.changed);
  ]

let reset_reign_metrics () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      Reign_tel.epoch;
      Reign_tel.handoffs;
      Reign_tel.retries;
      Reign_tel.starved;
      Reign_tel.changed;
    ]

module Make (R : Register_intf.STAMPED) = struct
  module M = R.Mem

  (* A snapshot vector.  Direct results alias the scanner's scratch
     (stable until that scanner's next snapshot); borrowed results are
     immutable deposits shared by reference.  [s_epoch] is the
     configuration epoch the snapshot was certified under — 0 for
     plain (uncertified) snapshots. *)
  type snap = {
    s_stamps : int array;
    s_lens : int array;
    s_data : int array array;
    s_borrowed : bool;
    s_epoch : int;
  }

  type t = {
    regs : R.t array;
    nwriters : int;
    nreaders : int;
    capacity : int;
    active_scans : M.atomic;  (* scanners (and helping writers) in flight *)
    deposits : snap option Atomic.t array;  (* per writer: latest helping snapshot *)
    scan_stats : Obs.Scan.t;  (* readers + writers cells, writers after readers *)
    shard_writes : Obs.Group.t;  (* per shard; single-writer per cell *)
    deposit_counts : Obs.Group.t;  (* per writer *)
    mutable reign : M.atomic option;
        (* fabric-wide configuration epoch word; attached, not created,
           because it lives in the substrate's reign table *)
    mutable reign_max_retries : int;
  }

  (* A scanner context: per-shard reader handles plus collect scratch.
     Writers embed one (with a reader identity above the public range)
     for their helping collects. *)
  type scanner = {
    fab : t;
    handles : R.reader array;
    stamps : int array;  (* per shard: stamp of the collected value *)
    high : int array;  (* per shard: largest stamp observed this scan *)
    changes : int array;  (* per shard: counted stamp growths this scan *)
    lens : int array;
    data : int array array;
    c_direct : Obs.Cell.t;
    c_borrowed : Obs.Cell.t;
    c_retries : Obs.Cell.t;
  }

  type writer = { ctx : scanner; wid : int; c_deposits : Obs.Cell.t; w_writes : Obs.Cell.t array }

  let algorithm = Printf.sprintf "fabric(%s)" R.algorithm

  let shards t = Array.length t.regs
  let writers t = t.nwriters
  let readers t = t.nreaders
  let capacity t = t.capacity

  (* Static shard ownership: writer [s mod writers] owns shard [s].
     The scanner's borrow rule depends on knowing which deposit cell
     the second modifier of a shard publishes through, so ownership is
     part of the fabric's construction, not caller convention. *)
  let owner_of t s = s mod t.nwriters

  (* Wrap pre-built registers into a fabric.  The registers must each
     have been provisioned with at least [readers + writers]
     identities (identity [readers + w] is writer [w]'s helping
     handle) — [create] guarantees this; callers bringing their own
     registers (e.g. {!Arc_shm.Shm_arc.create_fabric} instances, whose
     buffers live in a shared mapping) owe the same. *)
  let of_registers regs ~writers ~readers ~capacity =
    let shards = Array.length regs in
    if shards < 1 then invalid_arg "Fabric.of_registers: need at least one shard";
    if writers < 1 || writers > shards then
      invalid_arg
        (Printf.sprintf
           "Fabric.of_registers: writers = %d (need 1 <= writers <= shards)"
           writers);
    if readers < 1 then invalid_arg "Fabric.of_registers: need at least one reader";
    let per_reg = readers + writers in
    {
      regs;
      nwriters = writers;
      nreaders = readers;
      capacity;
      active_scans = M.atomic_contended 0;
      deposits = Array.init writers (fun _ -> Atomic.make None);
      scan_stats = Obs.Scan.create ~scanners:per_reg;
      shard_writes =
        Obs.Group.create ~name:"fabric_shard_writes_total"
          ~help:"Writes published per shard" shards;
      deposit_counts =
        Obs.Group.create ~name:"fabric_deposits_total"
          ~help:"Helping snapshots deposited per writer" writers;
      reign = None;
      (* One completed election per shard is the most that can overlap
         a single snapshot's interval without the epoch check catching
         the same handoff twice; the budget is overridable but this
         default makes the bound a function of fabric size. *)
      reign_max_retries = shards;
    }

  let create ~shards ~writers ~readers ~capacity ~init =
    if shards < 1 then invalid_arg "Fabric.create: need at least one shard";
    if writers < 1 || writers > shards then
      invalid_arg
        (Printf.sprintf "Fabric.create: writers = %d (need 1 <= writers <= shards)"
           writers);
    if readers < 1 then invalid_arg "Fabric.create: need at least one reader";
    (* Each register hosts the public readers plus one identity per
       writer thread (for helping collects): identities scale with
       thread counts, not with shards — a fabric of thousands of
       shards costs readers + writers + 2 slots per shard, never
       shards². *)
    let per_reg = readers + writers in
    let regs =
      Array.init shards (fun _ -> R.create ~readers:per_reg ~capacity ~init)
    in
    of_registers regs ~writers ~readers ~capacity

  let attach_reign ?max_retries fab ~config =
    fab.reign <- Some config;
    match max_retries with
    | Some r -> fab.reign_max_retries <- max 0 r
    | None -> ()

  let reign_attached fab = match fab.reign with Some _ -> true | None -> false

  let make_ctx fab identity =
    let n = Array.length fab.regs in
    {
      fab;
      handles = Array.map (fun r -> R.reader r identity) fab.regs;
      stamps = Array.make n 0;
      high = Array.make n 0;
      changes = Array.make n 0;
      lens = Array.make n 0;
      data = Array.init n (fun _ -> Array.make fab.capacity 0);
      c_direct = Obs.Scan.direct fab.scan_stats identity;
      c_borrowed = Obs.Scan.borrowed fab.scan_stats identity;
      c_retries = Obs.Scan.retries fab.scan_stats identity;
    }

  let scanner fab i =
    if i < 0 || i >= fab.nreaders then
      invalid_arg
        (Printf.sprintf "Fabric.scanner: identity %d out of range [0, %d)" i
           fab.nreaders);
    make_ctx fab i

  let writer fab w =
    if w < 0 || w >= fab.nwriters then
      invalid_arg
        (Printf.sprintf "Fabric.writer: identity %d out of range [0, %d)" w
           fab.nwriters);
    let w_writes =
      Array.init (Array.length fab.regs) (fun s ->
          Obs.Group.cell fab.shard_writes s)
    in
    {
      ctx = make_ctx fab (fab.nreaders + w);
      wid = w;
      c_deposits = Obs.Group.cell fab.deposit_counts w;
      w_writes;
    }

  (* Plain per-shard read through the scanner's handle — the fabric's
     point-read path, unchanged register semantics. *)
  let read ctx ~shard ~dst = R.read_into ctx.handles.(shard) ~dst

  let read_with ctx ~shard ~f = R.read_with ctx.handles.(shard) ~f

  (* One collect of shard [s]: value into scratch, stamp recorded as
     both the collected baseline and (if larger) the high-water
     mark. *)
  let collect ctx s =
    let stamp, () =
      R.read_stamped ctx.handles.(s) ~f:(fun buf len ->
          M.read_words buf ~dst:ctx.data.(s) ~len;
          ctx.lens.(s) <- len)
    in
    ctx.stamps.(s) <- stamp;
    if stamp > ctx.high.(s) then begin
      ctx.changes.(s) <- ctx.changes.(s) + 1;
      ctx.high.(s) <- stamp
    end

  (* Announce the scan and take the initial collect.  The announcement
     must precede the first collect: a writer invoked after any
     observation this scan makes must see [active_scans > 0]. *)
  let announce ctx =
    let fab = ctx.fab in
    M.incr fab.active_scans;
    Array.fill ctx.changes 0 (Array.length ctx.changes) 0;
    Array.fill ctx.high 0 (Array.length ctx.high) 0;
    for s = 0 to Array.length fab.regs - 1 do
      ctx.changes.(s) <- -1 (* baseline collect is not a change *);
      collect ctx s
    done

  let finish ctx = ignore (M.fetch_and_add ctx.fab.active_scans (-1))

  (* One probe pass over all shards.  A mismatching probe re-collects
     that shard; a stamp growing {e beyond} the scan's high-water mark
     counts as a change (strictly-greater comparison: a probe that
     races a slot recycle can observe a stamp still in preparation,
     and its eventual publication must not be double-counted).  A
     shard counted twice names a writer whose second write began after
     this scan's announcement — its deposit cell necessarily holds a
     snapshot taken within this scan (DESIGN.md §8); adopt it, if
     [accept] qualifies it (certified scans only borrow deposits
     certified under the same configuration epoch — see DESIGN.md
     §8b). *)
  let attempt ctx ~accept =
    let fab = ctx.fab in
    let n = Array.length fab.regs in
    let dirty = ref false in
    let found = ref None in
    let s = ref 0 in
    while !found = None && !s < n do
      let p = R.probe_stamp fab.regs.(!s) in
      if p <> ctx.stamps.(!s) then begin
        dirty := true;
        if p > ctx.high.(!s) then begin
          ctx.changes.(!s) <- ctx.changes.(!s) + 1;
          ctx.high.(!s) <- p
        end;
        collect ctx !s;
        if ctx.changes.(!s) >= 2 then
          match Atomic.get fab.deposits.(owner_of fab !s) with
          | Some d when accept d -> found := Some d
          | _ -> ()
      end;
      incr s
    done;
    match !found with
    | Some d -> `Borrowed d
    | None -> if !dirty then `Dirty else `Clean

  let direct_of ctx ~epoch =
    {
      s_stamps = ctx.stamps;
      s_lens = ctx.lens;
      s_data = ctx.data;
      s_borrowed = false;
      s_epoch = epoch;
    }

  (* The scan loop shared by public snapshots and writers' helping
     collects.  Structurally unbounded; bounded in fact by the
     counting argument above (≤ 2·shards + 3 passes). *)
  let scan ctx =
    announce ctx;
    Fun.protect
      ~finally:(fun () -> finish ctx)
      (fun () ->
        let rec go () =
          match attempt ctx ~accept:(fun _ -> true) with
          | `Clean ->
            ctx.c_direct.Obs.Cell.v <- ctx.c_direct.Obs.Cell.v + 1;
            direct_of ctx ~epoch:0
          | `Borrowed d ->
            ctx.c_borrowed.Obs.Cell.v <- ctx.c_borrowed.Obs.Cell.v + 1;
            d
          | `Dirty ->
            ctx.c_retries.Obs.Cell.v <- ctx.c_retries.Obs.Cell.v + 1;
            go ()
        in
        go ())

  let snapshot ctx = scan ctx

  (* Reign-certified scan (DESIGN.md §8b).  The configuration epoch is
     loaded before the round's first probe pass ([opened]) and
     re-loaded after the clean pass ([now]): the epoch is bumped by an
     elected successor {e after} its takeover and {e before} its first
     publish, so [now = opened] proves no handoff completed inside the
     probe window, and every collected value was published by a reign
     ≤ [opened].  On the no-election fast path this costs exactly two
     extra plain loads over [scan].

     Borrowing is epoch-matched: a deposit certifies its own vector
     only under the epoch {e its} scan opened, so a certified scan
     adopts only deposits with [s_epoch = opened].  That filter can
     starve the modified-twice counting bound — writers whose own
     helping certification failed deposit epoch-0 fallbacks the filter
     rejects — so each round also caps its dirty passes at the classic
     2·shards + 3 bound and re-opens when the cap hits.  Reopens are
     counted separately by cause: an observed epoch move
     ([Reign_tel.retries]) versus a cap hit with the epoch unmoved
     ([Reign_tel.starved]).  Rounds are bounded by
     [reign_max_retries]; an exhausted budget returns the typed
     {!reign_change} verdict — whose [r_now] equals [r_opened] when
     the final round starved rather than saw the epoch move — rather
     than a vector that might span two reigns.  Total work is at most
     [(max_retries + 1) · (2·shards + 3)] passes. *)
  let scan_certified ctx ~config ~max_retries =
    let fab = ctx.fab in
    let pass_cap = (2 * Array.length fab.regs) + 3 in
    announce ctx;
    Fun.protect
      ~finally:(fun () -> finish ctx)
      (fun () ->
        let rec round tries =
          let opened = M.load config in
          let rec go passes =
            match attempt ctx ~accept:(fun d -> d.s_epoch = opened) with
            | `Clean ->
                let now = M.load config in
                if now = opened then begin
                  ctx.c_direct.Obs.Cell.v <- ctx.c_direct.Obs.Cell.v + 1;
                  Ok (direct_of ctx ~epoch:opened)
                end
                else reopen tries opened now
            | `Borrowed d ->
                ctx.c_borrowed.Obs.Cell.v <- ctx.c_borrowed.Obs.Cell.v + 1;
                Ok d
            | `Dirty ->
                ctx.c_retries.Obs.Cell.v <- ctx.c_retries.Obs.Cell.v + 1;
                if passes >= pass_cap then reopen tries opened (M.load config)
                else go (passes + 1)
          in
          go 1
        and reopen tries opened now =
          if tries < max_retries then begin
            if now <> opened then Atomic.incr Reign_tel.retries
            else Atomic.incr Reign_tel.starved;
            round (tries + 1)
          end
          else begin
            Atomic.incr Reign_tel.changed;
            Error { r_opened = opened; r_now = now }
          end
        in
        round 0)

  let snapshot_certified ctx =
    let fab = ctx.fab in
    match fab.reign with
    | None ->
        invalid_arg
          "Fabric.snapshot_certified: no configuration epoch attached \
           (attach_reign first)"
    | Some config ->
        scan_certified ctx ~config ~max_retries:fab.reign_max_retries

  (* Negative-control arm: one collect pass, no announcement, no
     probe.  Deliberately non-atomic — writers racing the collect
     leave torn vectors behind — so harnesses can prove the fabric
     checker convicts exactly what [snapshot] prevents.  Never a real
     read path. *)
  let snapshot_unvalidated ctx =
    for s = 0 to Array.length ctx.fab.regs - 1 do
      collect ctx s
    done;
    direct_of ctx ~epoch:0

  (* Freeze a scan result into an immutable deposit.  A direct result
     aliases the writer's scratch (about to be reused), so it is
     copied; a borrowed result is already immutable and is re-shared
     as is — its scan interval nests inside ours, which keeps it a
     valid deposit for any scanner ours qualifies for. *)
  let freeze snap =
    if snap.s_borrowed then snap
    else
      {
        s_stamps = Array.copy snap.s_stamps;
        s_lens = Array.copy snap.s_lens;
        s_data = Array.map Array.copy snap.s_data;
        s_borrowed = true;
        s_epoch = snap.s_epoch;
      }

  (* Publish [src] to [shard].  The helping check is the write's only
     snapshot-related cost when no scan is announced: one substrate
     load.  While scans are active, the writer takes a full scan of
     its own (announced, so other writers keep helping it) and
     deposits the frozen result {e before} publishing — a scanner that
     observes this write's stamp is therefore guaranteed to find the
     deposit. *)
  let write w ~shard ~src ~len =
    let fab = w.ctx.fab in
    if shard < 0 || shard >= Array.length fab.regs then
      invalid_arg
        (Printf.sprintf "Fabric.write: shard %d out of range [0, %d)" shard
           (Array.length fab.regs));
    if owner_of fab shard <> w.wid then
      invalid_arg
        (Printf.sprintf "Fabric.write: shard %d is owned by writer %d, not %d"
           shard (owner_of fab shard) w.wid);
    if M.load fab.active_scans > 0 then begin
      (* With a reign attached, the helping scan runs certified so the
         deposit carries the epoch scanners match against.  The cell
         must be overwritten before EVERY publish that observed an
         announced scan — the borrow rule's freshness argument is that
         a shard counted twice implies its owner's deposit was frozen
         inside the counting scan's window — so a helping scan that
         itself hits Reign_changed falls back to an uncertified plain
         scan: plain snapshots keep their freshness and the 2n+3
         counting bound, while certified scans reject the epoch-0
         deposit through their epoch-match filter (the configuration
         epoch starts at 1) and surface the typed verdict through
         their own retry budget. *)
      let snap =
        match fab.reign with
        | None -> scan w.ctx
        | Some config -> (
            match
              scan_certified w.ctx ~config ~max_retries:fab.reign_max_retries
            with
            | Ok snap -> snap
            | Error (_ : reign_change) -> scan w.ctx)
      in
      Atomic.set fab.deposits.(w.wid) (Some (freeze snap));
      Obs.Cell.incr w.c_deposits
    end;
    R.write fab.regs.(shard) ~src ~len;
    let c = w.w_writes.(shard) in
    c.Obs.Cell.v <- c.Obs.Cell.v + 1

  (* {2 Snapshot accessors} *)

  let shard_len snap s = snap.s_lens.(s)
  let shard_stamp snap s = snap.s_stamps.(s)
  let shard_word snap s i = snap.s_data.(s).(i)
  let borrowed snap = snap.s_borrowed
  let snap_epoch snap = snap.s_epoch

  let shard_copy snap s ~dst =
    let len = snap.s_lens.(s) in
    if Array.length dst < len then invalid_arg "Fabric.shard_copy: dst too short";
    Array.blit snap.s_data.(s) 0 dst 0 len;
    len

  (* {2 Telemetry} *)

  let snapshots_direct fab = Obs.Scan.direct_count fab.scan_stats
  let snapshots_borrowed fab = Obs.Scan.borrowed_count fab.scan_stats
  let snapshot_retries fab = Obs.Scan.retry_count fab.scan_stats
  let deposits_made fab = Obs.Group.value fab.deposit_counts
  let shard_writes fab s = Obs.Cell.get (Obs.Group.cell fab.shard_writes s)

  let metrics fab =
    let per group =
      Array.to_list
        (Array.mapi
           (fun i v ->
             Obs.counter (Obs.Group.name group)
               ~labels:[ ("shard", string_of_int i) ]
               ~help:(Obs.Group.help group) v)
           (Obs.Group.per_domain group))
    in
    Obs.gauge "fabric_shards" ~help:"Shards in the fabric"
      (float_of_int (Array.length fab.regs))
    :: Obs.counter "fabric_snapshots_direct_total"
         ~help:"Snapshots certified by a clean probe pass"
         (snapshots_direct fab)
    :: Obs.counter "fabric_snapshots_borrowed_total"
         ~help:"Snapshots served from a writer's helping deposit"
         (snapshots_borrowed fab)
    :: Obs.counter "fabric_snapshot_retries_total"
         ~help:"Probe passes that failed and forced a re-collect"
         (snapshot_retries fab)
    :: Obs.counter "fabric_deposits_total"
         ~help:"Helping snapshots deposited by writers" (deposits_made fab)
    :: per fab.shard_writes
end

test/test_sim_mem.ml: Alcotest Arc_vsched Array List

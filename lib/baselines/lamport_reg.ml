let algorithm = "lamport77"

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type t = {
    v1 : M.atomic;  (* bumped before the writer's copy *)
    v2 : M.atomic;  (* set equal to v1 after the copy *)
    size : M.atomic;
    content : M.buffer;
    capacity : int;
    readers : int;
  }

  type reader = { reg : t; scratch : M.buffer; mutable retries : int }

  let algorithm = algorithm

  let caps =
    {
      Arc_core.Register_intf.wait_free = false;
      zero_copy = false (* reads validate a private scratch copy *);
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Lamport_reg.create: need at least one reader";
    if capacity < 1 then invalid_arg "Lamport_reg.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Lamport_reg.create: init too long";
    let reg =
      {
        (* The version pair is polled by every reader around every
           copy while the writer bumps both per write. *)
        v1 = M.atomic_contended 0;
        v2 = M.atomic_contended 0;
        size = M.atomic 0;
        content = M.alloc capacity;
        capacity;
        readers;
      }
    in
    M.write_words reg.content ~src:init ~len:(Array.length init);
    M.store reg.size (Array.length init);
    reg

  let reader reg i =
    if i < 0 || i >= reg.readers then
      invalid_arg "Lamport_reg.reader: identity out of range";
    { reg; scratch = M.alloc reg.capacity; retries = 0 }

  let retries rd = rd.retries

  let read_with rd ~f =
    let reg = rd.reg in
    let rec attempt () =
      let t2 = M.load reg.v2 in
      let len = M.load reg.size in
      let len = if len < 0 then 0 else if len > reg.capacity then reg.capacity else len in
      M.blit reg.content rd.scratch ~len;
      let t1 = M.load reg.v1 in
      if t1 = t2 then (rd.scratch, len)
      else begin
        rd.retries <- rd.retries + 1;
        M.cede ();
        attempt ()
      end
    in
    let buffer, len = attempt () in
    f buffer len

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then
          invalid_arg "Lamport_reg.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Lamport_reg.write: bad length";
    if len > M.capacity reg.content then invalid_arg "Lamport_reg.write: exceeds capacity";
    M.store reg.v1 (M.load reg.v1 + 1);
    M.write_words reg.content ~src ~len;
    M.store reg.size len;
    M.store reg.v2 (M.load reg.v1)
end

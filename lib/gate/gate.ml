(* Perf-gate decision logic — see gate.mli for why this is a pure
   library rather than code in bin/perf_gate.ml. *)

let field_of ~key s =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let slen = String.length s in
  let rec find i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then begin
      let j = ref (i + plen) in
      while !j < slen && s.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < slen
        && (match s.[!k] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
      do
        incr k
      done;
      if !k > !j then float_of_string_opt (String.sub s !j (!k - !j)) else None
    end
    else find (i + 1)
  in
  find 0

let keys_with_prefix ~prefix s =
  let plen = String.length prefix in
  let slen = String.length s in
  let acc = ref [] in
  let seen = Hashtbl.create 8 in
  let i = ref 0 in
  while !i < slen do
    (* A key is  "name":  — scan quoted strings and keep those that
       start with [prefix] and are immediately followed by a colon. *)
    if s.[!i] = '"' && !i + 1 + plen <= slen && String.sub s (!i + 1) plen = prefix
    then begin
      let j = ref (!i + 1) in
      while !j < slen && s.[!j] <> '"' do incr j done;
      if !j < slen && !j + 1 < slen && s.[!j + 1] = ':' then begin
        let key = String.sub s (!i + 1) (!j - !i - 1) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          acc := key :: !acc
        end
      end;
      i := !j + 1
    end
    else incr i
  done;
  List.rev !acc

type verdict =
  | Within of { metric : string; value : float; baseline : float; limit : float }
  | Regression of { metric : string; value : float; baseline : float; limit : float }
  | Baseline_recorded of { metric : string; value : float }
  | Ceiling_ok of { metric : string; value : float; ceiling : float }
  | Ceiling_exceeded of { metric : string; value : float; ceiling : float }

let pp_verdict ppf = function
  | Within { metric; value; baseline; limit = _ } ->
    Format.fprintf ppf "ok — %s %.2f ns within budget of last committed %.2f" metric
      value baseline
  | Regression { metric; value; baseline; limit } ->
    Format.fprintf ppf "REGRESSION — %s %.2f ns exceeds %.2f ns (last committed %.2f)"
      metric value limit baseline
  | Baseline_recorded { metric; value } ->
    Format.fprintf ppf "no prior %s in trajectory — baseline %.2f recorded" metric value
  | Ceiling_ok { metric; value; ceiling } ->
    Format.fprintf ppf "ok — %s %.2f ns under the %.2f ns ceiling" metric value ceiling
  | Ceiling_exceeded { metric; value; ceiling } ->
    Format.fprintf ppf "CEILING — %s %.2f ns is not below the %.2f ns bound" metric
      value ceiling

type report = {
  entry : string;
  verdicts : verdict list;
  compared : int;
  failures : int;
  seeded : bool;
}

let evaluate ~bench ?fabric ?scaling ?prior ~threshold ?ceiling ~label ~date () =
  let missing file key =
    Error
      (Printf.sprintf "%s has no \"%s\" field — was it written by bench/main.exe?" file
         key)
  in
  let ( let* ) = Result.bind in
  let need key =
    match field_of ~key bench with Some v -> Ok v | None -> missing "bench" key
  in
  let* off = need "read_hit_ns_off" in
  let* on_ = need "read_hit_ns_on" in
  let* overhead = need "overhead_pct" in
  (* Optional per-file metrics: absent files or pre-ISSUE fields keep
     older checkouts gating what they do measure. *)
  let plain = field_of ~key:"read_plain_ns" bench in
  let join_p99 = field_of ~key:"reader_join_p99_ns" bench in
  let* snap =
    match fabric with
    | None -> Ok None
    | Some s -> (
      match field_of ~key:"snapshot_ns_per_shard" s with
      | Some v -> Ok (Some v)
      | None -> missing "fabric bench" "snapshot_ns_per_shard")
  in
  (* Scaling metrics are discovered, not hard-coded: whatever core
     counts the matrix measured are tracked and gated per count. *)
  let scaling_metrics =
    match scaling with
    | None -> []
    | Some s ->
      let keys =
        keys_with_prefix ~prefix:"read_hit_ns@" s
        @ keys_with_prefix ~prefix:"read_plain_ns@" s
      in
      List.filter_map (fun k -> Option.map (fun v -> (k, v)) (field_of ~key:k s)) keys
  in
  let tracked =
    [ ("read_hit_ns_off", Some off); ("read_plain_ns", plain);
      ("snapshot_ns_per_shard", snap); ("reader_join_p99_ns", join_p99) ]
    |> List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v)
  in
  let tracked = tracked @ scaling_metrics in
  let entry =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"date\": \"%s\", \"label\": \"%s\", \"read_hit_ns_off\": %.2f, \
          \"read_hit_ns_on\": %.2f, \"overhead_pct\": %.2f"
         date label off on_ overhead);
    List.iter
      (fun (k, v) ->
        if k <> "read_hit_ns_off" then
          Buffer.add_string buf (Printf.sprintf ", \"%s\": %.2f" k v))
      tracked;
    Buffer.add_char buf '}';
    Buffer.contents buf
  in
  let baseline_of key = Option.bind prior (field_of ~key) in
  let gate (metric, value) =
    match baseline_of metric with
    | None -> Baseline_recorded { metric; value }
    | Some baseline ->
      let limit = baseline *. (1. +. (threshold /. 100.)) in
      if value > limit then Regression { metric; value; baseline; limit }
      else Within { metric; value; baseline; limit }
  in
  let trajectory_verdicts = List.map gate tracked in
  (* The absolute bound: the R2' validated plain load exists to beat
     the classic read path's historical cost — enforced against the
     fixed ceiling, not just against drift. *)
  let ceiling_verdicts =
    match (ceiling, plain) with
    | Some c, Some v ->
      [ (if v < c then Ceiling_ok { metric = "read_plain_ns"; value = v; ceiling = c }
         else Ceiling_exceeded { metric = "read_plain_ns"; value = v; ceiling = c }) ]
    | _ -> []
  in
  let verdicts = trajectory_verdicts @ ceiling_verdicts in
  let compared =
    List.length
      (List.filter (function Within _ | Regression _ -> true | _ -> false)
         trajectory_verdicts)
  in
  let failures =
    List.length
      (List.filter
         (function Regression _ | Ceiling_exceeded _ -> true | _ -> false)
         verdicts)
  in
  Ok { entry; verdicts; compared; failures; seeded = compared = 0 }

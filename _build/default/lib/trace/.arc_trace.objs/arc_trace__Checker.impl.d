lib/trace/checker.ml: Array Format Hashtbl History List Option Result

lib/baselines/rwlock_reg.ml: Arc_mem Array

test/test_audit.ml: Alcotest Arc_harness Arc_trace Arc_vsched Option Printf

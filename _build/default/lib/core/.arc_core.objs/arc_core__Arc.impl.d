lib/core/arc.ml: Arc_mem Arc_util Array

let hardware_domains () = Domain.recommended_domain_count ()
let word_bits = Sys.int_size

let describe () =
  Printf.sprintf "os=%s, word=%d-bit int, hardware domains=%d, ocaml=%s"
    Sys.os_type word_bits (hardware_domains ()) Sys.ocaml_version

let now_ns () = Monotonic_clock.now ()
let seconds_of_ns ns = Int64.to_float ns *. 1e-9

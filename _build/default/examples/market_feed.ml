(* Market-data snapshot fan-out — the paper's motivating pattern of
   one fast producer and many consumers sharing a large object.

   A feed handler maintains an order-book snapshot (price levels with
   sizes on both sides); strategy threads continuously read the most
   recent consistent book and compute mid-price / imbalance.  With
   ARC, readers never block the feed, never see a half-updated book,
   and never copy the book to look at it.

     dune exec examples/market_feed.exe *)

module Arc = Arc_core.Arc.Make (Arc_mem.Real_mem)
module Mem = Arc_mem.Real_mem

let levels = 32

(* Book layout, in words:
   0: update sequence     1: exchange timestamp (fake ns)
   2..2+levels-1:          bid prices (ticks)
   ...  then bid sizes, ask prices, ask sizes. *)
let words = 2 + (4 * levels)
let bid_px = 2
let bid_sz = bid_px + levels
let ask_px = bid_sz + levels
let ask_sz = ask_px + levels

let build_book src ~seq ~mid =
  src.(0) <- seq;
  src.(1) <- seq * 137;
  for l = 0 to levels - 1 do
    src.(bid_px + l) <- mid - 1 - l;
    src.(bid_sz + l) <- 100 + ((seq + l) mod 900);
    src.(ask_px + l) <- mid + 1 + l;
    src.(ask_sz + l) <- 100 + ((seq + (2 * l)) mod 900)
  done

let () =
  let updates = 20_000 in
  let consumers = 3 in
  let init = Array.make words 0 in
  build_book init ~seq:0 ~mid:10_000;
  let book = Arc.create ~readers:consumers ~capacity:words ~init in

  let feed_handler () =
    let src = Array.make words 0 in
    let rng = Arc_util.Splitmix.of_int 7 in
    let mid = ref 10_000 in
    for seq = 1 to updates do
      (* Random walk of the mid price; rebuild and publish the book. *)
      mid := !mid + Arc_util.Splitmix.int rng 3 - 1;
      build_book src ~seq ~mid:!mid;
      Arc.write book ~src ~len:words
    done
  in

  let strategy id () =
    let rd = Arc.reader book id in
    let reads = ref 0 in
    let inconsistent = ref 0 in
    let last_seq = ref 0 in
    let stale = ref 0 in
    while !last_seq < updates do
      incr reads;
      Arc.read_with rd ~f:(fun b _len ->
          let seq = Mem.read_word b 0 in
          (* Consistency invariant of any single snapshot: the book
             never crosses (best bid < best ask). *)
          let best_bid = Mem.read_word b bid_px in
          let best_ask = Mem.read_word b ask_px in
          if best_bid >= best_ask then incr inconsistent;
          (* Mid/imbalance computed in place — zero copies. *)
          let bid_vol = ref 0 and ask_vol = ref 0 in
          for l = 0 to levels - 1 do
            bid_vol := !bid_vol + Mem.read_word b (bid_sz + l);
            ask_vol := !ask_vol + Mem.read_word b (ask_sz + l)
          done;
          if seq = !last_seq then incr stale;
          last_seq := seq)
    done;
    Printf.printf
      "strategy %d: %d reads, %d crossed books, %.1f%% reads of an unchanged book \
       (ARC's zero-RMW fast path)\n"
      id !reads !inconsistent
      (100. *. float_of_int !stale /. float_of_int !reads);
    assert (!inconsistent = 0)
  in

  let t0 = Arc_util.Cpu.now_ns () in
  let domains =
    Domain.spawn feed_handler :: List.init consumers (fun i -> Domain.spawn (strategy i))
  in
  List.iter Domain.join domains;
  let dt = Arc_util.Cpu.seconds_of_ns (Int64.sub (Arc_util.Cpu.now_ns ()) t0) in
  Printf.printf "market_feed: %d book updates (%d-level, %d words) in %.3fs\n"
    updates levels words dt

lib/harness/real_runner.mli: Arc_core Config

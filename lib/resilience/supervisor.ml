(* Heartbeat-monitored writer lease + term-voted promotion (ISSUE 3,
   reworked by ISSUE 7).

   The supervisor owns the failure-{e detection} half of writer
   failover: the incumbent refreshes a heartbeat word after every
   write; a standby polls {!expired} and, once the incumbent has been
   silent past a full lease, tries to {!promote}.  Failure
   {e arbitration} — which of several suspicious standbys actually
   takes over — is delegated to {!Election}: promotion is a term-voted
   campaign on the shared [term ∥ vote] word, and only the vote's
   unique winner gets a writer handle.  Losing an election is a normal
   outcome ([Lost]), not an error: some other standby won the same
   suspicion, and the loser goes back to monitoring its heartbeats.

   Failure detection over heartbeats is necessarily approximate: a
   slow-but-alive writer can be deposed (a {e spurious} failover).
   That is safe here — the winning campaign prefences before anything
   else, so the deposed writer's next write raises [Fenced_out] and it
   retires — and the lease only trades availability (how long writes
   stall after a real crash) against the rate of spurious handoffs.
   What the lease must strictly dominate is any {e mid-write} pause of
   the incumbent; see the residual-window note in {!Fenced} and
   DESIGN.md §6c/§6e.

   Clocks are caller-supplied so the same supervisor drives simulated
   steps (vsched) and wall-clock time.  [heartbeat] ignores handles
   whose epoch is no longer current: a zombie's heartbeat must not
   re-arm the lease it already lost. *)

module Make (R : Arc_core.Register_intf.FENCEABLE) = struct
  module Election = Election.Make (R)

  (* Alias the election's instance rather than re-applying
     [Fenced.Make (R)] — one canonical fenced-register module per
     supervisor keeps handle provenance obvious (every handle here
     came out of a campaign). *)
  module Fenced_reg = Election.Fenced_reg
  module M = R.Mem

  type t = {
    election : Election.t;
    now : unit -> int;
    lease : int;
    hb : M.atomic;  (* time of the last accepted heartbeat *)
    mutable failovers : int;
    mutable quarantined : int;  (* slots retired by crash recovery *)
    mutable last_fence : int option;
  }

  (* [?word] backs the election word with a caller-owned cell (the shm
     superblock's, for cross-process supervision); [?candidate] names
     this supervisor's process in vote outcomes. *)
  let create ?word ?(candidate = 0) ~now ~lease reg =
    if lease < 1 then
      invalid_arg (Printf.sprintf "Supervisor.create: lease = %d" lease);
    {
      election = Election.create ?word ~candidate reg;
      now;
      lease;
      hb = M.atomic_contended (now ());
      failovers = 0;
      quarantined = 0;
      last_fence = None;
    }

  let register t = Election.fenced t.election
  let election t = t.election

  (* First acquisition is an election too — an uncontested one on a
     fresh word, but going through the campaign keeps the invariant
     that {e every} writer handle ever issued was voted for, so the
     term history names every reign. *)
  let acquire t =
    match Election.campaign t.election with
    | Election.Won { writer; _ } ->
      M.store t.hb (t.now ());
      writer
    | Election.Lost { term; winner } ->
      failwith
        (Printf.sprintf
           "Supervisor.acquire: lost the initial election (term %d held by %s)"
           term
           (match winner with Some c -> string_of_int c | None -> "nobody"))

  let heartbeat t w = if Fenced_reg.current w then M.store t.hb (t.now ())
  let age t = t.now () - M.load t.hb
  let expired t = age t > t.lease

  (* Campaign for the succession.  On [Won], the election has already
     ordered vote → prefence → takeover → issue; the takeover here is
     the register's own crash recovery — the deposed writer may have
     died mid-publish, and the slot its journal names must be
     quarantined before this successor's first free-slot search can
     hand it out with readers still on it.  The fence time is taken
     after the issue (epoch bump), so every write the deposed writer
     managed to publish precedes it — the bound [check_crash ?fence]
     needs.  On [Lost], nothing changed locally: some other candidate
     won the term and owns the takeover. *)
  let promote t =
    let outcome =
      Election.campaign
        ~takeover:(fun () -> Fenced_reg.recover_crash (register t))
        t.election
    in
    (match outcome with
    | Election.Won { recovered; _ } ->
      t.quarantined <- t.quarantined + recovered;
      let at = t.now () in
      M.store t.hb at;
      t.failovers <- t.failovers + 1;
      t.last_fence <- Some at
    | Election.Lost _ -> ());
    outcome

  let failovers t = t.failovers
  let quarantined t = t.quarantined
  let last_fence t = t.last_fence
end

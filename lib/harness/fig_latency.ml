(** E7: operation-latency distributions on real domains — the
    per-operation face of wait-freedom (complements the paper's
    throughput-only reporting) — plus the measurement-noise
    quantification table. *)

module Table = Arc_report.Table
module RI = Arc_core.Register_intf

let latency_table (opts : Grid.opts) =
  let table =
    Table.create
      ~title:
        "E7 — read latency distribution on real domains (Verify workload, \
         3 readers, 4KB register; microseconds)"
      ~columns:[ "algorithm"; "reads"; "mean µs"; "p99 µs"; "p99.9 µs"; "max µs" ]
  in
  List.iter
    (fun (entry : Registry.entry) ->
      let readers =
        match entry.Registry.caps.RI.max_readers ~capacity_words:512 with
        | Some bound -> min bound 3
        | None -> 3
      in
      let cfg =
        {
          Config.default_real with
          Config.readers;
          size_words = 512;
          duration_s = opts.Grid.duration_s;
          workload = Config.Verify;
          record = 200_000;
          seed = opts.Grid.seed;
        }
      in
      let result = entry.Registry.run_real cfg in
      match result.Config.history with
      | None -> ()
      | Some h ->
        let audit = Arc_trace.Audit.of_history h in
        let reads = audit.Arc_trace.Audit.reads in
        let us ns = ns /. 1e3 in
        Table.add_row table
          [
            entry.Registry.name;
            string_of_int reads.Arc_trace.Audit.count;
            Printf.sprintf "%.2f" (us reads.Arc_trace.Audit.mean_duration);
            Printf.sprintf "%.2f" (us reads.Arc_trace.Audit.p99_duration);
            Printf.sprintf "%.2f" (us reads.Arc_trace.Audit.p999_duration);
            Printf.sprintf "%.2f"
              (us (float_of_int reads.Arc_trace.Audit.max_duration));
          ])
    Registry.all;
  table

(* Measurement-noise quantification: repeat one canonical point many
   times and report dispersion, so EXPERIMENTS.md can state how much
   of any real-mode gap is noise. *)
let variability_table (opts : Grid.opts) =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Measurement variability — hold model, 3+1 threads, 4KB register, \
            %d repetitions per algorithm"
           (max (opts.Grid.reps * 3) 8))
      ~columns:[ "algorithm"; "mean ops/s"; "stddev"; "CV %"; "min"; "max" ]
  in
  let reps = max (opts.Grid.reps * 3) 8 in
  List.iter
    (fun (entry : Registry.entry) ->
      let cfg =
        {
          Config.default_real with
          Config.readers = 3;
          size_words = Arc_workload.Payload.size_4kb;
          duration_s = opts.Grid.duration_s;
          seed = opts.Grid.seed;
        }
      in
      let samples =
        Array.init reps (fun _ ->
            (entry.Registry.run_real cfg).Config.total_throughput)
      in
      let s = Arc_util.Stats.summarize samples in
      Table.add_row table
        [
          entry.Registry.name;
          Printf.sprintf "%.3g" s.Arc_util.Stats.mean;
          Printf.sprintf "%.3g" s.Arc_util.Stats.stddev;
          Printf.sprintf "%.1f"
            (100. *. s.Arc_util.Stats.stddev /. s.Arc_util.Stats.mean);
          Printf.sprintf "%.3g" s.Arc_util.Stats.min;
          Printf.sprintf "%.3g" s.Arc_util.Stats.max;
        ])
    Registry.paper_set;
  table

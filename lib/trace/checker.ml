type violation =
  | Malformed of string
  | Stale_read of { read : History.event; low : int }
  | Future_read of { read : History.event; high : int }
  | New_old_inversion of { earlier : History.event; later : History.event }

let pp_violation ppf = function
  | Malformed msg -> Format.fprintf ppf "malformed history: %s" msg
  | Stale_read { read; low } ->
    Format.fprintf ppf
      "stale read: %a but write %d had already completed before it started"
      History.pp_event read low
  | Future_read { read; high } ->
    Format.fprintf ppf
      "impossible read: %a but the newest write invoked before it returned is %d"
      History.pp_event read high
  | New_old_inversion { earlier; later } ->
    Format.fprintf ppf "new-old inversion: %a precedes %a" History.pp_event earlier
      History.pp_event later

type report = { reads_checked : int; writes_checked : int; fast_path_candidates : int }

let ( let* ) = Result.bind

let well_formed h =
  let writes = Array.of_list (History.writes h) in
  let k = Array.length writes in
  let rec check_writes i prev_end =
    if i >= k then Ok ()
    else begin
      let w = writes.(i) in
      if w.History.seq <> i + 1 then
        Error
          (Malformed
             (Format.asprintf "write sequence gap: expected %d, got %a" (i + 1)
                History.pp_event w))
      else if w.History.invoked < prev_end then
        Error
          (Malformed
             (Format.asprintf "writer not sequential at %a" History.pp_event w))
      else check_writes (i + 1) w.History.returned
    end
  in
  let* () = check_writes 0 min_int in
  let bad_read =
    List.find_opt (fun (r : History.event) -> r.seq < 0 || r.seq > k) (History.reads h)
  in
  match bad_read with
  | Some r ->
    Error
      (Malformed
         (Format.asprintf "read of never-written value: %a (writes: %d)"
            History.pp_event r k))
  | None -> Ok writes

(* Largest i with key.(i) < x, plus one — i.e. how many entries are
   strictly below x — over a non-decreasing array. *)
let count_below keys x =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let regularity h writes =
  let write_ends = Array.map (fun (w : History.event) -> w.returned) writes in
  let write_starts = Array.map (fun (w : History.event) -> w.invoked) writes in
  let rec go = function
    | [] -> Ok ()
    | (r : History.event) :: rest ->
      let low = count_below write_ends r.invoked in
      let high = count_below write_starts r.returned in
      if r.seq < low then Error (Stale_read { read = r; low })
      else if r.seq > high then Error (Future_read { read = r; high })
      else go rest
  in
  go (History.reads h)

let no_new_old_inversion h =
  let by_returned =
    List.sort
      (fun (a : History.event) b -> compare a.returned b.returned)
      (History.reads h)
  in
  let by_invoked = History.reads h (* already sorted by invocation *) in
  (* Sweep reads in invocation order; [completed] walks reads in
     return order, maintaining the maximum seq among reads that
     returned strictly before the current read was invoked. *)
  let completed = ref by_returned in
  let max_seq = ref (-1) in
  let max_ev = ref None in
  let rec advance bound =
    match !completed with
    | (c : History.event) :: rest when c.returned < bound ->
      if c.seq > !max_seq then begin
        max_seq := c.seq;
        max_ev := Some c
      end;
      completed := rest;
      advance bound
    | _ -> ()
  in
  let rec go = function
    | [] -> Ok ()
    | (r : History.event) :: rest ->
      advance r.invoked;
      if r.seq < !max_seq then
        Error
          (New_old_inversion { earlier = Option.get !max_ev; later = r })
      else go rest
  in
  go by_invoked

let fast_path_candidates h =
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.fold_left
    (fun acc (r : History.event) ->
      let hit =
        match Hashtbl.find_opt last r.thread with
        | Some prev -> prev = r.seq
        | None -> false
      in
      Hashtbl.replace last r.thread r.seq;
      if hit then acc + 1 else acc)
    0 (History.reads h)

let report h =
  {
    reads_checked = List.length (History.reads h);
    writes_checked = List.length (History.writes h);
    fast_path_candidates = fast_path_candidates h;
  }

let check_regular_only h =
  let* writes = well_formed h in
  let* () = regularity h writes in
  Ok (report h)

let check h =
  let* writes = well_formed h in
  let* () = regularity h writes in
  let* () = no_new_old_inversion h in
  Ok (report h)

type crash_outcome = No_crash | Vanished | Took_effect

let crash_outcome_name = function
  | No_crash -> "no-crash"
  | Vanished -> "vanished"
  | Took_effect -> "took-effect"

(* A write pending at the writer's crash has no return event: it is
   allowed to either never take effect (no read returns it) or to take
   effect at any point after its invocation (reads from then on may
   return it).  Both candidate completions reuse the full checker; a
   history is crash-consistent iff at least one passes.  The
   took-effect candidate models the open-ended linearization window
   with [returned = max_int], which the interval arithmetic of
   {!regularity} treats as "never completed before anything" — it can
   satisfy reads but never forces staleness on them.

   [?fence] bounds that window: under epoch-fenced failover
   (Arc_resilience.Fenced) the crashed writer's pending write can only
   have been published before the supervisor fenced its epoch, so the
   took-effect candidate completes at the fence instead of never.
   This is strictly stronger — a post-fence history in which the
   successor's writes interleave after the fence must still be
   writer-sequential relative to the pending write, which [max_int]
   would wrongly forgive. *)
let check_crash ?pending_write ?fence h =
  match pending_write with
  | None -> Result.map (fun r -> (r, No_crash)) (check h)
  | Some (seq, invoked) -> (
    match check h with
    | Ok r -> Ok (r, Vanished)
    | Error vanished_violation -> (
      let returned = match fence with None -> max_int | Some f -> max f invoked in
      let ev = History.event History.Write ~thread:0 ~seq ~invoked ~returned in
      let h' = History.of_events (ev :: History.events h) in
      match check h' with
      | Ok r -> Ok (r, Took_effect)
      | Error _ ->
        (* Neither completion explains the history; report the verdict
           on the as-recorded events, which names real reads. *)
        Error vanished_violation))

(* {1 Bounded staleness of degraded reads}

   Degraded reads served from a circuit breaker's last-known-good
   snapshot are deliberately excluded from the atomic history — they
   are the documented departure.  What they owe instead is the
   breaker's bounded-staleness contract: a serve at time [t] returning
   value [seq] must not lag the register by more than [bound] writes,
   i.e. [seq >= completed_writes_before(t) - bound].  The writes used
   as the yardstick are the recorded (atomic) history's writes. *)

type stale_serve = { thread : int; seq : int; at : int }

type staleness_violation = {
  serve : stale_serve;
  completed : int;  (** writes completed before the serve *)
  bound : int;
}

let pp_staleness_violation ppf v =
  Format.fprintf ppf
    "stale serve out of bound: thread %d served seq %d at %d, but %d writes had \
     completed (allowed lag %d, floor seq %d)"
    v.serve.thread v.serve.seq v.serve.at v.completed v.bound (v.completed - v.bound)

(* {1 Cross-shard snapshot checking (ISSUE 6)}

   A fabric snapshot claims its whole vector was simultaneously
   published at one instant inside the snapshot's interval.  Checking
   decomposes:

   - {b per shard}: project every snapshot onto shard [i] as an
     ordinary read event (same interval, the shard's observed seq) and
     run the full single-register check against that shard's writes —
     regularity and new-old inversions per component come for free
     from the existing machinery;
   - {b cross shard}: intersect the validity windows.  Value [v] of
     shard [i] can have been current no earlier than the invocation of
     write [v] and no later than the return of write [v + 1]
     (maximally permissive endpoints — a conviction can never be a
     timestamping artifact).  The intersection of all shard windows,
     clipped to the snapshot's own interval, must be non-empty;
     otherwise some shard was observed fresh after another's observed
     value was already dead — a torn snapshot. *)

type snapshot_obs = {
  sthread : int;
  invoked : int;
  returned : int;
  observed : int array;  (** per shard: seq of the value in the vector *)
  sepoch : int;  (** configuration epoch certified under; 0 = uncertified *)
}

(* A reign claim (ISSUE 9): shard [rshard]'s writes from [first_seq]
   onward (until a later claim for the same shard takes over) were
   published under configuration epoch [config].  The harness records
   one claim per leadership interval — the original leader's and one
   per elected successor. *)
type reign = { rshard : int; first_seq : int; config : int }

type fabric_violation =
  | Shard_violation of { shard : int; violation : violation }
  | Torn_snapshot of {
      snapshot : snapshot_obs;
      fresh_shard : int;  (** its observed write was invoked last *)
      stale_shard : int;  (** its observed value died first *)
      earliest : int;  (** earliest instant the vector could exist *)
      latest : int;  (** latest instant it could still exist *)
    }
  | Cross_reign of {
      snapshot : snapshot_obs;
      shard : int;  (** the shard whose observed value postdates the epoch *)
      config : int;  (** the reign that published it ([> sepoch]) *)
    }

let pp_fabric_violation ppf = function
  | Shard_violation { shard; violation } ->
    Format.fprintf ppf "shard %d: %a" shard pp_violation violation
  | Torn_snapshot { snapshot; fresh_shard; stale_shard; earliest; latest } ->
    Format.fprintf ppf
      "torn snapshot: thread %d [%d, %d] observed shard %d's seq %d (alive from \
       %d) after shard %d's seq %d was already superseded (dead by %d)"
      snapshot.sthread snapshot.invoked snapshot.returned fresh_shard
      snapshot.observed.(fresh_shard) earliest stale_shard
      snapshot.observed.(stale_shard) latest
  | Cross_reign { snapshot; shard; config } ->
    Format.fprintf ppf
      "cross-reign snapshot: thread %d [%d, %d] certified under configuration \
       epoch %d, but shard %d's seq %d was published by reign %d"
      snapshot.sthread snapshot.invoked snapshot.returned snapshot.sepoch shard
      snapshot.observed.(shard) config

type fabric_report = {
  fshards : int;
  snapshots_checked : int;
  shard_reports : report array;
}

let check_fabric ?(reigns = []) ~writes ~snapshots () =
  let nshards = Array.length writes in
  if nshards = 0 then invalid_arg "Checker.check_fabric: no shards";
  List.iter
    (fun s ->
      if Array.length s.observed <> nshards then
        invalid_arg
          (Printf.sprintf
             "Checker.check_fabric: snapshot observed %d shards, expected %d"
             (Array.length s.observed) nshards))
    snapshots;
  (* Per-shard pass: shard writes + projected snapshot reads through
     the full single-register checker. *)
  let shard_reports = Array.make nshards (report (History.of_events [])) in
  let rec per_shard i =
    if i >= nshards then Ok ()
    else begin
      let reads =
        List.map
          (fun s ->
            History.event History.Read ~thread:s.sthread ~seq:s.observed.(i)
              ~invoked:s.invoked ~returned:s.returned)
          snapshots
      in
      let h = History.of_events (reads @ History.events writes.(i)) in
      match check h with
      | Ok r ->
        shard_reports.(i) <- r;
        per_shard (i + 1)
      | Error violation -> Error (Shard_violation { shard = i; violation })
    end
  in
  let* () = per_shard 0 in
  (* Cross-shard pass: non-empty intersection of validity windows. *)
  let shard_writes =
    Array.map (fun h -> Array.of_list (History.writes h)) writes
  in
  (* Reign pass (ISSUE 9): the reign that published shard [i]'s
     observed value is the largest-[config] claim covering its seq.  A
     certified snapshot ([sepoch > 0]) must draw every shard value
     from a reign ≤ its certification epoch; uncertified snapshots
     ([sepoch = 0]) claim nothing about reigns and are exempt. *)
  let reign_of i v =
    List.fold_left
      (fun acc (r : reign) ->
        if r.rshard = i && r.first_seq <= v && r.config > acc then r.config
        else acc)
      0 reigns
  in
  let cross_reign s =
    if s.sepoch = 0 then None
    else begin
      let bad = ref None in
      for i = nshards - 1 downto 0 do
        let c = reign_of i s.observed.(i) in
        if c > s.sepoch then bad := Some (Cross_reign { snapshot = s; shard = i; config = c })
      done;
      !bad
    end
  in
  let rec per_snapshot checked = function
    | [] -> Ok { fshards = nshards; snapshots_checked = checked; shard_reports }
    | s :: rest ->
      let earliest = ref s.invoked and fresh = ref (-1) in
      let latest = ref s.returned and stale = ref (-1) in
      for i = 0 to nshards - 1 do
        let v = s.observed.(i) in
        let ws = shard_writes.(i) in
        (* well_formed (inside [check]) already certified seq j lives
           at index j - 1 and that v is in range. *)
        let birth = if v = 0 then min_int else ws.(v - 1).History.invoked in
        let death =
          if v >= Array.length ws then max_int else ws.(v).History.returned
        in
        if birth > !earliest then begin
          earliest := birth;
          fresh := i
        end;
        if death < !latest then begin
          latest := death;
          stale := i
        end
      done;
      if !earliest > !latest then
        Error
          (Torn_snapshot
             {
               snapshot = s;
               fresh_shard = (if !fresh >= 0 then !fresh else 0);
               stale_shard = (if !stale >= 0 then !stale else 0);
               earliest = !earliest;
               latest = !latest;
             })
      else begin
        match cross_reign s with
        | Some v -> Error v
        | None -> per_snapshot (checked + 1) rest
      end
  in
  per_snapshot 0 snapshots

let check_bounded_staleness h ~bound serves =
  if bound < 0 then
    invalid_arg
      (Printf.sprintf "Checker.check_bounded_staleness: bound = %d (need >= 0)" bound);
  let write_ends =
    Array.of_list
      (List.map (fun (w : History.event) -> w.returned) (History.writes h))
  in
  Array.sort compare write_ends;
  let rec go checked = function
    | [] -> Ok checked
    | s :: rest ->
      let completed = count_below write_ends s.at in
      if s.seq < completed - bound then Error { serve = s; completed; bound }
      else go (checked + 1) rest
  in
  go 0 serves

type coalesce_violation =
  | Coalesce_malformed of string
  | Lost_final_write of { last_enqueued : int; last_published : int }
  | Oversized_batch of { published : int; previous : int; bound : int }

let pp_coalesce_violation ppf = function
  | Coalesce_malformed msg -> Format.fprintf ppf "malformed publish list: %s" msg
  | Lost_final_write { last_enqueued; last_published } ->
    Format.fprintf ppf
      "lost final write: enqueued up to seq %d but the last publish carried seq %d"
      last_enqueued last_published
  | Oversized_batch { published; previous; bound } ->
    Format.fprintf ppf
      "oversized batch: publish of seq %d coalesced %d writes past seq %d (bound %d)"
      published (published - previous) previous bound

let check_coalesced ~enqueued ~bound published =
  if enqueued < 0 then
    invalid_arg
      (Printf.sprintf "Checker.check_coalesced: enqueued = %d (need >= 0)" enqueued);
  if bound < 1 then
    invalid_arg
      (Printf.sprintf "Checker.check_coalesced: bound = %d (need >= 1)" bound);
  let rec go prev batches = function
    | [] ->
      if prev <> enqueued then
        Error (Lost_final_write { last_enqueued = enqueued; last_published = prev })
      else Ok batches
    | p :: rest ->
      if p < 1 || p > enqueued then
        Error
          (Coalesce_malformed
             (Printf.sprintf "published seq %d outside the enqueued range 1..%d" p
                enqueued))
      else if p <= prev then
        Error
          (Coalesce_malformed
             (Printf.sprintf "publish order not increasing: seq %d after seq %d" p
                prev))
      else if p - prev > bound then
        Error (Oversized_batch { published = p; previous = prev; bound })
      else go p (batches + 1) rest
  in
  go 0 0 published

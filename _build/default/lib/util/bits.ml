let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
  go 0 w

let lowest_set w =
  if w = 0 then invalid_arg "Bits.lowest_set: zero";
  let rec go i w = if w land 1 = 1 then i else go (i + 1) (w lsr 1) in
  go 0 w

let iter_set f w =
  let rec go i w =
    if w <> 0 then begin
      if w land 1 = 1 then f i;
      go (i + 1) (w lsr 1)
    end
  in
  go 0 w

let fold_set f acc w =
  let rec go acc i w =
    if w = 0 then acc
    else
      let acc = if w land 1 = 1 then f acc i else acc in
      go acc (i + 1) (w lsr 1)
  in
  go acc 0 w

let ceil_log2 n =
  if n <= 0 then invalid_arg "Bits.ceil_log2: non-positive";
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let mask k =
  if k < 0 || k >= Sys.int_size then invalid_arg "Bits.mask: width out of range";
  (1 lsl k) - 1

let test w i = (w lsr i) land 1 = 1

test/main.mli:

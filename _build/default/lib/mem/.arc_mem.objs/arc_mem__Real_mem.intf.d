lib/mem/real_mem.mli: Atomic Mem_intf

lib/trace/audit.mli: Format History

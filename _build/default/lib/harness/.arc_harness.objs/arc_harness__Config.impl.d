lib/harness/config.ml: Arc_trace

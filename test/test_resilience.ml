(* The supervision layer (ISSUE 3): backoff, breaker, epoch fencing,
   lease supervision, degraded reader sessions — each over a manual
   clock, no scheduler — then the chaos soak end to end (simulated
   scheduler, injected faults) plus its unfenced negative control. *)

module Backoff = Arc_resilience.Backoff
module Breaker = Arc_resilience.Breaker
module Fenced = Arc_resilience.Fenced
module Soak = Arc_resilience.Soak
module Outcomes = Arc_obs.Obs.Outcomes

(* --- backoff --------------------------------------------------------- *)

let test_backoff_deterministic () =
  let draw () =
    let b = Backoff.create ~seed:42 () in
    List.init 10 (fun _ -> Backoff.next b)
  in
  Alcotest.(check (list int)) "same seed, same delays" (draw ()) (draw ())

let test_backoff_envelope () =
  let base = 4 and cap = 64 in
  let b = Backoff.create ~base ~cap ~seed:7 () in
  for n = 0 to 19 do
    let d = Backoff.next b in
    let ceiling = min cap (base * (1 lsl min n 20)) in
    if d < 1 || d > ceiling then
      Alcotest.failf "delay %d of attempt %d outside [1, %d]" d n ceiling
  done;
  Alcotest.(check int) "attempts counted" 20 (Backoff.attempts b)

let test_backoff_reset () =
  let b = Backoff.create ~base:2 ~cap:1024 ~seed:11 () in
  for _ = 1 to 8 do
    ignore (Backoff.next b)
  done;
  Backoff.reset b;
  Alcotest.(check int) "attempts back to 0" 0 (Backoff.attempts b);
  let d = Backoff.next b in
  Alcotest.(check bool)
    (Printf.sprintf "first delay after reset (%d) within base range" d)
    true
    (d >= 1 && d <= 2)

let test_backoff_validation () =
  Alcotest.check_raises "base < 1" (Invalid_argument "Backoff.create: base = 0")
    (fun () -> ignore (Backoff.create ~base:0 ~seed:1 ()));
  Alcotest.check_raises "cap < base"
    (Invalid_argument "Backoff.create: cap = 2 < base = 8") (fun () ->
      ignore (Backoff.create ~base:8 ~cap:2 ~seed:1 ()))

(* --- breaker --------------------------------------------------------- *)

let test_breaker_transitions () =
  let t = ref 0 in
  let b = Breaker.create ~failure_threshold:3 ~cooldown:10 ~now:(fun () -> !t) () in
  Alcotest.(check bool) "starts closed, allows" true (Breaker.allow b);
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check string) "two failures: still closed" "closed"
    (Breaker.state_name (Breaker.state b));
  Breaker.record_failure b;
  Alcotest.(check string) "third failure trips" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "open blocks" false (Breaker.allow b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  t := 11;
  Alcotest.(check string) "cooldown elapsed: half-open" "half-open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "half-open admits the probe" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check string) "probe failure re-opens" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  t := 22;
  Alcotest.(check bool) "second probe admitted" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_name (Breaker.state b));
  (* The failure run restarts after a success: two more failures must
     not trip. *)
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check string) "run restarted" "closed"
    (Breaker.state_name (Breaker.state b))

let test_breaker_forced_trip () =
  let t = ref 0 in
  let b = Breaker.create ~cooldown:5 ~now:(fun () -> !t) () in
  Breaker.trip b;
  Alcotest.(check bool) "tripped open" false (Breaker.allow b);
  t := 6;
  Alcotest.(check bool) "recovers via half-open" true (Breaker.allow b)

(* --- fenced writer handles ------------------------------------------- *)

module R = Arc_core.Arc.Make (Arc_mem.Real_mem)
module F = Fenced.Make (R)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

let read_seq rd =
  R.read_with rd ~f:(fun buffer len ->
      match P.validate buffer ~len with
      | Ok seq -> seq
      | Error msg -> Alcotest.fail msg)

let test_fenced_write_and_revoke () =
  let words = 4 in
  let freg = F.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let rd = F.reader freg 0 in
  let w1 = F.issue freg in
  Alcotest.(check bool) "w1 current" true (F.current w1);
  F.write w1 ~src:(stamped ~seq:1 ~len:words) ~len:words;
  Alcotest.(check int) "w1's write lands" 1 (read_seq rd);
  let w2 = F.issue freg in
  Alcotest.(check bool) "w1 fenced by issue" false (F.current w1);
  Alcotest.(check bool) "w2 current" true (F.current w2);
  (match F.write w1 ~src:(stamped ~seq:99 ~len:words) ~len:words with
  | () -> Alcotest.fail "fenced write must not publish"
  | exception Fenced.Fenced_out { writer_epoch; current_epoch } ->
    Alcotest.(check int) "writer epoch" 1 writer_epoch;
    Alcotest.(check int) "current epoch" 2 current_epoch);
  Alcotest.(check int) "fenced write counted" 1 (F.fenced_writes freg);
  Alcotest.(check int) "old value still served" 1 (read_seq rd);
  F.write w2 ~src:(stamped ~seq:2 ~len:words) ~len:words;
  Alcotest.(check int) "successor writes flow" 2 (read_seq rd)

let test_guard_abort_publishes_nothing () =
  (* The primitive Fenced relies on: a guard raising between the
     content copy and the publish exchange aborts with nothing
     published and no slot leaked. *)
  let words = 4 in
  let reg = R.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let rd = R.reader reg 0 in
  (try
     R.write_guarded reg
       ~src:(stamped ~seq:1 ~len:words)
       ~len:words
       ~guard:(fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check int) "nothing published" 0 (read_seq rd);
  (* No slot leaked: a long run of further writes still finds slots. *)
  for seq = 1 to 20 do
    R.write reg ~src:(stamped ~seq ~len:words) ~len:words
  done;
  Alcotest.(check int) "register healthy after abort" 20 (read_seq rd)

let test_recover_crash_clean_journal () =
  (* Taking over from a writer that died BETWEEN writes (or was merely
     deposed): the journal is clean, nothing is quarantined, and the
     register keeps full slot capacity. *)
  let words = 4 in
  let reg = R.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let rd = R.reader reg 0 in
  for seq = 1 to 5 do
    R.write reg ~src:(stamped ~seq ~len:words) ~len:words
  done;
  Alcotest.(check int) "clean journal: nothing quarantined" 0
    (R.recover_crash reg);
  Alcotest.(check int) "idempotent" 0 (R.recover_crash reg);
  for seq = 6 to 25 do
    R.write reg ~src:(stamped ~seq ~len:words) ~len:words
  done;
  Alcotest.(check int) "register unaffected" 25 (read_seq rd)

(* --- supervisor ------------------------------------------------------ *)

module Sup = Arc_resilience.Supervisor.Make (R)

let test_supervisor_lease_and_promotion () =
  let words = 4 in
  let t = ref 0 in
  let freg =
    Sup.Fenced_reg.create ~readers:1 ~capacity:words
      ~init:(stamped ~seq:0 ~len:words)
  in
  let sup = Sup.create ~now:(fun () -> !t) ~lease:10 freg in
  let w1 = Sup.acquire sup in
  Alcotest.(check bool) "fresh lease not expired" false (Sup.expired sup);
  t := 8;
  Sup.heartbeat sup w1;
  t := 15;
  Alcotest.(check bool) "heartbeat re-armed the lease" false (Sup.expired sup);
  t := 19;
  Alcotest.(check bool) "silent past the lease" true (Sup.expired sup);
  let w2 =
    match Sup.promote sup with
    | Sup.Election.Won { writer; term; _ } ->
      (* acquire opened term 1; the succession is term 2. *)
      Alcotest.(check int) "succession term" 2 term;
      writer
    | Sup.Election.Lost _ -> Alcotest.fail "uncontested promotion must win"
  in
  Alcotest.(check int) "failover counted" 1 (Sup.failovers sup);
  Alcotest.(check (option int)) "fence time recorded" (Some 19)
    (Sup.last_fence sup);
  Alcotest.(check bool) "promotion re-armed the lease" false (Sup.expired sup);
  (* The deposed incumbent is fenced... *)
  (match Sup.Fenced_reg.write w1 ~src:(stamped ~seq:7 ~len:words) ~len:words with
  | () -> Alcotest.fail "zombie write must be fenced"
  | exception Fenced.Fenced_out _ -> ());
  (* ...and its heartbeats no longer re-arm the lease it lost. *)
  t := 35;
  Sup.heartbeat sup w1;
  Alcotest.(check bool) "zombie heartbeat ignored" true (Sup.expired sup);
  Sup.heartbeat sup w2;
  Alcotest.(check bool) "successor heartbeat counts" false (Sup.expired sup)

(* --- term-voted election (ISSUE 7) ----------------------------------- *)

module E = Arc_resilience.Election.Make (R)
module TV = Arc_util.Term_vote

let election_env ~words =
  let freg = F.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let word = Arc_mem.Real_mem.atomic_contended TV.none in
  (freg, word)

let test_election_exactly_one_winner () =
  (* Two candidates race from a COMMON snapshot of the word: CAS
     atomicity admits exactly one into the next term. *)
  let freg, word = election_env ~words:4 in
  let el0 = E.create ~word ~candidate:0 freg in
  let el1 = E.create ~word ~candidate:1 freg in
  let snap = E.observe el0 in
  let r0 = E.request_vote ~from:snap el0 in
  let r1 = E.request_vote ~from:snap el1 in
  (match (r0, r1) with
  | Some 1, None -> Alcotest.(check (option int)) "leader" (Some 0) (E.leader el1)
  | None, Some 1 -> Alcotest.(check (option int)) "leader" (Some 1) (E.leader el0)
  | _ -> Alcotest.fail "exactly one candidate must win the term");
  Alcotest.(check int) "term advanced once" 1 (E.term el0)

let test_campaign_orders_fence_before_takeover () =
  (* Fence-after-vote: by the time the winner's takeover runs, every
     pre-election handle is already fenced — and the winner holds no
     handle yet, so nothing can publish during the inspection. *)
  let freg, word = election_env ~words:4 in
  let w_old = F.issue freg in
  let el = E.create ~word ~candidate:3 freg in
  let fenced_during_takeover = ref false in
  let outcome =
    E.campaign el ~takeover:(fun () ->
        fenced_during_takeover := not (F.current w_old);
        (match F.write w_old ~src:(stamped ~seq:9 ~len:4) ~len:4 with
        | () -> Alcotest.fail "old handle must be fenced inside takeover"
        | exception Fenced.Fenced_out _ -> ());
        7)
  in
  Alcotest.(check bool) "prefence precedes takeover" true !fenced_during_takeover;
  match outcome with
  | E.Won { writer; term; recovered } ->
    Alcotest.(check int) "term" 1 term;
    Alcotest.(check int) "takeover result surfaced" 7 recovered;
    Alcotest.(check bool) "winner's handle is current" true (F.current writer);
    F.write writer ~src:(stamped ~seq:1 ~len:4) ~len:4;
    Alcotest.(check int) "winner writes flow" 1 (read_seq (F.reader freg 0))
  | E.Lost _ -> Alcotest.fail "uncontested campaign must win"

let test_campaign_loser_reports_winner () =
  let freg, word = election_env ~words:4 in
  let el0 = E.create ~word ~candidate:0 freg in
  let el1 = E.create ~word ~candidate:1 freg in
  let snap = E.observe el0 in
  (match E.campaign ~from:snap el0 with
  | E.Won { term = 1; _ } -> ()
  | _ -> Alcotest.fail "first campaign must win term 1");
  match E.campaign ~from:snap el1 with
  | E.Won _ -> Alcotest.fail "stale-snapshot campaign must lose"
  | E.Lost { term; winner } ->
    Alcotest.(check int) "observed term" 1 term;
    Alcotest.(check (option int)) "observed winner" (Some 0) winner

(* {2 Reign-fenced campaigns (ISSUE 9)} *)

module RG = Arc_resilience.Reign.Make (R)

let reign_env ~words =
  let freg, word = election_env ~words in
  let config = Arc_mem.Real_mem.atomic_contended 1 in
  (freg, word, config)

let test_reign_bump_after_takeover () =
  (* The certification argument hinges on ordering: the config epoch
     must still be at its pre-handoff value while the takeover runs
     (no publish of the new reign precedes the bump), and the Won
     outcome must carry the bump's OWN return value. *)
  let freg, word, config = reign_env ~words:4 in
  let el = RG.create ~word ~candidate:0 ~config freg in
  let config_during_takeover = ref 0 in
  (match
     RG.campaign el ~takeover:(fun () ->
         config_during_takeover := RG.config_at el;
         5)
   with
  | RG.Won { term; recovered; config = c; writer } ->
    Alcotest.(check int) "term" 1 term;
    Alcotest.(check int) "takeover result surfaced" 5 recovered;
    Alcotest.(check int) "Won carries this handoff's epoch" 2 c;
    F.write writer ~src:(stamped ~seq:1 ~len:4) ~len:4
  | RG.Lost _ -> Alcotest.fail "uncontested reign campaign must win");
  Alcotest.(check int) "takeover ran under the old epoch" 1
    !config_during_takeover;
  Alcotest.(check int) "epoch bumped exactly once" 2 (RG.config_at el)

let test_reign_second_handoff () =
  (* Successive handoffs on the same seat: term and epoch advance in
     lockstep, each winner keyed to its own bump. *)
  let freg, word, config = reign_env ~words:4 in
  let el0 = RG.create ~word ~candidate:0 ~config freg in
  let el1 = RG.create ~word ~candidate:1 ~config freg in
  (match RG.campaign el0 with
  | RG.Won { term = 1; config = 2; _ } -> ()
  | _ -> Alcotest.fail "first handoff must win term 1 at epoch 2");
  match RG.campaign el1 with
  | RG.Won { term; config = c; _ } ->
    Alcotest.(check int) "second term" 2 term;
    Alcotest.(check int) "second handoff's epoch" 3 c;
    Alcotest.(check int) "config word agrees" 3 (RG.config_at el1)
  | RG.Lost _ -> Alcotest.fail "fresh-snapshot campaign must win"

let test_reign_loser_no_bump () =
  (* A lost election completes no handoff: the config word must not
     move — a loser's bump would convict innocent snapshots. *)
  let freg, word, config = reign_env ~words:4 in
  let el0 = RG.create ~word ~candidate:0 ~config freg in
  let el1 = RG.create ~word ~candidate:1 ~config freg in
  let snap = RG.observe el0 in
  (match RG.campaign ~from:snap el0 with
  | RG.Won _ -> ()
  | RG.Lost _ -> Alcotest.fail "first campaign must win");
  match RG.campaign ~from:snap el1 with
  | RG.Won _ -> Alcotest.fail "stale-snapshot campaign must lose"
  | RG.Lost { term; winner } ->
    Alcotest.(check int) "observed term" 1 term;
    Alcotest.(check (option int)) "observed winner" (Some 0) winner;
    Alcotest.(check int) "loser left the epoch alone" 2 (RG.config_at el1)

(* Satellite: under the virtual scheduler, a heartbeat carried by a
   stale-epoch handle can NEVER re-arm a lease that was lost — after a
   promotion, only the successor's handle refreshes the word, so a
   zombie hammering [heartbeat] still leaves the lease expired. *)
module Rs = Arc_core.Arc.Make (Arc_vsched.Sim_mem)
module Sups = Arc_resilience.Supervisor.Make (Rs)
module Ps = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let test_vsched_stale_heartbeat_never_rearms () =
  let words = 4 in
  let lease = 20 in
  let init = Array.make words 0 in
  Ps.stamp init ~seq:0 ~len:words;
  let freg = Sups.Fenced_reg.create ~readers:1 ~capacity:words ~init in
  let sup = Sups.create ~now:Sched.now ~lease freg in
  let promoted = ref false in
  let zombie_beats = ref 0 in
  let rearmed = ref false in
  let zombie_fenced = ref false in
  let still_expired = ref false in
  let leader () =
    let w1 = Sups.acquire sup in
    Sups.heartbeat sup w1;
    (* Stall far past the lease: the classic paused-leader zombie. *)
    Sched.sleep 200;
    (* Wake up deposed and hammer the lease; none of these beats may
       re-arm it (the successor is deliberately silent). *)
    for _ = 1 to 5 do
      Sups.heartbeat sup w1;
      incr zombie_beats;
      if not (Sups.expired sup) then rearmed := true;
      Sched.sleep 10
    done;
    let src = Array.make words 0 in
    Ps.stamp src ~seq:99 ~len:words;
    (match Sups.Fenced_reg.write w1 ~src ~len:words with
    | () -> ()
    | exception Fenced.Fenced_out _ -> zombie_fenced := true);
    (* Judged in-fiber: the virtual clock only exists during the run. *)
    still_expired := Sups.expired sup
  in
  let standby () =
    let rec monitor () =
      if !promoted then ()
      else if Sups.expired sup then
        match Sups.promote sup with
        | Sups.Election.Won _ ->
          (* Promote, then fall silent: any later lease refresh could
             only come from the zombie. *)
          promoted := true
        | Sups.Election.Lost _ -> Alcotest.fail "uncontested promotion lost"
      else begin
        Sched.cede ();
        monitor ()
      end
    in
    monitor ()
  in
  ignore
    (Sched.run ~max_steps:100_000
       ~strategy:(Strategy.random ~seed:4242)
       [| leader; standby |]);
  Alcotest.(check bool) "standby promoted" true !promoted;
  Alcotest.(check bool) "zombie heartbeats attempted" true (!zombie_beats > 0);
  Alcotest.(check bool) "no zombie beat re-armed the lease" false !rearmed;
  Alcotest.(check bool) "zombie write fenced" true !zombie_fenced;
  Alcotest.(check bool) "lease still expired at the end" true !still_expired

(* --- sessions -------------------------------------------------------- *)

(* Saturation injector: [fail_next] upcoming live reads raise
   [Saturated], then reads flow again — the unit-test stand-in for the
   soak's probabilistic Flaky wrapper. *)
module Flaky = struct
  include R

  let fail_next = ref 0

  let read_with rd ~f =
    if !fail_next > 0 then begin
      decr fail_next;
      raise (Arc_core.Register_intf.Saturated "injected saturation")
    end
    else read_with rd ~f
end

module S = Arc_resilience.Session.Make (Flaky)

let session_env ?backoff ?breaker ?max_stale ~words () =
  Flaky.fail_next := 0;
  let t = ref 0 in
  let now () = !t in
  let sleep d = t := !t + d in
  let reg = R.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let s =
    S.create ?backoff ?breaker ?max_stale ~now ~sleep ~capacity:words
      (R.reader reg 0)
  in
  (t, reg, s)

let get_seq buffer len =
  match P.validate buffer ~len with
  | Ok seq -> seq
  | Error msg -> Alcotest.fail msg

let test_session_fresh () =
  let words = 4 in
  let _t, reg, s = session_env ~words () in
  R.write reg ~src:(stamped ~seq:1 ~len:words) ~len:words;
  (match S.read_with s ~f:get_seq with
  | S.Fresh 1 -> ()
  | _ -> Alcotest.fail "expected Fresh 1");
  Alcotest.(check int) "ok counted" 1 (Outcomes.ok_count (S.outcomes s))

let test_session_retry_then_fresh () =
  let words = 4 in
  let t, reg, s = session_env ~words () in
  R.write reg ~src:(stamped ~seq:1 ~len:words) ~len:words;
  Flaky.fail_next := 2;
  (match S.read_with ~deadline:100_000 s ~f:get_seq with
  | S.Fresh 1 -> ()
  | _ -> Alcotest.fail "expected Fresh 1 after retries");
  Alcotest.(check int) "two errors absorbed" 2
    (Outcomes.error_count (S.outcomes s));
  Alcotest.(check int) "two retries taken" 2
    (Outcomes.retry_count (S.outcomes s));
  Alcotest.(check bool) "backoff slept" true (!t > 0)

let test_session_stale_within_bound () =
  let words = 4 in
  let t, reg, s = session_env ~max_stale:50 ~words () in
  R.write reg ~src:(stamped ~seq:3 ~len:words) ~len:words;
  (match S.read_with s ~f:get_seq with
  | S.Fresh 3 -> ()
  | _ -> Alcotest.fail "snapshot priming read");
  t := !t + 20;
  Flaky.fail_next := max_int;
  (* Deadline already in the past: the first failure degrades. *)
  (match S.read_with ~deadline:!t s ~f:get_seq with
  | S.Stale { value = 3; age } ->
    Alcotest.(check bool)
      (Printf.sprintf "age %d within bound" age)
      true
      (age >= 20 && age <= 50)
  | _ -> Alcotest.fail "expected Stale 3");
  Alcotest.(check int) "stale counted" 1 (Outcomes.stale_count (S.outcomes s));
  Alcotest.(check (option int)) "snapshot age exposed" (Some 20)
    (S.snapshot_age s)

let test_session_exhausted_without_snapshot () =
  let words = 4 in
  let _t, _reg, s = session_env ~words () in
  Flaky.fail_next := max_int;
  (match S.read_with ~deadline:0 s ~f:get_seq with
  | S.Exhausted { attempts; last_error } ->
    Alcotest.(check int) "one live attempt" 1 attempts;
    Alcotest.(check string) "typed error" "injected saturation" last_error
  | _ -> Alcotest.fail "expected Exhausted (no snapshot yet)");
  Alcotest.(check int) "exhausted counted" 1
    (Outcomes.exhausted_count (S.outcomes s))

let test_session_stale_bound_exceeded () =
  let words = 4 in
  let t, reg, s = session_env ~max_stale:10 ~words () in
  R.write reg ~src:(stamped ~seq:1 ~len:words) ~len:words;
  ignore (S.read_with s ~f:get_seq);
  t := !t + 11;
  Flaky.fail_next := max_int;
  (match S.read_with ~deadline:!t s ~f:get_seq with
  | S.Exhausted _ -> ()
  | S.Stale _ -> Alcotest.fail "snapshot past max_stale must not be served"
  | S.Backpressured _ -> Alcotest.fail "no admission guard installed"
  | S.Fresh _ -> Alcotest.fail "reads are failing")

let test_session_breaker_short_circuit_and_recovery () =
  let words = 4 in
  let t = ref 0 in
  let now () = !t in
  let breaker = Breaker.create ~failure_threshold:2 ~cooldown:100 ~now () in
  let _, reg, s =
    let reg = R.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
    Flaky.fail_next := 0;
    ( t,
      reg,
      S.create ~breaker ~max_stale:1_000_000 ~now
        ~sleep:(fun d -> t := !t + d)
        ~capacity:words (R.reader reg 0) )
  in
  R.write reg ~src:(stamped ~seq:1 ~len:words) ~len:words;
  ignore (S.read_with s ~f:get_seq);
  (* Two failures trip the breaker (deadline stops the retry loop
     after each). *)
  Flaky.fail_next := max_int;
  ignore (S.read_with ~deadline:!t s ~f:get_seq);
  ignore (S.read_with ~deadline:!t s ~f:get_seq);
  Alcotest.(check string) "breaker tripped" "open"
    (Breaker.state_name (Breaker.state breaker));
  (* Open breaker: served from snapshot without a live attempt. *)
  let errors_before = Outcomes.error_count (S.outcomes s) in
  (match S.read_with s ~f:get_seq with
  | S.Stale { value = 1; _ } -> ()
  | _ -> Alcotest.fail "open breaker must serve the snapshot");
  Alcotest.(check int) "no live attempt through open breaker" errors_before
    (Outcomes.error_count (S.outcomes s));
  (* Cooldown elapses, register recovers: half-open probe succeeds and
     closes the breaker. *)
  t := !t + 101;
  Flaky.fail_next := 0;
  R.write reg ~src:(stamped ~seq:2 ~len:words) ~len:words;
  (match S.read_with s ~f:get_seq with
  | S.Fresh 2 -> ()
  | _ -> Alcotest.fail "half-open probe must go live");
  Alcotest.(check string) "breaker closed again" "closed"
    (Breaker.state_name (Breaker.state breaker))

(* --- chaos soak (end to end, simulated) ------------------------------ *)

let test_soak_clean_and_non_vacuous () =
  let cfg = { Soak.default with Soak.runs = 12 } in
  let o = Soak.run cfg in
  if not (Soak.clean o) then
    List.iter
      (fun (seed, msg) -> Printf.printf "seed %d: %s\n%!" seed msg)
      o.Soak.violations;
  Alcotest.(check bool) "soak clean" true (Soak.clean o);
  Alcotest.(check int) "all runs executed" 12 o.Soak.runs;
  Alcotest.(check bool) "writes happened" true (o.Soak.writes > 0);
  Alcotest.(check bool) "fresh reads happened" true (o.Soak.reads_fresh > 0);
  (* Non-vacuity: the machinery under test must actually fire. *)
  Alcotest.(check bool)
    (Printf.sprintf "failovers (%d) occurred" o.Soak.failovers)
    true (o.Soak.failovers > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fenced writes (%d) occurred" o.Soak.fenced_writes)
    true (o.Soak.fenced_writes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "degraded serves (%d stale, %d exhausted) occurred"
       o.Soak.stale_serves o.Soak.exhausted)
    true
    (o.Soak.stale_serves + o.Soak.exhausted > 0);
  Alcotest.(check bool)
    (Printf.sprintf "crash completions (%d vanished, %d took effect) judged"
       o.Soak.vanished o.Soak.took_effect)
    true
    (o.Soak.vanished + o.Soak.took_effect > 0)

let test_soak_crash_recovery_regression () =
  (* Regression: a writer crash between the W2 publish and the W3
     supersede-freeze leaves a slot whose subscribers are recorded
     nowhere; before [recover_crash] quarantine, the promoted standby
     recycled it under live readers and these seeds produced torn
     snapshots. *)
  List.iter
    (fun seed ->
      let r = Soak.run_one ~seed Soak.default in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d clean" seed)
        [] r.Soak.violations;
      Alcotest.(check int)
        (Printf.sprintf "seed %d untorn" seed)
        0 r.Soak.torn)
    [ 31337094032; 31337094071 ]

let test_soak_unfenced_control_convicted () =
  let cfg = Soak.default in
  let convicted, reasons =
    Soak.unfenced_control ~seed:(Soak.derive_seed cfg 0) cfg
  in
  Alcotest.(check bool)
    (Printf.sprintf "unfenced handoff convicted (%d reasons)"
       (List.length reasons))
    true convicted

let suite =
  [
    Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
    Alcotest.test_case "backoff envelope" `Quick test_backoff_envelope;
    Alcotest.test_case "backoff reset" `Quick test_backoff_reset;
    Alcotest.test_case "backoff validation" `Quick test_backoff_validation;
    Alcotest.test_case "breaker transitions" `Quick test_breaker_transitions;
    Alcotest.test_case "breaker forced trip" `Quick test_breaker_forced_trip;
    Alcotest.test_case "fenced write and revoke" `Quick test_fenced_write_and_revoke;
    Alcotest.test_case "guard abort publishes nothing" `Quick
      test_guard_abort_publishes_nothing;
    Alcotest.test_case "recover_crash clean journal" `Quick
      test_recover_crash_clean_journal;
    Alcotest.test_case "supervisor lease and promotion" `Quick
      test_supervisor_lease_and_promotion;
    Alcotest.test_case "election exactly one winner" `Quick
      test_election_exactly_one_winner;
    Alcotest.test_case "campaign fences before takeover" `Quick
      test_campaign_orders_fence_before_takeover;
    Alcotest.test_case "campaign loser reports winner" `Quick
      test_campaign_loser_reports_winner;
    Alcotest.test_case "reign: bump after takeover, before issue" `Quick
      test_reign_bump_after_takeover;
    Alcotest.test_case "reign: successive handoffs" `Quick
      test_reign_second_handoff;
    Alcotest.test_case "reign: loser bumps nothing" `Quick
      test_reign_loser_no_bump;
    Alcotest.test_case "vsched: stale heartbeat never re-arms" `Quick
      test_vsched_stale_heartbeat_never_rearms;
    Alcotest.test_case "session fresh" `Quick test_session_fresh;
    Alcotest.test_case "session retry then fresh" `Quick
      test_session_retry_then_fresh;
    Alcotest.test_case "session stale within bound" `Quick
      test_session_stale_within_bound;
    Alcotest.test_case "session exhausted without snapshot" `Quick
      test_session_exhausted_without_snapshot;
    Alcotest.test_case "session stale bound exceeded" `Quick
      test_session_stale_bound_exceeded;
    Alcotest.test_case "session breaker short-circuit and recovery" `Quick
      test_session_breaker_short_circuit_and_recovery;
    Alcotest.test_case "chaos soak clean and non-vacuous" `Slow
      test_soak_clean_and_non_vacuous;
    Alcotest.test_case "soak crash-recovery regression seeds" `Quick
      test_soak_crash_recovery_regression;
    Alcotest.test_case "unfenced control convicted" `Quick
      test_soak_unfenced_control_convicted;
  ]

(** Scheduling strategies for the virtual scheduler.

    A strategy decides, at every scheduling point, which runnable
    fiber runs next.  Deterministic strategies (given their seed) make
    every simulated execution replayable from a printed seed, which is
    what lets the test suite explore thousands of distinct
    interleavings of the register algorithms and shrink failures.

    The adversarial strategies model the two hostile environments of
    the paper's evaluation: [steal] reproduces hypervisor CPU-steal
    (Fig. 2 — a fiber disappears for a while {e at any point},
    including inside a critical section), and [starve] is the
    unbounded-delay adversary of the wait-freedom definition (§2). *)

type t

type decision = Run of int | Postpone of int * int
(** [Run id] — run that fiber; [Postpone (id, until)] — treat [id] as
    stolen until step [until], and ask again. *)

val name : t -> string

val round_robin : unit -> t
(** Fair rotation over runnable fibers.

    All constructors return a {e fresh, stateful} strategy: use one
    strategy value per scheduler run. *)

val random : seed:int -> t
(** Uniform choice among runnable fibers; the classic random
    interleaving explorer. *)

val random_burst : seed:int -> max_burst:int -> t
(** Uniform fiber choice, but the chosen fiber keeps running for a
    random burst of scheduling points (up to [max_burst]) — models
    quantum-based preemption and reaches interleavings plain uniform
    choice rarely visits. *)

val steal : seed:int -> base:t -> probability:float -> min_pause:int -> max_pause:int -> t
(** Wrap [base]: at every decision, with [probability], the fiber that
    would have run is instead "stolen" (descheduled) for a pause drawn
    uniformly from [min_pause, max_pause] scheduling points —
    DESIGN.md §2's substitution for the paper's virtualized platform. *)

val steal_fibers :
  seed:int ->
  victims:int list ->
  base:t ->
  probability:float ->
  min_pause:int ->
  max_pause:int ->
  t
(** Like {!steal} but only the victim fibers can be stolen — isolates
    the effect of, e.g., the writer losing its vCPU while everything
    else keeps running (the Fig. 2 lock-holder-preemption mechanism). *)

val starve : victims:int list -> until_step:int -> base:t -> t
(** Never schedule the victim fibers before [until_step] as long as
    any other fiber is runnable — the adversary used to show that
    wait-free operations still complete while lock-based ones do
    not. *)

val pct : seed:int -> fibers:int -> depth:int -> expected_steps:int -> t
(** Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS
    2010): random distinct priorities, run the highest-priority
    runnable fiber, and at [depth - 1] random change points demote the
    running fiber below everyone.  Finds rare bugs of preemption depth
    [d] with probability ≥ 1/(n·k^(d-1)) — a sharper explorer than
    uniform random for ordering bugs.
    @raise Invalid_argument if [fibers < 1], [depth < 1] or
    [expected_steps < 1]. *)

val custom :
  name:string -> (step:int -> runnable:(unit -> int array * int) -> decision) -> t
(** Arbitrary strategy from a pick function — the escape hatch used by
    {!Replay} and by tests that need full control. *)

(** {2 Used by the scheduler} *)

val decide : t -> step:int -> runnable:(unit -> int array * int) -> decision
(** [decide t ~step ~runnable] picks among [ids.(0..count-1)] where
    [runnable ()] returns [(ids, count)].  The array must not be
    mutated by the strategy. *)

(* Deterministic PRNG used for replayable schedules and workloads. *)

module Splitmix = Arc_util.Splitmix

let test_determinism () =
  let a = Splitmix.of_int 123 and b = Splitmix.of_int 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next64 a) (Splitmix.next64 b)
  done

let test_seeds_differ () =
  let a = Splitmix.of_int 1 and b = Splitmix.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Splitmix.next64 a <> Splitmix.next64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_independent () =
  let a = Splitmix.of_int 7 in
  ignore (Splitmix.next64 a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copy continues identically" (Splitmix.next64 a)
    (Splitmix.next64 b);
  ignore (Splitmix.next64 a);
  (* advancing a does not advance b *)
  let a2 = Splitmix.next64 a and b2 = Splitmix.next64 b in
  Alcotest.(check bool) "streams now offset" true (a2 <> b2 || true)

let test_split_diverges () =
  let parent = Splitmix.of_int 99 in
  let child = Splitmix.split parent in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Splitmix.next64 parent = Splitmix.next64 child then incr same
  done;
  Alcotest.(check bool) "child stream is distinct" true (!same < 3)

let test_int_bounds () =
  let t = Splitmix.of_int 5 in
  for _ = 1 to 10_000 do
    let v = Splitmix.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Splitmix.int: non-positive bound") (fun () ->
      ignore (Splitmix.int t 0))

let test_int_covers_range () =
  let t = Splitmix.of_int 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Splitmix.int t 8) <- true
  done;
  Alcotest.(check bool) "all 8 values hit in 1000 draws" true
    (Array.for_all Fun.id seen)

let test_float_range () =
  let t = Splitmix.of_int 13 in
  for _ = 1 to 10_000 do
    let f = Splitmix.float t in
    if f < 0. || f >= 1. then Alcotest.failf "float out of [0,1): %f" f
  done

let test_bernoulli_extremes () =
  let t = Splitmix.of_int 17 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Splitmix.bernoulli t 0.);
    Alcotest.(check bool) "p=1 always" true (Splitmix.bernoulli t 1.)
  done

let test_bernoulli_rate () =
  let t = Splitmix.of_int 19 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Splitmix.bernoulli t 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f within 0.27..0.33" rate)
    true
    (rate > 0.27 && rate < 0.33)

let test_shuffle_is_permutation () =
  let t = Splitmix.of_int 23 in
  let arr = Array.init 100 Fun.id in
  Splitmix.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 100 Fun.id)

let prop_int_uniformish =
  QCheck.Test.make ~name:"int bound respected for arbitrary bounds" ~count:300
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let t = Splitmix.of_int seed in
      let v = Splitmix.int t bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
  ]

(** Power-of-two bucketed histogram for latency-style measurements:
    O(1) recording with no allocation on the hot path, wide dynamic
    range (1ns..seconds in 63 buckets), and percentile queries with
    bounded relative error — sufficient for the latency-tail
    comparisons (wait-free vs blocking) the experiments report. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record a non-negative sample; negative samples count into
    bucket 0. *)

val count : t -> int
val max_value : t -> int
(** Largest recorded sample (exact). *)

val percentile : t -> float -> int
(** [percentile t p]: estimate of the [p]-th percentile, linearly
    interpolated within the power-of-two bucket holding the
    [⌈p/100·n⌉]-th smallest sample (clamped to {!max_value}, so the
    top percentile of a single-maximum distribution is exact).  The
    estimate always lies in the same bucket as that order statistic —
    within a factor of two of it — whereas returning the raw bucket
    upper bound (the previous behaviour) overstated mid-bucket
    percentiles by up to 2x.
    @raise Invalid_argument on an empty histogram or [p] outside
    [0, 100]. *)

val merge_into : src:t -> dst:t -> unit
(** Add all of [src]'s counts into [dst] (per-thread histograms merged
    after a run). *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val pp : Format.formatter -> t -> unit

(* arc-soak: chaos soak for the supervised register service (ISSUE 3).

   Long randomized crash/stall/tear runs over the full resilience
   stack — epoch-fenced writer failover, deadline-aware reader
   sessions, circuit-breaker degradation — on the virtual scheduler,
   each run judged for torn snapshots, crash-aware atomicity (the
   promotion time as the fence), bounded staleness of degraded serves,
   liveness, and the ARC presence-ledger audit; plus the unfenced
   negative control that must be convicted.

     dune exec bin/soak.exe -- --runs 200
     dune exec bin/soak.exe -- --replay 2025002025042 --verbose

   Exit status 0 = clean (and the negative control convicted);
   1 = violations (each printed with the exact replay command);
   2 = the unfenced control went unconvicted (the fence is vacuous).

   A failing soak also writes the replay commands to --fail-log (if
   given) so CI can upload them as an artifact. *)

module Soak = Arc_resilience.Soak
module Outcomes = Arc_util.Stats.Outcomes
open Cmdliner

let cfg_of runs seed readers size steps lease deadline max_stale crash_readers =
  {
    Soak.runs;
    seed;
    readers;
    size_words = size;
    max_steps = steps;
    lease;
    deadline;
    max_stale;
    max_crash_readers = crash_readers;
  }

let print_report ~verbose (r : Soak.run_report) =
  if verbose || r.violations <> [] then begin
    Printf.printf
      "run [seed %d]: fate=%s flaky=%.2f writes=%d (standby %d) failovers=%d \
       fenced=%d reader-crashes=%d stalls=%d tears=%d serves-checked=%d %s— %s\n"
      r.seed r.fate r.flaky_rate r.writes r.standby_writes r.failovers
      r.fenced_writes r.reader_crashes r.stalls r.tears r.serves_checked
      (Format.asprintf "[%a] " Outcomes.pp r.outcomes)
      (if r.violations = [] then "ok"
       else String.concat "; " r.violations);
    if verbose && Arc_fault.Fault_plan.size r.plan > 0 then
      Format.printf "  plan:@,%a@." Arc_fault.Fault_plan.pp r.plan
  end

let run_replay seed cfg verbose =
  Printf.printf "replaying seed %d\n" seed;
  let r = Soak.run_one ~seed cfg in
  print_report ~verbose:true r;
  ignore verbose;
  if r.violations <> [] then exit 1

(* {1 Churn mode (ISSUE 8): --churn RATE} *)

let print_churn_report ~verbose (r : Soak.churn_report) =
  if verbose || r.cviolations <> [] then
    Printf.printf
      "churn [seed %d]: arrivals=%d admitted=%d backpressured=%d departed=%d \
       evicted=%d abandoned=%d lane-crashes=%d writes=%d high-water=%d \
       live-buffers-max=%d refused-serves=%d %s— %s\n"
      r.cseed r.arrivals r.cadmitted r.cbackpressured r.cdeparted r.cevicted
      r.abandoned r.lane_crashes r.cwrites r.chigh_water r.live_buffers_max
      r.refused_serves
      (Format.asprintf "[%a] " Outcomes.pp r.coutcomes)
      (if r.cviolations = [] then "ok" else String.concat "; " r.cviolations)

let run_churn_replay seed (ccfg : Soak.churn_cfg) =
  Printf.printf "replaying churn seed %d\n" seed;
  let join = Arc_util.Histogram.create () in
  let leave = Arc_util.Histogram.create () in
  let r = Soak.run_churn_one ~seed ~join ~leave ccfg in
  print_churn_report ~verbose:true r;
  if r.cviolations <> [] then exit 1

let run_churn_soak (ccfg : Soak.churn_cfg) verbose fail_log skip_control metrics
    =
  let failing = ref [] in
  let done_runs = ref 0
  and live_arrivals = ref 0
  and live_admitted = ref 0
  and live_bp = ref 0
  and live_bad = ref 0 in
  let last_tick = ref (Unix.gettimeofday ()) in
  let on_run (r : Soak.churn_report) =
    incr done_runs;
    live_arrivals := !live_arrivals + r.arrivals;
    live_admitted := !live_admitted + r.cadmitted;
    live_bp := !live_bp + r.cbackpressured;
    if r.cviolations <> [] then incr live_bad;
    let now = Unix.gettimeofday () in
    if (not verbose) && now -. !last_tick >= 1.0 then begin
      last_tick := now;
      Printf.printf
        "[churn] %d/%d runs, %d arrivals -> %d admitted / %d backpressured, \
         %d failing\n\
         %!"
        !done_runs ccfg.Soak.base.Soak.runs !live_arrivals !live_admitted
        !live_bp !live_bad
    end;
    print_churn_report ~verbose r
  in
  let o = Soak.run_churn ~on_run ccfg in
  Format.printf "%a@." Soak.pp_churn_outcome o;
  if metrics then print_string (Arc_obs.Obs.prometheus (Soak.churn_metrics o));
  List.iter
    (fun (seed, msg) ->
      Printf.printf "violation [seed %d]: %s\n  replay: %s\n" seed msg
        (Soak.churn_replay_command ~seed ccfg);
      failing := seed :: !failing)
    (List.rev o.Soak.churn_violations);
  (match fail_log with
  | Some path when !failing <> [] ->
    let oc = open_out path in
    List.iter
      (fun seed ->
        output_string oc (Soak.churn_replay_command ~seed ccfg);
        output_char oc '\n')
      (List.sort_uniq compare !failing);
    close_out oc;
    Printf.printf "replay commands written to %s\n" path
  | _ -> ());
  let control_ok =
    if skip_control then true
    else begin
      let convicted, reasons =
        Soak.churn_control ~seed:(Soak.derive_seed ccfg.Soak.base 0) ccfg
      in
      Printf.printf "gate-bypass control %s\n"
        (if convicted then
           Printf.sprintf "CONVICTED (expected): %s" (String.concat "; " reasons)
         else "UNCONVICTED — the admission gate is not load-bearing");
      convicted
    end
  in
  if not (Soak.churn_clean o) then exit 1;
  if not control_ok then exit 2

let run_soak (cfg : Soak.cfg) verbose fail_log skip_control metrics =
  let failing = ref [] in
  (* Live progress: a cumulative one-line summary at most once per
     wall-clock second, so long CI soaks show heartbeat without the
     per-run flood of --verbose. *)
  let done_runs = ref 0
  and live_writes = ref 0
  and live_fresh = ref 0
  and live_stale = ref 0
  and live_bad = ref 0 in
  let last_tick = ref (Unix.gettimeofday ()) in
  let live (r : Soak.run_report) =
    incr done_runs;
    live_writes := !live_writes + r.writes + r.standby_writes;
    live_fresh := !live_fresh + Outcomes.ok_count r.outcomes;
    live_stale := !live_stale + Outcomes.stale_count r.outcomes;
    if r.violations <> [] then incr live_bad;
    let now = Unix.gettimeofday () in
    if (not verbose) && now -. !last_tick >= 1.0 then begin
      last_tick := now;
      Printf.printf
        "[soak] %d/%d runs, %d writes, %d fresh / %d stale reads, %d failing\n%!"
        !done_runs cfg.Soak.runs !live_writes !live_fresh !live_stale !live_bad
    end
  in
  let on_run r =
    live r;
    print_report ~verbose r
  in
  let o = Soak.run ~on_run cfg in
  Format.printf "%a@." Soak.pp_outcome o;
  if metrics then
    print_string
      (Arc_obs.Obs.prometheus
         (Soak.metrics o
         @ Arc_resilience.Election.metrics ()
         @ Arc_fabric.Fabric.reign_metrics ()));
  List.iter
    (fun (seed, msg) ->
      Printf.printf "violation [seed %d]: %s\n  replay: %s\n" seed msg
        (Soak.replay_command ~seed cfg);
      failing := seed :: !failing)
    (List.rev o.Soak.violations);
  (match fail_log with
  | Some path when !failing <> [] ->
    let oc = open_out path in
    List.iter
      (fun seed ->
        output_string oc (Soak.replay_command ~seed cfg);
        output_char oc '\n')
      (List.sort_uniq compare !failing);
    close_out oc;
    Printf.printf "replay commands written to %s\n" path
  | _ -> ());
  let control_ok =
    if skip_control then true
    else begin
      let convicted, reasons =
        Soak.unfenced_control ~seed:(Soak.derive_seed cfg 0) cfg
      in
      Printf.printf "unfenced-control %s\n"
        (if convicted then
           Printf.sprintf "CONVICTED (expected): %s" (String.concat "; " reasons)
         else "UNCONVICTED — the epoch fence is not load-bearing");
      convicted
    end
  in
  if not (Soak.clean o) then exit 1;
  if not control_ok then exit 2

let run runs seed readers size steps lease deadline max_stale crash_readers
    churn gate lanes room crash_frac replay verbose fail_log skip_control
    metrics =
  let cfg =
    cfg_of runs seed readers size steps lease deadline max_stale crash_readers
  in
  match churn with
  | Some rate -> (
    let ccfg =
      {
        Soak.base = cfg;
        rate;
        gate_capacity = gate;
        lanes;
        waiting_room = room;
        crash_frac;
      }
    in
    match replay with
    | Some s -> run_churn_replay s ccfg
    | None -> run_churn_soak ccfg verbose fail_log skip_control metrics)
  | None -> (
    match replay with
    | Some s -> run_replay s cfg verbose
    | None -> run_soak cfg verbose fail_log skip_control metrics)

let cmd =
  let runs =
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc:"Soak runs.")
  in
  let seed =
    Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
  in
  let readers =
    Arg.(value & opt int 3 & info [ "readers" ] ~docv:"N" ~doc:"Reader sessions.")
  in
  let size =
    Arg.(value & opt int 16 & info [ "size" ] ~docv:"WORDS" ~doc:"Snapshot words.")
  in
  let steps =
    Arg.(
      value & opt int 30_000
      & info [ "steps" ] ~docv:"N" ~doc:"Simulated steps per run.")
  in
  let lease =
    Arg.(
      value & opt int 2_000
      & info [ "lease" ] ~docv:"STEPS" ~doc:"Writer lease (heartbeat timeout).")
  in
  let deadline =
    Arg.(
      value & opt int 1_500
      & info [ "deadline" ] ~docv:"STEPS" ~doc:"Per-read deadline.")
  in
  let max_stale =
    Arg.(
      value & opt int 6_000
      & info [ "max-stale" ] ~docv:"STEPS"
          ~doc:"Oldest snapshot a degraded read may serve.")
  in
  let crash_readers =
    Arg.(
      value & opt int 2
      & info [ "crash-readers" ] ~docv:"N" ~doc:"Max reader crashes per run.")
  in
  let churn =
    Arg.(
      value & opt (some float) None
      & info [ "churn" ] ~docv:"RATE"
          ~doc:
            "Run the reader-churn campaign instead of the failover soak: \
             short-lived readers arrive on each lane with probability RATE \
             per scheduling point, admitted through the gate, and depart or \
             abandon their ticket (lease sweep evicts).")
  in
  let gate =
    Arg.(
      value & opt int 4
      & info [ "gate" ] ~docv:"N"
          ~doc:"Admission-gate capacity (reader identities leased out).")
  in
  let lanes =
    Arg.(
      value & opt int 6
      & info [ "lanes" ] ~docv:"N" ~doc:"Concurrent churner lanes.")
  in
  let room =
    Arg.(
      value & opt int 2
      & info [ "room" ] ~docv:"N"
          ~doc:"Bounded waiting-room size for refused arrivals.")
  in
  let crash_frac =
    Arg.(
      value & opt float 0.3
      & info [ "crash-frac" ] ~docv:"F"
          ~doc:
            "Fraction of tenancies that abandon their ticket without \
             departing (kill -9 model).")
  in
  let replay =
    Arg.(
      value & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Replay one run seed (as printed by a failing soak) and exit.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run lines.") in
  let fail_log =
    Arg.(
      value & opt (some string) None
      & info [ "fail-log" ] ~docv:"PATH"
          ~doc:"Write failing-seed replay commands to this file (CI artifact).")
  in
  let skip_control =
    Arg.(
      value & flag
      & info [ "skip-control" ] ~doc:"Skip the unfenced negative control.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After the soak, print the aggregated campaign counters (runs, \
             writes, degraded serves, crashes, fence rejections, tears) as a \
             Prometheus-style text dump.")
  in
  Cmd.v
    (Cmd.info "arc-soak"
       ~doc:
         "Chaos-soak the supervised register service: randomized writer \
          crashes, zombies, stalls and reader faults over epoch-fenced \
          failover, deadline reads and breaker degradation, with crash-aware \
          atomicity and bounded-staleness checking.")
    Term.(
      const run $ runs $ seed $ readers $ size $ steps $ lease $ deadline
      $ max_stale $ crash_readers $ churn $ gate $ lanes $ room $ crash_frac
      $ replay $ verbose $ fail_log $ skip_control $ metrics)

let () = exit (Cmd.eval cmd)

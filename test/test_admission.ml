(* Reader admission & churn (ISSUE 8): the leased identity pool, the
   gate over a real register (persistent handles vs the presence
   ledger), the lease-boundary races — depart-then-reclaim,
   reclaim-then-late-release, crash-without-depart — the Session
   integration ([Backpressured] as a typed terminal verdict), the
   all-or-rollback shard gate, a QCheck accounting model, and seeded
   vsched churn races over [Arc_dynamic] with storage reclaim live. *)

module Admission = Arc_resilience.Admission
module Pool = Admission.Pool
module RI = Arc_core.Register_intf
module Obs = Arc_obs.Obs
module Splitmix = Arc_util.Splitmix

(* --- the pool alone (manual clock) ----------------------------------- *)

let ticket p ~now =
  match Pool.admit p ~now with
  | RI.Admitted tk -> tk
  | RI.Backpressured _ -> Alcotest.fail "expected admission"

let counts p =
  let ev = Pool.events p in
  ( Obs.Admission.admitted_count ev,
    Obs.Admission.backpressured_count ev,
    Obs.Admission.departed_count ev,
    Obs.Admission.evicted_count ev )

let test_pool_validation () =
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Admission.Pool.create: capacity = 0") (fun () ->
      ignore (Pool.create ~capacity:0 ()))

let test_pool_admit_to_capacity () =
  let p = Pool.create ~capacity:3 () in
  let tks = List.init 3 (fun _ -> ticket p ~now:0) in
  let slots = List.sort_uniq compare (List.map (fun tk -> tk.Pool.slot) tks) in
  Alcotest.(check int) "three distinct identities" 3 (List.length slots);
  (match Pool.admit p ~now:1 with
  | RI.Backpressured bp ->
    Alcotest.(check int) "live reported" 3 bp.RI.live;
    Alcotest.(check int) "high water reported" 3 bp.RI.high_water;
    Alcotest.(check bool)
      (Printf.sprintf "retry_after %d positive" bp.RI.retry_after)
      true (bp.RI.retry_after >= 1)
  | RI.Admitted _ -> Alcotest.fail "fourth admit must refuse");
  Alcotest.(check int) "live" 3 (Pool.live p);
  let a, b, d, e = counts p in
  Alcotest.(check (list int)) "event counts" [ 3; 1; 0; 0 ] [ a; b; d; e ]

let test_pool_depart_frees_and_double_depart () =
  let p = Pool.create ~capacity:2 () in
  let tk = ticket p ~now:0 in
  let _tk2 = ticket p ~now:0 in
  Alcotest.(check bool) "depart frees" true (Pool.depart p tk);
  Alcotest.(check int) "live drops" 1 (Pool.live p);
  Alcotest.(check bool) "double depart refused" false (Pool.depart p tk);
  Alcotest.(check int) "live unchanged by the double" 1 (Pool.live p);
  (* The freed identity is re-admittable, and the {e old} ticket still
     cannot free it out from under the new tenant. *)
  let tk' = ticket p ~now:1 in
  Alcotest.(check bool) "stale ticket inert" false (Pool.depart p tk);
  Alcotest.(check bool) "new tenant holds" true (Pool.holds p tk');
  let a, _, d, e = counts p in
  Alcotest.(check (list int)) "admitted/departed/evicted" [ 3; 1; 0 ] [ a; d; e ]

(* reclaim-then-late-release at the pool: the lease sweep revokes a
   silent holder, a successor takes the identity, then the zombie's
   depart arrives — and must fail its generation CAS. *)
let test_pool_evict_then_late_depart () =
  let p = Pool.create ~lease:10 ~capacity:1 () in
  let tk = ticket p ~now:0 in
  Alcotest.(check int) "fresh lease survives the sweep" 0 (Pool.sweep p ~now:5);
  Alcotest.(check int) "expired lease evicted" 1 (Pool.sweep p ~now:11);
  Alcotest.(check int) "live zeroed" 0 (Pool.live p);
  Alcotest.(check bool) "ticket revoked" false (Pool.holds p tk);
  let tk' = ticket p ~now:12 in
  Alcotest.(check bool) "zombie depart fails" false (Pool.depart p tk);
  Alcotest.(check bool) "successor undisturbed" true (Pool.holds p tk');
  Alcotest.(check int) "successor counted live" 1 (Pool.live p);
  let a, _, d, e = counts p in
  Alcotest.(check (list int)) "admitted/departed/evicted" [ 2; 0; 1 ] [ a; d; e ]

let test_pool_renew_extends_lease () =
  let p = Pool.create ~lease:10 ~capacity:1 () in
  let tk = ticket p ~now:0 in
  Alcotest.(check bool) "renew accepted" true (Pool.renew p tk ~now:8);
  Alcotest.(check int) "renewed lease survives" 0 (Pool.sweep p ~now:15);
  Alcotest.(check int) "but not forever" 1 (Pool.sweep p ~now:19);
  Alcotest.(check bool) "renew after evict refused" false (Pool.renew p tk ~now:20)

let test_pool_depart_then_sweep_no_double_free () =
  let p = Pool.create ~lease:10 ~capacity:2 () in
  let tk = ticket p ~now:0 in
  Alcotest.(check bool) "departed" true (Pool.depart p tk);
  Alcotest.(check int) "sweep finds nothing to evict" 0 (Pool.sweep p ~now:100);
  Alcotest.(check int) "live still 0" 0 (Pool.live p);
  let a, _, d, e = counts p in
  Alcotest.(check (list int)) "no phantom eviction" [ 1; 1; 0 ] [ a; d; e ]

(* A pool full of corpses is not a full pool: admission under pressure
   sweeps before refusing. *)
let test_pool_sweep_on_pressure () =
  let p = Pool.create ~lease:10 ~capacity:1 () in
  let _abandoned = ticket p ~now:0 in
  (match Pool.admit p ~now:20 with
  | RI.Admitted _ -> ()
  | RI.Backpressured _ -> Alcotest.fail "admit must reclaim the corpse");
  let a, b, d, e = counts p in
  Alcotest.(check (list int)) "evicted on the admit path" [ 2; 0; 0; 1 ]
    [ a; b; d; e ]

let test_pool_waiting_room () =
  let p = Pool.create ~capacity:1 () in
  Alcotest.(check bool) "room 0 rejects" false (Pool.enter_room p ~room:0);
  Alcotest.(check bool) "first waiter parks" true (Pool.enter_room p ~room:2);
  Alcotest.(check bool) "second waiter parks" true (Pool.enter_room p ~room:2);
  Alcotest.(check bool) "room full" false (Pool.enter_room p ~room:2);
  Alcotest.(check int) "occupancy" 2 (Pool.waiting p);
  Pool.leave_room p;
  Alcotest.(check bool) "freed seat reusable" true (Pool.enter_room p ~room:2);
  Pool.leave_room p;
  Pool.leave_room p;
  Alcotest.(check int) "room drained" 0 (Pool.waiting p)

let test_pool_high_water_is_peak () =
  let p = Pool.create ~capacity:4 () in
  let tk1 = ticket p ~now:0 in
  let tk2 = ticket p ~now:0 in
  Alcotest.(check int) "peak of two" 2 (Pool.high_water p);
  ignore (Pool.depart p tk1);
  ignore (Pool.depart p tk2);
  ignore (ticket p ~now:1);
  Alcotest.(check int) "peak survives the drain" 2 (Pool.high_water p);
  Alcotest.(check int) "live tells the present" 1 (Pool.live p)

(* --- the gate over a real Arc register ------------------------------- *)

module R = Arc_core.Arc.Make (Arc_mem.Real_mem)
module Gate = Admission.Make (R)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

let read_seq rd =
  R.read_with rd ~f:(fun buffer len ->
      match P.validate buffer ~len with
      | Ok seq -> seq
      | Error msg -> Alcotest.fail msg)

let gate_env ?(room = 0) ?(lease = 0) ?on_release ~readers () =
  let words = 4 in
  let t = ref 0 in
  let reg =
    R.create ~readers ~capacity:words ~init:(stamped ~seq:0 ~len:words)
  in
  let gate =
    Gate.create ~room ~lease ?on_release
      ~now:(fun () -> !t)
      ~sleep:(fun d -> t := !t + d)
      ~base:0 ~capacity:readers reg
  in
  (t, words, reg, gate)

(* Fifty tenancies through two identities: the presence ledger must
   see two immortal readers, not fifty — slack exactly 0 at the end.
   (Minting a handle per tenant corrupts it; the soak's gate-bypass
   control convicts that.) *)
let test_gate_handle_reuse_keeps_ledger_balanced () =
  let t, words, reg, gate = gate_env ~readers:2 () in
  for i = 1 to 50 do
    incr t;
    match Gate.admit gate with
    | RI.Backpressured _ -> Alcotest.fail "gate has free identities"
    | RI.Admitted tk ->
      R.write reg ~src:(stamped ~seq:i ~len:words) ~len:words;
      Alcotest.(check int) "fresh value through the leased handle" i
        (read_seq (Gate.reader gate tk));
      ignore (Gate.depart gate tk)
  done;
  Alcotest.(check int) "presence slack 0 after 50 tenancies" 0
    (R.Debug.presence_slack reg);
  Alcotest.(check int) "one identity at a time" 1 (Gate.high_water gate);
  let a, _, d, _ = counts (Gate.pool gate) in
  Alcotest.(check (list int)) "every tenancy closed" [ 50; 50 ] [ a; d ]

(* crash-without-depart: a kill-9'd tenant costs one identity for one
   lease; the sweep reclaims it, the next tenant reuses the {e same}
   handle, and the ledger never notices anyone died. *)
let test_gate_crash_without_depart () =
  let t, words, reg, gate = gate_env ~lease:10 ~readers:1 () in
  R.write reg ~src:(stamped ~seq:1 ~len:words) ~len:words;
  let victim =
    match Gate.admit gate with
    | RI.Admitted tk -> tk
    | RI.Backpressured _ -> Alcotest.fail "empty gate refused"
  in
  Alcotest.(check int) "victim reads" 1 (read_seq (Gate.reader gate victim));
  (* …kill -9: no depart, no renew… *)
  t := 15;
  Alcotest.(check int) "sweep reclaims the corpse" 1 (Gate.sweep gate);
  (match Gate.guard gate victim () with
  | Some bp -> Alcotest.(check bool) "pressure visible" true (bp.RI.retry_after >= 1)
  | None -> Alcotest.fail "revoked ticket must be refused by its guard");
  let heir =
    match Gate.admit gate with
    | RI.Admitted tk -> tk
    | RI.Backpressured _ -> Alcotest.fail "reclaimed identity not reusable"
  in
  Alcotest.(check (option Alcotest.reject)) "heir's guard admits" None
    (Gate.guard gate heir ());
  Alcotest.(check int) "same identity, same handle" 0 (Gate.identity gate heir);
  R.write reg ~src:(stamped ~seq:2 ~len:words) ~len:words;
  Alcotest.(check int) "heir reads through the reused handle" 2
    (read_seq (Gate.reader gate heir));
  Alcotest.(check bool) "victim's late depart inert" false
    (Gate.depart gate victim);
  Alcotest.(check int) "heir still live" 1 (Gate.live gate);
  Alcotest.(check int) "ledger balanced across the crash" 0
    (R.Debug.presence_slack reg)

let test_gate_admit_wait_departure () =
  let words = 4 in
  let t = ref 0 in
  let on_sleep = ref (fun () -> ()) in
  let reg = R.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let gate =
    Gate.create ~room:1
      ~now:(fun () -> !t)
      ~sleep:(fun d ->
        t := !t + d;
        !on_sleep ())
      ~base:0 ~capacity:1 reg
  in
  let holder =
    match Gate.admit gate with
    | RI.Admitted tk -> tk
    | RI.Backpressured _ -> Alcotest.fail "empty gate refused"
  in
  (* The holder departs while the arrival is parked in the waiting
     room: the retry must win the freed identity. *)
  on_sleep :=
    (fun () ->
      on_sleep := (fun () -> ());
      ignore (Gate.depart gate holder));
  (match Gate.admit_wait gate with
  | RI.Admitted tk -> Alcotest.(check int) "identity recycled" 0 (Gate.identity gate tk)
  | RI.Backpressured _ -> Alcotest.fail "departure freed the identity");
  Alcotest.(check int) "waiting room drained" 0 (Pool.waiting (Gate.pool gate));
  Alcotest.(check bool) "the wait slept" true (!t > 0)

let test_gate_admit_wait_deadline () =
  let _t, _words, _reg, gate = gate_env ~room:1 ~readers:1 () in
  let _holder = Gate.admit gate in
  (match Gate.admit_wait ~deadline:50 gate with
  | RI.Backpressured bp -> Alcotest.(check int) "still saturated" 1 bp.RI.live
  | RI.Admitted _ -> Alcotest.fail "nobody departed");
  Alcotest.(check int) "waiting room drained on expiry" 0
    (Pool.waiting (Gate.pool gate))

let test_gate_admit_wait_no_room () =
  let t, _words, _reg, gate = gate_env ~room:0 ~readers:1 () in
  let _holder = Gate.admit gate in
  (match Gate.admit_wait ~deadline:1000 gate with
  | RI.Backpressured _ -> ()
  | RI.Admitted _ -> Alcotest.fail "nobody departed");
  Alcotest.(check int) "room 0 never sleeps" 0 !t

let test_gate_on_release_fires () =
  let released = ref 0 in
  let t, _words, _reg, gate =
    gate_env ~lease:10 ~readers:2 ~on_release:(fun () -> incr released) ()
  in
  let tk =
    match Gate.admit gate with
    | RI.Admitted tk -> tk
    | RI.Backpressured _ -> Alcotest.fail "empty gate refused"
  in
  ignore (Gate.depart gate tk);
  Alcotest.(check int) "depart fires on_release" 1 !released;
  Alcotest.(check int) "idle sweep evicts nothing" 0 (Gate.sweep gate);
  Alcotest.(check int) "idle sweep stays silent" 1 !released;
  let _abandoned = Gate.admit gate in
  t := 20;
  Alcotest.(check int) "sweep evicts the corpse" 1 (Gate.sweep gate);
  Alcotest.(check int) "eviction fires on_release" 2 !released

(* depart-then-reclaim over [Arc_dynamic]: a departed tenant's handle
   keeps pinning its last slot (by design — the identity is immortal),
   the writer's storage reclaim revokes that slot's buffer, and the
   next tenant of the same identity must read clean through the very
   same handle. *)
module DR = Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem)
module DRGate = Admission.Make (DR)

(* [DR.Mem] is [Real_mem] too, so [P] validates its buffers as-is. *)
let read_seq_dr rd =
  DR.read_with rd ~f:(fun buffer len ->
      match P.validate buffer ~len with
      | Ok seq -> seq
      | Error msg -> Alcotest.fail msg)

let test_gate_depart_then_reclaim_storage () =
  let words = 4 in
  let t = ref 0 in
  let reg = DR.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let gate =
    DRGate.create
      ~now:(fun () -> !t)
      ~sleep:(fun d -> t := !t + d)
      ~base:0 ~capacity:1 reg
  in
  let tk =
    match DRGate.admit gate with
    | RI.Admitted tk -> tk
    | RI.Backpressured _ -> Alcotest.fail "empty gate refused"
  in
  DR.write reg ~src:(stamped ~seq:1 ~len:words) ~len:words;
  Alcotest.(check int) "tenant pins a slot by reading" 1
    (read_seq_dr (DRGate.reader gate tk));
  ignore (DRGate.depart gate tk);
  (* The handle still pins its slot; twenty writes supersede it, then
     the writer revokes its storage. *)
  for i = 2 to 21 do
    DR.write reg ~src:(stamped ~seq:i ~len:words) ~len:words
  done;
  Alcotest.(check bool) "reclaim revokes the pinned slot" true
    (DR.reclaim_stale reg ~lease:5 >= 1);
  Alcotest.(check bool) "live buffers within N + 2" true
    (DR.live_buffers reg <= 1 + 2);
  incr t;
  let tk' =
    match DRGate.admit gate with
    | RI.Admitted tk -> tk
    | RI.Backpressured _ -> Alcotest.fail "identity not freed by depart"
  in
  Alcotest.(check int) "next tenant reads clean post-reclaim" 21
    (read_seq_dr (DRGate.reader gate tk'));
  Alcotest.(check int) "ledger balanced" 0 (DR.Debug.presence_slack reg)

(* --- Session integration: refusal as a typed verdict ----------------- *)

module S = Arc_resilience.Session.Make (R)

let get_seq buffer len =
  match P.validate buffer ~len with
  | Ok seq -> seq
  | Error msg -> Alcotest.fail msg

let test_session_backpressured_then_stale () =
  let words = 4 in
  let t = ref 0 in
  let refuse = ref None in
  let reg = R.create ~readers:1 ~capacity:words ~init:(stamped ~seq:0 ~len:words) in
  let s =
    S.create
      ~admission:(fun () -> !refuse)
      ~max_stale:100
      ~now:(fun () -> !t)
      ~sleep:(fun d -> t := !t + d)
      ~capacity:words (R.reader reg 0)
  in
  let bp = { RI.retry_after = 7; live = 1; high_water = 1 } in
  (* No snapshot yet: the refusal is terminal and typed. *)
  refuse := Some bp;
  (match S.read_with s ~f:get_seq with
  | S.Backpressured b -> Alcotest.(check int) "verdict carried" 7 b.RI.retry_after
  | _ -> Alcotest.fail "expected Backpressured (no snapshot)");
  (* Admitted again: a fresh read primes the snapshot. *)
  refuse := None;
  R.write reg ~src:(stamped ~seq:5 ~len:words) ~len:words;
  (match S.read_with s ~f:get_seq with
  | S.Fresh 5 -> ()
  | _ -> Alcotest.fail "expected Fresh 5");
  (* Refused with an admissible snapshot: degrade to Stale, not
     Backpressured — the session serves what it has. *)
  refuse := Some bp;
  t := !t + 20;
  (match S.read_with s ~f:get_seq with
  | S.Stale { value = 5; age = 20 } -> ()
  | _ -> Alcotest.fail "expected Stale 5 aged 20");
  (* Snapshot past max_stale: back to the typed verdict. *)
  t := !t + 200;
  (match S.read_with s ~f:get_seq with
  | S.Backpressured _ -> ()
  | _ -> Alcotest.fail "inadmissible snapshot must not be served")

(* --- all-or-rollback across shard gates ------------------------------ *)

let test_shards_all_or_rollback () =
  let sh =
    Admission.Shards.create
      [| Pool.create ~capacity:2 (); Pool.create ~capacity:1 ();
         Pool.create ~capacity:2 () |]
  in
  let pools = Admission.Shards.pools sh in
  (* Choke the middle shard: the scanner must end up holding nothing. *)
  let blocker = ticket pools.(1) ~now:0 in
  (match Admission.Shards.admit_all sh ~now:1 with
  | RI.Backpressured _ -> ()
  | RI.Admitted _ -> Alcotest.fail "middle shard is saturated");
  Alcotest.(check (list int)) "partial admissions rolled back" [ 0; 1; 0 ]
    (Array.to_list (Array.map Pool.live pools));
  ignore (Pool.depart pools.(1) blocker);
  let tks =
    match Admission.Shards.admit_all sh ~now:2 with
    | RI.Admitted tks -> tks
    | RI.Backpressured _ -> Alcotest.fail "all shards free"
  in
  Alcotest.(check (list int)) "one identity per shard" [ 1; 1; 1 ]
    (Array.to_list (Array.map Pool.live pools));
  Alcotest.(check int) "depart_all frees all" 3
    (Admission.Shards.depart_all sh tks);
  Alcotest.(check (list int)) "fully drained" [ 0; 0; 0 ]
    (Array.to_list (Array.map Pool.live pools));
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Admission.Shards.depart_all: ticket count <> shard count")
    (fun () -> ignore (Admission.Shards.depart_all sh [| blocker |]))

(* --- QCheck: ticket accounting model --------------------------------- *)

(* Random admit/depart/sweep/clock-advance traffic against a capacity-4
   lease-15 pool; after every step: admitted − departed − evicted =
   live, 0 ≤ live ≤ capacity, high_water monotone and ≤ capacity. *)
let prop_ticket_accounting =
  QCheck.Test.make ~name:"admitted − departed − evicted = live" ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 20)))
    (fun ops ->
      let cap = 4 in
      let p = Pool.create ~lease:15 ~capacity:cap () in
      let now = ref 0 in
      let held = ref [] in
      let peak = ref 0 in
      let ok = ref true in
      let audit () =
        let a, _, d, e = counts p in
        let live = Pool.live p in
        if a - d - e <> live then ok := false;
        if live < 0 || live > cap then ok := false;
        let h = Pool.high_water p in
        if h < !peak || h > cap then ok := false;
        peak := h
      in
      List.iter
        (fun (kind, v) ->
          (match kind with
          | 0 -> (
            match Pool.admit p ~now:!now with
            | RI.Admitted tk -> held := tk :: !held
            | RI.Backpressured _ -> ())
          | 1 -> (
            match !held with
            | [] -> ()
            | l ->
              let i = v mod List.length l in
              let tk = List.nth l i in
              held := List.filteri (fun j _ -> j <> i) l;
              (* false just means the sweep evicted it first *)
              ignore (Pool.depart p tk))
          | 2 -> ignore (Pool.sweep p ~now:!now)
          | _ -> now := !now + v + 1);
          audit ())
        ops;
      !ok)

(* --- seeded vsched churn races over Arc_dynamic ---------------------- *)

module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module SM = Arc_vsched.Sim_mem
module D = Arc_core.Arc_dynamic.Make (SM)
module DGate = Admission.Make (D)

(* One seeded run: a writer with auto storage-reclaim, a janitor
   sweeping expired ticket leases, and five lanes churning through a
   three-identity gate — renewing while they read, abandoning
   (kill-without-depart) a third of the time.  The gate must keep
   every [Saturated] from escaping, keep the ticket accounts exact,
   and leave the presence ledger balanced. *)
let churn_race ~seed =
  let words = 4 in
  let cap = 3 in
  let lease = 400 in
  let lanes = 5 in
  let reg = D.create ~readers:cap ~capacity:words ~init:(Array.make words 0) in
  D.set_lease reg (Some 8);
  let gate =
    DGate.create ~lease ~now:Sched.now ~sleep:Sched.sleep ~base:0 ~capacity:cap
      reg
  in
  let lanes_done = ref 0 in
  let escaped = ref 0 in
  let torn = ref 0 in
  let writer () =
    for s = 1 to 150 do
      D.write reg ~src:(Array.make words s) ~len:words;
      Sched.cede ()
    done
  in
  let janitor () =
    while !lanes_done < lanes do
      ignore (DGate.sweep gate);
      Sched.sleep (lease / 2)
    done
  in
  let lane k () =
    let rng = Splitmix.of_int ((seed * 31) + k) in
    (try
       for _arrival = 1 to 12 do
         match DGate.admit gate with
         | RI.Backpressured bp -> Sched.sleep bp.RI.retry_after
         | RI.Admitted tk ->
           let rd = DGate.reader gate tk in
           (try
              for _r = 1 to 1 + Splitmix.int rng 4 do
                match DGate.guard gate tk () with
                | Some _ -> raise Exit (* evicted underfoot: stop reading *)
                | None ->
                  ignore (DGate.renew gate tk);
                  D.read_with rd ~f:(fun buf len ->
                      let v0 = SM.read_word buf 0 in
                      for i = 1 to len - 1 do
                        if SM.read_word buf i <> v0 then incr torn
                      done);
                  Sched.sleep (1 + Splitmix.int rng 20)
              done
            with Exit -> ());
           (* kill-without-depart one tenancy in three *)
           if Splitmix.int rng 3 > 0 then ignore (DGate.depart gate tk)
       done
     with RI.Saturated _ -> incr escaped);
    incr lanes_done
  in
  let fibers =
    Array.append [| writer; janitor |] (Array.init lanes (fun k -> lane k))
  in
  let outcome =
    Sched.run ~max_steps:2_000_000 ~strategy:(Strategy.random ~seed) fibers
  in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: all fibers finished" seed)
    0 outcome.Sched.unfinished;
  Alcotest.(check int) (Printf.sprintf "seed %d: Saturated escapes" seed) 0 !escaped;
  Alcotest.(check int) (Printf.sprintf "seed %d: torn reads" seed) 0 !torn;
  let a, _, d, e = counts (DGate.pool gate) in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: accounts (%d − %d − %d)" seed a d e)
    (DGate.live gate) (a - d - e);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: high water %d ≤ capacity" seed
       (DGate.high_water gate))
    true
    (DGate.high_water gate <= cap);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: live buffers %d ≤ N + 2" seed (D.live_buffers reg))
    true
    (D.live_buffers reg <= cap + 2);
  Alcotest.(check int)
    (Printf.sprintf "seed %d: presence slack" seed)
    0
    (D.Debug.presence_slack reg);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: a free slot remains" seed)
    true
    (D.Debug.free_slot_exists reg)

let test_churn_races () =
  for seed = 0 to 7 do
    churn_race ~seed
  done

(* --- registry -------------------------------------------------------- *)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "pool: create validation" test_pool_validation;
    t "pool: admit to capacity, then backpressure" test_pool_admit_to_capacity;
    t "pool: depart frees, double depart inert" test_pool_depart_frees_and_double_depart;
    t "pool: evict then late depart (reclaim-then-late-release)"
      test_pool_evict_then_late_depart;
    t "pool: renew extends the lease" test_pool_renew_extends_lease;
    t "pool: depart then sweep, no double free"
      test_pool_depart_then_sweep_no_double_free;
    t "pool: admission pressure sweeps corpses" test_pool_sweep_on_pressure;
    t "pool: bounded waiting room" test_pool_waiting_room;
    t "pool: high water is the peak" test_pool_high_water_is_peak;
    t "gate: handle reuse keeps the ledger balanced"
      test_gate_handle_reuse_keeps_ledger_balanced;
    t "gate: crash without depart survivable" test_gate_crash_without_depart;
    t "gate: admit_wait wins a freed identity" test_gate_admit_wait_departure;
    t "gate: admit_wait respects the deadline" test_gate_admit_wait_deadline;
    t "gate: admit_wait without a room never sleeps" test_gate_admit_wait_no_room;
    t "gate: on_release fires on depart and evict" test_gate_on_release_fires;
    t "gate: depart then storage reclaim (Arc_dynamic)"
      test_gate_depart_then_reclaim_storage;
    t "session: Backpressured verdict, Stale degradation"
      test_session_backpressured_then_stale;
    t "shards: all-or-rollback admission" test_shards_all_or_rollback;
    QCheck_alcotest.to_alcotest prop_ticket_accounting;
    Alcotest.test_case "vsched: seeded churn races over Arc_dynamic" `Slow
      test_churn_races;
  ]

(** All algorithm × memory-instance combinations, pre-instantiated and
    exposed behind one uniform record, so experiment drivers and the
    CLI can iterate over algorithms as data. *)

type entry = {
  name : string;
  wait_free : bool;
  max_readers : capacity_words:int -> int option;
  run_real : Config.real -> Config.result;
      (** on {!Arc_mem.Real_mem} via {!Real_runner} *)
  run_sim : ?strategy:Arc_vsched.Strategy.t -> Config.sim -> Config.result;
      (** on {!Arc_vsched.Sim_mem} via {!Sim_runner} *)
  count :
    readers:int ->
    size_words:int ->
    rounds:int ->
    reads_per_write:int ->
    Count_runner.per_op;
      (** on a counting instance via {!Count_runner} *)
}

val all : entry list
(** arc, arc-nohint, arc-dynamic, rf, peterson, rwlock, seqlock,
    lamport77, simpson. *)

val paper_set : entry list
(** The four algorithms of the paper's figures: arc, rf, peterson,
    rwlock. *)

val find : string -> entry
(** @raise Not_found for unknown names. *)

val names : string list

(** E4: RMW instructions and plain atomic loads per operation, counted
    on the instrumented memory instance under a deterministic
    round-robin interleaving ({!Count_runner}). *)

module Table = Arc_report.Table

let rmw_table (opts : Grid.opts) =
  let table =
    Table.create
      ~title:
        "E4 — RMW instructions and plain atomic loads per operation \
         (deterministic interleaving; r = reads per reader between writes)"
      ~columns:
        [ "algorithm"; "readers"; "r"; "rmw/read"; "rmw/write"; "loads/read";
          "words-copied/write" ]
  in
  let readerss = if opts.Grid.quick then [ 4 ] else [ 4; 16; 48 ] in
  let rpws = if opts.Grid.quick then [ 1; 8 ] else [ 1; 4; 16 ] in
  List.iter
    (fun (entry : Registry.entry) ->
      List.iter
        (fun readers ->
          if Grid.supports entry ~readers ~size:64 then
            List.iter
              (fun rpw ->
                let c =
                  entry.Registry.count ~readers ~size_words:64 ~rounds:100
                    ~reads_per_write:rpw
                in
                Table.add_row table
                  [
                    entry.Registry.name;
                    string_of_int readers;
                    string_of_int rpw;
                    Printf.sprintf "%.3f" c.Count_runner.rmw_per_read;
                    Printf.sprintf "%.3f" c.Count_runner.rmw_per_write;
                    Printf.sprintf "%.3f" c.Count_runner.atomic_loads_per_read;
                    Printf.sprintf "%.0f" c.Count_runner.word_writes_per_write;
                  ])
              rpws)
        readerss)
    Registry.all;
  table

(* Simpson's four-slot (1,1) register. *)

module Counting = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Intf = Arc_mem.Mem_intf
module Sp = Arc_baselines.Simpson_reg.Make (Arc_mem.Real_mem)
module Sp_cnt = Arc_baselines.Simpson_reg.Make (Counting)
module Sp_sim = Arc_baselines.Simpson_reg.Make (Arc_vsched.Sim_mem)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)
module P_sim = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

let read_seq rd =
  Sp.read_with rd ~f:(fun buffer len ->
      match P.validate buffer ~len with
      | Ok seq -> seq
      | Error msg -> Alcotest.fail msg)

let test_single_reader_only () =
  check "advertised bound" 1
    (Option.get (Sp.caps.Arc_core.Register_intf.max_readers ~capacity_words:4));
  match Sp.create ~readers:2 ~capacity:4 ~init:(stamped ~seq:0 ~len:4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "two readers accepted by a four-slot register"

let test_sequential () =
  let reg = Sp.create ~readers:1 ~capacity:8 ~init:(stamped ~seq:0 ~len:8) in
  let rd = Sp.reader reg 0 in
  check "initial" 0 (read_seq rd);
  for seq = 1 to 100 do
    Sp.write reg ~src:(stamped ~seq ~len:8) ~len:8;
    check "latest visible" seq (read_seq rd)
  done;
  (* unchanged register: stable *)
  check "stable re-read" 100 (read_seq rd)

let test_variable_sizes () =
  let reg = Sp.create ~readers:1 ~capacity:16 ~init:(stamped ~seq:0 ~len:16) in
  let rd = Sp.reader reg 0 in
  List.iteri
    (fun k len ->
      let seq = k + 1 in
      Sp.write reg ~src:(stamped ~seq ~len) ~len;
      Alcotest.(check int) "length" len (Sp.read_with rd ~f:(fun _ l -> l));
      Alcotest.(check int) "content" seq (read_seq rd))
    [ 1; 16; 5; 9 ]

let test_no_rmw () =
  Counting.reset ();
  let reg = Sp_cnt.create ~readers:1 ~capacity:4 ~init:(Array.make 4 0) in
  let rd = Sp_cnt.reader reg 0 in
  Sp_cnt.write reg ~src:(Array.make 4 1) ~len:4;
  ignore (Sp_cnt.read_with rd ~f:(fun _ _ -> ()));
  check "plain reads/writes only" 0 (Counting.counts ()).Intf.rmw

let test_four_slots_cycle () =
  (* Consecutive writes with a parked reader must rotate over distinct
     slots without ever touching the reader's. *)
  let size = 8 in
  let reg = Sp.create ~readers:1 ~capacity:size ~init:(stamped ~seq:0 ~len:size) in
  let rd = Sp.reader reg 0 in
  Sp.write reg ~src:(stamped ~seq:1 ~len:size) ~len:size;
  ignore (read_seq rd);
  (* Reader parked on write 1's slot; hammer writes. *)
  for seq = 2 to 200 do
    Sp.write reg ~src:(stamped ~seq ~len:size) ~len:size
  done;
  check "reader now sees the newest" 200 (read_seq rd)

let test_never_torn_and_monotone_under_schedules () =
  for seed = 0 to 29 do
    let size = 12 in
    let init = Array.make size 0 in
    P_sim.stamp init ~seq:0 ~len:size;
    let reg = Sp_sim.create ~readers:1 ~capacity:size ~init in
    let src = Array.make size 0 in
    let writer () =
      for seq = 1 to 15 do
        P_sim.stamp src ~seq ~len:size;
        Sp_sim.write reg ~src ~len:size
      done
    in
    let reader () =
      let rd = Sp_sim.reader reg 0 in
      let last = ref 0 in
      for _ = 1 to 20 do
        let seq =
          Sp_sim.read_with rd ~f:(fun buffer len ->
              match P_sim.validate buffer ~len with
              | Ok seq -> seq
              | Error msg -> Alcotest.failf "seed %d: torn: %s" seed msg)
        in
        if seq < !last then
          Alcotest.failf "seed %d: new-old inversion %d -> %d" seed !last seq;
        last := seq
      done
    in
    ignore (Sched.run ~strategy:(Strategy.random ~seed) [| writer; reader |])
  done

let test_wait_free_read_latency () =
  (* Unlike Lamport's register, the four-slot read is wait-free: its
     latency is a small constant even under a back-to-back writer. *)
  let size = 32 in
  let reg = Sp_sim.create ~readers:1 ~capacity:size ~init:(Array.make size 0) in
  let src = Array.make size 0 in
  let latency = ref max_int in
  let writer () =
    for _ = 1 to 30 do
      Sp_sim.write reg ~src ~len:size
    done
  in
  let reader () =
    let rd = Sp_sim.reader reg 0 in
    (* mid-run single read *)
    for _ = 1 to 20 do
      Sched.cede ()
    done;
    let t0 = Sched.now () in
    ignore (Sp_sim.read_with rd ~f:(fun _ _ -> ()));
    latency := Sched.now () - t0
  in
  ignore (Sched.run ~strategy:(Strategy.round_robin ()) [| writer; reader |]);
  Alcotest.(check bool)
    (Printf.sprintf "constant-ish read latency (%d steps)" !latency)
    true
    (!latency < 50)

let suite =
  [
    Alcotest.test_case "single reader only" `Quick test_single_reader_only;
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "variable sizes" `Quick test_variable_sizes;
    Alcotest.test_case "no RMW" `Quick test_no_rmw;
    Alcotest.test_case "four slots cycle" `Quick test_four_slots_cycle;
    Alcotest.test_case "never torn + monotone under schedules" `Quick
      test_never_torn_and_monotone_under_schedules;
    Alcotest.test_case "wait-free read latency" `Quick test_wait_free_read_latency;
  ]

(** Duration-bounded throughput runner on real parallelism: one writer
    thread plus N reader threads hammer a register for a fixed wall
    -clock window behind a start barrier, reproducing the measurement
    protocol of the paper's §5 (continuous operations, one writer,
    all other threads readers).

    Two spawning modes (see {!Config.real}): [`Domains] for true
    parallelism up to the runtime's domain limit, [`Threads]
    (systhreads, one domain) for the heavily time-shared Fig. 3
    regime with thousands of threads. *)

module Make (_ : Arc_core.Register_intf.S) : sig
  val run : Config.real -> Config.result
  (** @raise Invalid_argument on nonsensical configurations (no
      readers, readers above the algorithm's bound, bad sizes). *)
end

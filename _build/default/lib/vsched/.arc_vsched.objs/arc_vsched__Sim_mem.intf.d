lib/vsched/sim_mem.mli: Arc_mem

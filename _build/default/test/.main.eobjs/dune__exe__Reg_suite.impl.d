test/reg_suite.ml: Alcotest Arc_core Arc_util Arc_workload Array Gen List Print Printf QCheck QCheck_alcotest

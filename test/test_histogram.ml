(* Power-of-two histogram used for latency tails. *)

module H = Arc_util.Histogram

let check = Alcotest.(check int)

let test_basic () =
  let h = H.create () in
  List.iter (H.record h) [ 1; 2; 3; 100; 1000 ];
  check "count" 5 (H.count h);
  check "max exact" 1000 (H.max_value h)

let test_percentiles_bounded () =
  let h = H.create () in
  for v = 1 to 1000 do
    H.record h v
  done;
  let p50 = H.percentile h 50. in
  (* Interpolated within the bucket: for a uniform 1..1000 population
     the estimate lands within a few units of the true median, not at
     the bucket's upper bound (511) as the pre-fix code returned. *)
  Alcotest.(check bool) (Printf.sprintf "p50=%d in [495, 505]" p50) true
    (p50 >= 495 && p50 <= 505);
  check "p100 is the max" 1000 (H.percentile h 100.)

let test_percentile_single_sample_exact () =
  let h = H.create () in
  H.record h 5;
  (* One sample: every percentile is that sample.  The max_value clamp
     makes the interpolation exact here despite the [4, 7] bucket. *)
  List.iter (fun p -> check (Printf.sprintf "p%.0f" p) 5 (H.percentile h p))
    [ 0.; 50.; 100. ]

let test_percentile_identical_samples () =
  let h = H.create () in
  for _ = 1 to 100 do
    H.record h 5
  done;
  check "p50 of identical samples" 5 (H.percentile h 50.)

let test_zero_and_negative () =
  let h = H.create () in
  H.record h 0;
  H.record h (-5);
  check "bucketed at zero" 0 (H.percentile h 100.);
  check "count" 2 (H.count h)

let test_empty_percentile () =
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (H.percentile (H.create ()) 50.))

let test_merge () =
  let a = H.create () and b = H.create () in
  H.record a 10;
  H.record b 10_000;
  H.merge_into ~src:a ~dst:b;
  check "merged count" 2 (H.count b);
  check "merged max" 10_000 (H.max_value b)

let test_buckets_ascending () =
  let h = H.create () in
  List.iter (H.record h) [ 1; 1; 5; 5; 5; 300 ];
  let bs = H.buckets h in
  check "three buckets" 3 (List.length bs);
  let counts = List.map (fun (_, _, c) -> c) bs in
  Alcotest.(check (list int)) "counts" [ 2; 3; 1 ] counts;
  List.iter
    (fun (lo, hi, _) -> Alcotest.(check bool) "lo<=hi" true (lo <= hi))
    bs

(* Cross-check against the exact [Stats.percentile] (the satellite fix
   of ISSUE 5).  The histogram targets the ⌈p/100·n⌉-th smallest
   sample [s] and interpolates inside its power-of-two bucket, so the
   estimate must stay within factor two of [s]; and since [s] is one
   of the two order statistics Stats interpolates between
   ([⌊i⌋]/[⌈i⌉] at i = p(n−1)/100), the estimate is factor-two
   bracketed by the exact percentile's own interval.  The pre-fix
   bucket_hi behaviour satisfies the first bound but lands at the
   bucket top; the uniform-population unit test above pins the
   interpolation itself. *)
let prop_percentile_cross_check =
  QCheck.Test.make
    ~name:"percentile within factor 2 of the exact order statistic" ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_bound 1_000_000))
        (float_range 0. 100.))
    (fun (samples, p) ->
      let h = H.create () in
      List.iter (H.record h) samples;
      let n = List.length samples in
      let sorted = Array.of_list (List.sort compare samples) in
      let estimate = H.percentile h p in
      (* The histogram's target order statistic. *)
      let rank =
        max 1 (int_of_float (ceil (p /. 100. *. float_of_int n)))
      in
      let s = sorted.(rank - 1) in
      (* Stats' bracketing order statistics (i = p/100·(n−1), 0-based). *)
      let i = p /. 100. *. float_of_int (n - 1) in
      let s_lo = sorted.(int_of_float (floor i)) in
      let s_hi = sorted.(int_of_float (ceil i)) in
      let exact = Arc_util.Stats.percentile (Array.map float_of_int sorted) p in
      (* Sanity: the exact value really is inside its bracket. *)
      float_of_int s_lo -. 1e-6 <= exact
      && exact <= float_of_int s_hi +. 1e-6
      (* Same-bucket bound vs the target order statistic. *)
      && estimate <= 2 * s
      && s <= (2 * estimate) + 1
      (* Factor-two bracket vs the exact percentile's interval. *)
      && estimate <= (2 * s_hi) + 1
      && s_lo <= (2 * estimate) + 1)

let prop_max_exact =
  QCheck.Test.make ~name:"max_value is exact" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 1_000_000))
    (fun samples ->
      let h = H.create () in
      List.iter (H.record h) samples;
      H.max_value h = List.fold_left max 0 samples)

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "percentiles bounded" `Quick test_percentiles_bounded;
    Alcotest.test_case "single sample exact" `Quick
      test_percentile_single_sample_exact;
    Alcotest.test_case "identical samples" `Quick
      test_percentile_identical_samples;
    Alcotest.test_case "zero and negative" `Quick test_zero_and_negative;
    Alcotest.test_case "empty percentile" `Quick test_empty_percentile;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "buckets ascending" `Quick test_buckets_ascending;
    QCheck_alcotest.to_alcotest prop_percentile_cross_check;
    QCheck_alcotest.to_alcotest prop_max_exact;
  ]

lib/report/series.ml: Buffer Float Hashtbl List Printf String Table

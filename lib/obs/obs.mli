(** Wait-free telemetry: per-domain counter cells, read-outcome
    accounting, and metric exposition.

    Recording never blocks, never retries, and on the register's read
    fast path never executes an RMW: a {!Cell} is a plain single-writer
    [mutable int], cache-line-isolated via {!Arc_mem.Isolate},
    incremented with an ordinary load + store.  Any domain may read a cell concurrently — a word-sized
    racy read cannot tear, so observers see a possibly-stale but
    never-corrupt count, and a happens-before edge (e.g.
    [Domain.join]) makes it exact.

    Cells live on the host heap, outside the register's memory
    substrate, so counting adds no scheduling points under the virtual
    scheduler (enabling telemetry changes no checker-visible history)
    and no operations to {!Arc_mem.Counting}'s ledger. *)

(** A single-writer counter word on its own cache line.  [incr]/[add]
    are owner-only (plain, unfenced); [get] is safe from any domain. *)
module Cell : sig
  type t = { mutable v : int }
  (** The word is exposed so register hot paths can compile the
      increment to a single inline store ([c.v <- c.v + 1]) — without
      flambda a cross-module [incr] call costs several ns, comparable
      to the fast-path read itself.  Treat the field as owner-only:
      one writer mutates, any thread may (racily) read. *)

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

(** A named family of per-domain cells — one cell per participant, so
    every writer owns its word and [value] sums them racily-but-safely. *)
module Group : sig
  type t

  val create : name:string -> help:string -> int -> t
  (** [create ~name ~help n] — [n] cells, one per domain; raises
      [Invalid_argument] if [n < 1]. *)

  val cell : t -> int -> Cell.t
  val domains : t -> int
  val name : t -> string
  val help : t -> string

  val value : t -> int
  (** Sum over all cells (racy snapshot; exact after owners join). *)

  val per_domain : t -> int array
end

(** Per-domain read-outcome counters: the concurrent-safe replacement
    for {!Arc_util.Stats.Outcomes} wherever counts are read while the
    owning session is still running (live soak summaries, supervisor
    probes).  Same counting semantics; {!snapshot} bridges to the
    merge-after-join [Stats.Outcomes] world. *)
module Outcomes : sig
  type t

  val create : unit -> t
  val ok : t -> unit
  val stale : t -> unit
  val exhausted : t -> unit
  val error : t -> unit
  val retry : t -> unit
  val ok_count : t -> int
  val stale_count : t -> int
  val exhausted_count : t -> int
  val error_count : t -> int
  val retry_count : t -> int
  val total : t -> int
  val degraded : t -> int
  val degraded_rate : t -> float

  val snapshot : t -> Arc_util.Stats.Outcomes.t
  (** Point-in-time copy, safe to take from any domain mid-run: each
      count is individually valid and monotone across snapshots (not a
      linearized cut — concurrent increments may straddle the field
      reads). *)

  val pp : Format.formatter -> t -> unit
end

(** Per-scanner snapshot-outcome cells for the register fabric's
    cross-shard snapshot (ISSUE 6) — same single-writer cell
    discipline as {!Outcomes}.  [retries] counts failed probe passes,
    the quantity bounded by the fabric's wait-freedom argument (at
    most shards + 1 failed passes per snapshot), so soaks can watch it
    to falsify the bound. *)
module Scan : sig
  type t = {
    direct : Group.t;  (** clean double-collect snapshots *)
    borrowed : Group.t;  (** snapshots served from a helping deposit *)
    retries : Group.t;  (** failed probe passes (per-shard re-collects) *)
  }

  val create : scanners:int -> t

  val direct : t -> int -> Cell.t
  val borrowed : t -> int -> Cell.t
  val retries : t -> int -> Cell.t
  (** The given scanner's cell — resolve once, increment inline. *)

  val direct_count : t -> int
  val borrowed_count : t -> int
  val retry_count : t -> int
  (** Racy sums over scanners; exact after owners join. *)
end

(** {1 Metrics and exposition} *)

type kind = Counter | Gauge

type metric = {
  mname : string;
  mhelp : string;
  mkind : kind;
  labels : (string * string) list;
  value : float;
}

val counter :
  ?labels:(string * string) list -> ?help:string -> string -> int -> metric

val gauge :
  ?labels:(string * string) list -> ?help:string -> string -> float -> metric

val prometheus : metric list -> string
(** Prometheus text exposition (format 0.0.4): [# HELP]/[# TYPE] once
    per family, one sample line per metric, same-name samples grouped. *)

val json : metric list -> string
(** The same metrics as a JSON array (for merging into
    [results/BENCH_arc.json]). *)

(** Event counters for the reader admission gate (ISSUE 8), carrying
    the canonical [arc_admission_*_total] metric names.  Backed by
    [Atomic.t], not {!Cell}s: admission events are multi-writer (any
    arriving or departing thread, plus the eviction sweeper) and live
    on the connection-churn path, never the read fast path. *)
module Admission : sig
  type t

  val create : unit -> t
  val admitted : t -> unit
  val backpressured : t -> unit
  val departed : t -> unit
  val evicted : t -> unit
  val admitted_count : t -> int
  val backpressured_count : t -> int
  val departed_count : t -> int
  val evicted_count : t -> int

  val metrics : ?labels:(string * string) list -> t -> metric list
  (** The four [arc_admission_{admitted,backpressured,departed,
      evicted}_total] counters. *)
end

(* The (M,N) construction on top of ARC. *)

module Mn = Arc_mrmw.Mn_register.Make (Arc_core.Arc) (Arc_mem.Real_mem)
module Mn_sim = Arc_mrmw.Mn_register.Make (Arc_core.Arc) (Arc_vsched.Sim_mem)
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let test_initial_value () =
  let reg = Mn.create ~writers:3 ~readers:2 ~capacity:8 ~init:(Array.init 8 Fun.id) in
  let rd = Mn.reader reg 0 in
  let dst = Array.make 8 0 in
  check "initial length" 8 (Mn.read_into rd ~dst);
  Alcotest.(check (array int)) "initial content" (Array.init 8 Fun.id) dst;
  check "initial timestamp" 0 (Mn.last_timestamp rd)

let test_single_writer_behaves () =
  let reg = Mn.create ~writers:1 ~readers:1 ~capacity:4 ~init:[| 0 |] in
  let w = Mn.writer reg 0 and rd = Mn.reader reg 0 in
  Mn.write w ~src:[| 5; 6 |] ~len:2;
  let dst = Array.make 4 0 in
  check "length" 2 (Mn.read_into rd ~dst);
  check "content" 5 dst.(0);
  check "timestamp advanced" 1 (Mn.last_timestamp rd)

let test_two_writers_alternate () =
  let reg = Mn.create ~writers:2 ~readers:1 ~capacity:4 ~init:[| 0 |] in
  let w0 = Mn.writer reg 0 and w1 = Mn.writer reg 1 in
  let rd = Mn.reader reg 0 in
  let dst = Array.make 4 0 in
  Mn.write w0 ~src:[| 100 |] ~len:1;
  ignore (Mn.read_into rd ~dst);
  check "sees w0" 100 dst.(0);
  Mn.write w1 ~src:[| 200 |] ~len:1;
  ignore (Mn.read_into rd ~dst);
  check "sees w1 (higher timestamp)" 200 dst.(0);
  Mn.write w0 ~src:[| 300 |] ~len:1;
  ignore (Mn.read_into rd ~dst);
  check "back to w0" 300 dst.(0)

let test_timestamps_strictly_grow () =
  let reg = Mn.create ~writers:3 ~readers:1 ~capacity:2 ~init:[| 0 |] in
  let ws = Array.init 3 (Mn.writer reg) in
  let rd = Mn.reader reg 0 in
  let dst = Array.make 2 0 in
  let last = ref 0 in
  for round = 1 to 30 do
    let w = ws.(round mod 3) in
    Mn.write w ~src:[| round |] ~len:1;
    ignore (Mn.read_into rd ~dst);
    check (Printf.sprintf "round %d value" round) round dst.(0);
    let ts = Mn.last_timestamp rd in
    Alcotest.(check bool) "timestamp grew" true (ts > !last);
    last := ts
  done

let test_reader_monotone_under_schedules () =
  (* Concurrent writers and readers in the simulator: per-reader
     timestamps never go backwards, and no read blocks. *)
  for seed = 0 to 14 do
    let reg = Mn_sim.create ~writers:2 ~readers:2 ~capacity:2 ~init:[| 0 |] in
    let writer i () =
      let w = Mn_sim.writer reg i in
      for k = 1 to 10 do
        Mn_sim.write w ~src:[| (i * 1000) + k |] ~len:1
      done
    in
    let reader i () =
      let rd = Mn_sim.reader reg i in
      let dst = Array.make 2 0 in
      let last = ref (-1) in
      for _ = 1 to 15 do
        ignore (Mn_sim.read_into rd ~dst);
        let ts = Mn_sim.last_timestamp rd in
        if ts < !last then
          Alcotest.failf "seed %d: reader %d timestamp regressed %d -> %d" seed i
            !last ts;
        last := ts
      done
    in
    ignore
      (Sched.run ~strategy:(Strategy.random ~seed)
         [| writer 0; writer 1; reader 0; reader 1 |])
  done

let test_concurrent_writers_on_domains () =
  let reg = Mn.create ~writers:2 ~readers:2 ~capacity:2 ~init:[| 0 |] in
  let stop = Atomic.make false in
  let writer i () =
    let w = Mn.writer reg i in
    let k = ref 0 in
    while not (Atomic.get stop) do
      incr k;
      Mn.write w ~src:[| (i * 1_000_000) + !k |] ~len:1
    done
  in
  let regressions = Atomic.make 0 in
  let reader i () =
    let rd = Mn.reader reg i in
    let dst = Array.make 2 0 in
    let last = ref (-1) in
    while not (Atomic.get stop) do
      ignore (Mn.read_into rd ~dst);
      let ts = Mn.last_timestamp rd in
      if ts < !last then Atomic.incr regressions;
      last := ts
    done
  in
  let domains =
    [| Domain.spawn (writer 0); Domain.spawn (writer 1);
       Domain.spawn (reader 0); Domain.spawn (reader 1) |]
  in
  Unix.sleepf 0.1;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  check "no per-reader timestamp regressions" 0 (Atomic.get regressions)

(* ISSUE 10 satellite: equal timestamps are legitimate (two writers
   collect before either publishes, both picking 1 + max), so the
   winner must be the lexicographically largest ⟨ts, writer-id⟩.  The
   oracle is per-reader monotonicity of that pair; the conviction
   target is [read_into_ts_only], the tie-break removed.  A schedule
   convicts it when a reader first sees ⟨ts, 1⟩ (only writer 1
   published yet), then writer 0 publishes the {e same} ts and the
   scan-order-first rule flips the winner back to ⟨ts, 0⟩. *)
let lex_regressed read_into seed =
  let reg = Mn_sim.create ~writers:2 ~readers:2 ~capacity:2 ~init:[| 0 |] in
  let writer i () =
    let w = Mn_sim.writer reg i in
    for k = 1 to 6 do
      Mn_sim.write w ~src:[| (i * 1000) + k |] ~len:1
    done
  in
  let regressed = ref false in
  let reader i () =
    let rd = Mn_sim.reader reg i in
    let dst = Array.make 2 0 in
    let last_ts = ref (-1) and last_wid = ref (-1) in
    for _ = 1 to 12 do
      ignore (read_into rd ~dst);
      let ts = Mn_sim.last_timestamp rd and wid = Mn_sim.last_writer rd in
      if ts < !last_ts || (ts = !last_ts && wid < !last_wid) then regressed := true;
      last_ts := ts;
      last_wid := wid
    done
  in
  ignore
    (Sched.run ~strategy:(Strategy.random ~seed)
       [| writer 0; writer 1; reader 0; reader 1 |]);
  !regressed

let test_tie_break_convicts_ts_only () =
  let convicted = ref 0 in
  for seed = 0 to 79 do
    if lex_regressed (fun rd ~dst -> Mn_sim.read_into_ts_only rd ~dst) seed then
      incr convicted;
    if lex_regressed (fun rd ~dst -> Mn_sim.read_into rd ~dst) seed then
      Alcotest.failf
        "seed %d: lexicographic read let the logical clock go backwards" seed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "ts-only control convicted (%d/80 seeds)" !convicted)
    true (!convicted > 0)

let test_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> ignore (Mn.create ~writers:0 ~readers:1 ~capacity:2 ~init:[||]));
  raises (fun () -> ignore (Mn.create ~writers:1 ~readers:0 ~capacity:2 ~init:[||]));
  raises (fun () ->
      ignore (Mn.create ~writers:1 ~readers:1 ~capacity:2 ~init:[| 1; 2; 3 |]));
  let reg = Mn.create ~writers:2 ~readers:1 ~capacity:2 ~init:[| 0 |] in
  raises (fun () -> ignore (Mn.writer reg 2));
  raises (fun () -> ignore (Mn.reader reg 1));
  let w = Mn.writer reg 0 in
  raises (fun () -> Mn.write w ~src:[| 1; 2; 3 |] ~len:3)

let suite =
  [
    Alcotest.test_case "initial value" `Quick test_initial_value;
    Alcotest.test_case "single writer" `Quick test_single_writer_behaves;
    Alcotest.test_case "two writers alternate" `Quick test_two_writers_alternate;
    Alcotest.test_case "timestamps strictly grow" `Quick test_timestamps_strictly_grow;
    Alcotest.test_case "monotone under schedules" `Quick
      test_reader_monotone_under_schedules;
    Alcotest.test_case "concurrent writers on domains" `Quick
      test_concurrent_writers_on_domains;
    Alcotest.test_case "tie-break convicts ts-only control" `Quick
      test_tie_break_convicts_ts_only;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

(** Perf-gate decision logic (ISSUE 10 satellite: the gate against an
    empty trajectory used to pass silently).

    Pure string-level evaluation: the caller reads the bench files and
    the trajectory's last line, {!evaluate} returns the entry to append
    and the verdicts, and the caller does the IO and picks the exit
    code.  Keeping the decision pure is what makes the empty-trajectory
    regression testable from the tier-1 suite — the previous
    implementation buried it in [bin/perf_gate.ml] where nothing could
    assert on it.

    The JSON handling is deliberately string-level: every input is
    written by this repository's own emitters with known key spelling,
    and the toolchain has no JSON library to depend on. *)

val field_of : key:string -> string -> float option
(** Number following the quoted key and its colon — first occurrence,
    [None] if absent. *)

val keys_with_prefix : prefix:string -> string -> string list
(** All distinct JSON keys starting with [prefix], in order of first
    occurrence — how the gate discovers which core counts a scaling
    bench measured ([read_hit_ns@2], [read_hit_ns@4], ...). *)

type verdict =
  | Within of { metric : string; value : float; baseline : float; limit : float }
      (** Compared against the trajectory and inside the budget. *)
  | Regression of { metric : string; value : float; baseline : float; limit : float }
  | Baseline_recorded of { metric : string; value : float }
      (** No prior value for this metric in the trajectory — nothing
          compared, the appended entry seeds it. *)
  | Ceiling_ok of { metric : string; value : float; ceiling : float }
  | Ceiling_exceeded of { metric : string; value : float; ceiling : float }
      (** Absolute-bound checks (trajectory-independent): the R2'
          plain-load read must stay below the pre-R2' classic-path
          cost it exists to beat. *)

val pp_verdict : Format.formatter -> verdict -> unit

type report = {
  entry : string;
      (** The JSON object (one line, no trailing newline) to append to
          the trajectory. *)
  verdicts : verdict list;
  compared : int;  (** Trajectory-baseline comparisons actually made. *)
  failures : int;  (** Regressions plus ceiling violations. *)
  seeded : bool;
      (** No usable prior entry: this run seeds the baseline.  The
          caller must say so and exit non-zero — a gate that compared
          nothing must never report green (the ISSUE 10 bugfix). *)
}

val evaluate :
  bench:string ->
  ?fabric:string ->
  ?scaling:string ->
  ?prior:string ->
  threshold:float ->
  ?ceiling:float ->
  label:string ->
  date:string ->
  unit ->
  (report, string) result
(** [evaluate ~bench ?fabric ?scaling ?prior ~threshold ?ceiling ~label
    ~date ()] judges one gate invocation.

    [bench] is the full BENCH_arc.json text (must carry
    [read_hit_ns_off], [read_hit_ns_on], [overhead_pct]; optionally
    [read_plain_ns] and [reader_join_p99_ns]).  [fabric] is
    BENCH_fabric.json when present ([snapshot_ns_per_shard] required
    in it).  [scaling] is BENCH_scaling.json when present; every
    [read_hit_ns@N] / [read_plain_ns@N] key found is tracked and
    gated per core count.  [prior] is the last non-empty trajectory
    line, if any.  [threshold] is the allowed regression in percent;
    [ceiling] the absolute bound on [read_plain_ns].

    [Error msg] means malformed input (missing required field). *)

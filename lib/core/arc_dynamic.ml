let algorithm = "arc-dynamic"

module Packed = Arc_util.Packed

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M
  module Obs = Arc_obs.Obs
  module Ring = Arc_obs.Ring

  (* Telemetry — same host-heap design as {!Arc.Make}: plain
     single-writer cells outside the substrate, so recording adds no
     substrate operations and no vsched scheduling points. *)
  type telemetry = {
    fast_hits : Obs.Group.t;
    slow_cells : Obs.Group.t;
    plain_cells : Obs.Group.t;  (* validated R2' plain reads *)
    pfall_cells : Obs.Group.t;  (* R2' stamp-mismatch fallbacks *)
    hint_cell : Obs.Cell.t;
    tel_ring : Ring.t;
    clock : unit -> int;
  }

  type slot = {
    size : M.atomic;
        (* words of the snapshot in [content]; -1 is the revocation
           marker: the slot's storage was reclaimed while a laggard
           (possibly crashed) reader still pins it *)
    seq : M.atomic;  (* begin stamp: stored before buffer swap and copy *)
    seq_end : M.atomic;
        (* end stamp: stored once content and size are complete — the
           R2' validation bracket, see {!Arc.Make}.  Buffer swaps
           (realloc, revocation) happen strictly inside a bracket or
           under the revocation marker, so a plain scan that validates
           read one complete write out of one buffer. *)
    r_start : M.atomic;
    r_end : M.atomic;
    mutable content : M.buffer;
        (* Written by the writer while the slot is free (published to
           readers by the exchange on [current], the same
           happens-before edge as the slot's data) — and by
           [reclaim_stale] while the slot is pinned, which is exactly
           the race the size-validation handshake in [acquire]
           resolves. *)
    mutable superseded_at : int;
        (* Writer-private: the write count at which this slot was last
           superseded (W3); -1 while free or published.  Drives the
           staleness test of [reclaim_stale]. *)
  }

  type t = {
    slots : slot array;
    current : M.atomic;
    readers : int;
    capacity : int;
    hint : M.atomic;
    (* Crash-recovery journal + quarantine: see Arc.  [prefreeze]
       names the slot whose supersede-freeze is in flight; a successor
       writer quarantines it via [recover_crash]. *)
    prefreeze : M.atomic;
    mutable quarantined : int list;
    mutable last_slot : int;
    mutable lease : int option;
    mutable reallocations : int;
    mutable reclaimed : int;
    mutable writes : int;
    (* Publish-stamp counter (Register_intf.STAMPED) — see Arc. *)
    mutable stamp : int;
    (* Write-coalescing staging — see Arc. *)
    co_buf : int array;
    mutable co_len : int;
    mutable co_pending : int;
    mutable co_batches : int;
    mutable co_absorbed : int;
    mutable co_max_batch : int;
    mutable tel : telemetry option;
  }

  (* Readers cache the validated (buffer, length) view at subscribe
     time.  A slot can only be revoked after it was superseded, and a
     subscribed reader took its view while the slot was current (or
     validated it against the revocation marker), so the cache always
     points at intact storage — storage reclaim is invisible to
     already-subscribed readers, whose cached buffer stays alive
     through the GC. *)
  type rcells = {
    fast : Obs.Cell.t;
    slow : Obs.Cell.t;
    plain : Obs.Cell.t;
    pfall : Obs.Cell.t;
  }

  (* [last_current] caches the packed word observed at the last
     (re)subscription — an exact match certifies the cached view is
     still the published value (the pinned slot can never be
     republished, and revocation only touches {e superseded} slots, so
     a slot that is still current holds intact storage); see
     {!Arc.Make.reader}. *)
  type reader = {
    reg : t;
    mutable last_index : int;
    mutable last_current : int;
    mutable view_buf : M.buffer;
    mutable view_len : int;
    cells : rcells option;
  }

  let algorithm = algorithm

  let caps =
    {
      Register_intf.wait_free = true;
      zero_copy = true;
      max_readers = (fun ~capacity_words:_ -> Some Packed.max_readers);
      snapshot_read = true;
    }

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Arc_dynamic.create: need at least one reader";
    if readers > Packed.max_readers then
      invalid_arg
        (Printf.sprintf
           "Arc_dynamic.create: readers = %d exceed the 2^32 - 2 capacity"
           readers);
    if capacity < 1 then invalid_arg "Arc_dynamic.create: capacity must be positive";
    if Array.length init > capacity then
      invalid_arg "Arc_dynamic.create: init longer than capacity";
    let nslots = readers + 2 in
    if nslots - 1 > Packed.max_index then
      invalid_arg "Arc_dynamic.create: slot count exceeds index field";
    let fresh_slot words =
      let r_start, r_end = M.atomic_contended_pair 0 0 in
      {
        size = M.atomic 0;
        seq = M.atomic 0;
        seq_end = M.atomic 0;
        r_start;
        r_end;
        content = M.alloc words;
        superseded_at = -1;
      }
    in
    (* Empty slots start with zero-word buffers: the whole point of
       the dynamic variant is paying only for what is stored. *)
    let slots =
      Array.init nslots (fun i -> fresh_slot (if i = 0 then Array.length init else 0))
    in
    M.write_words slots.(0).content ~src:init ~len:(Array.length init);
    M.store slots.(0).size (Array.length init);
    M.store slots.(0).seq 1;
    M.store slots.(0).seq_end 1;
    {
      slots;
      current = M.atomic_contended (Packed.make ~index:0 ~count:readers);
      readers;
      capacity;
      hint = M.atomic_contended (-1);
      prefreeze = M.atomic (-1);
      quarantined = [];
      last_slot = 0;
      lease = None;
      reallocations = 0;
      reclaimed = 0;
      writes = 0;
      stamp = 1;
      co_buf = Array.make capacity 0;
      co_len = -1;
      co_pending = 0;
      co_batches = 0;
      co_absorbed = 0;
      co_max_batch = 0;
      tel = None;
    }

  let make_telemetry ?(ring = 256) ?(clock = fun () -> 0) ~readers () =
    {
      fast_hits =
        Obs.Group.create ~name:"arc_reads_fast_total"
          ~help:"Reads served on the RMW-free fast path (R2)" readers;
      slow_cells =
        Obs.Group.create ~name:"arc_reads_slow_total"
          ~help:"Reads that paid the R3+R4 RMW pair" readers;
      plain_cells =
        Obs.Group.create ~name:"arc_reads_plain_total"
          ~help:"Validated copy-free plain-load reads (R2')" readers;
      pfall_cells =
        Obs.Group.create ~name:"arc_reads_plain_fallback_total"
          ~help:"R2' stamp mismatches that fell back to the classic path"
          readers;
      hint_cell = Obs.Cell.create ();
      tel_ring = Ring.create ring;
      clock;
    }

  let set_telemetry reg tel = reg.tel <- tel
  let telemetry reg = reg.tel
  let fast_reads tel = Obs.Group.value tel.fast_hits
  let slow_reads tel = Obs.Group.value tel.slow_cells
  let plain_reads tel = Obs.Group.value tel.plain_cells
  let plain_fallbacks tel = Obs.Group.value tel.pfall_cells
  let hint_hits tel = Obs.Cell.get tel.hint_cell

  let trace reg =
    match reg.tel with None -> [] | Some tel -> Ring.dump tel.tel_ring

  (* Post-increment presence check — the same typed error and message
     shape as Arc's and Packed's guards (Arc_util.Saturation =
     Register_intf.Saturated, ISSUE 8). *)
  let saturation_guard now =
    Arc_util.Saturation.guard_count ~who:"Arc_dynamic.read"
      ~bound:Packed.max_readers (Packed.count now)

  (* R3 + R4: release the subscribed slot (posting the §3.4 hint) and
     subscribe to the current one.  Shared by the normal slow path and
     the revocation-recovery retry. *)
  let release_and_subscribe rd =
    let reg = rd.reg in
    let released = reg.slots.(rd.last_index) in
    M.incr released.r_end;
    let fin = M.load released.r_end in
    if fin = M.load released.r_start then M.store reg.hint rd.last_index;
    let now = M.add_and_fetch reg.current 1 in
    saturation_guard now;
    rd.last_index <- Packed.index now;
    (* Cache the exact subscription word — see {!Arc.Make.read_view}. *)
    rd.last_current <- now

  (* Validate-and-cache the view of the slot the reader is subscribed
     to.  The revocation marker is checked on both sides of the
     [content] read: [reclaim_stale] stores size = -1 {e before}
     swapping the buffer, so [s1 >= 0 && s2 = s1] certifies that no
     revocation overlapped the two loads and [buf] is the intact
     storage.  On a revoked slot the reader recovers by releasing and
     re-subscribing — each retry means the register advanced at least
     a full lease of writes while this reader was between R4 and the
     validation, so retries are vanishingly rare and the path degrades
     gracefully rather than returning reclaimed storage. *)
  let rec acquire rd =
    let entry = rd.reg.slots.(rd.last_index) in
    let s1 = M.load entry.size in
    let buf = entry.content in
    let s2 = M.load entry.size in
    if s1 >= 0 && s2 = s1 then begin
      rd.view_buf <- buf;
      rd.view_len <- s1
    end
    else begin
      release_and_subscribe rd;
      acquire rd
    end

  let reader reg i =
    if i < 0 || i >= reg.readers then
      invalid_arg
        (Printf.sprintf
           "Arc_dynamic.reader: identity %d out of range [0, %d)" i reg.readers);
    let cells =
      match reg.tel with
      | None -> None
      | Some tel ->
        Some
          {
            fast = Obs.Group.cell tel.fast_hits i;
            slow = Obs.Group.cell tel.slow_cells i;
            plain = Obs.Group.cell tel.plain_cells i;
            pfall = Obs.Group.cell tel.pfall_cells i;
          }
    in
    let rd =
      {
        reg;
        last_index = 0;
        last_current = -1;
        view_buf = reg.slots.(0).content;
        view_len = -1;
        cells;
      }
    in
    (* A handle claimed long after creation may find slot 0 already
       revoked (its presence from I1 pins it until this reader's first
       release); acquire validates and recovers either way. *)
    acquire rd;
    rd

  let read_view rd =
    let reg = rd.reg in
    let w = M.load reg.current (* R1 *) in
    if w = rd.last_current then begin
      (* R2 hot hit: exact packed-word match, cached view returned
         with no further memory traffic — see {!Arc.Make.read_view}. *)
      match rd.cells with
      | Some c -> c.fast.Obs.Cell.v <- c.fast.Obs.Cell.v + 1
      | None -> ()
    end
    else begin
      let index = Packed.index w in
      if rd.last_index = index then begin
        (* R2: count churn only — still RMW-free; refresh the word. *)
        (match rd.cells with
        | Some c -> c.fast.Obs.Cell.v <- c.fast.Obs.Cell.v + 1
        | None -> ());
        rd.last_current <- w
      end
      else begin
        (match rd.cells with
        | Some c -> c.slow.Obs.Cell.v <- c.slow.Obs.Cell.v + 1
        | None -> ());
        release_and_subscribe rd (* R3-R5 *);
        acquire rd
      end
    end;
    (rd.view_buf, rd.view_len)

  let read_with rd ~f =
    let buffer, len = read_view rd in
    f buffer len

  (* Register_intf.STAMPED — see Arc.  The subscribed slot is pinned,
     so its [seq] cannot be recycled out from under the cached view;
     storage revocation swaps [content] but never touches [seq], and
     the cached view and the stamp still describe the same write. *)
  let read_stamped rd ~f =
    let buffer, len = read_view rd in
    let stamp = M.load rd.reg.slots.(rd.last_index).seq in
    (stamp, f buffer len)

  let probe_stamp reg =
    let index = Packed.index (M.load reg.current) in
    M.load reg.slots.(index).seq

  (* R2' — see {!Arc.Make.read_plain} for the soundness argument.  The
     dynamic wrinkle is the mutable buffer: the scan captures
     [entry.content] once and bounds-checks the loaded size against
     the {e captured} buffer, so a realloc or revocation racing the
     scan can at worst fail validation, never index out of bounds.
     The writer swaps buffers only after storing the fresh begin
     stamp, so a captured-buffer/new-content mix always leaves
     [seq <> seq_end] visible to the validation. *)
  let read_plain_validated rd w ~f =
    let reg = rd.reg in
    let index = Packed.index w in
    let entry = reg.slots.(index) in
    let e1 = M.load entry.seq_end in
    let len = M.load entry.size in
    let buf = entry.content in
    if len >= 0 && len <= M.capacity buf && M.load entry.seq = e1 then begin
      let r = f buf len in
      if
        M.load entry.seq = e1
        && Packed.index (M.load reg.current) = index
      then begin
        (match rd.cells with
        | Some c -> c.plain.Obs.Cell.v <- c.plain.Obs.Cell.v + 1
        | None -> ());
        r
      end
      else begin
        (match rd.cells with
        | Some c -> c.pfall.Obs.Cell.v <- c.pfall.Obs.Cell.v + 1
        | None -> ());
        read_with rd ~f
      end
    end
    else begin
      (match rd.cells with
      | Some c -> c.pfall.Obs.Cell.v <- c.pfall.Obs.Cell.v + 1
      | None -> ());
      read_with rd ~f
    end

  let read_plain rd ~f =
    let reg = rd.reg in
    let w = M.load reg.current in
    if w = rd.last_current then begin
      (* Pinned hot hit, same argument as [read_view] — and revocation
         cannot touch the cached buffer either, since the slot behind
         an unchanged packed word is current, not superseded. *)
      (match rd.cells with
      | Some c -> c.plain.Obs.Cell.v <- c.plain.Obs.Cell.v + 1
      | None -> ());
      f rd.view_buf rd.view_len
    end
    else read_plain_validated rd w ~f

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then
          invalid_arg "Arc_dynamic.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  (* See Arc.slot_free: [last_slot] excludes the current slot (its
     subscribers live in [current]'s count, not r_start/r_end);
     [recover_crash] re-establishes that invariant for a successor
     writer, and quarantined slots stay retired. *)
  let slot_free reg j =
    j <> reg.last_slot
    && (not (List.memq j reg.quarantined))
    && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end

  let find_free reg =
    let proposal =
      let h = M.load reg.hint in
      if h >= 0 then M.store reg.hint (-1);
      h
    in
    if proposal >= 0 && proposal < Array.length reg.slots && slot_free reg proposal
    then begin
      (match reg.tel with
      | Some tel -> Obs.Cell.incr tel.hint_cell
      | None -> ());
      proposal
    end
    else begin
      let n = Array.length reg.slots in
      let rec scan step =
        if step > n then failwith "Arc_dynamic.write: no free slot (invariant violated)"
        else begin
          let j = (reg.last_slot + step) mod n in
          M.cede ();
          if slot_free reg j then j else scan (step + 1)
        end
      in
      scan 1
    end

  (* Grow always; shrink only below half to avoid thrashing on
     small size oscillations. *)
  let needs_realloc entry len =
    let cap = M.capacity entry.content in
    len > cap || len * 2 < cap

  (* Revoke the {e storage} (never the accounting) of slots that have
     been superseded for more than [lease] writes yet are still
     pinned — the signature of a crashed or indefinitely paused
     reader.  The slot stays pinned: presence accounting is what keeps
     the algorithm wait-free and a crashed reader's pin is permanent
     by design (Lemma 4.1 tolerates it: N readers pin at most N of the
     N+2 slots).  What is reclaimed is the buffer, which for the
     dynamic variant is the part whose cost scales with snapshot size.
     A paused-but-alive reader keeps its cached view alive through the
     GC and recovers via [acquire]'s validation on its next
     subscribe. *)
  let reclaim_stale reg ~lease =
    if lease < 0 then
      invalid_arg
        (Printf.sprintf "Arc_dynamic.reclaim_stale: lease = %d (need >= 0)" lease);
    let reclaimed = ref 0 in
    Array.iteri
      (fun j s ->
        if
          j <> reg.last_slot
          && s.superseded_at >= 0
          && reg.writes - s.superseded_at > lease
          && M.load s.r_start <> M.load s.r_end
          && M.load s.size >= 0
        then begin
          (* Marker first, swap second: a reader's [acquire] re-reads
             [size] after reading [content], so it can never validate
             a view that mixes the old length with the empty buffer. *)
          M.store s.size (-1);
          s.content <- M.alloc 0;
          reg.reclaimed <- reg.reclaimed + 1;
          incr reclaimed;
          match reg.tel with
          | Some tel ->
            Ring.record tel.tel_ring ~at:(tel.clock ())
              ~code:Ring.code_reclaim j
              (reg.writes - s.superseded_at)
              0
          | None -> ()
        end)
      reg.slots;
    !reclaimed

  let set_lease reg lease =
    (match lease with
    | Some l when l < 1 ->
      invalid_arg
        (Printf.sprintf "Arc_dynamic.set_lease: lease = %d (need >= 1)" l)
    | _ -> ());
    reg.lease <- lease

  (* [guard] is the epoch-fence hook (Register_intf.FENCEABLE), run
     after the slot is prepared and immediately before the publish —
     see Arc.write_guarded.  An aborted write leaves the free slot
     with counters 0/0 and a valid (non-negative) size, so a later
     write or an I1-laggard's acquire treats it normally. *)
  let write_guarded reg ~guard ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Arc_dynamic.write: bad length";
    if len > reg.capacity then invalid_arg "Arc_dynamic.write: exceeds capacity";
    (* A direct write supersedes anything staged by [write_coalesced] —
       see {!Arc.Make.write_guarded}. *)
    if reg.co_pending > 0 then begin
      let batch = reg.co_pending + 1 in
      reg.co_pending <- 0;
      reg.co_len <- -1;
      reg.co_batches <- reg.co_batches + 1;
      if batch > reg.co_max_batch then reg.co_max_batch <- batch
    end;
    let slot = find_free reg in
    let entry = reg.slots.(slot) in
    (* Begin stamp before any content mutation — buffer swap included —
       so an R2' scan overlapping this preparation can never validate
       (see {!Arc.Make.write_guarded}). *)
    reg.stamp <- reg.stamp + 1;
    M.store entry.seq reg.stamp;
    if needs_realloc entry len then begin
      (* The slot is free: no reader presence is accounted on it, so
         swapping the buffer races with nobody.  Readers holding views
         of the old buffer keep it alive via the GC.  A revoked slot
         (capacity 0) is regrown here, which also clears its -1
         marker via the size store below. *)
      let old_cap = M.capacity entry.content in
      entry.content <- M.alloc len;
      reg.reallocations <- reg.reallocations + 1;
      match reg.tel with
      | Some tel ->
        Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_realloc
          slot old_cap len
      | None -> ()
    end;
    M.write_words entry.content ~src ~len;
    M.store entry.size len;
    M.store entry.seq_end reg.stamp;
    M.store entry.r_start 0;
    M.store entry.r_end 0;
    entry.superseded_at <- -1;
    (* W1.5 crash journal — see Arc.write_guarded. *)
    M.store reg.prefreeze reg.last_slot;
    (try guard ()
     with e ->
       M.store reg.prefreeze (-1);
       raise e);
    let old = M.exchange reg.current (Packed.of_index slot) in
    let old_slot = Packed.index old in
    M.store reg.slots.(old_slot).r_start (Packed.count old);
    reg.slots.(old_slot).superseded_at <- reg.writes;
    reg.last_slot <- slot;
    M.store reg.prefreeze (-1);
    reg.writes <- reg.writes + 1;
    (match reg.tel with
    | Some tel ->
      let at = tel.clock () in
      Ring.record tel.tel_ring ~at ~code:Ring.code_publish slot old_slot 0;
      Ring.record tel.tel_ring ~at ~code:Ring.code_freeze old_slot
        (Packed.count old) 0
    | None -> ());
    match reg.lease with
    | Some l when reg.writes mod l = 0 -> ignore (reclaim_stale reg ~lease:l)
    | _ -> ()

  let write reg ~src ~len = write_guarded reg ~guard:ignore ~src ~len

  (* Write coalescing — see {!Arc.Make}. *)
  let flush_coalesced reg =
    if reg.co_pending > 0 then begin
      let batch = reg.co_pending and len = reg.co_len in
      reg.co_pending <- 0;
      reg.co_len <- -1;
      reg.co_batches <- reg.co_batches + 1;
      if batch > reg.co_max_batch then reg.co_max_batch <- batch;
      write reg ~src:reg.co_buf ~len
    end

  let write_coalesced reg ~max_pending ~max_staleness ~src ~len =
    if max_pending < 1 then
      invalid_arg
        (Printf.sprintf "Arc_dynamic.write_coalesced: max_pending = %d (need >= 1)"
           max_pending);
    if max_staleness < max_pending then
      invalid_arg
        (Printf.sprintf
           "Arc_dynamic.write_coalesced: max_pending = %d exceeds max_staleness = %d"
           max_pending max_staleness);
    if len < 0 || len > Array.length src then
      invalid_arg "Arc_dynamic.write_coalesced: bad length";
    if len > reg.capacity then
      invalid_arg "Arc_dynamic.write_coalesced: exceeds capacity";
    Array.blit src 0 reg.co_buf 0 len;
    reg.co_len <- len;
    reg.co_pending <- reg.co_pending + 1;
    reg.co_absorbed <- reg.co_absorbed + 1;
    if reg.co_pending >= max_pending then flush_coalesced reg

  let pending_writes reg = reg.co_pending
  let coalesced_batches reg = reg.co_batches
  let coalesced_absorbed reg = reg.co_absorbed
  let max_coalesced_batch reg = reg.co_max_batch

  (* Successor-writer recovery — see Arc.recover_crash. *)
  let recover_crash reg =
    let j = M.load reg.prefreeze in
    reg.last_slot <- Packed.index (M.load reg.current);
    (* Stamp resync across writer succession — see Arc.recover_crash. *)
    Array.iter (fun s -> reg.stamp <- max reg.stamp (M.load s.seq)) reg.slots;
    if j >= 0 then begin
      M.store reg.prefreeze (-1);
      if List.memq j reg.quarantined then 0
      else begin
        reg.quarantined <- j :: reg.quarantined;
        1
      end
    end
    else 0

  (* External-evidence quarantine — see Arc.quarantine. *)
  let quarantine reg j =
    if j < 0 || j >= Array.length reg.slots then
      invalid_arg
        (Printf.sprintf "Arc_dynamic.quarantine: slot %d out of range [0, %d)" j
           (Array.length reg.slots));
    if not (List.memq j reg.quarantined) then
      reg.quarantined <- j :: reg.quarantined

  let footprint_words reg =
    Array.fold_left (fun acc s -> acc + M.capacity s.content) 0 reg.slots

  let reallocations reg = reg.reallocations
  let reclaimed reg = reg.reclaimed

  let metrics reg =
    let base =
      [
        Obs.counter "arc_writes_total" ~help:"Completed register writes"
          reg.writes;
        Obs.counter "arc_reallocations_total"
          ~help:"Buffer replacements performed by writes" reg.reallocations;
        Obs.counter "arc_reclaimed_slots_total"
          ~help:"Stale pinned slots whose storage was revoked" reg.reclaimed;
        Obs.gauge "arc_footprint_words"
          ~help:"Words currently allocated across slot buffers"
          (float_of_int (footprint_words reg));
        Obs.counter "arc_coalesced_batches_total"
          ~help:"Coalesced publishes (one exchange per batch)"
          reg.co_batches;
        Obs.counter "arc_coalesced_writes_total"
          ~help:"Writes absorbed into coalescing batches" reg.co_absorbed;
        Obs.gauge "arc_coalesced_max_batch"
          ~help:"Largest coalesced batch published so far"
          (float_of_int reg.co_max_batch);
      ]
    in
    match reg.tel with
    | None -> base
    | Some tel ->
      let per_reader group =
        Array.to_list
          (Array.mapi
             (fun i v ->
               Obs.counter (Obs.Group.name group)
                 ~labels:[ ("reader", string_of_int i) ]
                 ~help:(Obs.Group.help group) v)
             (Obs.Group.per_domain group))
      in
      per_reader tel.fast_hits
      @ per_reader tel.slow_cells
      @ per_reader tel.plain_cells
      @ per_reader tel.pfall_cells
      @ Obs.counter "arc_hint_hits_total"
          ~help:"§3.4 free-slot proposals accepted by the writer"
          (Obs.Cell.get tel.hint_cell)
        :: Obs.counter "arc_trace_events_total"
             ~help:"Slot-state transitions recorded in the trace ring"
             (Ring.recorded tel.tel_ring)
        :: base

  (* Slots currently holding non-empty storage — the dynamic variant's
     footprint in {e slots} rather than words.  The paper's Lemma 4.1
     bounds pinned slots by N, so with reclaim active the live-buffer
     count must stay within N + 2 for the {e admitted} population N —
     the churn soak tracks this against the gate capacity even as the
     arrival population grows unboundedly. *)
  let live_buffers reg =
    Array.fold_left
      (fun acc s -> if M.capacity s.content > 0 then acc + 1 else acc)
      0 reg.slots

  (* Same white-box surface as {!Arc.Make.Debug} — the invariant
     auditors (soak presence audit, gate-bypass control) are written
     against it. *)
  module Debug = struct
    let slots reg = Array.length reg.slots
    let current reg = M.load reg.current
    let r_start reg j = M.load reg.slots.(j).r_start
    let r_end reg j = M.load reg.slots.(j).r_end
    let slot_size reg j = M.load reg.slots.(j).size
    let slot_seq reg j = M.load reg.slots.(j).seq
    let slot_seq_end reg j = M.load reg.slots.(j).seq_end

    (* Negative control for the R2' tests — see {!Arc.Make.Debug}. *)
    let unvalidated_plain rd ~f =
      let reg = rd.reg in
      let index = Packed.index (M.load reg.current) in
      let entry = reg.slots.(index) in
      let len = M.load entry.size in
      let buf = entry.content in
      let len = if len < 0 || len > M.capacity buf then 0 else len in
      f buf len

    (* readers − (Σ_j (r_start j − r_end j) + count current); see
       Arc.Debug.presence_slack for the ledger argument. *)
    let presence_slack reg =
      let frozen = ref 0 in
      Array.iter
        (fun s -> frozen := !frozen + (M.load s.r_start - M.load s.r_end))
        reg.slots;
      reg.readers - (!frozen + Packed.count (M.load reg.current))

    let presence_bound_holds reg = presence_slack reg = 0

    (* Test-only: overwrite the synchronization word, e.g. to place
       the count at the saturation boundary. *)
    let force_current reg w = M.store reg.current w

    let free_slot_exists reg =
      let published = Packed.index (M.load reg.current) in
      let n = Array.length reg.slots in
      let rec go j =
        if j >= n then false
        else if
          j <> published
          && (not (List.memq j reg.quarantined))
          && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end
        then true
        else go (j + 1)
      in
      go 0
  end
end

lib/harness/experiment.ml: Arc_core Arc_mem Arc_report Arc_trace Arc_util Arc_vsched Arc_workload Array Config Count_runner Filename List Printf Registry Sys

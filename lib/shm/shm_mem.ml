(* File-backed shared-memory instance of {!Arc_mem.Mem_intf.S} plus
   the durability/integrity layer underneath it.  See shm_mem.mli for
   the model and shm_layout.ml for the on-file format. *)

module L = Shm_layout

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Hardware atomics on words of the mapping (shm_stubs.c).  OCaml 5's
   [Atomic] covers only heap cells, so cross-process synchronization
   words are reached through __atomic builtins on the Bigarray
   storage.  None of these allocate or raise. *)
external atomic_load_idx : words -> int -> int = "arc_shm_load" [@@noalloc]

external atomic_store_idx : words -> int -> int -> unit = "arc_shm_store"
[@@noalloc]

external atomic_exchange_idx : words -> int -> int -> int = "arc_shm_exchange"
[@@noalloc]

external atomic_fetch_add_idx : words -> int -> int -> int = "arc_shm_fetch_add"
[@@noalloc]

external atomic_cas_idx : words -> int -> int -> int -> bool = "arc_shm_cas"
[@@noalloc]

external atomic_fetch_or_idx : words -> int -> int -> int = "arc_shm_fetch_or"
[@@noalloc]

external atomic_fetch_and_idx : words -> int -> int -> int = "arc_shm_fetch_and"
[@@noalloc]

external copy_in : words -> int -> int array -> int -> unit
  = "arc_shm_write_words"
[@@noalloc]

external copy_out : words -> int -> int array -> int -> unit
  = "arc_shm_read_words"
[@@noalloc]

external blit_idx : words -> int -> int -> int -> unit = "arc_shm_blit"
[@@noalloc]

type mapping = { ba : words; fd : Unix.file_descr; path : string; words : int }

let path m = m.path
let size_words m = m.words
let word_bytes = Sys.word_size / 8

(* Plain (non-atomic) word access — superblock maintenance, the
   allocator, recovery scans, and deliberate corruption injection in
   negative-control tests.  Never part of the live synchronization
   protocol. *)
let unsafe_get m i = Bigarray.Array1.get m.ba i
let unsafe_set m i v = Bigarray.Array1.set m.ba i v

(* Atomic word access by raw index, for harness regions (crash
   write-logs) shared between processes. *)
let atomic_get m i = atomic_load_idx m.ba i
let atomic_set m i v = atomic_store_idx m.ba i v
let atomic_add m i k = atomic_fetch_add_idx m.ba i k

(* Reign-table address arithmetic (layout version 3): deterministic
   from the record base alone, so a recovering process derives every
   cell the same way the creator did, with no in-process state. *)
let align_up x a = (x + a - 1) / a * a
let reign_config_at base = align_up (base + 3) L.line_words
let reign_slot_at base shard = reign_config_at base + (L.line_words * (1 + shard))

(* {1 Lifecycle} *)

let create ~path ~words =
  if words < L.super_words + 2 then
    invalid_arg "Shm_mem.create: mapping too small for a superblock";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  (try Unix.ftruncate fd (words * word_bytes)
   with e ->
     Unix.close fd;
     raise e);
  let ba =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| words |])
  in
  let m = { ba; fd; path; words } in
  (* O_TRUNC + ftruncate leaves the file all-zero; only the non-zero
     superblock words need explicit stores.  The magic is written
     last, with a release store: a creator that dies mid-create leaves
     a file no attach will ever accept. *)
  unsafe_set m L.sb_version L.version;
  unsafe_set m L.sb_words words;
  unsafe_set m L.sb_cursor L.super_words;
  unsafe_set m L.sb_epoch 1;
  unsafe_set m L.sb_clock 1;
  atomic_store_idx m.ba L.sb_magic L.magic;
  m

let attach ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Unix.close fd;
        failwith ("Shm_mem.attach: " ^ msg))
      fmt
  in
  let bytes = (Unix.fstat fd).Unix.st_size in
  if bytes mod word_bytes <> 0 || bytes / word_bytes < L.super_words then
    fail "%s is not a register mapping (%d bytes)" path bytes;
  let words = bytes / word_bytes in
  let ba =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| words |])
  in
  let m = { ba; fd; path; words } in
  if atomic_load_idx ba L.sb_magic <> L.magic then
    fail "%s: bad magic (not a register mapping, or creation crashed)" path;
  if unsafe_get m L.sb_version <> L.version then
    fail "%s: layout version %d, expected %d" path (unsafe_get m L.sb_version)
      L.version;
  if unsafe_get m L.sb_words <> words then
    fail "%s: superblock records %d words but the file holds %d" path
      (unsafe_get m L.sb_words) words;
  let cursor = unsafe_get m L.sb_cursor in
  if cursor < L.super_words || cursor > words then
    fail "%s: allocation cursor %d out of range" path cursor;
  (* Fabric mappings carry a reign table; validate the pointer and the
     table's extent BEFORE anyone reads an election word through it.
     This runs after the version gate above, so a version-2 mapping is
     rejected without a single table byte being interpreted. *)
  let reign = unsafe_get m L.sb_reign in
  if reign <> 0 then begin
    if reign < L.super_words || reign + 3 > cursor then
      fail "%s: reign table pointer %d out of range" path reign;
    if unsafe_get m (reign + L.rec_tag) <> L.tag_reign then
      fail "%s: reign table pointer %d does not name a reign record" path reign;
    let shards = unsafe_get m (reign + L.reign_nshards) in
    let size = unsafe_get m (reign + L.rec_size) in
    if
      shards < 1
      || reign_slot_at reign shards <> reign + size
      || reign + size > cursor
    then fail "%s: truncated reign table (%d shards in %d words)" path shards size
  end;
  m

let close m = Unix.close m.fd

(* {1 Superblock accessors} *)

let tick m = atomic_fetch_add_idx m.ba L.sb_clock 1
let clock m = atomic_load_idx m.ba L.sb_clock
let epoch m = atomic_load_idx m.ba L.sb_epoch
let epoch_cell (_ : mapping) = L.sb_epoch
let election m = atomic_load_idx m.ba L.sb_election
let election_cell (_ : mapping) = L.sb_election
let fence_at m = atomic_load_idx m.ba L.sb_fence_at
let publish_seq m = atomic_load_idx m.ba L.sb_publish

let set_geometry m ~readers ~capacity =
  unsafe_set m L.sb_geom_readers readers;
  unsafe_set m L.sb_geom_capacity capacity;
  unsafe_set m L.sb_geom_nslots (readers + 2)

let geometry m =
  let readers = unsafe_get m L.sb_geom_readers in
  if readers = 0 then None
  else
    Some
      ( readers,
        unsafe_get m L.sb_geom_capacity,
        unsafe_get m L.sb_geom_nslots )

let set_harness_region m base = unsafe_set m L.sb_harness base
let harness_region m = unsafe_get m L.sb_harness

(* {1 Reign table (fabric mappings, layout version 3)} *)

let reign_table m = unsafe_get m L.sb_reign

let reign_shards m =
  let base = reign_table m in
  if base = 0 then 0 else unsafe_get m (base + L.reign_nshards)

let reign_exn m =
  let base = reign_table m in
  if base = 0 then
    invalid_arg "Shm_mem: mapping has no reign table (not a fabric mapping)";
  base

let check_shard m base shard =
  let n = unsafe_get m (base + L.reign_nshards) in
  if shard < 0 || shard >= n then
    invalid_arg
      (Printf.sprintf "Shm_mem: shard %d out of range (table holds %d)" shard n)

let config_epoch_cell m = reign_config_at (reign_exn m)
let config_epoch m = atomic_load_idx m.ba (config_epoch_cell m)

let shard_election_cell m ~shard =
  let base = reign_exn m in
  check_shard m base shard;
  reign_slot_at base shard + L.rs_election

let shard_election m ~shard = atomic_load_idx m.ba (shard_election_cell m ~shard)

let shard_epoch_cell m ~shard =
  let base = reign_exn m in
  check_shard m base shard;
  reign_slot_at base shard + L.rs_epoch

let shard_epoch m ~shard = atomic_load_idx m.ba (shard_epoch_cell m ~shard)

let shard_fence_cell m ~shard =
  let base = reign_exn m in
  check_shard m base shard;
  reign_slot_at base shard + L.rs_fence

let shard_fence_at m ~shard = atomic_load_idx m.ba (shard_fence_cell m ~shard)

(* {1 Allocator}

   Creator-only, pre-sharing: records are carved off a bump cursor
   with plain stores, so all allocation must happen before the mapping
   is shared with another process (fork or attach).  The register's
   whole footprint is allocated by [create]; nothing in the live
   protocol allocates. *)

let bump m n =
  let base = unsafe_get m L.sb_cursor in
  if base + n > m.words then
    invalid_arg
      (Printf.sprintf
         "Shm_mem: mapping exhausted (need %d words at %d, mapping holds %d)" n
         base m.words);
  unsafe_set m L.sb_cursor (base + n);
  base

let count_record m sb_idx = unsafe_set m sb_idx (unsafe_get m sb_idx + 1)

let alloc_cell m v =
  let base = bump m 3 in
  unsafe_set m (base + L.rec_tag) L.tag_cell;
  unsafe_set m (base + L.rec_size) 3;
  unsafe_set m (base + L.cell_value) v;
  count_record m L.sb_cells;
  base + L.cell_value

(* Contended cells: the value is placed at a 128-byte-aligned word and
   the record extends to the end of that block, so the hot word owns
   its cache line (plus the adjacent-prefetch pair) — the mmap analogue
   of Real_mem's spacer boxing. *)
let alloc_cell_contended m v =
  let base = unsafe_get m L.sb_cursor in
  let value = align_up (base + 2) L.line_words in
  let stop = value + L.line_words in
  let base = bump m (stop - base) in
  unsafe_set m (base + L.rec_tag) L.tag_cell;
  unsafe_set m (base + L.rec_size) (stop - base);
  unsafe_set m value v;
  count_record m L.sb_cells;
  value

let alloc_cell_pair m v1 v2 =
  let base = unsafe_get m L.sb_cursor in
  let value = align_up (base + 2) L.line_words in
  let stop = value + L.line_words in
  let base = bump m (stop - base) in
  unsafe_set m (base + L.rec_tag) L.tag_cell;
  unsafe_set m (base + L.rec_size) (stop - base);
  unsafe_set m value v1;
  unsafe_set m (value + 1) v2;
  count_record m L.sb_cells;
  (value, value + 1)

let alloc_buffer m cap =
  if cap < 0 then invalid_arg "Shm_mem.alloc: negative size";
  let base = bump m (L.buf_header + cap) in
  unsafe_set m (base + L.rec_tag) L.tag_buffer;
  unsafe_set m (base + L.rec_size) (L.buf_header + cap);
  unsafe_set m (base + L.buf_cap) cap;
  unsafe_set m (base + L.buf_state) L.state_live;
  count_record m L.sb_buffers;
  base

let alloc_raw m n =
  if n < 0 then invalid_arg "Shm_mem.alloc_raw: negative size";
  let base = bump m (2 + n) in
  unsafe_set m (base + L.rec_tag) L.tag_raw;
  unsafe_set m (base + L.rec_size) (2 + n);
  base + 2

(* Reign table: one per mapping, creator-only like every record.  The
   configuration epoch and the per-shard epochs start at 1 — mirroring
   [sb_epoch]'s convention that epoch 0 means "before any reign" —
   and every election word starts at {!Arc_util.Term_vote.none}
   (which is 0, so the zeroed file already holds it). *)
let alloc_reign_table m ~shards =
  if shards < 1 then invalid_arg "Shm_mem.alloc_reign_table: shards must be >= 1";
  if reign_table m <> 0 then
    invalid_arg "Shm_mem.alloc_reign_table: mapping already holds a reign table";
  let base = unsafe_get m L.sb_cursor in
  let stop = reign_slot_at base shards in
  let base = bump m (stop - base) in
  unsafe_set m (base + L.rec_tag) L.tag_reign;
  unsafe_set m (base + L.rec_size) (stop - base);
  unsafe_set m (base + L.reign_nshards) shards;
  unsafe_set m (reign_config_at base) 1;
  for shard = 0 to shards - 1 do
    unsafe_set m (reign_slot_at base shard + L.rs_epoch) 1
  done;
  unsafe_set m L.sb_reign base;
  base

(* {1 Checksums} *)

let cksum_header len epoch seq =
  L.cksum_mix (L.cksum_mix (L.cksum_mix L.cksum_seed len) epoch) seq

let cksum_of_src src len epoch seq =
  let c = ref (cksum_header len epoch seq) in
  for i = 0 to len - 1 do
    c := L.cksum_mix !c src.(i)
  done;
  !c

let cksum_of_mapping m base len epoch seq =
  let c = ref (cksum_header len epoch seq) in
  for i = 0 to len - 1 do
    c := L.cksum_mix !c (unsafe_get m (base + L.buf_header + i))
  done;
  !c

(* {1 The Mem_intf.S instance} *)

let mem m : (module Arc_mem.Mem_intf.S with type atomic = int) =
  (module struct
    let name = "shm"

    type atomic = int

    let atomic v = alloc_cell m v
    let atomic_contended v = alloc_cell_contended m v
    let atomic_contended_pair v1 v2 = alloc_cell_pair m v1 v2
    let load i = atomic_load_idx m.ba i
    let store i v = atomic_store_idx m.ba i v
    let exchange i v = atomic_exchange_idx m.ba i v
    let fetch_and_add i k = atomic_fetch_add_idx m.ba i k
    let add_and_fetch i k = atomic_fetch_add_idx m.ba i k + k
    let incr i = ignore (atomic_fetch_add_idx m.ba i 1)
    let compare_and_set i old desired = atomic_cas_idx m.ba i old desired
    let fetch_and_or i mask = atomic_fetch_or_idx m.ba i mask
    let fetch_and_and i mask = atomic_fetch_and_idx m.ba i mask

    type buffer = int (* record base word index *)

    let alloc words = alloc_buffer m words
    let capacity b = unsafe_get m (b + L.buf_cap)

    (* The durability protocol: every multi-word store is bracketed by
       a publish-sequence stamp ([buf_begin] before the copy,
       [buf_end] after) and covered by a checksum, so a recovering
       process can convict a SIGKILL-torn copy from the bytes alone.
       Single-writer per buffer (the register's free-slot discipline),
       so plain program order is all the bracketing needs: a killed
       process loses no executed stores — the pages stay in the page
       cache — it only stops executing. *)
    let write_words b ~src ~len =
      if len < 0 || len > Array.length src || len > capacity b then
        invalid_arg "Shm_mem.write_words: bad length";
      let seq = 1 + atomic_fetch_add_idx m.ba L.sb_publish 1 in
      let epoch = atomic_load_idx m.ba L.sb_epoch in
      atomic_store_idx m.ba (b + L.buf_epoch) epoch;
      atomic_store_idx m.ba (b + L.buf_begin) seq;
      atomic_store_idx m.ba (b + L.buf_len) len;
      copy_in m.ba (b + L.buf_header) src len;
      atomic_store_idx m.ba (b + L.buf_cksum) (cksum_of_src src len epoch seq);
      atomic_store_idx m.ba (b + L.buf_end) seq

    let read_word b i = unsafe_get m (b + L.buf_header + i)

    let read_words b ~dst ~len =
      if len < 0 || len > Array.length dst || len > capacity b then
        invalid_arg "Shm_mem.read_words: bad length";
      copy_out m.ba (b + L.buf_header) dst len

    (* Raw payload copy for copy-based baselines; it does not publish
       a trailer, so blit targets read as never-published to
       [recover] — the integrity layer covers the register's
       write path, which never blits. *)
    let blit src dst ~len =
      if len < 0 || len > capacity src || len > capacity dst then
        invalid_arg "Shm_mem.blit: bad length";
      blit_idx m.ba (src + L.buf_header) (dst + L.buf_header) len

    let cede () = Domain.cpu_relax ()
  end)

(* {1 Buffer inspection} *)

type buffer_info = {
  ordinal : int;
  base : int;
  cap : int;
  state : int;
  len : int;
  bepoch : int;
  begin_seq : int;
  end_seq : int;
  cksum : int;
}

let buffer_info m ~ordinal ~base =
  {
    ordinal;
    base;
    cap = unsafe_get m (base + L.buf_cap);
    state = unsafe_get m (base + L.buf_state);
    len = unsafe_get m (base + L.buf_len);
    bepoch = unsafe_get m (base + L.buf_epoch);
    begin_seq = unsafe_get m (base + L.buf_begin);
    end_seq = unsafe_get m (base + L.buf_end);
    cksum = unsafe_get m (base + L.buf_cksum);
  }

(* Walk the record arena, applying [cell], [buffer], [raw] per record.
   Returns an [Error] on any structural damage — an unwalkable arena
   means the superblock itself cannot be trusted. *)
let walk m ~cell ~buffer ~raw =
  let cursor = unsafe_get m L.sb_cursor in
  if cursor < L.super_words || cursor > m.words then
    Error (Printf.sprintf "allocation cursor %d out of range" cursor)
  else begin
    let exception Stop of string in
    let cells = ref 0 and buffers = ref 0 and reigns = ref 0 in
    try
      let pos = ref L.super_words in
      while !pos < cursor do
        let base = !pos in
        let tag = unsafe_get m (base + L.rec_tag) in
        let size = unsafe_get m (base + L.rec_size) in
        if size < 2 || base + size > cursor then
          raise
            (Stop
               (Printf.sprintf "corrupt record at word %d (size %d)" base size));
        if tag = L.tag_cell then begin
          cell base;
          incr cells
        end
        else if tag = L.tag_buffer then begin
          buffer ~ordinal:!buffers ~base;
          incr buffers
        end
        else if tag = L.tag_raw then raw base
        else if tag = L.tag_reign then begin
          let shards = unsafe_get m (base + L.reign_nshards) in
          if shards < 1 || reign_slot_at base shards <> base + size then
            raise
              (Stop
                 (Printf.sprintf
                    "truncated reign table at word %d (%d shards in %d words)"
                    base shards size));
          if unsafe_get m L.sb_reign <> base then
            raise
              (Stop
                 (Printf.sprintf
                    "reign table at word %d but the superblock points at %d"
                    base (unsafe_get m L.sb_reign)));
          incr reigns
        end
        else
          raise
            (Stop (Printf.sprintf "unknown record tag %#x at word %d" tag base));
        pos := base + size
      done;
      if unsafe_get m L.sb_reign <> 0 && !reigns = 0 then
        raise (Stop "superblock points at a reign table the arena does not hold");
      if !cells <> unsafe_get m L.sb_cells then
        raise
          (Stop
             (Printf.sprintf "superblock records %d cells, arena holds %d"
                (unsafe_get m L.sb_cells) !cells));
      if !buffers <> unsafe_get m L.sb_buffers then
        raise
          (Stop
             (Printf.sprintf "superblock records %d buffers, arena holds %d"
                (unsafe_get m L.sb_buffers) !buffers));
      Ok ()
    with Stop msg -> Error msg
  end

let iter_buffers m f =
  match
    walk m
      ~cell:(fun _ -> ())
      ~buffer:(fun ~ordinal ~base -> f (buffer_info m ~ordinal ~base))
      ~raw:(fun _ -> ())
  with
  | Ok () -> ()
  | Error msg -> failwith ("Shm_mem.iter_buffers: " ^ msg)

(* {1 Recovery} *)

type reason = Torn | Checksum | Bad_length

let reason_to_string = function
  | Torn -> "torn"
  | Checksum -> "checksum"
  | Bad_length -> "bad-length"

type conviction = { ordinal : int; at : int; seq : int; why : reason }

type recovery = {
  convicted : conviction list;
  intact : int;
  unpublished : int;
  quarantined_before : int;
  new_epoch : int;
  recovery_fence : int;
  last_seq : int;
}

(* Classify one buffer from its bytes alone.  [None] = intact-or-empty;
   [Some reason] = convict. *)
let classify m info =
  if info.begin_seq = 0 && info.end_seq = 0 then None (* never published *)
  else if info.begin_seq <> info.end_seq then Some Torn
  else if info.len < 0 || info.len > info.cap then Some Bad_length
  else if
    cksum_of_mapping m info.base info.len info.bepoch info.begin_seq
    <> info.cksum
  then Some Checksum
  else None

(* Process-wide recovery telemetry ({!Arc_obs.Obs.Cell}s, plain
   single-writer words): [recover] runs on the recovering process's
   startup path, effectively single-threaded, so the cells are exact.
   Cumulative across every mapping this process recovers, which is
   what the crash-campaign exposition wants. *)
module Tel = struct
  module Obs = Arc_obs.Obs

  let recoveries = Obs.Cell.create ()
  let failures = Obs.Cell.create ()
  let convictions = Obs.Cell.create ()
  let torn = Obs.Cell.create ()
  let checksum = Obs.Cell.create ()
  let bad_length = Obs.Cell.create ()
  let intact = Obs.Cell.create ()
end

let metrics () =
  let open Arc_obs.Obs in
  [
    counter "shm_recoveries_total"
      ~help:"Successful crash-recovery scans of a mapping"
      (Cell.get Tel.recoveries);
    counter "shm_recovery_failures_total"
      ~help:"Recovery scans rejected (unrecoverable mapping)"
      (Cell.get Tel.failures);
    counter "shm_convictions_total"
      ~labels:[ ("reason", "torn") ]
      ~help:"Buffers convicted and quarantined by recovery, by evidence"
      (Cell.get Tel.torn);
    counter "shm_convictions_total"
      ~labels:[ ("reason", "checksum") ]
      (Cell.get Tel.checksum);
    counter "shm_convictions_total"
      ~labels:[ ("reason", "bad-length") ]
      (Cell.get Tel.bad_length);
    counter "shm_intact_buffers_total"
      ~help:"Buffers that passed the integrity scan" (Cell.get Tel.intact);
  ]

let reset_metrics () =
  List.iter Arc_obs.Obs.Cell.reset
    [
      Tel.recoveries;
      Tel.failures;
      Tel.convictions;
      Tel.torn;
      Tel.checksum;
      Tel.bad_length;
      Tel.intact;
    ]

(* The scan engine shared by whole-mapping and shard-scoped recovery.
   [in_range] selects the buffer ordinals this recovery is responsible
   for; out-of-range buffers are not even classified — in a fabric
   mapping they belong to OTHER shards whose writers may be mid-copy
   right now, so a transiently torn trailer there is live traffic, not
   evidence.  [epoch_idx]/[fence_idx] name the epoch word this
   recovery bumps and the fence word it stamps: the superblock pair
   for a single-register mapping, the shard's reign-table slot for a
   fabric shard. *)
let recover_scan_in m ~in_range ~epoch_idx ~fence_idx =
  let sb_epoch_now = unsafe_get m L.sb_epoch in
  let convicted = ref [] in
  let intact = ref 0
  and unpublished = ref 0
  and quarantined_before = ref 0
  and last_seq = ref 0
  and stale = ref None in
  let buffer ~ordinal ~base =
    if in_range ordinal then begin
      let info = buffer_info m ~ordinal ~base in
      (* A trailer stamped with an epoch the superblock has not reached
         convicts the superblock, not the buffer: this mapping is an
         older copy of a file that lived on — its free-slot and fence
         state cannot be trusted at all. *)
      if info.bepoch > sb_epoch_now && !stale = None then
        stale :=
          Some
            (Printf.sprintf
               "stale superblock: buffer %d carries epoch %d, superblock at %d"
               ordinal info.bepoch sb_epoch_now);
      if info.state = L.state_quarantined then incr quarantined_before
      else
        match classify m info with
        | None ->
            if info.end_seq = 0 then incr unpublished
            else begin
              incr intact;
              if info.end_seq > !last_seq then last_seq := info.end_seq
            end
        | Some why ->
            unsafe_set m (base + L.buf_state) L.state_quarantined;
            convicted :=
              { ordinal; at = base; seq = info.begin_seq; why } :: !convicted
    end
  in
  match
    walk m ~cell:(fun _ -> ()) ~buffer ~raw:(fun _ -> ())
  with
  | Error _ as e -> e
  | Ok () -> (
      match !stale with
      | Some msg -> Error msg
      | None ->
          (* The scanned slots are structurally sound and every damaged
             one is quarantined: open a new writer epoch and fence the
             crashed one at the current shared-clock instant, so the
             crash-aware checker can bound when the pending write
             could still have taken effect. *)
          let new_epoch = 1 + atomic_fetch_add_idx m.ba epoch_idx 1 in
          let recovery_fence = tick m in
          atomic_store_idx m.ba fence_idx recovery_fence;
          Ok
            {
              convicted = List.rev !convicted;
              intact = !intact;
              unpublished = !unpublished;
              quarantined_before = !quarantined_before;
              new_epoch;
              recovery_fence;
              last_seq = !last_seq;
            })

let recover_scan_checked m =
  recover_scan_in m
    ~in_range:(fun _ -> true)
    ~epoch_idx:L.sb_epoch ~fence_idx:L.sb_fence_at

let recover_scan m =
  (* Version gate before any interpretation: a pre-bump mapping lays
     out the same superblock words but never carried the election word,
     so reading word 14 as a term∥vote state would fabricate election
     history that no process ever voted for.  Convict the mapping as
     stale instead of misreading it.  (A version {e ahead} of ours is
     just as unreadable: some newer layout we cannot interpret.) *)
  let recorded_version = unsafe_get m L.sb_version in
  if recorded_version <> L.version then
    Error
      (Printf.sprintf
         "stale layout: mapping records version %d, this build reads version \
          %d — refusing to reinterpret its superblock"
         recorded_version L.version)
  else recover_scan_checked m

let recover m =
  match recover_scan m with
  | Error _ as e ->
      Arc_obs.Obs.Cell.incr Tel.failures;
      e
  | Ok r ->
      Arc_obs.Obs.Cell.incr Tel.recoveries;
      Arc_obs.Obs.Cell.add Tel.convictions (List.length r.convicted);
      Arc_obs.Obs.Cell.add Tel.intact r.intact;
      List.iter
        (fun c ->
          Arc_obs.Obs.Cell.incr
            (match c.why with
            | Torn -> Tel.torn
            | Checksum -> Tel.checksum
            | Bad_length -> Tel.bad_length))
        r.convicted;
      Ok r

(* Shard-scoped recovery for fabric mappings: the §6d pipeline run by
   a shard's elected successor over that shard's slots only.  The
   mapping interleaves every shard's buffers in one arena (register r
   owns ordinals [r·nslots, (r+1)·nslots)), and the OTHER shards'
   writers are alive while this one recovers — so the scan is scoped,
   and the epoch bump and fence stamp land in the shard's reign-table
   slot, not the superblock pair. *)
let recover_shard m ~shard =
  let scan =
    let recorded_version = unsafe_get m L.sb_version in
    if recorded_version <> L.version then
      Error
        (Printf.sprintf
           "stale layout: mapping records version %d, this build reads version \
            %d — refusing to reinterpret its superblock"
           recorded_version L.version)
    else if reign_table m = 0 then
      Error "recover_shard: mapping has no reign table (not a fabric mapping)"
    else if shard < 0 || shard >= reign_shards m then
      Error
        (Printf.sprintf "recover_shard: shard %d out of range (table holds %d)"
           shard (reign_shards m))
    else
      match geometry m with
      | None -> Error "recover_shard: mapping records no register geometry"
      | Some (_, _, nslots) ->
          let lo = shard * nslots and hi = (shard + 1) * nslots in
          recover_scan_in m
            ~in_range:(fun ordinal -> ordinal >= lo && ordinal < hi)
            ~epoch_idx:(shard_epoch_cell m ~shard)
            ~fence_idx:(shard_fence_cell m ~shard)
  in
  match scan with
  | Error _ as e ->
      Arc_obs.Obs.Cell.incr Tel.failures;
      e
  | Ok r ->
      Arc_obs.Obs.Cell.incr Tel.recoveries;
      Arc_obs.Obs.Cell.add Tel.convictions (List.length r.convicted);
      Arc_obs.Obs.Cell.add Tel.intact r.intact;
      List.iter
        (fun c ->
          Arc_obs.Obs.Cell.incr
            (match c.why with
            | Torn -> Tel.torn
            | Checksum -> Tel.checksum
            | Bad_length -> Tel.bad_length))
        r.convicted;
      Ok r

let read_latest m =
  let best = ref None in
  iter_buffers m (fun info ->
      if
        info.state = L.state_live && info.end_seq > 0 && classify m info = None
      then
        match !best with
        | Some (seq, _) when seq >= info.end_seq -> ()
        | _ -> best := Some (info.end_seq, info));
  match !best with
  | None -> None
  | Some (seq, info) ->
      let payload = Array.make info.len 0 in
      copy_out m.ba (info.base + L.buf_header) payload info.len;
      Some (seq, payload)

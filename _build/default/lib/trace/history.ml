type kind = Read | Write

type event = {
  kind : kind;
  thread : int;
  seq : int;
  invoked : int;
  returned : int;
}

let event kind ~thread ~seq ~invoked ~returned =
  if returned < invoked then invalid_arg "History.event: returned before invoked";
  if seq < 0 then invalid_arg "History.event: negative sequence";
  { kind; thread; seq; invoked; returned }

let pp_event ppf e =
  Format.fprintf ppf "@[<h>%s(thread=%d, seq=%d, [%d,%d])@]"
    (match e.kind with Read -> "read" | Write -> "write")
    e.thread e.seq e.invoked e.returned

type t = { all : event list; rds : event list; wrs : event list }

let by_invocation a b =
  match compare a.invoked b.invoked with 0 -> compare a.returned b.returned | c -> c

let by_seq a b = compare a.seq b.seq

let of_events evs =
  let all = List.sort by_invocation evs in
  let rds = List.filter (fun e -> e.kind = Read) all in
  let wrs = List.sort by_seq (List.filter (fun e -> e.kind = Write) all) in
  { all; rds; wrs }

let events t = t.all
let reads t = t.rds
let writes t = t.wrs
let size t = List.length t.all

module Recorder = struct
  type cell = {
    kinds : kind array;
    seqs : int array;
    invokes : int array;
    returns : int array;
    mutable len : int;
    mutable dropped : int;
  }

  type recorder = { cells : cell array; capacity : int }

  let create ~threads ~capacity =
    if threads < 1 then invalid_arg "Recorder.create: no threads";
    if capacity < 1 then invalid_arg "Recorder.create: no capacity";
    let fresh () =
      {
        kinds = Array.make capacity Read;
        seqs = Array.make capacity 0;
        invokes = Array.make capacity 0;
        returns = Array.make capacity 0;
        len = 0;
        dropped = 0;
      }
    in
    { cells = Array.init threads (fun _ -> fresh ()); capacity }

  let record r ~thread kind ~seq ~invoked ~returned =
    let c = r.cells.(thread) in
    if c.len >= r.capacity then c.dropped <- c.dropped + 1
    else begin
      let i = c.len in
      c.kinds.(i) <- kind;
      c.seqs.(i) <- seq;
      c.invokes.(i) <- invoked;
      c.returns.(i) <- returned;
      c.len <- i + 1
    end

  let dropped r = Array.fold_left (fun acc c -> acc + c.dropped) 0 r.cells

  let history r =
    let evs = ref [] in
    Array.iteri
      (fun thread c ->
        for i = c.len - 1 downto 0 do
          evs :=
            event c.kinds.(i) ~thread ~seq:c.seqs.(i) ~invoked:c.invokes.(i)
              ~returned:c.returns.(i)
            :: !evs
        done)
      r.cells;
    of_events !evs
end

let algorithm = "peterson"

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type shared_buf = { size : M.atomic; content : M.buffer }

  type t = {
    buff1 : shared_buf;
    buff2 : shared_buf;
    copybuff : shared_buf array;  (* one per reader *)
    wflag : M.atomic;  (* 1 while the writer is between buff1 start and switch drop *)
    switch : M.atomic;  (* toggles once per write *)
    reading : M.atomic array;  (* handshake: reader announces by toggling *)
    writing : M.atomic array;  (* writer acknowledges by matching *)
    readers : int;
    capacity : int;
  }

  type reader = {
    reg : t;
    id : int;
    scratch1 : M.buffer;  (* private copies of buff1 / buff2 *)
    scratch2 : M.buffer;
    mutable scratch1_len : int;
    mutable scratch2_len : int;
  }

  let algorithm = algorithm

  let caps =
    {
      Arc_core.Register_intf.wait_free = true;
      zero_copy = false (* reads return a validated private copy *);
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let fresh_buf capacity = { size = M.atomic 0; content = M.alloc capacity }

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Peterson.create: need at least one reader";
    if capacity < 1 then invalid_arg "Peterson.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Peterson.create: init too long";
    let fill b =
      M.write_words b.content ~src:init ~len:(Array.length init);
      M.store b.size (Array.length init)
    in
    let reg =
      {
        buff1 = fresh_buf capacity;
        buff2 = fresh_buf capacity;
        copybuff = Array.init readers (fun _ -> fresh_buf capacity);
        (* The dirtiness words are loaded by every reader on every
           read while the writer toggles them; the handshake words
           pair one reader against the writer.  Contended allocation
           keeps each of these hot words — in particular the
           per-reader [reading]/[writing] cells, which an array of
           plain atomics would pack onto shared lines — from
           false-sharing with its neighbours. *)
        wflag = M.atomic_contended 0;
        switch = M.atomic_contended 0;
        reading = Array.init readers (fun _ -> M.atomic_contended 0);
        writing = Array.init readers (fun _ -> M.atomic_contended 0);
        readers;
        capacity;
      }
    in
    fill reg.buff1;
    fill reg.buff2;
    Array.iter fill reg.copybuff;
    reg

  let reader reg i =
    if i < 0 || i >= reg.readers then
      invalid_arg "Peterson.reader: identity out of range";
    {
      reg;
      id = i;
      scratch1 = M.alloc reg.capacity;
      scratch2 = M.alloc reg.capacity;
      scratch1_len = 0;
      scratch2_len = 0;
    }

  (* Copy a possibly-being-written shared buffer into a private
     scratch.  The copied words may be torn; the caller's dirtiness
     protocol decides whether the copy is usable.  The size word is
     sampled first and clamped so a torn size can never overrun. *)
  let unsafe_copy (src : shared_buf) dst capacity =
    let len = M.load src.size in
    let len = if len < 0 then 0 else if len > capacity then capacity else len in
    M.blit src.content dst ~len;
    len

  let read_with rd ~f =
    let reg = rd.reg in
    let my_reading = reg.reading.(rd.id) in
    let my_writing = reg.writing.(rd.id) in
    (* Announce: make reading ≠ writing so an overlapping writer must
       acknowledge us (and refresh our copybuff first). *)
    M.store my_reading (1 - M.load my_writing);
    let wf1 = M.load reg.wflag in
    let sw1 = M.load reg.switch in
    rd.scratch1_len <- unsafe_copy reg.buff1 rd.scratch1 reg.capacity;
    let wf2 = M.load reg.wflag in
    let sw2 = M.load reg.switch in
    rd.scratch2_len <- unsafe_copy reg.buff2 rd.scratch2 reg.capacity;
    if M.load my_writing = M.load my_reading then begin
      (* A complete write overlapped this read and acknowledged the
         announce; its private copy is stable until we announce again. *)
      let cb = reg.copybuff.(rd.id) in
      let len = unsafe_copy cb rd.scratch1 reg.capacity in
      rd.scratch1_len <- len;
      f rd.scratch1 len
    end
    else if sw1 <> sw2 || wf1 = 1 || wf2 = 1 then
      (* The buff1 copy raced a writer; at most one write overlapped
         (no acknowledge), so the later buff2 copy is clean. *)
      f rd.scratch2 rd.scratch2_len
    else f rd.scratch1 rd.scratch1_len

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then invalid_arg "Peterson.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Peterson.write: bad length";
    if len > reg.capacity then invalid_arg "Peterson.write: exceeds capacity";
    M.store reg.wflag 1;
    M.write_words reg.buff1.content ~src ~len;
    M.store reg.buff1.size len;
    M.store reg.switch (1 - M.load reg.switch);
    M.store reg.wflag 0;
    for i = 0 to reg.readers - 1 do
      let announced = M.load reg.reading.(i) in
      if announced <> M.load reg.writing.(i) then begin
        (* Reader i is mid-read: refresh its private copy, then
           acknowledge.  Order matters — the reader only trusts the
           copy after seeing the acknowledge. *)
        M.write_words reg.copybuff.(i).content ~src ~len;
        M.store reg.copybuff.(i).size len;
        M.store reg.writing.(i) announced
      end;
      M.cede ()
    done;
    M.write_words reg.buff2.content ~src ~len;
    M.store reg.buff2.size len
end

(** SplitMix64 pseudo-random number generator (Steele, Lea, Flood;
    OOPSLA 2014).

    Deterministic, seedable, and cheap — used everywhere randomness is
    needed so that every experiment and every schedule exploration is
    reproducible from a printed seed.  Each generator is an
    independent stream; [split] derives a new statistically
    independent stream, which lets each fiber / domain own a private
    generator without contention. *)

type t

val create : int64 -> t
(** Fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** Convenience seeding from a native int. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** Derive a statistically independent child stream, advancing the
    parent. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

type t = {
  parties : int;
  arrived : int Atomic.t;
  sense : bool Atomic.t;
  claimed : int Atomic.t;
}

type handle = { barrier : t; mutable local_sense : bool }

let create ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties < 1";
  { parties; arrived = Atomic.make 0; sense = Atomic.make false; claimed = Atomic.make 0 }

let join barrier =
  if Atomic.fetch_and_add barrier.claimed 1 >= barrier.parties then
    failwith "Barrier.join: too many parties";
  { barrier; local_sense = false }

let wait h =
  let b = h.barrier in
  h.local_sense <- not h.local_sense;
  if Atomic.fetch_and_add b.arrived 1 = b.parties - 1 then begin
    Atomic.set b.arrived 0;
    Atomic.set b.sense h.local_sense
  end
  else
    while Atomic.get b.sense <> h.local_sense do
      Domain.cpu_relax ()
    done

(** Register payloads for the experiments and the correctness tests.

    Every snapshot is stamped with the write's sequence number in a
    way that covers {e every word}: word [i] of write [k] holds
    [k lxor h i] for a fixed word-index hash [h].  Then

    - the observed sequence number can be decoded from any snapshot
      (the checker's input, see {!Arc_trace}),
    - a torn read — words from two different writes, or from the
      wrong offset — fails validation with overwhelming probability,
      turning memory-safety-but-torn bugs into test failures. *)

module Make (M : Arc_mem.Mem_intf.S) : sig
  val stamp : int array -> seq:int -> len:int -> unit
  (** Fill [src.(0..len-1)] with the stamped payload of write [seq].
      @raise Invalid_argument on bad length or negative seq. *)

  val decode_seq : M.buffer -> int
  (** Sequence number claimed by word 0 of a snapshot (requires a
      snapshot of at least one word). *)

  val validate : M.buffer -> len:int -> (int, string) result
  (** Check every word of the snapshot against the seq claimed by
      word 0; [Ok seq] or a description of the first torn word. *)

  val decode_words : int array -> int
  (** Sequence number claimed by word 0 of an already-copied plain
      array — meaningful even when {!validate_words} rejects it, so a
      torn vector can still be attributed to a write. *)

  val validate_words : int array -> len:int -> (int, string) result
  (** Same check over an already-copied plain array. *)

  val scan : M.buffer -> len:int -> int
  (** Touch every word and fold them — the read-side work of the
      paper's processing workload ("a read scans the whole content of
      the retrieved buffer"). *)
end

(** The paper's three register sizes (Fig. 1–3), in 8-byte words. *)
val size_4kb : int

val size_32kb : int
val size_128kb : int
val paper_sizes : (string * int) list

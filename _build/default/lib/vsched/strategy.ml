module Splitmix = Arc_util.Splitmix

type decision = Run of int | Postpone of int * int

type t = {
  name : string;
  pick : step:int -> runnable:(unit -> int array * int) -> decision;
}

let name t = t.name
let decide t ~step ~runnable = t.pick ~step ~runnable
let custom ~name pick = { name; pick }

let pct ~seed ~fibers ~depth ~expected_steps =
  if fibers < 1 then invalid_arg "Strategy.pct: fibers < 1";
  if depth < 1 then invalid_arg "Strategy.pct: depth < 1";
  if expected_steps < 1 then invalid_arg "Strategy.pct: expected_steps < 1";
  let rng = Splitmix.of_int seed in
  (* Distinct initial priorities: a random permutation of
     [depth .. depth + fibers - 1]; demotions use the reserved band
     [1 .. depth - 1] so a demoted fiber sits below every
     never-demoted one, and later demotions sit even lower. *)
  let priorities =
    let p = Array.init fibers (fun i -> depth + i) in
    Splitmix.shuffle rng p;
    p
  in
  let change_points =
    Array.init (depth - 1) (fun _ -> 1 + Splitmix.int rng expected_steps)
  in
  Array.sort compare change_points;
  let next_change = ref 0 in
  let next_demotion = ref (depth - 1) in
  {
    name =
      Printf.sprintf "pct(seed=%d,fibers=%d,depth=%d,steps=%d)" seed fibers depth
        expected_steps;
    pick =
      (fun ~step ~runnable ->
        let ids, count = runnable () in
        let best = ref ids.(0) in
        for i = 1 to count - 1 do
          let id = ids.(i) in
          let in_range id = id >= 0 && id < fibers in
          let prio id = if in_range id then priorities.(id) else -1 in
          if prio id > prio !best then best := id
        done;
        (* Consume due change points: demote the fiber about to run. *)
        while
          !next_change < Array.length change_points
          && step >= change_points.(!next_change)
        do
          if !best >= 0 && !best < fibers && !next_demotion >= 1 then begin
            priorities.(!best) <- !next_demotion;
            decr next_demotion
          end;
          incr next_change;
          (* Re-pick after the demotion. *)
          let best' = ref ids.(0) in
          for i = 1 to count - 1 do
            let id = ids.(i) in
            if
              id >= 0 && id < fibers && !best' >= 0 && !best' < fibers
              && priorities.(id) > priorities.(!best')
            then best' := id
          done;
          best := !best'
        done;
        Run !best);
  }

let round_robin () =
  (* Rotate over fiber ids, not runnable-array positions, so every
     live fiber runs within one revolution. *)
  let cursor = ref (-1) in
  {
    name = "round-robin";
    pick =
      (fun ~step:_ ~runnable ->
        let ids, count = runnable () in
        (* Smallest id strictly greater than the cursor, wrapping. *)
        let best = ref (-1) and smallest = ref (-1) in
        for i = 0 to count - 1 do
          let id = ids.(i) in
          if !smallest < 0 || id < !smallest then smallest := id;
          if id > !cursor && (!best < 0 || id < !best) then best := id
        done;
        let chosen = if !best >= 0 then !best else !smallest in
        cursor := chosen;
        Run chosen);
  }

let random ~seed =
  let rng = Splitmix.of_int seed in
  {
    name = Printf.sprintf "random(seed=%d)" seed;
    pick =
      (fun ~step:_ ~runnable ->
        let ids, count = runnable () in
        Run ids.(Splitmix.int rng count));
  }

let random_burst ~seed ~max_burst =
  if max_burst < 1 then invalid_arg "Strategy.random_burst: max_burst < 1";
  let rng = Splitmix.of_int seed in
  let current = ref (-1) in
  let remaining = ref 0 in
  {
    name = Printf.sprintf "random-burst(seed=%d,max=%d)" seed max_burst;
    pick =
      (fun ~step:_ ~runnable ->
        let ids, count = runnable () in
        let still_runnable id =
          let rec go i = i < count && (ids.(i) = id || go (i + 1)) in
          go 0
        in
        if !remaining > 0 && still_runnable !current then begin
          decr remaining;
          Run !current
        end
        else begin
          let chosen = ids.(Splitmix.int rng count) in
          current := chosen;
          remaining := Splitmix.int rng max_burst;
          Run chosen
        end);
  }

let steal ~seed ~base ~probability ~min_pause ~max_pause =
  if probability < 0. || probability > 1. then
    invalid_arg "Strategy.steal: probability out of [0,1]";
  if min_pause < 1 || max_pause < min_pause then
    invalid_arg "Strategy.steal: bad pause range";
  let rng = Splitmix.of_int seed in
  {
    name =
      Printf.sprintf "steal(p=%.3f,pause=%d..%d,base=%s)" probability min_pause
        max_pause base.name;
    pick =
      (fun ~step ~runnable ->
        match base.pick ~step ~runnable with
        | Postpone _ as d -> d
        | Run id ->
          if Splitmix.bernoulli rng probability then begin
            let pause = min_pause + Splitmix.int rng (max_pause - min_pause + 1) in
            Postpone (id, step + pause)
          end
          else Run id);
  }

let steal_fibers ~seed ~victims ~base ~probability ~min_pause ~max_pause =
  if probability < 0. || probability > 1. then
    invalid_arg "Strategy.steal_fibers: probability out of [0,1]";
  if min_pause < 1 || max_pause < min_pause then
    invalid_arg "Strategy.steal_fibers: bad pause range";
  let rng = Splitmix.of_int seed in
  {
    name =
      Printf.sprintf "steal-fibers([%s],p=%.3f,pause=%d..%d,base=%s)"
        (String.concat ";" (List.map string_of_int victims))
        probability min_pause max_pause base.name;
    pick =
      (fun ~step ~runnable ->
        match base.pick ~step ~runnable with
        | Postpone _ as d -> d
        | Run id when List.mem id victims && Splitmix.bernoulli rng probability ->
          let pause = min_pause + Splitmix.int rng (max_pause - min_pause + 1) in
          Postpone (id, step + pause)
        | Run _ as d -> d);
  }

let starve ~victims ~until_step ~base =
  {
    name =
      Printf.sprintf "starve([%s],until=%d,base=%s)"
        (String.concat ";" (List.map string_of_int victims))
        until_step base.name;
    pick =
      (fun ~step ~runnable ->
        if step >= until_step then base.pick ~step ~runnable
        else begin
          let ids, count = runnable () in
          let victim id = List.mem id victims in
          let nonvictims = ref 0 in
          for i = 0 to count - 1 do
            if not (victim ids.(i)) then incr nonvictims
          done;
          if !nonvictims = 0 then base.pick ~step ~runnable
          else begin
            match base.pick ~step ~runnable with
            | Postpone _ as d -> d
            | Run id when not (victim id) -> Run id
            | Run id -> Postpone (id, step + 1)
          end
        end);
  }

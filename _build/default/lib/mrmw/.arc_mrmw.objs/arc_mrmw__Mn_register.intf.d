lib/mrmw/mn_register.mli: Arc_core Arc_mem

(** Executable form of the paper's correctness criteria (§3.1, §4).

    For a single-writer register, writes are totally ordered by their
    sequence numbers, which makes checking a recorded history
    tractable (O(n log n)) without any linearization search:

    - {b well-formedness}: writer operations are sequential and their
      sequence numbers are exactly 1..k in order; every read returns
      an existing sequence number;
    - {b regularity} (Theorem 4.3 / the no-past property): a read
      must return either the last write that completed before it
      started, or some write concurrent with it — formally, its value
      [v] must satisfy [low r <= v <= high r] where [low r] is the
      largest seq whose write returned strictly before [r] was
      invoked and [high r] the largest seq whose write was invoked
      strictly before [r] returned;
    - {b atomicity} (Criterion 1 / Theorem 4.4): additionally no
      new-old inversion — for reads [r1 → r2] (r1 returned strictly
      before r2 was invoked, across {e all} readers),
      [seq r2 >= seq r1].

    Events with equal timestamps are treated as concurrent, which can
    only make the check more permissive, never report a false
    violation. *)

type violation =
  | Malformed of string
  | Stale_read of { read : History.event; low : int }
      (** regularity broken: returned seq < newest completed write *)
  | Future_read of { read : History.event; high : int }
      (** returned a seq not yet being written *)
  | New_old_inversion of { earlier : History.event; later : History.event }

val pp_violation : Format.formatter -> violation -> unit

type report = {
  reads_checked : int;
  writes_checked : int;
  fast_path_candidates : int;
      (** reads returning the same seq as the previous read of the
          same thread — an ARC fast-path frequency indicator *)
}

val check : History.t -> (report, violation) result
(** Full check: well-formedness, regularity, atomicity.  Returns the
    first violation found (events included for diagnosis). *)

val check_regular_only : History.t -> (report, violation) result
(** Same but skipping the new-old-inversion pass — used by tests that
    demonstrate the checker can tell regular-but-not-atomic histories
    apart. *)

(** {2 Crash-aware checking (ISSUE 2)}

    Under crash-stop faults, an operation in flight when its thread
    crashed never returns and is never recorded — which is already the
    right treatment for {e reads} (an unreturned read constrains
    nothing).  The single writer is different: its pending write may
    have published (crash after the exchange) or not (crash during the
    copy), and reads by surviving readers are correct in either case.
    {!check_crash} accepts a history iff one of the two completions —
    the write vanished, or the write took effect with an open-ended
    completion time — satisfies the full atomicity check, and reports
    which one did. *)

type crash_outcome = No_crash | Vanished | Took_effect

val crash_outcome_name : crash_outcome -> string

val check_crash :
  ?pending_write:int * int ->
  ?fence:int ->
  History.t ->
  (report * crash_outcome, violation) result
(** [check_crash ~pending_write:(seq, invoked) h] — [seq] is the
    crashed writer's unreturned sequence number and [invoked] its
    invocation time.  The recorded writes may stop at [seq - 1], or —
    when a promoted successor continued the history — run past it
    with exactly [seq] missing: the took-effect candidate fills that
    single gap, so a post-crash history where the successor took over
    at [seq + 1] is judged against both completions like any other.
    (A successor that instead {e reused} [seq] because it observed the
    pending write never published needs no [pending_write] at all —
    the recorded writes are already contiguous.)  Without
    [pending_write] this is {!check}.

    [?fence] (ISSUE 3) tightens the took-effect completion for
    epoch-fenced failover: the pending write can only have been
    published before the supervisor's fence, so its candidate
    completion time is [max fence invoked] rather than open-ended —
    required as soon as a promoted successor's writes continue the
    history past the crash, and strictly stronger (a fenced-out late
    publish that somehow took effect after the fence is convicted
    instead of forgiven). *)

(** {2 Cross-shard snapshot checking (ISSUE 6)}

    A register-fabric snapshot claims its whole vector of shard values
    was simultaneously published at one instant inside the snapshot's
    interval.  {!check_fabric} judges recorded fabric histories in two
    passes: every snapshot is projected onto each shard as an ordinary
    read and run through the full single-register {!check} (per-shard
    regularity and new-old inversions come free), then each snapshot's
    per-shard validity windows are intersected — value [v] of shard
    [i] can have been current no earlier than write [v]'s invocation
    and no later than write [v+1]'s return (maximally permissive, so a
    conviction is never a timestamping artifact).  An empty
    intersection means the vector never coexisted: a torn snapshot. *)

type snapshot_obs = {
  sthread : int;
  invoked : int;
  returned : int;
  observed : int array;  (** per shard: seq of the value in the vector *)
  sepoch : int;
      (** the configuration epoch the snapshot was certified under
          ({!Arc_fabric.Fabric.Make.snap_epoch}); [0] = uncertified,
          exempt from the reign pass *)
}

type reign = { rshard : int; first_seq : int; config : int }
(** A reign claim (ISSUE 9): shard [rshard]'s writes from seq
    [first_seq] onward — until a later claim for the same shard takes
    over — were published under configuration epoch [config].  Record
    one per leadership interval: the original leader's and one per
    elected successor. *)

type fabric_violation =
  | Shard_violation of { shard : int; violation : violation }
  | Torn_snapshot of {
      snapshot : snapshot_obs;
      fresh_shard : int;  (** its observed write was invoked last *)
      stale_shard : int;  (** its observed value died first *)
      earliest : int;  (** earliest instant the vector could exist *)
      latest : int;  (** latest instant it could still exist *)
    }
  | Cross_reign of {
      snapshot : snapshot_obs;
      shard : int;  (** the shard whose observed value postdates the epoch *)
      config : int;  (** the reign that published it ([> sepoch]) *)
    }

val pp_fabric_violation : Format.formatter -> fabric_violation -> unit

type fabric_report = {
  fshards : int;
  snapshots_checked : int;
  shard_reports : report array;
}

val check_fabric :
  ?reigns:reign list ->
  writes:History.t array ->
  snapshots:snapshot_obs list ->
  unit ->
  (fabric_report, fabric_violation) result
(** [check_fabric ~writes ~snapshots ()] — [writes.(i)] holds shard
    [i]'s write events (per-shard seqs 1..k, writer-sequential, as
    {!check} requires); each snapshot contributes one projected read
    per shard plus one window-intersection test.

    [?reigns] adds the reign pass: every snapshot certified under
    epoch [sepoch > 0] must draw each shard value from a reign
    [<= sepoch] (the reign of a value is the largest-[config] claim
    covering its seq); a violation is {!Cross_reign}.  Uncertified
    snapshots ([sepoch = 0]) are exempt, and shards with no claims
    default to reign 0 (never convicting).
    @raise Invalid_argument if there are no shards or a snapshot's
    [observed] length disagrees with the shard count. *)

(** {2 Bounded staleness of degraded reads (ISSUE 3)}

    Reads a circuit breaker serves from its last-known-good snapshot
    are excluded from the atomic history by design; their contract is
    instead that the served value lags the register by at most a
    declared number of writes at serve time. *)

type stale_serve = { thread : int; seq : int; at : int }
(** One degraded serve: [thread] returned the snapshot carrying write
    [seq] at time [at] (same clock as the history). *)

type staleness_violation = {
  serve : stale_serve;
  completed : int;  (** writes completed before the serve *)
  bound : int;
}

val pp_staleness_violation : Format.formatter -> staleness_violation -> unit

val check_bounded_staleness :
  History.t -> bound:int -> stale_serve list -> (int, staleness_violation) result
(** [check_bounded_staleness h ~bound serves] verifies every serve
    returned a seq no older than [bound] writes behind the writes of
    [h] completed at its serve time; [Ok n] is the number of serves
    checked.
    @raise Invalid_argument if [bound < 0]. *)

(** {2 Coalesced-publish checking (ROADMAP item 2b)}

    A coalescing writer absorbs writes into a staging buffer and
    publishes only some of them; the published sequence numbers must
    be an increasing subsequence of the enqueued writes [1..k], each
    publish may coalesce at most [bound] enqueued writes (the declared
    [max_staleness]), and the {e final} enqueued write must be the
    last publish — a burst whose tail value never reaches readers is
    a lost write, not a staleness artifact. *)

type coalesce_violation =
  | Coalesce_malformed of string
  | Lost_final_write of { last_enqueued : int; last_published : int }
  | Oversized_batch of {
      published : int;
      previous : int;  (** the publish before it (0 = initial value) *)
      bound : int;
    }

val pp_coalesce_violation : Format.formatter -> coalesce_violation -> unit

val check_coalesced :
  enqueued:int -> bound:int -> int list -> (int, coalesce_violation) result
(** [check_coalesced ~enqueued ~bound published] — [published] is the
    enqueue-sequence number carried by each publish, in publish order;
    [enqueued] the number of absorbed writes (their seqs are 1..k in
    absorb order).  [Ok n] is the number of publishes checked.
    Violations: a publish outside [1..enqueued] or out of order
    ([Coalesce_malformed]), a gap of more than [bound] enqueued writes
    between consecutive publishes ([Oversized_batch], staleness-bound
    breach), or a final publish older than the final enqueue
    ([Lost_final_write]).
    @raise Invalid_argument if [enqueued < 0] or [bound < 1]. *)

lib/util/packed.ml: Format Int Printf Sys

(* Generic black-box test suite instantiated for every register
   algorithm: anything in Register_intf.S must pass these.  Each
   algorithm's own test module adds white-box cases on top. *)

module Make (R : Arc_core.Register_intf.S) = struct
  module P = Arc_workload.Payload.Make (R.Mem)

  let stamped ~seq ~len =
    let a = Array.make len 0 in
    P.stamp a ~seq ~len;
    a

  let create ?(readers = 3) ?(capacity = 32) ?(init_len = capacity) () =
    R.create ~readers ~capacity ~init:(stamped ~seq:0 ~len:init_len)

  let read_seq rd =
    R.read_with rd ~f:(fun buffer len ->
        match P.validate buffer ~len with
        | Ok seq -> seq
        | Error msg -> Alcotest.failf "torn snapshot: %s" msg)

  let read_len rd = R.read_with rd ~f:(fun _buffer len -> len)

  let test_initial_value () =
    let reg = create () in
    for i = 0 to 2 do
      let rd = R.reader reg i in
      Alcotest.(check int) "initial seq" 0 (read_seq rd);
      Alcotest.(check int) "initial length" 32 (read_len rd)
    done

  let test_write_then_read () =
    let reg = create () in
    let rd = R.reader reg 0 in
    R.write reg ~src:(stamped ~seq:1 ~len:32) ~len:32;
    Alcotest.(check int) "sees write 1" 1 (read_seq rd);
    R.write reg ~src:(stamped ~seq:2 ~len:32) ~len:32;
    Alcotest.(check int) "sees write 2" 2 (read_seq rd)

  let test_repeated_reads_stable () =
    let reg = create () in
    let rd = R.reader reg 0 in
    R.write reg ~src:(stamped ~seq:1 ~len:32) ~len:32;
    for _ = 1 to 20 do
      Alcotest.(check int) "unchanged register re-read" 1 (read_seq rd)
    done

  let test_variable_sizes () =
    let reg = create ~capacity:64 () in
    let rd = R.reader reg 0 in
    List.iteri
      (fun k len ->
        let seq = k + 1 in
        R.write reg ~src:(stamped ~seq ~len) ~len;
        Alcotest.(check int) "length tracks write" len (read_len rd);
        Alcotest.(check int) "content tracks write" seq (read_seq rd))
      [ 1; 64; 7; 33; 2; 64; 1 ]

  let test_slot_recycling () =
    (* Far more writes than slots: buffers must be reclaimed and the
       newest value always visible. *)
    let reg = create ~readers:2 () in
    let r0 = R.reader reg 0 and r1 = R.reader reg 1 in
    for seq = 1 to 500 do
      R.write reg ~src:(stamped ~seq ~len:32) ~len:32;
      if seq mod 3 = 0 then Alcotest.(check int) "r0 current" seq (read_seq r0);
      if seq mod 7 = 0 then Alcotest.(check int) "r1 current" seq (read_seq r1)
    done

  let test_lagging_reader_catches_up () =
    let reg = create ~readers:2 () in
    let eager = R.reader reg 0 and lazy_rd = R.reader reg 1 in
    R.write reg ~src:(stamped ~seq:1 ~len:32) ~len:32;
    Alcotest.(check int) "eager at 1" 1 (read_seq eager);
    for seq = 2 to 50 do
      R.write reg ~src:(stamped ~seq ~len:32) ~len:32;
      Alcotest.(check int) "eager follows" seq (read_seq eager)
    done;
    Alcotest.(check int) "lazy jumps straight to 50" 50 (read_seq lazy_rd)

  let test_read_into () =
    let reg = create ~capacity:16 () in
    let rd = R.reader reg 0 in
    R.write reg ~src:(stamped ~seq:3 ~len:10) ~len:10;
    let dst = Array.make 16 0 in
    let len = R.read_into rd ~dst in
    Alcotest.(check int) "length" 10 len;
    (match P.validate_words dst ~len with
    | Ok seq -> Alcotest.(check int) "copied content" 3 seq
    | Error msg -> Alcotest.fail msg);
    let short = Array.make 2 0 in
    (match R.read_into rd ~dst:short with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "short dst accepted")

  let test_create_validation () =
    let raises f = match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument"
    in
    raises (fun () -> create ~readers:0 ());
    raises (fun () -> create ~capacity:0 ());
    raises (fun () ->
        R.create ~readers:1 ~capacity:4 ~init:(stamped ~seq:0 ~len:8));
    (match R.caps.Arc_core.Register_intf.max_readers ~capacity_words:8 with
    | Some bound when bound < 10_000 ->
      raises (fun () -> create ~readers:(bound + 1) ~capacity:8 ())
    | _ -> ())

  let test_write_validation () =
    let reg = create ~capacity:8 () in
    let raises f = match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument"
    in
    raises (fun () -> R.write reg ~src:(Array.make 4 0) ~len:5);
    raises (fun () -> R.write reg ~src:(Array.make 16 0) ~len:9);
    raises (fun () -> R.write reg ~src:(Array.make 4 0) ~len:(-1))

  let test_reader_validation () =
    let reg = create ~readers:2 () in
    let raises f = match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument"
    in
    raises (fun () -> ignore (R.reader reg 2));
    raises (fun () -> ignore (R.reader reg (-1)))

  let test_randomized_sequential () =
    (* Deterministic fuzz: random sizes and read points, always
       validating full payloads. *)
    let rng = Arc_util.Splitmix.of_int 2024 in
    let reg = create ~readers:4 ~capacity:40 () in
    let handles = Array.init 4 (R.reader reg) in
    let current = ref 0 in
    for step = 1 to 2000 do
      if Arc_util.Splitmix.bool rng then begin
        incr current;
        let len = 1 + Arc_util.Splitmix.int rng 40 in
        R.write reg ~src:(stamped ~seq:!current ~len) ~len
      end
      else begin
        let rd = handles.(Arc_util.Splitmix.int rng 4) in
        let seq = read_seq rd in
        if seq <> !current then
          Alcotest.failf "step %d: sequential read saw %d, expected %d" step seq
            !current
      end
    done

  (* Model-based property: any sequential op string behaves like the
     trivial reference register (the freshest write wins), with qcheck
     shrinking the op string on failure. *)
  type op = Write of int (* len *) | Read of int (* reader id *)

  let arb_ops readers capacity =
    let open QCheck in
    let gen_op =
      Gen.(
        frequency
          [
            (1, map (fun len -> Write (1 + (len mod capacity))) nat);
            (3, map (fun r -> Read (r mod readers)) nat);
          ])
    in
    let print_op = function
      | Write len -> Printf.sprintf "Write %d" len
      | Read r -> Printf.sprintf "Read %d" r
    in
    make ~print:(Print.list print_op) Gen.(list_size (int_range 1 120) gen_op)

  let prop_matches_model =
    let readers = 3 and capacity = 24 in
    QCheck.Test.make ~name:"sequential ops match the reference model" ~count:150
      (arb_ops readers capacity)
      (fun ops ->
        let reg = create ~readers ~capacity ~init_len:capacity () in
        let handles = Array.init readers (R.reader reg) in
        (* model: the freshest write's (seq, len) *)
        let model_seq = ref 0 and model_len = ref capacity in
        let next_seq = ref 0 in
        List.for_all
          (fun op ->
            match op with
            | Write len ->
              incr next_seq;
              R.write reg ~src:(stamped ~seq:!next_seq ~len) ~len;
              model_seq := !next_seq;
              model_len := len;
              true
            | Read r ->
              let seq = read_seq handles.(r) in
              let len = read_len handles.(r) in
              seq = !model_seq && len = !model_len)
          ops)

  let suite =
    [
      Alcotest.test_case "initial value" `Quick test_initial_value;
      QCheck_alcotest.to_alcotest prop_matches_model;
      Alcotest.test_case "write then read" `Quick test_write_then_read;
      Alcotest.test_case "repeated reads stable" `Quick test_repeated_reads_stable;
      Alcotest.test_case "variable sizes" `Quick test_variable_sizes;
      Alcotest.test_case "slot recycling" `Quick test_slot_recycling;
      Alcotest.test_case "lagging reader catches up" `Quick
        test_lagging_reader_catches_up;
      Alcotest.test_case "read_into" `Quick test_read_into;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "write validation" `Quick test_write_validation;
      Alcotest.test_case "reader validation" `Quick test_reader_validation;
      Alcotest.test_case "randomized sequential" `Quick test_randomized_sequential;
    ]
end

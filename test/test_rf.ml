(* White-box tests of the RF (Readers-Field) baseline: reader-capacity
   bounds, the one-RMW-per-read cost, and trace-table protection. *)

module Counting = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Intf = Arc_mem.Mem_intf
module Rf = Arc_baselines.Rf.Make (Arc_mem.Real_mem)
module Rf_cnt = Arc_baselines.Rf.Make (Counting)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)
module P_cnt = Arc_workload.Payload.Make (Counting)

let check = Alcotest.(check int)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

let test_word_bound () =
  (* The paper's statement: 58 readers on 64-bit words; our 63-bit
     OCaml ints give 57 (DESIGN.md §2). *)
  check "paper's 64-bit bound" 58 (Arc_baselines.Rf.max_readers_for_word ~word_bits:64);
  check "OCaml 63-bit bound" 57 (Arc_baselines.Rf.max_readers_for_word ~word_bits:63);
  check "advertised bound matches"
    (Arc_baselines.Rf.max_readers_for_word ~word_bits:Sys.int_size)
    (Option.get (Rf.caps.Arc_core.Register_intf.max_readers ~capacity_words:8))

let test_bound_formula () =
  (* n readers + ceil_log2 (n+2) pointer bits must fit the word. *)
  List.iter
    (fun bits ->
      let n = Arc_baselines.Rf.max_readers_for_word ~word_bits:bits in
      let fits k = k + Arc_util.Bits.ceil_log2 (k + 2) <= bits in
      Alcotest.(check bool) (Printf.sprintf "%d fits in %d bits" n bits) true (fits n);
      Alcotest.(check bool)
        (Printf.sprintf "%d is maximal for %d bits" n bits)
        false (fits (n + 1)))
    [ 8; 16; 32; 63; 64 ]

let test_over_bound_rejected () =
  let bound =
    Option.get (Rf.caps.Arc_core.Register_intf.max_readers ~capacity_words:4)
  in
  match
    Rf.create ~readers:(bound + 1) ~capacity:4 ~init:(stamped ~seq:0 ~len:4)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reader count above the word bound accepted"

let test_bound_reached () =
  (* The maximum population actually works. *)
  let bound =
    Option.get (Rf.caps.Arc_core.Register_intf.max_readers ~capacity_words:4)
  in
  let reg = Rf.create ~readers:bound ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  let handles = Array.init bound (Rf.reader reg) in
  Rf.write reg ~src:(stamped ~seq:1 ~len:4) ~len:4;
  Array.iter
    (fun rd ->
      let seq =
        Rf.read_with rd ~f:(fun buffer len ->
            match P.validate buffer ~len with
            | Ok seq -> seq
            | Error msg -> Alcotest.fail msg)
      in
      check "every reader sees the write" 1 seq)
    handles;
  Rf.write reg ~src:(stamped ~seq:2 ~len:4) ~len:4;
  check "still writable with all trace bits set" 2
    (Rf.read_with handles.(0) ~f:(fun buffer len ->
         match P.validate buffer ~len with
         | Ok seq -> seq
         | Error msg -> Alcotest.fail msg))

let test_every_read_pays_one_rmw () =
  (* The cost ARC's fast path avoids: RF's read is one FetchAndOr
     (one CAS here) even when the register did not change. *)
  let init = Array.make 4 0 in
  P_cnt.stamp init ~seq:0 ~len:4;
  let reg = Rf_cnt.create ~readers:2 ~capacity:4 ~init in
  let rd = Rf_cnt.reader reg 0 in
  Counting.reset ();
  for _ = 1 to 10 do
    ignore (Rf_cnt.read_with rd ~f:(fun _ _ -> ()))
  done;
  check "10 unchanged-register reads cost 10 RMW" 10 (Counting.counts ()).Intf.rmw

let test_write_cost () =
  let init = Array.make 4 0 in
  P_cnt.stamp init ~seq:0 ~len:4;
  let reg = Rf_cnt.create ~readers:2 ~capacity:4 ~init in
  let src = Array.make 4 0 in
  P_cnt.stamp src ~seq:1 ~len:4;
  Counting.reset ();
  Rf_cnt.write reg ~src ~len:4;
  check "write costs exactly 1 RMW (the exchange)" 1 (Counting.counts ()).Intf.rmw

let test_view_protected_across_writes () =
  (* The writer-private trace table must keep a reader's buffer alive
     until the reader's next read, across many intervening writes. *)
  let reg = Rf.create ~readers:2 ~capacity:8 ~init:(stamped ~seq:0 ~len:8) in
  let rd = Rf.reader reg 0 in
  Rf.write reg ~src:(stamped ~seq:1 ~len:8) ~len:8;
  let view, len = Rf.read_view rd in
  for seq = 2 to 100 do
    Rf.write reg ~src:(stamped ~seq ~len:8) ~len:8
  done;
  (match P.validate view ~len with
  | Ok seq -> check "view survived 99 writes" 1 seq
  | Error msg -> Alcotest.failf "trace protection failed: %s" msg);
  check "next read is current" 100
    (Rf.read_with rd ~f:(fun buffer len ->
         match P.validate buffer ~len with
         | Ok seq -> seq
         | Error msg -> Alcotest.fail msg))

let test_two_readers_two_views () =
  (* Two parked readers protect two distinct old buffers at once. *)
  let reg = Rf.create ~readers:2 ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  let r0 = Rf.reader reg 0 and r1 = Rf.reader reg 1 in
  Rf.write reg ~src:(stamped ~seq:1 ~len:4) ~len:4;
  let v0, l0 = Rf.read_view r0 in
  Rf.write reg ~src:(stamped ~seq:2 ~len:4) ~len:4;
  let v1, l1 = Rf.read_view r1 in
  for seq = 3 to 50 do
    Rf.write reg ~src:(stamped ~seq ~len:4) ~len:4
  done;
  (match (P.validate v0 ~len:l0, P.validate v1 ~len:l1) with
  | Ok s0, Ok s1 ->
    check "r0 still holds write 1" 1 s0;
    check "r1 still holds write 2" 2 s1
  | Error msg, _ | _, Error msg -> Alcotest.fail msg)

let suite =
  [
    Alcotest.test_case "word-size reader bound" `Quick test_word_bound;
    Alcotest.test_case "bound formula maximal" `Quick test_bound_formula;
    Alcotest.test_case "over bound rejected" `Quick test_over_bound_rejected;
    Alcotest.test_case "bound reached" `Quick test_bound_reached;
    Alcotest.test_case "one RMW per read" `Quick test_every_read_pays_one_rmw;
    Alcotest.test_case "write cost" `Quick test_write_cost;
    Alcotest.test_case "view protected across writes" `Quick
      test_view_protected_across_writes;
    Alcotest.test_case "two readers two views" `Quick test_two_readers_two_views;
  ]

(** The classical lock-based register of the paper's evaluation: one
    shared buffer guarded by a read/write spin-lock built from RMW
    instructions (CAS).  Not wait-free — a reader or the writer can
    spin unboundedly while the lock is held, which is exactly the
    behaviour Fig. 2 exposes under hypervisor CPU-steal and Fig. 3
    under heavy time-sharing.

    Lock word encoding: [-1] = writer holds; [0] = free; [k > 0] =
    [k] readers hold.  Readers and the writer acquire with CAS retry
    loops ([cede] between attempts so simulated schedulers can
    preempt there). *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Arc_core.Register_intf.S with module Mem = M
end

(* arc-crash: real-crash durability harness for the shared-memory
   register substrate (ISSUE 4).

   Each run builds an ARC register inside an mmap'd file
   (Arc_shm.Shm_mem), forks a writer child, and SIGKILLs it at a
   seeded random point while reader domains in the parent keep
   reading.  The parent then reattaches to reality: integrity-scans
   the mapping (quarantining any torn slot the kill left behind),
   resolves whether the interrupted write published, takes over the
   writer role through the epoch fence persisted in the superblock,
   and finally feeds the whole cross-process history — child writes
   reconstructed from a shared write-log, reads and successor writes
   recorded against the mapping's shared clock — through the
   crash-aware atomicity checker.

     dune exec bin/crash.exe -- --runs 200
     dune exec bin/crash.exe -- --replay-seed 2049052026 -v

   Exit status 0 = clean (and all conviction controls behaved);
   1 = violations (each with the exact replay command, also written
   to --fail-log if given); 2 = a corruption negative control went
   unconvicted (the integrity layer is vacuous).

   The kill itself is real and therefore not schedulable: a seed
   reproduces the configuration and the kill-delay draw, not the exact
   interrupted instruction.  What IS deterministic is the judgement —
   every surviving byte is either verified or convicted, whichever
   point the kill landed on. *)

module Shm_mem = Arc_shm.Shm_mem
module Shm_arc = Arc_shm.Shm_arc
module Layout = Arc_shm.Shm_layout
module History = Arc_trace.History
module Checker = Arc_trace.Checker
module Splitmix = Arc_util.Splitmix
module P0 = Arc_workload.Payload.Make (Arc_mem.Real_mem)
open Cmdliner

type cfg = {
  runs : int;
  seed : int;
  readers : int;
  capacity : int;
  writes_max : int;
  successor_writes : int;
  dir : string;
  verbose : bool;
}

let derive_seed cfg run = (cfg.seed * 1_000_003) + run

let replay_command cfg seed =
  Printf.sprintf
    "arc-crash --replay-seed %d --readers %d --capacity %d --writes %d \
     --successor-writes %d"
    seed cfg.readers cfg.capacity cfg.writes_max cfg.successor_writes

(* Reader identities: [0, readers) are the reading domains,
   [readers] is the parent's post-crash probe read, and [readers + 1]
   is never used — the spare covering the one slot a crash may
   quarantine (Shm_arc.recover's bounded-leak accounting). *)
let identities cfg = cfg.readers + 2

let mapping_words cfg =
  let nslots = identities cfg + 2 in
  (2 * (cfg.writes_max + 1))
  + (nslots * (cfg.capacity + (4 * Layout.line_words) + Layout.buf_header + 8))
  + (8 * Layout.line_words) + 1024

(* {1 The shared write-log}

   A raw region of the mapping (skipped by the integrity scan): two
   words per write — invocation and return stamps from the shared
   clock, written around each fenced write.  It is the child's only
   way to testify: after the kill, entry k with a return stamp is a
   completed write, and the single entry with an invocation stamp but
   no return stamp is the write in flight when the kill landed. *)

let log_invoked log k = log + (2 * (k - 1))
let log_returned log k = log + (2 * (k - 1)) + 1

let child_writer (module I : Shm_arc.INSTANCE) ~log ~cfg ~seed =
  let module F = Arc_resilience.Fenced.Make (I.R) in
  let t = F.of_register I.reg ~epoch:(Shm_mem.epoch_cell I.mapping) in
  let w = F.issue t in
  let rng = Splitmix.of_int seed in
  let src = Array.make cfg.capacity 0 in
  (try
     for k = 1 to cfg.writes_max do
       (* Pace the writer to ~1 µs per cycle.  The parent's
          kill-at-write-K trigger has scheduler-latency slop between
          observing the log and the SIGKILL landing; pacing keeps that
          slop to a few hundred writes instead of tens of thousands,
          so the drawn kill point governs where the crash lands.  The
          pause sits OUTSIDE the invoked/returned bracket, so it
          widens no window the checker reasons about. *)
       for _ = 1 to 600 do
         Domain.cpu_relax ()
       done;
       let len = 1 + Splitmix.int rng cfg.capacity in
       P0.stamp src ~seq:k ~len;
       Shm_mem.atomic_set I.mapping (log_invoked log k) (Shm_mem.tick I.mapping);
       F.write w ~src ~len;
       Shm_mem.atomic_set I.mapping (log_returned log k) (Shm_mem.tick I.mapping)
     done
   with _ -> ());
  Unix._exit 0

(* {1 Reader domains} *)

let reader_loop (module I : Shm_arc.INSTANCE) recorder stop id =
  let module P = Arc_workload.Payload.Make (I.M) in
  let rd = I.R.reader I.reg id in
  let errors = ref [] in
  while not (Atomic.get stop) do
    (* Pace reads so a run's history stays within the recorder's
       preallocated capacity; the interleaving stress lives in the
       concurrency, not the raw poll rate. *)
    for _ = 1 to 512 do
      Domain.cpu_relax ()
    done;
    let invoked = Shm_mem.tick I.mapping in
    match I.R.read_with rd ~f:(fun buf len -> P.validate buf ~len) with
    | Ok seq ->
        let returned = Shm_mem.tick I.mapping in
        History.Recorder.record recorder ~thread:(1 + id) History.Read ~seq
          ~invoked ~returned
    | Error msg ->
        errors := Printf.sprintf "reader %d: torn snapshot: %s" id msg :: !errors
  done;
  List.rev !errors

(* {1 One run} *)

type pending = No_pending | Published of int * int | Vanished of int

type run_result = {
  seed : int;
  child_writes : int;
  pending : pending;
  convicted : Shm_mem.conviction list;
  journaled : int;
  reads : int;
  dropped : int;
  outcome : string;
  violations : string list;
  path : string;
}

let pp_pending = function
  | No_pending -> "none"
  | Published (k, _) -> Printf.sprintf "published@%d" k
  | Vanished k -> Printf.sprintf "vanished@%d" k

let pp_convicted cs =
  if cs = [] then "0"
  else
    Printf.sprintf "%d(%s)" (List.length cs)
      (String.concat ","
         (List.map
            (fun (c : Shm_mem.conviction) ->
              Printf.sprintf "slot%d:%s@%d" c.ordinal
                (Shm_mem.reason_to_string c.why)
                c.seq)
            cs))

let run_one cfg ~seed =
  let rng = Splitmix.of_int seed in
  let path =
    Filename.concat cfg.dir
      (Printf.sprintf "arc-crash-%d-%d.shm" (Unix.getpid ()) seed)
  in
  let m = Shm_mem.create ~path ~words:(mapping_words cfg) in
  let init = Array.make cfg.capacity 0 in
  P0.stamp init ~seq:0 ~len:cfg.capacity;
  let inst =
    Shm_arc.create m ~readers:(identities cfg) ~capacity:cfg.capacity ~init
  in
  let module I = (val inst : Shm_arc.INSTANCE) in
  let log = Shm_mem.alloc_raw m (2 * (cfg.writes_max + 1)) in
  Shm_mem.set_harness_region m log;
  (* The kill point is a seeded write NUMBER, not a wall-clock delay:
     the parent watches the shared write-log until the child reaches
     it, then kills.  Wall clocks drift with machine load — a loaded
     box would land every kill after the child had already finished —
     while a count always lands the signal inside the writing phase
     (give or take the signal-delivery handful of writes, which is
     exactly the randomness a real crash has anyway). *)
  let kill_at = 1 + Splitmix.int rng cfg.writes_max in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> child_writer inst ~log ~cfg ~seed:(seed lxor 0x5DEECE66) (* child *)
  | child ->
      let stop = Atomic.make false in
      let recorder =
        History.Recorder.create ~threads:(cfg.readers + 1) ~capacity:(1 lsl 18)
      in
      let domains =
        List.init cfg.readers (fun id ->
            Domain.spawn (fun () -> reader_loop inst recorder stop id))
      in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let reaped = ref None in
      let rec await n =
        if Shm_mem.atomic_get m (log_invoked log kill_at) <> 0 then ()
        else if n land 4095 = 0 && Unix.gettimeofday () > deadline then ()
        else begin
          (if n land 4095 = 0 then
             match Unix.waitpid [ Unix.WNOHANG ] child with
             | 0, _ -> ()
             | _, s -> reaped := Some s);
          if !reaped = None then begin
            Domain.cpu_relax ();
            await (n + 1)
          end
        end
      in
      await 1;
      let status =
        match !reaped with
        | Some s -> s
        | None ->
            Unix.kill child Sys.sigkill;
            snd (Unix.waitpid [] child)
      in
      (match status with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | Unix.WEXITED 0 -> () (* child drained writes_max before the kill *)
      | _ -> fail "child exited abnormally");
      Unix.sleepf 0.002;
      (* Reconstruct the child's testimony from the write-log. *)
      let n_last = ref 0 in
      let completed = ref [] in
      let pending_entry = ref None in
      (try
         for k = 1 to cfg.writes_max do
           let invoked = Shm_mem.atomic_get m (log_invoked log k) in
           if invoked = 0 then raise Exit;
           n_last := k;
           let returned = Shm_mem.atomic_get m (log_returned log k) in
           if returned > 0 then
             completed :=
               History.event History.Write ~thread:0 ~seq:k ~invoked ~returned
               :: !completed
           else begin
             if !pending_entry <> None then
               fail "write-log: two entries without return stamps";
             pending_entry := Some (k, invoked)
           end
         done
       with Exit -> ());
      (match !pending_entry with
      | Some (k, _) when k <> !n_last ->
          fail "write-log: unreturned entry %d is not the last (%d)" k !n_last
      | _ -> ());
      (* Recovery: integrity-scan the mapping, mirror convictions into
         the register, recover the prefreeze journal. *)
      let convicted, journaled =
        match Shm_arc.recover inst with
        | Ok (rcv, journaled) ->
            if List.length rcv.convicted > 1 then
              fail "recovery convicted %d slots from one crash: %s"
                (List.length rcv.convicted)
                (pp_convicted rcv.convicted);
            (rcv.convicted, journaled)
        | Error msg ->
            fail "recovery convicted the whole mapping: %s" msg;
            ([], 0)
      in
      (* Resolve the interrupted write: the register's published state
         is frozen (the writer is dead), so one probe read settles
         whether the pending write's W2 exchange happened. *)
      let module P = Arc_workload.Payload.Make (I.M) in
      let probe = I.R.reader I.reg cfg.readers in
      let observed =
        I.R.read_with probe ~f:(fun buf len ->
            match P.validate buf ~len with
            | Ok seq -> seq
            | Error msg ->
                fail "probe read torn: %s" msg;
                -1)
      in
      let pending, next_seq =
        match !pending_entry with
        | None ->
            if observed <> !n_last then
              fail "probe observed seq %d, expected %d (no pending write)"
                observed !n_last;
            (No_pending, !n_last + 1)
        | Some (k, invoked) ->
            if observed = k then (Published (k, invoked), k + 1)
            else if observed = k - 1 then (Vanished k, k)
            else begin
              fail "probe observed seq %d, expected %d or %d" observed (k - 1) k;
              (No_pending, !n_last + 1)
            end
      in
      (* A torn content copy can only be the interrupted write's: ARC
         completes every copy before that write's W2 exchange, so all
         earlier writes left complete trailers — and the interrupted
         write cannot have published (the exchange comes after the
         copy), so a torn conviction must coincide with a vanished
         pending write.  Readers never see the torn bytes (nothing
         routed them to that slot, and every read's payload was
         validated word-by-word above); this checks the bookkeeping
         agrees. *)
      List.iter
        (fun (c : Shm_mem.conviction) ->
          match (c.why, pending) with
          | Shm_mem.Torn, Vanished _ -> ()
          | Shm_mem.Torn, p ->
              fail
                "torn slot %d convicted (publish seq %d) but the interrupted \
                 write is %s — a published write left a torn copy"
                c.ordinal c.seq (pp_pending p)
          | _ -> ())
        convicted;
      (* Successor writer: a fresh fenced handle over the same
         register — issuing bumps the epoch the crashed writer's
         handle was issued under (it lives in the superblock, so the
         fence survived the kill). *)
      let module F = Arc_resilience.Fenced.Make (I.R) in
      let ft = F.of_register I.reg ~epoch:(Shm_mem.epoch_cell m) in
      let w = F.issue ft in
      let src = Array.make cfg.capacity 0 in
      (try
         for j = 0 to cfg.successor_writes - 1 do
           let seq = next_seq + j in
           let len = 1 + Splitmix.int rng cfg.capacity in
           P0.stamp src ~seq ~len;
           let invoked = Shm_mem.tick m in
           F.write w ~src ~len;
           let returned = Shm_mem.tick m in
           History.Recorder.record recorder ~thread:0 History.Write ~seq
             ~invoked ~returned
         done
       with e -> fail "successor writer: %s" (Printexc.to_string e));
      Unix.sleepf 0.002;
      Atomic.set stop true;
      List.iter
        (fun d -> List.iter (fun e -> violations := e :: !violations) (Domain.join d))
        domains;
      (* Judgement: the cross-process history through the crash-aware
         checker, fenced at the recovery stamp. *)
      let history =
        History.of_events
          (!completed @ History.events (History.Recorder.history recorder))
      in
      let reads = List.length (History.reads history) in
      let pending_write =
        match pending with Published (k, inv) -> Some (k, inv) | _ -> None
      in
      let outcome =
        match
          Checker.check_crash ?pending_write ~fence:(Shm_mem.fence_at m) history
        with
        | Ok (_, o) -> Checker.crash_outcome_name o
        | Error v ->
            fail "%s" (Format.asprintf "%a" Checker.pp_violation v);
            "violation"
      in
      let result =
        {
          seed;
          child_writes = !n_last;
          pending;
          convicted;
          journaled;
          reads;
          dropped = History.Recorder.dropped recorder;
          outcome;
          violations = List.rev !violations;
          path;
        }
      in
      (* A failing history is kept next to the mapping with its crash
         context, so arc-check --history can re-judge it offline. *)
      if result.violations <> [] then begin
        let meta =
          ("fence", Shm_mem.fence_at m)
          :: ("epoch", Shm_mem.epoch m)
          ::
          (match pending_write with
          | Some (k, inv) -> [ ("pending_seq", k); ("pending_invoked", inv) ]
          | None -> [])
        in
        History.dump ~meta history (path ^ ".history")
      end;
      Shm_mem.close m;
      if result.violations = [] then Sys.remove path;
      result

let print_result ~verbose r =
  if verbose || r.violations <> [] then begin
    Printf.printf
      "run [seed %d]: writes=%d pending=%s convicted=%s journaled=%d reads=%d%s \
       outcome=%s — %s\n"
      r.seed r.child_writes (pp_pending r.pending) (pp_convicted r.convicted)
      r.journaled r.reads
      (if r.dropped > 0 then Printf.sprintf " (dropped %d)" r.dropped else "")
      r.outcome
      (if r.violations = [] then "ok" else String.concat "; " r.violations);
    if r.violations <> [] then
      Printf.printf
        "  mapping kept at %s\n\
        \  re-judge: dune exec bin/check.exe -- --history %s.history --shm %s\n"
        r.path r.path r.path
  end

(* A forked process may not fork again once it has spawned domains
   (OCaml 5's Unix.fork refuses), and each run needs both — fork the
   writer child first, then spawn reader domains.  So the campaign
   driver runs every run in its own forked subprocess, which performs
   its writer-fork while still single-domain.  The subprocess prints
   its own per-run line and ships the result record back through a
   temp file. *)
let run_one_isolated cfg ~seed =
  let stub outcome msg =
    {
      seed;
      child_writes = 0;
      pending = No_pending;
      convicted = [];
      journaled = 0;
      reads = 0;
      dropped = 0;
      outcome;
      violations = [ msg ];
      path = "";
    }
  in
  let tmp = Filename.temp_file "arc-crash-res" ".bin" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let r =
        try run_one cfg ~seed
        with e -> stub "exception" (Printexc.to_string e)
      in
      print_result ~verbose:cfg.verbose r;
      flush stdout;
      let oc = open_out_bin tmp in
      Marshal.to_channel oc r [];
      close_out oc;
      Unix._exit 0
  | pid -> (
      let _, _ = Unix.waitpid [] pid in
      let r =
        try
          let ic = open_in_bin tmp in
          let r : run_result = Marshal.from_channel ic in
          close_in ic;
          r
        with _ -> stub "lost" "run subprocess died without reporting"
      in
      (try Sys.remove tmp with Sys_error _ -> ());
      match r.outcome with
      | "lost" ->
          print_result ~verbose:cfg.verbose r;
          r
      | _ -> r)

(* {1 Conviction controls}

   The integrity layer must convict known-bad mappings, or the clean
   soak above proves nothing.  Three corruptions — a flipped payload
   word, a torn trailer, a stale superblock — plus the clean mapping
   that must NOT be convicted. *)

let with_control_mapping cfg name f =
  let path =
    Filename.concat cfg.dir
      (Printf.sprintf "arc-crash-ctl-%d-%s.shm" (Unix.getpid ()) name)
  in
  let m = Shm_mem.create ~path ~words:(1 lsl 14) in
  let init = Array.make 8 0 in
  P0.stamp init ~seq:0 ~len:8;
  let inst = Shm_arc.create m ~readers:2 ~capacity:8 ~init in
  let module I = (val inst : Shm_arc.INSTANCE) in
  let src = Array.make 8 0 in
  for k = 1 to 5 do
    P0.stamp src ~seq:k ~len:8;
    I.R.write I.reg ~src ~len:8
  done;
  let verdict = f m in
  Shm_mem.close m;
  Sys.remove path;
  verdict

let newest_buffer m =
  let best = ref None in
  Shm_mem.iter_buffers m (fun (info : Shm_mem.buffer_info) ->
      match !best with
      | Some (b : Shm_mem.buffer_info) when b.end_seq >= info.end_seq -> ()
      | _ -> if info.end_seq > 0 then best := Some info);
  match !best with Some b -> b | None -> failwith "control: nothing published"

let conviction_controls cfg =
  let check name expect verdict =
    let ok = expect verdict in
    Printf.printf "conviction-control %s %s\n" name
      (match (ok, verdict) with
      | true, Ok (r : Shm_mem.recovery) when r.convicted = [] ->
          Printf.sprintf "INTACT (expected): %d intact, 0 convictions" r.intact
      | true, Ok r -> Printf.sprintf "CONVICTED (expected): %s" (pp_convicted r.convicted)
      | true, Error msg -> Printf.sprintf "CONVICTED (expected): %s" msg
      | false, Ok r ->
          Printf.sprintf "UNCONVICTED — integrity layer is vacuous (%s)"
            (pp_convicted r.convicted)
      | false, Error msg -> Printf.sprintf "unexpected whole-mapping conviction: %s" msg);
    ok
  in
  let flipped =
    with_control_mapping cfg "flip" (fun m ->
        let b = newest_buffer m in
        let at = b.base + Layout.buf_header + 1 in
        Shm_mem.unsafe_set m at (Shm_mem.unsafe_get m at lxor 1);
        Shm_mem.recover m)
    |> check "flipped-payload" (function
         | Ok (r : Shm_mem.recovery) ->
             List.exists
               (fun (c : Shm_mem.conviction) -> c.why = Shm_mem.Checksum)
               r.convicted
         | Error _ -> false)
  in
  let torn =
    with_control_mapping cfg "torn" (fun m ->
        let b = newest_buffer m in
        Shm_mem.unsafe_set m (b.base + Layout.buf_end) 0;
        Shm_mem.recover m)
    |> check "torn-trailer" (function
         | Ok (r : Shm_mem.recovery) ->
             List.exists
               (fun (c : Shm_mem.conviction) -> c.why = Shm_mem.Torn)
               r.convicted
         | Error _ -> false)
  in
  let stale =
    with_control_mapping cfg "stale" (fun m ->
        Shm_mem.unsafe_set m Layout.sb_epoch 0;
        Shm_mem.recover m)
    |> check "stale-superblock" (function Error _ -> true | Ok _ -> false)
  in
  let clean =
    with_control_mapping cfg "clean" Shm_mem.recover
    |> check "clean-mapping" (function
         | Ok (r : Shm_mem.recovery) -> r.convicted = [] && r.intact > 0
         | Error _ -> false)
  in
  flipped && torn && stale && clean

(* {1 Campaign driver} *)

(* Campaign counters as an exposition dump.  The per-run recoveries
   happen in forked subprocesses, so their process-local Shm_mem cells
   die with them — the campaign aggregates come from the marshalled
   run results instead, and the Shm_mem section reflects only
   recoveries this process performed itself (the conviction controls,
   or a --replay-seed run). *)
let print_metrics ~runs ~failing ~pendings ~convictions ~journaled =
  let open Arc_obs.Obs in
  print_string
    (prometheus
       ([
          counter "crash_runs_total" ~help:"Kill-9 runs executed" runs;
          counter "crash_failing_runs_total" ~help:"Runs with violations"
            failing;
          counter "crash_pending_at_kill_total"
            ~help:"Runs where the writer died with a write in flight" pendings;
          counter "crash_slots_convicted_total"
            ~help:"Register slots convicted by post-crash recovery" convictions;
          counter "crash_journal_quarantines_total"
            ~help:"Slots quarantined via the prefreeze journal" journaled;
        ]
       @ Shm_mem.metrics ()))

let run_campaign cfg fail_log skip_controls metrics =
  let failing = ref [] in
  let outcomes = Hashtbl.create 8 in
  let convictions = ref 0 and journaled = ref 0 and pendings = ref 0 in
  for run = 1 to cfg.runs do
    let seed = derive_seed cfg run in
    let r = run_one_isolated cfg ~seed in
    Hashtbl.replace outcomes r.outcome
      (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes r.outcome));
    convictions := !convictions + List.length r.convicted;
    journaled := !journaled + r.journaled;
    if r.pending <> No_pending then incr pendings;
    if r.violations <> [] then failing := seed :: !failing
  done;
  let total_failing = List.length !failing in
  Printf.printf
    "arc-crash: %d runs, %d failing; pending-at-kill %d, slots convicted %d, \
     journal quarantines %d; outcomes: %s\n"
    cfg.runs total_failing !pendings !convictions !journaled
    (String.concat ", "
       (Hashtbl.fold
          (fun k v acc -> Printf.sprintf "%s=%d" k v :: acc)
          outcomes []));
  List.iter
    (fun seed ->
      Printf.printf "violation [seed %d]\n  replay: %s\n" seed
        (replay_command cfg seed))
    (List.rev !failing);
  (match fail_log with
  | Some path when !failing <> [] ->
      let oc = open_out path in
      List.iter
        (fun seed ->
          output_string oc (replay_command cfg seed);
          output_char oc '\n')
        (List.sort_uniq compare !failing);
      close_out oc;
      Printf.printf "replay commands written to %s\n" path
  | _ -> ());
  let controls_ok = skip_controls || conviction_controls cfg in
  if metrics then
    print_metrics ~runs:cfg.runs ~failing:total_failing ~pendings:!pendings
      ~convictions:!convictions ~journaled:!journaled;
  if total_failing > 0 then exit 1;
  if not controls_ok then exit 2

let run runs seed readers capacity writes successor_writes dir replay_seed
    verbose fail_log skip_controls metrics =
  let dir = match dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  let cfg =
    {
      runs;
      seed;
      readers;
      capacity;
      writes_max = writes;
      successor_writes;
      dir;
      verbose;
    }
  in
  match replay_seed with
  | Some s ->
      Printf.printf "replaying seed %d\n" s;
      let r = run_one cfg ~seed:s in
      print_result ~verbose:true r;
      if metrics then
        print_metrics ~runs:1
          ~failing:(if r.violations <> [] then 1 else 0)
          ~pendings:(if r.pending <> No_pending then 1 else 0)
          ~convictions:(List.length r.convicted)
          ~journaled:r.journaled;
      if r.violations <> [] then exit 1
  | None -> run_campaign cfg fail_log skip_controls metrics

let cmd =
  let runs =
    Arg.(value & opt int 20 & info [ "runs" ] ~docv:"N" ~doc:"Kill-9 runs.")
  in
  let seed =
    Arg.(value & opt int 2049 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
  in
  let readers =
    Arg.(
      value & opt int 3
      & info [ "readers" ] ~docv:"N" ~doc:"Reader domains in the parent.")
  in
  let capacity =
    Arg.(
      value & opt int 32 & info [ "capacity" ] ~docv:"WORDS" ~doc:"Snapshot words.")
  in
  let writes =
    Arg.(
      value & opt int 30_000
      & info [ "writes" ] ~docv:"N" ~doc:"Child writes before it stops on its own.")
  in
  let successor_writes =
    Arg.(
      value & opt int 100
      & info [ "successor-writes" ] ~docv:"N"
          ~doc:"Writes by the recovered parent writer after failover.")
  in
  let dir =
    Arg.(
      value & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory for mapping files (default: system temp dir).")
  in
  let replay_seed =
    Arg.(
      value & opt (some int) None
      & info [ "replay-seed" ] ~docv:"SEED"
          ~doc:"Replay one derived seed (as printed by a failing campaign) and \
                exit.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-run lines.") in
  let fail_log =
    Arg.(
      value & opt (some string) None
      & info [ "fail-log" ] ~docv:"PATH"
          ~doc:"Write failing-seed replay commands to this file (CI artifact).")
  in
  let skip_controls =
    Arg.(
      value & flag
      & info [ "skip-controls" ] ~doc:"Skip the corruption negative controls.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After the campaign (or replay), print the crash/recovery \
             counters — runs, pending-at-kill, convictions, journal \
             quarantines, plus this process's shm recovery cells — as a \
             Prometheus-style text dump.")
  in
  Cmd.v
    (Cmd.info "arc-crash"
       ~doc:
         "Kill-9 the writer of a shared-memory ARC register at random points; \
          verify that recovery convicts exactly the torn state and that the \
          surviving cross-process history stays atomic.")
    Term.(
      const run $ runs $ seed $ readers $ capacity $ writes $ successor_writes
      $ dir $ replay_seed $ verbose $ fail_log $ skip_controls $ metrics)

let () = exit (Cmd.eval cmd)

examples/telemetry_hub.mli:

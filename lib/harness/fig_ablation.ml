(** Ablations: E5 (the §3.4 free-slot hint — measured slot probes per
    write with parked readers plus hold-model throughput of the two
    variants) and E8 (the dynamic-allocation variant's memory
    footprint under different snapshot-size distributions, §3.3). *)

module Table = Arc_report.Table
module Arc_direct = Arc_core.Arc.Make (Arc_mem.Real_mem)
module P_direct = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let probes_per_write ~use_hint ~readers ~writes =
  let capacity = 16 in
  let init = Array.make capacity 0 in
  P_direct.stamp init ~seq:0 ~len:capacity;
  let reg = Arc_direct.create_with ~use_hint ~readers ~capacity ~init in
  let handles = Array.init readers (Arc_direct.reader reg) in
  let src = Array.make capacity 0 in
  (* Park all but one reader on distinct old snapshots. *)
  for seq = 1 to readers do
    P_direct.stamp src ~seq ~len:capacity;
    Arc_direct.write reg ~src ~len:capacity;
    ignore (Arc_direct.read_with handles.(seq - 1) ~f:(fun _ _ -> ()))
  done;
  let before = Arc_direct.write_probes reg in
  for seq = readers + 1 to readers + writes do
    ignore (Arc_direct.read_with handles.(0) ~f:(fun _ _ -> ()));
    P_direct.stamp src ~seq ~len:capacity;
    Arc_direct.write reg ~src ~len:capacity
  done;
  float_of_int (Arc_direct.write_probes reg - before) /. float_of_int writes

let ablation_hint (opts : Grid.opts) =
  let table =
    Table.create
      ~title:
        "E5 — §3.4 free-slot hint ablation: write-side slot probes per write \
         (parked readers) and hold-model throughput"
      ~columns:[ "variant"; "readers"; "probes/write"; "hold ops/s (3 readers)" ]
  in
  let readerss = if opts.Grid.quick then [ 8 ] else [ 8; 32; 128 ] in
  let throughput name =
    let entry = Registry.find name in
    let cfg =
      {
        Config.default_real with
        Config.duration_s = opts.Grid.duration_s;
        seed = opts.Grid.seed;
      }
    in
    Grid.mean_of ~reps:opts.Grid.reps (fun () ->
        (entry.Registry.run_real cfg).Config.total_throughput)
  in
  let tp_hint = throughput "arc" and tp_nohint = throughput "arc-nohint" in
  List.iter
    (fun readers ->
      List.iter
        (fun (label, use_hint, tp) ->
          Table.add_row table
            [
              label;
              string_of_int readers;
              Printf.sprintf "%.2f" (probes_per_write ~use_hint ~readers ~writes:500);
              Printf.sprintf "%.3g" tp;
            ])
        [ ("arc (hint)", true, tp_hint); ("arc-nohint", false, tp_nohint) ])
    readerss;
  table

(* E8: the dynamic-allocation variant's memory footprint under
   different snapshot-size distributions. *)
module Arc_dyn = Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem)

let ablation_dynamic (_opts : Grid.opts) =
  let table =
    Table.create
      ~title:
        "E8 — dynamic buffer allocation (§3.3 note): memory footprint vs static \
         ARC (3 readers, capacity 16384 words, 2000 writes)"
      ~columns:
        [ "size distribution"; "static words"; "dynamic words"; "reallocs/write" ]
  in
  let readers = 3 in
  let capacity = 16384 in
  let static_words = (readers + 2) * capacity in
  let run_distribution name sample =
    let rng = Arc_util.Splitmix.of_int 11 in
    let reg = Arc_dyn.create ~readers ~capacity ~init:[| 0 |] in
    let handles = Array.init readers (Arc_dyn.reader reg) in
    let src = Array.make capacity 0 in
    let writes = 2000 in
    for _ = 1 to writes do
      let len = sample rng in
      P_direct.stamp src ~seq:1 ~len;
      Arc_dyn.write reg ~src ~len;
      (* a reader occasionally follows, cycling the slots *)
      if Arc_util.Splitmix.bernoulli rng 0.5 then
        ignore
          (Arc_dyn.read_with handles.(Arc_util.Splitmix.int rng readers)
             ~f:(fun _ _ -> ()))
    done;
    Table.add_row table
      [
        name;
        string_of_int static_words;
        string_of_int (Arc_dyn.footprint_words reg);
        Printf.sprintf "%.3f"
          (float_of_int (Arc_dyn.reallocations reg) /. float_of_int writes);
      ]
  in
  run_distribution "constant 256w" (fun _ -> 256);
  run_distribution "uniform 1..512w" (fun rng -> 1 + Arc_util.Splitmix.int rng 512);
  run_distribution "bimodal 64w/16384w" (fun rng ->
      if Arc_util.Splitmix.bernoulli rng 0.95 then 64 else capacity);
  table

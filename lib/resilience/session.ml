(* Deadline-aware reader sessions (ISSUE 3).

   A session wraps one reader handle with the full degradation stack:
   bounded retry with jittered exponential backoff on
   {!Arc_core.Register_intf.Saturated} (the typed error both [Arc] and
   [Arc_dynamic] raise from a read path that trips a capacity or
   revocation defense guard), a per-register circuit breaker, and a
   last-known-good snapshot served — with its age — when live reads
   are unavailable.  The caller gets a typed {!outcome} instead of an
   exception through the hot path, and a degraded serve always
   discloses itself ([Stale]/[Exhausted]).

   Every successful live read refreshes the snapshot via a
   buffer-to-buffer blit inside the read callback; that copy is the
   price of the degradation contract (the session deliberately trades
   ARC's zero-copy read for the ability to answer when the register
   cannot).  The staleness the snapshot can accrue before the session
   refuses to serve it is bounded by [max_stale] (in the session's
   clock units); the translation of that clock bound into a
   writes-behind bound is the checker's job
   ({!Arc_trace.Checker.check_bounded_staleness}).

   Outcome accounting uses {!Arc_obs.Obs.Outcomes} — per-class
   single-writer cells — not {!Arc_util.Stats.Outcomes}: the soak
   engine's recorder and live summary read a session's counters from
   another thread {e while the session is still running}, which the
   plain mutable Stats record was never licensed for (it documents
   "merge after join").  Cells make any mid-run read a valid racy
   snapshot; {!Outcomes.snapshot} bridges back into the Stats world
   for post-join aggregation. *)

module Make (R : Arc_core.Register_intf.S) = struct
  module M = R.Mem
  module Outcomes = Arc_obs.Obs.Outcomes

  type 'a outcome =
    | Fresh of 'a
    | Stale of { value : 'a; age : int }
        (** Served from the snapshot captured [age] clock units ago
            (within the session's [max_stale] bound). *)
    | Exhausted of { attempts : int; last_error : string }
        (** No live read before the deadline and no admissible
            snapshot.  [attempts] counts live attempts made. *)
    | Backpressured of Arc_core.Register_intf.backpressure
        (** The session's admission guard refused service — its ticket
            was revoked by the gate's lease sweep (ISSUE 8) — and no
            admissible snapshot remained.  Unlike [Exhausted] this is
            not worth retrying on this session: re-admit through the
            gate for a fresh ticket. *)

  type t = {
    rd : R.reader;
    admission : (unit -> Arc_core.Register_intf.backpressure option) option;
        (* checked before each live attempt; [Some bp] = refused *)
    now : unit -> int;
    sleep : int -> unit;
    backoff : Backoff.t;
    breaker : Breaker.t;
    max_stale : int;
    snap : M.buffer;
    mutable snap_len : int;  (* -1 until the first successful read *)
    mutable snap_at : int;
    outcomes : Outcomes.t;
    backpressured : Arc_obs.Obs.Cell.t;
        (* admission-refused serves; single-writer like all cells *)
    latency : Arc_util.Histogram.t;
        (* per-read_with latency in the session's clock units,
           including retries/backoff — the caller-observed tail *)
  }

  let create ?admission ?backoff ?breaker ?(max_stale = max_int) ~now ~sleep
      ~capacity rd =
    if capacity < 1 then
      invalid_arg (Printf.sprintf "Session.create: capacity = %d" capacity);
    if max_stale < 0 then
      invalid_arg (Printf.sprintf "Session.create: max_stale = %d" max_stale);
    let backoff =
      match backoff with Some b -> b | None -> Backoff.create ~seed:0 ()
    in
    let breaker =
      match breaker with Some b -> b | None -> Breaker.create ~now ()
    in
    {
      rd;
      admission;
      now;
      sleep;
      backoff;
      breaker;
      max_stale;
      snap = M.alloc capacity;
      snap_len = -1;
      snap_at = 0;
      outcomes = Outcomes.create ();
      backpressured = Arc_obs.Obs.Cell.create ();
      latency = Arc_util.Histogram.create ();
    }

  let outcomes t = t.outcomes
  let breaker t = t.breaker
  let latency t = t.latency

  let snapshot_age t =
    if t.snap_len < 0 then None else Some (t.now () - t.snap_at)

  (* Safe from any thread mid-run: outcome counts come from the
     per-class cells, breaker trips from its own counter. *)
  let metrics t =
    let open Arc_obs.Obs in
    [
      counter "session_reads_fresh_total" ~help:"Live reads served fresh"
        (Outcomes.ok_count t.outcomes);
      counter "session_stale_serves_total"
        ~help:"Reads served from the degradation snapshot"
        (Outcomes.stale_count t.outcomes);
      counter "session_exhausted_total"
        ~help:"Reads that found no live value and no admissible snapshot"
        (Outcomes.exhausted_count t.outcomes);
      counter "session_errors_total" ~help:"Live read attempts that failed"
        (Outcomes.error_count t.outcomes);
      counter "session_retries_total" ~help:"Backoff retry attempts"
        (Outcomes.retry_count t.outcomes);
      counter "session_backpressured_total"
        ~help:"Reads refused by the admission guard (revoked ticket)"
        (Cell.get t.backpressured);
      counter "session_breaker_trips_total"
        ~help:"Circuit-breaker Closed->Open transitions"
        (Breaker.trips t.breaker);
      gauge "session_snapshot_age"
        ~help:"Clock units since the snapshot was refreshed (-1 if none)"
        (match snapshot_age t with None -> -1. | Some a -> float_of_int a);
    ]
    @
    if Arc_util.Histogram.count t.latency = 0 then []
    else
      List.map
        (fun (q, p) ->
          gauge "session_read_latency"
            ~labels:[ ("quantile", q) ]
            ~help:
              "read_with latency in session clock units (interpolated \
               histogram percentile)"
            (float_of_int (Arc_util.Histogram.percentile t.latency p)))
        [ ("0.5", 50.); ("0.99", 99.); ("1.0", 100.) ]

  let serve_degraded t ~attempts ~last_error ~f =
    let age = t.now () - t.snap_at in
    if t.snap_len >= 0 && age <= t.max_stale then begin
      Outcomes.stale t.outcomes;
      Stale { value = f t.snap t.snap_len; age }
    end
    else begin
      Outcomes.exhausted t.outcomes;
      Exhausted { attempts; last_error }
    end

  (* An admission refusal is not an error to retry through — the gate
     already said no and told us when to come back — so it degrades
     immediately: snapshot if admissible, else the typed verdict. *)
  let serve_refused t ~f bp =
    Arc_obs.Obs.Cell.incr t.backpressured;
    let age = t.now () - t.snap_at in
    if t.snap_len >= 0 && age <= t.max_stale then begin
      Outcomes.stale t.outcomes;
      Stale { value = f t.snap t.snap_len; age }
    end
    else Backpressured bp

  let live_read t ~f =
    R.read_with t.rd ~f:(fun buf len ->
        M.blit buf t.snap ~len;
        t.snap_len <- len;
        t.snap_at <- t.now ();
        f buf len)

  (* [deadline] is absolute, on the session's clock.  The retry loop is
     bounded three ways: the deadline, the breaker (a trip mid-retry
     short-circuits the next attempt), and backoff growth. *)
  let read_with ?(deadline = max_int) t ~f =
    let started = t.now () in
    let finish outcome =
      Arc_util.Histogram.record t.latency (t.now () - started);
      outcome
    in
    let rec attempt n last_error =
      match match t.admission with Some g -> g () | None -> None with
      | Some bp -> finish (serve_refused t ~f bp)
      | None ->
      if not (Breaker.allow t.breaker) then
        finish (serve_degraded t ~attempts:(n - 1) ~last_error ~f)
      else
        match live_read t ~f with
        | v ->
          Breaker.record_success t.breaker;
          Backoff.reset t.backoff;
          Outcomes.ok t.outcomes;
          finish (Fresh v)
        | exception Arc_core.Register_intf.Saturated msg ->
          Outcomes.error t.outcomes;
          Breaker.record_failure t.breaker;
          let delay = Backoff.next t.backoff in
          if t.now () + delay > deadline then
            finish (serve_degraded t ~attempts:n ~last_error:msg ~f)
          else begin
            Outcomes.retry t.outcomes;
            t.sleep delay;
            attempt (n + 1) msg
          end
    in
    attempt 1 "circuit breaker open"
end

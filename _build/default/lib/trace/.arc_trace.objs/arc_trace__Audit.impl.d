lib/trace/audit.ml: Arc_util Array Format History List

(* Bit helpers backing the RF baseline's trace-bit bookkeeping. *)

module Bits = Arc_util.Bits

let check = Alcotest.(check int)

let test_popcount () =
  check "zero" 0 (Bits.popcount 0);
  check "one bit" 1 (Bits.popcount 1);
  check "0b1011" 3 (Bits.popcount 0b1011);
  check "max_int is all ones but the sign" (Sys.int_size - 1) (Bits.popcount max_int)

let test_lowest_set () =
  check "bit 0" 0 (Bits.lowest_set 1);
  check "bit 5" 5 (Bits.lowest_set 0b100000);
  check "mixed takes lowest" 1 (Bits.lowest_set 0b1010);
  Alcotest.check_raises "zero rejected" (Invalid_argument "Bits.lowest_set: zero")
    (fun () -> ignore (Bits.lowest_set 0))

let test_iter_set () =
  let seen = ref [] in
  Bits.iter_set (fun i -> seen := i :: !seen) 0b101001;
  Alcotest.(check (list int)) "ascending order" [ 0; 3; 5 ] (List.rev !seen);
  let none = ref 0 in
  Bits.iter_set (fun _ -> incr none) 0;
  check "no bits in zero" 0 !none

let test_fold_set () =
  check "sum of indices" (0 + 3 + 5) (Bits.fold_set ( + ) 0 0b101001);
  check "count equals popcount" (Bits.popcount 0b1111011)
    (Bits.fold_set (fun acc _ -> acc + 1) 0 0b1111011)

let test_ceil_log2 () =
  check "1 -> 0" 0 (Bits.ceil_log2 1);
  check "2 -> 1" 1 (Bits.ceil_log2 2);
  check "3 -> 2" 2 (Bits.ceil_log2 3);
  check "4 -> 2" 2 (Bits.ceil_log2 4);
  check "5 -> 3" 3 (Bits.ceil_log2 5);
  check "1024 -> 10" 10 (Bits.ceil_log2 1024);
  check "1025 -> 11" 11 (Bits.ceil_log2 1025);
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Bits.ceil_log2: non-positive") (fun () ->
      ignore (Bits.ceil_log2 0))

let test_mask () =
  check "mask 0" 0 (Bits.mask 0);
  check "mask 4" 15 (Bits.mask 4);
  check "mask 32" ((1 lsl 32) - 1) (Bits.mask 32)

let test_test () =
  Alcotest.(check bool) "bit set" true (Bits.test 0b100 2);
  Alcotest.(check bool) "bit clear" false (Bits.test 0b100 1)

let prop_popcount_via_fold =
  QCheck.Test.make ~name:"popcount agrees with fold_set" ~count:500
    QCheck.(int_bound max_int)
    (fun w -> Bits.popcount w = Bits.fold_set (fun acc _ -> acc + 1) 0 w)

let prop_iter_ascending =
  QCheck.Test.make ~name:"iter_set visits ascending set bits" ~count:500
    QCheck.(int_bound max_int)
    (fun w ->
      let seen = ref [] in
      Bits.iter_set (fun i -> seen := i :: !seen) w;
      let l = List.rev !seen in
      List.for_all (fun i -> Bits.test w i) l
      && List.sort compare l = l
      && List.length l = Bits.popcount w)

let prop_ceil_log2_bounds =
  QCheck.Test.make ~name:"2^(ceil_log2 n - 1) < n <= 2^(ceil_log2 n)" ~count:500
    QCheck.(int_range 1 (1 lsl 30))
    (fun n ->
      let k = Bits.ceil_log2 n in
      (1 lsl k) >= n && (k = 0 || 1 lsl (k - 1) < n))

(* The count-field boundary shared with Arc_util.Packed: the packed
   word's 32-bit count saturates at 2^32 - 2, one unit below the field
   mask.  Pin down the bit identities the saturation guard relies on. *)
let test_count_field_boundary () =
  let module Packed = Arc_util.Packed in
  check "mask 32 is the count mask" Packed.max_count (Bits.mask 32);
  check "2^32 - 2 is all count bits but bit 0" 31 (Bits.popcount Packed.max_readers);
  Alcotest.(check bool)
    "bit 0 clear at 2^32 - 2" false
    (Bits.test Packed.max_readers 0);
  check "2^32 - 3 keeps 31 bits set" 31 (Bits.popcount (Packed.max_readers - 1));
  check "2^32 - 1 sets the full field" 32 (Bits.popcount Packed.max_count);
  (* One count above max_count escapes the field: exactly the carry
     into index bit 0 the saturation guard must pre-empt. *)
  check "max_count + 1 leaves the count field" 32
    (Bits.lowest_set (Packed.max_count + 1))

let suite =
  [
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "count-field boundary" `Quick test_count_field_boundary;
    Alcotest.test_case "lowest_set" `Quick test_lowest_set;
    Alcotest.test_case "iter_set" `Quick test_iter_set;
    Alcotest.test_case "fold_set" `Quick test_fold_set;
    Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "mask" `Quick test_mask;
    Alcotest.test_case "test" `Quick test_test;
    QCheck_alcotest.to_alcotest prop_popcount_via_fold;
    QCheck_alcotest.to_alcotest prop_iter_ascending;
    QCheck_alcotest.to_alcotest prop_ceil_log2_bounds;
  ]

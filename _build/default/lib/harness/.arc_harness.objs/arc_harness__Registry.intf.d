lib/harness/registry.mli: Arc_vsched Config Count_runner

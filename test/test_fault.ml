(* Fault-injection subsystem (ISSUE 2): crash-stop readers, stalled
   threads, torn writer copies — driven through the register
   algorithms by seeded campaigns, judged by the crash-aware checker
   and the presence-ledger auditor, with fault-layer-driven broken
   registers as negative controls proving none of it is vacuous. *)

module Fault_plan = Arc_fault.Fault_plan
module Campaign = Arc_fault.Campaign
module Checker = Arc_trace.Checker
module Packed = Arc_util.Packed
module Strategy = Arc_vsched.Strategy
module Sched = Arc_vsched.Sched
module Explore = Arc_vsched.Explore
module Replay = Arc_vsched.Replay
module Config = Arc_harness.Config

module RA = Arc_core.Arc.Make (Campaign.Mem)
module CA = Campaign.Make (RA)
module RN = Arc_core.Arc_nohint.Make (Campaign.Mem)
module CN = Campaign.Make (RN)
module RD = Arc_core.Arc_dynamic.Make (Campaign.Mem)
module CD = Campaign.Make (RD)
module RF = Arc_baselines.Rf.Make (Campaign.Mem)
module CF = Campaign.Make (RF)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* White-box probes wiring ARC's Debug into the campaign's invariant
   audit (presence-ledger slack within [0, crashed]; Lemma 4.1's free
   slot survives crashes). *)
let arc_audit reg ~crashed_readers ~writer_crashed =
  Campaign.arc_audit
    {
      Campaign.presence_slack = (fun () -> RA.Debug.presence_slack reg);
      free_slot_exists = (fun () -> RA.Debug.free_slot_exists reg);
    }
    ~crashed_readers ~writer_crashed

let fail_violations who (o : Campaign.outcome) =
  match o.Campaign.violations with
  | [] -> ()
  | (seed, msg) :: _ ->
    Alcotest.failf "%s: %d violations, first (seed %d): %s" who
      (List.length o.Campaign.violations)
      seed msg

(* {1 The bounded fault campaigns} *)

let test_campaign_arc () =
  let cfg = { Campaign.default with schedules = 100; seed = 2024 } in
  let o = CA.run ~audit:arc_audit cfg in
  fail_violations "arc" o;
  Alcotest.(check int) "all schedules ran" 100 o.Campaign.schedules_run;
  (* Non-vacuity: over 100 random plans the fault classes must all
     actually fire. *)
  Alcotest.(check bool) "reader crashes fired" true (o.Campaign.reader_crashes > 0);
  Alcotest.(check bool) "stalls fired" true (o.Campaign.stalls > 0);
  Alcotest.(check bool) "writer crashes fired" true (o.Campaign.writer_crashes > 0);
  Alcotest.(check bool) "histories checked" true (o.Campaign.reads_checked > 0);
  (* Both crash-completion verdicts must occur: some pending writes
     vanish, some take effect. *)
  Alcotest.(check bool) "some pending writes resolved" true
    (o.Campaign.vanished + o.Campaign.took_effect > 0)

let test_campaign_arc_nohint () =
  let cfg = { Campaign.default with schedules = 40; seed = 31 } in
  let o = CN.run cfg in
  fail_violations "arc-nohint" o;
  Alcotest.(check bool) "faults fired" true (o.Campaign.reader_crashes > 0)

let test_campaign_arc_dynamic () =
  let cfg = { Campaign.default with schedules = 40; seed = 47 } in
  let o = CD.run cfg in
  fail_violations "arc-dynamic" o;
  Alcotest.(check bool) "faults fired" true (o.Campaign.reader_crashes > 0)

let test_campaign_rf () =
  let cfg = { Campaign.default with schedules = 40; seed = 53 } in
  let o = CF.run cfg in
  fail_violations "rf" o;
  Alcotest.(check bool) "faults fired" true (o.Campaign.reader_crashes > 0)

let test_campaign_deterministic () =
  let cfg = { Campaign.default with schedules = 20; seed = 7 } in
  let o1 = CA.run ~audit:arc_audit cfg in
  let o2 = CA.run ~audit:arc_audit cfg in
  Alcotest.(check bool) "same seed, same outcome" true (o1 = o2)

(* {1 Negative controls: the pipeline must convict} *)

(* Torn write via the fault layer: the writer's second bulk copy stops
   after 3 of 16 words but reports success — readers must observe
   payload validation failures. *)
let test_silent_tear_convicted () =
  let plan = Broken_regs.Faulty_plans.silent_tear ~at_copy:2 ~at_word:3 in
  let cfg = { Campaign.default with max_steps = 20_000 } in
  let result, _reg = CA.run_plan ~plan ~strategy:(Strategy.random ~seed:9) cfg in
  Alcotest.(check int) "the tear fired" 1
    (List.length result.Campaign.stats.Arc_fault.Fault_mem.tears);
  Alcotest.(check bool) "torn snapshots detected" true (result.Campaign.torn > 0)

(* Lost release via the fault layer: reader fiber 1's first RMW — its
   R3 release increment — is dropped.  The history stays atomic, so
   only the presence-ledger audit can convict: slack goes negative
   (presence double-counted).  If the leaked presence instead starves
   the writer of free slots first, that failure is an equally valid
   conviction. *)
let test_lost_release_convicted () =
  let plan = Broken_regs.Faulty_plans.lost_release ~reader_fiber:1 in
  let cfg = { Campaign.default with max_steps = 20_000 } in
  match CA.run_plan ~plan ~strategy:(Strategy.random ~seed:11) cfg with
  | exception Failure msg ->
    Alcotest.(check bool) "writer starved of free slots" true
      (contains msg "no free slot")
  | result, reg ->
    Alcotest.(check int) "the drop fired" 1
      result.Campaign.stats.Arc_fault.Fault_mem.drops;
    let slack = RA.Debug.presence_slack reg in
    Alcotest.(check bool)
      (Printf.sprintf "negative ledger slack convicts (slack = %d)" slack)
      true (slack < 0);
    (* ... and the generic audit hook turns that into a violation. *)
    (match arc_audit reg ~crashed_readers:0 ~writer_crashed:false with
    | [] -> Alcotest.fail "audit accepted a lost release"
    | _ -> ())

(* The cas-lie action (ISSUE 7's split-vote forcer), exercised through
   the ambient-fiber identity: the calling context is no vsched fiber
   — exactly the real-process situation the crash campaign's negative
   control runs in. *)
let test_cas_lie_ambient () =
  let module M = Campaign.Mem in
  (* Without an ambient identity, out-of-fiber accesses are fault-free
     even with a plan armed. *)
  M.install (Fault_plan.cas_lie ~fiber:0 ~nth:1 Fault_plan.empty);
  let a = M.atomic 5 in
  Alcotest.(check bool) "no ambient: CAS is honest" true
    (M.compare_and_set a 5 6);
  Alcotest.(check int) "no ambient: CAS applied" 6 (M.load a);
  ignore (M.drain ());
  (* With the ambient identity, the planned lie fires on this
     context's first rmw: success reported, word untouched. *)
  M.install (Fault_plan.cas_lie ~fiber:0 ~nth:1 Fault_plan.empty);
  M.set_ambient_fiber (Some 0);
  Fun.protect
    ~finally:(fun () -> M.set_ambient_fiber None)
    (fun () ->
      let b = M.atomic 5 in
      Alcotest.(check bool) "lying CAS reports success" true
        (M.compare_and_set b 5 9);
      Alcotest.(check int) "…but the word is untouched" 5 (M.load b);
      (* The event is spent: the next CAS is honest again. *)
      Alcotest.(check bool) "next CAS honest" true (M.compare_and_set b 5 9);
      Alcotest.(check int) "honest CAS applied" 9 (M.load b);
      let stats = M.drain () in
      Alcotest.(check int) "the lie was counted" 1
        stats.Arc_fault.Fault_mem.cas_lies)

(* A stale register (broken independently of the fault layer) must
   still be convicted when run through the crash-aware campaign. *)
module RS = Broken_regs.Stale (Campaign.Mem)
module CS = Campaign.Make (RS)

let test_stale_register_convicted () =
  let cfg =
    {
      Campaign.default with
      schedules = 5;
      max_crash_readers = 0;
      stall_threads = false;
      crash_writer = false;
    }
  in
  let o = CS.run cfg in
  Alcotest.(check bool) "stale register convicted" true
    (not (Campaign.clean o))

(* {1 Saturation guard at the packed-count boundary} *)

let test_saturation_guard () =
  let init = [| 1; 2; 3; 4 |] in
  let reg = RA.create ~readers:2 ~capacity:4 ~init in
  let rd = RA.reader reg 0 in
  (* Below the bound: a slow-path subscribe that lands the count at
     exactly max_readers (2^32 - 2) is legal... *)
  RA.Debug.force_current reg
    (Packed.make ~index:1 ~count:(Packed.max_readers - 1));
  let _, _ = RA.read_view rd in
  Alcotest.(check int) "count landed on the bound" Packed.max_readers
    (Packed.count (RA.Debug.current reg));
  (* ... the next subscribe would exceed it and must raise, not wrap. *)
  RA.Debug.force_current reg (Packed.make ~index:0 ~count:Packed.max_readers);
  (match RA.read_view rd with
  | exception Arc_core.Register_intf.Saturated msg ->
    Alcotest.(check bool) "error names the bound" true
      (contains msg (string_of_int Packed.max_readers))
  | _ -> Alcotest.fail "increment past 2^32 - 2 must raise Saturated");
  (* A wrap that already happened (count field at the raw maximum, so
     the increment carries into the index bits) is also caught. *)
  let rd2 = RA.reader reg 1 in
  RA.Debug.force_current reg (Packed.make ~index:1 ~count:Packed.max_count);
  match RA.read_view rd2 with
  | exception Arc_core.Register_intf.Saturated _ -> ()
  | _ -> Alcotest.fail "count wraparound must raise Saturated"

(* {1 arc-dynamic: storage reclaim under a crashed reader} *)

let write_seq reg ~len v =
  let src = Array.make len v in
  RD.write reg ~src ~len

let check_reads rd ~len v =
  RD.read_with rd ~f:(fun buf n ->
      Alcotest.(check int) "snapshot length" len n;
      for i = 0 to n - 1 do
        Alcotest.(check int) "snapshot word" v (Campaign.Mem.read_word buf i)
      done)

let test_reclaim_stale () =
  let reg = RD.create ~readers:2 ~capacity:1024 ~init:(Array.make 256 7) in
  let r0 = RD.reader reg 0 in
  let r1 = RD.reader reg 1 in
  check_reads r0 ~len:256 7;
  check_reads r1 ~len:256 7;
  (* r1 now "crashes": it never reads again, pinning slot 0 and its
     256-word buffer forever. *)
  for i = 1 to 6 do
    write_seq reg ~len:256 i;
    check_reads r0 ~len:256 i
  done;
  let before = RD.footprint_words reg in
  Alcotest.(check int) "lease not expired yet: nothing reclaimed" 0
    (RD.reclaim_stale reg ~lease:100);
  let n = RD.reclaim_stale reg ~lease:3 in
  Alcotest.(check int) "exactly the crashed reader's slot reclaimed" 1 n;
  Alcotest.(check int) "reclaimed counter" 1 (RD.reclaimed reg);
  Alcotest.(check int) "footprint dropped by the pinned buffer" (before - 256)
    (RD.footprint_words reg);
  Alcotest.(check int) "reclaim is idempotent" 0 (RD.reclaim_stale reg ~lease:3);
  (* The live reader is unaffected, before and after more writes
     (which may reuse the revoked slot, regrowing its buffer). *)
  check_reads r0 ~len:256 6;
  for i = 7 to 12 do
    write_seq reg ~len:256 i;
    check_reads r0 ~len:256 i
  done;
  (* r1 was merely paused after all: its next read recovers via the
     size-validation handshake — release, resubscribe, current value,
     never reclaimed storage. *)
  check_reads r1 ~len:256 12

let test_auto_reclaim () =
  let reg = RD.create ~readers:2 ~capacity:1024 ~init:(Array.make 512 1) in
  let r0 = RD.reader reg 0 in
  let r1 = RD.reader reg 1 in
  check_reads r0 ~len:512 1;
  check_reads r1 ~len:512 1;
  RD.set_lease reg (Some 2);
  (* r1 silent from here on.  Every 2nd write auto-runs reclaim with
     lease 2, so the pinned 512-word slot is revoked without any
     explicit call. *)
  for i = 1 to 8 do
    write_seq reg ~len:64 i;
    check_reads r0 ~len:64 i
  done;
  Alcotest.(check int) "auto-reclaim revoked the pinned slot" 1
    (RD.reclaimed reg);
  RD.set_lease reg None;
  check_reads r1 ~len:64 8

(* {1 Fault schedules are explorable and replayable} *)

(* Exhaustive bounded exploration of a micro-scenario under a fault
   plan: one write that tears and crashes mid-copy racing one reader.
   In every interleaving the reader must see only the intact initial
   snapshot (the torn copy is never published) and the crash must
   fire. *)
let test_explore_with_faults () =
  let module P = Arc_workload.Payload.Make (Campaign.Mem) in
  let scenario () =
    let init = Array.make 4 0 in
    P.stamp init ~seq:0 ~len:4;
    let reg = RA.create ~readers:1 ~capacity:4 ~init in
    let rd = RA.reader reg 0 in
    let torn = ref 0 in
    let crashed = ref false in
    Campaign.Mem.install
      (Fault_plan.tear ~fiber:0 ~at_copy:1 ~at_word:2 ~silent:false
         Fault_plan.empty);
    let writer () =
      try
        let src = Array.make 4 0 in
        P.stamp src ~seq:1 ~len:4;
        RA.write reg ~src ~len:4
      with Fault_plan.Crashed -> crashed := true
    in
    let reader () =
      RA.read_with rd ~f:(fun buf len ->
          match P.validate buf ~len with
          | Ok _ -> ()
          | Error _ -> incr torn)
    in
    let check () =
      ignore (Campaign.Mem.drain ());
      if !torn > 0 then Alcotest.fail "explore: torn snapshot observed";
      if not !crashed then Alcotest.fail "explore: tear crash did not fire"
    in
    ([| writer; reader |], check)
  in
  let out = Explore.exhaustive ~max_schedules:2_000 ~scenario () in
  Alcotest.(check bool) "many interleavings checked" true (out.Explore.schedules > 100)

(* Record a faulty run's schedule, replay it: the same crashes, tears
   and stalls fire at the same access indices. *)
let test_replay_with_faults () =
  let module P = Arc_workload.Payload.Make (Campaign.Mem) in
  let plan =
    Fault_plan.empty
    |> Fault_plan.crash ~fiber:2 ~at_access:7
    |> Fault_plan.stall ~fiber:0 ~at_access:5 ~steps:120
    |> Fault_plan.tear ~fiber:0 ~at_copy:3 ~at_word:2 ~silent:false
  in
  let run_once strategy =
    let init = Array.make 4 0 in
    P.stamp init ~seq:0 ~len:4;
    let reg = RA.create ~readers:2 ~capacity:4 ~init in
    let reads = ref [] in
    Campaign.Mem.install plan;
    let writer () =
      try
        let src = Array.make 4 0 in
        for seq = 1 to 5 do
          P.stamp src ~seq ~len:4;
          RA.write reg ~src ~len:4
        done
      with Fault_plan.Crashed -> ()
    in
    let reader id () =
      try
        let rd = RA.reader reg id in
        for _ = 1 to 6 do
          RA.read_with rd ~f:(fun buf _len ->
              reads := P.decode_seq buf :: !reads)
        done
      with Fault_plan.Crashed -> ()
    in
    let (_ : Sched.outcome) =
      Sched.run ~strategy [| writer; reader 0; reader 1 |]
    in
    (Campaign.Mem.drain (), !reads)
  in
  let recorder, recording = Replay.recording (Strategy.random ~seed:5) in
  let stats1, reads1 = run_once recording in
  let trace = Replay.captured recorder in
  let replayer, replaying =
    Replay.replaying trace ~fallback:(Strategy.random ~seed:99)
  in
  let stats2, reads2 = run_once replaying in
  Alcotest.(check bool) "replay never diverged" false (Replay.diverged replayer);
  Alcotest.(check bool) "identical fault firings" true (stats1 = stats2);
  Alcotest.(check (list int)) "identical reads" reads1 reads2

(* {1 Watchdog: a hung run becomes a diagnostic failure} *)

module Hang_runner = Arc_harness.Real_runner.Make (Broken_regs.Hang (Arc_mem.Real_mem))
module Arc_runner = Arc_harness.Real_runner.Make (Arc_core.Arc.Make (Arc_mem.Real_mem))

let test_watchdog_kills_hung_run () =
  Broken_regs.Hang_control.arm ();
  let cfg =
    {
      Config.default_real with
      readers = 1;
      size_words = 8;
      duration_s = 0.05;
      parallelism = `Threads;
      watchdog = Some { Config.poll_s = 0.01; grace_s = 0.3 };
    }
  in
  match Hang_runner.run cfg with
  | _ ->
    Broken_regs.Hang_control.free ();
    Alcotest.fail "watchdog did not fire on a hung writer"
  | exception Arc_harness.Real_runner.Hung report ->
    (* Free the leaked worker before judging the report. *)
    Broken_regs.Hang_control.free ();
    Alcotest.(check bool) "report names the stuck writer" true
      (contains report "writer" && contains report "STUCK");
    Alcotest.(check bool) "report shows reader finished" true
      (contains report "reader 0" && contains report "finished")

let test_watchdog_passes_healthy_run () =
  let cfg =
    {
      Config.default_real with
      readers = 2;
      size_words = 32;
      duration_s = 0.05;
      parallelism = `Threads;
      watchdog = Some { Config.poll_s = 0.01; grace_s = 5. };
    }
  in
  let r = Arc_runner.run cfg in
  Alcotest.(check bool) "reads happened" true (r.Config.reads > 0)

(* Satellite: configuration errors name the offending field and value. *)
let test_config_error_messages () =
  let expect_msg part cfg =
    match Arc_runner.run cfg with
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" msg part)
        true (contains msg part)
    | _ -> Alcotest.failf "config accepted; expected rejection on %s" part
  in
  expect_msg "readers = 0" { Config.default_real with readers = 0 };
  expect_msg "size_words = -3" { Config.default_real with size_words = -3 };
  expect_msg "duration_s = 0" { Config.default_real with duration_s = 0. };
  expect_msg "record = -1" { Config.default_real with record = -1 };
  expect_msg "grace_s = 0"
    {
      Config.default_real with
      watchdog = Some { Config.poll_s = 0.05; grace_s = 0. };
    }

let suite =
  [
    Alcotest.test_case "campaign: arc (100 schedules)" `Quick test_campaign_arc;
    Alcotest.test_case "campaign: arc-nohint" `Quick test_campaign_arc_nohint;
    Alcotest.test_case "campaign: arc-dynamic" `Quick test_campaign_arc_dynamic;
    Alcotest.test_case "campaign: rf" `Quick test_campaign_rf;
    Alcotest.test_case "campaign: deterministic from seed" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "negative: silent tear convicted" `Quick
      test_silent_tear_convicted;
    Alcotest.test_case "negative: lost release convicted" `Quick
      test_lost_release_convicted;
    Alcotest.test_case "negative: stale register convicted" `Quick
      test_stale_register_convicted;
    Alcotest.test_case "cas-lie under an ambient fiber" `Quick
      test_cas_lie_ambient;
    Alcotest.test_case "saturation guard at 2^32-2" `Quick test_saturation_guard;
    Alcotest.test_case "arc-dynamic: reclaim stale slot" `Quick test_reclaim_stale;
    Alcotest.test_case "arc-dynamic: auto-reclaim lease" `Quick test_auto_reclaim;
    Alcotest.test_case "explore: exhaustive under faults" `Quick
      test_explore_with_faults;
    Alcotest.test_case "replay: faults replay exactly" `Quick
      test_replay_with_faults;
    Alcotest.test_case "watchdog kills hung run" `Quick test_watchdog_kills_hung_run;
    Alcotest.test_case "watchdog passes healthy run" `Quick
      test_watchdog_passes_healthy_run;
    Alcotest.test_case "config errors name the field" `Quick
      test_config_error_messages;
  ]

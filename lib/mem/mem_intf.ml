(** The memory-operations substrate all register algorithms are
    written against.

    The paper's algorithms (§3.3) are specified in terms of a handful
    of machine-level facilities of TSO multiprocessors:

    - single-word {e synchronization variables} manipulated with plain
      loads/stores and with Read-Modify-Write (RMW) instructions
      ([AtomicAddAndFetch], [AtomicExchange], [AtomicInc], and — for
      the RF baseline — [FetchAndOr]);
    - {e multi-word buffers} holding register snapshots, accessed with
      plain per-word loads and stores.

    Abstracting those facilities behind this signature buys three
    instances from a single implementation of each algorithm:

    - {!Real_mem}: OCaml 5 [Atomic] + native [int array] buffers, for
      actual multi-domain execution and throughput measurement;
    - [Counting (M)]: any instance wrapped with per-domain operation
      counters, to reproduce the paper's "ARC executes fewer RMW
      instructions than RF" argument as measured data (experiment E4);
    - [Arc_vsched.Sim_mem]: simulated shared memory in which every
      shared access is a scheduling point of a deterministic
      cooperative scheduler, enabling schedule exploration, the
      atomicity checker, and the 4000-thread regime of Fig. 3.

    Memory-ordering note.  The paper assumes TSO and argues (§3.3, §4)
    that publishing a slot index through an RMW on [current] makes the
    slot contents visible to any reader that subsequently observes
    that index.  In OCaml's memory model the same discipline holds
    more strongly: all [Atomic] accesses are sequentially consistent,
    so the writer's plain buffer stores happen-before the
    [exchange] on [current], which happens-before a reader's
    [add_and_fetch]/[load] of [current], which happens-before the
    reader's plain buffer loads.  Plain buffer accesses therefore
    never race in ARC/RF/lock executions.  (Peterson's algorithm
    intentionally lets buffer reads race with writes and discards torn
    results; on OCaml [int array]s a racy per-word read is
    memory-safe and returns one of the written values, which is
    exactly the per-word atomicity Peterson assumes of single words.) *)

module type S = sig
  val name : string
  (** Instance name, used in reports ("real", "counting(real)", "sim"). *)

  (** {1 Synchronization variables (single word)} *)

  type atomic
  (** An int-valued single-word synchronization variable. *)

  val atomic : int -> atomic

  val atomic_contended : int -> atomic
  (** Like {!atomic}, but for {e hot} synchronization words that
      distinct threads hammer concurrently (ARC's [current] and the
      per-slot [r_start]/[r_end] counters, RF's presence word, lock
      and seqlock control words): the cell is allocated with
      cache-line isolation so that RMW traffic on it does not
      false-share a line with unrelated heap neighbours.  Semantics
      are identical to {!atomic} — instances that model per-access
      cost rather than layout (simulation, counting) may alias the
      two, so operation counts and scheduling points are unchanged. *)

  val atomic_contended_pair : int -> int -> atomic * atomic
  (** Two hot words that the {e same} operations always touch together
      (ARC's per-slot [r_start]/[r_end]), allocated co-located inside
      one isolated region: isolated from other slots' words — that is
      where cross-reader false sharing lives — but deliberately
      sharing a line with each other, so the pair costs one cache line
      rather than two.  Same aliasing freedom as
      {!atomic_contended}. *)

  val load : atomic -> int
  (** Plain (non-RMW) load.  Statement R1 of the paper's read path. *)

  val store : atomic -> int -> unit
  (** Plain (non-RMW) store.  Used for writer-private resets (W1a) and
      the freeze at W3. *)

  val exchange : atomic -> int -> int
  (** RMW: atomically replace the value, returning the old one
      ([AtomicExchange], statement W2). *)

  val add_and_fetch : atomic -> int -> int
  (** RMW: atomically add, returning the {e new} value
      ([AtomicAddAndFetch], statement R4). *)

  val fetch_and_add : atomic -> int -> int
  (** RMW: atomically add, returning the {e old} value. *)

  val incr : atomic -> unit
  (** RMW: atomic increment ([AtomicInc], statement R3). *)

  val compare_and_set : atomic -> int -> int -> bool
  (** RMW: CAS; true iff the swap happened. *)

  val fetch_and_or : atomic -> int -> int
  (** RMW: atomically OR a mask in, returning the old value.  Needed
      by the RF baseline.  Emulated with a CAS loop on instances whose
      platform lacks a native fetch-or. *)

  val fetch_and_and : atomic -> int -> int
  (** RMW: atomically AND a mask in, returning the old value. *)

  (** {1 Multi-word buffers} *)

  type buffer
  (** A fixed-capacity buffer of machine words holding one register
      snapshot.  Accesses are plain (non-RMW) word operations. *)

  val alloc : int -> buffer
  (** [alloc words] allocates a zero-filled buffer. *)

  val capacity : buffer -> int

  val write_words : buffer -> src:int array -> len:int -> unit
  (** Copy [src.(0..len-1)] into the buffer — the single content copy
      a register write performs.  A {e bulk} operation: hardware
      instances ({!Real_mem}) use one memmove-class copy; simulated
      instances decompose it into per-word plain stores so every word
      remains a scheduling point and the counting instance still
      charges [len] word-writes.  [len = 0] is a valid no-op.
      @raise Invalid_argument if [len] is negative or exceeds source
      or capacity. *)

  val read_word : buffer -> int -> int
  (** Plain load of one word; the zero-copy read path. *)

  val read_words : buffer -> dst:int array -> len:int -> unit
  (** Bulk copy out (same bulk/per-word split as {!write_words}), for
      consumers that need a stable snapshot beyond their next read.
      @raise Invalid_argument if [len] is negative or exceeds
      destination or capacity. *)

  val blit : buffer -> buffer -> len:int -> unit
  (** [blit src dst ~len]: buffer-to-buffer copy — the
      intermediate-copy operation of copy-based algorithms (Peterson,
      seqlock).  ARC never calls it.  Bulk on hardware instances,
      per-word in simulation, like {!write_words}.
      @raise Invalid_argument if [len] is negative or exceeds either
      capacity. *)

  (** {1 Scheduling} *)

  val cede : unit -> unit
  (** A possible preemption point.  No-op on real hardware instances;
      a scheduler yield in simulation.  Algorithms call it inside
      unbounded or O(N) loops so simulated adversaries can interleave
      there. *)
end

(** Counters produced by the {!module:Counting} instrumentation. *)
type counts = {
  rmw : int;  (** exchange + add/fetch + incr + cas (incl. retries) + or + and *)
  atomic_load : int;
  atomic_store : int;
  word_read : int;
  word_write : int;
}

let zero_counts =
  { rmw = 0; atomic_load = 0; atomic_store = 0; word_read = 0; word_write = 0 }

let add_counts a b =
  {
    rmw = a.rmw + b.rmw;
    atomic_load = a.atomic_load + b.atomic_load;
    atomic_store = a.atomic_store + b.atomic_store;
    word_read = a.word_read + b.word_read;
    word_write = a.word_write + b.word_write;
  }

let pp_counts ppf c =
  Format.fprintf ppf
    "@[<h>rmw=%d, atomic_load=%d, atomic_store=%d, word_read=%d, word_write=%d@]"
    c.rmw c.atomic_load c.atomic_store c.word_read c.word_write

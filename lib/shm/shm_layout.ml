(* On-file layout of a Shm_mem mapping (DESIGN.md §6d).  Everything a
   recovering process needs to make sense of the bytes a crash left
   behind is derivable from these constants plus the superblock — no
   in-process state survives a SIGKILL, and none is needed.

   The file is an array of machine words:

     [superblock (16 words)][record][record]...[record]   up to cursor

   where each record is either a synchronization cell, a multi-word
   buffer with its integrity trailer, or a raw harness region, all
   self-describing:

     record   = [tag; rec_words; ...payload...]
     cell     = TAG_CELL,   value at a fixed (possibly padded) offset
     buffer   = TAG_BUFFER, 7 header words + payload
     raw      = TAG_RAW,    untyped words (crash-harness write logs);
                            skipped by the integrity scan

   Word 0 of the superblock is the magic number and is written last
   during creation, so a file that died mid-create never attaches. *)

let magic = 0x2A52_4353_484D_0001 (* "*RCSHM" ++ version tail *)

let version = 3
(* Version history:
   1 — original superblock (PR 4).
   2 — writer-election word [sb_election] (term ∥ vote, ISSUE 7).
   3 — reign table pointer [sb_reign] (per-shard election table plus
       the fabric-wide configuration epoch, ISSUE 9).
   Attach rejects any skew outright; recover additionally convicts a
   pre-bump mapping as stale instead of misreading word 14 as an
   election state that was never held, or word 15 as a table pointer
   that was never allocated. *)

(* {1 Superblock word indices} *)

let sb_magic = 0
let sb_version = 1
let sb_words = 2 (* total mapped words; must match the file size *)
let sb_cursor = 3 (* allocation cursor (first free word) *)
let sb_cells = 4 (* cell records allocated *)
let sb_buffers = 5 (* buffer records allocated *)

let sb_epoch = 6
(* Writer epoch: bumped by every recovery (and by epoch-fenced handle
   issue when the fence is wired to this cell).  Stamped into every
   buffer trailer at publish time; a trailer epoch {e ahead} of the
   superblock convicts the superblock as stale (resurrected from an
   older copy of the file). *)

let sb_publish = 7
(* Global publish sequence: fetch-add'd by every buffer publish, so
   trailers are totally ordered and recovery can identify the latest
   intact snapshot. *)

let sb_fence_at = 8
(* Shared-clock timestamp of the last recovery — the crash-aware
   checker's fence for the crashed writer's pending write
   ({!Arc_trace.Checker.check_crash} [?fence]).  0 = never
   recovered. *)

let sb_clock = 9
(* Shared logical clock, ticked (fetch-add) by every process that
   records history events against this mapping.  Using one clock for
   all processes is what makes cross-process operation intervals
   comparable — process-local step counters are not. *)

let sb_geom_readers = 10
let sb_geom_capacity = 11
let sb_geom_nslots = 12
(* Register geometry recorded by the creating harness so a fresh
   process can interpret the mapping (slot i's content is buffer i,
   in allocation order).  0/0/0 = not recorded. *)

let sb_harness = 13
(* Base offset of the harness raw region (crash write-log), 0 = none. *)

let sb_election = 14
(* Writer-election word: [term ∥ vote], packed by {!Arc_util.Term_vote}
   (same single-word discipline as ARC's [current]).  Manipulated only
   by seq-cst CAS through {!Shm_mem}'s substrate — a candidate that
   CASes the observed word to (term+1, itself) is the unique winner of
   that term, and the winner then bumps [sb_epoch] (fencing the deposed
   leader) before taking a writer handle.  0 = no election ever held
   (the {!Arc_util.Term_vote.none} word). *)

let sb_reign = 15
(* Base offset of the reign table record ({!tag_reign}), 0 = none —
   single-register mappings never allocate one.  The table holds one
   election word per fabric shard plus the single fabric-wide
   configuration epoch that certifies cross-shard snapshots against
   leader handoffs (DESIGN.md §8b). *)

let super_words = 16

(* {1 Records} *)

let tag_cell = 0xCE11
let tag_buffer = 0xB0FF
let tag_raw = 0x4A57
let tag_reign = 0xE1EC

let rec_tag = 0
let rec_size = 1

(* Cell records: value at [cell_value] for plain cells; contended
   cells pad the value out to its own 128-byte block (cache line plus
   the adjacent-line prefetcher pair), mirroring Real_mem's
   spacer-boxing. *)
let cell_value = 2

let line_words = 16 (* 128 bytes *)

(* Reign table record (tag_reign, layout version 3):

     [tag; rec_words; nshards; ...pad...]
     [config epoch          | line pad ]   <- line-aligned
     [shard 0: election; epoch; fence_at | line pad]
     [shard 1: election; epoch; fence_at | line pad]
     ...

   The configuration epoch and every shard slot each own a full
   128-byte block: the config word is fetch-add'd by every completed
   handoff and plain-loaded twice per certified snapshot, and each
   shard's election word is CAS target for that shard's candidates —
   none of them may false-share with a neighbour.  Within a shard slot
   the three words are intentionally co-located: they are touched
   together, by the same (rare) takeover. *)
let reign_nshards = 2 (* record-relative: shard count, set at alloc *)

let rs_election = 0 (* slot-relative: [term ∥ vote] word *)
let rs_epoch = 1 (* slot-relative: the shard's writer-fence epoch *)
let rs_fence = 2 (* slot-relative: shared-clock stamp of last recovery *)

(* Buffer records: integrity trailer then payload.

   Publish protocol (Shm_mem.write_words): stamp [buf_epoch] and
   [buf_begin] with a fresh publish sequence, store the length, copy
   the payload, store the checksum, then stamp [buf_end] with the
   same sequence.  A crash at any point leaves either
   [buf_begin <> buf_end] (torn mid-write) or a checksum that does
   not match the payload (partial last store, bit corruption) — both
   convictable by {!Shm_mem.recover} from the bytes alone. *)
let buf_cap = 2
let buf_state = 3 (* 0 = live, 1 = quarantined by recovery *)
let buf_len = 4
let buf_epoch = 5
let buf_begin = 6
let buf_end = 7
let buf_cksum = 8
let buf_header = 9 (* payload starts here, relative to record base *)

let state_live = 0
let state_quarantined = 1

(* {1 Checksum}

   FNV-1a-style fold over (len, epoch, seq, payload...).  Not
   cryptographic — the threat model is torn writes and stray bit
   flips, not an adversary.  OCaml's native-int wraparound is part of
   the function; it is deterministic across processes on the same
   architecture, which is the only place a mapping is shared. *)

let cksum_seed = 0x2bf29ce484222325 (* FNV offset basis folded into 63 bits *)
let cksum_prime = 0x100000001b3
let cksum_mix acc w = (acc lxor w) * cksum_prime

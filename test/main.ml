(* Test entry point: one alcotest suite per module. *)

module Arc_suite = Reg_suite.Make (Arc_core.Arc.Make (Arc_mem.Real_mem))
module Arc_nohint_suite = Reg_suite.Make (Arc_core.Arc_nohint.Make (Arc_mem.Real_mem))
module Rf_suite = Reg_suite.Make (Arc_baselines.Rf.Make (Arc_mem.Real_mem))
module Peterson_suite = Reg_suite.Make (Arc_baselines.Peterson.Make (Arc_mem.Real_mem))
module Rwlock_suite = Reg_suite.Make (Arc_baselines.Rwlock_reg.Make (Arc_mem.Real_mem))
module Seqlock_suite = Reg_suite.Make (Arc_baselines.Seqlock_reg.Make (Arc_mem.Real_mem))

(* The same black-box suite over simulated memory (standalone, no
   scheduler: cede degrades to a no-op) — catches substrate-dependent
   assumptions. *)
module Arc_sim_suite = Reg_suite.Make (Arc_core.Arc.Make (Arc_vsched.Sim_mem))
module Peterson_sim_suite = Reg_suite.Make (Arc_baselines.Peterson.Make (Arc_vsched.Sim_mem))
module Arc_dynamic_suite = Reg_suite.Make (Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem))
module Lamport_suite = Reg_suite.Make (Arc_baselines.Lamport_reg.Make (Arc_mem.Real_mem))
module Rf_sim_suite = Reg_suite.Make (Arc_baselines.Rf.Make (Arc_vsched.Sim_mem))
module Rwlock_sim_suite = Reg_suite.Make (Arc_baselines.Rwlock_reg.Make (Arc_vsched.Sim_mem))
module Seqlock_sim_suite = Reg_suite.Make (Arc_baselines.Seqlock_reg.Make (Arc_vsched.Sim_mem))
module Arc_dynamic_sim_suite =
  Reg_suite.Make (Arc_core.Arc_dynamic.Make (Arc_vsched.Sim_mem))

(* ... and over the coherence-modelled memory (uninstalled cache:
   degrades to unit costs, still exercises the line-mapped buffers). *)
module Arc_cc_suite = Reg_suite.Make (Arc_core.Arc.Make (Arc_coherence.Cc_mem))
module Peterson_cc_suite =
  Reg_suite.Make (Arc_baselines.Peterson.Make (Arc_coherence.Cc_mem))

let () =
  Alcotest.run "arc_register"
    [
      ("packed", Test_packed.suite);
      ("term-vote", Test_term_vote.suite);
      ("bits", Test_bits.suite);
      ("splitmix", Test_splitmix.suite);
      ("stats", Test_stats.suite);
      ("mem", Test_mem.suite);
      ("sched", Test_sched.suite);
      ("sim-mem", Test_sim_mem.suite);
      ("histogram", Test_histogram.suite);
      ("history", Test_history.suite);
      ("checker", Test_checker.suite);
      ("fastpath", Test_fastpath.suite);
      ("gate", Test_gate.suite);
      ("generic:arc", Arc_suite.suite);
      ("generic:arc-nohint", Arc_nohint_suite.suite);
      ("generic:rf", Rf_suite.suite);
      ("generic:peterson", Peterson_suite.suite);
      ("generic:rwlock", Rwlock_suite.suite);
      ("generic:seqlock", Seqlock_suite.suite);
      ("generic:arc-sim", Arc_sim_suite.suite);
      ("generic:peterson-sim", Peterson_sim_suite.suite);
      ("generic:arc-dynamic", Arc_dynamic_suite.suite);
      ("generic:lamport77", Lamport_suite.suite);
      ("generic:rf-sim", Rf_sim_suite.suite);
      ("generic:rwlock-sim", Rwlock_sim_suite.suite);
      ("generic:seqlock-sim", Seqlock_sim_suite.suite);
      ("generic:arc-dynamic-sim", Arc_dynamic_sim_suite.suite);
      ("generic:arc-coherence", Arc_cc_suite.suite);
      ("generic:peterson-coherence", Peterson_cc_suite.suite);
      ("arc", Test_arc.suite);
      ("rf", Test_rf.suite);
      ("peterson", Test_peterson.suite);
      ("locks", Test_locks.suite);
      ("lamport77", Test_lamport.suite);
      ("simpson", Test_simpson.suite);
      ("arc-dynamic", Test_arc_dynamic.suite);
      ("explore", Test_explore.suite);
      ("coherence", Test_coherence.suite);
      ("schedules", Test_schedules.suite);
      ("stress", Test_stress.suite);
      ("workload", Test_workload.suite);
      ("harness", Test_harness.suite);
      ("experiment", Test_experiment.suite);
      ("report", Test_report.suite);
      ("audit", Test_audit.suite);
      ("typed", Test_typed.suite);
      ("replay", Test_replay.suite);
      ("fault", Test_fault.suite);
      ("resilience", Test_resilience.suite);
      ("admission", Test_admission.suite);
      ("mrmw", Test_mrmw.suite);
      ("shm", Test_shm.suite);
      ("obs", Test_obs.suite);
      ("fabric", Test_fabric.suite);
    ]

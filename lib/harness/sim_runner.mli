(** Throughput runner on the virtual scheduler: the same one-writer /
    N-readers protocol as {!Real_runner}, but each thread is a fiber
    of {!Arc_vsched.Sched} and "time" is the weighted count of
    shared-memory accesses.

    Use with registers instantiated over {!Arc_vsched.Sim_mem} —
    throughput is then operations per simulated step, deterministic
    and replayable.  This runner carries the experiments a 1-core
    container cannot run natively: Fig. 1's concurrency scaling shape,
    Fig. 2 with anywhere-preemption steal, and Fig. 3's
    thousands-of-threads regime. *)

module Make (R : Arc_core.Register_intf.S) : sig
  val run :
    ?prepare:(R.t -> unit) ->
    ?strategy:Arc_vsched.Strategy.t ->
    Config.sim ->
    Config.result
  (** Default strategy: [Strategy.random ~seed:cfg.sim_seed].
      [prepare] is called on the register after creation, before any
      fiber runs — the attach point for register telemetry (which must
      precede reader-handle creation).
      @raise Invalid_argument on nonsensical configurations. *)
end

examples/telemetry_hub.ml: Arc_core Arc_mem Arc_mrmw Array Atomic Domain List Printf

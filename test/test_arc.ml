(* White-box tests of the ARC algorithm: the §4 lemmas as executable
   invariants, the exact RMW accounting of the read fast path, the
   §3.4 hint, and the zero-copy view guarantee. *)

module Packed = Arc_util.Packed
module Counting = Arc_mem.Counting.Make (Arc_mem.Real_mem)
module Intf = Arc_mem.Mem_intf
module Arc = Arc_core.Arc.Make (Arc_mem.Real_mem)
module Arc_cnt = Arc_core.Arc.Make (Counting)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)
module P_cnt = Arc_workload.Payload.Make (Counting)

let check = Alcotest.(check int)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

let test_slot_count () =
  let reg = Arc.create ~readers:5 ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  check "N + 2 slots, the classical lower bound" 7 (Arc.Debug.slots reg)

let test_initial_current () =
  (* I1: current = ⟨index 0, count N⟩. *)
  let reg = Arc.create ~readers:9 ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  let cur = Arc.Debug.current reg in
  check "initial index" 0 (Packed.index cur);
  check "initial count pre-charges all readers" 9 (Packed.count cur)

let test_current_tracks_published_slot () =
  let reg = Arc.create ~readers:2 ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  let seen = Hashtbl.create 8 in
  for seq = 1 to 20 do
    Arc.write reg ~src:(stamped ~seq ~len:4) ~len:4;
    let idx = Packed.index (Arc.Debug.current reg) in
    Alcotest.(check bool) "published slot in range" true
      (idx >= 0 && idx < Arc.Debug.slots reg);
    check "fresh publication has zero presence count" 0
      (Packed.count (Arc.Debug.current reg));
    Hashtbl.replace seen idx ()
  done;
  Alcotest.(check bool) "writer rotates over multiple slots" true
    (Hashtbl.length seen >= 2)

let test_presence_ledger_invariant () =
  (* Lemma 4.1's ledger: frozen presences + live count = N at every
     quiescent point, across random op sequences. *)
  let rng = Arc_util.Splitmix.of_int 7 in
  let readers = 6 in
  let reg = Arc.create ~readers ~capacity:8 ~init:(stamped ~seq:0 ~len:8) in
  let handles = Array.init readers (Arc.reader reg) in
  let seq = ref 0 in
  for step = 1 to 3000 do
    if Arc_util.Splitmix.bool rng then begin
      incr seq;
      Arc.write reg ~src:(stamped ~seq:!seq ~len:8) ~len:8
    end
    else
      ignore (Arc.read_with handles.(Arc_util.Splitmix.int rng readers) ~f:(fun _ _ -> ()));
    if not (Arc.Debug.presence_bound_holds reg) then
      Alcotest.failf "presence ledger broken at step %d" step;
    if not (Arc.Debug.free_slot_exists reg) then
      Alcotest.failf "Lemma 4.1 violated at step %d: no free slot" step
  done

let test_counter_freeze () =
  (* W3: after a write supersedes a slot with standing readers, the
     superseded slot's r_start holds the frozen presence count. *)
  let readers = 4 in
  let reg = Arc.create ~readers ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  let handles = Array.init readers (Arc.reader reg) in
  Arc.write reg ~src:(stamped ~seq:1 ~len:4) ~len:4;
  let slot1 = Packed.index (Arc.Debug.current reg) in
  (* three readers subscribe to slot1 *)
  for i = 0 to 2 do
    ignore (Arc.read_with handles.(i) ~f:(fun _ _ -> ()))
  done;
  check "live count" 3 (Packed.count (Arc.Debug.current reg));
  Arc.write reg ~src:(stamped ~seq:2 ~len:4) ~len:4;
  check "frozen r_start" 3 (Arc.Debug.r_start reg slot1);
  check "r_end still zero" 0 (Arc.Debug.r_end reg slot1);
  (* readers move on: r_end catches up and the slot becomes free *)
  for i = 0 to 2 do
    ignore (Arc.read_with handles.(i) ~f:(fun _ _ -> ()))
  done;
  check "r_end caught up" 3 (Arc.Debug.r_end reg slot1)

let test_read_rmw_accounting () =
  (* The paper's central optimization: a read of an unchanged register
     performs no RMW at all; a read-miss pays exactly two (R3 + R4). *)
  let init = Array.make 4 0 in
  P_cnt.stamp init ~seq:0 ~len:4;
  let reg = Arc_cnt.create ~readers:2 ~capacity:4 ~init in
  let rd = Arc_cnt.reader reg 0 in
  let src = Array.make 4 0 in
  P_cnt.stamp src ~seq:1 ~len:4;
  Arc_cnt.write reg ~src ~len:4;
  Counting.reset ();
  ignore (Arc_cnt.read_with rd ~f:(fun _ _ -> ()));
  check "read-miss costs 2 RMW" 2 (Counting.counts ()).Intf.rmw;
  Counting.reset ();
  ignore (Arc_cnt.read_with rd ~f:(fun _ _ -> ()));
  check "read-hit costs 0 RMW" 0 (Counting.counts ()).Intf.rmw

let test_write_rmw_accounting () =
  let init = Array.make 4 0 in
  P_cnt.stamp init ~seq:0 ~len:4;
  let reg = Arc_cnt.create ~readers:2 ~capacity:4 ~init in
  let src = Array.make 4 0 in
  P_cnt.stamp src ~seq:1 ~len:4;
  Counting.reset ();
  Arc_cnt.write reg ~src ~len:4;
  check "write costs exactly 1 RMW (the exchange at W2)" 1
    (Counting.counts ()).Intf.rmw

let test_first_read_is_fast_path () =
  (* I1 pre-charges every reader on slot 0, so even the very first
     read of an unwritten register avoids RMWs. *)
  let init = Array.make 4 0 in
  P_cnt.stamp init ~seq:0 ~len:4;
  let reg = Arc_cnt.create ~readers:2 ~capacity:4 ~init in
  let rd = Arc_cnt.reader reg 0 in
  Counting.reset ();
  ignore (Arc_cnt.read_with rd ~f:(fun _ _ -> ()));
  check "first read on untouched register: 0 RMW" 0 (Counting.counts ()).Intf.rmw

let test_hint_gives_constant_probes () =
  (* E5's claim: with the §3.4 hint, write-side slot probes stay O(1)
     per write even with parked readers; without it they grow. *)
  let probes_with (use_hint : bool) =
    let readers = 16 in
    let init = stamped ~seq:0 ~len:4 in
    let reg = Arc.create_with ~use_hint ~readers ~capacity:4 ~init in
    let handles = Array.init readers (Arc.reader reg) in
    (* Park every reader on a distinct old slot: each write is
       followed by one reader subscribing and never moving. *)
    for seq = 1 to readers do
      Arc.write reg ~src:(stamped ~seq ~len:4) ~len:4;
      ignore (Arc.read_with handles.(seq - 1) ~f:(fun _ _ -> ()))
    done;
    (* Now one active reader keeps releasing; measure write probes. *)
    let before = Arc.write_probes reg in
    for seq = readers + 1 to readers + 200 do
      ignore (Arc.read_with handles.(0) ~f:(fun _ _ -> ()));
      Arc.write reg ~src:(stamped ~seq ~len:4) ~len:4
    done;
    float_of_int (Arc.write_probes reg - before) /. 200.
  in
  let hinted = probes_with true in
  let unhinted = probes_with false in
  Alcotest.(check bool)
    (Printf.sprintf "hinted probes/write %.2f below unhinted %.2f" hinted unhinted)
    true
    (hinted < unhinted);
  Alcotest.(check bool)
    (Printf.sprintf "hinted probes/write %.2f is O(1)" hinted)
    true (hinted <= 2.5)

let test_read_view_stability () =
  (* The zero-copy view must stay intact until the same reader's next
     read, no matter how many writes happen meanwhile. *)
  let readers = 2 in
  let reg = Arc.create ~readers ~capacity:8 ~init:(stamped ~seq:0 ~len:8) in
  let rd = Arc.reader reg 0 in
  Arc.write reg ~src:(stamped ~seq:1 ~len:8) ~len:8;
  let view, len = Arc.read_view rd in
  for seq = 2 to 100 do
    Arc.write reg ~src:(stamped ~seq ~len:8) ~len:8
  done;
  (match P.validate view ~len with
  | Ok seq -> check "view still holds write 1" 1 seq
  | Error msg -> Alcotest.failf "view corrupted by later writes: %s" msg);
  check "next read sees the newest value" 100
    (Arc.read_with rd ~f:(fun buffer len ->
         match P.validate buffer ~len with
         | Ok seq -> seq
         | Error msg -> Alcotest.fail msg))

let test_max_readers_capacity () =
  match Arc.caps.Arc_core.Register_intf.max_readers ~capacity_words:1 with
  | Some bound ->
    check "2^32 - 2 readers as in the paper" ((1 lsl 32) - 2) bound
  | None -> Alcotest.fail "ARC advertises a bound"

let test_writes_counter () =
  let reg = Arc.create ~readers:1 ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
  for seq = 1 to 17 do
    Arc.write reg ~src:(stamped ~seq ~len:4) ~len:4
  done;
  check "write counter" 17 (Arc.writes reg)

let prop_sequential_ledger =
  QCheck.Test.make ~name:"presence ledger holds for arbitrary op strings" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 80) (int_bound 5)))
    (fun (seed, ops) ->
      let rng = Arc_util.Splitmix.of_int seed in
      let readers = 3 in
      let reg = Arc.create ~readers ~capacity:4 ~init:(stamped ~seq:0 ~len:4) in
      let handles = Array.init readers (Arc.reader reg) in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          (if op <= 2 then begin
             incr seq;
             Arc.write reg ~src:(stamped ~seq:!seq ~len:4) ~len:4
           end
           else
             ignore
               (Arc.read_with handles.(Arc_util.Splitmix.int rng readers)
                  ~f:(fun _ _ -> ())));
          Arc.Debug.presence_bound_holds reg && Arc.Debug.free_slot_exists reg)
        ops)

let suite =
  [
    Alcotest.test_case "N+2 slots" `Quick test_slot_count;
    Alcotest.test_case "initial current (I1)" `Quick test_initial_current;
    Alcotest.test_case "current tracks published slot" `Quick
      test_current_tracks_published_slot;
    Alcotest.test_case "presence ledger (Lemma 4.1)" `Quick
      test_presence_ledger_invariant;
    Alcotest.test_case "counter freeze (W3)" `Quick test_counter_freeze;
    Alcotest.test_case "read RMW accounting" `Quick test_read_rmw_accounting;
    Alcotest.test_case "write RMW accounting" `Quick test_write_rmw_accounting;
    Alcotest.test_case "first read fast path" `Quick test_first_read_is_fast_path;
    Alcotest.test_case "hint keeps probes O(1) (§3.4)" `Quick
      test_hint_gives_constant_probes;
    Alcotest.test_case "read_view stability" `Quick test_read_view_stability;
    Alcotest.test_case "max readers" `Quick test_max_readers_capacity;
    Alcotest.test_case "writes counter" `Quick test_writes_counter;
    QCheck_alcotest.to_alcotest prop_sequential_ledger;
  ]

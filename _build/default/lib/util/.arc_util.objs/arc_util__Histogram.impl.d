lib/util/histogram.ml: Array Format List Sys

examples/config_hotswap.ml: Arc_core Arc_mem Array Domain List Printf Unix

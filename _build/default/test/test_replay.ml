(* Schedule recording and exact replay. *)

module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module Replay = Arc_vsched.Replay

let interleaving ~strategy =
  let order = ref [] in
  let fiber i () =
    for _ = 1 to 10 do
      order := i :: !order;
      Sched.cede ()
    done
  in
  let _ = Sched.run ~strategy (Array.init 4 fiber) in
  List.rev !order

let test_record_then_replay () =
  let recorder, rec_strategy = Replay.recording (Strategy.random ~seed:77) in
  let original = interleaving ~strategy:rec_strategy in
  let trace = Replay.captured recorder in
  Alcotest.(check bool) "trace non-empty" true (Replay.length trace > 0);
  let replayer, rep_strategy =
    Replay.replaying trace ~fallback:(Strategy.round_robin ())
  in
  let replayed = interleaving ~strategy:rep_strategy in
  Alcotest.(check (list int)) "identical interleaving" original replayed;
  Alcotest.(check bool) "no divergence" false (Replay.diverged replayer)

let test_replay_of_different_program_diverges_loudly () =
  let recorder, rec_strategy = Replay.recording (Strategy.random ~seed:5) in
  let _ = interleaving ~strategy:rec_strategy in
  let trace = Replay.captured recorder in
  (* Replay against a run with fewer fibers: decisions that name the
     missing fibers cannot apply. *)
  let replayer, rep_strategy =
    Replay.replaying trace ~fallback:(Strategy.round_robin ())
  in
  let one_fiber = [| (fun () -> for _ = 1 to 3 do Sched.cede () done) |] in
  let outcome = Sched.run ~strategy:rep_strategy one_fiber in
  Alcotest.(check int) "run completes via fallback" 1 outcome.Sched.completed;
  Alcotest.(check bool) "divergence flagged" true (Replay.diverged replayer)

let test_trace_exhaustion_falls_back () =
  (* Record a short run, replay a longer one. *)
  let short_fibers = [| (fun () -> Sched.cede ()) |] in
  let recorder, rec_strategy = Replay.recording (Strategy.round_robin ()) in
  let _ = Sched.run ~strategy:rec_strategy short_fibers in
  let trace = Replay.captured recorder in
  let replayer, rep_strategy =
    Replay.replaying trace ~fallback:(Strategy.round_robin ())
  in
  let long_fibers = [| (fun () -> for _ = 1 to 50 do Sched.cede () done) |] in
  let outcome = Sched.run ~strategy:rep_strategy long_fibers in
  Alcotest.(check int) "completes past the trace" 1 outcome.Sched.completed;
  Alcotest.(check bool) "exhaustion flagged" true (Replay.diverged replayer)

let test_replay_register_run () =
  (* End to end: record a register workload's schedule, replay it, and
     get bit-identical operation counts. *)
  let module Config = Arc_harness.Config in
  let module Registry = Arc_harness.Registry in
  let entry = Registry.find "arc" in
  let cfg = { Config.default_sim with Config.max_steps = 15_000 } in
  let recorder, rec_strategy = Replay.recording (Strategy.random ~seed:13) in
  let original = entry.Registry.run_sim ~strategy:rec_strategy cfg in
  let trace = Replay.captured recorder in
  let replayer, rep_strategy =
    Replay.replaying trace ~fallback:(Strategy.round_robin ())
  in
  let replayed = entry.Registry.run_sim ~strategy:rep_strategy cfg in
  Alcotest.(check bool) "no divergence" false (Replay.diverged replayer);
  Alcotest.(check int) "same reads" original.Config.reads replayed.Config.reads;
  Alcotest.(check int) "same writes" original.Config.writes replayed.Config.writes;
  Alcotest.(check (float 1e-9)) "same simulated duration" original.Config.duration
    replayed.Config.duration

let suite =
  [
    Alcotest.test_case "record then replay" `Quick test_record_then_replay;
    Alcotest.test_case "divergence is loud" `Quick
      test_replay_of_different_program_diverges_loudly;
    Alcotest.test_case "trace exhaustion falls back" `Quick
      test_trace_exhaustion_falls_back;
    Alcotest.test_case "replay register run" `Quick test_replay_register_run;
  ]

test/test_checker.ml: Alcotest Arc_trace Arc_util List QCheck QCheck_alcotest

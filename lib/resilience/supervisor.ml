(* Heartbeat-monitored writer lease + promotion (ISSUE 3).

   The supervisor owns the failure-detection half of writer failover:
   the incumbent writer refreshes a heartbeat word after every write;
   a standby polls {!expired} and, once the incumbent has been silent
   for more than a full lease, calls {!promote} — which issues a fresh
   {!Fenced} handle (bumping the epoch and thereby fencing the
   incumbent) and records the fence time for the crash checker
   ({!Arc_trace.Checker.check_crash}'s [?fence]).

   Failure detection over heartbeats is necessarily approximate: a
   slow-but-alive writer can be deposed (a {e spurious} failover).
   That is safe here — the deposed writer's next write raises
   [Fenced_out] and it retires — so the lease only trades availability
   (how long writes stall after a real crash) against the rate of
   spurious handoffs.  What the lease must strictly dominate is any
   {e mid-write} pause of the incumbent; see the residual-window note
   in {!Fenced} and DESIGN.md §6c.

   Clocks are caller-supplied so the same supervisor drives simulated
   steps (vsched) and wall-clock time.  [heartbeat] ignores handles
   whose epoch is no longer current: a zombie's heartbeat must not
   re-arm the lease it already lost. *)

module Make (R : Arc_core.Register_intf.FENCEABLE) = struct
  module Fenced_reg = Fenced.Make (R)
  module M = R.Mem

  type t = {
    reg : Fenced_reg.t;
    now : unit -> int;
    lease : int;
    hb : M.atomic;  (* time of the last accepted heartbeat *)
    mutable failovers : int;
    mutable quarantined : int;  (* slots retired by crash recovery *)
    mutable last_fence : int option;
  }

  let create ~now ~lease reg =
    if lease < 1 then
      invalid_arg (Printf.sprintf "Supervisor.create: lease = %d" lease);
    {
      reg;
      now;
      lease;
      hb = M.atomic_contended (now ());
      failovers = 0;
      quarantined = 0;
      last_fence = None;
    }

  let register t = t.reg

  let acquire t =
    let w = Fenced_reg.issue t.reg in
    M.store t.hb (t.now ());
    w

  let heartbeat t w = if Fenced_reg.current w then M.store t.hb (t.now ())
  let age t = t.now () - M.load t.hb
  let expired t = age t > t.lease

  let promote t =
    let w = Fenced_reg.issue t.reg in
    (* The deposed writer may have died mid-publish; quarantine the
       slot its journal names before this successor's first free-slot
       search can hand it out with readers still on it.  Safe to run
       after the fence: lease discipline guarantees the incumbent is
       not inside a write at promotion time (see Fenced). *)
    t.quarantined <- t.quarantined + Fenced_reg.recover_crash t.reg;
    (* The fence time is taken after the epoch bump, so every write the
       deposed writer managed to publish precedes it — the bound
       [check_crash ?fence] needs. *)
    let at = t.now () in
    M.store t.hb at;
    t.failovers <- t.failovers + 1;
    t.last_fence <- Some at;
    w

  let failovers t = t.failovers
  let quarantined t = t.quarantined
  let last_fence t = t.last_fence
end

(** Experiment E9: cache-coherence traffic per operation.

    Runs each algorithm over the {!Arc_coherence.Cc_mem} instance
    under the virtual scheduler and reports MESI protocol messages
    normalized per read and per write — the measured form of the
    paper's §1/§3.2 interconnect argument: ARC's fast-path read leaves
    every line Shared (zero messages at steady state), RF's
    FetchAndOr takes the sync line exclusive on {e every} read,
    bouncing it between all readers, and the lock does so twice. *)

module Cache = Arc_coherence.Cache
module Cc = Arc_coherence.Cc_mem
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module Table = Arc_report.Table

type row = {
  algorithm : string;
  reads : int;
  writes : int;
  inv_per_read : float;
  fetch_per_read : float;
  rfo_per_read : float;
  inv_per_write : float;
  throughput : float;  (** ops per 1000 coherence-weighted steps *)
}

(* The register must be built over Cc_mem (the caller instantiates it
   so below); the functor itself only needs the generic interface —
   the cache is installed through the global Cc context. *)
module Run_of (R : Arc_core.Register_intf.S) = struct
  module P = Arc_workload.Payload.Make (R.Mem)

  (* One writer + [readers] reader fibers under a fair seeded
     scheduler, hold-model ops, fixed per-fiber op quotas so every
     algorithm does identical logical work. *)
  let run ~readers ~size ~writes_quota ~reads_quota ~seed =
    let supported =
      match R.caps.Arc_core.Register_intf.max_readers ~capacity_words:size with
      | Some bound -> min bound readers
      | None -> readers
    in
    let cache = Cache.create ~agents:(supported + 2) in
    Cc.install cache;
    let init = Array.make size 0 in
    P.stamp init ~seq:0 ~len:size;
    let reg = R.create ~readers:supported ~capacity:size ~init in
    let src = Array.make size 0 in
    P.stamp src ~seq:1 ~len:size;
    (* Steady state first: one write, everyone reads it; then reset
       the stats so cold-start misses don't pollute the per-op rates. *)
    let handles = Array.init supported (R.reader reg) in
    R.write reg ~src ~len:size;
    Array.iter (fun rd -> ignore (R.read_with rd ~f:(fun _ _ -> ()))) handles;
    Cache.reset_stats cache;
    let reads_done = ref 0 and writes_done = ref 0 in
    let writer () =
      for _ = 1 to writes_quota do
        R.write reg ~src ~len:size;
        incr writes_done
      done
    in
    let reader i () =
      let rd = handles.(i) in
      for _ = 1 to reads_quota do
        ignore (R.read_with rd ~f:(fun _ _ -> ()));
        incr reads_done
      done
    in
    let fibers =
      Array.init (supported + 1) (fun i ->
          if i = 0 then writer else reader (i - 1))
    in
    let outcome = Sched.run ~strategy:(Strategy.random ~seed) fibers in
    let stats = Cache.stats cache in
    Cc.uninstall ();
    let per num denom = float_of_int num /. float_of_int (max denom 1) in
    {
      algorithm = R.algorithm;
      reads = !reads_done;
      writes = !writes_done;
      inv_per_read = per stats.Cache.invalidations !reads_done;
      fetch_per_read = per stats.Cache.fetches !reads_done;
      rfo_per_read = per stats.Cache.rfos !reads_done;
      inv_per_write = per stats.Cache.invalidations !writes_done;
      throughput =
        1000. *. per (!reads_done + !writes_done) outcome.Sched.steps;
    }
end

module Arc_run = Run_of (Arc_core.Arc.Make (Cc))
module Rf_run = Run_of (Arc_baselines.Rf.Make (Cc))
module Peterson_run = Run_of (Arc_baselines.Peterson.Make (Cc))
module Rwlock_run = Run_of (Arc_baselines.Rwlock_reg.Make (Cc))
module Seqlock_run = Run_of (Arc_baselines.Seqlock_reg.Make (Cc))

let runners =
  [ Arc_run.run; Rf_run.run; Peterson_run.run; Rwlock_run.run; Seqlock_run.run ]

let measure ~readers ~size ~writes_quota ~reads_quota ~seed =
  List.map
    (fun run -> run ~readers ~size ~writes_quota ~reads_quota ~seed)
    runners

let table ~readers ~size ~writes_quota ~reads_quota ~seed =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E9 — MESI coherence traffic per operation (%d readers, %d-word \
            register, %d writes / %d reads per reader; protocol messages \
            normalized per op)"
           readers size writes_quota reads_quota)
      ~columns:
        [
          "algorithm"; "inv/read"; "fetch/read"; "rfo/read"; "inv/write";
          "ops/kstep";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.algorithm;
          Printf.sprintf "%.3f" r.inv_per_read;
          Printf.sprintf "%.3f" r.fetch_per_read;
          Printf.sprintf "%.3f" r.rfo_per_read;
          Printf.sprintf "%.3f" r.inv_per_write;
          Printf.sprintf "%.2f" r.throughput;
        ])
    (measure ~readers ~size ~writes_quota ~reads_quota ~seed);
  t

let default_table (opts : Experiment.opts) =
  let quota = if opts.Experiment.quick then 50 else 300 in
  table ~readers:8 ~size:64 ~writes_quota:quota ~reads_quota:(quota * 4)
    ~seed:opts.Experiment.seed

(** Replay-command rendering (ISSUE 9).

    Every campaign binary prints, next to each violation, the exact
    command that re-executes the offending seed.  Before this module
    each binary grew its own [Printf.sprintf] with a dozen positional
    holes — the classic place for a flag and its value to drift apart
    silently.  Campaigns instead build a typed argument list and
    render it here: the flag name and its value travel together, and
    the formatting conventions ([%d], [%g] for rates and fractions)
    are stated once.

    The rendered string is for humans to paste into a shell; values
    are not shell-quoted, which is fine for the numeric and bare-word
    arguments campaign replays use. *)

type arg

val flag : string -> arg
(** A bare flag, e.g. [flag "--fabric"]. *)

val int : string -> int -> arg
val float : string -> float -> arg
(** Rendered with [%g], matching the parsers' tolerance. *)

val str : string -> string -> arg

val render : exe:string -> arg list -> string
(** [render ~exe args] — [exe] leads verbatim (use e.g. ["arc-crash"]
    or ["dune exec bin/soak.exe --"]), arguments follow separated by
    single spaces. *)

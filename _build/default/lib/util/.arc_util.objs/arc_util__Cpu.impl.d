lib/util/cpu.ml: Domain Int64 Monotonic_clock Printf Sys

module type COUNTERS = sig
  val counts : unit -> Arc_mem.Mem_intf.counts
  val reset : unit -> unit
end

type per_op = {
  rmw_per_read : float;
  rmw_per_write : float;
  atomic_loads_per_read : float;
  word_writes_per_write : float;
  reads : int;
  writes : int;
}

let pp_per_op ppf p =
  Format.fprintf ppf
    "@[<h>rmw/read=%.3f, rmw/write=%.3f, loads/read=%.3f, word-writes/write=%.1f \
     (%d reads, %d writes)@]"
    p.rmw_per_read p.rmw_per_write p.atomic_loads_per_read p.word_writes_per_write
    p.reads p.writes

module Make (C : COUNTERS) (R : Arc_core.Register_intf.S) = struct
  module P = Arc_workload.Payload.Make (R.Mem)

  let measure ~readers ~size_words ~rounds ~reads_per_write =
    if readers < 1 || rounds < 1 || reads_per_write < 1 || size_words < 1 then
      invalid_arg "Count_runner.measure: bad parameters";
    let init = Array.make size_words 0 in
    P.stamp init ~seq:0 ~len:size_words;
    let reg = R.create ~readers ~capacity:size_words ~init in
    let handles = Array.init readers (R.reader reg) in
    let src = Array.make size_words 0 in
    let read_rmw = ref 0
    and read_loads = ref 0
    and write_rmw = ref 0
    and write_words = ref 0 in
    for round = 1 to rounds do
      P.stamp src ~seq:round ~len:size_words;
      C.reset ();
      R.write reg ~src ~len:size_words;
      let wc = C.counts () in
      write_rmw := !write_rmw + wc.Arc_mem.Mem_intf.rmw;
      write_words := !write_words + wc.Arc_mem.Mem_intf.word_write;
      C.reset ();
      for _rep = 1 to reads_per_write do
        Array.iter (fun rd -> R.read_with rd ~f:(fun _ _ -> ())) handles
      done;
      let rc = C.counts () in
      read_rmw := !read_rmw + rc.Arc_mem.Mem_intf.rmw;
      read_loads := !read_loads + rc.Arc_mem.Mem_intf.atomic_load
    done;
    let reads = rounds * reads_per_write * readers in
    let writes = rounds in
    {
      rmw_per_read = float_of_int !read_rmw /. float_of_int reads;
      rmw_per_write = float_of_int !write_rmw /. float_of_int writes;
      atomic_loads_per_read = float_of_int !read_loads /. float_of_int reads;
      word_writes_per_write = float_of_int !write_words /. float_of_int writes;
      reads;
      writes;
    }
end

let algorithm = "arc-nohint"

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Inner = Arc.Make (M)
  module Mem = M

  type t = Inner.t
  type reader = Inner.reader

  let algorithm = algorithm
  let caps = Inner.caps

  let create ~readers ~capacity ~init =
    Inner.create_with ~use_hint:false ~readers ~capacity ~init

  let reader = Inner.reader
  let write = Inner.write
  let write_guarded = Inner.write_guarded
  let recover_crash = Inner.recover_crash
  let quarantine = Inner.quarantine
  let read_with = Inner.read_with
  let read_view = Inner.read_view
  let read_into = Inner.read_into
  let read_stamped = Inner.read_stamped
  let probe_stamp = Inner.probe_stamp
  let write_probes = Inner.write_probes
  let writes = Inner.writes
end

(** Simulated shared memory: the {!Arc_mem.Mem_intf.S} instance whose
    every operation is a scheduling point of the enclosing
    {!Sched} run.

    Cost model.  Each plain access (load, store, one buffer word)
    consumes one simulated step; each RMW consumes {!rmw_weight}
    steps, reflecting the paper's observation (§1, §3.2) that RMW
    instructions are substantially more expensive than plain loads on
    real interconnects (cache-line exclusivity, QPI messaging).
    Simulated throughput — operations per step — therefore reproduces
    the paper's cost accounting: ARC's RMW-free read fast path is
    cheap, RF pays one RMW per read, Peterson pays per-word copies,
    and the spin-lock pays RMW retries.

    Buffers interleave at word granularity, so a simulated schedule
    can expose torn multi-word reads if an algorithm under test is
    buggy — the checker's job to catch. *)

val rmw_weight : int ref
(** Simulated cost of one RMW in plain-access units.  Default 4.
    Read at each operation, so sweeps can vary it between runs (never
    during one). *)

include Arc_mem.Mem_intf.S

(** The one typed saturation error of the repository (ISSUE 8).

    Every layer that detects synchronization state at a documented
    capacity bound — {!Packed.succ_count}'s packed-count overflow
    guard, the registers' post-increment presence checks, the
    admission gate's terminal backpressure — raises this exception
    with a message built by {!message}, so callers match one
    exception and operators read one diagnostic shape.

    Defined here (below every other library) so [Arc_util.Packed] can
    raise it without depending on the core library;
    [Arc_core.Register_intf] re-exports it as [Saturated] by exception
    rebinding, which is where almost all handlers refer to it. *)

exception Saturated of string

val message : who:string -> count:int -> bound:int -> string
(** ["<who>: presence count saturated (count = <count>, bound =
    <bound>)"] — the unified diagnostic shape. *)

val error : who:string -> count:int -> bound:int -> exn
val raise_saturated : who:string -> count:int -> bound:int -> 'a

val guard_count : who:string -> bound:int -> int -> unit
(** [guard_count ~who ~bound c] raises {!Saturated} when [c = 0] (a
    wrap that already happened: the increment carried out of the count
    field) or [c > bound] (this increment consumed the head-room unit
    above the documented capacity); otherwise returns unit.  The exact
    post-increment check both [Arc] and [Arc_dynamic] run after R4. *)

let algorithm = "arc"

(* Named result signature of [Make] (the .mli documents it): lets
   consumers of a register built over a runtime-chosen substrate — a
   first-class [Mem_intf.S] over an mmap'd file — package the functor
   result as [(module Arc.S with ...)]. *)
module type S = sig
  include Register_intf.ZERO_COPY

  val read_stamped : reader -> f:(Mem.buffer -> int -> 'a) -> int * 'a
  val probe_stamp : t -> int
  val create_with : use_hint:bool -> readers:int -> capacity:int -> init:int array -> t
  val write_guarded : t -> guard:(unit -> unit) -> src:int array -> len:int -> unit
  val recover_crash : t -> int
  val quarantine : t -> int -> unit
  val write_probes : t -> int
  val writes : t -> int

  type telemetry

  val make_telemetry :
    ?ring:int -> ?clock:(unit -> int) -> readers:int -> unit -> telemetry

  val set_telemetry : t -> telemetry option -> unit
  val telemetry : t -> telemetry option
  val fast_reads : telemetry -> int
  val slow_reads : telemetry -> int
  val hint_hits : telemetry -> int
  val metrics : t -> Arc_obs.Obs.metric list
  val trace : t -> Arc_obs.Ring.entry list

  module Debug : sig
    val slots : t -> int
    val current : t -> int
    val r_start : t -> int -> int
    val r_end : t -> int -> int
    val slot_size : t -> int -> int
    val presence_slack : t -> int
    val presence_bound_holds : t -> bool
    val free_slot_exists : t -> bool
    val force_current : t -> int -> unit
  end
end

module Packed = Arc_util.Packed

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M
  module Obs = Arc_obs.Obs
  module Ring = Arc_obs.Ring

  (* Telemetry (ISSUE 5).  All counters are host-heap {!Obs.Cell}s —
     plain single-writer words outside the substrate [M] — so
     recording adds no substrate operations: nothing for
     {!Arc_mem.Counting} to charge to the algorithm and no scheduling
     points under the virtual scheduler (attaching telemetry changes
     no checker-visible history).  Fast/slow read cells are
     per-reader-identity, cached in the reader handle at {!reader}
     time; the ring records only slow-path writer/recovery
     transitions.  When no telemetry is attached every hook is a
     single [None] branch. *)
  type telemetry = {
    fast_hits : Obs.Group.t;  (* per reader identity: R2 fast-path reads *)
    slow_cells : Obs.Group.t;  (* per reader identity: R3+R4 slow reads *)
    hint_cell : Obs.Cell.t;  (* writer: §3.4 proposals accepted by W1 *)
    tel_ring : Ring.t;  (* slot-state transition trace *)
    clock : unit -> int;  (* timestamp source for ring entries *)
  }

  (* Layout note.  [r_start]/[r_end] are hammered by releasing readers
     while the writer polls them during its free-slot scan, and the
     writer resets them on every recycle — pair-contended allocation
     keeps that RMW traffic off the cache lines of [size], the buffer
     and the neighbouring slots, while keeping the two counters
     together: every operation that touches one touches the other
     (read entry/exit, the probe's equality test), so the pair costs
     one line, not two.  [size] stays a plain cell: it is written once
     per recycle and read once per read, always adjacent in time to
     the content accesses of the same slot. *)
  type slot = {
    size : M.atomic;  (* words of the snapshot currently in [content] *)
    seq : M.atomic;  (* publish stamp of the write living in [content] *)
    r_start : M.atomic;  (* reads started on this slot since its last update *)
    r_end : M.atomic;  (* reads completed on this slot since its last update *)
    content : M.buffer;
  }

  type t = {
    slots : slot array;  (* N + 2, the classical lower bound *)
    current : M.atomic;  (* packed ⟨index, count⟩ — the synchronization word *)
    readers : int;
    use_hint : bool;
    hint : M.atomic;  (* §3.4 free-slot proposal; -1 when empty *)
    (* Crash-recovery journal (ISSUE 3): the index of the slot whose
       supersede-freeze (W3) is in flight, -1 when no write is mid-
       publish.  Written by the writer around W2/W3; read only by a
       {e successor} writer in [recover_crash] after a failover, so a
       plain cell would do on real hardware — it is atomic so the
       handoff is well-defined on any substrate. *)
    prefreeze : M.atomic;
    (* Writer-private state: accessed only by the single writer thread
       (writer {e role} — under supervised failover the role moves
       between threads, but lease discipline guarantees no overlap). *)
    mutable quarantined : int list;  (* slots retired by [recover_crash] *)
    mutable last_slot : int;
    mutable probes : int;
    mutable writes : int;
    (* Publish-stamp counter (Register_intf.STAMPED): strictly
       increasing over the writer role's lifetime, one fresh value per
       prepared slot, stored into the slot's [seq] before the W2
       publish.  Writer-private; a successor resyncs it from the slots
       in [recover_crash] so stamps stay unique across failover. *)
    mutable stamp : int;
    mutable tel : telemetry option;
  }

  (* Per-identity counter cells, resolved once at handle creation so
     the fast path pays one option check and one plain increment. *)
  type rcells = { fast : Obs.Cell.t; slow : Obs.Cell.t }
  type reader = { reg : t; mutable last_index : int; cells : rcells option }

  let algorithm = algorithm

  let caps =
    {
      Register_intf.wait_free = true;
      zero_copy = true;
      max_readers = (fun ~capacity_words:_ -> Some Packed.max_readers);
      snapshot_read = true;
    }

  let create_with ~use_hint ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Arc.create: need at least one reader";
    if readers > Packed.max_readers then
      invalid_arg
        (Printf.sprintf "Arc.create: readers = %d exceed the 2^32 - 2 capacity"
           readers);
    if capacity < 1 then invalid_arg "Arc.create: capacity must be positive";
    if Array.length init > capacity then
      invalid_arg "Arc.create: init longer than capacity";
    let nslots = readers + 2 in
    if nslots - 1 > Packed.max_index then
      invalid_arg "Arc.create: slot count exceeds index field";
    let fresh_slot () =
      let r_start, r_end = M.atomic_contended_pair 0 0 in
      { size = M.atomic 0; seq = M.atomic 0; r_start; r_end; content = M.alloc capacity }
    in
    let slots = Array.init nslots (fun _ -> fresh_slot ()) in
    (* I1: the initial value lives in slot 0 and [current] starts as
       ⟨index = 0, count = N⟩ — as if every reader had already
       subscribed to slot 0; reader handles start with last_index = 0
       accordingly, so a first read of an unchanged register is
       already on the RMW-free fast path. *)
    M.write_words slots.(0).content ~src:init ~len:(Array.length init);
    M.store slots.(0).size (Array.length init);
    M.store slots.(0).seq 1;
    {
      slots;
      (* [current] is the single globally hottest word (every reader
         loads it, misses RMW it, the writer exchanges it) and [hint]
         is stored by readers while the writer polls it — both get
         their own cache lines. *)
      current = M.atomic_contended (Packed.make ~index:0 ~count:readers);
      readers;
      use_hint;
      hint = M.atomic_contended (-1);
      prefreeze = M.atomic (-1);
      quarantined = [];
      last_slot = 0;
      probes = 0;
      writes = 0;
      stamp = 1;
      tel = None;
    }

  let create ~readers ~capacity ~init = create_with ~use_hint:true ~readers ~capacity ~init

  let make_telemetry ?(ring = 256) ?(clock = fun () -> 0) ~readers () =
    {
      fast_hits =
        Obs.Group.create ~name:"arc_reads_fast_total"
          ~help:"Reads served on the RMW-free fast path (R2)" readers;
      slow_cells =
        Obs.Group.create ~name:"arc_reads_slow_total"
          ~help:"Reads that paid the R3+R4 RMW pair" readers;
      hint_cell = Obs.Cell.create ();
      tel_ring = Ring.create ring;
      clock;
    }

  (* Attach before creating reader handles: handles resolve their
     counter cells once, at [reader] time. *)
  let set_telemetry reg tel = reg.tel <- tel
  let telemetry reg = reg.tel
  let fast_reads tel = Obs.Group.value tel.fast_hits
  let slow_reads tel = Obs.Group.value tel.slow_cells
  let hint_hits tel = Obs.Cell.get tel.hint_cell

  let trace reg =
    match reg.tel with None -> [] | Some tel -> Ring.dump tel.tel_ring

  let reader reg i =
    if i < 0 || i >= reg.readers then invalid_arg "Arc.reader: identity out of range";
    let cells =
      match reg.tel with
      | None -> None
      | Some tel ->
        Some
          {
            fast = Obs.Group.cell tel.fast_hits i;
            slow = Obs.Group.cell tel.slow_cells i;
          }
    in
    { reg; last_index = 0; cells }

  (* Algorithm 2.  The fast path (R2) performs a single plain load of
     [current]; only when a newer value was published does the reader
     pay two RMWs (R3 release + R4 subscribe). *)
  let read_view rd =
    let reg = rd.reg in
    let index = Packed.index (M.load reg.current) (* R1 *) in
    if rd.last_index = index then begin
      (* R2 fast path: zero RMW — the telemetry hit marker is a plain
         store to this identity's private cell, never an atomic. *)
      match rd.cells with
      | Some c -> c.fast.Obs.Cell.v <- c.fast.Obs.Cell.v + 1
      | None -> ()
    end
    else begin
      (match rd.cells with
      | Some c -> c.slow.Obs.Cell.v <- c.slow.Obs.Cell.v + 1
      | None -> ());
      let released = reg.slots.(rd.last_index) in
      M.incr released.r_end (* R3 *);
      if reg.use_hint then begin
        (* §3.4: if this release made the slot reusable, propose it to
           the writer.  Plain loads/stores suffice: a stale proposal is
           re-validated by the writer before use. *)
        let fin = M.load released.r_end in
        if fin = M.load released.r_start then M.store reg.hint rd.last_index
      end;
      let now = M.add_and_fetch reg.current 1 (* R4 *) in
      (* Saturation guard: with count ≤ readers ≤ 2^32 - 2 by
         construction this cannot fire; if the count word is ever
         corrupted (or force-saturated by a fault campaign), the next
         increment must not silently carry into the index bits.  A
         post-increment count of 0 is a wrap that already happened;
         count = max_count means this increment consumed the last
         head-room unit above the documented 2^32 - 2 bound.  The
         typed error and message shape are the repository-wide ones
         (Arc_util.Saturation = Register_intf.Saturated, ISSUE 8). *)
      Arc_util.Saturation.guard_count ~who:"Arc.read"
        ~bound:Packed.max_readers (Packed.count now);
      rd.last_index <- Packed.index now (* R5 *)
    end;
    let entry = reg.slots.(rd.last_index) in
    (entry.content, M.load entry.size)

  let read_with rd ~f =
    let buffer, len = read_view rd in
    f buffer len

  (* Register_intf.STAMPED.  The subscribed slot is pinned by this
     reader's presence (count or frozen r_start unit), so its [seq] is
     exactly the stamp of the write whose content [read_view] just
     returned — one extra plain load over a plain read. *)
  let read_stamped rd ~f =
    let buffer, len = read_view rd in
    let stamp = M.load rd.reg.slots.(rd.last_index).seq in
    (stamp, f buffer len)

  (* Register_intf.STAMPED.  Two plain loads, no RMW, no presence
     accounting — safe from any thread.  The published slot is never
     the one being prepared ([find_free] excludes [last_slot]), so a
     probe either reads the stamp of the currently published value or,
     if the slot was superseded, drained and recycled between the two
     loads, a strictly {e greater} stamp of a later write mid-
     preparation.  Stamps are writer-unique and increasing, so a probe
     can spuriously mismatch a concurrent collect but never falsely
     match it. *)
  let probe_stamp reg =
    let index = Packed.index (M.load reg.current) in
    M.load reg.slots.(index).seq

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then invalid_arg "Arc.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  (* [j <> last_slot] excludes the current slot: the current slot's
     subscribers live in [current]'s count field, not in
     r_start/r_end, so the counter test alone would call it free.
     Between writes last_slot = current's index for an uninterrupted
     writer; a crashed predecessor may have died between its publish
     and the last_slot update, which is why [recover_crash]
     re-establishes the invariant from the synchronization word before
     a successor's first search.  [quarantined] is writer-private —
     membership costs no shared-memory access. *)
  let slot_free reg j =
    j <> reg.last_slot
    && (not (List.memq j reg.quarantined))
    && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end

  (* W1: free-slot search.  Try the readers' proposal first (O(1)
     amortized), then scan — Lemma 4.1 guarantees a free slot exists
     among the N+2 within one sweep. *)
  let find_free reg =
    let proposal =
      if not reg.use_hint then -1
      else begin
        let h = M.load reg.hint in
        if h >= 0 then M.store reg.hint (-1);
        h
      end
    in
    if proposal >= 0 && proposal < Array.length reg.slots && slot_free reg proposal
    then begin
      reg.probes <- reg.probes + 1;
      (match reg.tel with
      | Some tel ->
        Obs.Cell.incr tel.hint_cell;
        Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_slot_claim
          proposal 1 0
      | None -> ());
      proposal
    end
    else begin
      let n = Array.length reg.slots in
      let rec scan step =
        if step > n then failwith "Arc.write: no free slot (invariant violated)"
        else begin
          let j = (reg.last_slot + step) mod n in
          reg.probes <- reg.probes + 1;
          M.cede ();
          if slot_free reg j then begin
            (match reg.tel with
            | Some tel ->
              Ring.record tel.tel_ring ~at:(tel.clock ())
                ~code:Ring.code_slot_claim j 0 step
            | None -> ());
            j
          end
          else scan (step + 1)
        end
      in
      scan 1
    end

  (* Algorithm 3.  [guard] is the epoch-fence hook
     (Register_intf.FENCEABLE): it runs once the slot is fully
     prepared, immediately before the W2 publish.  If it raises, the
     write aborts with nothing published — the slot was free and both
     its counters are 0/0, so the ledger is untouched and the next
     write reuses it. *)
  let write_guarded reg ~guard ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Arc.write: bad length";
    let slot = find_free reg (* W1 *) in
    let entry = reg.slots.(slot) in
    if len > M.capacity entry.content then invalid_arg "Arc.write: exceeds capacity";
    M.write_words entry.content ~src ~len;
    M.store entry.size len;
    (* Stamp the prepared slot before it can be published: strictly
       increasing per writer role, so [probe_stamp] equality certifies
       an unchanged published value (see [probe_stamp]).  A guard
       abort burns the stamp — stamps are unique, not dense. *)
    reg.stamp <- reg.stamp + 1;
    M.store entry.seq reg.stamp;
    M.store entry.r_start 0;
    M.store entry.r_end 0;
    (* W1.5: journal the slot about to be superseded.  Its subscriber
       count exists only in [current] until W3 freezes it into
       r_start; if this writer dies in between, a successor's
       [recover_crash] reads the journal and quarantines the slot
       instead of handing it back to [find_free] with readers still on
       it.  [last_slot] names the slot about to be superseded (it
       equals [current]'s index between writes, by [recover_crash] for
       a successor's first write).  Journalled before [guard] so the
       fencing residual window (guard load → publish) stays a single
       instruction. *)
    M.store reg.prefreeze reg.last_slot;
    (try guard ()
     with e ->
       M.store reg.prefreeze (-1);
       raise e);
    let old = M.exchange reg.current (Packed.of_index slot) (* W2 *) in
    let old_slot = Packed.index old in
    (* W3: freeze the readers-presence of the superseded slot into its
       r_start; it becomes free again once the laggards' R3 increments
       bring r_end up to this value. *)
    M.store reg.slots.(old_slot).r_start (Packed.count old);
    reg.last_slot <- slot;
    M.store reg.prefreeze (-1);
    reg.writes <- reg.writes + 1;
    match reg.tel with
    | Some tel ->
      let at = tel.clock () in
      Ring.record tel.tel_ring ~at ~code:Ring.code_publish slot old_slot 0;
      Ring.record tel.tel_ring ~at ~code:Ring.code_freeze old_slot
        (Packed.count old) 0
    | None -> ()

  (* Successor-writer recovery (Register_intf.FENCEABLE): quarantine
     the journaled mid-publish slot, if any, and re-establish the
     last_slot = current-index invariant the predecessor may have died
     without restoring.  The quarantine is a deliberate bounded leak:
     one slot per writer crash at most, paid for by over-provisioning
     reader identities (each unused identity is a net spare slot). *)
  let recover_crash reg =
    let j = M.load reg.prefreeze in
    reg.last_slot <- Packed.index (M.load reg.current);
    (* Stamp resync: the predecessor's counter was heap-local and died
       with it.  Every issued stamp is visible in some slot's [seq]
       (quarantined slots keep theirs), so the max over slots restores
       strict monotonicity for the successor's writes. *)
    Array.iter (fun s -> reg.stamp <- max reg.stamp (M.load s.seq)) reg.slots;
    let quarantined =
      if j >= 0 then begin
        M.store reg.prefreeze (-1);
        if List.memq j reg.quarantined then 0
        else begin
          reg.quarantined <- j :: reg.quarantined;
          1
        end
      end
      else 0
    in
    (match reg.tel with
    | Some tel ->
      Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_recover
        reg.last_slot quarantined j
    | None -> ());
    quarantined

  (* External-evidence quarantine (Register_intf.FENCEABLE): retire a
     slot convicted by an integrity layer below the register — e.g. a
     checksum scan of a crash-recovered shared-memory mapping finding
     the torn content copy of a SIGKILLed writer.  Same writer-private
     list as [recover_crash], so [slot_free] excludes it from reuse. *)
  let quarantine reg j =
    if j < 0 || j >= Array.length reg.slots then
      invalid_arg
        (Printf.sprintf "Arc.quarantine: slot %d out of range [0, %d)" j
           (Array.length reg.slots));
    if not (List.memq j reg.quarantined) then begin
      reg.quarantined <- j :: reg.quarantined;
      match reg.tel with
      | Some tel ->
        Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_quarantine
          j 0 0
      | None -> ()
    end

  let write reg ~src ~len = write_guarded reg ~guard:ignore ~src ~len
  let write_probes reg = reg.probes
  let writes reg = reg.writes

  let metrics reg =
    let base =
      [
        Obs.counter "arc_writes_total" ~help:"Completed register writes"
          reg.writes;
        Obs.counter "arc_write_probes_total"
          ~help:"Slots examined by W1 free-slot searches" reg.probes;
        Obs.counter "arc_quarantined_slots"
          ~help:"Slots retired by crash recovery or external conviction"
          (List.length reg.quarantined);
      ]
    in
    match reg.tel with
    | None -> base
    | Some tel ->
      let per_reader group =
        Array.to_list
          (Array.mapi
             (fun i v ->
               Obs.counter (Obs.Group.name group)
                 ~labels:[ ("reader", string_of_int i) ]
                 ~help:(Obs.Group.help group) v)
             (Obs.Group.per_domain group))
      in
      per_reader tel.fast_hits
      @ per_reader tel.slow_cells
      @ Obs.counter "arc_hint_hits_total"
          ~help:"§3.4 free-slot proposals accepted by the writer"
          (Obs.Cell.get tel.hint_cell)
        :: Obs.counter "arc_trace_events_total"
             ~help:"Slot-state transitions recorded in the trace ring"
             (Ring.recorded tel.tel_ring)
        :: base

  module Debug = struct
    let slots reg = Array.length reg.slots
    let current reg = M.load reg.current
    let r_start reg j = M.load reg.slots.(j).r_start
    let r_end reg j = M.load reg.slots.(j).r_end
    let slot_size reg j = M.load reg.slots.(j).size

    (* readers − (Σ_j (r_start j − r_end j) + count current).  0 in any
       quiescent live state; under crash-stop readers each crash can
       leak at most one unit of presence out of the ledger (a reader
       that died between its R3 release and R4 subscribe), so the
       slack stays within [0, crashed readers] and never goes
       negative — negative slack means presence was double-counted
       (e.g. a lost R3 release). *)
    let presence_slack reg =
      let frozen = ref 0 in
      Array.iter
        (fun s -> frozen := !frozen + (M.load s.r_start - M.load s.r_end))
        reg.slots;
      reg.readers - (!frozen + Packed.count (M.load reg.current))

    let presence_bound_holds reg = presence_slack reg = 0

    (* Test-only: overwrite the synchronization word, e.g. to place
       the count at the saturation boundary. *)
    let force_current reg w = M.store reg.current w

    let free_slot_exists reg =
      let published = Packed.index (M.load reg.current) in
      let n = Array.length reg.slots in
      let rec go j =
        if j >= n then false
        else if
          j <> published
          && (not (List.memq j reg.quarantined))
          && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end
        then true
        else go (j + 1)
      in
      go 0
  end
end

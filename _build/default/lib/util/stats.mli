(** Summary statistics for experiment samples.

    The paper reports each sample as "the average over 10 runs"; we
    additionally keep dispersion so EXPERIMENTS.md can state how noisy
    the shared-container measurements are. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  ci95 : float;  (** half-width of a normal-approximation 95% CI on the mean *)
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val mean : float array -> float
val stddev : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0, 100], linear interpolation;
    does not mutate the input.
    @raise Invalid_argument on empty input or [p] outside [0, 100]. *)

val pp_summary : Format.formatter -> summary -> unit

(** Online mean/variance accumulator (Welford), usable when samples
    are too many to buffer. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end

(** Lamport's concurrent reading and writing register (CACM 1977) —
    the paper's reference [5], the historical starting point of the
    (1,N) register literature.

    Two version counters sandwich the data: the writer bumps [v1]
    {e before} the copy and sets [v2 := v1] {e after}; a reader reads
    [v2] first, copies, reads [v1] last, and accepts only when
    [v1 = v2].  Writes are wait-free; reads merely lock-free — the
    writer "can force slow-running readers to retry their read
    operations indefinitely" (§2), the very weakness Peterson, RF and
    ARC successively repair.  Retries are counted so experiments can
    display the starvation. *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Arc_core.Register_intf.S with module Mem = M

  val retries : reader -> int
end

lib/baselines/rf.ml: Arc_mem Arc_util Array Printf Sys
